// Experiment F6-payload — DESIGN.md §13 / NRSX extension claim: for an
// L-byte broadcast payload the extension protocol pays O(L n / k) bits
// of coded dispersal plus a payload-independent kappa-sized base-BB
// phase, while carrying L inline multiplies EVERY base message by 8L.
// Sweeping L over decades therefore shows the two designs crossing
// over: raw wins for tiny payloads (dispersal overhead dominates), ext
// wins beyond a crossover at a few KiB and ends up an order of
// magnitude cheaper at the top of the sweep.
//
// Measured pairs: ext:linear vs linear (Algorithm 4 as base) and
// ext:dolev-strong vs dolev-strong. All runs are property-checked by
// the engine; exact bit accounting comes from the shared WireModel (the
// dispersal messages price header + chunk + Merkle path + root, the
// base phase prices kappa-bit digests).
#include "bench_common.hpp"

#include <cinttypes>

namespace ambb::bench {
namespace {

constexpr std::uint64_t kPayloads[] = {64, 512, 4096, 32768, 262144};

struct Pair {
  const char* ext;
  const char* raw;
};
constexpr Pair kPairs[] = {
    {"ext:linear", "linear"},
    {"ext:dolev-strong", "dolev-strong"},
};

CommonParams cell_params(std::uint64_t payload, bool is_ext) {
  CommonParams p;
  p.n = 16;
  p.f = 4;
  p.slots = 4;
  p.seed = 1;
  p.payload_bytes = payload;
  // Raw baseline: the payload travels inline in every protocol message
  // (same mapping as the sweep layer's payload axis).
  if (!is_ext) p.value_bits = static_cast<std::uint32_t>(8 * payload);
  return p;
}

void run_table() {
  print_header(
      "F6-payload / DESIGN.md §13: long-message extension vs inline payloads",
      "coded dispersal pays O(ln/k) + kappa-sized base traffic; carrying l "
      "inline pays l times the base message count — ext wins past a "
      "crossover of a few KiB");

  // One engine batch over the full grid: pair-major, payload-minor, ext
  // before raw — the submission order is the reporting order.
  std::vector<Job> jobs;
  for (const Pair& pr : kPairs) {
    for (std::uint64_t payload : kPayloads) {
      jobs.push_back(registry_job(
          pr.ext, cell_params(payload, true),
          std::string(pr.ext) + "/p" + std::to_string(payload)));
      jobs.push_back(registry_job(
          pr.raw, cell_params(payload, false),
          std::string(pr.raw) + "/p" + std::to_string(payload)));
    }
  }
  const std::vector<RunResult> results = run_jobs(jobs);

  std::size_t idx = 0;
  for (const Pair& pr : kPairs) {
    TextTable t({"payload bytes", "ext total bits", "raw total bits",
                 "ext/raw", "ext amortized", "raw amortized"});
    std::uint64_t crossover = 0;
    for (std::uint64_t payload : kPayloads) {
      const RunResult& ext_r = results[idx++];
      const RunResult& raw_r = results[idx++];
      const double ratio =
          raw_r.honest_bits == 0
              ? 0.0
              : static_cast<double>(ext_r.honest_bits) /
                    static_cast<double>(raw_r.honest_bits);
      if (crossover == 0 && ext_r.honest_bits < raw_r.honest_bits) {
        crossover = payload;
      }
      t.add_row({std::to_string(payload), std::to_string(ext_r.honest_bits),
                 std::to_string(raw_r.honest_bits), TextTable::num(ratio, 3),
                 TextTable::num(ext_r.amortized(), 0),
                 TextTable::num(raw_r.amortized(), 0)});
    }
    std::printf("\n%s vs %s  (n=16, f=4, L=4 slots, seed 1):\n", pr.ext,
                pr.raw);
    std::printf("%s", t.render().c_str());
    if (crossover != 0) {
      std::printf("crossover: ext:%s is cheaper than inline %s from "
                  "%" PRIu64 "-byte payloads on\n",
                  pr.raw, pr.raw, crossover);
    } else {
      // The claim under test failed; fail the binary like any other
      // violated property.
      std::printf("!! no crossover observed — ext never beat the raw "
                  "baseline\n");
      ++state().violations;
    }
  }
  std::printf(
      "\nReading: the ext/raw column falls with payload size — dispersal "
      "sends each byte ~n/k times total while\nthe inline baseline "
      "re-sends the payload in every protocol message; the base-phase "
      "digest traffic ext pays is\npayload-independent, which is the flat "
      "overhead that raw undercuts at the smallest payloads.\n");
}

void BM_ExtLinearPayload(::benchmark::State& st) {
  const auto payload = static_cast<std::uint64_t>(st.range(0));
  CommonParams p = cell_params(payload, true);
  for (auto _ : st) {
    ::benchmark::DoNotOptimize(
        registry_run("ext:linear", p).honest_bits);
    ++p.seed;  // fresh execution per iteration
  }
}
BENCHMARK(BM_ExtLinearPayload)->Arg(4096)->Arg(65536)
    ->Unit(::benchmark::kMillisecond);

}  // namespace
}  // namespace ambb::bench

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ambb::bench::run_table();
  return ambb::bench::finish_bench("f6_payload");
}
