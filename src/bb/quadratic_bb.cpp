#include "bb/quadratic_bb.hpp"

#include "common/check.hpp"
#include "common/rng.hpp"

namespace ambb::quad {

QuadNode::QuadNode(NodeId id, const Context* ctx,
                   std::unique_ptr<Deviation> deviation)
    : id_(id),
      ctx_(ctx),
      dev_(std::move(deviation)),
      engine_(id, ctx),
      voted_(ctx->n),
      vote_seen_(ctx->n, BitVec(ctx->n)),
      vote_forwarded_(ctx->n, BitVec(ctx->n)),
      vote_sigs_(ctx->n) {}

Msg QuadNode::build_prop(Value v) const {
  Msg m;
  m.kind = Kind::kProp;
  m.slot = cur_slot_;
  m.value = v;
  m.sig = ctx_->registry->sign(id_, prop_digest(cur_slot_, v));
  return m;
}

void QuadNode::out_multicast(RoundApi<Msg>& api, const Msg& m, Round r,
                             std::uint32_t offset) {
  if (dev_ == nullptr) {
    api.multicast(m);
    return;
  }
  for (NodeId v = 0; v < ctx_->n; ++v) {
    if (!dev_->drop_send(r, offset, m.kind, v)) api.send(v, m);
  }
}

void QuadNode::vote_corrupt(NodeId target, RoundApi<Msg>& api, Round r) {
  if (voted_.get(target)) return;
  voted_.set(target);
  {
    trace::Event ev;
    ev.kind = trace::EventKind::kCorruptVote;
    ev.round = r;
    ev.slot = cur_slot_;
    ev.node = id_;
    ev.subject = target;
    trace::emit(ctx_->trace, ev);
  }
  Msg m;
  m.kind = Kind::kCorrupt;
  m.slot = cur_slot_;
  m.accused = target;
  m.sig = ctx_->registry->sign(id_, corrupt_digest(target));
  // Record our own vote so the tau-counting sees it immediately.
  if (!vote_seen_[target].get(id_)) {
    vote_seen_[target].set(id_);
    vote_sigs_[target].push_back(m.sig);
  }
  vote_forwarded_[target].set(id_);
  api.multicast(m);
}

void QuadNode::on_round(Round r, std::span<const Delivery<Msg>> inbox,
                        const TrafficView<Msg>& rushed,
                        RoundApi<Msg>& api) {
  (void)rushed;
  const Schedule& sched = ctx_->sched;
  const Slot k = sched.slot_of(r);
  const std::uint32_t offset = sched.offset_of(r);
  const std::uint32_t n = ctx_->n;
  const std::uint32_t f = ctx_->f;

  if (k != cur_slot_) {
    cur_slot_ = k;
    engine_.begin_slot(k);
  }
  engine_.set_round(r);

  if (dev_ != nullptr && dev_->silent(r)) return;

  const NodeId sender = engine_.slot_sender();

  // Inbox processing: TrustCast machinery runs in every round of the slot
  // (removals keep flowing during the DS phase — transferability needs
  // it); corrupt votes are recorded here.
  for (const auto& env : inbox) {
    const Msg& m = env.msg();
    if (m.kind == Kind::kCorrupt) {
      const NodeId voter = m.sig.signer;
      const NodeId target = m.accused;
      if (voter >= n || target >= n) continue;
      if (vote_seen_[target].get(voter)) continue;
      if (!ctx_->registry->verify(m.sig, corrupt_digest(target))) continue;
      vote_seen_[target].set(voter);
      vote_sigs_[target].push_back(m.sig);
    } else {
      const bool allow_send =
          dev_ == nullptr || !dev_->suppress_engine_sends(r, offset);
      engine_.handle(m, api, allow_send);
    }
  }

  if (offset == 0) {
    if (id_ == sender) {
      if (dev_ != nullptr && dev_->override_send(*this, api)) {
        // handled by the deviation
      } else {
        engine_.send_proposal(api);
      }
    }
  } else if (offset >= 1 && offset <= n) {
    engine_.tc_round_action(offset, api);
  } else {
    // Dolev-Strong phase: tau in [0, f+1].
    const std::uint32_t tau = offset - (n + 1);
    if (tau == 0) {
      if (!engine_.sender_present()) vote_corrupt(sender, api, r);
    } else {
      if (!engine_.sender_present() &&
          vote_seen_[sender].count() >= tau) {
        // Forward every vote we have not forwarded yet (each is a
        // distinct <corrupt, S_k>_w, shared across slots), then our own.
        for (std::size_t idx = 0; idx < vote_sigs_[sender].size(); ++idx) {
          const Signature& sig = vote_sigs_[sender][idx];
          if (vote_forwarded_[sender].get(sig.signer)) continue;
          vote_forwarded_[sender].set(sig.signer);
          Msg m;
          m.kind = Kind::kCorrupt;
          m.slot = cur_slot_;
          m.accused = sender;
          m.sig = sig;
          out_multicast(api, m, r, offset);
        }
        vote_corrupt(sender, api, r);
      }
    }
    // Commit at the end of the last round of the slot.
    if (offset == n + f + 2) {
      if (!ctx_->commits->has(id_, k)) {
        Value v = kBotValue;
        if (!voted_.get(sender)) {
          auto rv = engine_.received_value();
          // TrustCast termination guarantees an honest node that never
          // voted holds exactly one sender value. A Byzantine actor
          // replaying this logic (deviation attached) may not.
          AMBB_CHECK_MSG(rv.has_value() || dev_ != nullptr,
                         "node " << id_ << " slot " << k
                                 << ": no corrupt vote but no value either");
          v = rv.value_or(kBotValue);
        }
        ctx_->commits->record(id_, k, v, r);
        trace::Event ev;
        ev.kind = trace::EventKind::kSlotCommit;
        ev.round = r;
        ev.slot = k;
        ev.node = id_;
        ev.value = v;
        trace::emit(ctx_->trace, ev);
      }
    }
  }

  if (dev_ != nullptr) dev_->extra(*this, r, offset, api);
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

RunResult run_quadratic(const QuadConfig& cfg) {
  AMBB_CHECK_MSG(cfg.n >= 3, "need at least 3 nodes");
  AMBB_CHECK_MSG(cfg.f < cfg.n, "Algorithm 5.2 requires f < n");

  KeyRegistry registry(cfg.n, cfg.seed);
  CommitLog commits(cfg.n);
  commits.presize(cfg.slots);  // sharded-round safety: no lazy regrow
  CostLedger ledger(kind_names());

  Context ctx;
  ctx.n = cfg.n;
  ctx.f = cfg.f;
  ctx.wire = WireModel{cfg.n, cfg.kappa_bits, cfg.value_bits};
  ctx.sched = Schedule{cfg.n, cfg.f};
  ctx.registry = &registry;
  ctx.commits = &commits;
  const std::uint64_t input_seed = cfg.seed ^ 0x5EEDF00DULL;
  ctx.input_for_slot = cfg.input_for_slot
                           ? cfg.input_for_slot
                           : [input_seed](Slot s) {
                               std::uint64_t x = input_seed + s;
                               return splitmix64(x);
                             };
  ctx.sender_of = cfg.sender_of ? cfg.sender_of : [n = cfg.n](Slot s) {
    return static_cast<NodeId>((s - 1) % n);
  };
  Sim sim(cfg.n, cfg.f, &ledger, CostPolicy{ctx.wire, ctx.sched});
  // Actors emit through the sim's router so sharded rounds can buffer
  // worker-thread events and replay them in deterministic order.
  ctx.trace = sim.actor_sink(cfg.trace);
  for (NodeId v = 0; v < cfg.n; ++v) {
    sim.set_actor(v, std::make_unique<QuadNode>(v, &ctx));
  }
  const std::uint64_t total_rounds =
      static_cast<std::uint64_t>(cfg.slots) * ctx.sched.rounds_per_slot();
  const NetPolicy net = make_net_policy(cfg.net, cfg.seed);
  auto adversary =
      make_quad_adversary(cfg.adversary, &ctx, cfg.seed ^ 0xAD7E25A1ULL,
                          total_rounds, net);
  SimConfig<Msg> sc;
  sc.trace = cfg.trace;
  sc.node_jobs = cfg.node_jobs;
  sc.net = net;
  sc.adversary = adversary.get();
  sim.configure(sc);

  for (std::uint64_t i = 0; i < total_rounds; ++i) {
    const std::uint32_t off = ctx.sched.offset_of(i);
    const Slot k = ctx.sched.slot_of(i);
    if (off == 0) {
      trace::Event ev;
      ev.kind = trace::EventKind::kSlotStart;
      ev.round = i;
      ev.slot = k;
      ev.node = ctx.sender_of(k);
      trace::emit(cfg.trace, ev);
      ev.kind = trace::EventKind::kEpochPhase;
      ev.detail = "propose";
      trace::emit(cfg.trace, ev);
    } else if (off == 1) {
      trace::Event ev;
      ev.kind = trace::EventKind::kEpochPhase;
      ev.round = i;
      ev.slot = k;
      ev.detail = "trustcast";
      trace::emit(cfg.trace, ev);
    } else if (off == cfg.n + 1) {
      trace::Event ev;
      ev.kind = trace::EventKind::kEpochPhase;
      ev.round = i;
      ev.slot = k;
      ev.detail = "dolev-strong";
      trace::emit(cfg.trace, ev);
    }
    sim.step();
    if (cfg.on_round_end) cfg.on_round_end(sim.now() - 1, sim);
  }
  if (cfg.inspect) cfg.inspect(sim);

  RunResult res;
  res.n = cfg.n;
  res.f = cfg.f;
  res.slots = cfg.slots;
  res.rounds = sim.now();
  res.honest_bits = ledger.honest_bits_total();
  res.adversary_bits = ledger.adversary_bits_total();
  res.honest_msgs = ledger.honest_msgs_total();
  res.per_slot_bits = ledger.per_slot();
  res.kind_names = ledger.kind_names();
  res.per_kind_bits = ledger.per_kind();
  res.commits = commits;
  res.round_stats = sim.round_stats();
  res.corrupt.resize(cfg.n);
  for (NodeId v = 0; v < cfg.n; ++v) res.corrupt[v] = sim.is_corrupt(v);
  res.senders.resize(cfg.slots + 1, kNoNode);
  res.sender_inputs.resize(cfg.slots + 1, kBotValue);
  for (Slot s = 1; s <= cfg.slots; ++s) {
    res.senders[s] = ctx.sender_of(s);
    res.sender_inputs[s] = ctx.input_for_slot(s);
  }
  return res;
}

}  // namespace ambb::quad
