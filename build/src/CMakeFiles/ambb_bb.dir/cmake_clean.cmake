file(REMOVE_RECURSE
  "CMakeFiles/ambb_bb.dir/bb/atomic_broadcast.cpp.o"
  "CMakeFiles/ambb_bb.dir/bb/atomic_broadcast.cpp.o.d"
  "CMakeFiles/ambb_bb.dir/bb/codec.cpp.o"
  "CMakeFiles/ambb_bb.dir/bb/codec.cpp.o.d"
  "CMakeFiles/ambb_bb.dir/bb/dolev_strong.cpp.o"
  "CMakeFiles/ambb_bb.dir/bb/dolev_strong.cpp.o.d"
  "CMakeFiles/ambb_bb.dir/bb/hotstuff_demo.cpp.o"
  "CMakeFiles/ambb_bb.dir/bb/hotstuff_demo.cpp.o.d"
  "CMakeFiles/ambb_bb.dir/bb/linear_adversary.cpp.o"
  "CMakeFiles/ambb_bb.dir/bb/linear_adversary.cpp.o.d"
  "CMakeFiles/ambb_bb.dir/bb/linear_bb.cpp.o"
  "CMakeFiles/ambb_bb.dir/bb/linear_bb.cpp.o.d"
  "CMakeFiles/ambb_bb.dir/bb/phase_king.cpp.o"
  "CMakeFiles/ambb_bb.dir/bb/phase_king.cpp.o.d"
  "CMakeFiles/ambb_bb.dir/bb/quadratic_adversary.cpp.o"
  "CMakeFiles/ambb_bb.dir/bb/quadratic_adversary.cpp.o.d"
  "CMakeFiles/ambb_bb.dir/bb/quadratic_bb.cpp.o"
  "CMakeFiles/ambb_bb.dir/bb/quadratic_bb.cpp.o.d"
  "CMakeFiles/ambb_bb.dir/bb/trustcast.cpp.o"
  "CMakeFiles/ambb_bb.dir/bb/trustcast.cpp.o.d"
  "libambb_bb.a"
  "libambb_bb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ambb_bb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
