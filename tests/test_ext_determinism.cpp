// Engine-level determinism of the extension rows: an ext:linear sweep
// over the payload axis must produce byte-identical per-job trace files
// and identical bit totals with --jobs 1 and --jobs 4. The ext driver
// runs a nested base-family simulation inside each cell, so this checks
// that the whole dispersal + base pipeline stays submission-order
// deterministic on a worker pool (and, under TSan via the `engine`
// label, that nested runs share no hidden state).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "engine/sweep.hpp"

namespace ambb::engine {
namespace {

namespace fs = std::filesystem;

std::vector<SweepJob> ext_grid() {
  SweepSpec spec;
  spec.name = "extdet";
  spec.protocol = "ext:linear";
  spec.ns = {8};
  spec.fs = {2};
  spec.slots_list = {2};
  spec.payloads = {256, 4096};
  spec.adversaries = {"none", "fuzz:3"};
  spec.seed_begin = 1;
  spec.seed_end = 2;
  return expand(spec);
}

std::map<std::string, std::string> run_into(const std::string& dir,
                                            unsigned jobs) {
  fs::remove_all(dir);
  fs::create_directories(dir);
  Engine eng(jobs);
  const auto outcomes = eng.run(to_engine_jobs(ext_grid(), dir));
  for (const auto& out : outcomes) EXPECT_TRUE(out.completed) << out.label;

  std::map<std::string, std::string> files;  // name -> contents
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    files[entry.path().filename().string()] = text.str();
  }
  return files;
}

TEST(ExtDeterminism, SerialAndParallelTracesAreByteIdentical) {
  const std::string base =
      (fs::temp_directory_path() / "ambb_ext_determinism").string();
  const auto serial = run_into(base + "_serial", 1);
  const auto parallel = run_into(base + "_parallel", 4);

  ASSERT_EQ(serial.size(), ext_grid().size());
  ASSERT_EQ(parallel.size(), serial.size());
  for (const auto& [name, contents] : serial) {
    const auto it = parallel.find(name);
    ASSERT_NE(it, parallel.end()) << "missing trace file " << name;
    EXPECT_EQ(it->second, contents) << "trace drifted with --jobs: " << name;
    EXPECT_FALSE(contents.empty()) << name;
  }

  fs::remove_all(base + "_serial");
  fs::remove_all(base + "_parallel");
}

TEST(ExtDeterminism, BitTotalsMatchAcrossJobCounts) {
  const auto grid = ext_grid();
  Engine serial(1), parallel(4);
  const auto a = serial.run(to_engine_jobs(grid));
  const auto b = parallel.run(to_engine_jobs(grid));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label);
    EXPECT_EQ(a[i].result.honest_bits, b[i].result.honest_bits) << a[i].label;
    EXPECT_EQ(a[i].result.adversary_bits, b[i].result.adversary_bits)
        << a[i].label;
  }
}

}  // namespace
}  // namespace ambb::engine
