// ambb_fuzz — randomized fault-schedule campaigns over the protocol
// registry, with the Definition 2 properties as oracles.
//
//   ambb_fuzz [--schedules K] [--protocol NAME] [--n N] [--slots L]
//             [--seed S] [--jobs N] [--node-jobs N] [--net POLICY]
//             [--out NAME] [--filter SUBSTR] [--list]
//
//   --schedules K    schedules per protocol (default 30)
//   --protocol NAME  fuzz only this registry protocol (default: all)
//   --n N            node count (default 12)
//   --slots L        slots per run (default 2)
//   --seed S         base seed; schedule i of a protocol runs with seed
//                    S + i (default 1)
//   --jobs N         worker threads; 0 = one per hardware thread. The
//                    engine's determinism contract makes the table and
//                    the json byte-identical for any value.
//   --node-jobs N    honest-phase shard threads per run (byte-identical
//                    for every value)
//   --net POLICY     delay policy (DESIGN.md §16): lockstep (default) |
//                    bounded:<delta> | async[:<cap>]. Non-lockstep
//                    campaigns add delay/reorder timing faults to every
//                    generated schedule and relax the two
//                    synchrony-conditional oracles: termination (delays
//                    can push commits past the horizon) and validity (a
//                    delayed honest sender is indistinguishable from a
//                    silent one — synchronous protocols then legally
//                    commit a placeholder). Consistency stays a hard
//                    failure for quorum-intersection rows (the linear
//                    family, phase-king, hotstuff); rows whose agreement
//                    argument is itself a round deadline — the
//                    Dolev-Strong relay step, TrustCast, the ext:* chunk
//                    windows — declare consistency_needs_sync in the
//                    registry and may legally split under delays. All
//                    relaxed-oracle degradations are counted and
//                    reported per run; they just do not fail the
//                    campaign.
//   --out NAME       write BENCH_<NAME>.json (default: fuzz)
//   --filter SUBSTR  keep only jobs whose label contains SUBSTR
//   --list           print the job labels and exit
//
// Every job runs the protocol under a "fuzz" adversary: a seeded random
// budget-respecting fault schedule (src/adversary/fuzz.hpp) of
// corruptions, after-the-fact erasures and actor-level faults. Because
// generated schedules stay inside the threat model (at most f distinct
// corruptions, erasures only of corrupt-by-then senders), any
// consistency/validity/termination violation is a finding about the
// protocol or the simulator — never noise. Protocols whose registry
// entry sets sched_may_stall (no fallback path) skip only the
// termination oracle.
//
// The corruption budget f cycles over 1..max_f(n) across a protocol's
// schedules, so one campaign exercises light and maximal fault loads.
//
// AMBB_BENCH_INJECT_VIOLATION=1 injects a synthetic violation into every
// run (proves the non-zero-exit plumbing, same contract as the bench
// harnesses).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cli.hpp"
#include "common/check.hpp"
#include "engine/engine.hpp"
#include "engine/report.hpp"
#include "runner/registry.hpp"
#include "runner/table.hpp"

namespace {

struct Cli {
  std::uint32_t schedules = 30;
  std::string protocol;  // empty = all
  std::uint32_t n = 12;
  ambb::Slot slots = 2;
  std::uint64_t seed = 1;
  ambb::cli::CommonFlags common;
  bool list = false;
};

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: ambb_fuzz [--schedules K] [--protocol NAME] [--n N] "
               "[--slots L] [--seed S] [--jobs N] [--node-jobs N] "
               "[--net POLICY] [--out NAME] [--filter SUBSTR] [--list]\n");
}

bool parse_cli(int argc, char** argv, Cli& cli) {
  cli.common.out = "fuzz";
  ambb::cli::Parser p("ambb_fuzz", argc, argv);
  while (p.next()) {
    bool ok = true;
    if (ambb::cli::handle_common_flag(p, &cli.common, &ok)) {
      if (!ok) return false;
    } else if (p.arg() == "--schedules") {
      if (!p.to_u32(&cli.schedules)) return false;
    } else if (p.arg() == "--protocol") {
      if (!p.to_str(&cli.protocol)) return false;
    } else if (p.arg() == "--n") {
      if (!p.to_u32(&cli.n)) return false;
    } else if (p.arg() == "--slots") {
      if (!p.to_u32(&cli.slots)) return false;
    } else if (p.arg() == "--seed") {
      if (!p.to_u64(&cli.seed)) return false;
    } else if (p.arg() == "--list") {
      cli.list = true;
    } else if (p.arg() == "--help" || p.arg() == "-h") {
      usage(stdout);
      std::exit(0);
    } else {
      p.unknown();
      return false;
    }
  }
  if (cli.schedules == 0 || cli.n < 4 || cli.slots == 0) {
    std::fprintf(stderr,
                 "ambb_fuzz: need --schedules >= 1, --n >= 4, --slots >= 1\n");
    return false;
  }
  return true;
}

struct FuzzJob {
  std::string label;
  const ambb::ProtocolInfo* info;
  ambb::CommonParams params;
};

std::vector<FuzzJob> expand(const Cli& cli) {
  using namespace ambb;
  const bool lockstep = cli.common.net == "lockstep";
  std::vector<FuzzJob> out;
  for (const auto& info : protocols()) {
    if (!cli.protocol.empty() && info.name != cli.protocol) continue;
    const std::uint32_t fmax =
        std::max<std::uint32_t>(1, std::min(info.max_f(cli.n), cli.n - 1));
    for (std::uint32_t i = 0; i < cli.schedules; ++i) {
      FuzzJob fj;
      fj.info = &info;
      fj.params.n = cli.n;
      fj.params.f = 1 + i % fmax;  // cycle light..maximal budgets
      fj.params.slots = cli.slots;
      fj.params.seed = cli.seed + i;
      fj.params.adversary = "fuzz";
      fj.params.net = cli.common.net;
      // Lockstep labels keep their historical shape (golden compat);
      // non-lockstep runs carry the policy so one json can mix nets.
      fj.label = "fuzz/" + info.name +
                 (lockstep ? std::string() : "/" + cli.common.net) + "/f" +
                 std::to_string(fj.params.f) + "/s" +
                 std::to_string(fj.params.seed);
      if (!cli.common.filter.empty() &&
          fj.label.find(cli.common.filter) == std::string::npos) {
        continue;
      }
      out.push_back(std::move(fj));
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ambb;

  Cli cli;
  if (!parse_cli(argc, argv, cli)) {
    usage(stderr);
    return 2;
  }

  if (!cli.protocol.empty() &&
      ambb::cli::resolve_protocol("ambb_fuzz", cli.protocol) == nullptr) {
    return 2;
  }

  std::vector<FuzzJob> fuzz_jobs;
  try {
    fuzz_jobs = expand(cli);
  } catch (const CheckError& e) {
    std::fprintf(stderr, "ambb_fuzz: %s\n", e.what());
    return 2;
  }
  if (fuzz_jobs.empty()) {
    std::fprintf(stderr, "ambb_fuzz: nothing to run (filter '%s')\n",
                 cli.common.filter.c_str());
    return 2;
  }

  if (cli.list) {
    for (const auto& fj : fuzz_jobs) std::printf("%s\n", fj.label.c_str());
    std::printf("%zu jobs\n", fuzz_jobs.size());
    return 0;
  }

  const engine::Engine eng(cli.common.jobs);
  const unsigned node_jobs =
      engine::resolve_node_jobs(cli.common.node_jobs, eng.jobs());
  const bool lockstep = cli.common.net == "lockstep";
  std::vector<engine::Job> jobs;
  jobs.reserve(fuzz_jobs.size());
  for (auto& fj : fuzz_jobs) {
    fj.params.node_jobs = node_jobs;
    // Non-lockstep campaigns relax the synchrony-conditional oracles
    // (termination + validity, see the --net doc above); consistency is
    // the hard safety oracle for every row except the registry-declared
    // round-deadline protocols.
    const bool stall_ok =
        may_stall(*fj.info, fj.params.adversary) || !lockstep;
    jobs.push_back(engine::Job{
        fj.label, [info = fj.info, p = fj.params] { return info->run(p); },
        stall_ok, /*allow_invalid=*/!lockstep,
        /*allow_split=*/!lockstep && fj.info->consistency_needs_sync});
  }

  std::printf("ambb_fuzz: %zu schedules on %u worker thread%s\n", jobs.size(),
              eng.jobs(), eng.jobs() == 1 ? "" : "s");

  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<engine::JobOutcome> outcomes = eng.run(jobs);
  const double wall_ms_total = std::chrono::duration<double, std::milli>(
                                   std::chrono::steady_clock::now() - t0)
                                   .count();

  const bool inject =
      std::getenv("AMBB_BENCH_INJECT_VIOLATION") != nullptr;
  std::vector<engine::RunRecord> records;
  records.reserve(outcomes.size());
  std::size_t violations = 0;
  std::size_t failed_jobs = 0;
  TextTable t({"run", "rounds", "honest bits", "adv bits", "erasures",
               "corrupt", "status"});
  for (const auto& out : outcomes) {
    engine::RunRecord rec = engine::to_record(out);
    if (inject) rec.violations += 1;  // prove the exit plumbing
    std::string status = "ok";
    if (!out.completed) {
      status = "FAILED";
      ++failed_jobs;
    } else if (rec.violations != 0) {
      status = "VIOLATION";
    }
    t.add_row({rec.label, std::to_string(rec.rounds),
               TextTable::bits_human(static_cast<double>(rec.honest_bits)),
               TextTable::bits_human(static_cast<double>(rec.adversary_bits)),
               std::to_string(rec.stats.erasures),
               std::to_string(rec.stats.corruptions), status});
    violations += rec.violations;
    records.push_back(std::move(rec));
  }
  std::printf("%s", t.render().c_str());

  for (const auto& out : outcomes) {
    if (!out.completed) {
      std::printf("!! %s did not complete: %s\n", out.label.c_str(),
                  out.error.c_str());
    } else if (!out.violations.empty()) {
      std::printf("!! %s: %zu property violations (first: %s)\n",
                  out.label.c_str(), out.violations.size(),
                  out.violations[0].c_str());
    }
  }

  // Under a non-lockstep policy the relaxed-oracle degradations (validity
  // everywhere, consistency on round-deadline rows) are the findings a
  // timing campaign exists to measure — count them per run and report
  // them without failing. Outcomes arrive in submission order, so
  // outcomes[i] is fuzz_jobs[i]'s run.
  if (!lockstep) {
    std::size_t degraded = 0;
    std::size_t split = 0;
    std::uint64_t deferred = 0;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      const auto& out = outcomes[i];
      if (!out.completed) continue;
      deferred += out.result.stats_summary().delayed;
      if (fuzz_jobs[i].info->consistency_needs_sync) {
        const auto c = check_consistency(out.result);
        if (!c.empty()) {
          ++split;
          std::printf(".. %s: consistency split under timing faults "
                      "(round-deadline row; %zu slots, first: %s)\n",
                      out.label.c_str(), c.size(), c[0].c_str());
        }
      }
      const auto v = check_validity(out.result);
      if (v.empty()) continue;
      ++degraded;
      std::printf(".. %s: validity degraded under timing faults "
                  "(%zu commits, first: %s)\n",
                  out.label.c_str(), v.size(), v[0].c_str());
    }
    std::printf("timing summary: %zu/%zu runs with degraded validity, "
                "%zu with consistency splits (round-deadline rows), "
                "%llu deliveries deferred (net %s)\n",
                degraded, outcomes.size(), split,
                static_cast<unsigned long long>(deferred),
                cli.common.net.c_str());
  }

  const std::string path = "BENCH_" + cli.common.out + ".json";
  if (engine::write_bench_json(path, cli.common.out, records, violations,
                               eng.jobs(), wall_ms_total)) {
    std::printf("wrote %s (%zu runs, %u threads, %.1f ms total)\n",
                path.c_str(), records.size(), eng.jobs(), wall_ms_total);
  } else {
    std::fprintf(stderr, "ambb_fuzz: could not write %s\n", path.c_str());
    return 2;
  }

  if (violations != 0 || failed_jobs != 0) {
    std::printf("!! %zu violations, %zu failed jobs — failing the fuzz run\n",
                violations, failed_jobs);
    return 1;
  }
  std::printf("no property violations across %zu randomized schedules\n",
              records.size());
  return 0;
}
