// Properties of Algorithm 5.2 (dishonest majority, f < n).
#include "bb/quadratic_bb.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace ambb::quad {
namespace {

QuadConfig base_cfg(std::uint32_t n, std::uint32_t f, Slot slots,
                    std::uint64_t seed, const std::string& adv) {
  QuadConfig cfg;
  cfg.n = n;
  cfg.f = f;
  cfg.slots = slots;
  cfg.seed = seed;
  cfg.adversary = adv;
  return cfg;
}

using Param = std::tuple<std::uint32_t, std::uint32_t, std::string,
                         std::uint64_t>;

class QuadProperties : public ::testing::TestWithParam<Param> {};

TEST_P(QuadProperties, ConsistencyTerminationValidity) {
  const auto& [n, f, adv, seed] = GetParam();
  auto r = run_quadratic(base_cfg(n, f, 2 * n, seed, adv));
  EXPECT_EQ(check_all(r), std::vector<std::string>{});
}

INSTANTIATE_TEST_SUITE_P(
    AdversarySweep, QuadProperties,
    ::testing::Combine(
        ::testing::Values(6u, 10u),
        ::testing::Values(3u),
        ::testing::Values("none", "silent", "equivocate", "conspiracy",
                          "lateprop", "floodaccuse"),
        ::testing::Values(1u, 19u)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_" +
             std::get<2>(info.param) + "_s" +
             std::to_string(std::get<3>(info.param));
    });

// The headline claim: f < n, i.e. a dishonest MAJORITY is tolerated.
INSTANTIATE_TEST_SUITE_P(
    DishonestMajority, QuadProperties,
    ::testing::Combine(::testing::Values(7u), ::testing::Values(5u, 6u),
                       ::testing::Values("silent", "equivocate",
                                         "conspiracy"),
                       ::testing::Values(2u)),
    [](const auto& info) {
      return "f" + std::to_string(std::get<1>(info.param)) + "_" +
             std::get<2>(info.param);
    });

TEST(Quadratic, HonestSenderValueDelivered) {
  auto cfg = base_cfg(8, 5, 8, 3, "silent");
  cfg.input_for_slot = [](Slot k) { return Value{7000 + k}; };
  auto r = run_quadratic(cfg);
  ASSERT_TRUE(check_all(r).empty());
  for (Slot k = 1; k <= 8; ++k) {
    const NodeId s = r.senders[k];
    if (r.corrupt[s]) continue;
    for (NodeId u = 0; u < 8; ++u) {
      if (r.corrupt[u]) continue;
      EXPECT_EQ(r.commits.get(u, k).value, Value{7000 + k});
    }
  }
}

TEST(Quadratic, CorruptSenderSlotsAllBotUnderSilent) {
  auto r = run_quadratic(base_cfg(8, 5, 10, 3, "silent"));
  ASSERT_TRUE(check_all(r).empty());
  for (Slot k = 1; k <= 10; ++k) {
    if (!r.corrupt[r.senders[k]]) continue;
    for (NodeId u = 0; u < 8; ++u) {
      if (r.corrupt[u]) continue;
      EXPECT_EQ(r.commits.get(u, k).value, kBotValue) << "slot " << k;
    }
  }
}

TEST(Quadratic, ConspiracyCommitsBotDespiteLateValue) {
  // The colluders release the value late; honest nodes hold the value but
  // must still unanimously commit bot (they removed the sender).
  auto r = run_quadratic(base_cfg(9, 4, 9, 7, "conspiracy"));
  ASSERT_TRUE(check_all(r).empty());
  for (Slot k = 1; k <= 9; ++k) {
    if (!r.corrupt[r.senders[k]]) continue;
    for (NodeId u = 4; u < 9; ++u) {
      EXPECT_EQ(r.commits.get(u, k).value, kBotValue)
          << "slot " << k << " node " << u;
    }
  }
}

TEST(Quadratic, RepeatOffenderSlotsAreSilent) {
  // Once a sender has been proven corrupt, its later slots cost (nearly)
  // nothing: no TrustCast accusations are refreshed and the Dolev-Strong
  // phase never re-fires (votes are shared across slots).
  auto cfg = base_cfg(8, 4, 33, 5, "silent");  // senders cycle every 8
  auto r = run_quadratic(cfg);
  ASSERT_TRUE(check_all(r).empty());
  // Slot 1 (node 0, first conviction) vs slot 25 (node 0 again).
  EXPECT_GT(r.per_slot_bits[1], 0u);
  EXPECT_EQ(r.per_slot_bits[25], 0u)
      << "a convicted sender's later slot still caused honest traffic";
}

TEST(Quadratic, FBoundEnforced) {
  auto cfg = base_cfg(4, 4, 1, 1, "none");
  EXPECT_THROW(run_quadratic(cfg), CheckError);
}

TEST(Quadratic, DeterministicAcrossRuns) {
  auto cfg = base_cfg(8, 5, 6, 77, "conspiracy");
  auto r1 = run_quadratic(cfg);
  auto r2 = run_quadratic(cfg);
  EXPECT_EQ(r1.honest_bits, r2.honest_bits);
  EXPECT_EQ(r1.per_slot_bits, r2.per_slot_bits);
}

TEST(Quadratic, MessageSizesFollowWireModel) {
  WireModel w{8, 256, 256};
  Msg m;
  m.kind = Kind::kProp;
  EXPECT_EQ(size_bits(m, w), w.header_bits() + 256 + 256 + w.id_bits());
  m.kind = Kind::kAccuse;
  EXPECT_EQ(size_bits(m, w),
            w.header_bits() + w.id_bits() + 256 + w.id_bits());
  m.kind = Kind::kCorrupt;
  EXPECT_EQ(size_bits(m, w),
            w.header_bits() + w.id_bits() + 256 + w.id_bits());
}

}  // namespace
}  // namespace ambb::quad
