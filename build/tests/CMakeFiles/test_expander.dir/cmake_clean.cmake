file(REMOVE_RECURSE
  "CMakeFiles/test_expander.dir/test_expander.cpp.o"
  "CMakeFiles/test_expander.dir/test_expander.cpp.o.d"
  "test_expander"
  "test_expander.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_expander.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
