# Empty dependencies file for test_phase_king.
# This may be replaced when dependencies are built.
