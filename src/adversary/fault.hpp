// Composable fault-injection primitives.
//
// The paper's claims are adversary-conditional: Algorithm 4's O(kappa*n)
// amortization holds under *strongly adaptive* erasure/corruption
// schedules, and the Appendix A liveness failure needs a selective-send
// leader. Instead of one hand-written Adversary subclass per attack, an
// adversary is described here as a SCHEDULE of primitive faults:
//
//   corrupt(r, v)                 v is Byzantine from round r on (r = 0
//                                 means initially corrupt; r > 0 means the
//                                 adversary corrupts v during the strongly
//                                 adaptive step at the end of round r-1,
//                                 so it may also erase v's round-(r-1)
//                                 traffic after the fact)
//   erase(r, v, density, ...)     erase a (seeded) subset of the
//                                 deliveries v emitted in round r
//   silence(v, from, to)          v emits nothing in rounds [from, to]
//   selective(v, from, to, keep)  v's sends only reach the keep-set
//   shuffle(v, from, to)          equivocation-by-misdirection: v's
//                                 per-recipient payload assignment is
//                                 permuted (valid signed messages arrive
//                                 at the wrong recipients)
//   stagger(v, from, to, d)       v's round-r output is withheld and
//                                 released in round r+d
//   delay(v, from, to, d)         timing fault: every delivery v emits in
//                                 rounds [from, to] arrives d extra
//                                 rounds late (clamped to the net
//                                 policy's bound; needs bounded/async)
//   reorder(v, from, to)          timing fault: v's deliveries in the
//                                 window get seeded per-delivery extra
//                                 delays in [0, bound] — arrival order is
//                                 scrambled relative to emission order
//
// delay/reorder are NETWORK faults, not corruptions: under a
// partially-synchronous or asynchronous policy the adversary schedules
// the network itself, so they may target ANY sender — honest included —
// and consume no corruption budget. They are rejected under lockstep
// (the synchronous model has no timing power).
//
// Faults compose by union (a schedule is a set of events; several faults
// may target the same node) and sequence (round windows). The types in
// this header are plain data, independent of any protocol's message type;
// scheduled.hpp materializes a schedule into an Adversary<Msg> for a
// concrete protocol, spec.cpp parses the "sched:..." string form, and
// fuzz.cpp generates seeded random budget-respecting schedules.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace ambb::adversary {

/// Inclusive upper bound for "until the end of the run" round windows.
inline constexpr Round kRoundMax = std::numeric_limits<Round>::max();

/// Erase densities are expressed in permille (1000 = every delivery).
inline constexpr std::uint32_t kDensityAll = 1000;

struct CorruptEvent {
  Round from = 0;         ///< Byzantine from this round on (0 = initial)
  NodeId node = kNoNode;
};

/// After-the-fact removal of deliveries sent by `sender` in `round`.
/// A delivery (sender -> to) is erased iff
///   to % to_mod == to_rem           (recipient stride filter), and
///   a Bernoulli(density/1000) draw from a (seed, salt, round)-keyed RNG
///   succeeds (density kDensityAll short-circuits the draw).
/// scheduled.hpp additionally lets protocol code attach a typed message
/// filter to a rule (e.g. "proposals only").
struct EraseEvent {
  Round round = 0;
  NodeId sender = kNoNode;
  std::uint32_t density_permille = kDensityAll;
  std::uint32_t to_mod = 1;  ///< 1 = no recipient filter
  std::uint32_t to_rem = 0;
  std::uint64_t salt = 0;
};

enum class FaultKind : std::uint8_t {
  kSilence,
  kSelective,
  kShuffle,
  kStagger,
};

const char* fault_kind_name(FaultKind k);

/// An actor-level fault: modifies the traffic a corrupt node emits while
/// the round window [from, to] is active. The node still runs the honest
/// protocol logic underneath (FaultedActor in scheduled.hpp); only its
/// output is filtered/mutated, which keeps the primitives meaningful for
/// ANY protocol without knowing its message type.
struct ActorFault {
  FaultKind kind = FaultKind::kSilence;
  NodeId node = kNoNode;
  Round from = 0;
  Round to = kRoundMax;           ///< inclusive
  std::uint32_t delay = 1;        ///< kStagger: release round offset
  std::vector<NodeId> keep;       ///< kSelective: recipients still served
};

enum class NetFaultKind : std::uint8_t {
  kDelay,
  kReorder,
};

const char* net_fault_kind_name(NetFaultKind k);

/// A timing fault: the network adversary defers deliveries emitted by
/// `sender` (any node — timing needs no corruption) while the round
/// window [from, to] is active. kDelay adds a fixed `extra` rounds to
/// every matching delivery; kReorder draws a per-delivery extra in
/// [0, policy bound] from a (seed, salt, round)-keyed RNG, scrambling
/// arrival order. Requires a non-lockstep net policy.
struct NetFault {
  NetFaultKind kind = NetFaultKind::kDelay;
  NodeId sender = kNoNode;
  Round from = 0;
  Round to = kRoundMax;     ///< inclusive
  std::uint32_t extra = 1;  ///< kDelay: extra rounds added
  std::uint64_t salt = 0;   ///< kReorder: per-rule RNG salt
};

/// A complete adversary description: the union of all scheduled events.
struct FaultSchedule {
  std::vector<CorruptEvent> corruptions;
  std::vector<EraseEvent> erasures;
  std::vector<ActorFault> actor_faults;
  std::vector<NetFault> net_faults;

  bool empty() const {
    return corruptions.empty() && erasures.empty() &&
           actor_faults.empty() && net_faults.empty();
  }
};

/// Structural validation against the execution parameters. Throws
/// CheckError naming the offending event if the schedule
///   - names a node >= n,
///   - corrupts more than f distinct nodes (budget violation),
///   - corrupts the same node twice,
///   - erases deliveries of a sender that is not corrupt by the end of
///     the erase round (erase(r, v) needs corrupt(r', v) with r' <= r+1),
///   - attaches an actor fault to a node with no corrupt event, or to
///     rounds before the node turns Byzantine (from < corrupt round),
///   - uses a kStagger delay of 0 or an inverted window (to < from), or
///   - uses a net fault with a kDelay extra of 0, an inverted window, or
///     a sender >= n (net faults need NO corrupt event: timing is a
///     network power — whether the run's net policy allows timing at all
///     is checked at materialization time, not here).
/// A validated schedule is budget-respecting by construction: the
/// simulator's corruption-budget CHECK can only fire if the caller runs
/// several adversaries against one simulation.
void validate(const FaultSchedule& s, std::uint32_t n, std::uint32_t f);

/// Human-readable one-line rendering (test failure messages, --list).
std::string describe(const FaultSchedule& s);

}  // namespace ambb::adversary
