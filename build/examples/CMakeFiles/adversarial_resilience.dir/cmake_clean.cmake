file(REMOVE_RECURSE
  "CMakeFiles/adversarial_resilience.dir/adversarial_resilience.cpp.o"
  "CMakeFiles/adversarial_resilience.dir/adversarial_resilience.cpp.o.d"
  "adversarial_resilience"
  "adversarial_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversarial_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
