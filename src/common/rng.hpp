// Deterministic pseudo-random generation.
//
// All randomness in the library flows through Rng so that every experiment
// is reproducible from a single 64-bit seed. We use xoshiro256** seeded via
// SplitMix64, the standard recommendation of Blackman & Vigna.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace ambb {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state);

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit word.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform_range(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli trial with probability p.
  bool chance(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// k distinct values sampled uniformly from [0, bound), in random order.
  std::vector<std::uint64_t> sample_distinct(std::uint64_t bound,
                                             std::size_t k);

  /// Derive an independent child generator (for per-node / per-module use).
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace ambb
