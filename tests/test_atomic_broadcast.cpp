// Atomic broadcast layer (Section 2's claim): total order, agreement and
// validity of the per-replica delivered logs, plus DeliveryQueue
// unit behavior (out-of-order buffering, gap-free release).
#include "bb/atomic_broadcast.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace ambb::abc {
namespace {

TEST(DeliveryQueue, InOrderDeliversImmediately) {
  DeliveryQueue q;
  q.decide(1, 0, 100, 10);
  q.decide(2, 1, 200, 20);
  EXPECT_EQ(q.delivered_upto(), 2u);
  EXPECT_EQ(q.log()[0].payload, 100u);
  EXPECT_EQ(q.log()[1].payload, 200u);
  EXPECT_EQ(q.pending(), 0u);
}

TEST(DeliveryQueue, OutOfOrderBuffersBehindGap) {
  DeliveryQueue q;
  q.decide(3, 2, 300, 30);
  q.decide(2, 1, 200, 20);
  EXPECT_EQ(q.delivered_upto(), 0u);  // slot 1 missing
  q.decide(1, 0, 100, 10);
  EXPECT_EQ(q.delivered_upto(), 3u);
  EXPECT_EQ(q.log()[0].slot, 1u);
  EXPECT_EQ(q.log()[2].slot, 3u);
}

TEST(DeliveryQueue, DuplicateDecisionRejected) {
  DeliveryQueue q;
  q.decide(1, 0, 100, 10);
  EXPECT_THROW(q.decide(1, 0, 100, 11), CheckError);
  q.decide(3, 0, 300, 12);
  EXPECT_THROW(q.decide(3, 0, 301, 13), CheckError);
}

class AbcProperties : public ::testing::TestWithParam<std::string> {};

TEST_P(AbcProperties, TotalOrderAgreementValidity) {
  AbcConfig cfg;
  cfg.n = 12;
  cfg.f = 4;
  cfg.slots = 10;
  cfg.seed = 19;
  cfg.adversary = GetParam();
  AbcResult r = run_atomic_broadcast(cfg);
  EXPECT_EQ(check_total_order(r), std::vector<std::string>{});
  EXPECT_EQ(check_agreement(r), std::vector<std::string>{});
  EXPECT_EQ(check_abc_validity(r), std::vector<std::string>{});
  // Full delivery: every honest replica's log covers all slots.
  for (NodeId v = 0; v < cfg.n; ++v) {
    if (!r.is_honest(v)) continue;
    EXPECT_EQ(r.replicas[v].delivered_upto(), cfg.slots);
    EXPECT_EQ(r.replicas[v].pending(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Adversaries, AbcProperties,
                         ::testing::Values("none", "silent", "selective",
                                           "mixed", "chaos", "drop"),
                         [](const auto& info) { return info.param; });

TEST(Abc, CustomPayloadsAreDelivered) {
  AbcConfig cfg;
  cfg.n = 10;
  cfg.f = 3;
  cfg.slots = 6;
  cfg.seed = 2;
  cfg.payload_for_slot = [](Slot k) { return Value{90000 + k}; };
  AbcResult r = run_atomic_broadcast(cfg);
  ASSERT_TRUE(check_total_order(r).empty());
  for (Slot k = 1; k <= 6; ++k) {
    EXPECT_EQ(r.replicas[5].log()[k - 1].payload, Value{90000 + k});
    EXPECT_EQ(r.replicas[5].log()[k - 1].proposer, r.bb.senders[k]);
  }
}

TEST(Abc, DecidedRoundsAreMonotonePerReplica) {
  AbcConfig cfg;
  cfg.n = 12;
  cfg.f = 4;
  cfg.slots = 8;
  cfg.seed = 3;
  cfg.adversary = "mixed";
  AbcResult r = run_atomic_broadcast(cfg);
  for (NodeId v = 0; v < cfg.n; ++v) {
    if (!r.is_honest(v)) continue;
    const auto& log = r.replicas[v].log();
    for (std::size_t i = 1; i < log.size(); ++i) {
      // Sequential slots: a later slot is decided in a later round.
      EXPECT_GT(log[i].decided_round, log[i - 1].decided_round);
    }
  }
}

}  // namespace
}  // namespace ambb::abc
