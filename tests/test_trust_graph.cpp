#include "graph/trust_graph.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace ambb {
namespace {

TEST(TrustGraph, StartsComplete) {
  TrustGraph g(5);
  EXPECT_EQ(g.vertex_count(), 5u);
  EXPECT_EQ(g.edge_count(), 10u);  // C(5,2)
  for (NodeId u = 0; u < 5; ++u) {
    EXPECT_TRUE(g.has_vertex(u));
    for (NodeId v = 0; v < 5; ++v) {
      if (u != v) EXPECT_TRUE(g.has_edge(u, v));
    }
  }
}

TEST(TrustGraph, NoSelfLoops) {
  TrustGraph g(4);
  EXPECT_FALSE(g.has_edge(2, 2));
}

TEST(TrustGraph, RemoveEdgeIsSymmetric) {
  TrustGraph g(4);
  g.remove_edge(0, 1);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_EQ(g.edge_count(), 5u);
}

TEST(TrustGraph, RemoveEdgeIdempotent) {
  TrustGraph g(4);
  g.remove_edge(0, 1);
  g.remove_edge(0, 1);
  EXPECT_EQ(g.edge_count(), 5u);
}

TEST(TrustGraph, RemoveVertexDropsIncidence) {
  TrustGraph g(4);
  g.remove_vertex(3);
  EXPECT_FALSE(g.has_vertex(3));
  EXPECT_EQ(g.vertex_count(), 3u);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_FALSE(g.has_edge(0, 3));
}

TEST(TrustGraph, DistancesOnPath) {
  TrustGraph g(4);
  // Reduce the complete graph to the path 0-1-2-3.
  g.remove_edge(0, 2);
  g.remove_edge(0, 3);
  g.remove_edge(1, 3);
  auto d = g.distances_from(0);
  EXPECT_EQ(d[0], 0u);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[2], 2u);
  EXPECT_EQ(d[3], 3u);
}

TEST(TrustGraph, DistancesUnreachable) {
  TrustGraph g(3);
  g.remove_edge(0, 1);
  g.remove_edge(0, 2);
  auto d = g.distances_from(0);
  EXPECT_EQ(d[1], TrustGraph::kUnreachable);
  EXPECT_EQ(d[2], TrustGraph::kUnreachable);
}

TEST(TrustGraph, PruneRemovesUnreachable) {
  TrustGraph g(4);
  g.remove_edge(0, 3);
  g.remove_edge(1, 3);
  g.remove_edge(2, 3);
  g.prune_unconnected(0);
  EXPECT_FALSE(g.has_vertex(3));
  EXPECT_EQ(g.vertex_count(), 3u);
}

TEST(TrustGraph, PruneKeepsIndirectlyConnected) {
  TrustGraph g(4);
  g.remove_edge(0, 3);  // 3 still reachable via 1 and 2
  g.prune_unconnected(0);
  EXPECT_TRUE(g.has_vertex(3));
}

TEST(TrustGraph, SubgraphRelation) {
  TrustGraph a(4), b(4);
  EXPECT_TRUE(a.is_subgraph_of(b));
  a.remove_edge(0, 1);
  EXPECT_TRUE(a.is_subgraph_of(b));
  EXPECT_FALSE(b.is_subgraph_of(a));
  b.remove_edge(0, 1);
  b.remove_edge(2, 3);
  EXPECT_FALSE(a.is_subgraph_of(b));
}

TEST(TrustGraph, SubgraphIgnoresRemovedVertices) {
  TrustGraph a(4), b(4);
  a.remove_vertex(2);
  EXPECT_TRUE(a.is_subgraph_of(b));
  b.remove_vertex(3);
  EXPECT_FALSE(a.is_subgraph_of(b));  // a still has vertex 3
}

TEST(TrustGraph, PruneToleratesMissingOwner) {
  TrustGraph g(3);
  g.remove_vertex(0);
  EXPECT_NO_THROW(g.prune_unconnected(0));
}

TEST(TrustGraph, DistancesFromRemovedVertexAllUnreachable) {
  TrustGraph g(3);
  g.remove_vertex(1);
  auto d = g.distances_from(1);
  for (auto x : d) EXPECT_EQ(x, TrustGraph::kUnreachable);
}

}  // namespace
}  // namespace ambb
