// Steady-state allocation audit for the Algorithm 4 hot path (DESIGN.md
// §14). Global operator new/delete are replaced with counting hooks and a
// full multi-shot run is stepped with a per-round observer: once the
// warmup slots have grown every arena, ArenaVector hint, and reserved
// container to its high-water mark, each remaining round must perform
// ZERO heap allocations. This is the enforcement side of the per-round
// arena design — a regression that sneaks a std::vector rebuild or a
// node-based container back into the round loop fails here, not in a
// profiler three PRs later.
//
// The hooks count every allocation in the process, so the test avoids
// allocating in its own observer (the sample buffer is pre-reserved).
// Not run under asan/tsan (the sanitizer allocators bypass user
// replacements); see tests/CMakeLists.txt labels.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "bb/linear_bb.hpp"
#include "runner/result.hpp"

namespace {

std::atomic<std::uint64_t> g_allocs{0};

void* counted_alloc(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* counted_alloc(std::size_t size, std::size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  if (void* p = std::aligned_alloc(align, rounded ? rounded : align)) {
    return p;
  }
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace ambb {
namespace {

TEST(AllocHotPath, SteadyStateAlg4RoundsAllocateNothing) {
  linear::LinearConfig cfg;
  cfg.n = 16;
  cfg.f = 4;
  cfg.slots = 6;
  cfg.seed = 3;
  cfg.eps = 0.2;
  cfg.adversary = "none";

  // Absolute counter samples, one per round; pre-reserved so recording
  // them is itself allocation-free.
  const std::uint64_t total_rounds =
      std::uint64_t{cfg.slots} * linear::Schedule{cfg.f}.rounds_per_slot();
  std::vector<std::uint64_t> samples;
  samples.reserve(static_cast<std::size_t>(total_rounds) + 1);
  cfg.on_round_end = [&samples](Round, linear::Sim&) {
    samples.push_back(g_allocs.load(std::memory_order_relaxed));
  };

  samples.push_back(g_allocs.load(std::memory_order_relaxed));
  const RunResult r = run_linear(cfg);
  ASSERT_EQ(samples.size(), static_cast<std::size_t>(total_rounds) + 1);
  ASSERT_EQ(r.rounds, total_rounds);

  // Warmup: the first two slots grow arenas/hints to high water (slot 1
  // populates everything once; slot 2 covers paths that only allocate on
  // the second pass, e.g. geometric reservations finishing).
  const std::uint64_t rounds_per_slot = total_rounds / cfg.slots;
  const std::size_t warmup = static_cast<std::size_t>(2 * rounds_per_slot);

  std::uint64_t steady_allocs = 0;
  for (std::size_t i = warmup; i + 1 < samples.size(); ++i) {
    const std::uint64_t delta = samples[i + 1] - samples[i];
    EXPECT_EQ(delta, 0u) << "round " << i << " performed " << delta
                         << " heap allocations in steady state";
    steady_allocs += delta;
  }
  EXPECT_EQ(steady_allocs, 0u);

  // The run itself must still be a real, committing execution.
  EXPECT_GT(r.honest_bits, 0u);
  EXPECT_GT(samples.back(), samples.front());  // warmup did allocate
}

TEST(AllocHotPath, HooksActuallyCount) {
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  auto* p = new std::uint64_t[8];
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
  delete[] p;
  EXPECT_GT(after, before);
}

}  // namespace
}  // namespace ambb
