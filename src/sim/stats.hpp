// Per-round observability for the lock-step simulator.
//
// Simulation::step() fills one RoundStats per executed round: how much
// traffic the round produced (shared records vs fanned-out deliveries),
// what the ledger charged, what the strongly adaptive adversary did, and
// where the wall-clock went inside step(). The numbers are measurement
// metadata only — they never feed back into the execution, so collecting
// them cannot perturb determinism.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace ambb {

struct RoundStats {
  Round round = 0;

  /// Traffic records emitted this round (a multicast is ONE record).
  std::uint32_t records = 0;
  /// Individual (sender, recipient) deliveries those records fan out to.
  std::uint64_t deliveries = 0;

  /// Bits the ledger charged for this round's surviving traffic.
  std::uint64_t honest_bits = 0;
  std::uint64_t adversary_bits = 0;

  /// Strongly adaptive activity: deliveries removed after-the-fact and
  /// nodes newly corrupted during observe_round (or bind time, round 0).
  std::uint32_t erasures = 0;
  std::uint32_t corruptions = 0;

  /// Deliveries of this round deferred past the lock-step latency by the
  /// delay policy or a timing adversary (DESIGN.md §16). Always zero
  /// under the lockstep policy.
  std::uint64_t delayed = 0;

  /// Wall-clock per phase of Simulation::step(), nanoseconds.
  std::uint64_t ns_honest = 0;      ///< step 1: honest actors
  std::uint64_t ns_byzantine = 0;   ///< step 2: rushing Byzantine actors
  std::uint64_t ns_adversary = 0;   ///< step 3: observe_round
  std::uint64_t ns_accounting = 0;  ///< step 4: ledger charges
  std::uint64_t ns_delivery = 0;    ///< step 5: inbox fan-out

  std::uint64_t ns_total() const {
    return ns_honest + ns_byzantine + ns_adversary + ns_accounting +
           ns_delivery;
  }
};

/// Aggregate of a full run's RoundStats (sums, plus the peak round).
struct RoundStatsSummary {
  std::uint64_t rounds = 0;
  std::uint64_t records = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t honest_bits = 0;
  std::uint64_t adversary_bits = 0;
  std::uint64_t erasures = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t delayed = 0;
  std::uint64_t ns_honest = 0;
  std::uint64_t ns_byzantine = 0;
  std::uint64_t ns_adversary = 0;
  std::uint64_t ns_accounting = 0;
  std::uint64_t ns_delivery = 0;
  std::uint64_t max_round_deliveries = 0;

  std::uint64_t ns_total() const {
    return ns_honest + ns_byzantine + ns_adversary + ns_accounting +
           ns_delivery;
  }
};

/// Fold one round into a running summary. This is THE aggregation rule:
/// summarize(), Simulation's running summary, and the engine/report
/// aggregates all route through it — field sums live in exactly one
/// place.
void accumulate(RoundStatsSummary& s, const RoundStats& r);

RoundStatsSummary summarize(const std::vector<RoundStats>& stats);

}  // namespace ambb
