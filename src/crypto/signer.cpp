#include "crypto/signer.hpp"

#include <atomic>

#include "common/byte_buf.hpp"
#include "common/check.hpp"
#include "crypto/hmac.hpp"

namespace ambb {

namespace {
Digest derive_key(const Digest& master, std::uint64_t index) {
  Encoder& e = Encoder::scratch();
  e.put_tag("ambb-node-key");
  e.put_u64(index);
  const Digest d = Sha256::hash(e.view());
  return hmac_sha256(master, d);
}

constexpr std::uint64_t fnv1a_str(const char* s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (; *s != '\0'; ++s) {
    h ^= static_cast<std::uint8_t>(*s);
    h *= 1099511628211ULL;
  }
  return h;
}
}  // namespace

KeyRegistry::KeyRegistry(std::uint32_t n, std::uint64_t master_seed) : n_(n) {
  AMBB_CHECK(n >= 1);
  static std::atomic<std::uint64_t> next_uid{1};
  uid_ = next_uid.fetch_add(1, std::memory_order_relaxed);
  Encoder& e = Encoder::scratch();
  e.put_tag("ambb-master-key");
  e.put_u64(master_seed);
  master_key_ = Sha256::hash(e.view());
  node_keys_.reserve(n);
  node_prf_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    node_keys_.push_back(derive_key(master_key_, i));
    node_prf_.emplace_back(node_keys_.back());
  }
  master_prf_.emplace_back(master_key_);
}

Digest KeyRegistry::cached_mac(std::uint32_t owner, const PrfKey& key,
                               std::uint64_t domain, const Digest& d) const {
  // The MAC memo is per-thread, keyed on the registry uid: node-sharded
  // rounds drive one registry from several worker threads at once, so a
  // shared member cache would race, and keying on uid (rather than
  // folding it into the cache key) guarantees a thread that switches
  // registries can never be served a MAC computed under different keys —
  // the whole cache is dropped instead.
  thread_local struct TlMacCache {
    std::uint64_t reg = 0;  ///< registry uid, 0 = empty
    VerifyCache cache;
  } tl;
  if (tl.reg != uid_) {
    tl.cache.clear();
    tl.reg = uid_;
  }
  if (const Digest* m = tl.cache.find(owner, domain, d)) return *m;
  const Digest out = key.mac(domain, d);
  tl.cache.store(owner, domain, d, out);
  return out;
}

Signature KeyRegistry::sign(NodeId signer, const Digest& d) const {
  AMBB_CHECK(signer < n_);
  constexpr std::uint64_t kSigDom = fnv1a_str("sig");
  return Signature{signer, cached_mac(signer, node_prf_[signer], kSigDom, d)};
}

bool KeyRegistry::verify(const Signature& sig, const Digest& d) const {
  if (sig.signer >= n_) return false;
  constexpr std::uint64_t kSigDom = fnv1a_str("sig");
  // Last-args memo (see ThresholdScheme::verify): a multicast signature is
  // re-verified by every recipient in turn with identical arguments.
  thread_local struct {
    std::uint64_t reg = 0;  ///< registry uid, 0 = empty
    NodeId signer = kNoNode;
    Digest d{};
    Digest mac{};
  } memo;
  if (memo.reg != uid_ || memo.signer != sig.signer || memo.d != d) {
    memo.reg = uid_;
    memo.signer = sig.signer;
    memo.d = d;
    memo.mac = cached_mac(sig.signer, node_prf_[sig.signer], kSigDom, d);
  }
  return sig.mac == memo.mac;
}

Digest KeyRegistry::mac_as(NodeId i, const char* domain,
                           const Digest& d) const {
  AMBB_CHECK(i < n_);
  return cached_mac(i, node_prf_[i], fnv1a_str(domain), d);
}

Digest KeyRegistry::master_mac(const char* domain, const Digest& d) const {
  return cached_mac(kMasterOwner, master_prf_[0], fnv1a_str(domain), d);
}

}  // namespace ambb
