file(REMOVE_RECURSE
  "CMakeFiles/test_linear_bb.dir/test_linear_bb.cpp.o"
  "CMakeFiles/test_linear_bb.dir/test_linear_bb.cpp.o.d"
  "test_linear_bb"
  "test_linear_bb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linear_bb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
