// Plain-text table formatting for the benchmark harnesses (each bench
// prints the rows/series of the paper artifact it regenerates).
#pragma once

#include <string>
#include <vector>

namespace ambb {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Render with aligned columns, a header underline, and `indent` leading
  /// spaces on every line.
  std::string render(int indent = 0) const;

  static std::string num(double v, int precision = 1);
  static std::string bits_human(double bits);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ambb
