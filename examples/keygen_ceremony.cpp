// Distributed key-generation-style ceremony under a DISHONEST MAJORITY,
// on top of Algorithm 5.2 (amortized O(kappa n^2), f < n).
//
// Many cryptographic protocols assume a broadcast channel with sequential,
// causal invocations (Section 1: [4, 17, 28]): every participant in turn
// broadcasts a contribution that depends on the transcript so far. Here
// each of the n participants broadcasts one contribution; dishonest
// participants (a majority!) may equivocate or stay silent — their round
// is then pinned to a provable "disqualified" (bot) outcome, and all
// honest participants still derive the identical final transcript digest.
#include <cstdio>
#include <string>

#include "bb/quadratic_bb.hpp"
#include "common/byte_buf.hpp"
#include "crypto/sha256.hpp"
#include "runner/result.hpp"
#include "runner/table.hpp"

int main() {
  using namespace ambb;

  const std::uint32_t n = 10;
  const std::uint32_t f = 6;  // dishonest majority
  const Slot rounds = n;      // one contribution per participant

  quad::QuadConfig cfg;
  cfg.n = n;
  cfg.f = f;
  cfg.slots = rounds;
  cfg.seed = 31337;
  cfg.adversary = "equivocate";  // corrupt dealers equivocate
  // Participant k-1 is the dealer of ceremony round k.
  cfg.sender_of = [](Slot k) { return static_cast<NodeId>(k - 1); };
  // A contribution is a hash of the dealer id and round (stands in for a
  // commitment to a secret-sharing polynomial).
  cfg.input_for_slot = [](Slot k) -> Value {
    Encoder e;
    e.put_tag("dkg-contribution");
    e.put_u32(k);
    const Digest d = Sha256::hash(
        std::span<const std::uint8_t>(e.bytes().data(), e.bytes().size()));
    Value v = 0;
    for (int i = 0; i < 8; ++i) v = v << 8 | d[i];
    return v;
  };

  std::printf(
      "DKG-style ceremony over Algorithm 5.2: %u participants, %u "
      "dishonest (MAJORITY), equivocating dealers\n\n",
      n, f);
  RunResult r = quad::run_quadratic(cfg);

  auto errs = check_all(r);
  for (const auto& e : errs) std::printf("PROPERTY VIOLATION: %s\n", e.c_str());
  if (!errs.empty()) return 1;

  TextTable t({"round", "dealer", "dealer status", "outcome"});
  std::uint32_t qualified = 0;
  for (Slot k = 1; k <= rounds; ++k) {
    // Read the outcome from the first honest participant (all agree).
    Value v = kBotValue;
    for (NodeId u = 0; u < n; ++u) {
      if (!r.corrupt[u]) {
        v = r.commits.get(u, k).value;
        break;
      }
    }
    const bool disqualified = v == kBotValue;
    if (!disqualified) ++qualified;
    t.add_row({std::to_string(k), std::to_string(r.senders[k]),
               r.corrupt[r.senders[k]] ? "corrupt" : "honest",
               disqualified ? "disqualified (bot)" : "accepted"});
  }
  std::printf("%s\n", t.render().c_str());

  // Transcript digest per honest participant.
  std::string first;
  bool all_equal = true;
  for (NodeId u = 0; u < n; ++u) {
    if (r.corrupt[u]) continue;
    Encoder e;
    for (Slot k = 1; k <= rounds; ++k) e.put_u64(r.commits.get(u, k).value);
    const Digest d = Sha256::hash(
        std::span<const std::uint8_t>(e.bytes().data(), e.bytes().size()));
    const std::string hex = digest_hex(d).substr(0, 16);
    if (first.empty()) first = hex;
    all_equal &= hex == first;
  }
  std::printf("qualified contributions: %u/%u (every honest dealer "
              "qualified)\n", qualified, n);
  std::printf("transcript digest agreed by all honest participants: %s "
              "(%s)\n", first.c_str(), all_equal ? "identical" : "MISMATCH");
  std::printf("amortized cost: %s/round\n",
              TextTable::bits_human(r.amortized()).c_str());
  return all_equal ? 0 : 1;
}
