#include "sim/net_policy.hpp"

#include <cstdint>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace ambb {

namespace {

/// Digit-only parse with an overflow check; rejects empty and any
/// non-digit so "bounded:3x" and "bounded:-1" fail loudly.
std::uint32_t parse_u32_field(const std::string& spec, const std::string& s) {
  AMBB_CHECK_MSG(!s.empty(), "bad net spec '" + spec + "': missing number");
  std::uint64_t v = 0;
  for (char c : s) {
    AMBB_CHECK_MSG(c >= '0' && c <= '9',
                   "bad net spec '" + spec + "': '" + s + "' is not a number");
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
    AMBB_CHECK_MSG(v <= 0xFFFFFFFFULL,
                   "bad net spec '" + spec + "': number out of range");
  }
  return static_cast<std::uint32_t>(v);
}

}  // namespace

const char* net_kind_name(NetKind k) {
  switch (k) {
    case NetKind::kLockstep: return "lockstep";
    case NetKind::kBounded: return "bounded";
    case NetKind::kAsync: return "async";
  }
  return "?";
}

std::uint32_t NetPolicy::max_extra() const {
  switch (kind) {
    case NetKind::kLockstep: return 0;
    case NetKind::kBounded: return delta;
    case NetKind::kAsync: return cap;
  }
  return 0;
}

std::uint32_t NetPolicy::base_extra(Round r, std::uint64_t delivery_index)
    const {
  if (kind != NetKind::kBounded || delta == 0) return 0;
  // Pure hash, no sequential state: the draw for delivery d of round r is
  // the same no matter how many worker threads produced the record or in
  // which order other deliveries were examined.
  std::uint64_t h = seed ^
                    (static_cast<std::uint64_t>(r) + 1) *
                        0x9E3779B97F4A7C15ULL ^
                    (delivery_index + 1) * 0xBF58476D1CE4E5B9ULL;
  return static_cast<std::uint32_t>(splitmix64(h) %
                                    (static_cast<std::uint64_t>(delta) + 1));
}

std::uint32_t NetPolicy::clamp_extra(std::uint64_t extra) const {
  const std::uint64_t bound = max_extra();
  return static_cast<std::uint32_t>(extra < bound ? extra : bound);
}

std::string NetPolicy::spec() const {
  switch (kind) {
    case NetKind::kLockstep: return "lockstep";
    case NetKind::kBounded: return "bounded:" + std::to_string(delta);
    case NetKind::kAsync: return "async:" + std::to_string(cap);
  }
  return "?";
}

NetPolicy parse_net_policy(const std::string& spec) {
  const std::size_t colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  const bool has_arg = colon != std::string::npos;
  const std::string arg = has_arg ? spec.substr(colon + 1) : std::string{};

  NetPolicy p;
  if (kind == "lockstep") {
    AMBB_CHECK_MSG(!has_arg, "bad net spec '" + spec +
                                 "': lockstep takes no parameter");
    p.kind = NetKind::kLockstep;
  } else if (kind == "bounded") {
    AMBB_CHECK_MSG(has_arg, "bad net spec '" + spec +
                                "': bounded needs a delta, e.g. bounded:2");
    p.kind = NetKind::kBounded;
    p.delta = parse_u32_field(spec, arg);
  } else if (kind == "async") {
    p.kind = NetKind::kAsync;
    if (has_arg) p.cap = parse_u32_field(spec, arg);
    AMBB_CHECK_MSG(p.cap >= 1,
                   "bad net spec '" + spec +
                       "': async cap must be >= 1 (eventual delivery)");
  } else {
    AMBB_CHECK_MSG(false, "bad net spec '" + spec +
                              "': expected lockstep | bounded:<delta> | "
                              "async[:<cap>]");
  }
  return p;
}

NetPolicy make_net_policy(const std::string& spec, std::uint64_t run_seed) {
  NetPolicy p = parse_net_policy(spec);
  // Salt so the network's stream never collides with protocol or
  // adversary streams forked from the same run seed.
  std::uint64_t s = run_seed ^ 0x5E7D0A11C0FFEE42ULL;
  p.seed = splitmix64(s);
  return p;
}

}  // namespace ambb
