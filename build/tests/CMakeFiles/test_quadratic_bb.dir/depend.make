# Empty dependencies file for test_quadratic_bb.
# This may be replaced when dependencies are built.
