// Algorithm 4: multi-shot Byzantine broadcast with amortized O(kappa*n)
// communication under f <= (1/2 - eps)n (Section 4 of the paper).
//
// Structure per slot k: f+2 epochs of 11 rounds each; epoch i of slot k
// starts at round 11*((k-1)(f+2) + i). Epoch leader: L_0 = S_k (the slot
// sender), L_i = node i-1 (0-indexed) for 1 <= i <= f+1, so epochs
// 1..f+1 have distinct leaders and at least one is honest.
//
// Round offsets within an epoch:
//   0 Collect      send freshest slot-k certificate (or bot) to L_i
//   1 Propose      leader multicasts <prop, k, i, m, C>_{L_i}
//   2 Propagate-1  forward an acceptably-fresh proposal to expander nbrs
//   3 Vote         accuse on equivocation, else vote share -> leader
//   4 Certificate  leader aggregates n-f votes -> C_{k,i}(m), multicast
//   5 Propagate-2  forward cert to nbrs; cert share -> leader
//   6 Commit       leader aggregates n-f cert shares -> commit-proof,
//                  multicast
//   7 Query-1      missing proof: multicast accuse(L_i), query1 -> helper
//   8 Respond-1    helper with a proof answers its querier
//   9 Query-2      helper failed: multicast accuse(helper) + query2
//  10 Respond-2    nodes with a proof answer fresh-accusation query2s
//
// Two points are under-specified in the paper text; we implement the
// reading required by the paper's own proofs and document it here:
//
//  1. All nodes that miss the commit-proof accuse L_i simultaneously in
//     round Query-1, so a querier cannot know at selection time whether
//     its helper also missed the proof (and an equally starved honest
//     helper cannot respond). Lemma 3's proof ("u would not have sent
//     query1 to L_i") only goes through if the accusation of round
//     Query-2 targets a helper selected with round-Query-2 knowledge,
//     which by then includes all simultaneous Query-1 accusations: the
//     querier re-evaluates "smallest v not accused by me that has not
//     accused L_i" and accuses THAT node (it provably withheld a proof
//     it must hold, or is refusing service). Accusing the stale round-
//     Query-1 target instead would make honest nodes accuse equally
//     starved honest helpers; corrupt-proofs could then form on honest
//     future leaders and termination would break — later epochs cannot
//     rescue a starved node on their own, because committed nodes are
//     gated out of voting and no n-f quorum remains.
//  2. The epoch gate ("runs the following steps if it has neither
//     committed nor received the corrupt-proof of L_i") applies to the
//     progress steps (offsets 0-7 and 9). Respond-1/Respond-2 must keep
//     running after commit — a committed node is exactly the node that
//     holds the commit-proof its querier needs, and Lemma 3 relies on
//     helpers answering. A responder answers with any slot-k commit
//     proof it holds (same wire size).
//
// Cross-slot persistent state (the amortization technique): the set of
// accusations a node has issued and seen, corrupt-proofs, and the derived
// helper-selection order. Every super-linear event consumes a fresh
// accusation pair or a one-time corrupt-proof, bounding the additive cost
// by O(kappa*n^3) (Section 4.2).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/bitvec.hpp"
#include "common/types.hpp"
#include "common/wire.hpp"
#include "crypto/signer.hpp"
#include "crypto/threshold.hpp"
#include "graph/expander.hpp"
#include "runner/result.hpp"
#include "sim/commit_log.hpp"
#include "sim/net.hpp"

namespace ambb::linear {

enum class Kind : MsgKind {
  kCollect = 0,
  kPropose,
  kPropForward,
  kVote,
  kCert,
  kCertForward,
  kCertVote,
  kCommitProof,
  kAccuse,
  kAccuseForward,
  kCorruptProof,
  kQuery1,
  kQuery2,
  kKindCount
};

const char* kind_name(Kind k);
std::vector<std::string> kind_names();

struct Msg {
  Kind kind = Kind::kCollect;
  Slot slot = 0;
  Epoch epoch = 0;
  Value value = 0;

  bool has_cert = false;     ///< Collect/Propose: false encodes bot
  Epoch cert_epoch = 0;
  ThresholdSig cert{};       ///< thsig(vote, k, j, m)

  Epoch proof_epoch = 0;     ///< CommitProof: the epoch j of the proof
  ThresholdSig proof{};      ///< commit-proof or corrupt-proof

  SigShare share{};          ///< Vote / CertVote / Accuse share
  Signature sig{};           ///< leader signature on a proposal
  NodeId accused = kNoNode;  ///< Accuse* / CorruptProof
};

/// Exact wire size in bits under the paper's size model.
std::uint64_t size_bits(const Msg& m, const WireModel& wire);

// Signing digests (domain-separated canonical encodings).
Digest vote_digest(Slot k, Epoch i, Value m);
Digest commit_digest(Slot k, Epoch i, Value m);
Digest accuse_digest(NodeId accused);
Digest prop_digest(const Msg& prop);

/// Ablation switches (DESIGN.md experiment A1 and the Momose-Ren-style
/// baseline of Table 1 rows 2-3).
struct Options {
  /// Keep accusation state across slots (the paper's amortization). When
  /// false, all accusation knowledge resets at each slot boundary.
  bool persistent_accusations = true;
  /// Use the Query-1/2 + Respond-1/2 dissemination path.
  bool use_query_path = true;
  /// Every node multicasts the first commit-proof it receives (the
  /// always-forward dissemination of quadratic BBs). Gives O(kappa n^2)
  /// per slot regardless of the adversary.
  bool always_forward_commit_proof = false;

  static Options paper() { return {}; }
  /// Momose-Ren-style O(kappa n^2)-per-slot baseline (see DESIGN.md).
  static Options mr_baseline() { return {false, false, true}; }
  static Options no_memory() { return {false, true, false}; }
  static Options no_query() { return {true, false, false}; }
};

struct Schedule {
  std::uint32_t f = 0;
  static constexpr std::uint32_t kRoundsPerEpoch = 11;

  std::uint32_t epochs_per_slot() const { return f + 2; }
  std::uint64_t rounds_per_slot() const {
    return static_cast<std::uint64_t>(kRoundsPerEpoch) * epochs_per_slot();
  }
  Slot slot_of(Round r) const {
    return static_cast<Slot>(r / rounds_per_slot()) + 1;
  }
  Epoch epoch_of(Round r) const {
    return static_cast<Epoch>((r % rounds_per_slot()) / kRoundsPerEpoch);
  }
  std::uint32_t offset_of(Round r) const {
    return static_cast<std::uint32_t>(r % kRoundsPerEpoch);
  }
};

/// Accounting policy, evaluated by the simulator once per traffic record
/// (once per multicast, once per unicast — never per delivery).
struct CostPolicy {
  WireModel wire;
  Schedule sched;

  std::uint64_t size_bits(const Msg& m) const;
  MsgKind kind(const Msg& m) const { return static_cast<MsgKind>(m.kind); }
  Slot slot(const Msg& m, Round sent_round) const {
    return m.slot != 0 ? m.slot : sched.slot_of(sent_round);
  }
};

using Sim = Simulation<Msg, CostPolicy>;

/// Read-only execution context shared by all actors of one run.
struct Context {
  std::uint32_t n = 0;
  std::uint32_t f = 0;
  WireModel wire;
  Schedule sched;
  const KeyRegistry* registry = nullptr;
  const ThresholdScheme* th = nullptr;  ///< threshold t = n - f
  const Graph* expander = nullptr;
  CommitLog* commits = nullptr;
  Options opts;
  std::function<Value(Slot)> input_for_slot;
  std::function<NodeId(Slot)> sender_of;
  trace::TraceSink* trace = nullptr;  ///< optional event sink, not owned

  NodeId leader(Slot k, Epoch i) const {
    return i == 0 ? sender_of(k) : static_cast<NodeId>((i - 1) % n);
  }
};

class LinearNode;

/// Byzantine deviation hooks. An adversary actor is a LinearNode carrying
/// a Deviation; null means honest. Keeping deviations as explicit hooks on
/// the honest state machine makes each attack's deviation auditable.
class Deviation {
 public:
  virtual ~Deviation() = default;
  /// Drop everything this round (receive-only).
  virtual bool silent(Round) const { return false; }
  /// Filter an outgoing message (selective send / withholding).
  virtual bool drop_send(Round r, std::uint32_t offset, Kind kind,
                         NodeId to) {
    (void)r;
    (void)offset;
    (void)kind;
    (void)to;
    return false;
  }
  /// Take over the leader's Propose step entirely (e.g. equivocate).
  /// Return true if handled.
  virtual bool override_propose(LinearNode& self, RoundApi<Msg>& api) {
    (void)self;
    (void)api;
    return false;
  }
  /// Arbitrary extra traffic at the end of the round.
  virtual void extra(LinearNode& self, Round r, std::uint32_t offset,
                     RoundApi<Msg>& api) {
    (void)self;
    (void)r;
    (void)offset;
    (void)api;
  }
};

class LinearNode final : public Actor<Msg> {
 public:
  LinearNode(NodeId id, const Context* ctx,
             std::unique_ptr<Deviation> deviation = nullptr);

  void on_round(Round r, std::span<const Delivery<Msg>> inbox,
                const TrafficView<Msg>& rushed,
                RoundApi<Msg>& api) override;

  // ---- Introspection (tests + deviations) ----
  NodeId id() const { return id_; }
  const Context& ctx() const { return *ctx_; }
  bool accused(NodeId v) const { return accused_by_me_.get(v); }
  const BitVec& accused_by_me() const { return accused_by_me_; }
  bool seen_accuse(NodeId accuser, NodeId target) const {
    return accuse_seen_[accuser].get(target);
  }
  bool has_corrupt_proof(NodeId v) const { return corrupt_proof_have_[v]; }
  bool committed_current_slot() const { return committed_; }
  Slot current_slot() const { return cur_slot_; }
  std::uint64_t expensive_epochs() const { return expensive_epochs_; }

  // ---- Helpers usable from Deviation implementations ----
  /// Build a correctly signed proposal for the current (slot, epoch) with
  /// the given value and no certificate.
  Msg build_fresh_proposal(Value v) const;
  /// Issue (and record) an accusation share against v, multicast.
  void issue_accuse(NodeId v, RoundApi<Msg>& api);
  Msg build_query2() const;

 private:
  // Inbox processing: the "at any point" (*) rules plus state updates.
  void process_inbox(Round r, std::span<const Delivery<Msg>> inbox,
                     RoundApi<Msg>& api);
  void handle_accuse(const Msg& m, bool forwarded, RoundApi<Msg>& api);
  void maybe_commit(Slot k, Epoch j, Value v, const ThresholdSig& proof,
                    Round r, RoundApi<Msg>& api);
  void trace_commit(Slot k, Epoch j, Value v, Round r);
  void note_cert(Slot k, Epoch j, Value v, const ThresholdSig& cert);

  // Offset-specific progress steps.
  void do_collect(RoundApi<Msg>& api);
  void do_propose(RoundApi<Msg>& api);
  void do_propagate1(std::span<const Delivery<Msg>> inbox,
                     RoundApi<Msg>& api);
  void do_vote(RoundApi<Msg>& api);
  void do_certificate(RoundApi<Msg>& api);
  void do_propagate2(std::span<const Delivery<Msg>> inbox,
                     RoundApi<Msg>& api);
  void do_commit(RoundApi<Msg>& api);
  void do_query1(RoundApi<Msg>& api);
  void do_respond1(std::span<const Delivery<Msg>> inbox, RoundApi<Msg>& api);
  void respond_to_querier(NodeId querier, RoundApi<Msg>& api);
  void do_query2(RoundApi<Msg>& api);
  void do_respond2(std::span<const Delivery<Msg>> inbox, RoundApi<Msg>& api);

  void reset_slot(Slot k);
  void reset_epoch(Epoch i);
  void out(RoundApi<Msg>& api, NodeId to, const Msg& m);
  void out_multicast(RoundApi<Msg>& api, const Msg& m);
  /// Smallest w != self with !accused_by_me(w) and !seen_accuse(w, leader).
  std::optional<NodeId> pick_helper(NodeId leader) const;
  /// Mirrors pick_helper from the perspective of querier q: the node every
  /// honest responder believes should answer q.
  std::optional<NodeId> expected_responder(NodeId querier,
                                           NodeId leader) const;
  bool validate_proposal(const Msg& m, NodeId leader) const;
  /// Leader of (cur_slot_, cur_epoch_), recomputed by reset_epoch (cached:
  /// the Context::leader indirection is a std::function in epoch 0).
  NodeId cur_leader() const { return cur_leader_; }

  NodeId id_;
  const Context* ctx_;
  std::unique_ptr<Deviation> dev_;
  Round round_ = 0;
  std::uint32_t offset_ = 0;

  // Incremental schedule cache: position the NEXT round will have if it
  // arrives consecutively (it always does under the simulator).
  Round sched_next_r_ = static_cast<Round>(-1);
  Slot sched_k_ = 0;
  Epoch sched_i_ = 0;
  std::uint32_t sched_off_ = 0;

  // ---- persistent across slots ----
  BitVec accused_by_me_;
  std::vector<BitVec> accuse_seen_;           ///< [accuser] -> accused set
  std::vector<std::vector<SigShare>> accuse_shares_;  ///< per accused
  std::vector<std::uint8_t> corrupt_proof_have_;
  std::vector<std::uint8_t> corrupt_proof_sent_;
  std::vector<ThresholdSig> corrupt_proof_sig_;
  std::uint64_t expensive_epochs_ = 0;  ///< instrumentation

  // ---- per slot ----
  Slot cur_slot_ = 0;
  bool committed_ = false;
  Value committed_value_ = kBotValue;
  bool have_freshest_ = false;  ///< false encodes bot
  Epoch freshest_epoch_ = 0;
  Value freshest_value_ = 0;
  ThresholdSig freshest_cert_{};
  bool have_commit_proof_ = false;  ///< proof held for responding
  Epoch commit_proof_epoch_ = 0;
  Value commit_proof_value_ = 0;
  ThresholdSig commit_proof_{};
  BitVec star4_forwarded_;  ///< (*4) once per epoch of this slot
  bool forwarded_commit_proof_ = false;  ///< Options::always_forward

  // ---- per epoch ----
  Epoch cur_epoch_ = 0;
  NodeId cur_leader_ = kNoNode;
  bool sent_collect_ = false;
  bool collect_had_cert_ = false;  ///< freshness baseline I sent in Collect
  Epoch collect_epoch_ = 0;
  std::vector<Value> prop_values_seen_;
  bool equivocation_ = false;
  bool propagated_ = false;
  Value propagated_value_ = 0;
  Msg propagated_prop_{};
  bool epoch_got_cert_ = false;
  std::optional<NodeId> query_target_;
  bool epoch_had_traffic_ = false;  ///< instrumentation (expensive slots)

  // leader-only per epoch
  bool lead_proposed_ = false;
  Value lead_value_ = 0;
  std::vector<SigShare> lead_votes_;
  BitVec lead_vote_from_;
  std::vector<SigShare> lead_cert_votes_;
  BitVec lead_cert_vote_from_;
  bool lead_cert_made_ = false;
  bool lead_proof_made_ = false;

  // round-local: accusations that first arrived this round. fresh_dirty_
  // tracks whether the buffers hold anything, so the (common) quiet round
  // skips the O(n) clear.
  std::vector<std::uint8_t> fresh_accuse_from_;
  std::vector<std::pair<NodeId, NodeId>> fresh_pairs_;  ///< (accuser, target)
  bool fresh_dirty_ = false;

  // Reused Respond-round scratch bitmap (who was already answered); a
  // member so steady-state rounds allocate nothing.
  BitVec answered_scratch_;
};

/// Driver configuration for a full multi-shot run.
struct LinearConfig {
  std::uint32_t n = 16;
  std::uint32_t f = 4;
  Slot slots = 8;
  std::uint64_t seed = 1;
  double eps = 0.1;  ///< f must be <= (1/2 - eps) n
  std::uint32_t kappa_bits = kDefaultKappaBits;
  std::uint32_t value_bits = kDefaultValueBits;
  Options opts;
  std::string adversary = "none";
  /// Optional event sink, not owned (see src/trace/). Attaching a sink
  /// never changes the run.
  /// Honest-phase shard threads per round (0 = auto, 1 = serial;
  /// byte-identical results for every value — DESIGN.md §15).
  std::uint32_t node_jobs = 1;
  /// Network delay policy (DESIGN.md §16): "lockstep" (default) |
  /// "bounded:<delta>" | "async[:<cap>]". The run seed is mixed in per
  /// run (make_net_policy), so the execution stays seed-deterministic.
  std::string net = "lockstep";
  trace::TraceSink* trace = nullptr;
  /// Optional overrides; defaults: round-robin sender, hash-like inputs.
  std::function<Value(Slot)> input_for_slot;
  /// Causal-input variant (Sequentiality, Definition 2): the sender of
  /// slot k may derive its input from values committed at slots j < k.
  /// Must only read slots < k. Takes precedence over input_for_slot.
  std::function<Value(Slot, const CommitLog&)> input_with_log;
  std::function<NodeId(Slot)> sender_of;
  /// Test hooks: called after every simulated round / once before
  /// teardown, with access to the live simulation (actors included).
  std::function<void(Round, Sim&)> on_round_end;
  std::function<void(Sim&)> inspect;
};

RunResult run_linear(const LinearConfig& cfg);

}  // namespace ambb::linear
