// Systematic Reed-Solomon-style erasure code over GF(2^8).
//
// The extension protocol (DESIGN.md §13) splits an L-byte payload into k
// data chunks and extends them to n chunks such that ANY k of the n
// reconstruct the payload. Chunks are the columns of a stripe-wise
// codeword: byte t of chunk i is the evaluation at point x = i of the
// degree-<k polynomial interpolating byte t of the k data chunks at
// points x = 0..k-1. Points 0..k-1 therefore carry the payload verbatim
// (systematic), points k..n-1 carry parity.
//
// n is bounded by the field size (n <= 256 distinct evaluation points);
// every protocol-relevant n is far below that.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace ambb::rs {

/// Bytes per chunk for an `len`-byte payload split into k data chunks:
/// ceil(len / k), and 1 for the degenerate empty payload so chunks are
/// never zero-length (a zero-length chunk cannot be Merkle-committed
/// distinctly per column).
std::size_t chunk_bytes(std::size_t len, std::uint32_t k);

/// Encode `data` into n chunks of chunk_bytes(data.size(), k) bytes each,
/// any k of which reconstruct. Requires 1 <= k <= n <= 256. The last data
/// chunk is zero-padded; the original length is NOT stored in the chunks
/// (callers carry it, the wrapper derives it from the agreed digest's
/// metadata).
std::vector<std::vector<std::uint8_t>> encode(
    std::span<const std::uint8_t> data, std::uint32_t n, std::uint32_t k);

/// One received chunk: its column index in [0, n) plus its bytes.
using Chunk = std::pair<std::uint32_t, std::vector<std::uint8_t>>;

/// Reconstruct the original `len`-byte payload from any k distinct valid
/// chunks. `chunks` may hold more than k entries; the first k distinct
/// indices are used. Requires every used chunk to have the correct size
/// and index < n; throws CheckError otherwise (also on fewer than k
/// distinct indices).
std::vector<std::uint8_t> reconstruct(const std::vector<Chunk>& chunks,
                                      std::uint32_t n, std::uint32_t k,
                                      std::size_t len);

}  // namespace ambb::rs
