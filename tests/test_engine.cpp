// The experiment engine's contract (src/engine/engine.hpp): results are
// reported in submission order, parallel execution is byte-identical to
// serial on every measurement field, a throwing job is captured as a
// structured failure without taking down its neighbours, and property
// violations in completed results are surfaced per job.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "engine/engine.hpp"
#include "engine/report.hpp"
#include "engine/sweep.hpp"
#include "runner/registry.hpp"

namespace ambb::engine {
namespace {

TEST(ResolveJobs, ExplicitValuePassesThroughZeroMeansHardware) {
  EXPECT_EQ(resolve_jobs(3), 3u);
  EXPECT_EQ(resolve_jobs(1), 1u);
  EXPECT_GE(resolve_jobs(0), 1u);
}

TEST(ParallelMap, ResultsLandInIndexOrder) {
  auto sq = parallel_map(17, 4, [](std::size_t i) { return i * i; });
  ASSERT_EQ(sq.size(), 17u);
  for (std::size_t i = 0; i < sq.size(); ++i) EXPECT_EQ(sq[i], i * i);

  EXPECT_TRUE(parallel_map(0, 4, [](std::size_t i) { return i; }).empty());
}

TEST(ParallelMap, FirstThrowingIndexIsRethrownAfterAllDrain) {
  std::atomic<int> ran{0};
  try {
    parallel_map(8, 4, [&](std::size_t i) {
      ran.fetch_add(1);
      if (i == 2 || i == 5) {
        throw std::runtime_error("boom at " + std::to_string(i));
      }
      return i;
    });
    FAIL() << "expected parallel_map to rethrow";
  } catch (const std::runtime_error& e) {
    // Multiple indices threw; the rethrow is the FIRST in index order,
    // not in completion order.
    EXPECT_STREQ(e.what(), "boom at 2");
  }
  // The raw primitive does not abort the batch: everything still ran.
  EXPECT_EQ(ran.load(), 8);
}

/// A small cross-protocol grid via the sweep expander — the same path the
/// benches and ambb_sweep take.
std::vector<Job> small_grid() {
  SweepSpec pk;
  pk.name = "pk";
  pk.protocol = "phase-king";
  pk.ns = {10, 13};
  pk.f_max = true;
  pk.slots_list = {4};
  pk.adversaries = {"none", "equivocate"};
  pk.seed_begin = 5;
  pk.seed_end = 6;

  SweepSpec ds;
  ds.name = "ds";
  ds.protocol = "dolev-strong";
  ds.ns = {8};
  ds.fs = {2};
  ds.slots_list = {4};
  ds.adversaries = {"silent"};
  ds.seed_begin = ds.seed_end = 9;

  return to_engine_jobs(expand_all({pk, ds}));
}

/// Every measurement field must match; wall-clock (ns_*) is exempt per
/// the determinism contract.
void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.n, b.n);
  EXPECT_EQ(a.f, b.f);
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.honest_bits, b.honest_bits);
  EXPECT_EQ(a.adversary_bits, b.adversary_bits);
  EXPECT_EQ(a.honest_msgs, b.honest_msgs);
  EXPECT_EQ(a.per_slot_bits, b.per_slot_bits);
  EXPECT_EQ(a.kind_names, b.kind_names);
  EXPECT_EQ(a.per_kind_bits, b.per_kind_bits);
  EXPECT_EQ(a.corrupt, b.corrupt);
  EXPECT_EQ(a.senders, b.senders);
  EXPECT_EQ(a.sender_inputs, b.sender_inputs);

  for (Slot k = 1; k <= a.slots; ++k) {
    for (NodeId v = 0; v < a.n; ++v) {
      ASSERT_EQ(a.commits.has(v, k), b.commits.has(v, k))
          << "node " << v << " slot " << k;
      if (!a.commits.has(v, k)) continue;
      EXPECT_EQ(a.commits.get(v, k).value, b.commits.get(v, k).value);
      EXPECT_EQ(a.commits.get(v, k).round, b.commits.get(v, k).round);
    }
  }

  ASSERT_EQ(a.round_stats.size(), b.round_stats.size());
  for (std::size_t i = 0; i < a.round_stats.size(); ++i) {
    const RoundStats& ra = a.round_stats[i];
    const RoundStats& rb = b.round_stats[i];
    EXPECT_EQ(ra.round, rb.round);
    EXPECT_EQ(ra.records, rb.records) << "round " << i;
    EXPECT_EQ(ra.deliveries, rb.deliveries) << "round " << i;
    EXPECT_EQ(ra.honest_bits, rb.honest_bits) << "round " << i;
    EXPECT_EQ(ra.adversary_bits, rb.adversary_bits) << "round " << i;
    EXPECT_EQ(ra.erasures, rb.erasures) << "round " << i;
    EXPECT_EQ(ra.corruptions, rb.corruptions) << "round " << i;
  }
}

TEST(Engine, ParallelAggregatesAreByteIdenticalToSerial) {
  const auto jobs = small_grid();
  ASSERT_EQ(jobs.size(), 9u);  // 2n * 2adv * 2seeds + 1

  const auto serial = Engine(1).run(jobs);
  const auto parallel = Engine(4).run(jobs);
  ASSERT_EQ(serial.size(), jobs.size());
  ASSERT_EQ(parallel.size(), jobs.size());

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    // Submission order is preserved regardless of worker count.
    EXPECT_EQ(serial[i].label, jobs[i].label);
    EXPECT_EQ(parallel[i].label, jobs[i].label);
    ASSERT_TRUE(serial[i].completed) << serial[i].error;
    ASSERT_TRUE(parallel[i].completed) << parallel[i].error;
    EXPECT_TRUE(serial[i].violations.empty());
    EXPECT_TRUE(parallel[i].violations.empty());
    expect_identical(serial[i].result, parallel[i].result);
  }
}

// The ISSUE's concurrency satellite: two jobs with IDENTICAL seeds run
// concurrently on separate workers must produce identical RoundStats —
// each job owns its own Simulation, so nothing (in particular no shared
// TrafficView with its mutable cursor, see sim/net.hpp) couples them.
TEST(Engine, ConcurrentIdenticalSeedJobsProduceIdenticalRoundStats) {
  CommonParams p;
  p.n = 12;
  p.f = 4;
  p.slots = 5;
  p.seed = 77;
  p.adversary = "silent";
  const ProtocolInfo& info = protocol("linear");
  const Job job{"twin", [&info, p] { return info.run(p); }};

  const auto twins = Engine(2).run({job, job});
  ASSERT_EQ(twins.size(), 2u);
  ASSERT_TRUE(twins[0].completed) << twins[0].error;
  ASSERT_TRUE(twins[1].completed) << twins[1].error;
  ASSERT_FALSE(twins[0].result.round_stats.empty());
  expect_identical(twins[0].result, twins[1].result);
}

TEST(Engine, ThrowingJobIsIsolatedNeighboursComplete) {
  const ProtocolInfo& info = protocol("phase-king");
  CommonParams p;
  p.n = 10;
  p.f = 3;
  p.slots = 4;
  p.seed = 41;

  std::vector<Job> jobs;
  jobs.push_back(Job{"good-a", [&info, p] { return info.run(p); }});
  jobs.push_back(Job{"bad", []() -> RunResult {
                       throw CheckError("injected driver failure");
                     }});
  jobs.push_back(Job{"good-b", [&info, p] { return info.run(p); }});

  const auto out = Engine(3).run(jobs);
  ASSERT_EQ(out.size(), 3u);

  EXPECT_TRUE(out[0].completed);
  EXPECT_FALSE(out[0].failed());
  EXPECT_EQ(out[0].label, "good-a");

  EXPECT_FALSE(out[1].completed);
  EXPECT_TRUE(out[1].failed());
  EXPECT_NE(out[1].error.find("injected driver failure"), std::string::npos)
      << out[1].error;
  EXPECT_TRUE(out[1].violations.empty());

  EXPECT_TRUE(out[2].completed);
  EXPECT_FALSE(out[2].failed());
  expect_identical(out[0].result, out[2].result);
}

TEST(Engine, PropertyViolationsInCompletedResultsAreSurfaced) {
  const ProtocolInfo& info = protocol("phase-king");
  CommonParams p;
  p.n = 10;
  p.f = 3;
  p.slots = 4;
  p.seed = 41;

  // A driver that completes but returns a result violating validity: the
  // recorded honest-sender input of slot 1 is flipped after the fact.
  const Job tampered{"tampered", [&info, p] {
                       RunResult r = info.run(p);
                       r.sender_inputs[1] ^= 1;
                       return r;
                     }};
  const auto out = Engine(1).run({tampered});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].completed);
  EXPECT_TRUE(out[0].failed());
  ASSERT_FALSE(out[0].violations.empty());
  EXPECT_NE(out[0].violations[0].find("slot 1"), std::string::npos)
      << out[0].violations[0];
}

TEST(Engine, AllowStallSkipsTerminationButNotSafetyChecks) {
  // Synthetic result: n=2, honest node 1 never commits slot 1 (a
  // termination violation and nothing else).
  auto stalled = []() {
    RunResult r;
    r.n = 2;
    r.f = 0;
    r.slots = 1;
    r.corrupt = {0, 0};
    r.senders = {kNoNode, 0};
    r.sender_inputs = {kBotValue, 5};
    r.commits = CommitLog(2);
    r.commits.record(/*node=*/0, /*slot=*/1, /*value=*/5, /*round=*/3);
    return r;
  };

  const auto strict = Engine(1).run({Job{"strict", stalled}});
  ASSERT_TRUE(strict[0].completed);
  ASSERT_EQ(strict[0].violations.size(), 1u);
  EXPECT_NE(strict[0].violations[0].find("never committed"),
            std::string::npos);

  const auto lenient =
      Engine(1).run({Job{"lenient", stalled, /*allow_stall=*/true}});
  ASSERT_TRUE(lenient[0].completed);
  EXPECT_TRUE(lenient[0].violations.empty());
  EXPECT_FALSE(lenient[0].failed());
}

TEST(BenchJson, ZeroSlotAmortizedIsNaNEndToEnd) {
  // A zero-slot RunResult has no well-defined per-slot average; the
  // whole chain (RunResult -> to_record) must carry a quiet NaN instead
  // of dividing by zero.
  RunResult r;
  EXPECT_TRUE(std::isnan(r.amortized()));

  JobOutcome out;
  out.label = "zero-slot";
  out.completed = true;
  out.result = RunResult{};
  EXPECT_TRUE(std::isnan(to_record(out).amortized));
}

TEST(BenchJson, NonFiniteAmortizedRendersAsStructuredNull) {
  // JSON has no NaN literal; a "%.3f"-printed NaN would corrupt the
  // document for every consumer. Non-finite metrics become null.
  RunRecord rec;
  rec.label = "zero-slot";
  rec.amortized = std::numeric_limits<double>::quiet_NaN();
  const std::string json = render_bench_json("t", {rec}, 0, 1, 0.0);
  EXPECT_NE(json.find("\"amortized_bits_per_slot\": null"),
            std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);

  // Finite values keep the fixed-point rendering.
  rec.amortized = 1.5;
  EXPECT_NE(render_bench_json("t", {rec}, 0, 1, 0.0)
                .find("\"amortized_bits_per_slot\": 1.500"),
            std::string::npos);
}

}  // namespace
}  // namespace ambb::engine
