// Canonical byte encoding used to derive signing digests and wire sizes.
//
// Every signed object in the protocols is encoded through an Encoder before
// being hashed; this guarantees that two semantically different messages
// never produce the same digest (all fields are length/width-explicit,
// big-endian).
//
// Hot-path usage: the digest helpers run millions of times per benchmark
// run, so the Encoder supports a scratch-backed mode — Encoder::scratch()
// returns a cleared thread-local instance whose buffer capacity persists
// across calls, making steady-state encodings heap-allocation-free. An
// Encoder can also be constructed over an external reusable buffer for
// callers that manage their own scratch storage.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <string_view>
#include <vector>

#include "common/check.hpp"

namespace ambb {

class Encoder {
 public:
  Encoder() : buf_(&own_) {}

  /// Scratch-backed mode: encode into `external` (cleared on entry, never
  /// shrunk) instead of an owned buffer. The buffer must outlive the
  /// Encoder.
  explicit Encoder(std::vector<std::uint8_t>* external) : buf_(external) {
    buf_->clear();
  }

  // buf_ may point at own_, so copies/moves would dangle; encoders are
  // cheap to construct where needed and scratch() covers the hot path.
  Encoder(const Encoder&) = delete;
  Encoder& operator=(const Encoder&) = delete;

  /// A cleared, reusable thread-local Encoder. Capacity persists across
  /// calls, so steady-state encodings perform zero heap allocations. Do
  /// not hold the reference across a call into code that may itself use
  /// scratch() — there is exactly one per thread, and a reentrancy guard
  /// enforces it: acquiring the scratch encoder marks it busy until the
  /// encoding is consumed via view()/bytes() (or abandoned via clear()).
  /// Nested acquisition used to silently clear() a mid-encode buffer and
  /// corrupt the outer encoding; now it throws.
  static Encoder& scratch();

  void reserve(std::size_t n) { buf_->reserve(n); }
  void clear() {
    buf_->clear();
    busy_ = false;
  }

  void put_u8(std::uint8_t v) { buf_->push_back(v); }
  void put_u16(std::uint16_t v) {
    put_u8(static_cast<std::uint8_t>(v >> 8));
    put_u8(static_cast<std::uint8_t>(v));
  }
  /// Checked narrowing put: for wider fields (Epoch is uint32_t, chain
  /// lengths are size_t) whose canonical encoding is u16. A value >= 2^16
  /// would silently alias digests and wire bytes; this throws instead.
  void put_u16_checked(std::uint64_t v) {
    AMBB_CHECK_MSG(v <= 0xFFFFu, "u16 codec field overflow: " << v);
    put_u16(static_cast<std::uint16_t>(v));
  }
  void put_u32(std::uint32_t v) {
    put_u16(static_cast<std::uint16_t>(v >> 16));
    put_u16(static_cast<std::uint16_t>(v));
  }
  void put_u64(std::uint64_t v) {
    put_u32(static_cast<std::uint32_t>(v >> 32));
    put_u32(static_cast<std::uint32_t>(v));
  }
  void put_bytes(std::span<const std::uint8_t> bytes) {
    buf_->insert(buf_->end(), bytes.begin(), bytes.end());
  }
  /// Tag strings disambiguate message kinds inside digests ("vote", ...).
  /// Length-prefixed so distinct tag sequences cannot collide.
  void put_tag(std::string_view tag) {
    put_u16(static_cast<std::uint16_t>(tag.size()));
    for (char c : tag) put_u8(static_cast<std::uint8_t>(c));
  }

  const std::vector<std::uint8_t>& bytes() const {
    busy_ = false;  // encoding consumed; scratch() may be re-acquired
    return *buf_;
  }
  std::span<const std::uint8_t> view() const {
    busy_ = false;  // encoding consumed; scratch() may be re-acquired
    return std::span<const std::uint8_t>(buf_->data(), buf_->size());
  }
  std::size_t size() const { return buf_->size(); }

 private:
  std::vector<std::uint8_t> own_;
  std::vector<std::uint8_t>* buf_;
  /// Reentrancy guard for the thread-local scratch instance: set by
  /// scratch(), released when the encoding is consumed (view()/bytes())
  /// or abandoned (clear()). Always false for ordinary instances.
  mutable bool busy_ = false;
};

/// Matching decoder; used by codec round-trip tests and by components that
/// genuinely re-parse (e.g. signature-chain validation in Dolev-Strong).
class Decoder {
 public:
  explicit Decoder(std::span<const std::uint8_t> bytes) : buf_(bytes) {}

  std::uint8_t get_u8();
  std::uint16_t get_u16();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  std::vector<std::uint8_t> get_bytes(std::size_t len);

  bool exhausted() const { return pos_ == buf_.size(); }
  std::size_t remaining() const { return buf_.size() - pos_; }

 private:
  std::span<const std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

}  // namespace ambb
