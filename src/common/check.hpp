// Lightweight precondition / invariant checking used across the library.
//
// AMBB_CHECK is always on (also in release builds): the simulator is a
// measurement instrument and silent state corruption would invalidate every
// number it reports. Violations throw so tests can assert on them.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ambb {

class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_fail(const char* expr, const char* file,
                                    int line, const std::string& msg) {
  std::ostringstream os;
  os << "AMBB_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace ambb

#define AMBB_CHECK(expr)                                              \
  do {                                                                \
    if (!(expr))                                                      \
      ::ambb::detail::check_fail(#expr, __FILE__, __LINE__, "");      \
  } while (0)

#define AMBB_CHECK_MSG(expr, msg)                                     \
  do {                                                                \
    if (!(expr)) {                                                    \
      std::ostringstream os_;                                         \
      os_ << msg;                                                     \
      ::ambb::detail::check_fail(#expr, __FILE__, __LINE__, os_.str()); \
    }                                                                 \
  } while (0)
