#include "engine/engine.hpp"

#include <chrono>
#include <exception>

namespace ambb::engine {

unsigned resolve_jobs(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

unsigned resolve_node_jobs(unsigned requested, unsigned run_jobs) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return 1u;
  const unsigned rj = run_jobs == 0 ? 1u : run_jobs;
  const unsigned nj = hw / rj;
  return nj == 0 ? 1u : nj;
}

std::vector<JobOutcome> Engine::run(const std::vector<Job>& jobs) const {
  return parallel_map(jobs.size(), jobs_, [&](std::size_t i) {
    const Job& job = jobs[i];
    JobOutcome out;
    out.label = job.label;
    const auto t0 = std::chrono::steady_clock::now();
    try {
      out.result = job.run();
      out.completed = true;
    } catch (const std::exception& e) {
      out.error = e.what();
    } catch (...) {
      out.error = "unknown exception";
    }
    const auto t1 = std::chrono::steady_clock::now();
    out.wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (out.completed) {
      if (!job.allow_split) out.violations = check_consistency(out.result);
      if (!job.allow_invalid) {
        auto v = check_validity(out.result);
        out.violations.insert(out.violations.end(), v.begin(), v.end());
      }
      if (!job.allow_stall) {
        auto t = check_termination(out.result);
        out.violations.insert(out.violations.end(), t.begin(), t.end());
      }
    }
    return out;
  });
}

}  // namespace ambb::engine
