#include "bb/phase_king.hpp"

#include <map>

#include "adversary/scheduled.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "runner/assemble.hpp"

namespace ambb::pk {

std::vector<std::string> kind_names() {
  return {"send", "r1", "r2", "king"};
}

std::uint64_t size_bits(const Msg& m, const WireModel& wire) {
  // header (kind + slot + epoch reused as phase) + bot flag + value
  return wire.header_bits() + 1 + (m.has_value ? wire.value_bits : 0);
}

namespace {

/// Value domain including bot; kBotValue is the in-memory carrier of bot.
struct Tally {
  std::map<Value, std::uint32_t> counts;

  void add(const Msg& m) {
    counts[m.has_value ? m.value : kBotValue] += 1;
  }
  /// Most frequent value and its count (ties: smaller value wins).
  std::pair<Value, std::uint32_t> top() const {
    Value best = kBotValue;
    std::uint32_t best_c = 0;
    for (const auto& [v, c] : counts) {
      if (c > best_c) {
        best = v;
        best_c = c;
      }
    }
    return {best, best_c};
  }
  /// The unique value with support >= quorum, else bot (uniqueness is
  /// guaranteed for quorum > n/2).
  Value with_quorum(std::uint32_t quorum) const {
    for (const auto& [v, c] : counts) {
      if (c >= quorum) return v;
    }
    return kBotValue;
  }
};

Msg make_msg(Kind kind, Slot slot, std::uint32_t phase, Value v) {
  Msg m;
  m.kind = kind;
  m.slot = slot;
  m.phase = phase;
  m.has_value = v != kBotValue;
  if (m.has_value) m.value = v;
  return m;
}

Value msg_value(const Msg& m) { return m.has_value ? m.value : kBotValue; }

class Deviation {
 public:
  virtual ~Deviation() = default;
  virtual bool silent() const { return false; }
  virtual bool equivocate_send() const { return false; }
  virtual bool confuse() const { return false; }
};

class PkNode final : public Actor<Msg> {
 public:
  PkNode(NodeId id, const Context* ctx, std::unique_ptr<Deviation> dev,
         std::uint64_t seed)
      : id_(id), ctx_(ctx), dev_(std::move(dev)), rng_(seed ^ (id + 1)) {}

  void on_round(Round r, std::span<const Delivery<Msg>> inbox,
                const TrafficView<Msg>& rushed,
                RoundApi<Msg>& api) override {
    (void)rushed;
    const Schedule& sched = ctx_->sched;
    const Slot k = sched.slot_of(r);
    const std::uint32_t off = sched.offset_of(r);
    const std::uint32_t n = ctx_->n;
    const std::uint32_t f = ctx_->f;
    const std::uint32_t quorum = n - f;

    if (k != cur_slot_) {
      cur_slot_ = k;
      v_ = kBotValue;
      pending_ = false;
    }
    if (dev_ != nullptr && dev_->silent()) return;

    if (off == 0) {
      if (ctx_->sender_of(k) == id_) {
        const Value input = ctx_->input_for_slot(k);
        if (dev_ != nullptr && dev_->equivocate_send()) {
          for (NodeId u = 0; u < n; ++u) {
            api.send(u, make_msg(Kind::kSend, k, 0,
                                 u % 2 == 0 ? 0xAAAA : 0xBBBB));
          }
        } else {
          multicast(api, make_msg(Kind::kSend, k, 0, input));
        }
        v_ = input;
      }
      return;
    }

    const std::uint32_t body = off - 1;  // 0-based within the phase block
    const std::uint32_t p = body / 3;
    const std::uint32_t step = body % 3;

    // Apply the pending king decision of the previous phase.
    if (pending_ && step == 0) {
      Value king_value = kBotValue;
      for (const auto& env : inbox) {
        if (env.msg().kind == Kind::kKing && env.msg().slot == k &&
            env.msg().phase == pending_phase_ &&
            env.from == pending_phase_ /* king of phase p is node p */) {
          king_value = msg_value(env.msg());
          break;
        }
      }
      v_ = pending_cstar_ >= quorum ? pending_wstar_ : king_value;
      pending_ = false;
    }

    if (off == sched.rounds_per_slot() - 1) {
      // Final round: the last king's message was just applied; commit.
      if (!ctx_->commits->has(id_, k)) {
        ctx_->commits->record(id_, k, v_, r);
        trace::Event ev;
        ev.kind = trace::EventKind::kSlotCommit;
        ev.round = r;
        ev.slot = k;
        ev.node = id_;
        ev.value = v_;
        trace::emit(ctx_->trace, ev);
      }
      return;
    }

    switch (step) {
      case 0: {  // R1: pick up the sender value (phase 0), multicast V
        if (p == 0) {
          for (const auto& env : inbox) {
            if (env.msg().kind == Kind::kSend && env.msg().slot == k &&
                env.from == ctx_->sender_of(k)) {
              v_ = msg_value(env.msg());
              break;
            }
          }
        }
        multicast(api, make_msg(Kind::kR1, k, p, v_));
        break;
      }
      case 1: {  // R2: compute pref from R1, multicast it
        Tally t;
        for (const auto& env : inbox) {
          if (env.msg().kind == Kind::kR1 && env.msg().slot == k &&
              env.msg().phase == p) {
            t.add(env.msg());
          }
        }
        multicast(api, make_msg(Kind::kR2, k, p, t.with_quorum(quorum)));
        break;
      }
      case 2: {  // R3: compute (w*, c*) from R2; the king speaks
        Tally t;
        for (const auto& env : inbox) {
          if (env.msg().kind == Kind::kR2 && env.msg().slot == k &&
              env.msg().phase == p) {
            t.add(env.msg());
          }
        }
        auto [wstar, cstar] = t.top();
        pending_ = true;
        pending_phase_ = p;
        pending_wstar_ = wstar;
        pending_cstar_ = cstar;
        if (id_ == p) {  // king of phase p is node p
          multicast(api, make_msg(Kind::kKing, k, p, wstar));
        }
        break;
      }
    }
  }

 private:
  void multicast(RoundApi<Msg>& api, const Msg& m) {
    if (dev_ != nullptr && dev_->confuse()) {
      // Byzantine scatter: a different claim to every recipient.
      for (NodeId u = 0; u < ctx_->n; ++u) {
        Msg x = m;
        switch (rng_.uniform(3)) {
          case 0: x.has_value = true; x.value = 0xAAAA; break;
          case 1: x.has_value = true; x.value = 0xBBBB; break;
          default: x.has_value = false; x.value = 0; break;
        }
        api.send(u, x);
      }
      return;
    }
    api.multicast(m);
  }

  NodeId id_;
  const Context* ctx_;
  std::unique_ptr<Deviation> dev_;
  Rng rng_;
  Slot cur_slot_ = 0;
  Value v_ = kBotValue;
  bool pending_ = false;
  std::uint32_t pending_phase_ = 0;
  Value pending_wstar_ = kBotValue;
  std::uint32_t pending_cstar_ = 0;
};

class SilentDev final : public Deviation {
  bool silent() const override { return true; }
};
class EquivDev final : public Deviation {
  bool equivocate_send() const override { return true; }
  bool confuse() const override { return true; }
};
class ConfuseDev final : public Deviation {
  bool confuse() const override { return true; }
};

class PkAdversary final : public Adversary<Msg> {
 public:
  PkAdversary(const Context* ctx, std::string role, std::uint64_t seed)
      : ctx_(ctx), role_(std::move(role)), seed_(seed) {}

  std::vector<NodeId> initial_corruptions() override {
    std::vector<NodeId> out;
    for (NodeId v = 0; v < ctx_->f; ++v) out.push_back(v);
    return out;
  }

  std::unique_ptr<Actor<Msg>> actor_for(NodeId node) override {
    std::unique_ptr<Deviation> dev;
    if (role_ == "silent") dev = std::make_unique<SilentDev>();
    else if (role_ == "equivocate") dev = std::make_unique<EquivDev>();
    else if (role_ == "confuse") dev = std::make_unique<ConfuseDev>();
    else AMBB_CHECK_MSG(false, "unknown pk role " << role_);
    return std::make_unique<PkNode>(node, ctx_, std::move(dev), seed_);
  }

 private:
  const Context* ctx_;
  std::string role_;
  std::uint64_t seed_;
};

}  // namespace

RunResult run_phase_king(const PkConfig& cfg) {
  AMBB_CHECK_MSG(3 * cfg.f < cfg.n, "phase king requires f < n/3");

  CommitLog commits(cfg.n);
  commits.presize(cfg.slots);  // sharded-round safety: no lazy regrow
  CostLedger ledger(kind_names());

  Context ctx;
  ctx.n = cfg.n;
  ctx.f = cfg.f;
  ctx.wire = WireModel{cfg.n, cfg.kappa_bits, cfg.value_bits};
  ctx.sched = Schedule{cfg.f};
  ctx.commits = &commits;
  const std::uint64_t input_seed = cfg.seed ^ 0x5EEDF00DULL;
  ctx.input_for_slot = cfg.input_for_slot
                           ? cfg.input_for_slot
                           : [input_seed](Slot s) {
                               std::uint64_t x = input_seed + s;
                               const Value v = splitmix64(x);
                               return v == kBotValue ? Value{0} : v;
                             };
  ctx.sender_of = cfg.sender_of ? cfg.sender_of : [n = cfg.n](Slot s) {
    return static_cast<NodeId>((s - 1) % n);
  };
  Sim sim(cfg.n, cfg.f == 0 ? 1 : cfg.f, &ledger,
          CostPolicy{ctx.wire, ctx.sched});
  // Actors emit through the sim's router so sharded rounds can buffer
  // worker-thread events and replay them in deterministic order.
  ctx.trace = sim.actor_sink(cfg.trace);
  for (NodeId v = 0; v < cfg.n; ++v) {
    sim.set_actor(v, std::make_unique<PkNode>(v, &ctx, nullptr, cfg.seed));
  }
  const std::uint64_t total_rounds =
      static_cast<std::uint64_t>(cfg.slots) * ctx.sched.rounds_per_slot();
  const NetPolicy net = make_net_policy(cfg.net, cfg.seed);
  std::unique_ptr<Adversary<Msg>> adversary;
  if (adversary::is_schedule_spec(cfg.adversary)) {
    adversary::ScheduleEnv<Msg> env;
    env.n = cfg.n;
    env.f = cfg.f;
    env.seed = cfg.seed ^ 0xAD7E25A1ULL;
    env.horizon = total_rounds;
    env.trace = cfg.trace;
    env.net = net;
    env.honest_factory = [ctxp = &ctx, seed = cfg.seed](NodeId v) {
      return std::make_unique<PkNode>(v, ctxp, nullptr, seed);
    };
    adversary = adversary::make_scheduled_adversary<Msg>(cfg.adversary, env);
  } else if (cfg.adversary != "none") {
    adversary = std::make_unique<PkAdversary>(&ctx, cfg.adversary, cfg.seed);
  }
  SimConfig<Msg> sc;
  sc.trace = cfg.trace;
  sc.node_jobs = cfg.node_jobs;
  sc.net = net;
  sc.adversary = adversary.get();
  sim.configure(sc);
  for (std::uint64_t i = 0; i < total_rounds; ++i) {
    const std::uint32_t off = ctx.sched.offset_of(i);
    const Slot k = ctx.sched.slot_of(i);
    if (off == 0) {
      trace::Event ev;
      ev.kind = trace::EventKind::kSlotStart;
      ev.round = i;
      ev.slot = k;
      ev.node = ctx.sender_of(k);
      trace::emit(cfg.trace, ev);
    } else if ((off - 1) % 3 == 0 && (off - 1) / 3 <= cfg.f) {
      // Start of phase p; the king of phase p is node p.
      const std::uint32_t p = (off - 1) / 3;
      trace::Event ev;
      ev.kind = trace::EventKind::kEpochPhase;
      ev.round = i;
      ev.slot = k;
      ev.epoch = p;
      ev.node = static_cast<NodeId>(p);
      ev.detail = "king-phase";
      trace::emit(cfg.trace, ev);
    }
    sim.step();
  }

  return assemble_result(
      cfg.n, cfg.f, cfg.slots, sim.now(), ledger, commits, sim.round_stats(),
      [&sim](NodeId v) { return sim.is_corrupt(v); }, ctx.sender_of,
      ctx.input_for_slot);
}

}  // namespace ambb::pk
