#include "graph/expander.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/bitvec.hpp"
#include "common/check.hpp"

namespace ambb {

Graph::Graph(std::uint32_t n) : n_(n), adj_(n) { AMBB_CHECK(n >= 2); }

void Graph::add_edge(std::uint32_t u, std::uint32_t v) {
  AMBB_CHECK(u < n_ && v < n_ && u != v);
  if (has_edge(u, v)) return;
  adj_[u].push_back(v);
  adj_[v].push_back(u);
}

bool Graph::has_edge(std::uint32_t u, std::uint32_t v) const {
  AMBB_CHECK(u < n_ && v < n_);
  const auto& a = adj_[u].size() <= adj_[v].size() ? adj_[u] : adj_[v];
  const std::uint32_t target = adj_[u].size() <= adj_[v].size() ? v : u;
  return std::find(a.begin(), a.end(), target) != a.end();
}

std::uint32_t Graph::max_degree() const {
  std::uint32_t d = 0;
  for (const auto& a : adj_) d = std::max<std::uint32_t>(d, a.size());
  return d;
}

std::uint64_t Graph::edge_count() const {
  std::uint64_t twice = 0;
  for (const auto& a : adj_) twice += a.size();
  return twice / 2;
}

std::uint32_t Graph::neighborhood_size(
    const std::vector<std::uint32_t>& s) const {
  BitVec seen(n_);
  for (auto u : s) {
    for (auto v : adj_[u]) seen.set(v);
  }
  return static_cast<std::uint32_t>(seen.count());
}

Graph random_regular_graph(std::uint32_t n, std::uint32_t d, Rng& rng) {
  AMBB_CHECK(d >= 2 && d < n);
  Graph g(n);
  const std::uint32_t cycles = (d + 1) / 2;
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  for (std::uint32_t c = 0; c < cycles; ++c) {
    // Use std::vector<T> shuffle via Rng.
    std::vector<std::uint32_t> p = perm;
    rng.shuffle(p);
    for (std::uint32_t i = 0; i < n; ++i) {
      g.add_edge(p[i], p[(i + 1) % n]);
    }
  }
  return g;
}

double second_eigenvalue_estimate(const Graph& g, Rng& rng, int iters) {
  const std::uint32_t n = g.n();
  std::vector<double> x(n);
  for (auto& v : x) v = rng.uniform01() - 0.5;

  auto deflate = [&](std::vector<double>& v) {
    double mean = std::accumulate(v.begin(), v.end(), 0.0) / n;
    for (auto& e : v) e -= mean;
  };
  auto normalize = [&](std::vector<double>& v) {
    double norm = 0;
    for (auto e : v) norm += e * e;
    norm = std::sqrt(norm);
    if (norm > 0) {
      for (auto& e : v) e /= norm;
    }
    return norm;
  };

  deflate(x);
  normalize(x);
  std::vector<double> y(n);
  double lambda = 0;
  for (int it = 0; it < iters; ++it) {
    // y = A^2 x keeps the iteration converging to |lambda_2| even when the
    // most negative eigenvalue dominates in magnitude with opposite sign.
    for (std::uint32_t u = 0; u < n; ++u) {
      double s = 0;
      for (auto v : g.neighbors(u)) s += x[v];
      y[u] = s;
    }
    deflate(y);
    double norm1 = normalize(y);
    x.swap(y);
    lambda = norm1;
  }
  return lambda;
}

bool sampled_expansion_check(const Graph& g, double alpha, double beta,
                             int samples, Rng& rng) {
  const std::uint32_t n = g.n();
  const std::size_t set_size =
      std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(alpha * n)));
  if (set_size > n) return false;
  const double need = beta * n;
  for (int s = 0; s < samples; ++s) {
    auto picks = rng.sample_distinct(n, set_size);
    std::vector<std::uint32_t> set(picks.begin(), picks.end());
    if (static_cast<double>(g.neighborhood_size(set)) <= need) return false;
  }
  return true;
}

Graph build_expander(std::uint32_t n, double eps, std::uint64_t seed,
                     int samples) {
  AMBB_CHECK(eps > 0 && eps < 0.5);
  const double alpha = 2 * eps;
  const double beta = 1 - 2 * eps;
  // Start from a degree that makes random regular graphs comfortably pass
  // the (alpha, beta) sampled expansion test; escalate if needed. The
  // required degree grows as beta -> 1, i.e. as eps -> 0.
  std::uint32_t d =
      std::max<std::uint32_t>(8, static_cast<std::uint32_t>(4.0 / eps));
  if (d >= n - 1) {
    // Small n: the complete graph is the best possible expander
    // (|N(S)| >= n - 1 for every nonempty S).
    Graph g(n);
    for (std::uint32_t u = 0; u < n; ++u) {
      for (std::uint32_t v = u + 1; v < n; ++v) g.add_edge(u, v);
    }
    Rng check_rng(seed);
    AMBB_CHECK_MSG(sampled_expansion_check(g, alpha, beta, samples,
                                           check_rng),
                   "n=" << n << " too small for eps=" << eps);
    return g;
  }
  for (int attempt = 0; attempt < 64; ++attempt) {
    const std::uint32_t deg = std::min(d, n - 1);
    Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * (attempt + 1)));
    Graph g = random_regular_graph(n, deg, rng);
    Rng check_rng = rng.fork();
    if (sampled_expansion_check(g, alpha, beta, samples, check_rng)) return g;
    if (attempt % 4 == 3 && deg < n - 1) {
      d += std::max<std::uint32_t>(2, d / 4);
    }
  }
  AMBB_CHECK_MSG(false, "no expander found for n=" << n << " eps=" << eps);
}

}  // namespace ambb
