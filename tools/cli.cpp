#include "cli.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "common/check.hpp"
#include "sim/net_policy.hpp"

namespace ambb::cli {

bool Parser::next() {
  if (i_ + 1 >= argc_) return false;
  arg_ = argv_[++i_];
  return true;
}

const char* Parser::value() {
  if (i_ + 1 >= argc_) {
    std::fprintf(stderr, "%s: %s needs a value\n", tool_, arg_.c_str());
    return nullptr;
  }
  return argv_[++i_];
}

namespace {

bool parse_u64_strict(const char* v, std::uint64_t* out) {
  if (*v == '\0') return false;
  std::uint64_t acc = 0;
  for (const char* c = v; *c != '\0'; ++c) {
    if (*c < '0' || *c > '9') return false;
    if (acc > (std::numeric_limits<std::uint64_t>::max() - 9) / 10) {
      return false;
    }
    acc = acc * 10 + static_cast<std::uint64_t>(*c - '0');
  }
  *out = acc;
  return true;
}

}  // namespace

bool Parser::to_u64(std::uint64_t* out) {
  const char* v = value();
  if (v == nullptr) return false;
  if (!parse_u64_strict(v, out)) {
    std::fprintf(stderr, "%s: %s expects a number, got '%s'\n", tool_,
                 arg_.c_str(), v);
    return false;
  }
  return true;
}

bool Parser::to_u32(std::uint32_t* out) {
  std::uint64_t v = 0;
  if (!to_u64(&v)) return false;
  if (v > std::numeric_limits<std::uint32_t>::max()) {
    std::fprintf(stderr, "%s: %s value %llu is out of range\n", tool_,
                 arg_.c_str(), static_cast<unsigned long long>(v));
    return false;
  }
  *out = static_cast<std::uint32_t>(v);
  return true;
}

bool Parser::to_unsigned(unsigned* out) {
  std::uint32_t v = 0;
  if (!to_u32(&v)) return false;
  *out = v;
  return true;
}

bool Parser::to_double(double* out) {
  const char* v = value();
  if (v == nullptr) return false;
  char* end = nullptr;
  errno = 0;
  const double d = std::strtod(v, &end);
  if (end == v || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr, "%s: %s expects a number, got '%s'\n", tool_,
                 arg_.c_str(), v);
    return false;
  }
  *out = d;
  return true;
}

bool Parser::to_str(std::string* out) {
  const char* v = value();
  if (v == nullptr) return false;
  *out = v;
  return true;
}

void Parser::unknown() const {
  std::fprintf(stderr, "%s: unknown argument '%s'\n", tool_, arg_.c_str());
}

bool handle_common_flag(Parser& p, CommonFlags* cf, bool* ok) {
  *ok = true;
  const std::string& arg = p.arg();
  if ((cf->accept & kJobs) != 0 && arg == "--jobs") {
    *ok = p.to_unsigned(&cf->jobs);
    return true;
  }
  if ((cf->accept & kNodeJobs) != 0 && arg == "--node-jobs") {
    *ok = p.to_unsigned(&cf->node_jobs);
    return true;
  }
  if ((cf->accept & kOut) != 0 && arg == "--out") {
    *ok = p.to_str(&cf->out);
    return true;
  }
  if ((cf->accept & kFilter) != 0 && arg == "--filter") {
    *ok = p.to_str(&cf->filter);
    return true;
  }
  if ((cf->accept & kNet) != 0 && arg == "--net") {
    if (!p.to_str(&cf->net)) {
      *ok = false;
      return true;
    }
    try {
      parse_net_policy(cf->net);
    } catch (const CheckError& e) {
      std::fprintf(stderr, "%s: %s\n", p.tool(), e.what());
      *ok = false;
    }
    return true;
  }
  return false;
}

const ProtocolInfo* resolve_protocol(const char* tool,
                                     const std::string& name) {
  const ProtocolInfo* info = find_protocol(name);
  if (info != nullptr) return info;
  const std::string hint = suggest_protocol(name);
  if (hint.empty()) {
    std::fprintf(stderr, "%s: unknown protocol '%s'\n", tool, name.c_str());
  } else {
    std::fprintf(stderr, "%s: unknown protocol '%s', did you mean '%s'?\n",
                 tool, name.c_str(), hint.c_str());
  }
  std::fprintf(stderr, "%s: available protocols:", tool);
  for (const auto& p : protocols()) std::fprintf(stderr, " %s", p.name.c_str());
  std::fprintf(stderr, "\n");
  return nullptr;
}

}  // namespace ambb::cli
