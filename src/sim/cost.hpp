// Communication-cost accounting.
//
// The reproduced metric (Definition 3) is bits sent by honest nodes,
// amortized over slots: lim C(L,n,f)/L. The ledger records every envelope
// the simulator delivers or erases, keyed by slot and message kind, split
// into honest-sent and adversary-sent bits (only the former is the paper's
// cost; the latter is reported for context).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace ambb {

using MsgKind = std::uint8_t;

class CostLedger {
 public:
  /// kind_names[i] labels MsgKind i in reports.
  explicit CostLedger(std::vector<std::string> kind_names);

  /// Pre-size the per-slot table so steady-state charges never regrow it.
  void reserve_slots(Slot max_slot) { per_slot_.reserve(max_slot + 1); }

  void charge(Slot slot, MsgKind kind, std::uint64_t bits, bool honest_sender);

  /// Charge `count` identical deliveries in one call (a multicast record's
  /// surviving fan-out). Exactly equivalent to `count` charge() calls.
  void charge_n(Slot slot, MsgKind kind, std::uint64_t bits,
                bool honest_sender, std::uint64_t count);

  std::uint64_t honest_bits_total() const { return honest_total_; }
  std::uint64_t adversary_bits_total() const { return adversary_total_; }
  std::uint64_t honest_msgs_total() const { return honest_msgs_; }

  /// Honest bits charged to one slot (0 if never charged).
  std::uint64_t honest_bits_slot(Slot slot) const;

  /// Honest bits per slot, indexed by slot (index 0 unused: slots are >=1).
  const std::vector<std::uint64_t>& per_slot() const { return per_slot_; }

  /// Honest bits per message kind.
  const std::vector<std::uint64_t>& per_kind() const { return per_kind_; }
  const std::vector<std::string>& kind_names() const { return kind_names_; }

  /// Amortized honest bits per slot over the first L slots. L = 0 yields
  /// quiet NaN ("no slots to amortize over"); JSON writers must render
  /// non-finite values as null (engine/report.cpp does).
  double amortized(Slot num_slots) const;

 private:
  std::vector<std::string> kind_names_;
  std::vector<std::uint64_t> per_slot_;
  std::vector<std::uint64_t> per_kind_;
  std::uint64_t honest_total_ = 0;
  std::uint64_t adversary_total_ = 0;
  std::uint64_t honest_msgs_ = 0;
};

}  // namespace ambb
