// Extension-protocol subsystem (src/ext/, DESIGN.md §13): the ext:*
// registry rows run the erasure-coded dispersal + digest-base-BB
// pipeline and satisfy every Definition-2 checker, under no adversary
// and under randomized fault schedules; tracing is a pure observer; the
// registry bounds match the k = n - 2f >= 1 requirement; and at large
// payloads the ext rows undercut the raw inline baseline.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "ext/extension.hpp"
#include "runner/registry.hpp"
#include "runner/result.hpp"
#include "trace/trace.hpp"

namespace ambb {
namespace {

const char* kExtRows[] = {"ext:linear", "ext:quadratic", "ext:dolev-strong",
                          "ext:dolev-strong-msig"};

CommonParams small_params(const std::string& adversary = "none") {
  CommonParams p;
  p.n = 8;
  p.f = 2;
  p.slots = 3;
  p.seed = 1;
  p.payload_bytes = 1024;
  p.adversary = adversary;
  return p;
}

TEST(Extension, AllRowsSatisfyDefinition2WithNoAdversary) {
  for (const char* row : kExtRows) {
    const RunResult r = protocol(row).run(RunRequest{small_params(), nullptr});
    EXPECT_EQ(check_all(r), std::vector<std::string>{}) << row;
    EXPECT_EQ(r.n, 8u);
    EXPECT_EQ(r.slots, Slot{3});
    EXPECT_GT(r.honest_bits, 0u) << row;
    EXPECT_EQ(r.adversary_bits, 0u) << row;  // nobody is corrupt
    // Every slot accounts nonzero wire traffic (dispersal + base);
    // index [0] is unused by convention.
    ASSERT_EQ(r.per_slot_bits.size(), 4u) << row;
    for (Slot k = 1; k <= 3; ++k) EXPECT_GT(r.per_slot_bits[k], 0u) << row;
    // Committed value per slot is the payload fingerprint the sender put
    // in (validity is also part of check_all; this pins the plumbing).
    for (Slot k = 1; k <= 3; ++k) {
      EXPECT_EQ(r.commits.get(0, k).value, r.sender_inputs[k]) << row;
    }
  }
}

TEST(Extension, AllRowsSurviveRandomizedFaultSchedules) {
  for (const char* row : kExtRows) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      auto p = small_params("fuzz:5");
      p.seed = seed;
      const RunResult r = protocol(row).run(RunRequest{p, nullptr});
      EXPECT_EQ(check_all(r), std::vector<std::string>{})
          << row << " seed " << seed;
    }
  }
}

TEST(Extension, DefaultPayloadIsKappaSized) {
  // payload_bytes = 0 keeps the historical kappa-sized value semantics:
  // the dispersal phase codes a kappa/8-byte payload.
  auto p = small_params();
  p.payload_bytes = 0;
  const RunResult r =
      protocol("ext:linear").run(RunRequest{p, nullptr});
  EXPECT_EQ(check_all(r), std::vector<std::string>{});
}

TEST(Extension, TracingIsAPureObserver) {
  const auto p = small_params("fuzz:2");
  const RunResult plain = protocol("ext:linear").run(RunRequest{p, nullptr});
  std::ostringstream os;
  trace::JsonlSink sink(os);
  const RunResult traced = protocol("ext:linear").run(RunRequest{p, &sink});
  EXPECT_EQ(plain.honest_bits, traced.honest_bits);
  EXPECT_EQ(plain.adversary_bits, traced.adversary_bits);
  EXPECT_EQ(plain.honest_msgs, traced.honest_msgs);
  EXPECT_EQ(plain.per_slot_bits, traced.per_slot_bits);
  EXPECT_FALSE(os.str().empty());
  // The ext-specific event kinds actually appear in the stream.
  EXPECT_NE(os.str().find("\"chunk-disperse\""), std::string::npos);
  EXPECT_NE(os.str().find("\"chunk-echo\""), std::string::npos);
  EXPECT_NE(os.str().find("\"reconstruct\""), std::string::npos);
}

TEST(Extension, RegistryBoundCapsFAtDispersalThreshold) {
  // k = n - 2f >= 1 needs f <= (n-1)/2 on top of the base family bound.
  EXPECT_EQ(protocol("ext:dolev-strong").max_f(9), 4u);   // (9-1)/2
  EXPECT_EQ(protocol("ext:dolev-strong").max_f(8), 3u);   // (8-1)/2
  EXPECT_EQ(protocol("ext:linear").max_f(10), 4u);        // 2n/5 binds
  EXPECT_EQ(protocol("ext:linear").max_f(8), 3u);         // (n-1)/2 binds

  ext::ExtConfig bad;
  bad.n = 8;
  bad.f = 4;  // 2f >= n
  bad.slots = 1;
  EXPECT_THROW(ext::run_extension(bad), CheckError);
}

TEST(Extension, NamedBaseAdversariesAreRejected) {
  // The dispersal phase takes schedules; named deviations of the base
  // families do not apply to ext rows (registry policy + driver check).
  EXPECT_FALSE(protocol("ext:linear").policy.accepts("mixed"));
  EXPECT_TRUE(protocol("ext:linear").policy.accepts("none"));
  EXPECT_TRUE(protocol("ext:linear").policy.accepts("fuzz:3"));

  auto cfg = ext::ExtConfig{};
  cfg.n = 8;
  cfg.f = 2;
  cfg.slots = 1;
  cfg.adversary = "mixed";
  EXPECT_THROW(ext::run_extension(cfg), CheckError);
}

TEST(Extension, BeatsRawInlineBaselineAtLargePayload) {
  // The whole point of the subsystem: at L = 64 KiB the coded dispersal
  // (O(L n / k) payload bits + kappa-sized base traffic) undercuts
  // carrying L inline through every protocol message.
  CommonParams p;
  p.n = 12;
  p.f = 3;
  p.slots = 2;
  p.seed = 1;
  p.payload_bytes = 64 * 1024;
  const RunResult ext_r =
      protocol("ext:dolev-strong").run(RunRequest{p, nullptr});

  CommonParams raw = p;
  raw.value_bits = static_cast<std::uint32_t>(8 * raw.payload_bytes);
  const RunResult raw_r =
      protocol("dolev-strong").run(RunRequest{raw, nullptr});

  EXPECT_EQ(check_all(ext_r), std::vector<std::string>{});
  EXPECT_EQ(check_all(raw_r), std::vector<std::string>{});
  EXPECT_LT(ext_r.honest_bits, raw_r.honest_bits);
}

}  // namespace
}  // namespace ambb
