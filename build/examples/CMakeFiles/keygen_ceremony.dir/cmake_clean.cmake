file(REMOVE_RECURSE
  "CMakeFiles/keygen_ceremony.dir/keygen_ceremony.cpp.o"
  "CMakeFiles/keygen_ceremony.dir/keygen_ceremony.cpp.o.d"
  "keygen_ceremony"
  "keygen_ceremony.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keygen_ceremony.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
