# Empty compiler generated dependencies file for test_trustcast.
# This may be replaced when dependencies are built.
