#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace ambb {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformRespectsBound) {
  Rng r(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.uniform(bound), bound);
  }
}

TEST(Rng, UniformBoundOneAlwaysZero) {
  Rng r(9);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(r.uniform(1), 0u);
}

TEST(Rng, UniformZeroBoundThrows) {
  Rng r(9);
  EXPECT_THROW(r.uniform(0), CheckError);
}

TEST(Rng, UniformRangeInclusive) {
  Rng r(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    auto v = r.uniform_range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InRange) {
  Rng r(13);
  for (int i = 0; i < 1000; ++i) {
    double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRoughlyBalanced) {
  Rng r(17);
  int counts[4] = {0, 0, 0, 0};
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) counts[r.uniform(4)]++;
  for (int c : counts) {
    EXPECT_GT(c, trials / 4 - trials / 20);
    EXPECT_LT(c, trials / 4 + trials / 20);
  }
}

TEST(Rng, SampleDistinctProducesDistinctInRange) {
  Rng r(23);
  for (std::size_t k : {0ul, 1ul, 5ul, 10ul}) {
    auto s = r.sample_distinct(10, k);
    EXPECT_EQ(s.size(), k);
    std::set<std::uint64_t> set(s.begin(), s.end());
    EXPECT_EQ(set.size(), k);
    for (auto v : s) EXPECT_LT(v, 10u);
  }
}

TEST(Rng, SampleDistinctFullRangeIsPermutation) {
  Rng r(29);
  auto s = r.sample_distinct(8, 8);
  std::sort(s.begin(), s.end());
  for (std::uint64_t i = 0; i < 8; ++i) EXPECT_EQ(s[i], i);
}

TEST(Rng, SampleDistinctTooManyThrows) {
  Rng r(31);
  EXPECT_THROW(r.sample_distinct(3, 4), CheckError);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(37);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ForkIsIndependent) {
  Rng a(41);
  Rng child = a.fork();
  // The child stream should not equal the parent's continued stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Splitmix, KnownSequenceIsStable) {
  std::uint64_t s = 0;
  const std::uint64_t first = splitmix64(s);
  std::uint64_t s2 = 0;
  EXPECT_EQ(splitmix64(s2), first);
  EXPECT_NE(splitmix64(s2), first);  // state advanced
}

}  // namespace
}  // namespace ambb
