#include "crypto/intern.hpp"

#include <cstring>

#include "common/check.hpp"

namespace ambb {

namespace {

std::uint64_t fnv1a(std::uint64_t h, const std::uint8_t* p, std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

bool bytes_equal(const std::uint8_t* a, const std::uint8_t* b,
                 std::size_t len) {
  return len == 0 || std::memcmp(a, b, len) == 0;
}

}  // namespace

DigestCache::DigestCache(std::uint32_t log2_entries)
    : table_(std::size_t{1} << log2_entries),
      mask_((std::uint64_t{1} << log2_entries) - 1) {
  AMBB_CHECK(log2_entries >= 1 && log2_entries <= 24);
}

Digest DigestCache::hash(std::string_view domain,
                         std::span<const std::uint8_t> canonical) {
  const auto* dom = reinterpret_cast<const std::uint8_t*>(domain.data());
  const std::size_t key_len = domain.size() + canonical.size();
  std::uint64_t h = fnv1a(1469598103934665603ULL, dom, domain.size());
  h = fnv1a(h, canonical.data(), canonical.size());

  Entry& e = table_[static_cast<std::size_t>(h & mask_)];
  if (e.used && e.key_hash == h && e.key_len == key_len &&
      e.domain_len == domain.size()) {
    const std::uint8_t* key =
        key_len <= kInlineKeyBytes ? e.inline_key.data() : e.long_key.get();
    if (bytes_equal(key, dom, domain.size()) &&
        bytes_equal(key + domain.size(), canonical.data(),
                    canonical.size())) {
      stats_.hits += 1;
      return e.value;
    }
  }
  stats_.misses += 1;
  if (e.used) stats_.evictions += 1;

  const Digest d = Sha256::hash(canonical);
  std::uint8_t* dst;
  if (key_len <= kInlineKeyBytes) {
    e.long_key.reset();
    dst = e.inline_key.data();
  } else {
    e.long_key = std::make_unique<std::uint8_t[]>(key_len);
    dst = e.long_key.get();
  }
  if (!domain.empty()) std::memcpy(dst, dom, domain.size());
  if (!canonical.empty()) {
    std::memcpy(dst + domain.size(), canonical.data(), canonical.size());
  }
  e.key_hash = h;
  e.key_len = static_cast<std::uint32_t>(key_len);
  e.domain_len = static_cast<std::uint16_t>(domain.size());
  e.used = true;
  e.value = d;
  return d;
}

DigestCache& DigestCache::local() {
  thread_local DigestCache cache;
  return cache;
}

VerifyCache::VerifyCache(std::uint32_t log2_entries)
    : table_(std::size_t{1} << log2_entries),
      mask_((std::uint64_t{1} << log2_entries) - 1) {
  AMBB_CHECK(log2_entries >= 1 && log2_entries <= 24);
}

const Digest* VerifyCache::find(std::uint32_t owner, std::uint64_t domain,
                                const Digest& d) const {
  const Entry& e = table_[index_of(owner, domain, d)];
  if (e.used && e.owner == owner && e.domain == domain && e.digest == d) {
    stats_.hits += 1;
    return &e.mac;
  }
  stats_.misses += 1;
  return nullptr;
}

void VerifyCache::clear() {
  for (Entry& e : table_) e.used = false;
}

void VerifyCache::store(std::uint32_t owner, std::uint64_t domain,
                        const Digest& d, const Digest& mac) {
  Entry& e = table_[index_of(owner, domain, d)];
  if (e.used) stats_.evictions += 1;
  e.domain = domain;
  e.owner = owner;
  e.used = true;
  e.digest = d;
  e.mac = mac;
}

}  // namespace ambb
