// Brute-force pin of the per-record charge arithmetic in
// Simulation::step (src/sim/net.hpp, step 4) at record-base and fanout
// boundaries. A round's charge for a record must equal
//
//   fanout - (free self-copy, unless that very delivery was erased)
//          - (# erased deliveries inside the record's index range)
//
// and the post-erase inboxes must drop exactly the erased deliveries.
// The test replays one fixed traffic pattern (two multicasts, two
// unicasts, an idle node) under every single erasure, every PAIR of
// erasures, and a set of structured edge cases (whole records, record
// boundaries, everything), comparing the ledger and the inboxes against
// an independent reference model. Any off-by-one at a record base, a
// double deduction of an erased self-copy, or a charge for a fully
// erased record shows up as a totals mismatch.
#include "sim/net.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace ambb {
namespace {

constexpr std::uint32_t kN = 5;
constexpr std::uint64_t kBits = 100;

struct ToyMsg {
  int tag = 0;
};

Accounting<ToyMsg> toy_accounting() {
  Accounting<ToyMsg> acc;
  acc.size_bits = [](const ToyMsg&) { return kBits; };
  acc.kind = [](const ToyMsg&) { return MsgKind{0}; };
  acc.slot = [](const ToyMsg&, Round) { return Slot{1}; };
  return acc;
}

class ScriptActor final : public Actor<ToyMsg> {
 public:
  using Fn = std::function<void(Round, std::span<const Delivery<ToyMsg>>,
                                RoundApi<ToyMsg>&)>;
  explicit ScriptActor(Fn fn) : fn_(std::move(fn)) {}
  void on_round(Round r, std::span<const Delivery<ToyMsg>> inbox,
                const TrafficView<ToyMsg>&, RoundApi<ToyMsg>& api) override {
    if (fn_) fn_(r, inbox, api);
  }

 private:
  Fn fn_;
};

class ScriptAdversary final : public Adversary<ToyMsg> {
 public:
  using Fn = std::function<void(Round, const TrafficView<ToyMsg>&,
                                CorruptionCtl<ToyMsg>&)>;
  explicit ScriptAdversary(Fn fn) : fn_(std::move(fn)) {}
  std::vector<NodeId> initial_corruptions() override { return {}; }
  std::unique_ptr<Actor<ToyMsg>> actor_for(NodeId) override {
    return std::make_unique<ScriptActor>(nullptr);
  }
  void observe_round(Round r, const TrafficView<ToyMsg>& traffic,
                     CorruptionCtl<ToyMsg>& ctl) override {
    if (fn_) fn_(r, traffic, ctl);
  }

 private:
  Fn fn_;
};

// The round-0 traffic pattern, in the order step() runs the actors:
//   node 0: multicast            -> record 0, base 0,  fanout 5, self idx 0
//   node 1: send(3)              -> record 1, base 5,  fanout 1
//   node 2: multicast            -> record 2, base 6,  fanout 5, self idx 8
//   node 3: idle
//   node 4: send(0)              -> record 3, base 11, fanout 1
struct RecModel {
  NodeId from;
  std::size_t base;
  std::size_t fanout;
  bool multicast;
  NodeId to;  // unicast only
};
constexpr RecModel kRecs[] = {
    {0, 0, kN, true, kNoNode},
    {1, 5, 1, false, 3},
    {2, 6, kN, true, kNoNode},
    {4, 11, 1, false, 0},
};
constexpr std::size_t kDeliveries = 12;

NodeId sender_of_index(std::size_t idx) {
  for (const auto& rec : kRecs) {
    if (idx >= rec.base && idx < rec.base + rec.fanout) return rec.from;
  }
  AMBB_CHECK_MSG(false, "delivery index " << idx << " out of range");
}

bool contains(const std::vector<std::size_t>& s, std::size_t idx) {
  return std::find(s.begin(), s.end(), idx) != s.end();
}

struct CaseResult {
  std::uint64_t honest_bits = 0;
  std::uint64_t adversary_bits = 0;
  std::array<std::size_t, kN> inbox{};  // round-1 inbox sizes
  std::array<bool, kN> corrupt{};
};

/// Reference model: what the accounting contract SAYS the totals and the
/// surviving inboxes must be, computed independently of the simulator.
CaseResult expected(const std::vector<std::size_t>& erased) {
  CaseResult e;
  for (std::size_t idx : erased) e.corrupt[sender_of_index(idx)] = true;
  for (const auto& rec : kRecs) {
    std::uint64_t charged = rec.fanout;
    if (rec.multicast && !contains(erased, rec.base + rec.from)) {
      charged -= 1;  // the free self-copy
    }
    for (std::size_t idx : erased) {
      if (idx >= rec.base && idx < rec.base + rec.fanout) charged -= 1;
    }
    (e.corrupt[rec.from] ? e.adversary_bits : e.honest_bits) +=
        kBits * charged;
    if (rec.multicast) {
      for (NodeId v = 0; v < kN; ++v) {
        if (!contains(erased, rec.base + v)) e.inbox[v] += 1;
      }
    } else if (!contains(erased, rec.base)) {
      e.inbox[rec.to] += 1;
    }
  }
  return e;
}

/// Simulator run: erase exactly `erased` (corrupting the senders involved
/// first — after-the-fact removal requires a corrupt sender), then read
/// the ledger and the round-1 inboxes.
CaseResult simulate(const std::vector<std::size_t>& erased) {
  CostLedger ledger({"toy"});
  Simulation<ToyMsg> sim(kN, kN - 1, &ledger, toy_accounting());
  CaseResult got;
  for (NodeId v = 0; v < kN; ++v) {
    sim.set_actor(v, std::make_unique<ScriptActor>(
                         [v, &got](Round r,
                                   std::span<const Delivery<ToyMsg>> inbox,
                                   RoundApi<ToyMsg>& api) {
                           if (r == 0) {
                             if (v == 0 || v == 2) api.multicast(ToyMsg{});
                             if (v == 1) api.send(3, ToyMsg{});
                             if (v == 4) api.send(0, ToyMsg{});
                           } else if (r == 1) {
                             got.inbox[v] = inbox.size();
                           }
                         }));
  }
  ScriptAdversary adv([&erased](Round r, const TrafficView<ToyMsg>&,
                                CorruptionCtl<ToyMsg>& ctl) {
    if (r != 0) return;
    for (std::size_t idx : erased) ctl.corrupt(sender_of_index(idx));
    for (std::size_t idx : erased) ctl.erase(idx);
  });
  SimConfig<ToyMsg> sc;
  sc.adversary = &adv;
  sim.configure(sc);
  sim.step();
  sim.step();
  got.honest_bits = ledger.honest_bits_total();
  got.adversary_bits = ledger.adversary_bits_total();
  for (NodeId v = 0; v < kN; ++v) got.corrupt[v] = sim.is_corrupt(v);
  return got;
}

void expect_case(const std::vector<std::size_t>& erased) {
  const CaseResult want = expected(erased);
  const CaseResult got = simulate(erased);
  std::string tag = "erased={";
  for (std::size_t idx : erased) tag += std::to_string(idx) + ",";
  tag += "}";
  EXPECT_EQ(got.honest_bits, want.honest_bits) << tag;
  EXPECT_EQ(got.adversary_bits, want.adversary_bits) << tag;
  for (NodeId v = 0; v < kN; ++v) {
    ASSERT_EQ(got.corrupt[v], want.corrupt[v]) << tag << " node " << v;
    // A corrupted node's capture actor was replaced by the adversary's
    // idle replacement; its inbox is only observable while honest.
    if (!got.corrupt[v]) {
      EXPECT_EQ(got.inbox[v], want.inbox[v]) << tag << " node " << v;
    }
  }
}

TEST(EraseAccounting, HandComputedBaseline) {
  // No erasure, nobody corrupt: both multicasts charge fanout-1 (free
  // self-copy), both unicasts charge 1.
  const CaseResult base = simulate({});
  EXPECT_EQ(base.honest_bits, kBits * (4 + 1 + 4 + 1));
  EXPECT_EQ(base.adversary_bits, 0u);
  EXPECT_EQ(base.inbox, (std::array<std::size_t, kN>{3, 2, 2, 3, 2}));

  // Erasing ONLY the free self-copy of record 0 (delivery index 0) must
  // not change that record's charge — the self-copy was never billed, so
  // removing it is not a deduction. It does re-bill the record to the
  // adversary: erasure requires corrupting the sender first.
  const CaseResult self = simulate({0});
  EXPECT_EQ(self.adversary_bits, kBits * 4);
  EXPECT_EQ(self.honest_bits, kBits * (1 + 4 + 1));
}

TEST(EraseAccounting, EverySingleErasureMatchesTheReferenceModel) {
  for (std::size_t idx = 0; idx < kDeliveries; ++idx) expect_case({idx});
}

TEST(EraseAccounting, EveryErasurePairMatchesTheReferenceModel) {
  // Exhaustive pairs cover every boundary combination: self-copy plus a
  // paid copy of the same record, last-of-record plus first-of-the-next
  // (indices 4|5, 5|6, 10|11), both unicasts, both self-copies (0|8).
  for (std::size_t a = 0; a < kDeliveries; ++a) {
    for (std::size_t b = a + 1; b < kDeliveries; ++b) expect_case({a, b});
  }
}

TEST(EraseAccounting, WholeRecordAndCrossBoundaryErasures) {
  expect_case({0, 1, 2, 3, 4});        // full multicast, incl. self-copy
  expect_case({1, 2, 3, 4});           // full multicast minus self-copy
  expect_case({6, 7, 8, 9, 10});       // full multicast at a later base
  expect_case({5});                    // lone unicast record
  expect_case({11});                   // last delivery of the round
  expect_case({5, 11});                // both unicasts
  expect_case({4, 5, 6});              // straddle two record boundaries
  expect_case({0, 8, 11});             // both self-copies + trailing unicast
  expect_case({0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11});  // erase the round
}

TEST(EraseAccounting, ErasingAnHonestSendersDeliveryIsRejected) {
  // The threat model forbids after-the-fact removal of honest traffic;
  // the simulator enforces it with a CHECK on the record's sender.
  CostLedger ledger({"toy"});
  Simulation<ToyMsg> sim(kN, kN - 1, &ledger, toy_accounting());
  for (NodeId v = 0; v < kN; ++v) {
    sim.set_actor(v, std::make_unique<ScriptActor>(
                         [v](Round r, std::span<const Delivery<ToyMsg>>,
                             RoundApi<ToyMsg>& api) {
                           if (r == 0 && v == 0) api.multicast(ToyMsg{});
                         }));
  }
  ScriptAdversary adv([](Round r, const TrafficView<ToyMsg>&,
                         CorruptionCtl<ToyMsg>& ctl) {
    if (r == 0) ctl.erase(1);  // sender 0 was never corrupted
  });
  SimConfig<ToyMsg> sc;
  sc.adversary = &adv;
  sim.configure(sc);
  EXPECT_THROW(sim.step(), CheckError);
}

}  // namespace
}  // namespace ambb
