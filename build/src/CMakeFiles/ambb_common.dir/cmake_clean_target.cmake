file(REMOVE_RECURSE
  "libambb_common.a"
)
