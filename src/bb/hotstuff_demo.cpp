#include "bb/hotstuff_demo.hpp"

#include "adversary/scheduled.hpp"
#include "common/byte_buf.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "crypto/intern.hpp"
#include <algorithm>

#include "runner/assemble.hpp"

namespace ambb::hs {

std::vector<std::string> kind_names() {
  return {"propose", "vote1", "cert", "vote2", "proof"};
}

namespace {
Digest tagged_digest(const char* tag, Slot k, Value v) {
  Encoder& e = Encoder::scratch();
  e.reserve(32);
  e.put_tag(tag);
  e.put_u32(k);
  e.put_u64(v);
  return DigestCache::local().hash(tag, e.view());
}
}  // namespace

Digest prop_digest(Slot k, Value v) { return tagged_digest("hs-prop", k, v); }
Digest round1_digest(Slot k, Value v) { return tagged_digest("hs-r1", k, v); }
Digest round2_digest(Slot k, Value v) { return tagged_digest("hs-r2", k, v); }

std::uint64_t size_bits(const Msg& m, const WireModel& wire) {
  std::uint64_t bits = wire.header_bits();
  switch (m.kind) {
    case Kind::kPropose:
      bits += wire.value_bits + wire.sig_bits();
      break;
    case Kind::kVote1:
    case Kind::kVote2:
      bits += wire.value_bits + wire.sig_bits();
      break;
    case Kind::kCert:
    case Kind::kProof:
      bits += wire.value_bits + wire.thsig_bits();
      break;
    case Kind::kKindCount:
      AMBB_CHECK(false);
  }
  return bits;
}

namespace {

class HsNode final : public Actor<Msg> {
 public:
  /// starve(slot, to) — a leader deviation: drop the commit-proof copy
  /// addressed to `to`. Null for honest nodes.
  using StarveFn = std::function<bool(Slot, NodeId)>;

  HsNode(NodeId id, const Context* ctx, StarveFn starve = nullptr)
      : id_(id), ctx_(ctx), starve_(std::move(starve)) {}

  void on_round(Round r, std::span<const Delivery<Msg>> inbox,
                const TrafficView<Msg>& rushed,
                RoundApi<Msg>& api) override {
    (void)rushed;
    const Schedule& sched = ctx_->sched;
    const Slot k = sched.slot_of(r);
    const std::uint32_t off = sched.offset_of(r);
    const NodeId leader = ctx_->sender_of(k);
    const std::uint32_t quorum = ctx_->n - ctx_->f;

    if (k != cur_slot_) {
      cur_slot_ = k;
      value_ = kBotValue;
      votes1_.clear();
      votes2_.clear();
      cert_made_ = proof_made_ = false;
    }

    switch (off) {
      case 0:
        if (id_ == leader) {
          Msg m;
          m.kind = Kind::kPropose;
          m.slot = k;
          m.value = ctx_->input_for_slot(k);
          m.sig = ctx_->registry->sign(id_, prop_digest(k, m.value));
          value_ = m.value;
          api.multicast(m);
        }
        break;
      case 1:
        for (const auto& env : inbox) {
          const Msg& m = env.msg();
          if (m.kind != Kind::kPropose || m.slot != k) continue;
          if (m.sig.signer != leader ||
              !ctx_->registry->verify(m.sig, prop_digest(k, m.value))) {
            continue;
          }
          value_ = m.value;
          Msg v;
          v.kind = Kind::kVote1;
          v.slot = k;
          v.value = m.value;
          v.share = ctx_->th->share(id_, round1_digest(k, m.value));
          if (id_ == leader) {
            votes1_.push_back(v.share);
          } else {
            api.send(leader, v);
          }
          break;
        }
        break;
      case 2:
        if (id_ == leader && !cert_made_) {
          for (const auto& env : inbox) {
            const Msg& m = env.msg();
            if (m.kind != Kind::kVote1 || m.slot != k ||
                m.value != value_) {
              continue;
            }
            if (ctx_->th->verify_share(m.share, round1_digest(k, value_))) {
              votes1_.push_back(m.share);
            }
          }
          if (votes1_.size() >= quorum) {
            cert_made_ = true;
            {
              trace::Event ev;
              ev.kind = trace::EventKind::kCertFormed;
              ev.round = r;
              ev.slot = k;
              ev.node = id_;
              ev.value = value_;
              ev.detail = "cert";
              trace::emit(ctx_->trace, ev);
            }
            Msg c;
            c.kind = Kind::kCert;
            c.slot = k;
            c.value = value_;
            c.thsig = ctx_->th->combine(
                std::span<const SigShare>(votes1_), round1_digest(k, value_));
            api.multicast(c);
          }
        }
        break;
      case 3:
        for (const auto& env : inbox) {
          const Msg& m = env.msg();
          if (m.kind != Kind::kCert || m.slot != k) continue;
          if (!ctx_->th->verify(m.thsig, round1_digest(k, m.value))) continue;
          Msg v;
          v.kind = Kind::kVote2;
          v.slot = k;
          v.value = m.value;
          v.share = ctx_->th->share(id_, round2_digest(k, m.value));
          if (id_ == leader) {
            votes2_.push_back(v.share);
          } else {
            api.send(leader, v);
          }
          break;
        }
        break;
      case 4:
        if (id_ == leader && !proof_made_) {
          for (const auto& env : inbox) {
            const Msg& m = env.msg();
            if (m.kind != Kind::kVote2 || m.slot != k ||
                m.value != value_) {
              continue;
            }
            if (ctx_->th->verify_share(m.share, round2_digest(k, value_))) {
              votes2_.push_back(m.share);
            }
          }
          if (votes2_.size() >= quorum) {
            proof_made_ = true;
            {
              trace::Event ev;
              ev.kind = trace::EventKind::kCertFormed;
              ev.round = r;
              ev.slot = k;
              ev.node = id_;
              ev.value = value_;
              ev.detail = "commit-proof";
              trace::emit(ctx_->trace, ev);
            }
            Msg p;
            p.kind = Kind::kProof;
            p.slot = k;
            p.value = value_;
            p.thsig = ctx_->th->combine(
                std::span<const SigShare>(votes2_), round2_digest(k, value_));
            if (starve_ == nullptr) {
              api.multicast(p);
            } else {
              for (NodeId v = 0; v < ctx_->n; ++v) {
                if (!starve_(k, v)) api.send(v, p);
              }
            }
          }
        }
        break;
      case 5:
        for (const auto& env : inbox) {
          const Msg& m = env.msg();
          if (m.kind != Kind::kProof || m.slot != k) continue;
          if (!ctx_->th->verify(m.thsig, round2_digest(k, m.value))) continue;
          if (!ctx_->commits->has(id_, k)) {
            ctx_->commits->record(id_, k, m.value, r);
            trace::Event ev;
            ev.kind = trace::EventKind::kSlotCommit;
            ev.round = r;
            ev.slot = k;
            ev.node = id_;
            ev.value = m.value;
            trace::emit(ctx_->trace, ev);
          }
          break;
        }
        break;
    }
  }

 private:
  NodeId id_;
  const Context* ctx_;
  HsNode::StarveFn starve_;
  Slot cur_slot_ = 0;
  Value value_ = kBotValue;
  std::vector<SigShare> votes1_, votes2_;
  bool cert_made_ = false, proof_made_ = false;
};

/// Corrupt leaders withhold the commit-proof from the f highest-numbered
/// honest nodes; corrupt non-leaders behave honestly (they must, or the
/// quorum narrative falls apart — the attack needs a *valid* proof).
class SelectiveHsAdversary final : public Adversary<Msg> {
 public:
  explicit SelectiveHsAdversary(const Context* ctx) : ctx_(ctx) {}

  std::vector<NodeId> initial_corruptions() override {
    std::vector<NodeId> out;
    for (NodeId v = 0; v < ctx_->f; ++v) out.push_back(v);
    return out;
  }

  std::unique_ptr<Actor<Msg>> actor_for(NodeId node) override {
    const std::uint32_t n = ctx_->n;
    const std::uint32_t f = ctx_->f;
    return std::make_unique<HsNode>(
        node, ctx_, [n, f](Slot, NodeId to) { return to >= n - f; });
  }

 private:
  const Context* ctx_;
};

}  // namespace

RunResult run_hotstuff_demo(const HsConfig& cfg) {
  AMBB_CHECK_MSG(3 * cfg.f < cfg.n, "HotStuff assumes f < n/3");

  KeyRegistry registry(cfg.n, cfg.seed);
  ThresholdScheme th(registry, cfg.n - cfg.f);
  CommitLog commits(cfg.n);
  commits.presize(cfg.slots);  // sharded-round safety: no lazy regrow
  CostLedger ledger(kind_names());

  Context ctx;
  ctx.n = cfg.n;
  ctx.f = cfg.f;
  ctx.wire = WireModel{cfg.n, cfg.kappa_bits, cfg.value_bits};
  ctx.sched = Schedule{};
  ctx.registry = &registry;
  ctx.th = &th;
  ctx.commits = &commits;
  const std::uint64_t input_seed = cfg.seed ^ 0x5EEDF00DULL;
  ctx.input_for_slot = cfg.input_for_slot
                           ? cfg.input_for_slot
                           : [input_seed](Slot s) {
                               std::uint64_t x = input_seed + s;
                               return splitmix64(x);
                             };
  ctx.sender_of = cfg.sender_of ? cfg.sender_of : [n = cfg.n](Slot s) {
    return static_cast<NodeId>((s - 1) % n);
  };
  Sim sim(cfg.n, std::max<std::uint32_t>(cfg.f, 1), &ledger,
          CostPolicy{ctx.wire, ctx.sched});
  // Actors emit through the sim's router so sharded rounds can buffer
  // worker-thread events and replay them in deterministic order.
  ctx.trace = sim.actor_sink(cfg.trace);
  for (NodeId v = 0; v < cfg.n; ++v) {
    sim.set_actor(v, std::make_unique<HsNode>(v, &ctx));
  }
  const std::uint64_t total_rounds =
      static_cast<std::uint64_t>(cfg.slots) * ctx.sched.rounds_per_slot();
  const NetPolicy net = make_net_policy(cfg.net, cfg.seed);
  std::unique_ptr<Adversary<Msg>> adversary;
  if (adversary::is_schedule_spec(cfg.adversary)) {
    adversary::ScheduleEnv<Msg> env;
    env.n = cfg.n;
    env.f = cfg.f;
    env.seed = cfg.seed ^ 0xAD7E25A1ULL;
    env.horizon = total_rounds;
    env.trace = cfg.trace;
    env.net = net;
    env.honest_factory = [ctxp = &ctx](NodeId v) {
      return std::make_unique<HsNode>(v, ctxp);
    };
    adversary = adversary::make_scheduled_adversary<Msg>(cfg.adversary, env);
  } else if (cfg.adversary == "selective") {
    adversary = std::make_unique<SelectiveHsAdversary>(&ctx);
  } else {
    AMBB_CHECK_MSG(cfg.adversary == "none",
                   "unknown hs adversary " << cfg.adversary);
  }
  SimConfig<Msg> sc;
  sc.trace = cfg.trace;
  sc.node_jobs = cfg.node_jobs;
  sc.net = net;
  sc.adversary = adversary.get();
  sim.configure(sc);
  for (std::uint64_t i = 0; i < total_rounds; ++i) {
    if (ctx.sched.offset_of(i) == 0) {
      const Slot k = ctx.sched.slot_of(i);
      trace::Event ev;
      ev.kind = trace::EventKind::kSlotStart;
      ev.round = i;
      ev.slot = k;
      ev.node = ctx.sender_of(k);
      trace::emit(cfg.trace, ev);
    }
    sim.step();
  }

  return assemble_result(
      cfg.n, cfg.f, cfg.slots, sim.now(), ledger, commits, sim.round_stats(),
      [&sim](NodeId v) { return sim.is_corrupt(v); }, ctx.sender_of,
      ctx.input_for_slot);
}

}  // namespace ambb::hs
