# Empty compiler generated dependencies file for blockchain_ledger.
# This may be replaced when dependencies are built.
