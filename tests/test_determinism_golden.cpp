// Golden determinism regression: for fixed (protocol, n, f, slots, seed,
// adversary), the ledger totals, the per-slot cost vector and the full
// commit log must be bit-for-bit what the ORIGINAL eager-envelope
// simulator produced. The values below were extracted from the seed
// implementation (one Envelope per (sender, recipient) copy, per-envelope
// std::function accounting) before the shared-record rewrite; any drift
// here means the rewrite changed an execution, not just its speed.
#include <gtest/gtest.h>

#include <cstdint>

#include "runner/registry.hpp"

namespace ambb {
namespace {

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (8 * i)) & 0xFF;
    h *= 1099511628211ULL;
  }
  return h;
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;

std::uint64_t commit_hash(const RunResult& r) {
  std::uint64_t h = kFnvOffset;
  for (Slot k = 1; k <= r.slots; ++k) {
    for (NodeId v = 0; v < r.n; ++v) {
      if (!r.commits.has(v, k)) {
        h = fnv1a(h, 0xDEADULL);
        continue;
      }
      const CommitRecord& c = r.commits.get(v, k);
      h = fnv1a(h, c.value);
      h = fnv1a(h, c.round);
    }
  }
  return h;
}

std::uint64_t per_slot_hash(const RunResult& r) {
  std::uint64_t h = kFnvOffset;
  for (std::uint64_t b : r.per_slot_bits) h = fnv1a(h, b);
  return h;
}

struct Golden {
  const char* proto;
  std::uint32_t n, f;
  Slot slots;
  std::uint64_t seed;
  const char* adversary;
  std::uint64_t honest_bits;
  std::uint64_t adversary_bits;
  std::uint64_t honest_msgs;
  std::uint64_t per_slot_hash;
  std::uint64_t commit_hash;
};

// Captured from the seed implementation (see file header).
constexpr Golden kGolden[] = {
    {"linear", 8u, 3u, 4u, 42ull, "mixed", 302148ull, 154795ull, 661ull,
     0xcea0288dedc4bf5dull, 0xe38d8413f9d15134ull},
    {"linear", 8u, 3u, 4u, 42ull, "adaptive-erase", 359377ull, 1716ull,
     726ull, 0xfd5102a55c1619ebull, 0x98a0974e5af3ad6dull},
    {"quadratic", 8u, 4u, 4u, 42ull, "equivocate", 377216ull, 356056ull,
     1008ull, 0xe02eeefdcf551ca3ull, 0xf5a8a45b9af08783ull},
    {"quadratic", 8u, 4u, 4u, 42ull, "conspiracy", 348880ull, 73088ull,
     1008ull, 0xe6c85eae9e696ee4ull, 0xbb6b81897e63558bull},
    {"dolev-strong", 8u, 4u, 3u, 42ull, "stagger", 204708ull, 97887ull,
     168ull, 0x623f7c38ed8f5808ull, 0xfedf54da0e857183ull},
    {"dolev-strong-msig", 8u, 4u, 3u, 42ull, "equivocate", 96768ull,
     110592ull, 168ull, 0x75649199436ad97dull, 0xfedf54da0e857183ull},
    {"phase-king", 10u, 3u, 3u, 42ull, "confuse", 133803ull, 192264ull,
     1539ull, 0x3116ff46abc99a1eull, 0xf979075daad8bf43ull},
};

class DeterminismGolden : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DeterminismGolden, MatchesSeedImplementationBitForBit) {
  const Golden& g = kGolden[GetParam()];
  CommonParams p;
  p.n = g.n;
  p.f = g.f;
  p.slots = g.slots;
  p.seed = g.seed;
  p.adversary = g.adversary;
  RunResult r = protocol(g.proto).run(p);

  EXPECT_EQ(r.honest_bits, g.honest_bits) << g.proto << "/" << g.adversary;
  EXPECT_EQ(r.adversary_bits, g.adversary_bits)
      << g.proto << "/" << g.adversary;
  EXPECT_EQ(r.honest_msgs, g.honest_msgs) << g.proto << "/" << g.adversary;
  EXPECT_EQ(per_slot_hash(r), g.per_slot_hash)
      << g.proto << "/" << g.adversary << ": per_slot_bits drifted";
  EXPECT_EQ(commit_hash(r), g.commit_hash)
      << g.proto << "/" << g.adversary << ": commit log drifted";
}

TEST_P(DeterminismGolden, RepeatedRunsAreIdentical) {
  const Golden& g = kGolden[GetParam()];
  CommonParams p;
  p.n = g.n;
  p.f = g.f;
  p.slots = g.slots;
  p.seed = g.seed;
  p.adversary = g.adversary;
  RunResult a = protocol(g.proto).run(p);
  RunResult b = protocol(g.proto).run(p);
  EXPECT_EQ(a.honest_bits, b.honest_bits);
  EXPECT_EQ(a.per_slot_bits, b.per_slot_bits);
  EXPECT_EQ(commit_hash(a), commit_hash(b));
}

INSTANTIATE_TEST_SUITE_P(
    SeedCaptures, DeterminismGolden,
    ::testing::Range(std::size_t{0}, std::size_t{std::size(kGolden)}),
    [](const auto& info) {
      std::string s = kGolden[info.param].proto;
      s += "_";
      s += kGolden[info.param].adversary;
      for (char& c : s) {
        if (c == '-') c = '_';
      }
      return s;
    });

}  // namespace
}  // namespace ambb
