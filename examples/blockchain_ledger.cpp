// Blockchain-style replicated ledger on top of multi-shot BB.
//
// Synchronous multi-shot BB directly yields Byzantine atomic broadcast
// (Section 2): slot k's decision is block k. This example exercises the
// SEQUENTIALITY property (Definition 2): each block's content is derived
// from the previously COMMITTED block — a causal chain that batching-based
// extension protocols cannot provide. At the end, every honest replica's
// ledger hash must be identical, with rotating senders and a mixed
// Byzantine adversary present.
#include <cstdio>
#include <string>

#include "bb/linear_bb.hpp"
#include "common/byte_buf.hpp"
#include "crypto/sha256.hpp"
#include "runner/result.hpp"
#include "runner/table.hpp"

int main() {
  using namespace ambb;

  const std::uint32_t n = 16, f = 6;
  const Slot blocks = 24;

  linear::LinearConfig cfg;
  cfg.n = n;
  cfg.f = f;
  cfg.slots = blocks;
  cfg.seed = 777;
  cfg.adversary = "mixed";

  // Causal block production: block k commits H(k, parent) where parent is
  // the value committed at slot k-1 by the slot-k sender (it has committed
  // slot k-1 before slot k starts — that is sequentiality). Slot 1 builds
  // on a genesis constant.
  cfg.input_with_log = [&cfg](Slot k, const CommitLog& log) -> Value {
    Value parent = 0x6e65736953;  // genesis
    if (k > 1) {
      const NodeId sender = (k - 1) % cfg.n;  // round-robin, same as driver
      if (log.has(sender, k - 1)) parent = log.get(sender, k - 1).value;
    }
    Encoder e;
    e.put_tag("block");
    e.put_u32(k);
    e.put_u64(parent);
    const Digest d = Sha256::hash(
        std::span<const std::uint8_t>(e.bytes().data(), e.bytes().size()));
    Value v = 0;
    for (int i = 0; i < 8; ++i) v = v << 8 | d[i];
    return v;
  };

  std::printf("replicated ledger over Algorithm 4: %u replicas, %u "
              "Byzantine, %u blocks, mixed adversary\n\n",
              n, f, blocks);
  RunResult r = linear::run_linear(cfg);

  auto errs = check_all(r);
  for (const auto& e : errs) std::printf("PROPERTY VIOLATION: %s\n", e.c_str());
  if (!errs.empty()) return 1;

  // Fold each honest replica's committed chain into a ledger digest.
  TextTable t({"replica", "ledger digest (first 16 hex)"});
  std::string first;
  bool all_equal = true;
  for (NodeId u = 0; u < n; ++u) {
    if (r.corrupt[u]) continue;
    Encoder e;
    for (Slot k = 1; k <= blocks; ++k) {
      e.put_u64(r.commits.get(u, k).value);
    }
    const Digest d = Sha256::hash(
        std::span<const std::uint8_t>(e.bytes().data(), e.bytes().size()));
    const std::string hex = digest_hex(d).substr(0, 16);
    if (first.empty()) first = hex;
    all_equal &= hex == first;
    t.add_row({std::to_string(u), hex});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("all honest ledgers identical: %s\n",
              all_equal ? "yes" : "NO (bug!)");
  std::printf("amortized cost: %s/block over %u blocks\n",
              TextTable::bits_human(r.amortized()).c_str(), blocks);
  return all_equal ? 0 : 1;
}
