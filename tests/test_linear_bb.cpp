// Properties of Algorithm 4 (Definition 2) across adversaries, sizes and
// seeds, plus behaviors specific to the linear protocol.
#include "bb/linear_bb.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

namespace ambb::linear {
namespace {

LinearConfig base_cfg(std::uint32_t n, std::uint32_t f, Slot slots,
                      std::uint64_t seed, const std::string& adv) {
  LinearConfig cfg;
  cfg.n = n;
  cfg.f = f;
  cfg.slots = slots;
  cfg.seed = seed;
  cfg.eps = 0.1;
  cfg.adversary = adv;
  return cfg;
}

using Param = std::tuple<std::uint32_t /*n*/, std::uint32_t /*f*/,
                         std::string /*adversary*/, std::uint64_t /*seed*/>;

class LinearProperties : public ::testing::TestWithParam<Param> {};

TEST_P(LinearProperties, ConsistencyTerminationValidity) {
  const auto& [n, f, adv, seed] = GetParam();
  auto r = run_linear(base_cfg(n, f, 5, seed, adv));
  EXPECT_EQ(check_all(r), std::vector<std::string>{});
}

INSTANTIATE_TEST_SUITE_P(
    AdversarySweep, LinearProperties,
    ::testing::Combine(
        ::testing::Values(8u, 16u, 25u),
        ::testing::Values(2u),
        ::testing::Values("none", "silent", "equivocate", "selective",
                          "flood", "mixed", "adaptive-erase"),
        ::testing::Values(1u, 7u)),
    [](const auto& info) {
      std::string s = "n" + std::to_string(std::get<0>(info.param)) + "_f" +
                      std::to_string(std::get<1>(info.param)) + "_" +
                      std::get<2>(info.param) + "_s" +
                      std::to_string(std::get<3>(info.param));
      std::replace(s.begin(), s.end(), '-', '_');
      return s;
    });

INSTANTIATE_TEST_SUITE_P(
    MaxFaultSweep, LinearProperties,
    ::testing::Combine(::testing::Values(16u), ::testing::Values(6u),
                       ::testing::Values("silent", "mixed", "selective"),
                       ::testing::Values(3u, 13u, 23u)),
    [](const auto& info) {
      return "f6_" + std::get<2>(info.param) + "_s" +
             std::to_string(std::get<3>(info.param));
    });

TEST(Linear, HonestSenderCommitsInEpochZero) {
  auto cfg = base_cfg(16, 6, 3, 5, "none");
  auto r = run_linear(cfg);
  const Schedule sched{6};
  for (Slot k = 1; k <= r.slots; ++k) {
    for (NodeId v = 0; v < r.n; ++v) {
      const auto& c = r.commits.get(v, k);
      // Committed within epoch 0 of its slot (11 rounds).
      const Round slot_start = (k - 1) * sched.rounds_per_slot();
      EXPECT_LT(c.round, slot_start + Schedule::kRoundsPerEpoch)
          << "node " << v << " slot " << k;
    }
  }
}

TEST(Linear, ValidityDeliversSenderInputs) {
  auto cfg = base_cfg(12, 4, 4, 9, "none");
  cfg.input_for_slot = [](Slot k) { return Value{1000 + k}; };
  auto r = run_linear(cfg);
  ASSERT_TRUE(check_all(r).empty());
  for (Slot k = 1; k <= 4; ++k) {
    EXPECT_EQ(r.commits.get(5, k).value, Value{1000 + k});
  }
}

TEST(Linear, CustomSenderScheduleRespected) {
  auto cfg = base_cfg(12, 4, 3, 9, "none");
  cfg.sender_of = [](Slot) { return NodeId{7}; };  // fixed honest sender
  auto r = run_linear(cfg);
  EXPECT_TRUE(check_all(r).empty());
  EXPECT_EQ(r.senders[1], 7u);
  EXPECT_EQ(r.senders[3], 7u);
}

TEST(Linear, FBoundEnforced) {
  auto cfg = base_cfg(10, 5, 1, 1, "none");  // f=5 > (0.5-0.1)*10=4
  EXPECT_THROW(run_linear(cfg), CheckError);
}

TEST(Linear, AblationOptionsStillCorrect) {
  for (auto opts : {Options::mr_baseline(), Options::no_memory()}) {
    for (const char* adv : {"none", "silent", "selective", "mixed"}) {
      auto cfg = base_cfg(12, 4, 4, 3, adv);
      cfg.opts = opts;
      auto r = run_linear(cfg);
      EXPECT_EQ(check_all(r), std::vector<std::string>{})
          << "adv=" << adv << " persistent=" << opts.persistent_accusations
          << " query=" << opts.use_query_path;
    }
  }
}

TEST(Linear, NoQueryAblationLosesLivenessUnderSelectiveLeaders) {
  // Removing the Query/Respond path is not merely a cost regression: once
  // a selective leader makes a partial quorum commit, committed nodes are
  // gated out of later epochs and no n-f quorum remains — the starved
  // nodes can never be rescued. This is the dissemination problem of
  // Section 1 in its sharpest form.
  for (const char* adv : {"selective", "mixed"}) {
    auto cfg = base_cfg(12, 4, 4, 3, adv);
    cfg.opts = Options::no_query();
    auto r = run_linear(cfg);
    EXPECT_TRUE(check_consistency(r).empty()) << adv;
    EXPECT_TRUE(check_validity(r).empty()) << adv;
    EXPECT_FALSE(check_termination(r).empty())
        << adv << ": expected the ablation to stall";
  }
  // Under non-selective failures it is still live (no partial commits).
  for (const char* adv : {"none", "silent", "equivocate"}) {
    auto cfg = base_cfg(12, 4, 4, 3, adv);
    cfg.opts = Options::no_query();
    auto r = run_linear(cfg);
    EXPECT_EQ(check_all(r), std::vector<std::string>{}) << adv;
  }
}

TEST(Linear, DeterministicAcrossRuns) {
  auto cfg = base_cfg(12, 4, 4, 123, "mixed");
  auto r1 = run_linear(cfg);
  auto r2 = run_linear(cfg);
  EXPECT_EQ(r1.honest_bits, r2.honest_bits);
  EXPECT_EQ(r1.per_slot_bits, r2.per_slot_bits);
  for (Slot k = 1; k <= 4; ++k) {
    EXPECT_EQ(r1.commits.get(6, k).value, r2.commits.get(6, k).value);
  }
}

TEST(Linear, SeedChangesExecution) {
  auto r1 = run_linear(base_cfg(12, 4, 4, 1, "none"));
  auto r2 = run_linear(base_cfg(12, 4, 4, 2, "none"));
  // Different inputs (seed-derived) -> different committed values.
  EXPECT_NE(r1.commits.get(5, 1).value, r2.commits.get(5, 1).value);
}

TEST(Linear, AdaptiveEraseActuallyCorrupts) {
  auto r = run_linear(base_cfg(12, 4, 3, 5, "adaptive-erase"));
  EXPECT_TRUE(check_all(r).empty());
  int corrupt_count = 0;
  for (auto c : r.corrupt) corrupt_count += c;
  EXPECT_EQ(corrupt_count, 1);  // exactly the slot-1 sender
  EXPECT_EQ(r.corrupt[r.senders[1]], 1);
}

TEST(Linear, SilentAdversaryCostDecreasesAfterFirstSlots) {
  // The corrupt-proof formation is a one-time cost: later slots led by the
  // same (already-convicted) senders must be far cheaper.
  auto cfg = base_cfg(16, 6, 32, 3, "silent");
  auto r = run_linear(cfg);
  ASSERT_TRUE(check_all(r).empty());
  const double head = r.amortized(8);
  const double tail = r.amortized_tail(16);
  EXPECT_LT(tail, head * 0.8);
}

TEST(Linear, MessageSizesFollowWireModel) {
  WireModel w{16, 256, 256};
  Msg m;
  m.kind = Kind::kQuery1;
  EXPECT_EQ(size_bits(m, w), w.header_bits());
  m.kind = Kind::kCommitProof;
  EXPECT_EQ(size_bits(m, w), w.header_bits() + 16 + 256 + 256);
  m.kind = Kind::kPropose;
  m.has_cert = false;
  EXPECT_EQ(size_bits(m, w), w.header_bits() + 256 + 1 + 256 + w.id_bits());
  m.has_cert = true;
  EXPECT_EQ(size_bits(m, w),
            w.header_bits() + 256 + 1 + 16 + 256 + 256 + w.id_bits());
}

TEST(Linear, KindNamesCoverAllKinds) {
  auto names = kind_names();
  EXPECT_EQ(names.size(),
            static_cast<std::size_t>(Kind::kKindCount));
  for (const auto& n : names) EXPECT_NE(n, "?");
}

}  // namespace
}  // namespace ambb::linear
