#include "common/byte_buf.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace ambb {
namespace {

TEST(Encoder, WidthsAreExact) {
  Encoder e;
  e.put_u8(1);
  EXPECT_EQ(e.size(), 1u);
  e.put_u16(1);
  EXPECT_EQ(e.size(), 3u);
  e.put_u32(1);
  EXPECT_EQ(e.size(), 7u);
  e.put_u64(1);
  EXPECT_EQ(e.size(), 15u);
}

TEST(EncoderDecoder, RoundTrip) {
  Encoder e;
  e.put_u8(0xAB);
  e.put_u16(0x1234);
  e.put_u32(0xDEADBEEF);
  e.put_u64(0x0123456789ABCDEFull);
  Decoder d(e.bytes());
  EXPECT_EQ(d.get_u8(), 0xAB);
  EXPECT_EQ(d.get_u16(), 0x1234);
  EXPECT_EQ(d.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(d.get_u64(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(d.exhausted());
}

TEST(EncoderDecoder, BigEndianOrder) {
  Encoder e;
  e.put_u32(0x01020304);
  ASSERT_EQ(e.size(), 4u);
  EXPECT_EQ(e.bytes()[0], 0x01);
  EXPECT_EQ(e.bytes()[3], 0x04);
}

TEST(Encoder, TagsAreLengthPrefixed) {
  // "ab" + "c" must differ from "a" + "bc".
  Encoder e1, e2;
  e1.put_tag("ab");
  e1.put_tag("c");
  e2.put_tag("a");
  e2.put_tag("bc");
  EXPECT_NE(e1.bytes(), e2.bytes());
}

TEST(Encoder, BytesAppended) {
  Encoder e;
  const std::uint8_t data[3] = {9, 8, 7};
  e.put_bytes(std::span<const std::uint8_t>(data, 3));
  Decoder d(e.bytes());
  auto out = d.get_bytes(3);
  EXPECT_EQ(out, std::vector<std::uint8_t>({9, 8, 7}));
}

TEST(Decoder, UnderrunThrows) {
  Encoder e;
  e.put_u8(1);
  Decoder d(e.bytes());
  d.get_u8();
  EXPECT_THROW(d.get_u8(), CheckError);
}

TEST(Decoder, RemainingTracksPosition) {
  Encoder e;
  e.put_u32(5);
  Decoder d(e.bytes());
  EXPECT_EQ(d.remaining(), 4u);
  d.get_u16();
  EXPECT_EQ(d.remaining(), 2u);
}

}  // namespace
}  // namespace ambb
