// Constant-degree expander graphs.
//
// Algorithm 4 uses an (n, 2eps, 1-2eps)-expander G_eps known to all nodes:
// every vertex set S with |S| = ceil(2eps*n) has more than (1-2eps)n
// neighbors. We construct candidates as unions of random Hamiltonian
// cycles (degree-d regular multigraphs with duplicates collapsed), then
// certify expansion by (a) a spectral bound via power iteration and (b)
// Monte-Carlo subset sampling. Exact expansion verification is co-NP-hard;
// random d-regular graphs are Ramanujan-like whp, and the sampled check is
// what the simulation's safety actually exercises.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace ambb {

class Graph {
 public:
  explicit Graph(std::uint32_t n);

  std::uint32_t n() const { return n_; }

  void add_edge(std::uint32_t u, std::uint32_t v);
  bool has_edge(std::uint32_t u, std::uint32_t v) const;

  const std::vector<std::uint32_t>& neighbors(std::uint32_t u) const {
    return adj_[u];
  }
  std::uint32_t degree(std::uint32_t u) const {
    return static_cast<std::uint32_t>(adj_[u].size());
  }
  std::uint32_t max_degree() const;
  std::uint64_t edge_count() const;

  /// |N(S)|: number of vertices adjacent to at least one vertex of S
  /// (may include members of S, as in the paper's definition).
  std::uint32_t neighborhood_size(const std::vector<std::uint32_t>& s) const;

 private:
  std::uint32_t n_;
  std::vector<std::vector<std::uint32_t>> adj_;
};

/// Union of ceil(d/2) uniformly random Hamiltonian cycles; duplicates
/// collapsed, so degrees are <= 2*ceil(d/2) and typically == for n >> d.
Graph random_regular_graph(std::uint32_t n, std::uint32_t d, Rng& rng);

/// Second-largest absolute adjacency eigenvalue estimated by power
/// iteration on the component orthogonal to the all-ones vector. Smaller
/// is better; d-regular Ramanujan graphs achieve ~2*sqrt(d-1).
double second_eigenvalue_estimate(const Graph& g, Rng& rng,
                                  int iters = 200);

/// Monte-Carlo check of (n, alpha, beta)-expansion: samples random vertex
/// sets S of size ceil(alpha*n) and verifies |N(S)| > beta*n for all of
/// them. Returns false on the first violated sample.
bool sampled_expansion_check(const Graph& g, double alpha, double beta,
                             int samples, Rng& rng);

/// Deterministically build an (n, 2eps, 1-2eps)-expander for Algorithm 4:
/// tries growing degrees / fresh seeds until the sampled check passes.
/// All nodes calling this with the same (n, eps, seed) get the same graph,
/// modeling the paper's "known to all nodes".
Graph build_expander(std::uint32_t n, double eps, std::uint64_t seed,
                     int samples = 200);

}  // namespace ambb
