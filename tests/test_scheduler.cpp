// Tests of the deterministic event-queue scheduler (DESIGN.md §16):
// net-policy parsing and draws, bounded-Δ delivery windows, async
// adversary-scheduled delays with the eventual-delivery guarantee,
// lockstep equivalence and timing-fault rejection, the configure()
// contract, the delay/reorder schedule grammar, timing-aware fuzz
// generation, and the find_protocol/suggest_protocol lookups.
#include "adversary/fuzz.hpp"
#include "adversary/scheduled.hpp"
#include "adversary/spec.hpp"
#include "engine/sweep.hpp"
#include "runner/registry.hpp"
#include "sim/net.hpp"
#include "sim/net_policy.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

namespace ambb {
namespace {

struct ToyMsg {
  int tag = 0;
};

Accounting<ToyMsg> toy_accounting() {
  Accounting<ToyMsg> acc;
  acc.size_bits = [](const ToyMsg&) { return std::uint64_t{100}; };
  acc.kind = [](const ToyMsg&) { return MsgKind{0}; };
  acc.slot = [](const ToyMsg&, Round) { return Slot{1}; };
  return acc;
}

class ScriptActor final : public Actor<ToyMsg> {
 public:
  using Fn = std::function<void(Round, std::span<const Delivery<ToyMsg>>,
                                const TrafficView<ToyMsg>&,
                                RoundApi<ToyMsg>&)>;
  explicit ScriptActor(Fn fn) : fn_(std::move(fn)) {}
  void on_round(Round r, std::span<const Delivery<ToyMsg>> inbox,
                const TrafficView<ToyMsg>& rushed,
                RoundApi<ToyMsg>& api) override {
    if (fn_) fn_(r, inbox, rushed, api);
  }

 private:
  Fn fn_;
};

std::unique_ptr<ScriptActor> idle() {
  return std::make_unique<ScriptActor>(nullptr);
}

/// Adversary whose observe_round is a lambda (timing-fault injection).
class ObserveAdv final : public Adversary<ToyMsg> {
 public:
  using Fn = std::function<void(Round, const TrafficView<ToyMsg>&,
                                CorruptionCtl<ToyMsg>&)>;
  explicit ObserveAdv(Fn fn) : fn_(std::move(fn)) {}
  std::vector<NodeId> initial_corruptions() override { return {}; }
  std::unique_ptr<Actor<ToyMsg>> actor_for(NodeId) override {
    return idle();
  }
  void observe_round(Round r, const TrafficView<ToyMsg>& traffic,
                     CorruptionCtl<ToyMsg>& ctl) override {
    if (fn_) fn_(r, traffic, ctl);
  }

 private:
  Fn fn_;
};

// ---------------------------------------------------------------------
// Policy parsing and the pure delay draw.

TEST(NetPolicy, ParseAndSpecRoundTrip) {
  NetPolicy p = parse_net_policy("lockstep");
  EXPECT_EQ(p.kind, NetKind::kLockstep);
  EXPECT_TRUE(p.lockstep());
  EXPECT_EQ(p.spec(), "lockstep");
  EXPECT_EQ(p.max_extra(), 0u);

  p = parse_net_policy("bounded:3");
  EXPECT_EQ(p.kind, NetKind::kBounded);
  EXPECT_EQ(p.delta, 3u);
  EXPECT_EQ(p.spec(), "bounded:3");
  EXPECT_EQ(p.max_extra(), 3u);

  p = parse_net_policy("async");
  EXPECT_EQ(p.kind, NetKind::kAsync);
  EXPECT_EQ(p.cap, 8u);  // default eventual-delivery cap
  EXPECT_EQ(p.spec(), "async:8");

  p = parse_net_policy("async:2");
  EXPECT_EQ(p.cap, 2u);
  EXPECT_EQ(p.max_extra(), 2u);
}

TEST(NetPolicy, ParseRejectsMalformedSpecs) {
  EXPECT_THROW(parse_net_policy(""), CheckError);
  EXPECT_THROW(parse_net_policy("bogus"), CheckError);
  EXPECT_THROW(parse_net_policy("lockstep:1"), CheckError);
  EXPECT_THROW(parse_net_policy("bounded"), CheckError);     // needs delta
  EXPECT_THROW(parse_net_policy("bounded:"), CheckError);
  EXPECT_THROW(parse_net_policy("bounded:abc"), CheckError);
  EXPECT_THROW(parse_net_policy("async:0"), CheckError);     // no guarantee
}

TEST(NetPolicy, BoundedDrawIsPureAndInRange) {
  const NetPolicy b = make_net_policy("bounded:4", 99);
  std::set<std::uint32_t> seen;
  for (Round r = 0; r < 10; ++r) {
    for (std::uint64_t d = 0; d < 10; ++d) {
      const std::uint32_t x = b.base_extra(r, d);
      EXPECT_LE(x, 4u);
      EXPECT_EQ(x, b.base_extra(r, d));  // pure function of (seed, r, d)
      seen.insert(x);
    }
  }
  // A hash that never varies would make "partial synchrony" a no-op.
  EXPECT_GT(seen.size(), 1u);

  // Only bounded draws: the other policies add no delay of their own.
  EXPECT_EQ(make_net_policy("lockstep", 99).base_extra(3, 7), 0u);
  EXPECT_EQ(make_net_policy("async:4", 99).base_extra(3, 7), 0u);
}

TEST(NetPolicy, ClampEnforcesThePolicyBound) {
  EXPECT_EQ(make_net_policy("bounded:4", 1).clamp_extra(100), 4u);
  EXPECT_EQ(make_net_policy("async:3", 1).clamp_extra(100), 3u);
  EXPECT_EQ(make_net_policy("async:3", 1).clamp_extra(2), 2u);
  EXPECT_EQ(make_net_policy("lockstep", 1).clamp_extra(100), 0u);
}

TEST(NetPolicy, MakeNetPolicyFoldsTheRunSeed) {
  const NetPolicy a = make_net_policy("bounded:3", 1);
  const NetPolicy b = make_net_policy("bounded:3", 2);
  const NetPolicy a2 = make_net_policy("bounded:3", 1);
  EXPECT_NE(a.seed, b.seed);   // different runs, different delay streams
  EXPECT_EQ(a.seed, a2.seed);  // same run, same stream
}

// ---------------------------------------------------------------------
// The simulator's event queue under each policy.

TEST(Scheduler, BoundedDeliveriesLandInsideTheWindow) {
  constexpr std::uint32_t n = 4;
  constexpr std::uint32_t kDelta = 3;
  CostLedger ledger({"toy"});
  Simulation<ToyMsg> sim(n, 1, &ledger, toy_accounting());
  std::vector<int> got(n, 0);
  std::vector<Round> at(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    sim.set_actor(v, std::make_unique<ScriptActor>(
                         [&, v](Round r, auto inbox, auto,
                                RoundApi<ToyMsg>& api) {
                           if (r == 0 && v == 0) api.multicast(ToyMsg{7});
                           if (!inbox.empty()) {
                             got[v] += static_cast<int>(inbox.size());
                             at[v] = r;
                           }
                         }));
  }
  SimConfig<ToyMsg> sc;
  sc.net = make_net_policy("bounded:3", 42);
  sim.configure(sc);
  sim.run_rounds(2 + kDelta);

  std::uint64_t late = 0;  // deliveries with a nonzero extra delay
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_EQ(got[v], 1) << "node " << v;  // eventual delivery, exactly once
    EXPECT_GE(at[v], 1u) << "node " << v;  // never before lock-step latency
    EXPECT_LE(at[v], Round{1 + kDelta}) << "node " << v;
    if (at[v] > 1) ++late;
  }
  // RoundStats charge delays to the EMISSION round.
  EXPECT_EQ(sim.round_stats()[0].delayed, late);
  EXPECT_EQ(sim.summary().delayed, late);
  // Cost is charged at emission: bits are identical to a lockstep run.
  EXPECT_EQ(ledger.honest_bits_total(), 300u);
}

TEST(Scheduler, BoundedZeroDeltaBehavesLikeLockstep) {
  // Δ = 0 exercises the event-queue delivery path but every draw is 0,
  // so the execution must match the lockstep fast path exactly.
  for (const char* spec : {"lockstep", "bounded:0"}) {
    CostLedger ledger({"toy"});
    Simulation<ToyMsg> sim(3, 1, &ledger, toy_accounting());
    int got_at_round = -1;
    sim.set_actor(0, std::make_unique<ScriptActor>(
                         [](Round r, auto, auto, RoundApi<ToyMsg>& api) {
                           if (r == 0) api.send(1, ToyMsg{42});
                         }));
    sim.set_actor(1, std::make_unique<ScriptActor>(
                         [&](Round r, auto inbox, auto, auto&) {
                           if (!inbox.empty() && got_at_round < 0) {
                             got_at_round = static_cast<int>(r);
                           }
                         }));
    sim.set_actor(2, idle());
    SimConfig<ToyMsg> sc;
    sc.net = make_net_policy(spec, 7);
    sim.configure(sc);
    sim.run_rounds(3);
    EXPECT_EQ(got_at_round, 1) << spec;
    EXPECT_EQ(ledger.honest_bits_total(), 100u) << spec;
    EXPECT_EQ(sim.summary().delayed, 0u) << spec;
  }
}

TEST(Scheduler, AsyncAdversaryDefersASpecificDelivery) {
  CostLedger ledger({"toy"});
  Simulation<ToyMsg> sim(3, 1, &ledger, toy_accounting());
  Round arrived = 0;
  ObserveAdv adv([](Round r, const TrafficView<ToyMsg>& traffic,
                    CorruptionCtl<ToyMsg>& ctl) {
    if (r != 0) return;
    ASSERT_EQ(traffic.size(), 1u);
    EXPECT_EQ(ctl.net().kind, NetKind::kAsync);
    ctl.delay(0, 2);  // timing fault on an HONEST sender: no budget used
    EXPECT_EQ(ctl.corruption_budget_left(), 1u);
  });
  sim.set_actor(0, std::make_unique<ScriptActor>(
                       [](Round r, auto, auto, RoundApi<ToyMsg>& api) {
                         if (r == 0) api.send(1, ToyMsg{5});
                       }));
  sim.set_actor(1, std::make_unique<ScriptActor>(
                       [&](Round r, auto inbox, auto, auto&) {
                         if (!inbox.empty()) arrived = r;
                       }));
  sim.set_actor(2, idle());
  SimConfig<ToyMsg> sc;
  sc.net = make_net_policy("async", 3);
  sc.adversary = &adv;
  sim.configure(sc);
  sim.run_rounds(5);
  EXPECT_EQ(arrived, 3u);  // emitted round 0, lands 1 + 2 extra
  EXPECT_EQ(sim.round_stats()[0].delayed, 1u);
  EXPECT_EQ(sim.corrupt_count(), 0u);
}

TEST(Scheduler, AsyncCapIsTheEventualDeliveryGuarantee) {
  CostLedger ledger({"toy"});
  Simulation<ToyMsg> sim(2, 1, &ledger, toy_accounting());
  Round arrived = 0;
  ObserveAdv adv([](Round r, const TrafficView<ToyMsg>&,
                    CorruptionCtl<ToyMsg>& ctl) {
    if (r == 0) ctl.delay(0, 1000);  // "forever" — clamped to the cap
  });
  sim.set_actor(0, std::make_unique<ScriptActor>(
                       [](Round r, auto, auto, RoundApi<ToyMsg>& api) {
                         if (r == 0) api.send(1, ToyMsg{1});
                       }));
  sim.set_actor(1, std::make_unique<ScriptActor>(
                       [&](Round r, auto inbox, auto, auto&) {
                         if (!inbox.empty()) arrived = r;
                       }));
  SimConfig<ToyMsg> sc;
  sc.net = make_net_policy("async:4", 9);
  sc.adversary = &adv;
  sim.configure(sc);
  sim.run_rounds(8);
  EXPECT_EQ(arrived, 5u);  // 1 + cap, never later: no forever-withholding
}

TEST(Scheduler, LockstepRejectsTimingFaults) {
  CostLedger ledger({"toy"});
  Simulation<ToyMsg> sim(2, 1, &ledger, toy_accounting());
  ObserveAdv adv([](Round, const TrafficView<ToyMsg>& traffic,
                    CorruptionCtl<ToyMsg>& ctl) {
    if (!traffic.empty()) {
      EXPECT_THROW(ctl.delay(0, 1), CheckError);
    }
  });
  sim.set_actor(0, std::make_unique<ScriptActor>(
                       [](Round, auto, auto, RoundApi<ToyMsg>& api) {
                         api.send(1, ToyMsg{1});
                       }));
  sim.set_actor(1, idle());
  SimConfig<ToyMsg> sc;
  sc.adversary = &adv;  // net stays the default lockstep policy
  sim.configure(sc);
  sim.run_rounds(1);
}

// ---------------------------------------------------------------------
// The configure() contract.

TEST(Scheduler, ConfigureIsOnceAndBeforeTheFirstStep) {
  {
    CostLedger ledger({"toy"});
    Simulation<ToyMsg> sim(2, 1, &ledger, toy_accounting());
    for (NodeId v = 0; v < 2; ++v) sim.set_actor(v, idle());
    SimConfig<ToyMsg> sc;
    sim.configure(sc);
    EXPECT_THROW(sim.configure(sc), CheckError);  // reconfiguration
  }
  {
    CostLedger ledger({"toy"});
    Simulation<ToyMsg> sim(2, 1, &ledger, toy_accounting());
    for (NodeId v = 0; v < 2; ++v) sim.set_actor(v, idle());
    sim.step();  // unconfigured runs are fine (all defaults) ...
    SimConfig<ToyMsg> sc;
    EXPECT_THROW(sim.configure(sc), CheckError);  // ... but then it's late
  }
}

// ---------------------------------------------------------------------
// The delay/reorder schedule grammar and its gating.

TEST(Scheduler, SpecParsesDelayAndReorderOps) {
  using namespace adversary;
  FaultSchedule s = parse_schedule_spec("sched:delay(1,2,5,3);reorder(0,0,4)");
  ASSERT_EQ(s.net_faults.size(), 2u);
  EXPECT_EQ(s.net_faults[0].kind, NetFaultKind::kDelay);
  EXPECT_EQ(s.net_faults[0].sender, 1u);
  EXPECT_EQ(s.net_faults[0].from, 2u);
  EXPECT_EQ(s.net_faults[0].to, 5u);
  EXPECT_EQ(s.net_faults[0].extra, 3u);
  EXPECT_EQ(s.net_faults[1].kind, NetFaultKind::kReorder);
  EXPECT_EQ(s.net_faults[1].sender, 0u);
  EXPECT_TRUE(s.corruptions.empty());  // timing faults need no corruption
  validate(s, /*n=*/4, /*f=*/0);       // ... and no corruption budget
}

TEST(Scheduler, ValidateRejectsBadTimingFaults) {
  using namespace adversary;
  {
    FaultSchedule s;  // kDelay with extra 0 is a no-op: reject it
    s.net_faults.push_back(NetFault{NetFaultKind::kDelay, 0, 0, 5, 0, 0});
    EXPECT_THROW(validate(s, 4, 1), CheckError);
  }
  {
    FaultSchedule s;  // inverted window
    s.net_faults.push_back(NetFault{NetFaultKind::kReorder, 0, 5, 2, 1, 0});
    EXPECT_THROW(validate(s, 4, 1), CheckError);
  }
  {
    FaultSchedule s;  // sender out of range
    s.net_faults.push_back(NetFault{NetFaultKind::kDelay, 9, 0, 5, 1, 0});
    EXPECT_THROW(validate(s, 4, 1), CheckError);
  }
}

TEST(Scheduler, TimingSchedulesAreRejectedUnderLockstep) {
  using namespace adversary;
  ScheduleEnv<ToyMsg> env;
  env.n = 4;
  env.f = 1;
  env.seed = 1;
  env.horizon = 10;
  env.honest_factory = [](NodeId) { return idle(); };
  // Default env.net is lockstep: the synchronous model has no timing power.
  EXPECT_THROW(make_scheduled_adversary<ToyMsg>("sched:delay(0,0,5,2)", env),
               CheckError);
  env.net = make_net_policy("bounded:2", 1);
  EXPECT_NE(make_scheduled_adversary<ToyMsg>("sched:delay(0,0,5,2)", env),
            nullptr);
}

// ---------------------------------------------------------------------
// Timing-aware fuzz generation.

TEST(Scheduler, FuzzTimingBoundGatesNetFaults) {
  using namespace adversary;
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const FaultSchedule base = generate_schedule(12, 3, 20, seed, 0);
    const FaultSchedule timed = generate_schedule(12, 3, 20, seed, 3);

    // Lockstep (bound 0) draws no timing faults at all.
    EXPECT_TRUE(base.net_faults.empty());
    // Timing faults are drawn AFTER the content faults from the same RNG,
    // so the content part of the schedule is byte-identical either way —
    // the lockstep golden-compat guarantee.
    ASSERT_EQ(base.corruptions.size(), timed.corruptions.size());
    for (std::size_t i = 0; i < base.corruptions.size(); ++i) {
      EXPECT_EQ(base.corruptions[i].from, timed.corruptions[i].from);
      EXPECT_EQ(base.corruptions[i].node, timed.corruptions[i].node);
    }
    ASSERT_EQ(base.erasures.size(), timed.erasures.size());
    for (std::size_t i = 0; i < base.erasures.size(); ++i) {
      EXPECT_EQ(base.erasures[i].round, timed.erasures[i].round);
      EXPECT_EQ(base.erasures[i].sender, timed.erasures[i].sender);
      EXPECT_EQ(base.erasures[i].density_permille,
                timed.erasures[i].density_permille);
    }
    ASSERT_EQ(base.actor_faults.size(), timed.actor_faults.size());
    for (std::size_t i = 0; i < base.actor_faults.size(); ++i) {
      EXPECT_EQ(base.actor_faults[i].kind, timed.actor_faults[i].kind);
      EXPECT_EQ(base.actor_faults[i].node, timed.actor_faults[i].node);
    }

    // A nonzero bound always yields at least one timing fault, scaled to
    // the bound, against any sender — and still validate()s.
    EXPECT_FALSE(timed.net_faults.empty());
    for (const auto& t : timed.net_faults) {
      EXPECT_LT(t.sender, 12u);
      if (t.kind == NetFaultKind::kDelay) {
        EXPECT_GE(t.extra, 1u);
        EXPECT_LE(t.extra, 3u);
      }
    }
    validate(timed, 12, 3);
  }
  // f == 0 with a timing bound: a pure network adversary is legal.
  const FaultSchedule net_only =
      adversary::generate_schedule(8, 0, 16, 5, 2);
  EXPECT_TRUE(net_only.corruptions.empty());
  validate(net_only, 8, 0);
}

// ---------------------------------------------------------------------
// Registry lookups.

TEST(Registry, FindProtocolAndSuggestions) {
  const ProtocolInfo* p = find_protocol("linear");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->name, "linear");
  EXPECT_EQ(&protocol("linear"), p);  // the throwing lookup delegates

  EXPECT_EQ(find_protocol("no-such-protocol"), nullptr);
  EXPECT_THROW(protocol("no-such-protocol"), CheckError);

  EXPECT_EQ(suggest_protocol("linea"), "linear");
  EXPECT_EQ(suggest_protocol("quadratik"), "quadratic");
  EXPECT_EQ(suggest_protocol("dolev-strng"), "dolev-strong");
  EXPECT_EQ(suggest_protocol("zzzzzzzz"), "");  // nothing plausibly close
}

TEST(Registry, ConsistencyNeedsSyncMarksTheRoundDeadlineRows) {
  // Quorum-intersection rows: consistency is a hard oracle under every
  // delay policy.
  for (const char* name :
       {"linear", "mr-baseline", "linear-nomem", "linear-noquery",
        "phase-king", "hotstuff"}) {
    EXPECT_FALSE(protocol(name).consistency_needs_sync) << name;
  }
  // Round-deadline rows: the agreement argument is itself a synchrony
  // assumption (DS relay step, TrustCast, chunk-dispersal windows).
  for (const char* name :
       {"dolev-strong", "dolev-strong-msig", "quadratic", "ext:linear",
        "ext:quadratic", "ext:dolev-strong", "ext:dolev-strong-msig"}) {
    EXPECT_TRUE(protocol(name).consistency_needs_sync) << name;
  }
}

TEST(Scheduler, SweepCellsRelaxOraclesByPolicyAndRow) {
  engine::SweepSpec spec;
  spec.protocol = "dolev-strong";
  spec.ns = {8};
  spec.fs = {1};
  spec.slots_list = {1};
  spec.nets = {"lockstep", "bounded:2"};
  auto jobs = engine::expand(spec);
  ASSERT_EQ(jobs.size(), 2u);
  // Lockstep cell: every oracle hard, even for a round-deadline row.
  EXPECT_FALSE(jobs[0].allow_stall);
  EXPECT_FALSE(jobs[0].allow_invalid);
  EXPECT_FALSE(jobs[0].allow_split);
  // Bounded cell: synchrony-conditional oracles relaxed; consistency
  // relaxed only because dolev-strong declares consistency_needs_sync.
  EXPECT_TRUE(jobs[1].allow_stall);
  EXPECT_TRUE(jobs[1].allow_invalid);
  EXPECT_TRUE(jobs[1].allow_split);

  spec.protocol = "linear";
  jobs = engine::expand(spec);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_TRUE(jobs[1].allow_invalid);
  EXPECT_FALSE(jobs[1].allow_split);  // quorum row: consistency stays hard
}

// ---------------------------------------------------------------------
// End-to-end determinism through the registry.

TEST(Scheduler, RegistryRunsAreSeedDeterministicUnderDelays) {
  for (const char* net : {"bounded:2", "async:4"}) {
    CommonParams p;
    p.n = 8;
    p.f = 2;
    p.slots = 2;
    p.seed = 7;
    p.adversary = "fuzz";
    p.net = net;
    const RunResult a = protocol("linear").run(p);
    p.node_jobs = 4;  // sharded honest phase must not move a single bit
    const RunResult b = protocol("linear").run(p);
    EXPECT_EQ(a.honest_bits, b.honest_bits) << net;
    EXPECT_EQ(a.adversary_bits, b.adversary_bits) << net;
    EXPECT_EQ(a.honest_msgs, b.honest_msgs) << net;
    EXPECT_EQ(a.rounds, b.rounds) << net;
    EXPECT_EQ(a.per_slot_bits, b.per_slot_bits) << net;
    EXPECT_EQ(a.stats_summary().delayed, b.stats_summary().delayed) << net;
    // Consistency is the one oracle no network model relaxes
    // (termination and validity are synchrony-conditional; see
    // engine::Job::allow_invalid).
    EXPECT_TRUE(check_consistency(a).empty()) << net;
  }
}

TEST(Scheduler, RegistryBoundedZeroMatchesLockstepBitForBit) {
  CommonParams p;
  p.n = 8;
  p.f = 2;
  p.slots = 2;
  p.seed = 11;
  p.adversary = "fuzz";
  const RunResult lock = protocol("linear").run(p);
  p.net = "bounded:0";  // event-queue path, but every draw is zero
  const RunResult zero = protocol("linear").run(p);
  EXPECT_EQ(lock.honest_bits, zero.honest_bits);
  EXPECT_EQ(lock.adversary_bits, zero.adversary_bits);
  EXPECT_EQ(lock.honest_msgs, zero.honest_msgs);
  EXPECT_EQ(lock.rounds, zero.rounds);
  EXPECT_EQ(lock.per_slot_bits, zero.per_slot_bits);
  EXPECT_EQ(zero.stats_summary().delayed, 0u);
}

}  // namespace
}  // namespace ambb
