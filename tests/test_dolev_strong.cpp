#include "bb/dolev_strong.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace ambb::ds {
namespace {

DsConfig base_cfg(std::uint32_t n, std::uint32_t f, Slot slots,
                  std::uint64_t seed, const std::string& adv, bool msig) {
  DsConfig cfg;
  cfg.n = n;
  cfg.f = f;
  cfg.slots = slots;
  cfg.seed = seed;
  cfg.adversary = adv;
  cfg.use_multisig = msig;
  return cfg;
}

using Param = std::tuple<std::uint32_t, std::uint32_t, std::string,
                         bool /*msig*/, std::uint64_t>;

class DsProperties : public ::testing::TestWithParam<Param> {};

TEST_P(DsProperties, ConsistencyTerminationValidity) {
  const auto& [n, f, adv, msig, seed] = GetParam();
  auto r = run_dolev_strong(base_cfg(n, f, n + 2, seed, adv, msig));
  EXPECT_EQ(check_all(r), std::vector<std::string>{});
}

INSTANTIATE_TEST_SUITE_P(
    AdversarySweep, DsProperties,
    ::testing::Combine(
        ::testing::Values(6u, 10u), ::testing::Values(4u),
        ::testing::Values("none", "silent", "equivocate", "stagger"),
        ::testing::Bool(), ::testing::Values(1u, 5u)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_" +
             std::get<2>(info.param) +
             (std::get<3>(info.param) ? "_msig" : "_plain") + "_s" +
             std::to_string(std::get<4>(info.param));
    });

INSTANTIATE_TEST_SUITE_P(
    DishonestMajority, DsProperties,
    ::testing::Combine(::testing::Values(7u), ::testing::Values(5u, 6u),
                       ::testing::Values("silent", "stagger"),
                       ::testing::Values(false), ::testing::Values(3u)),
    [](const auto& info) {
      return "f" + std::to_string(std::get<1>(info.param)) + "_" +
             std::get<2>(info.param);
    });

TEST(DolevStrong, StaggerForcesBotButConsistently) {
  auto r = run_dolev_strong(base_cfg(8, 4, 8, 3, "stagger", false));
  ASSERT_TRUE(check_all(r).empty());
  bool saw_bot = false;
  for (Slot k = 1; k <= 8; ++k) {
    if (!r.corrupt[r.senders[k]]) continue;
    for (NodeId u = 4; u < 8; ++u) {
      if (r.commits.get(u, k).value == kBotValue) saw_bot = true;
    }
  }
  EXPECT_TRUE(saw_bot) << "the stagger attack never forced a bot commit";
}

TEST(DolevStrong, MultisigStrictlyCheaperThanPlainChains) {
  auto plain = run_dolev_strong(base_cfg(12, 8, 6, 3, "none", false));
  auto msig = run_dolev_strong(base_cfg(12, 8, 6, 3, "none", true));
  ASSERT_TRUE(check_all(plain).empty());
  ASSERT_TRUE(check_all(msig).empty());
  EXPECT_LT(msig.honest_bits, plain.honest_bits);
}

TEST(DolevStrong, NoAmortizationAcrossSlots) {
  // Dolev-Strong has no cross-slot state: per-slot cost is flat.
  auto r = run_dolev_strong(base_cfg(8, 5, 17, 3, "none", false));
  ASSERT_TRUE(check_all(r).empty());
  EXPECT_NEAR(static_cast<double>(r.per_slot_bits[2]),
              static_cast<double>(r.per_slot_bits[10]),
              0.25 * static_cast<double>(r.per_slot_bits[2]));
}

TEST(DolevStrong, ChainValidationRejectsForgeries) {
  KeyRegistry reg(4, 1);
  MultiSigScheme msig(reg);
  Context ctx;
  ctx.n = 4;
  ctx.f = 2;
  ctx.registry = &reg;
  ctx.msig = &msig;
  ctx.wire = WireModel{4, 256, 256};

  const Slot k = 1;
  const Value v = 99;
  const Digest d = relay_digest(k, v);

  Msg m;
  m.kind = Kind::kRelay;
  m.slot = k;
  m.value = v;
  m.chain.push_back(reg.sign(0, d));
  m.chain.push_back(reg.sign(1, d));
  m.agg = msig.extend(msig.extend(msig.empty(), 0, d), 1, d);

  // White-box check through size accounting only; the acceptance logic is
  // covered end-to-end by the property sweeps. Here: size model.
  EXPECT_EQ(size_bits(m, ctx),
            ctx.wire.header_bits() + 256 + 2 * ctx.wire.sig_bits());
  Context ctx2 = ctx;
  ctx2.use_multisig = true;
  EXPECT_EQ(size_bits(m, ctx2),
            ctx.wire.header_bits() + 256 + ctx.wire.multisig_bits());
}

TEST(DolevStrong, HonestSenderAlwaysDeliversInput) {
  DsConfig cfg = base_cfg(9, 6, 9, 11, "silent", false);
  cfg.input_for_slot = [](Slot k) { return Value{500 + k}; };
  auto r = run_dolev_strong(cfg);
  ASSERT_TRUE(check_all(r).empty());
  for (Slot k = 1; k <= 9; ++k) {
    if (r.corrupt[r.senders[k]]) continue;
    for (NodeId u = 6; u < 9; ++u) {
      EXPECT_EQ(r.commits.get(u, k).value, Value{500 + k});
    }
  }
}

}  // namespace
}  // namespace ambb::ds
