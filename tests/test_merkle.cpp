// Merkle-tree commitment (src/crypto/merkle.hpp): proof round trips for
// every (n_leaves, index), domain separation between leaf and interior
// hashes, index binding in the leaf hash, and rejection of out-of-range
// indices, wrong-length paths and cross-leaf replays.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "crypto/merkle.hpp"
#include "crypto/sha256.hpp"

namespace ambb {
namespace {

std::vector<Digest> demo_leaves(std::uint32_t n) {
  std::vector<Digest> leaves;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::vector<std::uint8_t> chunk = {static_cast<std::uint8_t>(i * 3),
                                       static_cast<std::uint8_t>(i + 1)};
    leaves.push_back(merkle::leaf_hash(i, chunk));
  }
  return leaves;
}

TEST(Merkle, ProofsRoundTripForEveryLeafCountAndIndex) {
  for (std::uint32_t n = 1; n <= 17; ++n) {
    const auto leaves = demo_leaves(n);
    const auto tree = merkle::Tree::build(leaves);
    EXPECT_EQ(tree.n_leaves(), n);
    for (std::uint32_t i = 0; i < n; ++i) {
      const auto path = tree.prove(i);
      EXPECT_TRUE(merkle::verify(tree.root(), n, i, leaves[i], path))
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(Merkle, PathLengthIsCeilLog2) {
  EXPECT_EQ(merkle::Tree::build(demo_leaves(1)).prove(0).size(), 0u);
  EXPECT_EQ(merkle::Tree::build(demo_leaves(2)).prove(1).size(), 1u);
  EXPECT_EQ(merkle::Tree::build(demo_leaves(5)).prove(4).size(), 3u);
  EXPECT_EQ(merkle::Tree::build(demo_leaves(8)).prove(0).size(), 3u);
  EXPECT_EQ(merkle::Tree::build(demo_leaves(9)).prove(8).size(), 4u);
}

TEST(Merkle, LeafHashBindsTheColumnIndex) {
  const std::vector<std::uint8_t> chunk = {1, 2, 3};
  EXPECT_NE(merkle::leaf_hash(0, chunk), merkle::leaf_hash(1, chunk));

  // A valid (chunk, path) for column i never verifies at column j: the
  // verifier recomputes leaf_hash(j, chunk), which differs.
  const auto leaves = demo_leaves(8);
  const auto tree = merkle::Tree::build(leaves);
  EXPECT_FALSE(merkle::verify(tree.root(), 8, 3, leaves[2], tree.prove(2)));
}

TEST(Merkle, DomainSeparationLeafVsInterior) {
  // An interior digest replayed as a leaf must not verify one level up:
  // leaf and node hashes use distinct prefix bytes, so node_hash(a, b)
  // is never equal to any leaf_hash(i, chunk) preimage collision short
  // of breaking SHA-256. Check the hashes differ even over identical
  // byte content.
  const std::vector<std::uint8_t> as_bytes(64, 0xab);
  Digest l, r;
  l.fill(0xab);
  r.fill(0xab);
  const Digest node = merkle::node_hash(l, r);
  // leaf_hash prepends 0x00 || index; build the closest leaf encoding.
  const Digest leaf = merkle::leaf_hash(0xabababab, as_bytes);
  EXPECT_NE(node, leaf);
}

TEST(Merkle, RejectsOutOfRangeAndWrongLengthPaths) {
  const auto leaves = demo_leaves(6);
  const auto tree = merkle::Tree::build(leaves);
  auto path = tree.prove(2);
  EXPECT_FALSE(merkle::verify(tree.root(), 6, 6, leaves[2], path));  // i >= n
  auto long_path = path;
  long_path.push_back(Digest{});
  EXPECT_FALSE(merkle::verify(tree.root(), 6, 2, leaves[2], long_path));
  auto short_path = path;
  short_path.pop_back();
  EXPECT_FALSE(merkle::verify(tree.root(), 6, 2, leaves[2], short_path));

  // Tampering with any path element breaks verification.
  for (std::size_t lvl = 0; lvl < path.size(); ++lvl) {
    auto bad = path;
    bad[lvl][0] ^= 1;
    EXPECT_FALSE(merkle::verify(tree.root(), 6, 2, leaves[2], bad)) << lvl;
  }
}

TEST(Merkle, RootDependsOnEveryLeaf) {
  const auto leaves = demo_leaves(7);
  const auto root = merkle::Tree::build(leaves).root();
  for (std::uint32_t i = 0; i < 7; ++i) {
    auto mutated = leaves;
    mutated[i][0] ^= 1;
    EXPECT_NE(merkle::Tree::build(mutated).root(), root) << i;
  }
  // Appending a leaf (crossing into the next power of two or not) moves
  // the root too.
  auto extended = leaves;
  extended.push_back(merkle::leaf_hash(7, std::vector<std::uint8_t>{9}));
  EXPECT_NE(merkle::Tree::build(extended).root(), root);
}

}  // namespace
}  // namespace ambb
