// SHA-256 (FIPS 180-4), implemented from scratch: the environment has no
// crypto libraries installed, and the simulated signature schemes below are
// built on HMAC-SHA256.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace ambb {

using Digest = std::array<std::uint8_t, 32>;

/// Compression-function state captured after an integral number of 64-byte
/// blocks. Lets a fixed prefix (e.g. an HMAC pad block) be compressed once
/// and resumed for every message sharing it.
struct Sha256Midstate {
  std::array<std::uint32_t, 8> state;
  std::uint64_t processed_bytes = 0;
};

class Sha256 {
 public:
  Sha256();
  /// Resume hashing as if `mid.processed_bytes` bytes had been consumed.
  explicit Sha256(const Sha256Midstate& mid);

  void update(std::span<const std::uint8_t> data);
  /// Text convenience; thin wrapper over the span overload (the span API
  /// is the single implementation — no duplicated hashing logic).
  void update(std::string_view s) {
    update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  }

  /// Finalize and return the digest. The object must not be reused after.
  Digest finalize();

  /// One-shot convenience.
  static Digest hash(std::span<const std::uint8_t> data);
  static Digest hash(std::string_view s) {
    return hash(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  }

  /// Snapshot the state; only valid on a 64-byte block boundary.
  Sha256Midstate midstate() const;

  /// Digest of (the midstate's prefix ‖ tail) where the padded tail fits a
  /// single block (tail.size() <= 55): one compression, no buffering.
  /// Equivalent to Sha256(mid); update(tail); finalize().
  static Digest finalize_block(const Sha256Midstate& mid,
                               std::span<const std::uint8_t> tail);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
  bool finalized_ = false;
};

/// Combine two digests (domain-separated); used to build key hierarchies.
Digest digest_combine(const Digest& a, const Digest& b);

std::string digest_hex(const Digest& d);

}  // namespace ambb
