// Protocol explorer: run any protocol in the registry against any of its
// adversaries from the command line and compare costs side by side.
//
//   $ ./examples/protocol_explorer                 # list protocols
//   $ ./examples/protocol_explorer linear          # all adversaries
//   $ ./examples/protocol_explorer linear mixed 24 9 48 7
//                                    proto adv [n] [f] [slots] [seed]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "runner/registry.hpp"
#include "runner/table.hpp"

using namespace ambb;

namespace {

void list_protocols() {
  TextTable t({"name", "Table 1 row", "adversaries"});
  for (const auto& p : protocols()) {
    std::string advs;
    for (const auto& a : p.policy.named) {
      if (!advs.empty()) advs += " ";
      advs += a;
    }
    t.add_row({p.name, p.table1_row, advs});
  }
  std::printf("%s", t.render().c_str());
}

int run_one(const ProtocolInfo& info, const std::string& adv,
            CommonParams p, TextTable& t) {
  p.adversary = adv;
  RunResult r = info.run(p);
  auto errs = check_consistency(r);
  auto v = check_validity(r);
  errs.insert(errs.end(), v.begin(), v.end());
  const bool may_stall = info.policy.may_stall(adv);
  const auto stalls = check_termination(r);
  std::string live = stalls.empty()
                         ? "ok"
                         : (may_stall ? "stalls (documented)" : "STALLS");
  t.add_row({adv, errs.empty() ? "ok" : "VIOLATED", live,
             TextTable::bits_human(r.amortized()),
             TextTable::bits_human(r.amortized_tail(p.slots / 2)),
             TextTable::bits_human(static_cast<double>(r.adversary_bits) /
                                   p.slots)});
  for (const auto& e : errs) std::printf("  !! %s\n", e.c_str());
  return errs.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::printf("usage: %s <protocol> [adversary|all] [n] [f] [slots] "
                "[seed]\n\nprotocols:\n", argv[0]);
    list_protocols();
    return 0;
  }
  const ProtocolInfo& info = protocol(argv[1]);

  CommonParams p;
  p.n = argc > 3 ? static_cast<std::uint32_t>(std::atoi(argv[3])) : 16;
  p.f = argc > 4 ? static_cast<std::uint32_t>(std::atoi(argv[4]))
                 : std::min<std::uint32_t>(info.max_f(p.n), p.n / 3);
  p.slots = argc > 5 ? static_cast<Slot>(std::atoi(argv[5])) : 16;
  p.seed = argc > 6 ? static_cast<std::uint64_t>(std::atoll(argv[6])) : 1;

  const std::string adv = argc > 2 ? argv[2] : "all";
  std::printf("%s — %s\nn=%u f=%u slots=%u seed=%llu\n\n",
              info.name.c_str(), info.table1_row.c_str(), p.n, p.f, p.slots,
              static_cast<unsigned long long>(p.seed));

  TextTable t({"adversary", "safety", "liveness", "amortized",
               "steady-state tail", "adversary bits/slot"});
  int rc = 0;
  if (adv == "all") {
    for (const auto& a : info.policy.named) rc |= run_one(info, a, p, t);
  } else {
    rc = run_one(info, adv, p, t);
  }
  std::printf("%s", t.render().c_str());
  return rc;
}
