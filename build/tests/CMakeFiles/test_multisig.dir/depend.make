# Empty dependencies file for test_multisig.
# This may be replaced when dependencies are built.
