// Seeded randomized fault-schedule generation.
//
// generate_schedule draws a budget-respecting FaultSchedule from a single
// 64-bit seed: corruption times (mostly initial, some mid-run), actor
// faults per corrupted node (silence / selective / shuffle / stagger
// windows), and after-the-fact erase rules with random densities. Every
// draw flows through one Rng, so the schedule — and therefore the whole
// execution — is a pure function of (n, f, horizon, seed); the engine's
// determinism contract then makes fuzz sweeps byte-identical for any
// --jobs value.
//
// The generator stays inside the threat model the protocols are proved
// against: at most f distinct corruptions, erasures only of senders that
// are corrupt by the end of the erased round, faults only on corrupt
// nodes. A property violation under a generated schedule is therefore
// always a finding about the protocol (or the simulator), never about
// the schedule.
#pragma once

#include <cstdint>

#include "adversary/fault.hpp"

namespace ambb::adversary {

/// Random schedule over `horizon` rounds (the driver's slots *
/// rounds_per_slot). Always validate()-clean for (n, f).
///
/// `timing_bound` is the net policy's max extra delay (NetPolicy::
/// max_extra()): when nonzero the generator additionally draws 1..3
/// delay/reorder timing faults — against ANY sender, honest included,
/// since timing is a network power — with delays scaled to the bound.
/// When zero (lockstep) no timing faults are drawn AND no extra RNG
/// state is consumed, so lockstep schedules are byte-identical to the
/// pre-scheduler generator. f == 0 yields a schedule with at most
/// timing faults (a pure network adversary).
FaultSchedule generate_schedule(std::uint32_t n, std::uint32_t f,
                                Round horizon, std::uint64_t seed,
                                std::uint32_t timing_bound = 0);

}  // namespace ambb::adversary
