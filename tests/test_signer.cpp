#include "crypto/signer.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace ambb {
namespace {

Digest d(const std::string& s) { return Sha256::hash(s); }

TEST(Signer, SignVerifyRoundTrip) {
  KeyRegistry reg(8, 1);
  for (NodeId i = 0; i < 8; ++i) {
    Signature sig = reg.sign(i, d("hello"));
    EXPECT_EQ(sig.signer, i);
    EXPECT_TRUE(reg.verify(sig, d("hello")));
  }
}

TEST(Signer, WrongDigestFails) {
  KeyRegistry reg(4, 1);
  Signature sig = reg.sign(0, d("a"));
  EXPECT_FALSE(reg.verify(sig, d("b")));
}

TEST(Signer, SignerSpoofFails) {
  KeyRegistry reg(4, 1);
  Signature sig = reg.sign(0, d("a"));
  sig.signer = 1;  // claim someone else signed it
  EXPECT_FALSE(reg.verify(sig, d("a")));
}

TEST(Signer, TamperedMacFails) {
  KeyRegistry reg(4, 1);
  Signature sig = reg.sign(0, d("a"));
  sig.mac[0] ^= 1;
  EXPECT_FALSE(reg.verify(sig, d("a")));
}

TEST(Signer, OutOfRangeSignerRejected) {
  KeyRegistry reg(4, 1);
  Signature sig = reg.sign(0, d("a"));
  sig.signer = 99;
  EXPECT_FALSE(reg.verify(sig, d("a")));
  EXPECT_THROW(reg.sign(4, d("a")), CheckError);
}

TEST(Signer, CrossRegistrySignaturesInvalid) {
  KeyRegistry reg1(4, 1), reg2(4, 2);
  Signature sig = reg1.sign(0, d("a"));
  EXPECT_FALSE(reg2.verify(sig, d("a")));
}

TEST(Signer, DeterministicAcrossInstances) {
  KeyRegistry reg1(4, 7), reg2(4, 7);
  EXPECT_EQ(reg1.sign(2, d("x")).mac, reg2.sign(2, d("x")).mac);
}

TEST(Signer, DomainsAreSeparated) {
  KeyRegistry reg(4, 1);
  EXPECT_NE(reg.mac_as(0, "dom1", d("m")), reg.mac_as(0, "dom2", d("m")));
  EXPECT_NE(reg.master_mac("dom1", d("m")), reg.master_mac("dom2", d("m")));
}

TEST(Signer, NodesHaveDistinctKeys) {
  KeyRegistry reg(4, 1);
  EXPECT_NE(reg.sign(0, d("m")).mac, reg.sign(1, d("m")).mac);
}

}  // namespace
}  // namespace ambb
