// Round-trip and robustness tests for every protocol's wire codec.
#include "bb/codec.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace ambb {
namespace {

Digest rand_digest(Rng& rng) {
  Digest d;
  for (auto& b : d) b = static_cast<std::uint8_t>(rng.next_u64());
  return d;
}

template <typename M>
void expect_roundtrip(const M& m, void (*enc)(const M&, Encoder&),
                      M (*dec)(Decoder&)) {
  Encoder e;
  enc(m, e);
  Decoder d(e.bytes());
  const M out = dec(d);
  EXPECT_TRUE(out == m);
  EXPECT_TRUE(d.exhausted()) << "trailing bytes after decode";
}

TEST(CodecLinear, AllKindsRoundTrip) {
  Rng rng(11);
  using linear::Kind;
  for (MsgKind k = 0; k < static_cast<MsgKind>(Kind::kKindCount); ++k) {
    linear::Msg m;
    m.kind = static_cast<Kind>(k);
    m.slot = static_cast<Slot>(rng.uniform(1000) + 1);
    m.epoch = static_cast<Epoch>(rng.uniform(60));
    m.value = rng.next_u64();
    m.has_cert = rng.chance(0.5);
    if (m.has_cert) {
      m.cert_epoch = static_cast<Epoch>(rng.uniform(40));
      m.cert = ThresholdSig{rand_digest(rng)};
    }
    m.proof_epoch = static_cast<Epoch>(rng.uniform(40));
    m.proof = ThresholdSig{rand_digest(rng)};
    m.share = SigShare{static_cast<NodeId>(rng.uniform(64)),
                       rand_digest(rng)};
    m.sig = Signature{static_cast<NodeId>(rng.uniform(64)),
                      rand_digest(rng)};
    m.accused = static_cast<NodeId>(rng.uniform(64));
    expect_roundtrip<linear::Msg>(m, &linear::encode, &linear::decode);
  }
}

TEST(CodecQuad, AllKindsRoundTrip) {
  Rng rng(13);
  using quad::Kind;
  for (MsgKind k = 0; k < static_cast<MsgKind>(Kind::kKindCount); ++k) {
    quad::Msg m;
    m.kind = static_cast<Kind>(k);
    m.slot = static_cast<Slot>(rng.uniform(1000) + 1);
    m.value = rng.next_u64();
    m.accused = static_cast<NodeId>(rng.uniform(64));
    m.sig = Signature{static_cast<NodeId>(rng.uniform(64)),
                      rand_digest(rng)};
    expect_roundtrip<quad::Msg>(m, &quad::encode, &quad::decode);
  }
}

TEST(CodecDs, ChainsOfVariousLengthsRoundTrip) {
  KeyRegistry reg(8, 1);
  MultiSigScheme ms(reg);
  Rng rng(17);
  for (std::size_t chain_len : {0ul, 1ul, 3ul, 8ul}) {
    ds::Msg m;
    m.kind = ds::Kind::kRelay;
    m.slot = 7;
    m.value = rng.next_u64();
    const Digest d = ds::relay_digest(m.slot, m.value);
    m.agg = ms.empty();
    for (std::size_t i = 0; i < chain_len; ++i) {
      m.chain.push_back(reg.sign(static_cast<NodeId>(i), d));
      m.agg = ms.extend(m.agg, static_cast<NodeId>(i), d);
    }
    expect_roundtrip<ds::Msg>(m, &ds::encode, &ds::decode);
  }
}

TEST(CodecPk, BotAndValueRoundTrip) {
  for (MsgKind k = 0; k < static_cast<MsgKind>(pk::Kind::kKindCount); ++k) {
    for (bool has_value : {true, false}) {
      pk::Msg m;
      m.kind = static_cast<pk::Kind>(k);
      m.slot = 3;
      m.phase = 2;
      m.has_value = has_value;
      m.value = 0xDEADBEEF;
      expect_roundtrip<pk::Msg>(m, &pk::encode, &pk::decode);
    }
  }
}

TEST(CodecHs, AllKindsRoundTrip) {
  Rng rng(23);
  for (MsgKind k = 0; k < static_cast<MsgKind>(hs::Kind::kKindCount); ++k) {
    hs::Msg m;
    m.kind = static_cast<hs::Kind>(k);
    m.slot = 9;
    m.value = rng.next_u64();
    m.share = SigShare{2, rand_digest(rng)};
    m.thsig = ThresholdSig{rand_digest(rng)};
    m.sig = Signature{1, rand_digest(rng)};
    expect_roundtrip<hs::Msg>(m, &hs::encode, &hs::decode);
  }
}

TEST(Codec, InvalidKindRejected) {
  Encoder e;
  e.put_u8(200);  // out of range for every protocol
  e.put_u32(1);
  e.put_u64(0);
  {
    Decoder d(e.bytes());
    EXPECT_THROW(linear::decode(d), CheckError);
  }
  {
    Decoder d(e.bytes());
    EXPECT_THROW(quad::decode(d), CheckError);
  }
  {
    Decoder d(e.bytes());
    EXPECT_THROW(pk::decode(d), CheckError);
  }
}

TEST(Codec, TruncatedLinearMessageThrows) {
  linear::Msg m;
  m.kind = linear::Kind::kCommitProof;
  m.slot = 1;
  m.proof_epoch = 2;
  Encoder e;
  linear::encode(m, e);
  auto bytes = e.bytes();
  bytes.resize(bytes.size() / 2);
  Decoder d(bytes);
  EXPECT_THROW(linear::decode(d), CheckError);
}

TEST(Codec, DsChainLengthIsBounded) {
  // A forged 16-bit length with no payload must not over-read.
  Encoder e;
  e.put_u8(0);      // kRelay
  e.put_u32(1);     // slot
  e.put_u64(5);     // value
  e.put_u16(9999);  // claimed chain length
  Decoder d(e.bytes());
  EXPECT_THROW(ds::decode(d), CheckError);
}

}  // namespace
}  // namespace ambb
