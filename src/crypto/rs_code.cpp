#include "crypto/rs_code.hpp"

#include <array>

#include "common/check.hpp"

namespace ambb::rs {

namespace {

/// GF(2^8) with the AES-adjacent primitive polynomial x^8+x^4+x^3+x^2+1
/// (0x11d), the conventional choice for RS erasure codes. exp_ is doubled
/// so mul never reduces mod 255 explicitly.
struct GF256 {
  std::array<std::uint8_t, 512> exp_{};
  std::array<std::uint8_t, 256> log_{};

  GF256() {
    std::uint32_t x = 1;
    for (std::uint32_t i = 0; i < 255; ++i) {
      exp_[i] = static_cast<std::uint8_t>(x);
      log_[x] = static_cast<std::uint8_t>(i);
      x <<= 1;
      if (x & 0x100u) x ^= 0x11du;
    }
    for (std::uint32_t i = 255; i < 512; ++i) exp_[i] = exp_[i - 255];
  }

  std::uint8_t mul(std::uint8_t a, std::uint8_t b) const {
    if (a == 0 || b == 0) return 0;
    return exp_[static_cast<std::uint32_t>(log_[a]) + log_[b]];
  }

  std::uint8_t inv(std::uint8_t a) const {
    AMBB_CHECK_MSG(a != 0, "GF(256) inverse of zero");
    return exp_[255 - log_[a]];
  }
};

const GF256& gf() {
  static const GF256 kField;
  return kField;
}

/// Lagrange coefficients for evaluating at `target` the degree-<k
/// polynomial through points xs[0..k): coeff[j] = prod_{m != j}
/// (target ^ xs[m]) / (xs[j] ^ xs[m]). Addition in GF(2^8) is XOR, so
/// the points enter as plain byte values.
std::vector<std::uint8_t> lagrange_row(const std::vector<std::uint8_t>& xs,
                                       std::uint8_t target) {
  const GF256& f = gf();
  std::vector<std::uint8_t> coeff(xs.size());
  for (std::size_t j = 0; j < xs.size(); ++j) {
    std::uint8_t num = 1;
    std::uint8_t den = 1;
    for (std::size_t m = 0; m < xs.size(); ++m) {
      if (m == j) continue;
      num = f.mul(num, static_cast<std::uint8_t>(target ^ xs[m]));
      den = f.mul(den, static_cast<std::uint8_t>(xs[j] ^ xs[m]));
    }
    coeff[j] = f.mul(num, f.inv(den));
  }
  return coeff;
}

}  // namespace

std::size_t chunk_bytes(std::size_t len, std::uint32_t k) {
  AMBB_CHECK(k >= 1);
  if (len == 0) return 1;
  return (len + k - 1) / k;
}

std::vector<std::vector<std::uint8_t>> encode(
    std::span<const std::uint8_t> data, std::uint32_t n, std::uint32_t k) {
  AMBB_CHECK_MSG(1 <= k && k <= n && n <= 256,
                 "rs::encode needs 1 <= k <= n <= 256, got n=" << n
                                                              << " k=" << k);
  const std::size_t clen = chunk_bytes(data.size(), k);
  std::vector<std::vector<std::uint8_t>> chunks(
      n, std::vector<std::uint8_t>(clen, 0));
  // Systematic part: chunk i is data[i*clen .. (i+1)*clen), zero-padded.
  for (std::uint32_t i = 0; i < k; ++i) {
    for (std::size_t t = 0; t < clen; ++t) {
      const std::size_t pos = static_cast<std::size_t>(i) * clen + t;
      if (pos < data.size()) chunks[i][t] = data[pos];
    }
  }
  if (n == k) return chunks;
  const GF256& f = gf();
  std::vector<std::uint8_t> xs(k);
  for (std::uint32_t j = 0; j < k; ++j) xs[j] = static_cast<std::uint8_t>(j);
  for (std::uint32_t i = k; i < n; ++i) {
    const std::vector<std::uint8_t> coeff =
        lagrange_row(xs, static_cast<std::uint8_t>(i));
    for (std::size_t t = 0; t < clen; ++t) {
      std::uint8_t acc = 0;
      for (std::uint32_t j = 0; j < k; ++j) {
        acc = static_cast<std::uint8_t>(acc ^ f.mul(coeff[j], chunks[j][t]));
      }
      chunks[i][t] = acc;
    }
  }
  return chunks;
}

std::vector<std::uint8_t> reconstruct(const std::vector<Chunk>& chunks,
                                      std::uint32_t n, std::uint32_t k,
                                      std::size_t len) {
  AMBB_CHECK_MSG(1 <= k && k <= n && n <= 256,
                 "rs::reconstruct needs 1 <= k <= n <= 256");
  const std::size_t clen = chunk_bytes(len, k);
  // First k distinct, well-formed columns.
  std::vector<std::uint8_t> xs;
  std::vector<const std::vector<std::uint8_t>*> ys;
  std::vector<bool> seen(n, false);
  for (const Chunk& c : chunks) {
    if (xs.size() == k) break;
    AMBB_CHECK_MSG(c.first < n, "rs::reconstruct: chunk index " << c.first
                                                                << " >= n");
    if (seen[c.first]) continue;
    AMBB_CHECK_MSG(c.second.size() == clen,
                   "rs::reconstruct: chunk " << c.first << " has "
                                             << c.second.size()
                                             << " bytes, expected " << clen);
    seen[c.first] = true;
    xs.push_back(static_cast<std::uint8_t>(c.first));
    ys.push_back(&c.second);
  }
  AMBB_CHECK_MSG(xs.size() == k, "rs::reconstruct: only "
                                     << xs.size() << " distinct chunks, need "
                                     << k);

  const GF256& f = gf();
  std::vector<std::uint8_t> out(static_cast<std::size_t>(k) * clen, 0);
  for (std::uint32_t i = 0; i < k; ++i) {
    // Systematic fast path: data column i was received verbatim.
    bool direct = false;
    for (std::size_t j = 0; j < xs.size(); ++j) {
      if (xs[j] == i) {
        for (std::size_t t = 0; t < clen; ++t) {
          out[static_cast<std::size_t>(i) * clen + t] = (*ys[j])[t];
        }
        direct = true;
        break;
      }
    }
    if (direct) continue;
    const std::vector<std::uint8_t> coeff =
        lagrange_row(xs, static_cast<std::uint8_t>(i));
    for (std::size_t t = 0; t < clen; ++t) {
      std::uint8_t acc = 0;
      for (std::size_t j = 0; j < xs.size(); ++j) {
        acc = static_cast<std::uint8_t>(acc ^ f.mul(coeff[j], (*ys[j])[t]));
      }
      out[static_cast<std::size_t>(i) * clen + t] = acc;
    }
  }
  out.resize(len);
  return out;
}

}  // namespace ambb::rs
