# Empty dependencies file for test_linear_bb.
# This may be replaced when dependencies are built.
