file(REMOVE_RECURSE
  "CMakeFiles/bench_f4_hotstuff.dir/bench_f4_hotstuff.cpp.o"
  "CMakeFiles/bench_f4_hotstuff.dir/bench_f4_hotstuff.cpp.o.d"
  "bench_f4_hotstuff"
  "bench_f4_hotstuff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f4_hotstuff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
