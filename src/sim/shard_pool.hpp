// Persistent worker pool for node-sharded round execution (DESIGN.md §15).
//
// A Simulation running with node_jobs > 1 splits each round's honest-node
// loop into contiguous node-id shards and runs them on this pool. The pool
// is deliberately minimal — one task at a time, fork/join semantics:
//
//   pool.run(task, ctx);   // task(ctx, shard) for shard in [0, shards)
//
// run() executes shard 0 on the calling thread (so a 2-shard round costs
// one wakeup, not two) and blocks until every shard has returned. The
// mutex/condition-variable handshake establishes happens-before in both
// directions: writes the caller makes before run() are visible to every
// worker, and writes workers make inside the task are visible to the
// caller after run() returns. That is the entire synchronization story of
// sharded rounds — workers write only shard-private state (TrafficLog
// shard, event buffer, disjoint CommitLog cells), and the caller merges
// serially after the join.
//
// Tasks are raw function pointers plus a context pointer, not
// std::function: run() is called once per simulated round (millions of
// times per bench) and must not allocate.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace ambb {

class ShardPool {
 public:
  using Task = void (*)(void* ctx, unsigned shard);

  /// Spawns `shards - 1` worker threads (shard 0 runs on the caller).
  /// Requires shards >= 2 — a 1-shard pool is just the serial loop, and
  /// callers are expected to keep that path pool-free.
  explicit ShardPool(unsigned shards);
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  unsigned shards() const { return static_cast<unsigned>(threads_.size()) + 1; }

  /// Run task(ctx, s) for every shard s in [0, shards()); returns after
  /// all have finished. Exceptions must not escape the task — workers
  /// have no caller to propagate to, so tasks capture their own
  /// std::exception_ptr (Simulation stores one per shard and rethrows
  /// the first, in shard order, after the join).
  void run(Task task, void* ctx);

 private:
  void worker_loop(unsigned shard);

  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  Task task_ = nullptr;
  void* ctx_ = nullptr;
  std::uint64_t generation_ = 0;  ///< bumped per run(); workers wait on it
  unsigned running_ = 0;          ///< workers still inside the current task
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace ambb
