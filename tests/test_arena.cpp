// Arena / ArenaVector coverage (DESIGN.md §14): alignment (over-aligned
// types included), geometric chunk growth, the reset-reuse contract (a
// post-warmup cycle acquires zero new chunks), stats accounting, and the
// ArenaVector high-water refill hint that makes the first append of a new
// cycle grab full steady-state capacity in one allocation.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <utility>

#include "common/arena.hpp"
#include "common/check.hpp"

namespace ambb {
namespace {

bool aligned_to(const void* p, std::size_t align) {
  return (reinterpret_cast<std::uintptr_t>(p) & (align - 1)) == 0;
}

TEST(Arena, AllocationsRespectRequestedAlignment) {
  Arena a;
  // Deliberately misalign the cursor before each aligned request.
  for (std::size_t align : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                            std::size_t{8}, std::size_t{16}, std::size_t{32},
                            std::size_t{64}}) {
    a.allocate(1, 1);
    void* p = a.allocate(align * 3, align);
    EXPECT_TRUE(aligned_to(p, align)) << "align " << align;
    // The block must be writable across its whole extent.
    std::memset(p, 0xAB, align * 3);
  }
}

TEST(Arena, OverAlignedTypeGetsUsableStorage) {
  struct alignas(64) Wide {
    std::uint64_t lanes[8];
  };
  Arena a;
  a.allocate(3, 1);  // force a non-64-aligned cursor
  Wide* w = a.allocate_array<Wide>(4);
  ASSERT_TRUE(aligned_to(w, alignof(Wide)));
  for (int i = 0; i < 4; ++i) {
    for (int l = 0; l < 8; ++l) w[i].lanes[l] = std::uint64_t(i) * 8 + l;
  }
  EXPECT_EQ(w[3].lanes[7], 31u);
}

TEST(Arena, ChunkGrowthIsGeometricAndOversizeRequestsFit) {
  Arena a(/*first_chunk_bytes=*/64);
  EXPECT_EQ(a.stats().chunks_acquired, 0u);  // chunks are lazy

  a.allocate(60, 4);
  EXPECT_EQ(a.stats().chunks_acquired, 1u);
  EXPECT_EQ(a.stats().reserved_bytes, 64u);

  // Second chunk: want = reserved_bytes (geometric doubling).
  a.allocate(60, 4);
  EXPECT_EQ(a.stats().chunks_acquired, 2u);
  EXPECT_EQ(a.stats().reserved_bytes, 128u);

  // A request larger than the doubled size still succeeds in one chunk.
  void* big = a.allocate(4096, 8);
  EXPECT_TRUE(aligned_to(big, 8));
  std::memset(big, 0, 4096);
  EXPECT_GE(a.stats().reserved_bytes, 128u + 4096u);
}

TEST(Arena, ResetRewindsAndSteadyStateCyclesAcquireNoChunks) {
  Arena a(/*first_chunk_bytes=*/128);
  auto cycle = [&a] {
    for (int i = 0; i < 50; ++i) a.allocate(40, 8);
    EXPECT_GT(a.live_bytes(), 0u);
    a.reset();
    EXPECT_EQ(a.live_bytes(), 0u);
  };

  cycle();  // warmup: grows the chunk list
  const std::uint64_t warm_chunks = a.stats().chunks_acquired;
  const std::size_t warm_reserved = a.stats().reserved_bytes;
  EXPECT_GT(warm_chunks, 1u);  // 50 * 40 bytes cannot fit one 128 B chunk

  for (int c = 0; c < 5; ++c) cycle();
  // The reset-reuse contract: identical post-warmup cycles never touch
  // the heap for new chunks.
  EXPECT_EQ(a.stats().chunks_acquired, warm_chunks);
  EXPECT_EQ(a.stats().reserved_bytes, warm_reserved);
  EXPECT_EQ(a.stats().resets, 6u);

  // High water reflects the per-cycle live peak, not the lifetime sum.
  EXPECT_GE(a.stats().high_water_bytes, 50u * 40u);
  EXPECT_LT(a.stats().high_water_bytes, 2u * 50u * 40u + 128u);
}

TEST(Arena, StatsCountAllocationsAndBytes) {
  Arena a;
  a.allocate(10, 1);
  a.allocate(20, 1);
  EXPECT_EQ(a.stats().allocations, 2u);
  EXPECT_EQ(a.stats().bytes_requested, 30u);
}

TEST(ArenaVector, GrowthPreservesElementsAcrossRelocations) {
  Arena a;
  ArenaVector<std::uint32_t> v(&a);
  for (std::uint32_t i = 0; i < 1000; ++i) v.emplace_back(i * 7);
  ASSERT_EQ(v.size(), 1000u);
  for (std::uint32_t i = 0; i < 1000; ++i) {
    ASSERT_EQ(v[i], i * 7) << "index " << i;
  }
}

TEST(ArenaVector, ClearKeepsStorageBlock) {
  Arena a;
  ArenaVector<int> v(&a);
  for (int i = 0; i < 100; ++i) v.emplace_back(i);
  const std::size_t cap = v.capacity();
  const std::uint64_t allocs = a.stats().allocations;
  v.clear();
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), cap);
  for (int i = 0; i < 100; ++i) v.emplace_back(i);
  // Refill within the kept block: no arena traffic at all.
  EXPECT_EQ(a.stats().allocations, allocs);
}

TEST(ArenaVector, ResetHintRefillsFullCapacityInOneAllocation) {
  Arena a;
  ArenaVector<int> v(&a);
  for (int i = 0; i < 300; ++i) v.emplace_back(i);  // warmup, many grows

  v.reset();
  a.reset();
  const std::uint64_t allocs = a.stats().allocations;
  v.emplace_back(0);
  // One arena allocation, already at high-water capacity: the rest of
  // the cycle's appends relocate nothing.
  EXPECT_EQ(a.stats().allocations, allocs + 1);
  EXPECT_GE(v.capacity(), 300u);
  for (int i = 1; i < 300; ++i) v.emplace_back(i);
  EXPECT_EQ(a.stats().allocations, allocs + 1);
  for (int i = 0; i < 300; ++i) ASSERT_EQ(v[i], i);
}

TEST(ArenaVector, MoveTransfersStorageAndEmptiesSource) {
  Arena a;
  ArenaVector<int> v(&a);
  for (int i = 0; i < 10; ++i) v.emplace_back(i);
  const int* data = v.data();

  ArenaVector<int> w(std::move(v));
  EXPECT_EQ(w.data(), data);
  EXPECT_EQ(w.size(), 10u);
  EXPECT_EQ(v.size(), 0u);  // NOLINT(bugprone-use-after-move): contract
  EXPECT_EQ(v.data(), nullptr);

  ArenaVector<int> u(&a);
  u.emplace_back(99);
  u = std::move(w);
  EXPECT_EQ(u.data(), data);
  EXPECT_EQ(u.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(u[i], i);
}

TEST(ArenaVector, NonTrivialElementsAreDestroyed) {
  static int live = 0;
  struct Counted {
    Counted() { ++live; }
    Counted(const Counted&) { ++live; }
    Counted(Counted&&) noexcept { ++live; }
    ~Counted() { --live; }
  };
  Arena a;
  {
    ArenaVector<Counted> v(&a);
    for (int i = 0; i < 20; ++i) v.emplace_back();
    EXPECT_EQ(live, 20);
    v.clear();
    EXPECT_EQ(live, 0);
    for (int i = 0; i < 5; ++i) v.emplace_back();
    EXPECT_EQ(live, 5);
  }  // destructor path
  EXPECT_EQ(live, 0);
}

TEST(ArenaVector, SetArenaOnlyWhileEmpty) {
  Arena a, b;
  ArenaVector<int> v(&a);
  v.emplace_back(1);
  EXPECT_THROW(v.set_arena(&b), CheckError);
  v.reset();
  v.set_arena(&b);  // empty again: rebinding is allowed
  v.emplace_back(2);
  EXPECT_EQ(b.stats().allocations, 1u);
}

}  // namespace
}  // namespace ambb
