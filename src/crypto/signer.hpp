// Simulated digital signatures with a PKI.
//
// The environment provides no crypto library, and the paper treats the
// signature scheme as an ideal primitive, so we simulate it: node i's
// secret key is derived from a master seed, a signature on digest d is a
// keyed PRF over (domain, d) under sk_i (a pre-compressed SHA-256 key
// block; one compression per MAC — see PrfKey), and verification
// recomputes the MAC through the registry (which models the PKI). Inside
// the simulation the only way to produce a valid signature is to call
// sign() as that node, which the adversary can do only for corrupted
// nodes — exactly the power the paper grants it.
//
// DESIGN.md documents this substitution; the properties the reproduction
// relies on (who can create which object, and its kappa-bit wire size) are
// preserved exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "crypto/hmac.hpp"
#include "crypto/intern.hpp"
#include "crypto/sha256.hpp"

namespace ambb {

struct Signature {
  NodeId signer = kNoNode;
  Digest mac{};

  bool operator==(const Signature&) const = default;
};

class KeyRegistry {
 public:
  KeyRegistry(std::uint32_t n, std::uint64_t master_seed);

  std::uint32_t n() const { return n_; }

  /// Sign digest `d` as node `signer`.
  Signature sign(NodeId signer, const Digest& d) const;

  /// Verify that `sig` is node sig.signer's signature on `d`.
  bool verify(const Signature& sig, const Digest& d) const;

  /// Raw MAC under node i's key with a domain-separation tag; building
  /// block for the threshold / multi-signature schemes.
  Digest mac_as(NodeId i, const char* domain, const Digest& d) const;

  /// Raw MAC under the master (dealer) key; only the threshold combiner
  /// uses this, through combine() below.
  Digest master_mac(const char* domain, const Digest& d) const;

  /// Process-unique instance id. Thread-local last-args memos key on this
  /// instead of `this`: a new registry can reuse a freed registry's
  /// address, and many digests (e.g. accusation digests) are identical
  /// across runs, so a pointer-keyed memo could leak MACs from a registry
  /// with different keys.
  std::uint64_t uid() const { return uid_; }

 private:
  static constexpr std::uint32_t kMasterOwner = 0xFFFFFFFFu;

  Digest cached_mac(std::uint32_t owner, const PrfKey& key,
                    std::uint64_t domain, const Digest& d) const;

  std::uint32_t n_;
  std::uint64_t uid_;
  Digest master_key_;
  std::vector<Digest> node_keys_;
  std::vector<PrfKey> node_prf_;
  std::vector<PrfKey> master_prf_;  ///< single element; vector avoids a
                                    ///< default-constructible requirement
  // (key owner, domain tag, digest) is the full input of one MAC. All
  // four public operations are pure functions of this triple, so results
  // are memoized: in a broadcast run every recipient re-verifies the same
  // signature, and only the first verification pays for the HMAC. The
  // memo is a thread-local VerifyCache keyed on uid() (see cached_mac),
  // NOT a member: node-sharded rounds call sign/verify on one registry
  // from several worker threads concurrently, and a shared mutable member
  // would race (DESIGN.md §14–15).
};

}  // namespace ambb
