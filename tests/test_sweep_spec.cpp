// SweepSpec expansion and the ambb_sweep spec-file parser
// (src/engine/sweep.hpp): cross-product order, label scheme, fault-load
// selection modes, filtering, registry validation, and the line-oriented
// parse errors.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "engine/sweep.hpp"
#include "runner/registry.hpp"

namespace ambb::engine {
namespace {

TEST(SweepExpand, DefaultsGiveOneJobWithMinimalLabel) {
  SweepSpec spec;
  spec.protocol = "phase-king";
  const auto jobs = expand(spec);
  ASSERT_EQ(jobs.size(), 1u);
  // No explicit name: the protocol prefixes the label; single-valued
  // dimensions (f, L, seed, rep) are omitted after /n.
  EXPECT_EQ(jobs[0].label, "phase-king/none/n16");
  EXPECT_EQ(jobs[0].protocol, "phase-king");
  EXPECT_EQ(jobs[0].params.n, 16u);
  EXPECT_EQ(jobs[0].params.f, 16u / 3);  // default fault load n/3
  EXPECT_EQ(jobs[0].params.slots, Slot{8});
  EXPECT_EQ(jobs[0].params.seed, 1u);
  EXPECT_FALSE(jobs[0].allow_stall);
}

TEST(SweepExpand, CrossProductOrderIsNThenFThenSlotsThenAdvThenSeedThenRep) {
  SweepSpec spec;
  spec.name = "grid";
  spec.protocol = "dolev-strong";
  spec.ns = {8, 12};
  spec.fs = {1, 2};
  spec.slots_list = {4, 6};
  spec.adversaries = {"none", "silent"};
  spec.seed_begin = 1;
  spec.seed_end = 2;
  spec.repetitions = 2;

  const auto jobs = expand(spec);
  ASSERT_EQ(jobs.size(), 64u);  // 2*2*2*2*2*2

  // Innermost dimension first: repetitions vary fastest, n slowest.
  EXPECT_EQ(jobs[0].label, "grid/none/n8/f1/L4/s1/r1");
  EXPECT_EQ(jobs[1].label, "grid/none/n8/f1/L4/s1/r2");
  EXPECT_EQ(jobs[2].label, "grid/none/n8/f1/L4/s2/r1");
  EXPECT_EQ(jobs[4].label, "grid/silent/n8/f1/L4/s1/r1");
  EXPECT_EQ(jobs[8].label, "grid/none/n8/f1/L6/s1/r1");
  EXPECT_EQ(jobs[16].label, "grid/none/n8/f2/L4/s1/r1");
  EXPECT_EQ(jobs[32].label, "grid/none/n12/f1/L4/s1/r1");
  EXPECT_EQ(jobs[63].label, "grid/silent/n12/f2/L6/s2/r2");

  // Params track the label.
  EXPECT_EQ(jobs[63].params.n, 12u);
  EXPECT_EQ(jobs[63].params.f, 2u);
  EXPECT_EQ(jobs[63].params.slots, Slot{6});
  EXPECT_EQ(jobs[63].params.adversary, "silent");
  EXPECT_EQ(jobs[63].params.seed, 2u);
}

TEST(SweepExpand, FFracFloorsPerNMatchingBenchArithmetic) {
  SweepSpec spec;
  spec.protocol = "linear";
  spec.ns = {24, 32, 48};
  spec.f_frac = 0.3;
  const auto jobs = expand(spec);
  ASSERT_EQ(jobs.size(), 3u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    // Same f the benches compute at these n (7, 9, 14): the exact-floor
    // rewrite must not move any existing golden.
    EXPECT_EQ(jobs[i].params.f,
              static_cast<std::uint32_t>(0.3 * spec.ns[i]));
  }
}

TEST(SweepExpand, FFracIsExactWhereFloatTruncationLostAUnit) {
  // Regression: 0.3 * 10 is 2.999... in binary; the old
  // static_cast<uint32_t>(f_frac * n) truncated it to f=2. floor(3*10/10)
  // is exactly 3 — via the rational path AND the double fallback (which
  // snaps to the nearest 1e-9 before flooring).
  const std::vector<std::uint32_t> ns = {10, 20, 24, 32, 48, 64};
  const std::vector<std::uint32_t> want = {3, 6, 7, 9, 14, 19};

  SweepSpec rational;
  rational.protocol = "linear";
  rational.ns = ns;
  rational.f_frac_num = 3;
  rational.f_frac_den = 10;

  SweepSpec fallback;
  fallback.protocol = "linear";
  fallback.ns = ns;
  fallback.f_frac = 0.3;

  const auto jr = expand(rational);
  const auto jf = expand(fallback);
  ASSERT_EQ(jr.size(), ns.size());
  ASSERT_EQ(jf.size(), ns.size());
  for (std::size_t i = 0; i < ns.size(); ++i) {
    EXPECT_EQ(jr[i].params.f, want[i]) << "rational, n=" << ns[i];
    EXPECT_EQ(jf[i].params.f, want[i]) << "fallback, n=" << ns[i];
  }
}

TEST(SpecParser, FFracAcceptsRationalsAndRejectsJunk) {
  auto f_of = [](const std::string& frac, std::uint32_t n) {
    const auto specs = parse_spec("sweep x\nprotocol dolev-strong\nn " +
                                  std::to_string(n) + "\nf-frac " + frac +
                                  "\n");
    const auto jobs = expand_all(specs);
    AMBB_CHECK(jobs.size() == 1);
    return jobs[0].params.f;
  };
  EXPECT_EQ(f_of("1/3", 12), 4u);
  EXPECT_EQ(f_of("1/3", 10), 3u);   // floor(10/3)
  EXPECT_EQ(f_of("1/2", 7), 3u);
  EXPECT_EQ(f_of("0.3", 10), 3u);   // the regression case
  EXPECT_EQ(f_of("0.25", 10), 2u);  // floor still floors
  EXPECT_EQ(f_of("333333333/1000000000", 30), 9u);  // 9-digit den is legal

  for (const char* bad :
       {"3/0", "4/3", "1.5", "0.0000000001", "1//2", "x", "0..3"}) {
    EXPECT_THROW(parse_spec(std::string("sweep x\nprotocol linear\nn 10\n"
                                        "f-frac ") +
                            bad + "\n"),
                 CheckError)
        << bad;
  }
}

TEST(SweepExpand, ScheduleSpecsExpandForEveryProtocol) {
  // "sched:..." / "fuzz" tokenize as one word in spec files and are
  // accepted by every registry protocol; allow_stall follows the
  // registry's sched_may_stall flag instead of known_liveness_failures.
  for (const char* proto : {"linear", "hotstuff"}) {
    SweepSpec spec;
    spec.protocol = proto;
    spec.ns = {8};
    spec.fs = {2};
    spec.adversaries = {"sched:corrupt(0,0);silence(0,0,*)", "fuzz"};
    const auto jobs = expand(spec);
    ASSERT_EQ(jobs.size(), 2u) << proto;
    const bool stalls = protocol(proto).policy.sched_may_stall;
    EXPECT_EQ(jobs[0].allow_stall, stalls) << proto;
    EXPECT_EQ(jobs[1].allow_stall, stalls) << proto;
  }
  // An adversary that is neither named nor a schedule still errors.
  SweepSpec bad;
  bad.protocol = "linear";
  bad.adversaries = {"sched-typo"};
  EXPECT_THROW(expand(bad), CheckError);
}

TEST(SweepExpand, PayloadAxisMapsToValueBitsForRawRowsOnly) {
  // Non-ext protocols carry the payload inline: value_bits becomes 8L.
  SweepSpec raw;
  raw.protocol = "dolev-strong";
  raw.ns = {8};
  raw.fs = {2};
  raw.payloads = {512, 4096};
  const auto raw_jobs = expand(raw);
  ASSERT_EQ(raw_jobs.size(), 2u);
  EXPECT_EQ(raw_jobs[0].label, "dolev-strong/none/n8/p512");
  EXPECT_EQ(raw_jobs[1].label, "dolev-strong/none/n8/p4096");
  EXPECT_EQ(raw_jobs[0].params.payload_bytes, 512u);
  EXPECT_EQ(raw_jobs[0].params.value_bits, 8u * 512u);
  EXPECT_EQ(raw_jobs[1].params.value_bits, 8u * 4096u);

  // ext:* rows erasure-code the payload; the base phase stays at the
  // spec's value_bits (kappa-sized digests), only payload_bytes moves.
  SweepSpec ext;
  ext.protocol = "ext:dolev-strong";
  ext.ns = {8};
  ext.fs = {2};
  ext.payloads = {4096};
  const auto ext_jobs = expand(ext);
  ASSERT_EQ(ext_jobs.size(), 1u);
  // Single payload value: no /p label component.
  EXPECT_EQ(ext_jobs[0].label, "ext:dolev-strong/none/n8");
  EXPECT_EQ(ext_jobs[0].params.payload_bytes, 4096u);
  EXPECT_EQ(ext_jobs[0].params.value_bits, kDefaultValueBits);

  // 8 * payload must fit value_bits for raw rows; ext rows have no cap.
  SweepSpec huge;
  huge.protocol = "dolev-strong";
  huge.ns = {8};
  huge.fs = {2};
  huge.payloads = {0x20000000ULL};
  EXPECT_THROW(expand(huge), CheckError);
  huge.protocol = "ext:dolev-strong";
  EXPECT_NO_THROW(expand(huge));
}

TEST(SweepExpand, PayloadSitsBetweenSlotsAndAdversaryInTheOrder) {
  SweepSpec spec;
  spec.name = "px";
  spec.protocol = "dolev-strong";
  spec.ns = {8};
  spec.fs = {1};
  spec.payloads = {64, 128};
  spec.adversaries = {"none", "silent"};
  const auto jobs = expand(spec);
  ASSERT_EQ(jobs.size(), 4u);
  // Adversary varies fastest, payload slower (documented stable order).
  EXPECT_EQ(jobs[0].label, "px/none/n8/p64");
  EXPECT_EQ(jobs[1].label, "px/silent/n8/p64");
  EXPECT_EQ(jobs[2].label, "px/none/n8/p128");
  EXPECT_EQ(jobs[3].label, "px/silent/n8/p128");
}

TEST(SweepExpand, FMaxUsesTheRegistryBound) {
  SweepSpec spec;
  spec.protocol = "phase-king";
  spec.ns = {10, 16};
  spec.f_max = true;
  const auto jobs = expand(spec);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].params.f, (10u - 1) / 3);
  EXPECT_EQ(jobs[1].params.f, (16u - 1) / 3);
}

TEST(SweepExpand, SlotsPerNScalesWithN) {
  SweepSpec spec;
  spec.protocol = "linear";
  spec.ns = {10, 20};
  spec.slots_per_n = 3;
  const auto jobs = expand(spec);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].params.slots, Slot{30});
  EXPECT_EQ(jobs[1].params.slots, Slot{60});
}

TEST(SweepExpand, AllowStallComesFromRegistryLivenessFailures) {
  SweepSpec spec;
  spec.protocol = "hotstuff";
  spec.ns = {7};
  spec.fs = {2};
  spec.adversaries = {"none", "selective"};
  const auto jobs = expand(spec);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_FALSE(jobs[0].allow_stall);  // none
  EXPECT_TRUE(jobs[1].allow_stall);   // selective: known stall
}

TEST(SweepExpand, ValidationErrors) {
  SweepSpec spec;
  spec.protocol = "no-such-protocol";
  EXPECT_THROW(expand(spec), CheckError);

  spec.protocol = "phase-king";
  spec.adversaries = {"mixed"};  // a linear-family spec, not phase-king's
  EXPECT_THROW(expand(spec), CheckError);

  spec.adversaries = {"none"};
  spec.ns = {8};
  spec.fs = {8};  // f >= n
  EXPECT_THROW(expand(spec), CheckError);

  spec.fs = {2};
  spec.seed_begin = 5;
  spec.seed_end = 4;  // backwards range
  EXPECT_THROW(expand(spec), CheckError);

  spec.seed_end = 5;
  spec.repetitions = 0;
  EXPECT_THROW(expand(spec), CheckError);
}

TEST(SweepExpand, ExpandAllConcatenatesInSpecOrder) {
  SweepSpec a;
  a.name = "a";
  a.protocol = "phase-king";
  SweepSpec b;
  b.name = "b";
  b.protocol = "dolev-strong";
  b.ns = {8};
  b.fs = {1};
  const auto jobs = expand_all({a, b});
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].label, "a/none/n16");
  EXPECT_EQ(jobs[1].label, "b/none/n8");
}

TEST(SweepFilter, SubstringOnLabelsEmptyKeepsAll) {
  SweepSpec spec;
  spec.name = "flt";
  spec.protocol = "dolev-strong";
  spec.ns = {8, 12};
  spec.fs = {1};
  spec.adversaries = {"none", "stagger"};
  auto jobs = expand(spec);
  ASSERT_EQ(jobs.size(), 4u);

  const auto stagger = filter_jobs(jobs, "stagger");
  ASSERT_EQ(stagger.size(), 2u);
  EXPECT_EQ(stagger[0].label, "flt/stagger/n8");
  EXPECT_EQ(stagger[1].label, "flt/stagger/n12");

  EXPECT_EQ(filter_jobs(jobs, "n12").size(), 2u);
  EXPECT_EQ(filter_jobs(jobs, "").size(), 4u);
  EXPECT_TRUE(filter_jobs(jobs, "no-match").empty());
}

TEST(SweepToEngineJob, ClosureRunsTheRegistryDriverWithTheCellParams) {
  SweepSpec spec;
  spec.protocol = "phase-king";
  spec.ns = {10};
  spec.fs = {3};
  spec.slots_list = {4};
  spec.seed_begin = spec.seed_end = 41;
  const auto sjs = expand(spec);
  ASSERT_EQ(sjs.size(), 1u);

  const Job job = to_engine_job(sjs[0]);
  EXPECT_EQ(job.label, sjs[0].label);
  const RunResult r = job.run();
  EXPECT_EQ(r.n, 10u);
  EXPECT_EQ(r.f, 3u);
  EXPECT_EQ(r.slots, Slot{4});
  EXPECT_EQ(check_all(r), std::vector<std::string>{});
}

TEST(SpecParser, ParsesBlocksCommentsAndAllKeys) {
  const std::string text = R"(# leading comment
sweep alg4
protocol linear
n 24 32          # trailing comment
f-frac 0.3
slots-per-n 3
adversary mixed none
seeds 7 9
reps 2
eps 0.2
kappa 512
value-bits 128

sweep kings
protocol phase-king
n 10
f max
slots 4 6
)";
  const auto specs = parse_spec(text);
  ASSERT_EQ(specs.size(), 2u);

  const SweepSpec& s0 = specs[0];
  EXPECT_EQ(s0.name, "alg4");
  EXPECT_EQ(s0.protocol, "linear");
  EXPECT_EQ(s0.ns, (std::vector<std::uint32_t>{24, 32}));
  // "f-frac 0.3" parses into the EXACT rational 3/10 (the double member
  // stays unset: it is only the programmatic fallback).
  EXPECT_EQ(s0.f_frac_num, 3u);
  EXPECT_EQ(s0.f_frac_den, 10u);
  EXPECT_LT(s0.f_frac, 0.0);
  EXPECT_EQ(s0.slots_per_n, 3u);
  EXPECT_EQ(s0.adversaries, (std::vector<std::string>{"mixed", "none"}));
  EXPECT_EQ(s0.seed_begin, 7u);
  EXPECT_EQ(s0.seed_end, 9u);
  EXPECT_EQ(s0.repetitions, 2u);
  EXPECT_DOUBLE_EQ(s0.eps, 0.2);
  EXPECT_EQ(s0.kappa_bits, 512u);
  EXPECT_EQ(s0.value_bits, 128u);

  const SweepSpec& s1 = specs[1];
  EXPECT_EQ(s1.name, "kings");
  EXPECT_TRUE(s1.f_max);
  EXPECT_EQ(s1.slots_list, (std::vector<Slot>{4, 6}));
  // Unset keys keep their defaults in the second block.
  EXPECT_EQ(s1.adversaries, std::vector<std::string>{"none"});
  EXPECT_EQ(s1.repetitions, 1u);

  // End-to-end expansion: 2n * 2adv * 3seeds * 2reps + 1n * 2slots.
  EXPECT_EQ(expand_all(specs).size(), 24u + 2u);
}

TEST(SpecParser, ErrorsCarryTheOffendingLine) {
  auto expect_parse_error = [](const std::string& text,
                               const std::string& needle) {
    try {
      parse_spec(text);
      FAIL() << "expected CheckError for:\n" << text;
    } catch (const CheckError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };

  expect_parse_error("protocol linear\n", "key before any 'sweep'");
  expect_parse_error("sweep x\nfrobnicate 3\n", "unknown key 'frobnicate'");
  expect_parse_error("sweep x\nprotocol linear\nn\n", "needs a value");
  expect_parse_error("sweep x\nprotocol linear\nn twelve\n", "line 3");
  expect_parse_error("sweep x\nprotocol linear\nseeds 4\n",
                     "'seeds' needs begin end");
  expect_parse_error("sweep one two\n", "'sweep' needs one name");
  // Every diagnostic names the offending line, including block-level
  // errors reported after the parse loop: the no-protocol message points
  // at the block's own 'sweep' line, not the end of the file.
  expect_parse_error("sweep x\nn 8\n", "has no 'protocol' key");
  expect_parse_error("sweep x\nn 8\n", "spec line 1");
  expect_parse_error("sweep ok\nprotocol linear\n\nsweep bad\nn 8\n",
                     "spec line 4");
  expect_parse_error("sweep x\nprotocol linear\n\n\npayload 0\n",
                     "spec line 5");
  expect_parse_error("sweep x\nprotocol linear\npayload 4096 huge\n",
                     "spec line 3");
}

TEST(SpecParser, PayloadKeyParsesAList) {
  const auto specs = parse_spec(
      "sweep p\nprotocol ext:linear\nn 8\nf 2\npayload 512 4096 32768\n");
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].payloads,
            (std::vector<std::uint64_t>{512, 4096, 32768}));
  const auto jobs = expand_all(specs);
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_EQ(jobs[0].label, "p/none/n8/p512");
  EXPECT_EQ(jobs[2].params.payload_bytes, 32768u);
}

TEST(SpecParser, PayloadScalingSpecFileRoundTrips) {
  // The checked-in crossover spec (tools/specs/payload_scaling.spec) must
  // keep parsing and expanding: 4 blocks x 4 payloads, ext rows paired
  // with raw baselines whose value_bits carry the payload inline.
  std::ifstream in(std::string(AMBB_SPECS_DIR) + "/payload_scaling.spec");
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();

  const auto specs = parse_spec(ss.str());
  ASSERT_EQ(specs.size(), 4u);
  const auto jobs = expand_all(specs);
  ASSERT_EQ(jobs.size(), 16u);
  for (const auto& j : jobs) {
    EXPECT_GE(j.params.payload_bytes, 512u) << j.label;
    EXPECT_NE(j.label.find("/p"), std::string::npos) << j.label;
    const bool is_ext = j.protocol.rfind("ext:", 0) == 0;
    if (is_ext) {
      EXPECT_EQ(j.params.value_bits, kDefaultValueBits) << j.label;
    } else {
      EXPECT_EQ(j.params.value_bits, 8u * j.params.payload_bytes) << j.label;
    }
  }
}

}  // namespace
}  // namespace ambb::engine
