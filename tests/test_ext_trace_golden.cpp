// JSONL trace golden for the extension subsystem: the full event stream
// of one fixed ext:linear cell (n=8, f=2, L=2, seed=1, 1 KiB payload)
// must match the file checked in under tests/golden/ byte for byte. The
// ext trace concatenates dispersal events (chunk-disperse / chunk-echo /
// reconstruct) with the base family's own stream, so this pins both the
// new event layouts and the dispersal/base round interleaving.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "runner/registry.hpp"
#include "trace/trace.hpp"

namespace ambb {
namespace {

CommonParams golden_params() {
  CommonParams p;
  p.n = 8;
  p.f = 2;
  p.slots = 2;
  p.seed = 1;
  p.payload_bytes = 1024;
  p.adversary = "none";
  return p;
}

std::string render_trace() {
  std::ostringstream os;
  trace::JsonlSink sink(os);
  protocol("ext:linear").run(RunRequest{golden_params(), &sink});
  return os.str();
}

TEST(ExtTraceGolden, ExtLinearN8F2L2Seed1MatchesCheckedInFile) {
  const std::string path =
      std::string(AMBB_GOLDEN_DIR) + "/trace_ext_linear_n8_f2_L2_seed1.jsonl";
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << path;
  std::ostringstream want;
  want << in.rdbuf();

  const std::string got = render_trace();
  ASSERT_FALSE(got.empty());
  if (got != want.str()) {
    std::istringstream ga(got), wa(want.str());
    std::string gl, wl;
    std::size_t line = 1;
    while (std::getline(ga, gl) && std::getline(wa, wl) && gl == wl) ++line;
    FAIL() << "ext trace drifted from golden at line " << line
           << "\n  got:  " << gl << "\n  want: " << wl;
  }
}

TEST(ExtTraceGolden, RenderingIsDeterministic) {
  EXPECT_EQ(render_trace(), render_trace());
}

}  // namespace
}  // namespace ambb
