// Quickstart: run the paper's amortized-linear multi-shot Byzantine
// broadcast (Algorithm 4) for a handful of slots, with a third of the
// nodes Byzantine, and inspect commits and communication cost.
//
//   $ ./examples/quickstart [n] [f] [slots] [adversary]
//
// Adversaries: none | silent | equivocate | selective | flood | mixed |
// adaptive-erase (see bb/linear_adversary.hpp).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bb/linear_bb.hpp"
#include "runner/result.hpp"
#include "runner/table.hpp"

int main(int argc, char** argv) {
  using namespace ambb;

  linear::LinearConfig cfg;
  cfg.n = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 16;
  cfg.f = argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 6;
  cfg.slots = argc > 3 ? static_cast<Slot>(std::atoi(argv[3])) : 8;
  cfg.adversary = argc > 4 ? argv[4] : "mixed";
  cfg.seed = 2023;
  cfg.eps = 0.1;  // tolerates f <= (1/2 - eps) n

  std::printf("multi-shot Byzantine broadcast, Algorithm 4 (PODC'23)\n");
  std::printf("n=%u f=%u slots=%u adversary=%s kappa=%u bits\n\n", cfg.n,
              cfg.f, cfg.slots, cfg.adversary.c_str(), cfg.kappa_bits);

  RunResult r = linear::run_linear(cfg);

  // Every honest node must have committed the same value in every slot.
  TextTable t({"slot", "sender", "sender status", "committed value",
               "honest bits"});
  for (Slot k = 1; k <= cfg.slots; ++k) {
    const NodeId s = r.senders[k];
    Value v = kBotValue;
    for (NodeId u = 0; u < cfg.n; ++u) {
      if (!r.corrupt[u] && r.commits.has(u, k)) {
        v = r.commits.get(u, k).value;
        break;
      }
    }
    char val[32];
    std::snprintf(val, sizeof val, "%016llx",
                  static_cast<unsigned long long>(v));
    t.add_row({std::to_string(k), std::to_string(s),
               r.corrupt[s] ? "corrupt" : "honest", val,
               TextTable::bits_human(
                   static_cast<double>(r.per_slot_bits[k]))});
  }
  std::printf("%s\n", t.render().c_str());

  auto errs = check_all(r);
  if (errs.empty()) {
    std::printf("consistency + termination + validity: OK\n");
  } else {
    for (const auto& e : errs) std::printf("PROPERTY VIOLATION: %s\n", e.c_str());
    return 1;
  }
  std::printf("total honest bits: %s (amortized %s/slot; adversary sent %s)\n",
              TextTable::bits_human(
                  static_cast<double>(r.honest_bits)).c_str(),
              TextTable::bits_human(r.amortized()).c_str(),
              TextTable::bits_human(
                  static_cast<double>(r.adversary_bits)).c_str());
  return 0;
}
