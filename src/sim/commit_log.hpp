// Records every commit made by honest nodes so the runner can check the
// multi-shot BB properties (consistency, termination, validity,
// sequentiality) after a run.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace ambb {

struct CommitRecord {
  Value value = kBotValue;
  Round round = 0;
  bool committed = false;
};

class CommitLog {
 public:
  explicit CommitLog(std::uint32_t n) : n_(n) {}

  void record(NodeId node, Slot slot, Value value, Round round) {
    AMBB_CHECK(node < n_ && slot >= 1);
    if (slot >= by_slot_.size()) {
      by_slot_.resize(slot + 1, std::vector<CommitRecord>(n_));
    }
    CommitRecord& r = by_slot_[slot][node];
    AMBB_CHECK_MSG(!r.committed, "node " << node << " double-committed slot "
                                         << slot);
    r = CommitRecord{value, round, true};
  }

  bool has(NodeId node, Slot slot) const {
    return slot < by_slot_.size() && by_slot_[slot][node].committed;
  }

  const CommitRecord& get(NodeId node, Slot slot) const {
    AMBB_CHECK(has(node, slot));
    return by_slot_[slot][node];
  }

  Slot max_slot() const {
    return by_slot_.empty() ? 0 : static_cast<Slot>(by_slot_.size() - 1);
  }

  std::uint32_t n() const { return n_; }

 private:
  std::uint32_t n_;
  std::vector<std::vector<CommitRecord>> by_slot_;  // [slot][node]
};

}  // namespace ambb
