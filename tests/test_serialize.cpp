#include "crypto/serialize.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace ambb {
namespace {

Digest rand_digest(Rng& rng) {
  Digest d;
  for (auto& b : d) b = static_cast<std::uint8_t>(rng.next_u64());
  return d;
}

TEST(Serialize, DigestRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    const Digest d = rand_digest(rng);
    Encoder e;
    encode_digest(d, e);
    EXPECT_EQ(e.size(), 32u);
    Decoder dec(e.bytes());
    EXPECT_EQ(decode_digest(dec), d);
    EXPECT_TRUE(dec.exhausted());
  }
}

TEST(Serialize, SignatureRoundTrip) {
  Rng rng(2);
  Signature s{17, rand_digest(rng)};
  Encoder e;
  encode_signature(s, e);
  Decoder d(e.bytes());
  EXPECT_EQ(decode_signature(d), s);
}

TEST(Serialize, ShareAndThsigRoundTrip) {
  Rng rng(3);
  SigShare s{5, rand_digest(rng)};
  ThresholdSig t{rand_digest(rng)};
  Encoder e;
  encode_share(s, e);
  encode_thsig(t, e);
  Decoder d(e.bytes());
  EXPECT_EQ(decode_share(d), s);
  EXPECT_EQ(decode_thsig(d), t);
  EXPECT_TRUE(d.exhausted());
}

TEST(Serialize, BitvecRoundTripVariousSizes) {
  Rng rng(4);
  for (std::size_t n : {0ul, 1ul, 63ul, 64ul, 65ul, 130ul, 1000ul}) {
    BitVec b(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.chance(0.4)) b.set(i);
    }
    Encoder e;
    encode_bitvec(b, e);
    Decoder d(e.bytes());
    EXPECT_EQ(decode_bitvec(d), b) << "n=" << n;
    EXPECT_TRUE(d.exhausted());
  }
}

TEST(Serialize, BitvecRejectsAbsurdSize) {
  Encoder e;
  e.put_u32(0x7fffffff);
  Decoder d(e.bytes());
  EXPECT_THROW(decode_bitvec(d), CheckError);
}

TEST(Serialize, MultisigRoundTrip) {
  KeyRegistry reg(9, 3);
  MultiSigScheme ms(reg);
  const Digest dd = Sha256::hash(std::string("msg"));
  MultiSig sig = ms.empty();
  for (NodeId i : {0u, 3u, 8u}) sig = ms.extend(sig, i, dd);
  Encoder e;
  encode_multisig(sig, e);
  Decoder d(e.bytes());
  MultiSig out = decode_multisig(d);
  EXPECT_EQ(out.signers, sig.signers);
  EXPECT_EQ(out.agg, sig.agg);
  EXPECT_TRUE(ms.verify(out, dd));
}

TEST(Serialize, TruncatedInputThrows) {
  Rng rng(5);
  Signature s{1, rand_digest(rng)};
  Encoder e;
  encode_signature(s, e);
  auto bytes = e.bytes();
  bytes.pop_back();
  Decoder d(bytes);
  EXPECT_THROW(decode_signature(d), CheckError);
}

}  // namespace
}  // namespace ambb
