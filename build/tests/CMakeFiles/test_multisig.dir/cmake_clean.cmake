file(REMOVE_RECURSE
  "CMakeFiles/test_multisig.dir/test_multisig.cpp.o"
  "CMakeFiles/test_multisig.dir/test_multisig.cpp.o.d"
  "test_multisig"
  "test_multisig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multisig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
