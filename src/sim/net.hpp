// Lock-step synchronous network simulator (the paper's model, Section 3).
//
// Time advances in rounds. In round r every node emits messages; all
// surviving messages are delivered at the beginning of round r+1. The
// adversary is rushing (Byzantine actors step after honest actors and can
// observe the honest round-r traffic before sending their own) and
// strongly adaptive (after all traffic of round r is fixed, it may corrupt
// additional nodes and erase messages those nodes sent in round r, i.e.
// after-the-fact message removal [Abraham et al.]).
//
// The simulator is templated on the protocol's message type: each protocol
// family defines one message struct plus a SizeModel mapping messages to
// exact wire bits and accounting kinds.
//
// Traffic representation: a round's traffic is a vector of TrafficRecords.
// A unicast is one record; a multicast is ALSO one record — the payload is
// stored once and fanned out to the n per-node inboxes only at delivery
// time, as a (sender, const Msg*) pair. The adversary still addresses
// *individual* (sender, recipient) deliveries: record i with fanout c_i
// owns the half-open delivery-index range [base_i, base_i + c_i), where
// base_i = sum of earlier fanouts, and a multicast's deliveries appear in
// recipient order 0..n-1. This enumerates deliveries in exactly the order
// the former eager-copy representation enumerated envelopes, so erase
// indices (and therefore seeded adversary decisions) are unchanged.
//
// Node-sharded rounds (DESIGN.md §15): with SimConfig::node_jobs = W > 1
// the honest-actor phase of step() fans out over a persistent ShardPool.
// Each worker runs a contiguous range of the ascending honest-id order
// into a private TrafficLog shard (own arena) and a private trace-event
// buffer; the main thread then merges shards in shard order, which IS
// ascending node-id order — so record order, delivery bases, erase
// indices, charge order, and JSONL traces are byte-identical to the
// serial loop. Byzantine/rushing, adversary, accounting, and delivery
// phases stay serial: they are cheap and order-sensitive.
//
// Event-queue scheduler (DESIGN.md §16): delivery is driven by a
// deterministic event queue parameterized by a NetPolicy
// (sim/net_policy.hpp). Under the default lockstep policy the queue
// stays empty and the delivery phase is the classic synchronous fan-out
// — byte-identical to the pre-scheduler simulator. Under bounded/async
// policies, each surviving delivery may be deferred by extra rounds
// (policy draw + adversary delay() calls, clamped to the policy bound):
// the payload is copied into a due-round bucket and delivered, before
// that round's fresh lock-step traffic, in emission order. Accounting
// is charged at EMISSION time (the sender paid to transmit; the network
// holding a message does not refund it), and erased deliveries never
// enter the queue — erasure always wins over delay.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/arena.hpp"
#include "common/check.hpp"
#include "common/types.hpp"
#include "sim/cost.hpp"
#include "sim/net_policy.hpp"
#include "sim/shard_pool.hpp"
#include "sim/stats.hpp"
#include "trace/trace.hpp"

namespace ambb {

/// One message as seen by its recipient. The payload lives in the
/// simulator's traffic log for the previous round and is shared by all
/// recipients of a multicast; it stays valid for the whole round.
template <typename Msg>
struct Delivery {
  NodeId from = kNoNode;
  const Msg* payload = nullptr;

  const Msg& msg() const { return *payload; }
};

/// One round of emitted traffic as shared records.
template <typename Msg>
class TrafficLog {
 public:
  struct Record {
    NodeId from = kNoNode;
    NodeId to = kNoNode;  ///< kNoNode encodes "multicast to all n"
    Msg msg{};
    std::size_t base = 0;  ///< first delivery index owned by this record

    bool is_multicast() const { return to == kNoNode; }
  };

  TrafficLog() : arena_(std::make_unique<Arena>()), records_(arena_.get()) {}

  /// Round boundary: drop all records and rewind the arena wholesale. In
  /// steady state (high-water capacity reached) this performs zero heap
  /// operations.
  void reset(std::uint32_t n) {
    n_ = n;
    records_.reset();
    arena_->reset();
    deliveries_ = 0;
  }

  void add_unicast(NodeId from, NodeId to, const Msg& m) {
    // Emplaced, not pushed: the payload is copied exactly once, straight
    // into arena storage (Msg can be large; the hot path sends millions).
    records_.emplace_back(from, to, m, deliveries_);
    deliveries_ += 1;
  }

  void add_multicast(NodeId from, const Msg& m) {
    records_.emplace_back(from, kNoNode, m, deliveries_);
    deliveries_ += n_;
  }

  std::uint32_t n() const { return n_; }
  std::size_t deliveries() const { return deliveries_; }
  const ArenaVector<Record>& records() const { return records_; }

  /// Allocation behaviour of the backing arena (tests + diagnostics).
  const Arena::Stats& arena_stats() const { return arena_->stats(); }

  std::size_t fanout(const Record& rec) const {
    return rec.is_multicast() ? n_ : 1;
  }

  /// Index of the record owning delivery index d.
  std::size_t record_of(std::size_t d) const {
    AMBB_CHECK(d < deliveries_);
    // Bases are strictly increasing; find the last base <= d.
    auto it = std::upper_bound(
        records_.begin(), records_.end(), d,
        [](std::size_t x, const Record& r) { return x < r.base; });
    return static_cast<std::size_t>((it - records_.begin()) - 1);
  }

  NodeId recipient_of(const Record& rec, std::size_t d) const {
    return rec.is_multicast() ? static_cast<NodeId>(d - rec.base) : rec.to;
  }

 private:
  std::uint32_t n_ = 0;
  /// The arena sits behind unique_ptr so the log stays movable (swap in
  /// Simulation::step) without invalidating records_'s arena pointer.
  /// Declared before records_: members destroy in reverse order, and the
  /// records must die before their backing storage.
  std::unique_ptr<Arena> arena_;
  ArenaVector<Record> records_;
  std::size_t deliveries_ = 0;
};

/// Read-only per-delivery view of (a prefix of) a TrafficLog, used for the
/// rushing adversary and observe_round. Indexing is by delivery index (see
/// the header comment); access goes through the log pointer, so the view
/// stays valid while Byzantine actors append to the same log.
///
/// THREAD-SAFETY: logically const access is NOT thread-safe. operator[]
/// advances the mutable cursor_ memoization, so two threads indexing the
/// SAME view instance race on it — a "read-only" view is a writer. This
/// is by design (the cursor makes sequential scans O(1) amortized); the
/// consequence for the experiment engine (src/engine/) is its isolation
/// rule: concurrent jobs must each own their own Simulation and must
/// never share one, nor any TrafficView derived from one. Node-sharded
/// rounds respect the same contract from the inside: honest actors get a
/// default-constructed (empty) view, and the rushing/adversary views are
/// only built in the serial phases — no populated view ever crosses a
/// worker-thread boundary. Passing a COPY of a view to another thread
/// would be safe (each copy carries a private cursor; the static_assert
/// below keeps copies trivial), but sharing one instance is not.
template <typename Msg>
class TrafficView {
 public:
  struct DeliveryRef {
    NodeId from;
    NodeId to;
    const Msg& msg;
  };

  TrafficView() = default;
  TrafficView(const TrafficLog<Msg>* log, std::size_t limit)
      : log_(log), limit_(limit) {}

  std::size_t size() const { return limit_; }
  bool empty() const { return limit_ == 0; }

  DeliveryRef operator[](std::size_t d) const {
    AMBB_CHECK(d < limit_);
    const auto& recs = log_->records();
    // Cursor makes sequential scans O(1) amortized instead of O(log R).
    if (cursor_ >= recs.size() || d < recs[cursor_].base ||
        d >= recs[cursor_].base + log_->fanout(recs[cursor_])) {
      cursor_ = log_->record_of(d);
    }
    const auto& rec = recs[cursor_];
    return DeliveryRef{rec.from, log_->recipient_of(rec, d), rec.msg};
  }

 private:
  const TrafficLog<Msg>* log_ = nullptr;
  std::size_t limit_ = 0;
  mutable std::size_t cursor_ = 0;
};

// Enforce the thread-safety contract above as far as the type system
// can: a TrafficView must stay trivially copyable (copy = private cursor,
// no shared mutable state behind the copy), so that per-thread COPIES
// remain the safe way to hand traffic to concurrent readers. If someone
// adds state that breaks this (a lock, a shared cache), this fires and
// the engine's job-isolation rule must be revisited.
static_assert(std::is_trivially_copyable_v<TrafficView<int>>,
              "TrafficView copies must stay trivial: a shared instance is "
              "not thread-safe (mutable cursor_), per-thread copies are");

/// Sending interface handed to an actor for one round.
template <typename Msg>
class RoundApi {
 public:
  RoundApi(NodeId self, std::uint32_t n, TrafficLog<Msg>* out)
      : self_(self), n_(n), out_(out) {}

  NodeId self() const { return self_; }
  std::uint32_t n() const { return n_; }

  void send(NodeId to, const Msg& m) {
    AMBB_CHECK(to < n_);
    out_->add_unicast(self_, to, m);
  }

  /// Send to all n nodes. Stored as ONE shared record; the self-copy is
  /// delivered but not charged: the paper's multicast costs n-1
  /// transmissions.
  void multicast(const Msg& m) { out_->add_multicast(self_, m); }

 private:
  NodeId self_;
  std::uint32_t n_;
  TrafficLog<Msg>* out_;
};

/// A node's protocol logic. One Actor instance persists across the entire
/// multi-shot execution (protocols carry cross-slot state).
template <typename Msg>
class Actor {
 public:
  virtual ~Actor() = default;

  /// Called once per round with the messages delivered at the beginning of
  /// this round. For Byzantine actors, `rushed_traffic` additionally holds
  /// the traffic already emitted by honest nodes in this same round
  /// (rushing adversary); it is empty for honest actors.
  virtual void on_round(Round r, std::span<const Delivery<Msg>> inbox,
                        const TrafficView<Msg>& rushed_traffic,
                        RoundApi<Msg>& api) = 0;
};

/// Control surface for the strongly adaptive corruption step.
template <typename Msg>
class CorruptionCtl {
 public:
  virtual ~CorruptionCtl() = default;

  /// Corrupt `node` now (end of the current round). Fails if the
  /// corruption budget f is exhausted.
  virtual void corrupt(NodeId node) = 0;

  /// Erase one (sender, recipient) delivery of the current round, by its
  /// delivery index. Only deliveries whose sender is (now) corrupt may be
  /// erased — after-the-fact removal.
  virtual void erase(std::size_t delivery_index) = 0;

  /// Defer one delivery of the current round by `extra_rounds` past the
  /// lock-step latency. Timing is a NETWORK power, not a corruption: any
  /// sender's traffic may be delayed, honest or not, and no budget is
  /// consumed — but the policy bound still applies (the total extra
  /// delay of a delivery is clamped to Δ under bounded and to the
  /// eventual-delivery cap under async). Rejected under lockstep.
  /// Erasing the same delivery wins: an erased message is never queued.
  virtual void delay(std::size_t delivery_index,
                     std::uint32_t extra_rounds) = 0;

  /// The delay policy in force (lockstep when unconfigured), so
  /// adversaries can scale their timing faults to the policy bound.
  virtual const NetPolicy& net() const = 0;

  virtual bool is_corrupt(NodeId node) const = 0;
  virtual std::uint32_t corruption_budget_left() const = 0;
};

/// The adversary: chooses corruptions, supplies Byzantine actors, and may
/// exercise the strongly adaptive hook each round.
template <typename Msg>
class Adversary {
 public:
  virtual ~Adversary() = default;

  virtual std::vector<NodeId> initial_corruptions() = 0;

  /// Byzantine replacement logic for a corrupted node.
  virtual std::unique_ptr<Actor<Msg>> actor_for(NodeId node) = 0;

  /// Strongly adaptive step: observe all round-r traffic (per delivery),
  /// optionally corrupt more nodes and erase their round-r deliveries.
  virtual void observe_round(Round r, const TrafficView<Msg>& traffic,
                             CorruptionCtl<Msg>& ctl) {
    (void)r;
    (void)traffic;
    (void)ctl;
  }
};

/// Function-object accounting policy. Kept as the default Simulation
/// policy for toy harnesses and tests; protocol drivers define concrete
/// policy structs with inlineable members instead (the policy is evaluated
/// once per traffic record — once per multicast, once per unicast — never
/// per delivery).
template <typename Msg>
struct Accounting {
  std::function<std::uint64_t(const Msg&)> size_bits;
  std::function<MsgKind(const Msg&)> kind;
  std::function<Slot(const Msg&, Round sent_round)> slot;
};

/// Trace fan-in for node-sharded rounds. Actors always emit through one
/// sink pointer (ProtocolContext::trace); when the honest phase runs on
/// worker threads, events must not hit the real (single-threaded) sink
/// concurrently — and must still come out in serial-equivalent order. The
/// router solves both: a worker binds a thread-local buffer for the
/// duration of its shard, so its actors' events are captured privately by
/// value (Event::detail is a string literal, safe to copy); the main
/// thread replays the buffers in shard order into the downstream sink
/// during the merge. Off-shard emissions (serial phases, node_jobs == 1,
/// driver-level events) find no bound buffer and pass straight through.
class ActorTraceRouter final : public trace::TraceSink {
 public:
  void set_downstream(trace::TraceSink* sink) { downstream_ = sink; }
  trace::TraceSink* downstream() const { return downstream_; }

  void on_event(const trace::Event& e) override {
    if (std::vector<trace::Event>* buf = bound_buffer()) {
      buf->push_back(e);
      return;
    }
    downstream_->on_event(e);
  }

  /// Capture this thread's emissions into `buf` (nullptr = pass-through).
  /// Callers must unbind before the buffer dies.
  static void bind_buffer(std::vector<trace::Event>* buf) {
    bound_buffer() = buf;
  }

 private:
  static std::vector<trace::Event>*& bound_buffer() {
    thread_local std::vector<trace::Event>* buf = nullptr;
    return buf;
  }

  trace::TraceSink* downstream_ = nullptr;
};

/// Everything a Simulation needs beyond its constructor arguments, in
/// one order-insensitive value. Apply with Simulation::configure() after
/// installing the honest actors and before the first step(); an
/// unconfigured Simulation runs with the defaults below (untraced,
/// serial, lockstep, no adversary).
template <typename Msg>
struct SimConfig {
  /// Trace sink (may be nullptr = untraced). The simulator emits one
  /// kRoundEnd per step() plus a kAdversaryAction for every corruption,
  /// erasure and delay; configure() installs the sink before applying
  /// initial corruptions, so those are traced too. Pure observation:
  /// the execution is bit-identical with or without a sink.
  trace::TraceSink* trace = nullptr;
  /// Honest-phase shard count: 1 = serial rounds, 0 = one shard per
  /// hardware thread; results are byte-identical for every value.
  unsigned node_jobs = 1;
  /// Message-delay policy (sim/net_policy.hpp). Drivers build it with
  /// make_net_policy(spec, run_seed) so the bounded draw is seeded.
  NetPolicy net{};
  /// The adversary (may be nullptr). Its initial corruptions are applied
  /// inside configure(), replacing the corrupted nodes' actors.
  Adversary<Msg>* adversary = nullptr;
};

template <typename Msg, typename Policy = Accounting<Msg>>
class Simulation final : CorruptionCtl<Msg> {
 public:
  Simulation(std::uint32_t n, std::uint32_t f, CostLedger* ledger,
             Policy policy)
      : n_(n),
        f_(f),
        ledger_(ledger),
        policy_(std::move(policy)),
        corrupt_(n, 0),
        actors_(n),
        inbox_arena_(std::make_unique<Arena>()),
        inboxes_(n) {
    AMBB_CHECK(n >= 1 && f < n);
    AMBB_CHECK(ledger != nullptr);
    for (auto& ib : inboxes_) ib.set_arena(inbox_arena_.get());
  }

  /// Install the honest actor for every node. Do this before
  /// configure(): binding the adversary replaces the actors of initially
  /// corrupted nodes.
  void set_actor(NodeId node, std::unique_ptr<Actor<Msg>> actor) {
    AMBB_CHECK(node < n_);
    actors_[node] = std::move(actor);
  }

  /// Apply the full run configuration in one order-insensitive call —
  /// THE setup entry point (trace sink, node sharding, delay policy,
  /// adversary). Must run before the first step() and at most once: the
  /// scheduler's determinism argument assumes the policy and shard count
  /// never change mid-run.
  void configure(const SimConfig<Msg>& cfg) {
    AMBB_CHECK_MSG(!configured_ && round_ == 0,
                   "Simulation::configure: must be called at most once, "
                   "before the first step()");
    configured_ = true;
    trace_ = cfg.trace;
    unsigned jobs = cfg.node_jobs;
    if (jobs == 0) {
      jobs = std::thread::hardware_concurrency();
      if (jobs == 0) jobs = 1;
    }
    node_jobs_ = jobs;
    net_ = cfg.net;
    adversary_ = cfg.adversary;
    if (adversary_ != nullptr) {
      for (NodeId v : adversary_->initial_corruptions()) do_corrupt(v);
    }
  }

  unsigned node_jobs() const { return node_jobs_; }

  /// The delay policy in force.
  const NetPolicy& net() const override { return net_; }

  /// The sink actors (ProtocolContext::trace) must emit through. Safe to
  /// call BEFORE configure() — drivers need the pointer while
  /// constructing actors, before the shard count is known — because it
  /// always routes through the fan-in router: during sharded rounds a
  /// worker thread's events land in its bound buffer for the
  /// deterministic merge, and everywhere else (serial rounds, driver
  /// code, node_jobs == 1) they pass straight through to `downstream`.
  /// Returns nullptr when `downstream` is null, so untraced runs skip
  /// event construction entirely.
  trace::TraceSink* actor_sink(trace::TraceSink* downstream) {
    actor_router_.set_downstream(downstream);
    return downstream == nullptr ? nullptr : &actor_router_;
  }

  Round now() const { return round_; }

  /// Introspection for tests: the actor currently installed for `node`
  /// (the honest protocol node, or the adversary's replacement).
  Actor<Msg>* actor(NodeId node) const {
    AMBB_CHECK(node < n_);
    return actors_[node].get();
  }

  std::uint32_t n() const { return n_; }
  std::uint32_t f() const { return f_; }
  std::uint32_t corrupt_count() const { return corrupt_count_; }
  bool is_corrupt(NodeId node) const override {
    AMBB_CHECK(node < n_);
    return corrupt_[node] != 0;
  }
  std::uint32_t corruption_budget_left() const override {
    return f_ - corrupt_count_;
  }

  /// One RoundStats per executed round.
  const std::vector<RoundStats>& round_stats() const { return round_stats_; }

  /// Pre-size the per-round stats buffer; drivers that know the total
  /// round count call this so steady-state rounds never regrow it.
  void reserve_rounds(std::uint64_t rounds) {
    round_stats_.reserve(static_cast<std::size_t>(rounds));
  }

  /// Running aggregate of all executed rounds, folded via accumulate()
  /// as each step() completes (same totals as summarize(round_stats())).
  const RoundStatsSummary& summary() const { return summary_; }

  /// Execute one lock-step round.
  void step() {
    using Clock = std::chrono::steady_clock;
    RoundStats st;
    st.round = round_;
    const std::uint32_t corrupt_before = corrupt_count_;
    const std::uint64_t honest_bits_before = ledger_->honest_bits_total();
    const std::uint64_t adv_bits_before = ledger_->adversary_bits_total();

    cur_.reset(n_);
    erased_.clear();
    delayed_.clear();
    if (roster_dirty_) rebuild_roster();

    // 1. Honest actors act on their inboxes.
    auto t0 = Clock::now();
    if (node_jobs_ > 1) {
      run_honest_sharded();
    } else {
      for (NodeId v : honest_ids_) {
        RoundApi<Msg> api(v, n_, &cur_);
        actors_[v]->on_round(round_, inbox_of(v), TrafficView<Msg>{}, api);
      }
    }
    const std::size_t honest_deliveries = cur_.deliveries();
    auto t1 = Clock::now();

    // 2. Byzantine actors act, rushing: they see the honest traffic. The
    //    view reads through the log, so it survives the appends Byzantine
    //    actors make to the same log.
    const TrafficView<Msg> rushed(&cur_, honest_deliveries);
    for (NodeId v : corrupt_ids_) {
      RoundApi<Msg> api(v, n_, &cur_);
      actors_[v]->on_round(round_, inbox_of(v), rushed, api);
    }
    auto t2 = Clock::now();

    // 3. Strongly adaptive step: adversary inspects all round traffic,
    //    may corrupt senders and erase their deliveries.
    if (adversary_ != nullptr) {
      const TrafficView<Msg> all(&cur_, cur_.deliveries());
      adversary_->observe_round(round_, all, *this);
    }
    if (!erased_.empty()) {
      std::sort(erased_.begin(), erased_.end());
      erased_.erase(std::unique(erased_.begin(), erased_.end()),
                    erased_.end());
    }
    auto t3 = Clock::now();

    // 4. Charge costs: the policy runs once per RECORD, the charge covers
    //    all its surviving non-free deliveries at once. A sender corrupted
    //    during step 3 is corrupt for accounting purposes: its bits are
    //    not honest bits.
    {
      auto er = erased_.begin();
      for (const auto& rec : cur_.records()) {
        const std::size_t fanout = cur_.fanout(rec);
        std::uint64_t charged = fanout;
        if (rec.is_multicast() && !erased_covers(rec.base + rec.from)) {
          charged -= 1;  // the free self-copy (unless itself erased)
        }
        while (er != erased_.end() && *er < rec.base + fanout) {
          charged -= 1;
          ++er;
        }
        if (charged == 0) continue;
        ledger_->charge_n(policy_.slot(rec.msg, round_),
                          policy_.kind(rec.msg), policy_.size_bits(rec.msg),
                          !corrupt_[rec.from], charged);
      }
    }
    auto t4 = Clock::now();

    // 5. Deliver surviving messages for the next round. Inboxes reference
    //    the record payloads, so the log must outlive the next round's
    //    sends: double-buffer and swap instead of clearing in place.
    //    The inbox vectors share one arena, rewound wholesale here (the
    //    old contents were consumed in steps 1-2); each vector remembers
    //    its high-water size, so refilling is one arena bump per inbox.
    //    Only inboxes that actually received something last round need a
    //    reset — deliver_to tracked them (an inbox holds arena storage iff
    //    it was pushed to since its last reset, so nothing dangles when
    //    the arena rewinds).
    for (NodeId v : touched_inboxes_) inboxes_[v].reset();
    touched_inboxes_.clear();
    inbox_arena_->reset();
    //    Event queue first: deliveries deferred by earlier rounds that
    //    mature now land BEFORE this round's fresh lock-step traffic, in
    //    emission order (buckets are filled round by round). The bucket
    //    is moved into pending_ready_, which stays untouched until the
    //    next delivery phase — the same lifetime rule that lets inboxes
    //    reference prev_'s arena. Under lockstep the queue is provably
    //    empty and this block never runs.
    if (!pending_.empty()) {
      auto due = pending_.find(round_ + 1);
      if (due != pending_.end()) {
        pending_ready_ = std::move(due->second);
        pending_.erase(due);
        for (const PendingMsg& pm : pending_ready_) {
          auto& ib = inboxes_[pm.to];
          if (ib.empty()) touched_inboxes_.push_back(pm.to);
          ib.push_back(Delivery<Msg>{pm.from, &pm.msg});
        }
      }
    }
    if (net_.lockstep()) {
      //  Lock-step fast path: textually the pre-scheduler delivery loop,
      //  so existing goldens cannot move (no per-delivery policy draws).
      if (erased_.empty()) {
        for (const auto& rec : cur_.records()) {
          if (rec.is_multicast()) {
            for (NodeId v = 0; v < n_; ++v) deliver_to(v, rec);
          } else {
            deliver_to(rec.to, rec);
          }
        }
      } else {
        auto er = erased_.begin();
        for (const auto& rec : cur_.records()) {
          if (rec.is_multicast()) {
            for (NodeId v = 0; v < n_; ++v) {
              if (er != erased_.end() && *er == rec.base + v) {
                ++er;
                continue;
              }
              deliver_to(v, rec);
            }
          } else {
            if (er != erased_.end() && *er == rec.base) {
              ++er;
              continue;
            }
            deliver_to(rec.to, rec);
          }
        }
      }
    } else {
      //  Timing path: per delivery, combine the policy's seeded base
      //  draw with any adversary delay() requests (summed, then clamped
      //  to the policy bound) and either deliver next round or copy the
      //  payload into the due-round bucket. Erasure wins over delay.
      if (!delayed_.empty()) std::sort(delayed_.begin(), delayed_.end());
      auto er = erased_.begin();
      auto dl = delayed_.begin();
      for (const auto& rec : cur_.records()) {
        const std::size_t fanout = cur_.fanout(rec);
        for (std::size_t d = rec.base; d < rec.base + fanout; ++d) {
          if (er != erased_.end() && *er == d) {
            ++er;
            while (dl != delayed_.end() && dl->first == d) ++dl;
            continue;
          }
          std::uint64_t extra = net_.base_extra(round_, d);
          while (dl != delayed_.end() && dl->first == d) {
            extra += dl->second;
            ++dl;
          }
          const std::uint32_t x = net_.clamp_extra(extra);
          const NodeId v = cur_.recipient_of(rec, d);
          if (x == 0) {
            deliver_to(v, rec);
            continue;
          }
          const Round land = round_ + 1 + x;
          pending_[land].push_back(PendingMsg{rec.from, v, rec.msg});
          st.delayed += 1;
          if (trace_ != nullptr) {
            trace::Event ev;
            ev.kind = trace::EventKind::kDeliveryDelayed;
            ev.round = round_;
            ev.node = rec.from;
            ev.subject = v;
            ev.count = d;
            ev.value = land;
            trace_->on_event(ev);
          }
        }
      }
    }
    auto t5 = Clock::now();

    st.records = static_cast<std::uint32_t>(cur_.records().size());
    st.deliveries = cur_.deliveries();
    st.honest_bits = ledger_->honest_bits_total() - honest_bits_before;
    st.adversary_bits = ledger_->adversary_bits_total() - adv_bits_before;
    st.erasures = static_cast<std::uint32_t>(erased_.size());
    st.corruptions = corrupt_count_ - corrupt_before;
    auto ns = [](Clock::time_point a, Clock::time_point b) {
      return static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(b - a)
              .count());
    };
    st.ns_honest = ns(t0, t1);
    st.ns_byzantine = ns(t1, t2);
    st.ns_adversary = ns(t2, t3);
    st.ns_accounting = ns(t3, t4);
    st.ns_delivery = ns(t4, t5);
    accumulate(summary_, st);
    round_stats_.push_back(st);
    {
      trace::Event ev;
      ev.kind = trace::EventKind::kRoundEnd;
      ev.round = st.round;
      ev.stats = st;
      trace::emit(trace_, ev);
    }

    std::swap(cur_, prev_);
    ++round_;
  }

  void run_rounds(std::uint64_t rounds) {
    for (std::uint64_t i = 0; i < rounds; ++i) step();
  }

 private:
  /// Per-worker private state for one sharded honest phase. The log has
  /// its own arena, so workers never contend on an allocator; events are
  /// buffered by value (Event is self-contained: detail is a literal).
  struct Shard {
    TrafficLog<Msg> log;
    std::vector<trace::Event> events;
    std::size_t first = 0;  ///< range [first, last) into honest_ids_
    std::size_t last = 0;
    std::exception_ptr error;
  };

  /// Sharded form of phase 1. Equivalence argument: honest_ids_ is
  /// ascending and is split into contiguous ranges, one per shard, so
  /// concatenating the shard logs in shard order visits actors in exactly
  /// the serial order. Re-adding each record through cur_ recomputes the
  /// delivery bases against the merged counter, reproducing the serial
  /// bases — everything downstream (erase indices, charging, delivery,
  /// rushing views) reads cur_ and cannot tell the difference.
  void run_honest_sharded() {
    const std::size_t h = honest_ids_.size();
    const unsigned w = node_jobs_;
    if (shards_.size() != w) shards_.resize(w);
    if (pool_ == nullptr) pool_ = std::make_unique<ShardPool>(w);
    const std::size_t chunk = (h + w - 1) / w;
    for (unsigned s = 0; s < w; ++s) {
      shards_[s].first = std::min(static_cast<std::size_t>(s) * chunk, h);
      shards_[s].last =
          std::min(static_cast<std::size_t>(s + 1) * chunk, h);
    }
    pool_->run(&Simulation::shard_entry, this);
    // First error in shard order, so a throwing actor fails the run
    // deterministically regardless of worker scheduling. The round's
    // partial traffic is dropped with the exception.
    for (Shard& sh : shards_) {
      if (sh.error) std::rethrow_exception(sh.error);
    }
    trace::TraceSink* downstream = actor_router_.downstream();
    for (Shard& sh : shards_) {
      if (downstream != nullptr) {
        for (const trace::Event& ev : sh.events) downstream->on_event(ev);
      }
      for (const auto& rec : sh.log.records()) {
        if (rec.is_multicast()) {
          cur_.add_multicast(rec.from, rec.msg);
        } else {
          cur_.add_unicast(rec.from, rec.to, rec.msg);
        }
      }
    }
  }

  static void shard_entry(void* ctx, unsigned shard) {
    static_cast<Simulation*>(ctx)->run_shard(shard);
  }

  void run_shard(unsigned s) {
    Shard& sh = shards_[s];
    sh.error = nullptr;
    sh.log.reset(n_);
    sh.events.clear();
    const bool buffer_trace = actor_router_.downstream() != nullptr;
    if (buffer_trace) ActorTraceRouter::bind_buffer(&sh.events);
    try {
      for (std::size_t i = sh.first; i < sh.last; ++i) {
        const NodeId v = honest_ids_[i];
        RoundApi<Msg> api(v, n_, &sh.log);
        actors_[v]->on_round(round_, inbox_of(v), TrafficView<Msg>{}, api);
      }
    } catch (...) {
      sh.error = std::current_exception();
    }
    if (buffer_trace) ActorTraceRouter::bind_buffer(nullptr);
  }

  std::span<const Delivery<Msg>> inbox_of(NodeId v) const {
    return std::span<const Delivery<Msg>>(inboxes_[v].data(),
                                          inboxes_[v].size());
  }

  void deliver_to(NodeId v, const typename TrafficLog<Msg>::Record& rec) {
    auto& ib = inboxes_[v];
    if (ib.empty()) touched_inboxes_.push_back(v);
    ib.push_back(Delivery<Msg>{rec.from, &rec.msg});
  }

  bool erased_covers(std::size_t d) const {
    return std::binary_search(erased_.begin(), erased_.end(), d);
  }

  /// Recompute the honest/corrupt iteration orders (ascending node id,
  /// matching the original skip-loop order). Runs only when the corruption
  /// set changed, not every round.
  void rebuild_roster() {
    honest_ids_.clear();
    corrupt_ids_.clear();
    for (NodeId v = 0; v < n_; ++v) {
      (corrupt_[v] ? corrupt_ids_ : honest_ids_).push_back(v);
    }
    roster_dirty_ = false;
  }

  void corrupt(NodeId node) override { do_corrupt(node); }

  void erase(std::size_t delivery_index) override {
    AMBB_CHECK(delivery_index < cur_.deliveries());
    const auto& rec = cur_.records()[cur_.record_of(delivery_index)];
    AMBB_CHECK_MSG(corrupt_[rec.from],
                   "after-the-fact removal requires a corrupt sender");
    erased_.push_back(delivery_index);
    trace::Event ev;
    ev.kind = trace::EventKind::kAdversaryAction;
    ev.round = round_;
    ev.node = rec.from;
    ev.count = delivery_index;
    ev.detail = "erase";
    trace::emit(trace_, ev);
  }

  void delay(std::size_t delivery_index, std::uint32_t extra_rounds) override {
    AMBB_CHECK_MSG(!net_.lockstep(),
                   "timing faults need a bounded or async delay policy");
    AMBB_CHECK(delivery_index < cur_.deliveries());
    if (extra_rounds == 0) return;
    delayed_.emplace_back(delivery_index, extra_rounds);
    if (trace_ != nullptr) {
      const auto& rec = cur_.records()[cur_.record_of(delivery_index)];
      trace::Event ev;
      ev.kind = trace::EventKind::kAdversaryAction;
      ev.round = round_;
      ev.node = rec.from;
      ev.count = delivery_index;
      ev.detail = "delay";
      trace_->on_event(ev);
    }
  }

  void do_corrupt(NodeId node) {
    AMBB_CHECK(node < n_);
    if (corrupt_[node]) return;
    AMBB_CHECK_MSG(corrupt_count_ < f_, "corruption budget f exhausted");
    corrupt_[node] = 1;
    ++corrupt_count_;
    roster_dirty_ = true;
    AMBB_CHECK(adversary_ != nullptr);
    actors_[node] = adversary_->actor_for(node);
    trace::Event ev;
    ev.kind = trace::EventKind::kAdversaryAction;
    ev.round = round_;
    ev.node = node;
    ev.detail = "corrupt";
    trace::emit(trace_, ev);
  }

  std::uint32_t n_;
  std::uint32_t f_;
  CostLedger* ledger_;
  Policy policy_;
  Adversary<Msg>* adversary_ = nullptr;
  Round round_ = 0;
  std::vector<std::uint8_t> corrupt_;
  std::uint32_t corrupt_count_ = 0;
  std::vector<NodeId> honest_ids_;   ///< cached actor iteration order
  std::vector<NodeId> corrupt_ids_;  ///< (rebuilt when corruptions change)
  bool roster_dirty_ = true;
  std::vector<std::unique_ptr<Actor<Msg>>> actors_;
  /// Inbox buffers draw from a shared arena rewound each round (entries
  /// point into prev_'s records). Declared before inboxes_ so the vectors
  /// die before their backing storage.
  std::unique_ptr<Arena> inbox_arena_;
  std::vector<ArenaVector<Delivery<Msg>>> inboxes_;
  std::vector<NodeId> touched_inboxes_;  ///< pushed-to since their reset
  TrafficLog<Msg> cur_;   ///< records emitted this round
  TrafficLog<Msg> prev_;  ///< last round's records, referenced by inboxes
  /// Delivery indices erased this round (sorted + deduped after step 3).
  std::vector<std::size_t> erased_;
  /// Adversary delay() requests of this round: (delivery index, extra
  /// rounds). Sorted in the delivery phase; duplicates sum.
  std::vector<std::pair<std::size_t, std::uint32_t>> delayed_;
  /// One payload copy per deferred delivery, bucketed by the round whose
  /// inboxes it lands in. A bucket lives in the map until its due round's
  /// delivery phase, then moves to pending_ready_ for one round (the
  /// inboxes reference it — same lifetime rule as prev_). Empty forever
  /// under lockstep.
  struct PendingMsg {
    NodeId from;
    NodeId to;
    Msg msg;
  };
  std::map<Round, std::vector<PendingMsg>> pending_;
  std::vector<PendingMsg> pending_ready_;
  NetPolicy net_;
  bool configured_ = false;
  std::vector<RoundStats> round_stats_;
  RoundStatsSummary summary_;
  trace::TraceSink* trace_ = nullptr;
  /// Node-sharding state (all idle when node_jobs_ == 1). The pool and
  /// shard buffers are created lazily on the first sharded round and
  /// persist across rounds — steady-state sharded rounds allocate
  /// nothing beyond what the serial path does.
  unsigned node_jobs_ = 1;
  std::unique_ptr<ShardPool> pool_;
  std::vector<Shard> shards_;
  ActorTraceRouter actor_router_;
};

}  // namespace ambb
