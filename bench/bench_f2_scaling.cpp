// Experiment F2 — scaling exponents behind Table 1: the log-log slope of
// steady-state amortized cost vs n should approach the polynomial degree
// of each protocol's amortized bound:
//   Algorithm 4        ~ n^1      (with a constant-degree expander)
//   Algorithm 5.2      ~ n^2
//   MR-style baseline  ~ n^2
//   phase-king         ~ n^2..n^3 (textbook variant, see DESIGN.md)
//   Dolev-Strong       ~ n^3      (worst case, plain signatures)
#include "bench_common.hpp"

#include "bb/dolev_strong.hpp"
#include "bb/linear_bb.hpp"
#include "bb/phase_king.hpp"
#include "bb/quadratic_bb.hpp"

namespace ambb::bench {
namespace {

struct Series {
  std::string name;
  double expected_low, expected_high;
  std::vector<double> ns, costs;
};

void run_scaling() {
  print_header(
      "F2 / Table 1 scaling exponents: log-log slope of steady-state "
      "amortized bits vs n",
      "slopes ~1 (Alg.4), ~2 (Alg.5.2, MR baseline), ~3 (Dolev-Strong "
      "worst case)");

  // The whole grid is expanded up front and executed as one engine
  // batch; each series then slices its results out in submission order
  // (the engine pins that order, so the numbers below are independent
  // of AMBB_BENCH_JOBS).
  std::vector<Job> jobs;

  Series alg4{"Alg.4 (mixed adv, eps=0.2)", 0.7, 1.6, {}, {}};
  for (std::uint32_t n : {24u, 32u, 48u, 64u}) {
    linear::LinearConfig cfg;
    cfg.n = n;
    cfg.f = static_cast<std::uint32_t>(0.3 * n);
    cfg.slots = 3 * n;
    cfg.seed = 7;
    cfg.eps = 0.2;  // constant expander degree across this sweep
    cfg.adversary = "mixed";
    jobs.push_back(Job{"alg4/mixed/n" + std::to_string(n),
                       [cfg] { return linear::run_linear(cfg); }});
    alg4.ns.push_back(n);
  }

  Series mr{"MR-style baseline (mixed adv)", 1.6, 2.5, {}, {}};
  for (std::uint32_t n : {24u, 32u, 48u, 64u}) {
    linear::LinearConfig cfg;
    cfg.n = n;
    cfg.f = static_cast<std::uint32_t>(0.3 * n);
    cfg.slots = 8;
    cfg.seed = 7;
    cfg.eps = 0.2;
    cfg.adversary = "mixed";
    cfg.opts = linear::Options::mr_baseline();
    jobs.push_back(Job{"mr-baseline/mixed/n" + std::to_string(n),
                       [cfg] { return linear::run_linear(cfg); }});
    mr.ns.push_back(n);
  }

  Series s_quad{"Alg.5.2 (silent adv, f=n/2)", 1.5, 2.6, {}, {}};
  for (std::uint32_t n : {12u, 16u, 24u, 32u}) {
    quad::QuadConfig cfg;
    cfg.n = n;
    cfg.f = n / 2;
    cfg.slots = 3 * n;
    cfg.seed = 7;
    cfg.adversary = "silent";
    jobs.push_back(Job{"alg5.2/silent/n" + std::to_string(n),
                       [cfg] { return quad::run_quadratic(cfg); }});
    s_quad.ns.push_back(n);
  }

  Series dsw{"Dolev-Strong plain (stagger, f=n/2)", 2.3, 3.4, {}, {}};
  for (std::uint32_t n : {12u, 16u, 24u, 32u}) {
    ds::DsConfig cfg;
    cfg.n = n;
    cfg.f = n / 2;
    cfg.slots = 4;
    cfg.seed = 7;
    cfg.adversary = "stagger";
    jobs.push_back(Job{"dolev-strong/stagger/n" + std::to_string(n),
                       [cfg] { return ds::run_dolev_strong(cfg); }});
    dsw.ns.push_back(n);
  }

  Series s_pk{"phase-king (confuse, f<n/3)", 1.6, 3.2, {}, {}};
  for (std::uint32_t n : {10u, 13u, 19u, 25u}) {
    pk::PkConfig cfg;
    cfg.n = n;
    cfg.f = (n - 1) / 3;
    cfg.slots = 4;
    cfg.seed = 7;
    cfg.adversary = "confuse";
    jobs.push_back(Job{"phase-king/confuse/n" + std::to_string(n),
                       [cfg] { return pk::run_phase_king(cfg); }});
    s_pk.ns.push_back(n);
  }

  const std::vector<RunResult> results = run_jobs(jobs);
  std::size_t i = 0;
  for (std::uint32_t n : {24u, 32u, 48u, 64u}) {
    alg4.costs.push_back(results[i++].amortized_tail(2 * n));
  }
  for (int k = 0; k < 4; ++k) {
    mr.costs.push_back(results[i++].amortized_tail(4));
  }
  for (std::uint32_t n : {12u, 16u, 24u, 32u}) {
    s_quad.costs.push_back(results[i++].amortized_tail(2 * n));
  }
  for (int k = 0; k < 4; ++k) dsw.costs.push_back(results[i++].amortized());
  for (int k = 0; k < 4; ++k) s_pk.costs.push_back(results[i++].amortized());

  TextTable t({"protocol", "n sweep", "measured slope", "paper-expected"});
  for (const Series* s : {&alg4, &mr, &s_quad, &dsw, &s_pk}) {
    const double slope = loglog_slope(s->ns, s->costs);
    char sweep[64];
    std::snprintf(sweep, sizeof sweep, "%.0f..%.0f", s->ns.front(),
                  s->ns.back());
    char expect[64];
    std::snprintf(expect, sizeof expect, "[%.1f, %.1f]", s->expected_low,
                  s->expected_high);
    t.add_row({s->name, sweep, TextTable::num(slope, 2), expect});
  }
  std::printf("%s", t.render().c_str());
}

void BM_ScalingLinear(::benchmark::State& state) {
  linear::LinearConfig cfg;
  cfg.n = static_cast<std::uint32_t>(state.range(0));
  cfg.f = static_cast<std::uint32_t>(0.3 * cfg.n);
  cfg.slots = 16;
  cfg.eps = 0.2;
  cfg.seed = 7;
  cfg.adversary = "mixed";
  for (auto _ : state) {
    auto r = linear::run_linear(cfg);
    ::benchmark::DoNotOptimize(r.honest_bits);
  }
}
BENCHMARK(BM_ScalingLinear)->Arg(24)->Arg(48)->Unit(::benchmark::kMillisecond);

}  // namespace
}  // namespace ambb::bench

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ambb::bench::run_scaling();
  return ambb::bench::finish_bench("f2_scaling");
}
