file(REMOVE_RECURSE
  "CMakeFiles/test_linear_invariants.dir/test_linear_invariants.cpp.o"
  "CMakeFiles/test_linear_invariants.dir/test_linear_invariants.cpp.o.d"
  "test_linear_invariants"
  "test_linear_invariants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linear_invariants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
