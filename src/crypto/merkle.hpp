// Merkle-tree commitment over erasure-coded chunks (DESIGN.md §13).
//
// The extension protocol's base-BB phase agrees only on a root digest;
// each dispersed chunk travels with its authentication path so receivers
// can verify it is THE column the committed codeword has at that index.
// Leaf and interior hashes are domain-separated (0x00 / 0x01 prefix
// bytes) so a proof for an interior node can never be replayed as a
// chunk, and the leaf hash binds the column index so a valid chunk for
// column i cannot be presented as column j.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/sha256.hpp"

namespace ambb::merkle {

/// H(0x00 || index || chunk): the commitment to one column.
Digest leaf_hash(std::uint32_t index, std::span<const std::uint8_t> chunk);

/// H(0x01 || left || right): one interior node.
Digest node_hash(const Digest& left, const Digest& right);

/// Authentication path for one leaf: the sibling digest at every level,
/// leaf-adjacent first. Length = ceil(log2(n_leaves)) (0 for one leaf).
using Path = std::vector<Digest>;

/// Complete binary Merkle tree over n leaves, padded to the next power of
/// two with all-zero digests (a zero digest is never a valid leaf_hash
/// preimage under the domain separation above, SHA-256 assumed
/// collision-resistant).
class Tree {
 public:
  static Tree build(const std::vector<Digest>& leaves);

  const Digest& root() const { return levels_.back()[0]; }
  std::uint32_t n_leaves() const { return n_leaves_; }

  Path prove(std::uint32_t index) const;

 private:
  std::uint32_t n_leaves_ = 0;
  /// levels_[0] = padded leaves, levels_.back() = {root}.
  std::vector<std::vector<Digest>> levels_;
};

/// Verify that `leaf` sits at `index` of the tree with the given root over
/// `n_leaves` leaves. Rejects out-of-range indices and wrong-length paths.
bool verify(const Digest& root, std::uint32_t n_leaves, std::uint32_t index,
            const Digest& leaf, const Path& path);

}  // namespace ambb::merkle
