#!/usr/bin/env bash
# Tier-1 gate plus the sanitizer passes.
#
#   scripts/ci.sh          # full: tier-1, trace lane, TSan engine, ASan+UBSan
#   scripts/ci.sh tier1    # only the tier-1 build + full test suite
#   scripts/ci.sh trace    # only the trace suite (`ctest -L trace`) + a
#                          # sweep --trace-dir smoke run
#   scripts/ci.sh tsan     # only the TSan build + `ctest -L "engine|ext|arena|sched"`
#   scripts/ci.sh asan     # only the ASan+UBSan build + `ctest -L "adversary|engine|ext|arena|sched"`
#   scripts/ci.sh perf_smoke  # bench_f2_scaling smoke rows vs the
#                             # committed BENCH_f2_scaling.json
#
# The TSan stage rebuilds into build-tsan/ (see CMakePresets.json) and runs
# exactly the engine-labelled tests: they exercise the worker pool with
# real protocol drivers, so a data race anywhere on the job path —
# engine, sweep expansion, registry, simulator — trips it.
#
# The trace stage runs the TraceSink suite (golden JSONL, pure-observer
# and --jobs determinism checks) and then smoke-tests the end-to-end
# surface: ambb_sweep --trace-dir must write one trace per job and exit
# zero. The JsonlSink-under-the-worker-pool case is additionally covered
# by the TSan stage, because test_trace_determinism carries the engine
# label too.
#
# The ASan+UBSan stage rebuilds into build-asan/ and runs the adversary
# and engine suites: the fault-injection paths (after-the-fact erasure,
# mid-run actor replacement, staggered-release buffers) are exactly where
# a stale Delivery pointer or index overflow would hide, and the
# fuzz-schedule tests drive them through hundreds of random compositions.
#
# Both sanitizer stages also take the ext suite (erasure coder, Merkle
# proofs, the long-message extension driver): GF(2^8) table indexing and
# the nested base-family simulation inside each ext cell are prime
# out-of-bounds / shared-state candidates. The arena suite (per-round
# arena, interning caches — DESIGN.md §14) rides both sanitizer lanes
# too: raw bump-pointer memory and thread_local caches under the worker
# pool are exactly what ASan/TSan are for. test_alloc_hotpath stays out
# of the sanitizer lanes by design (the sanitizer allocators bypass the
# counting operator-new hooks). The sched suite (event-queue scheduler,
# delay policies, timing faults — DESIGN.md §16) rides both sanitizer
# lanes too: the pending-delivery queue holds payload copies across
# rounds and is filled from the sharded delivery phase, exactly the
# lifetime + threading mix the sanitizers exist to check.
#
# The perf_smoke stage is the measurement-drift gate for the zero-copy
# hot path: it runs bench_f2_scaling in AMBB_F2_SMOKE=1 mode (one small-n
# row per series, timing loops filtered out) and diffs every measurement
# field against the committed BENCH_f2_scaling.json by run label
# (scripts/check_bench_fields.py). Wall-clock and ns_* fields are
# excluded: the gate catches semantic drift, not machine noise.
#
# Both the tsan and perf_smoke stages additionally run an AMBB_NODE_JOBS=4
# axis (node-sharded rounds, DESIGN.md §15): the shard-labelled
# byte-identity suite under TSan, and a second smoke bench pass diffed
# against the same committed golden — proving --node-jobs never moves a
# measured number.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 2)"
stage="${1:-all}"

tier1() {
  echo "== tier-1: configure + build =="
  cmake --preset default
  cmake --build --preset default -j "$jobs"
  echo "== tier-1: ctest =="
  ctest --preset default -j "$jobs"
}

trace() {
  echo "== trace: configure + build =="
  cmake --preset default
  cmake --build --preset default -j "$jobs"
  echo "== trace: ctest -L trace =="
  ctest --preset trace -j "$jobs"
  echo "== trace: sweep --trace-dir smoke =="
  local dir
  dir="$(mktemp -d)"
  (cd "$dir" && "$OLDPWD/build/tools/ambb_sweep" \
      --spec "$OLDPWD/tools/specs/f2_scaling.spec" \
      --filter alg4 --trace-dir traces)
  ls "$dir"/traces/*.jsonl >/dev/null
  echo "== trace: payload-scaling sweep smoke =="
  (cd "$dir" && "$OLDPWD/build/tools/ambb_sweep" \
      --spec "$OLDPWD/tools/specs/payload_scaling.spec" \
      --filter ext-lin --out payload_smoke)
  rm -rf "$dir"
}

tsan() {
  echo "== tsan: configure + build =="
  cmake --preset tsan
  cmake --build --preset tsan -j "$jobs"
  echo "== tsan: ctest -L 'engine|ext|arena|sched' =="
  # halt_on_error promotes any race report to a test failure.
  TSAN_OPTIONS="halt_on_error=1" ctest --preset tsan -j "$jobs"
  echo "== tsan: node-jobs axis (AMBB_NODE_JOBS=4) =="
  # Second pass over the shard suite with a pinned shard count: the
  # byte-identity comparisons rerun with 4-way sharded rounds under TSan,
  # racing the worker pool, the trace router, and every thread_local
  # cache on the actor path.
  TSAN_OPTIONS="halt_on_error=1" AMBB_NODE_JOBS=4 \
    ctest --preset tsan -L shard -j "$jobs"
}

asan() {
  echo "== asan: configure + build =="
  cmake --preset asan
  cmake --build --preset asan -j "$jobs"
  echo "== asan: ctest -L 'adversary|engine|ext|arena|sched' =="
  ASAN_OPTIONS="halt_on_error=1:detect_leaks=0" \
    UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    ctest --preset asan -j "$jobs"
}

perf_smoke() {
  echo "== perf_smoke: configure + build =="
  cmake --preset default
  cmake --build --preset default -j "$jobs" --target bench_f2_scaling
  echo "== perf_smoke: bench_f2_scaling (AMBB_F2_SMOKE=1) =="
  local dir
  dir="$(mktemp -d)"
  # --benchmark_filter matches nothing: skip the wall-clock timing loops,
  # the gate only needs the checked measurement rows.
  (cd "$dir" && AMBB_F2_SMOKE=1 "$OLDPWD/build/bench/bench_f2_scaling" \
      --benchmark_filter='^$')
  echo "== perf_smoke: measurement-field diff vs committed golden =="
  python3 scripts/check_bench_fields.py \
      BENCH_f2_scaling.json "$dir/BENCH_f2_scaling.json"
  echo "== perf_smoke: node-jobs axis (AMBB_NODE_JOBS=4) =="
  # Same smoke rows with 4-way sharded rounds: every measurement field
  # must still match the committed golden byte-for-byte (the sharding
  # determinism claim, checked end-to-end through the bench path).
  local dir4
  dir4="$(mktemp -d)"
  (cd "$dir4" && AMBB_F2_SMOKE=1 AMBB_NODE_JOBS=4 \
      "$OLDPWD/build/bench/bench_f2_scaling" --benchmark_filter='^$')
  python3 scripts/check_bench_fields.py \
      BENCH_f2_scaling.json "$dir4/BENCH_f2_scaling.json"
  rm -rf "$dir" "$dir4"
}

case "$stage" in
  tier1) tier1 ;;
  trace) trace ;;
  tsan) tsan ;;
  asan) asan ;;
  perf_smoke) perf_smoke ;;
  all)
    tier1
    trace
    tsan
    asan
    perf_smoke
    ;;
  *)
    echo "usage: $0 [tier1|trace|tsan|asan|perf_smoke|all]" >&2
    exit 2
    ;;
esac

echo "ci: OK ($stage)"
