file(REMOVE_RECURSE
  "CMakeFiles/test_signer.dir/test_signer.cpp.o"
  "CMakeFiles/test_signer.dir/test_signer.cpp.o.d"
  "test_signer"
  "test_signer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_signer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
