#include "graph/expander.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace ambb {
namespace {

TEST(Graph, AddEdgeSymmetricNoDuplicates) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 0);  // duplicate, collapsed
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Graph, SelfLoopRejected) {
  Graph g(4);
  EXPECT_THROW(g.add_edge(2, 2), CheckError);
}

TEST(Graph, NeighborhoodSize) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(3, 4);
  // N({0, 3}) = {1, 2, 4}
  EXPECT_EQ(g.neighborhood_size({0, 3}), 3u);
  // N({1}) = {0}
  EXPECT_EQ(g.neighborhood_size({1}), 1u);
}

TEST(RandomRegular, DegreesNearTarget) {
  Rng rng(3);
  Graph g = random_regular_graph(100, 8, rng);
  for (std::uint32_t v = 0; v < 100; ++v) {
    EXPECT_GE(g.degree(v), 4u);
    EXPECT_LE(g.degree(v), 8u);
  }
}

TEST(RandomRegular, DeterministicGivenRngState) {
  Rng r1(9), r2(9);
  Graph a = random_regular_graph(40, 6, r1);
  Graph b = random_regular_graph(40, 6, r2);
  for (std::uint32_t v = 0; v < 40; ++v) {
    EXPECT_EQ(a.neighbors(v), b.neighbors(v));
  }
}

TEST(Spectral, SecondEigenvalueBelowDegree) {
  Rng rng(5);
  Graph g = random_regular_graph(128, 10, rng);
  Rng r2 = rng.fork();
  const double lambda = second_eigenvalue_estimate(g, r2);
  // Random regular graphs are near-Ramanujan: lambda2 well below d.
  EXPECT_LT(lambda, 10.0);
  EXPECT_GT(lambda, 0.0);
}

TEST(Expansion, SampledCheckAcceptsGoodGraph) {
  Rng rng(7);
  Graph g = random_regular_graph(100, 16, rng);
  Rng r2 = rng.fork();
  EXPECT_TRUE(sampled_expansion_check(g, 0.2, 0.5, 100, r2));
}

TEST(Expansion, SampledCheckRejectsNonExpandingGraph) {
  // A perfect matching: |N(S)| = |S| for every S, so no sample can beat
  // beta * n = 12 > 10 = |S|.
  Graph g(20);
  for (std::uint32_t i = 0; i < 10; ++i) g.add_edge(2 * i, 2 * i + 1);
  Rng rng(11);
  EXPECT_FALSE(sampled_expansion_check(g, 0.5, 0.6, 200, rng));
}

struct ExpanderParam {
  std::uint32_t n;
  double eps;
};

class BuildExpanderTest : public ::testing::TestWithParam<ExpanderParam> {};

TEST_P(BuildExpanderTest, MeetsPaperParameters) {
  const auto [n, eps] = GetParam();
  Graph g = build_expander(n, eps, 1234);
  // Independent re-check with a different sampler seed: the graph must be
  // an (n, 2eps, 1-2eps)-expander on fresh random subsets.
  Rng rng(999);
  EXPECT_TRUE(sampled_expansion_check(g, 2 * eps, 1 - 2 * eps, 300, rng));
  // Constant degree: independent of n for fixed eps.
  EXPECT_LE(g.max_degree(), std::max<std::uint32_t>(
                                64, static_cast<std::uint32_t>(16.0 / eps)));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BuildExpanderTest,
    ::testing::Values(ExpanderParam{16, 0.1}, ExpanderParam{32, 0.1},
                      ExpanderParam{64, 0.1}, ExpanderParam{128, 0.1},
                      ExpanderParam{64, 0.05}, ExpanderParam{64, 0.2},
                      ExpanderParam{48, 0.15}));

TEST(BuildExpander, DeterministicForSameSeed) {
  Graph a = build_expander(50, 0.1, 77);
  Graph b = build_expander(50, 0.1, 77);
  for (std::uint32_t v = 0; v < 50; ++v) {
    EXPECT_EQ(a.neighbors(v), b.neighbors(v));
  }
}

TEST(BuildExpander, RejectsBadEps) {
  EXPECT_THROW(build_expander(16, 0.0, 1), CheckError);
  EXPECT_THROW(build_expander(16, 0.5, 1), CheckError);
}

}  // namespace
}  // namespace ambb
