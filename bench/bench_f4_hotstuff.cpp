// Experiment F4 — Appendix A: HotStuff without a fallback path loses
// liveness under a selective-send leader, permanently; Algorithm 4
// commits everywhere in the identical scenario at linear steady-state
// cost. Prints the per-slot honest commit fraction for both protocols.
#include "bench_common.hpp"

#include "bb/hotstuff_demo.hpp"
#include "bb/linear_bb.hpp"

namespace ambb::bench {
namespace {

void run_comparison() {
  const std::uint32_t n = 16;
  const std::uint32_t f = 5;
  const Slot slots = 16;
  print_header(
      "F4 / Appendix A: selective-send leaders vs liveness (n=16, f=5)",
      "HotStuff w/o fallback: <= f honest nodes stall forever; Algorithm 4 "
      "recovers via Query/Respond");

  hs::HsConfig hcfg;
  hcfg.n = n;
  hcfg.f = f;
  hcfg.slots = slots;
  hcfg.seed = 3;
  hcfg.adversary = "selective";

  linear::LinearConfig lcfg;
  lcfg.n = n;
  lcfg.f = f;
  lcfg.slots = slots;
  lcfg.seed = 3;
  lcfg.adversary = "selective";

  // HotStuff-without-fallback stalling under selective leaders is the
  // claim under test, so its termination check stays out of the tally.
  const std::vector<RunResult> results = run_jobs(
      {Job{"hotstuff/selective", [hcfg] { return hs::run_hotstuff_demo(hcfg); },
           /*allow_stall=*/true},
       Job{"linear/selective", [lcfg] { return linear::run_linear(lcfg); }}});
  const RunResult& hr = results[0];
  const RunResult& lr = results[1];

  auto commit_fraction = [n](const RunResult& r, Slot k) {
    std::uint32_t committed = 0, honest = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (r.corrupt[v]) continue;
      ++honest;
      if (r.commits.has(v, k)) ++committed;
    }
    return static_cast<double>(committed) / honest;
  };

  TextTable t({"slot", "leader", "corrupt?", "hotstuff commit frac",
               "alg4 commit frac"});
  for (Slot k = 1; k <= slots; ++k) {
    t.add_row({std::to_string(k), std::to_string(hr.senders[k]),
               hr.corrupt[hr.senders[k]] ? "yes" : "no",
               TextTable::num(commit_fraction(hr, k), 2),
               TextTable::num(commit_fraction(lr, k), 2)});
  }
  std::printf("%s", t.render().c_str());

  const auto stalls = check_termination(hr);
  std::printf(
      "HotStuff stalled node-slots: %zu (expected %u per corrupt-leader "
      "slot); Algorithm 4 stalled: %zu\n",
      stalls.size(), f, check_termination(lr).size());
  std::printf("Honest bits — hotstuff: %s total, alg4: %s total\n",
              TextTable::bits_human(
                  static_cast<double>(hr.honest_bits)).c_str(),
              TextTable::bits_human(
                  static_cast<double>(lr.honest_bits)).c_str());
}

void BM_HotstuffSlot(::benchmark::State& state) {
  hs::HsConfig cfg;
  cfg.n = 16;
  cfg.f = 5;
  cfg.slots = 16;
  cfg.seed = 3;
  cfg.adversary = state.range(0) == 0 ? "none" : "selective";
  for (auto _ : state) {
    auto r = hs::run_hotstuff_demo(cfg);
    ::benchmark::DoNotOptimize(r.honest_bits);
  }
  state.SetLabel(cfg.adversary);
}
BENCHMARK(BM_HotstuffSlot)->Arg(0)->Arg(1)->Unit(::benchmark::kMillisecond);

}  // namespace
}  // namespace ambb::bench

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ambb::bench::run_comparison();
  return ambb::bench::finish_bench("f4_hotstuff");
}
