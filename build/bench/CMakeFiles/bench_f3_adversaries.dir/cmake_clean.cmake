file(REMOVE_RECURSE
  "CMakeFiles/bench_f3_adversaries.dir/bench_f3_adversaries.cpp.o"
  "CMakeFiles/bench_f3_adversaries.dir/bench_f3_adversaries.cpp.o.d"
  "bench_f3_adversaries"
  "bench_f3_adversaries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_adversaries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
