// Helper shared by all protocol drivers to package a finished simulation
// into a RunResult.
#pragma once

#include <functional>

#include "runner/result.hpp"
#include "sim/cost.hpp"
#include "sim/stats.hpp"

namespace ambb {

inline RunResult assemble_result(
    std::uint32_t n, std::uint32_t f, Slot slots, Round rounds,
    const CostLedger& ledger, const CommitLog& commits,
    const std::vector<RoundStats>& round_stats,
    const std::function<bool(NodeId)>& is_corrupt,
    const std::function<NodeId(Slot)>& sender_of,
    const std::function<Value(Slot)>& input_for_slot) {
  RunResult res;
  res.round_stats = round_stats;
  res.n = n;
  res.f = f;
  res.slots = slots;
  res.rounds = rounds;
  res.honest_bits = ledger.honest_bits_total();
  res.adversary_bits = ledger.adversary_bits_total();
  res.honest_msgs = ledger.honest_msgs_total();
  res.per_slot_bits = ledger.per_slot();
  res.kind_names = ledger.kind_names();
  res.per_kind_bits = ledger.per_kind();
  res.commits = commits;
  res.corrupt.resize(n);
  for (NodeId v = 0; v < n; ++v) res.corrupt[v] = is_corrupt(v) ? 1 : 0;
  res.senders.resize(slots + 1, kNoNode);
  res.sender_inputs.resize(slots + 1, kBotValue);
  for (Slot s = 1; s <= slots; ++s) {
    res.senders[s] = sender_of(s);
    res.sender_inputs[s] = input_for_slot(s);
  }
  return res;
}

}  // namespace ambb
