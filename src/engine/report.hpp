// Machine-readable run reporting shared by the bench harnesses and the
// ambb_sweep CLI: one RunRecord per checked execution, serialized to
// BENCH_<name>.json.
//
// Schema history:
//   v1  (PR 1)  — {bench, violations, runs[]}; serial execution only.
//   v2  (engine) — adds top-level schema_version, threads (worker-pool
//       size used to produce the file), wall_ms_total (harness
//       wall-clock), and a per-run "error" field for jobs captured by
//       the engine's failure isolation. Parallel and serial producers
//       are thereby distinguishable in the perf trajectory; all v1
//       fields are unchanged and remain byte-identical for --jobs 1 vs
//       --jobs N (wall-clock fields excepted — they are measurements).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "sim/stats.hpp"

namespace ambb::engine {

inline constexpr int kBenchSchemaVersion = 2;

/// One checked execution, as written to BENCH_<name>.json.
struct RunRecord {
  std::string label;
  std::uint32_t n = 0;
  std::uint32_t f = 0;
  Slot slots = 0;
  Round rounds = 0;
  std::uint64_t honest_bits = 0;
  std::uint64_t adversary_bits = 0;
  double amortized = 0.0;
  double wall_ms = 0.0;
  RoundStatsSummary stats;
  std::size_t violations = 0;
  std::string error;  ///< non-empty iff the job threw instead of finishing
};

/// RunRecord for an engine outcome (violations counted, result folded in).
RunRecord to_record(const JobOutcome& outcome);

/// Serialize records to the v2 BENCH json. `threads` is the worker-pool
/// size that produced the records; `wall_ms_total` the harness wall-clock.
std::string render_bench_json(const std::string& bench_name,
                              const std::vector<RunRecord>& records,
                              std::size_t total_violations, unsigned threads,
                              double wall_ms_total);

/// Write render_bench_json() to `path`; returns false on I/O failure.
bool write_bench_json(const std::string& path, const std::string& bench_name,
                      const std::vector<RunRecord>& records,
                      std::size_t total_violations, unsigned threads,
                      double wall_ms_total);

}  // namespace ambb::engine
