#include "crypto/signer.hpp"

#include "common/byte_buf.hpp"
#include "common/check.hpp"
#include "crypto/hmac.hpp"

namespace ambb {

namespace {
Digest derive_key(const Digest& master, std::uint64_t index) {
  Encoder e;
  e.put_tag("ambb-node-key");
  e.put_u64(index);
  const Digest d = Sha256::hash(std::span<const std::uint8_t>(
      e.bytes().data(), e.bytes().size()));
  return hmac_sha256(master, d);
}

Digest tag_digest(const char* domain, const Digest& d) {
  Encoder e;
  e.put_tag(domain);
  e.put_bytes(std::span<const std::uint8_t>(d.data(), d.size()));
  return Sha256::hash(std::span<const std::uint8_t>(e.bytes().data(),
                                                    e.bytes().size()));
}

std::uint64_t fnv1a_str(const char* s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (; *s != '\0'; ++s) {
    h ^= static_cast<std::uint8_t>(*s);
    h *= 1099511628211ULL;
  }
  return h;
}

// Memoization bound; when reached the cache is dropped and rebuilt, which
// only costs recomputation (the cached function is pure).
constexpr std::size_t kMacCacheCap = std::size_t{1} << 20;
}  // namespace

KeyRegistry::KeyRegistry(std::uint32_t n, std::uint64_t master_seed) : n_(n) {
  AMBB_CHECK(n >= 1);
  Encoder e;
  e.put_tag("ambb-master-key");
  e.put_u64(master_seed);
  master_key_ = Sha256::hash(std::span<const std::uint8_t>(
      e.bytes().data(), e.bytes().size()));
  node_keys_.reserve(n);
  node_hmac_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    node_keys_.push_back(derive_key(master_key_, i));
    node_hmac_.emplace_back(node_keys_.back());
  }
  master_hmac_.emplace_back(master_key_);
}

Digest KeyRegistry::cached_mac(std::uint32_t owner, const HmacKey& key,
                               const char* domain, const Digest& d) const {
  const MacInput in{owner, fnv1a_str(domain), d};
  const auto it = mac_cache_.find(in);
  if (it != mac_cache_.end()) return it->second;
  const Digest out = key.mac(tag_digest(domain, d));
  if (mac_cache_.size() >= kMacCacheCap) mac_cache_.clear();
  mac_cache_.emplace(in, out);
  return out;
}

Signature KeyRegistry::sign(NodeId signer, const Digest& d) const {
  AMBB_CHECK(signer < n_);
  return Signature{signer, cached_mac(signer, node_hmac_[signer], "sig", d)};
}

bool KeyRegistry::verify(const Signature& sig, const Digest& d) const {
  if (sig.signer >= n_) return false;
  return sig.mac == cached_mac(sig.signer, node_hmac_[sig.signer], "sig", d);
}

Digest KeyRegistry::mac_as(NodeId i, const char* domain,
                           const Digest& d) const {
  AMBB_CHECK(i < n_);
  return cached_mac(i, node_hmac_[i], domain, d);
}

Digest KeyRegistry::master_mac(const char* domain, const Digest& d) const {
  return cached_mac(kMasterOwner, master_hmac_[0], domain, d);
}

}  // namespace ambb
