// Shared helpers for the benchmark harnesses. Each bench binary
// regenerates one artifact of the paper (Table 1 or a quantitative claim
// from Sections 4.2/5.1/5.4/Appendix A — DESIGN.md's experiment index),
// printing the measured rows next to the paper's asymptotic prediction.
//
// Wall-clock timing of full multi-shot executions is registered through
// google-benchmark; the communication measurements (the paper's actual
// metric) are printed as tables after the timing runs.
//
// Job execution is delegated to the experiment engine (src/engine/):
// each bench expands its grid into independent engine jobs, runs them on
// a fixed worker pool (AMBB_BENCH_JOBS=N; default one worker per
// hardware thread) and consumes the results in submission order. The
// engine's determinism contract makes the printed tables and the
// BENCH_<name>.json measurement fields byte-identical for any job count
// (wall-clock metadata excepted).
//
// Every measured execution is property-checked by the engine, so printed
// numbers always come from correct executions; violations (and jobs
// captured by the engine's failure isolation) make the binary exit
// non-zero. Setting AMBB_BENCH_INJECT_VIOLATION=1 injects a synthetic
// violation into every recorded run, to prove the non-zero-exit
// plumbing works.
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "engine/engine.hpp"
#include "engine/report.hpp"
#include "runner/fit.hpp"
#include "runner/registry.hpp"
#include "runner/result.hpp"
#include "runner/table.hpp"

namespace ambb::bench {

using engine::Job;
using engine::RunRecord;

inline void print_header(const char* experiment, const char* claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Paper claim: %s\n", claim);
  std::printf("================================================================\n");
}

struct BenchState {
  std::size_t violations = 0;
  std::vector<RunRecord> runs;
  unsigned threads = 1;  ///< worker-pool size of the last run_jobs call
  std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
};

inline BenchState& state() {
  static BenchState s;
  return s;
}

/// Worker-pool size for this bench process: AMBB_BENCH_JOBS if set (1 =
/// serial), otherwise 0 = one worker per hardware thread.
inline unsigned bench_jobs() {
  if (const char* e = std::getenv("AMBB_BENCH_JOBS")) {
    const long v = std::strtol(e, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(v);
  }
  return 0;
}

/// Node-shard threads per simulated round: AMBB_NODE_JOBS if set (0 =
/// auto: hardware threads / run-level pool size), default 1 = serial
/// rounds. Byte-identical measurement fields for every value — the CI
/// perf_smoke lane diffs an AMBB_NODE_JOBS=4 pass against the committed
/// golden to prove it.
inline unsigned bench_node_jobs() {
  if (const char* e = std::getenv("AMBB_NODE_JOBS")) {
    const long v = std::strtol(e, nullptr, 10);
    if (v >= 0) {
      return engine::resolve_node_jobs(static_cast<unsigned>(v),
                                       engine::resolve_jobs(bench_jobs()));
    }
  }
  return 1;
}

/// Record one engine outcome into the bench state (call in submission
/// order — recording is what pins the printed/serialized order).
inline const RunResult& record_outcome(const engine::JobOutcome& out) {
  std::size_t extra = 0;
  if (std::getenv("AMBB_BENCH_INJECT_VIOLATION") != nullptr) {
    extra = 1;  // synthetic violation: prove the non-zero-exit plumbing
  }
  if (!out.completed) {
    std::printf("!! %s did not complete: %s\n", out.label.c_str(),
                out.error.c_str());
  } else if (!out.violations.empty()) {
    std::printf("!! %s produced %zu property violations (first: %s)\n",
                out.label.c_str(), out.violations.size(),
                out.violations[0].c_str());
  }
  RunRecord rec = engine::to_record(out);
  rec.violations += extra;
  state().violations += rec.violations;
  state().runs.push_back(std::move(rec));
  return out.result;
}

/// Execute a batch of jobs through the engine and return their results
/// in submission order. Failed jobs yield a default-constructed
/// RunResult and are reported as failure rows (non-zero exit).
inline std::vector<RunResult> run_jobs(const std::vector<Job>& jobs) {
  engine::Engine eng(bench_jobs());
  state().threads = eng.jobs();
  std::vector<engine::JobOutcome> outcomes = eng.run(jobs);
  std::vector<RunResult> results;
  results.reserve(outcomes.size());
  for (const auto& out : outcomes) results.push_back(record_outcome(out));
  return results;
}

/// One-off checked execution (single-job batch through the engine).
template <class Fn>
RunResult timed_checked(const std::string& label, Fn&& run,
                        bool allow_stall = false) {
  return run_jobs({Job{label, std::forward<Fn>(run), allow_stall}})[0];
}

/// Engine job for a registry protocol at the given params, with an
/// explicit label and stall policy. Benches that predate the registry's
/// auto-label format keep their historical labels (they are pinned by the
/// BENCH_<name>.json goldens), and some deliberately tolerate stalls the
/// registry would not predict (the quantity under test IS the stall).
inline Job registry_job(const std::string& proto, const CommonParams& p,
                        std::string label, bool allow_stall) {
  const ProtocolInfo& info = protocol(proto);
  CommonParams q = p;
  q.node_jobs = bench_node_jobs();
  return Job{std::move(label), [&info, q] { return info.run(q); },
             allow_stall};
}

/// Same, but the stall policy comes from the registry: liveness failures
/// the registry knows about skip the termination check.
inline Job registry_job(const std::string& proto, const CommonParams& p,
                        std::string label) {
  return registry_job(proto, p, std::move(label),
                      may_stall(protocol(proto), p.adversary));
}

/// Same, with the auto-format label "<proto>/<adversary>/n<n>".
inline Job registry_job(const std::string& proto, const CommonParams& p) {
  return registry_job(proto, p,
                      proto + "/" + p.adversary + "/n" + std::to_string(p.n));
}

/// Unchecked direct run for google-benchmark timing loops (no engine, no
/// property checks — these loops measure wall clock only; the measured
/// communication numbers all flow through run_jobs).
inline RunResult registry_run(const std::string& proto,
                              const CommonParams& p) {
  return protocol(proto).run(p);
}

/// Run a protocol from the registry and sanity-check the run (so the
/// numbers we print always come from correct executions).
inline RunResult checked_run(const std::string& proto,
                             const CommonParams& p) {
  return run_jobs({registry_job(proto, p)})[0];
}

/// Print the per-run round-stats summary table, write BENCH_<name>.json
/// (schema v2 — see engine/report.hpp), and return the process exit code
/// (non-zero iff any checked run violated a property or failed to
/// complete). Every bench main() ends with `return finish_bench(...)`.
inline int finish_bench(const char* bench_name) {
  BenchState& st = state();

  if (!st.runs.empty()) {
    std::printf("\nPer-run simulator statistics (%zu checked runs):\n",
                st.runs.size());
    TextTable t({"run", "wall ms", "rounds", "records", "deliveries",
                 "erase", "corrupt", "acct ms", "deliver ms"});
    for (const RunRecord& r : st.runs) {
      t.add_row({r.label, TextTable::num(r.wall_ms, 1),
                 std::to_string(r.rounds), std::to_string(r.stats.records),
                 std::to_string(r.stats.deliveries),
                 std::to_string(r.stats.erasures),
                 std::to_string(r.stats.corruptions),
                 TextTable::num(r.stats.ns_accounting / 1e6, 2),
                 TextTable::num(r.stats.ns_delivery / 1e6, 2)});
    }
    std::printf("%s", t.render().c_str());
  }

  const double wall_ms_total =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - st.start)
          .count();
  const std::string path = std::string("BENCH_") + bench_name + ".json";
  if (engine::write_bench_json(path, bench_name, st.runs, st.violations,
                               st.threads, wall_ms_total)) {
    std::printf("\nwrote %s (%zu runs, %u threads)\n", path.c_str(),
                st.runs.size(), st.threads);
  } else {
    std::printf("\n!! could not write %s\n", path.c_str());
  }

  if (st.violations != 0) {
    std::printf("!! %zu property violations across checked runs — "
                "failing the bench\n",
                st.violations);
    return 1;
  }
  return 0;
}

}  // namespace ambb::bench
