// Compact dynamic bitset used for signer bitmaps (multi-signatures),
// expander/trust-graph adjacency rows, and per-node "already sent" flags.
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

#include "common/check.hpp"

namespace ambb {

class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::size_t n, bool value = false);

  std::size_t size() const { return n_; }

  bool get(std::size_t i) const {
    AMBB_CHECK(i < n_);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  void set(std::size_t i, bool value = true) {
    AMBB_CHECK(i < n_);
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    if (value)
      words_[i >> 6] |= mask;
    else
      words_[i >> 6] &= ~mask;
  }

  void reset(std::size_t i) { set(i, false); }

  /// Number of set bits.
  std::size_t count() const;

  /// True iff no bit is set.
  bool none() const { return count() == 0; }

  /// True iff every bit of `other` is also set in *this (other ⊆ this).
  bool contains(const BitVec& other) const;

  /// Indices of all set bits, ascending.
  std::vector<std::size_t> ones() const;

  void clear_all();
  void set_all();

  BitVec& operator|=(const BitVec& other);
  BitVec& operator&=(const BitVec& other);

  bool operator==(const BitVec& other) const = default;

  /// Raw words, for hashing into digests.
  const std::vector<std::uint64_t>& words() const { return words_; }

 private:
  std::size_t n_ = 0;
  std::vector<std::uint64_t> words_;

  void trim_tail();
};

}  // namespace ambb
