// Node-sharded round execution (DESIGN.md §15): --node-jobs 1 vs N must
// be byte-identical on every determinism surface — bit totals, per-slot
// and per-kind costs, commit logs, corruption flags, per-round counters,
// and JSONL traces. The suite deliberately leans on the adversary-heavy
// schedules (erase/corrupt, fuzz) because delivery-index semantics are
// where a wrong merge order would first show, and it runs under the TSan
// preset (engine/shard labels), where the worker handshake and every
// thread_local cache on the actor path get raced for real.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "runner/registry.hpp"
#include "trace/trace.hpp"

namespace ambb {
namespace {

/// Shard count for the "parallel" side of every comparison. CI sets
/// AMBB_NODE_JOBS to sweep the axis (scripts/ci.sh tsan lane); default 4
/// exercises uneven shard splits at the small n used here.
std::uint32_t shard_jobs() {
  if (const char* e = std::getenv("AMBB_NODE_JOBS")) {
    const long v = std::strtol(e, nullptr, 10);
    if (v > 0) return static_cast<std::uint32_t>(v);
  }
  return 4;
}

RunResult run_with(const std::string& proto, CommonParams p,
                   std::uint32_t node_jobs,
                   trace::TraceSink* sink = nullptr) {
  p.node_jobs = node_jobs;
  return protocol(proto).run(RunRequest{p, sink});
}

/// Every deterministic field of a RunResult (ns_* timers exempt: they are
/// measurement metadata and naturally differ across thread counts).
void expect_identical(const RunResult& a, const RunResult& b,
                      const std::string& what) {
  EXPECT_EQ(a.n, b.n) << what;
  EXPECT_EQ(a.f, b.f) << what;
  EXPECT_EQ(a.slots, b.slots) << what;
  EXPECT_EQ(a.rounds, b.rounds) << what;
  EXPECT_EQ(a.honest_bits, b.honest_bits) << what;
  EXPECT_EQ(a.adversary_bits, b.adversary_bits) << what;
  EXPECT_EQ(a.honest_msgs, b.honest_msgs) << what;
  EXPECT_EQ(a.per_slot_bits, b.per_slot_bits) << what;
  EXPECT_EQ(a.kind_names, b.kind_names) << what;
  EXPECT_EQ(a.per_kind_bits, b.per_kind_bits) << what;
  EXPECT_EQ(a.corrupt, b.corrupt) << what;
  EXPECT_EQ(a.senders, b.senders) << what;
  EXPECT_EQ(a.sender_inputs, b.sender_inputs) << what;
  for (Slot k = 1; k <= a.slots; ++k) {
    for (NodeId v = 0; v < a.n; ++v) {
      ASSERT_EQ(a.commits.has(v, k), b.commits.has(v, k))
          << what << " node " << v << " slot " << k;
      if (!a.commits.has(v, k)) continue;
      EXPECT_EQ(a.commits.get(v, k).value, b.commits.get(v, k).value)
          << what << " node " << v << " slot " << k;
      EXPECT_EQ(a.commits.get(v, k).round, b.commits.get(v, k).round)
          << what << " node " << v << " slot " << k;
    }
  }
  ASSERT_EQ(a.round_stats.size(), b.round_stats.size()) << what;
  for (std::size_t i = 0; i < a.round_stats.size(); ++i) {
    const RoundStats& ra = a.round_stats[i];
    const RoundStats& rb = b.round_stats[i];
    EXPECT_EQ(ra.round, rb.round) << what << " round " << i;
    EXPECT_EQ(ra.records, rb.records) << what << " round " << i;
    EXPECT_EQ(ra.deliveries, rb.deliveries) << what << " round " << i;
    EXPECT_EQ(ra.honest_bits, rb.honest_bits) << what << " round " << i;
    EXPECT_EQ(ra.adversary_bits, rb.adversary_bits)
        << what << " round " << i;
    EXPECT_EQ(ra.erasures, rb.erasures) << what << " round " << i;
    EXPECT_EQ(ra.corruptions, rb.corruptions) << what << " round " << i;
  }
}

void expect_shard_invariant(const std::string& proto, const CommonParams& p,
                            std::uint32_t jobs) {
  const RunResult serial = run_with(proto, p, 1);
  const RunResult sharded = run_with(proto, p, jobs);
  expect_identical(serial, sharded,
                   proto + "/" + p.adversary + " node-jobs 1 vs " +
                       std::to_string(jobs));
}

TEST(NodeShard, LinearMixedAdversary) {
  CommonParams p;
  p.n = 8;
  p.f = 2;
  p.slots = 4;
  p.seed = 1;
  p.adversary = "mixed";
  expect_shard_invariant("linear", p, shard_jobs());
}

// adaptive-erase drives the after-the-fact removal path: erase indices
// are delivery indices, which depend on the exact merged record order.
TEST(NodeShard, LinearAdaptiveErase) {
  CommonParams p;
  p.n = 12;
  p.f = 4;
  p.slots = 5;
  p.seed = 9;
  p.adversary = "adaptive-erase";
  expect_shard_invariant("linear", p, shard_jobs());
}

TEST(NodeShard, LinearChaos) {
  CommonParams p;
  p.n = 10;
  p.f = 3;
  p.slots = 4;
  p.seed = 5;
  p.adversary = "chaos";
  expect_shard_invariant("linear", p, shard_jobs());
}

// Seeded fuzz schedules compose corrupt/erase/silence/selective faults;
// several seeds so corrupt-mid-run roster rebuilds land on different
// shard boundaries.
TEST(NodeShard, LinearFuzzSchedules) {
  for (std::uint64_t seed : {2u, 3u, 4u}) {
    CommonParams p;
    p.n = 9;
    p.f = 3;
    p.slots = 3;
    p.seed = seed;
    p.adversary = "fuzz:" + std::to_string(seed);
    expect_shard_invariant("linear", p, shard_jobs());
  }
}

TEST(NodeShard, QuadraticEquivocate) {
  CommonParams p;
  p.n = 9;
  p.f = 4;
  p.slots = 4;
  p.seed = 3;
  p.adversary = "equivocate";
  expect_shard_invariant("quadratic", p, shard_jobs());
}

TEST(NodeShard, DolevStrongStagger) {
  CommonParams p;
  p.n = 8;
  p.f = 3;
  p.slots = 3;
  p.seed = 2;
  p.adversary = "stagger";
  expect_shard_invariant("dolev-strong", p, shard_jobs());
}

TEST(NodeShard, PhaseKingConfuse) {
  CommonParams p;
  p.n = 10;
  p.f = 3;
  p.slots = 3;
  p.seed = 4;
  p.adversary = "confuse";
  expect_shard_invariant("phase-king", p, shard_jobs());
}

TEST(NodeShard, HotstuffSelective) {
  CommonParams p;
  p.n = 7;
  p.f = 2;
  p.slots = 4;
  p.seed = 6;
  p.adversary = "selective";  // may stall; identity is what's asserted
  expect_shard_invariant("hotstuff", p, shard_jobs());
}

// ext:linear shards BOTH simulations: the dispersal phase and the nested
// base-family run (node_jobs forwards into the base config).
TEST(NodeShard, ExtensionLinearWithPayload) {
  CommonParams p;
  p.n = 8;
  p.f = 2;
  p.slots = 3;
  p.seed = 11;
  p.payload_bytes = 4096;
  p.adversary = "fuzz:7";
  expect_shard_invariant("ext:linear", p, shard_jobs());
}

// More shards than honest nodes: trailing shards get empty ranges.
TEST(NodeShard, OvershardedRun) {
  CommonParams p;
  p.n = 8;
  p.f = 2;
  p.slots = 3;
  p.seed = 8;
  p.adversary = "silent";
  expect_shard_invariant("linear", p, 32);
}

// node_jobs = 0 resolves to hardware concurrency inside the simulator;
// whatever it resolves to must still match serial.
TEST(NodeShard, AutoNodeJobsMatchesSerial) {
  CommonParams p;
  p.n = 8;
  p.f = 2;
  p.slots = 3;
  p.seed = 12;
  p.adversary = "mixed";
  const RunResult serial = run_with("linear", p, 1);
  const RunResult autos = run_with("linear", p, 0);
  expect_identical(serial, autos, "linear/mixed node-jobs 1 vs auto");
}

std::string render_trace(std::uint32_t node_jobs) {
  CommonParams p;
  p.n = 8;
  p.f = 2;
  p.slots = 4;
  p.seed = 1;
  p.adversary = "mixed";
  std::ostringstream os;
  trace::JsonlSink sink(os);
  run_with("linear", p, node_jobs, &sink);
  return os.str();
}

// The strongest ordering claim: the full JSONL event stream — actor
// emissions interleaved with simulator and driver emissions — is
// byte-identical to the serial render AND to the checked-in golden (the
// same file test_trace_golden pins for node_jobs = 1).
TEST(NodeShard, TraceJsonlByteIdentical) {
  const std::string serial = render_trace(1);
  const std::string sharded = render_trace(shard_jobs());
  ASSERT_FALSE(serial.empty());
  if (serial != sharded) {
    std::istringstream sa(serial), sb(sharded);
    std::string la, lb;
    std::size_t line = 1;
    while (std::getline(sa, la) && std::getline(sb, lb) && la == lb) ++line;
    FAIL() << "sharded trace diverged at line " << line << "\n  serial:  "
           << la << "\n  sharded: " << lb;
  }

  const std::string path =
      std::string(AMBB_GOLDEN_DIR) + "/trace_linear_n8_f2_L4_seed1.jsonl";
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << path;
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(sharded, want.str());
}

// Repeated sharded runs are stable (no hidden dependence on thread
// scheduling), including when the same process re-runs with a different
// shard count in between (pool teardown/rebuild path).
TEST(NodeShard, ShardedRunsAreReproducible) {
  CommonParams p;
  p.n = 8;
  p.f = 2;
  p.slots = 4;
  p.seed = 1;
  p.adversary = "mixed";
  const RunResult a = run_with("linear", p, shard_jobs());
  const RunResult b = run_with("linear", p, 2);
  const RunResult c = run_with("linear", p, shard_jobs());
  expect_identical(a, b, "jobs N vs 2");
  expect_identical(a, c, "jobs N repeat");
}

}  // namespace
}  // namespace ambb
