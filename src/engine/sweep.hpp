// Declarative sweep specification for the experiment engine.
//
// A SweepSpec names a protocol from the runner registry plus lists of
// n / f / L / payload / net / adversary / seed values; expand() turns it
// into the full cross product of independent engine jobs in a documented,
// stable order (n, then f, then slots, then payload, then net, then
// adversary, then seed, then repetition).
// The expansion order IS the aggregation order: together with the
// engine's submission-order reporting it pins the output byte-for-byte
// independently of --jobs.
//
// Spec files (ambb_sweep --spec) are line-oriented:
//
//   # comment
//   sweep alg4                 # starts a block; the name prefixes labels
//   protocol linear            # registry name (required)
//   n 24 32 48 64              # list of n values (required)
//   f-frac 0.3                 # f = floor(0.3 * n), or:
//   f 4 6 8                    #   explicit f list, or:
//   f max                      #   registry max_f(n)
//   slots-per-n 3              # L = 3n, or: slots 8 16
//   adversary mixed none       # list; default "none"
//   seeds 7 9                  # inclusive seed range; default 1 1
//   reps 2                     # repetitions per config; default 1
//   eps 0.2                    # linear-family expander parameter
//   kappa 256                  # security parameter bits
//   value-bits 256             # input value width
//   payload 4096 65536         # payload bytes per slot (DESIGN.md §13):
//                              #   ext:* rows erasure-code the payload,
//                              #   every other row carries it inline
//                              #   (value-bits = 8 * payload)
//   net lockstep bounded:2     # network delay policies (DESIGN.md §16):
//                              #   lockstep | bounded:<delta> |
//                              #   async[:<cap>]; default lockstep.
//                              #   Non-lockstep cells relax termination
//                              #   and validity (both are conditional on
//                              #   synchrony); consistency stays hard
//                              #   except for consistency_needs_sync
//                              #   registry rows (DS family, quadratic,
//                              #   ext:*), whose splits are expected
//
// Blank lines between blocks are optional; later keys override earlier
// ones within a block. Malformed input throws CheckError with the
// offending line number.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "runner/registry.hpp"

namespace ambb::engine {

struct SweepSpec {
  std::string name;      ///< label prefix; defaults to the protocol name
  std::string protocol;  ///< runner-registry protocol name

  std::vector<std::uint32_t> ns = {16};
  /// Fault-load selection, exactly one of:
  std::vector<std::uint32_t> fs;  ///< explicit values (cross product with n)
  /// Exact fraction: f = floor(f_frac_num * n / f_frac_den) when den != 0.
  /// The spec-file "f-frac" key parses "p/q" and decimal literals ("0.3"
  /// = 3/10) into this form, so f never suffers binary floating-point
  /// truncation (0.3 * 10 < 3.0 in double, so the old cast gave f=2).
  std::uint64_t f_frac_num = 0;
  std::uint64_t f_frac_den = 0;
  /// Programmatic double fallback: f = floor(round(f_frac * 1e9) * n /
  /// 1e9) when >= 0, i.e. the fraction is snapped to the nearest 1e-9
  /// before the exact floor — same rule, for callers that only have a
  /// double in hand.
  double f_frac = -1.0;
  bool f_max = false;             ///< f = registry max_f(n)

  std::vector<Slot> slots_list;   ///< explicit slot counts
  std::uint32_t slots_per_n = 0;  ///< L = slots_per_n * n when nonzero

  std::vector<std::string> adversaries = {"none"};
  std::uint64_t seed_begin = 1;
  std::uint64_t seed_end = 1;  ///< inclusive
  std::uint32_t repetitions = 1;

  double eps = 0.1;
  std::uint32_t kappa_bits = kDefaultKappaBits;
  std::uint32_t value_bits = kDefaultValueBits;

  /// Payload-size axis in bytes; empty = off (kappa-sized values, the
  /// historical behaviour). For non-ext protocols a nonzero payload
  /// overrides value_bits with 8 * payload, pricing the same L-byte
  /// message carried inline — the raw baseline of the ext:* rows.
  std::vector<std::uint64_t> payloads;

  /// Network delay-policy axis (DESIGN.md §16); empty = {"lockstep"}.
  /// Each entry must parse (parse_net_policy). Cells with a non-lockstep
  /// policy run with allow_stall and allow_invalid: termination AND
  /// validity are conditional on synchrony (a delayed honest sender is
  /// indistinguishable from a silent one). Consistency stays a hard
  /// failure for quorum-intersection rows; rows whose agreement argument
  /// is itself a round deadline declare consistency_needs_sync in the
  /// registry and additionally get allow_split.
  std::vector<std::string> nets;
};

/// One expanded cell: everything needed to run and label it.
struct SweepJob {
  std::string label;  ///< "<name>/<adversary>/n<k>[/f..][/L..][/p..][/s..][/r..]"
  std::string protocol;
  CommonParams params;
  bool allow_stall = false;  ///< from the registry's known liveness failures
  bool allow_invalid = false;  ///< non-lockstep cell (engine::Job doc)
  /// Non-lockstep cell of a consistency_needs_sync registry row: the
  /// protocol's agreement argument is a round deadline, so honest
  /// commits may legally split under delays (engine::Job::allow_split).
  bool allow_split = false;
};

/// Cross-product expansion in the documented stable order. Validates the
/// protocol name, the adversary names and f < n against the registry;
/// throws CheckError on invalid specs.
std::vector<SweepJob> expand(const SweepSpec& spec);

/// Expansion of several specs back to back (label order = spec order).
std::vector<SweepJob> expand_all(const std::vector<SweepSpec>& specs);

/// Keep only jobs whose label contains `needle` (empty keeps everything).
std::vector<SweepJob> filter_jobs(std::vector<SweepJob> jobs,
                                  const std::string& needle);

/// Engine job for one cell: a registry lookup plus a self-contained run
/// closure (the driver constructs its own Simulation / ledger / RNG from
/// the params, so cells never share simulator state).
Job to_engine_job(const SweepJob& sj);

std::vector<Job> to_engine_jobs(const std::vector<SweepJob>& sjs);

/// Trace file path for job `index` of a sweep: "<dir>/NNNN_<label>.jsonl"
/// with the submission index zero-padded and every label character
/// outside [A-Za-z0-9._-] replaced by '-'. Submission-order naming keeps
/// the directory listing aligned with the report rows regardless of
/// --jobs.
std::string trace_path(const std::string& dir, std::size_t index,
                       const std::string& label);

/// Like to_engine_jobs, but each job writes a deterministic JSONL event
/// trace to trace_path(trace_dir, index, label). Each closure owns its
/// file stream and sink, so parallel workers never share a sink. An
/// empty trace_dir degenerates to the plain overload.
std::vector<Job> to_engine_jobs(const std::vector<SweepJob>& sjs,
                                const std::string& trace_dir);

/// Parse the spec-file format described in the header comment.
std::vector<SweepSpec> parse_spec(const std::string& text);

}  // namespace ambb::engine
