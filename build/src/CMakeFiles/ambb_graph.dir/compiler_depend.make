# Empty compiler generated dependencies file for ambb_graph.
# This may be replaced when dependencies are built.
