file(REMOVE_RECURSE
  "CMakeFiles/test_trustcast.dir/test_trustcast.cpp.o"
  "CMakeFiles/test_trustcast.dir/test_trustcast.cpp.o.d"
  "test_trustcast"
  "test_trustcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trustcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
