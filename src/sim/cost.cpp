#include "sim/cost.hpp"

#include <limits>

#include "common/check.hpp"

namespace ambb {

CostLedger::CostLedger(std::vector<std::string> kind_names)
    : kind_names_(std::move(kind_names)),
      per_kind_(kind_names_.size(), 0) {
  AMBB_CHECK(!kind_names_.empty());
}

void CostLedger::charge(Slot slot, MsgKind kind, std::uint64_t bits,
                        bool honest_sender) {
  AMBB_CHECK_MSG(kind < per_kind_.size(), "unknown message kind");
  if (!honest_sender) {
    adversary_total_ += bits;
    return;
  }
  if (slot >= per_slot_.size()) per_slot_.resize(slot + 1, 0);
  per_slot_[slot] += bits;
  per_kind_[kind] += bits;
  honest_total_ += bits;
  honest_msgs_ += 1;
}

void CostLedger::charge_n(Slot slot, MsgKind kind, std::uint64_t bits,
                          bool honest_sender, std::uint64_t count) {
  AMBB_CHECK_MSG(kind < per_kind_.size(), "unknown message kind");
  if (count == 0) return;
  if (!honest_sender) {
    adversary_total_ += bits * count;
    return;
  }
  if (slot >= per_slot_.size()) per_slot_.resize(slot + 1, 0);
  per_slot_[slot] += bits * count;
  per_kind_[kind] += bits * count;
  honest_total_ += bits * count;
  honest_msgs_ += count;
}

std::uint64_t CostLedger::honest_bits_slot(Slot slot) const {
  return slot < per_slot_.size() ? per_slot_[slot] : 0;
}

double CostLedger::amortized(Slot num_slots) const {
  // Amortizing over zero slots has no value, not a crash: callers that
  // size runs dynamically (sweep specs, fuzz drivers) may produce L = 0.
  if (num_slots == 0) return std::numeric_limits<double>::quiet_NaN();
  std::uint64_t total = 0;
  for (Slot k = 1; k <= num_slots; ++k) total += honest_bits_slot(k);
  return static_cast<double>(total) / num_slots;
}

}  // namespace ambb
