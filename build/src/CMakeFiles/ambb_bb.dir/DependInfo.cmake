
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bb/atomic_broadcast.cpp" "src/CMakeFiles/ambb_bb.dir/bb/atomic_broadcast.cpp.o" "gcc" "src/CMakeFiles/ambb_bb.dir/bb/atomic_broadcast.cpp.o.d"
  "/root/repo/src/bb/codec.cpp" "src/CMakeFiles/ambb_bb.dir/bb/codec.cpp.o" "gcc" "src/CMakeFiles/ambb_bb.dir/bb/codec.cpp.o.d"
  "/root/repo/src/bb/dolev_strong.cpp" "src/CMakeFiles/ambb_bb.dir/bb/dolev_strong.cpp.o" "gcc" "src/CMakeFiles/ambb_bb.dir/bb/dolev_strong.cpp.o.d"
  "/root/repo/src/bb/hotstuff_demo.cpp" "src/CMakeFiles/ambb_bb.dir/bb/hotstuff_demo.cpp.o" "gcc" "src/CMakeFiles/ambb_bb.dir/bb/hotstuff_demo.cpp.o.d"
  "/root/repo/src/bb/linear_adversary.cpp" "src/CMakeFiles/ambb_bb.dir/bb/linear_adversary.cpp.o" "gcc" "src/CMakeFiles/ambb_bb.dir/bb/linear_adversary.cpp.o.d"
  "/root/repo/src/bb/linear_bb.cpp" "src/CMakeFiles/ambb_bb.dir/bb/linear_bb.cpp.o" "gcc" "src/CMakeFiles/ambb_bb.dir/bb/linear_bb.cpp.o.d"
  "/root/repo/src/bb/phase_king.cpp" "src/CMakeFiles/ambb_bb.dir/bb/phase_king.cpp.o" "gcc" "src/CMakeFiles/ambb_bb.dir/bb/phase_king.cpp.o.d"
  "/root/repo/src/bb/quadratic_adversary.cpp" "src/CMakeFiles/ambb_bb.dir/bb/quadratic_adversary.cpp.o" "gcc" "src/CMakeFiles/ambb_bb.dir/bb/quadratic_adversary.cpp.o.d"
  "/root/repo/src/bb/quadratic_bb.cpp" "src/CMakeFiles/ambb_bb.dir/bb/quadratic_bb.cpp.o" "gcc" "src/CMakeFiles/ambb_bb.dir/bb/quadratic_bb.cpp.o.d"
  "/root/repo/src/bb/trustcast.cpp" "src/CMakeFiles/ambb_bb.dir/bb/trustcast.cpp.o" "gcc" "src/CMakeFiles/ambb_bb.dir/bb/trustcast.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ambb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ambb_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ambb_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ambb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
