#include "crypto/hmac.hpp"

#include <array>
#include <cstring>

namespace ambb {

Digest hmac_sha256(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> message) {
  std::array<std::uint8_t, 64> block{};
  if (key.size() > 64) {
    const Digest kd = Sha256::hash(key);
    std::memcpy(block.data(), kd.data(), kd.size());
  } else {
    std::memcpy(block.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, 64> ipad, opad;
  for (int i = 0; i < 64; ++i) {
    ipad[i] = block[i] ^ 0x36;
    opad[i] = block[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(std::span<const std::uint8_t>(ipad.data(), ipad.size()));
  inner.update(message);
  const Digest inner_d = inner.finalize();

  Sha256 outer;
  outer.update(std::span<const std::uint8_t>(opad.data(), opad.size()));
  outer.update(std::span<const std::uint8_t>(inner_d.data(), inner_d.size()));
  return outer.finalize();
}

Digest hmac_sha256(const Digest& key, const Digest& message) {
  return hmac_sha256(std::span<const std::uint8_t>(key.data(), key.size()),
                     std::span<const std::uint8_t>(message.data(), message.size()));
}

}  // namespace ambb
