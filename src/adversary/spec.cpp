#include "adversary/spec.hpp"

#include <cstdint>
#include <limits>
#include <vector>

#include "common/check.hpp"

namespace ambb::adversary {

namespace {

constexpr char kSchedPrefix[] = "sched:";
constexpr char kFuzzName[] = "fuzz";

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// One "name(a,b,...)" call, args kept as raw tokens ("*" allowed).
struct Op {
  std::string name;
  std::vector<std::string> args;
};

std::vector<Op> split_ops(const std::string& body) {
  std::vector<Op> ops;
  std::size_t i = 0;
  while (i < body.size()) {
    const std::size_t open = body.find('(', i);
    AMBB_CHECK_MSG(open != std::string::npos && open > i,
                   "sched spec: expected op(...) at '" << body.substr(i)
                                                       << "'");
    const std::size_t close = body.find(')', open);
    AMBB_CHECK_MSG(close != std::string::npos,
                   "sched spec: missing ')' after '" << body.substr(i) << "'");
    Op op;
    op.name = body.substr(i, open - i);
    std::size_t a = open + 1;
    while (a <= close) {
      std::size_t comma = body.find(',', a);
      if (comma == std::string::npos || comma > close) comma = close;
      AMBB_CHECK_MSG(comma > a, "sched spec: empty argument in op '"
                                    << op.name << "'");
      op.args.push_back(body.substr(a, comma - a));
      a = comma + 1;
    }
    ops.push_back(std::move(op));
    i = close + 1;
    if (i < body.size()) {
      AMBB_CHECK_MSG(body[i] == ';',
                     "sched spec: expected ';' between ops, got '"
                         << body.substr(i) << "'");
      ++i;
      AMBB_CHECK_MSG(i < body.size(), "sched spec: trailing ';'");
    }
  }
  AMBB_CHECK_MSG(!ops.empty(), "sched spec: no ops");
  return ops;
}

std::uint64_t parse_u64(const Op& op, std::size_t idx) {
  const std::string& t = op.args[idx];
  std::uint64_t v = 0;
  AMBB_CHECK_MSG(!t.empty(), "sched spec: empty number in '" << op.name << "'");
  for (char c : t) {
    AMBB_CHECK_MSG(c >= '0' && c <= '9', "sched spec: bad number '"
                                             << t << "' in op '" << op.name
                                             << "'");
    AMBB_CHECK_MSG(v <= (std::numeric_limits<std::uint64_t>::max() - 9) / 10,
                   "sched spec: number '" << t << "' overflows");
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

/// Round argument that may be "*" (= end of run).
Round parse_round_or_star(const Op& op, std::size_t idx) {
  if (op.args[idx] == "*") return kRoundMax;
  return parse_u64(op, idx);
}

void need_args(const Op& op, std::size_t lo, std::size_t hi) {
  AMBB_CHECK_MSG(op.args.size() >= lo && op.args.size() <= hi,
                 "sched spec: op '" << op.name << "' takes " << lo
                                    << (lo == hi ? "" : "..") << " args, got "
                                    << op.args.size());
}

ActorFault window_fault(FaultKind kind, const Op& op) {
  ActorFault a;
  a.kind = kind;
  a.node = static_cast<NodeId>(parse_u64(op, 0));
  a.from = parse_u64(op, 1);
  a.to = parse_round_or_star(op, 2);
  return a;
}

}  // namespace

bool is_schedule_spec(const std::string& spec) {
  return starts_with(spec, kSchedPrefix) || is_fuzz_spec(spec);
}

bool is_fuzz_spec(const std::string& spec) {
  return spec == kFuzzName || starts_with(spec, "fuzz:");
}

std::uint64_t fuzz_profile(const std::string& spec) {
  AMBB_CHECK_MSG(is_fuzz_spec(spec), "not a fuzz spec: '" << spec << "'");
  if (spec == kFuzzName) return 0;
  Op op;
  op.name = "fuzz";
  op.args.push_back(spec.substr(5));
  return parse_u64(op, 0);
}

FaultSchedule parse_schedule_spec(const std::string& spec) {
  AMBB_CHECK_MSG(starts_with(spec, kSchedPrefix),
                 "not a sched spec: '" << spec << "'");
  FaultSchedule s;
  for (const Op& op : split_ops(spec.substr(sizeof(kSchedPrefix) - 1))) {
    if (op.name == "corrupt") {
      need_args(op, 2, std::numeric_limits<std::size_t>::max());
      const Round from = parse_u64(op, 0);
      for (std::size_t i = 1; i < op.args.size(); ++i) {
        s.corruptions.push_back(
            CorruptEvent{from, static_cast<NodeId>(parse_u64(op, i))});
      }
    } else if (op.name == "erase") {
      need_args(op, 2, 5);
      AMBB_CHECK_MSG(op.args.size() != 4,
                     "sched spec: erase takes (r,v), (r,v,d) or "
                     "(r,v,d,mod,rem)");
      EraseEvent e;
      e.round = parse_u64(op, 0);
      e.sender = static_cast<NodeId>(parse_u64(op, 1));
      if (op.args.size() >= 3) {
        e.density_permille = static_cast<std::uint32_t>(parse_u64(op, 2));
      }
      if (op.args.size() == 5) {
        e.to_mod = static_cast<std::uint32_t>(parse_u64(op, 3));
        e.to_rem = static_cast<std::uint32_t>(parse_u64(op, 4));
      }
      s.erasures.push_back(e);
    } else if (op.name == "silence") {
      need_args(op, 3, 3);
      s.actor_faults.push_back(window_fault(FaultKind::kSilence, op));
    } else if (op.name == "shuffle") {
      need_args(op, 3, 3);
      s.actor_faults.push_back(window_fault(FaultKind::kShuffle, op));
    } else if (op.name == "stagger") {
      need_args(op, 4, 4);
      ActorFault a = window_fault(FaultKind::kStagger, op);
      a.delay = static_cast<std::uint32_t>(parse_u64(op, 3));
      s.actor_faults.push_back(a);
    } else if (op.name == "selective") {
      need_args(op, 4, std::numeric_limits<std::size_t>::max());
      ActorFault a = window_fault(FaultKind::kSelective, op);
      for (std::size_t i = 3; i < op.args.size(); ++i) {
        a.keep.push_back(static_cast<NodeId>(parse_u64(op, i)));
      }
      s.actor_faults.push_back(a);
    } else if (op.name == "delay") {
      need_args(op, 4, 4);
      NetFault t;
      t.kind = NetFaultKind::kDelay;
      t.sender = static_cast<NodeId>(parse_u64(op, 0));
      t.from = parse_u64(op, 1);
      t.to = parse_round_or_star(op, 2);
      t.extra = static_cast<std::uint32_t>(parse_u64(op, 3));
      s.net_faults.push_back(t);
    } else if (op.name == "reorder") {
      need_args(op, 3, 3);
      NetFault t;
      t.kind = NetFaultKind::kReorder;
      t.sender = static_cast<NodeId>(parse_u64(op, 0));
      t.from = parse_u64(op, 1);
      t.to = parse_round_or_star(op, 2);
      s.net_faults.push_back(t);
    } else {
      AMBB_CHECK_MSG(false, "sched spec: unknown op '" << op.name << "'");
    }
  }
  return s;
}

}  // namespace ambb::adversary
