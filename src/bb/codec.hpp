// Canonical byte encodings for every protocol message type.
//
// The simulator does not marshal on its hot path (message structs are
// moved directly, and costs come from the bit-exact WireModel); these
// codecs make the protocols deployable over a byte transport and pin the
// wire format with round-trip tests. Decoders validate enum ranges and
// lengths and throw CheckError on malformed input — a real receiver must
// never trust a Byzantine peer's bytes.
#pragma once

#include "bb/dolev_strong.hpp"
#include "bb/hotstuff_demo.hpp"
#include "bb/linear_bb.hpp"
#include "bb/phase_king.hpp"
#include "bb/trustcast.hpp"
#include "common/byte_buf.hpp"

namespace ambb::linear {
void encode(const Msg& m, Encoder& e);
Msg decode(Decoder& d);
bool operator==(const Msg& a, const Msg& b);
}  // namespace ambb::linear

namespace ambb::quad {
void encode(const Msg& m, Encoder& e);
Msg decode(Decoder& d);
bool operator==(const Msg& a, const Msg& b);
}  // namespace ambb::quad

namespace ambb::ds {
void encode(const Msg& m, Encoder& e);
Msg decode(Decoder& d);
bool operator==(const Msg& a, const Msg& b);
}  // namespace ambb::ds

namespace ambb::pk {
void encode(const Msg& m, Encoder& e);
Msg decode(Decoder& d);
bool operator==(const Msg& a, const Msg& b);
}  // namespace ambb::pk

namespace ambb::hs {
void encode(const Msg& m, Encoder& e);
Msg decode(Decoder& d);
bool operator==(const Msg& a, const Msg& b);
}  // namespace ambb::hs
