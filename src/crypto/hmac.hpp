// HMAC-SHA256 (RFC 2104). The simulated signature schemes derive their
// authenticity from HMACs under keys held by the in-simulator PKI registry.
#pragma once

#include <cstdint>
#include <span>

#include "crypto/sha256.hpp"

namespace ambb {

Digest hmac_sha256(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> message);

Digest hmac_sha256(const Digest& key, const Digest& message);

/// A fixed HMAC key with the ipad/opad pad blocks pre-compressed: mac()
/// costs two SHA-256 block compressions instead of four. Produces exactly
/// the same MAC as hmac_sha256(key, message).
class HmacKey {
 public:
  explicit HmacKey(const Digest& key);

  Digest mac(const Digest& message) const;

 private:
  Sha256Midstate inner_;
  Sha256Midstate outer_;
};

}  // namespace ambb
