// Per-round arena allocation (DESIGN.md §14).
//
// The simulator's hot-path containers (traffic records, per-node inboxes)
// have strict round-scoped lifetimes: everything allocated while a round
// executes dies together at the next round boundary. A chunked monotonic
// arena matches that shape exactly — allocation is a bump-pointer add,
// deallocation is a wholesale reset() that rewinds the cursor and keeps
// every chunk for reuse, so a steady-state round performs zero heap
// allocations (chunks are only ever acquired while the high-water mark is
// still growing).
//
// The arena is NOT thread-safe; each Simulation / TrafficLog owns its own
// (the experiment engine's job-isolation rule already guarantees one
// thread per Simulation). Arenas are held behind unique_ptr by their
// owners so container moves/swaps never invalidate the arena address that
// live ArenaVectors point at.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace ambb {

class Arena {
 public:
  struct Stats {
    std::uint64_t allocations = 0;     ///< lifetime allocate() calls
    std::uint64_t bytes_requested = 0; ///< lifetime bytes handed out
    std::uint64_t resets = 0;
    std::uint64_t chunks_acquired = 0; ///< heap chunks ever allocated
    std::size_t reserved_bytes = 0;    ///< sum of owned chunk capacities
    std::size_t high_water_bytes = 0;  ///< max live bytes in any cycle
  };

  static constexpr std::size_t kDefaultChunkBytes = std::size_t{64} << 10;

  explicit Arena(std::size_t first_chunk_bytes = kDefaultChunkBytes)
      : first_chunk_bytes_(first_chunk_bytes == 0 ? kDefaultChunkBytes
                                                  : first_chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocate `size` bytes aligned to `align` (any power of two,
  /// over-aligned types included). The memory is uninitialized and valid
  /// until the next reset().
  void* allocate(std::size_t size, std::size_t align) {
    AMBB_CHECK(align != 0 && (align & (align - 1)) == 0);
    stats_.allocations += 1;
    stats_.bytes_requested += size;
    for (;;) {
      if (cur_ < chunks_.size()) {
        Chunk& c = chunks_[cur_];
        const std::uintptr_t base = reinterpret_cast<std::uintptr_t>(c.mem.get());
        const std::uintptr_t aligned = (base + c.used + (align - 1)) & ~static_cast<std::uintptr_t>(align - 1);
        const std::size_t offset = static_cast<std::size_t>(aligned - base);
        if (offset + size <= c.size) {
          c.used = offset + size;
          live_ = live_head_ + c.used;
          if (live_ > stats_.high_water_bytes) stats_.high_water_bytes = live_;
          return reinterpret_cast<void*>(aligned);
        }
        // Chunk exhausted: seal it and move on (possibly to an already
        // owned chunk retained from a previous cycle).
        live_head_ += c.size;
        c.used = c.size;
        ++cur_;
        continue;
      }
      new_chunk(size + align);
    }
  }

  template <typename T>
  T* allocate_array(std::size_t count) {
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
  }

  /// Wholesale reset: every prior allocation becomes invalid, all chunks
  /// are kept for reuse. O(chunks), no heap traffic.
  void reset() {
    for (std::size_t i = 0; i <= cur_ && i < chunks_.size(); ++i) {
      chunks_[i].used = 0;
    }
    cur_ = 0;
    live_ = 0;
    live_head_ = 0;
    stats_.resets += 1;
  }

  /// Bytes live since the last reset (excluding per-chunk tail waste).
  std::size_t live_bytes() const { return live_; }
  const Stats& stats() const { return stats_; }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> mem;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  void new_chunk(std::size_t min_bytes) {
    // Geometric growth keeps the chunk count logarithmic in the final
    // footprint, so post-warmup cycles never touch the heap.
    std::size_t want = chunks_.empty() ? first_chunk_bytes_
                                       : stats_.reserved_bytes;
    if (want < min_bytes) want = min_bytes;
    chunks_.push_back(Chunk{std::make_unique<std::byte[]>(want), want, 0});
    stats_.chunks_acquired += 1;
    stats_.reserved_bytes += want;
  }

  std::vector<Chunk> chunks_;
  std::size_t cur_ = 0;        ///< index of the chunk being bumped
  std::size_t live_ = 0;
  std::size_t live_head_ = 0;  ///< bytes consumed by sealed chunks
  std::size_t first_chunk_bytes_;
  Stats stats_;
};

/// A contiguous vector whose storage comes from an Arena. Growth abandons
/// the old block (the arena reclaims it wholesale at reset); clear() keeps
/// the current block; reset() forgets the storage entirely — it must be
/// called before (or because) the owning arena resets — while remembering
/// the high-water size so the first append of the next cycle acquires the
/// full steady-state capacity in one arena allocation.
///
/// Move-only: the destructor runs element destructors but never frees
/// memory (the arena owns it).
template <typename T>
class ArenaVector {
 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  ArenaVector() = default;
  explicit ArenaVector(Arena* arena) : arena_(arena) {}

  ArenaVector(const ArenaVector&) = delete;
  ArenaVector& operator=(const ArenaVector&) = delete;

  ArenaVector(ArenaVector&& o) noexcept
      : arena_(o.arena_), data_(o.data_), size_(o.size_), cap_(o.cap_),
        hint_(o.hint_) {
    o.data_ = nullptr;
    o.size_ = o.cap_ = 0;
  }

  ArenaVector& operator=(ArenaVector&& o) noexcept {
    if (this != &o) {
      destroy_elements();
      arena_ = o.arena_;
      data_ = o.data_;
      size_ = o.size_;
      cap_ = o.cap_;
      hint_ = o.hint_;
      o.data_ = nullptr;
      o.size_ = o.cap_ = 0;
    }
    return *this;
  }

  ~ArenaVector() { destroy_elements(); }

  /// Bind to an arena; only valid while empty.
  void set_arena(Arena* arena) {
    AMBB_CHECK(size_ == 0);
    arena_ = arena;
    data_ = nullptr;
    cap_ = 0;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return cap_; }
  T* data() { return data_; }
  const T* data() const { return data_; }
  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  void reserve(std::size_t cap) {
    if (cap > cap_) relocate(cap);
  }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == cap_) grow();
    T* p = data_ + size_;
    ::new (static_cast<void*>(p)) T(std::forward<Args>(args)...);
    ++size_;
    return *p;
  }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  /// Destroy elements, keep the storage block.
  void clear() {
    destroy_elements();
    size_ = 0;
  }

  /// Destroy elements and drop the storage reference (required around an
  /// Arena::reset); the next append reallocates at high-water capacity.
  void reset() {
    if (size_ > hint_) hint_ = size_;
    destroy_elements();
    data_ = nullptr;
    size_ = cap_ = 0;
  }

 private:
  void grow() {
    std::size_t want = cap_ * 2;
    if (want < hint_) want = hint_;
    if (want < 8) want = 8;
    relocate(want);
  }

  void relocate(std::size_t new_cap) {
    AMBB_CHECK(arena_ != nullptr);
    T* nd = static_cast<T*>(arena_->allocate(new_cap * sizeof(T), alignof(T)));
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(nd + i)) T(std::move(data_[i]));
      data_[i].~T();
    }
    data_ = nd;
    cap_ = new_cap;
  }

  void destroy_elements() {
    if constexpr (!std::is_trivially_destructible_v<T>) {
      for (std::size_t i = 0; i < size_; ++i) data_[i].~T();
    }
  }

  Arena* arena_ = nullptr;
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
  std::size_t hint_ = 0;  ///< high-water size across reset() cycles
};

}  // namespace ambb
