#include "graph/trust_graph.hpp"

#include <deque>

#include "common/check.hpp"

namespace ambb {

TrustGraph::TrustGraph(std::uint32_t n)
    : n_(n), present_(n, true), adj_(n, BitVec(n, true)) {
  AMBB_CHECK(n >= 1);
  for (std::uint32_t v = 0; v < n; ++v) adj_[v].reset(v);  // no self-loops
}

bool TrustGraph::has_vertex(NodeId v) const {
  AMBB_CHECK(v < n_);
  return present_.get(v);
}

bool TrustGraph::has_edge(NodeId u, NodeId v) const {
  AMBB_CHECK(u < n_ && v < n_);
  return present_.get(u) && present_.get(v) && adj_[u].get(v);
}

void TrustGraph::remove_edge(NodeId u, NodeId v) {
  AMBB_CHECK(u < n_ && v < n_);
  if (u == v) return;
  adj_[u].reset(v);
  adj_[v].reset(u);
}

void TrustGraph::remove_vertex(NodeId v) {
  AMBB_CHECK(v < n_);
  present_.reset(v);
  for (std::uint32_t u = 0; u < n_; ++u) {
    adj_[u].reset(v);
    adj_[v].reset(u);
  }
}

std::uint32_t TrustGraph::vertex_count() const {
  return static_cast<std::uint32_t>(present_.count());
}

std::uint64_t TrustGraph::edge_count() const {
  std::uint64_t twice = 0;
  for (std::uint32_t v = 0; v < n_; ++v) {
    if (present_.get(v)) twice += adj_[v].count();
  }
  return twice / 2;
}

std::vector<std::uint32_t> TrustGraph::distances_from(NodeId src) const {
  AMBB_CHECK(src < n_);
  std::vector<std::uint32_t> dist(n_, kUnreachable);
  if (!present_.get(src)) return dist;
  dist[src] = 0;
  std::deque<NodeId> queue{src};
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    for (auto vi : adj_[u].ones()) {
      NodeId v = static_cast<NodeId>(vi);
      if (present_.get(v) && dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

void TrustGraph::prune_unconnected(NodeId owner) {
  AMBB_CHECK(owner < n_);
  // An honest owner never removes itself; a Byzantine node replaying the
  // honest logic can (e.g. after equivocating as sender) — tolerate it.
  if (!present_.get(owner)) return;
  auto dist = distances_from(owner);
  for (std::uint32_t v = 0; v < n_; ++v) {
    if (present_.get(v) && dist[v] == kUnreachable) remove_vertex(v);
  }
}

bool TrustGraph::is_subgraph_of(const TrustGraph& other) const {
  AMBB_CHECK(n_ == other.n_);
  for (std::uint32_t v = 0; v < n_; ++v) {
    if (present_.get(v) && !other.present_.get(v)) return false;
  }
  for (std::uint32_t u = 0; u < n_; ++u) {
    if (!present_.get(u)) continue;
    for (auto vi : adj_[u].ones()) {
      NodeId v = static_cast<NodeId>(vi);
      if (present_.get(v) && !other.has_edge(u, v)) return false;
    }
  }
  return true;
}

}  // namespace ambb
