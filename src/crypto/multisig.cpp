#include "crypto/multisig.hpp"

#include "common/check.hpp"

namespace ambb {

namespace {
void xor_into(Digest& a, const Digest& b) {
  for (std::size_t i = 0; i < a.size(); ++i) a[i] ^= b[i];
}
}  // namespace

MultiSigScheme::MultiSigScheme(const KeyRegistry& registry)
    : registry_(&registry) {}

MultiSig MultiSigScheme::empty() const {
  return MultiSig{BitVec(registry_->n()), Digest{}};
}

Digest MultiSigScheme::piece(NodeId i, const Digest& d) const {
  return registry_->mac_as(i, "msig", d);
}

MultiSig MultiSigScheme::extend(const MultiSig& ms, NodeId i,
                                const Digest& d) const {
  AMBB_CHECK(i < registry_->n());
  AMBB_CHECK_MSG(!ms.signers.get(i), "signer already present in aggregate");
  MultiSig out = ms;
  out.signers.set(i);
  xor_into(out.agg, piece(i, d));
  return out;
}

bool MultiSigScheme::verify(const MultiSig& ms, const Digest& d) const {
  if (ms.signers.size() != registry_->n()) return false;
  Digest expect{};
  for (auto i : ms.signers.ones()) {
    xor_into(expect, piece(static_cast<NodeId>(i), d));
  }
  return expect == ms.agg;
}

}  // namespace ambb
