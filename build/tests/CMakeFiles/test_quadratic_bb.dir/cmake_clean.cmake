file(REMOVE_RECURSE
  "CMakeFiles/test_quadratic_bb.dir/test_quadratic_bb.cpp.o"
  "CMakeFiles/test_quadratic_bb.dir/test_quadratic_bb.cpp.o.d"
  "test_quadratic_bb"
  "test_quadratic_bb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quadratic_bb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
