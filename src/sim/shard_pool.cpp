#include "sim/shard_pool.hpp"

#include "common/check.hpp"

namespace ambb {

ShardPool::ShardPool(unsigned shards) {
  AMBB_CHECK_MSG(shards >= 2, "ShardPool needs >= 2 shards, got " << shards);
  threads_.reserve(shards - 1);
  for (unsigned s = 1; s < shards; ++s) {
    threads_.emplace_back([this, s] { worker_loop(s); });
  }
}

ShardPool::~ShardPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ShardPool::run(Task task, void* ctx) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    task_ = task;
    ctx_ = ctx;
    running_ = static_cast<unsigned>(threads_.size());
    ++generation_;
  }
  start_cv_.notify_all();
  // Shard 0 runs here: the caller is otherwise idle until the join, and
  // in the common 2-shard case this halves the wakeup count.
  task(ctx, 0);
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [this] { return running_ == 0; });
}

void ShardPool::worker_loop(unsigned shard) {
  std::uint64_t seen = 0;
  for (;;) {
    Task task;
    void* ctx;
    {
      std::unique_lock<std::mutex> lk(mu_);
      start_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      task = task_;
      ctx = ctx_;
    }
    task(ctx, shard);
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--running_ == 0) done_cv_.notify_one();
    }
  }
}

}  // namespace ambb
