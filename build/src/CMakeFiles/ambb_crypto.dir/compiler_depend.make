# Empty compiler generated dependencies file for ambb_crypto.
# This may be replaced when dependencies are built.
