// Experiment T1 — Table 1 of the paper: amortized communication cost of
// multi-shot BB protocols with constant-sized inputs.
//
//   Protocol            Fault tolerance   Amortized cost (paper)
//   Berman et al. [5]   f < n/3           O(n^2)        (see DESIGN.md note)
//   Momose-Ren [26]     f <= (1/2-eps)n   O(k n^2)
//   This work (Alg 4)   f <= (1/2-eps)n   O(k n)
//   Dolev-Strong [13]   f < n             O(k n^2+n^3)  (multi-sig)
//   Dolev-Strong [13]   f < n             O(k n^3)      (plain sig)
//   This work (Alg 5.2) f < n             O(k n^2)
//
// We measure every row at fixed n under both a failure-free execution and
// the protocol's worst implemented adversary, amortized over enough slots
// for one-time costs to fade, and print measured bits/slot alongside the
// paper's predicted order (with kappa = 256).
#include "bench_common.hpp"

namespace ambb::bench {
namespace {

struct Row {
  const char* proto;
  const char* paper_row;
  const char* worst_adv;
  double predicted(double n, double kappa) const {
    const std::string p = proto;
    if (p == "phase-king") return n * n;  // crypto-free: no kappa factor
    if (p == "mr-baseline") return kappa * n * n;
    if (p == "linear") return kappa * n;
    if (p == "dolev-strong-msig") return (kappa + n) * n * n;
    if (p == "dolev-strong") return kappa * n * n * n;
    if (p == "quadratic") return kappa * n * n;
    return 0;
  }
};

constexpr Row kRows[] = {
    {"phase-king", "Berman et al. [5], f<n/3", "confuse"},
    {"mr-baseline", "Momose-Ren [26], f<=(1/2-e)n", "mixed"},
    {"linear", "This work Alg.4, f<=(1/2-e)n", "mixed"},
    {"dolev-strong-msig", "Dolev-Strong multi-sig, f<n", "stagger"},
    {"dolev-strong", "Dolev-Strong plain sig, f<n", "stagger"},
    {"quadratic", "This work Alg.5.2, f<n", "silent"},
};

CommonParams params_for(const Row& row, std::uint32_t n,
                        const std::string& adv) {
  CommonParams p;
  p.n = n;
  p.f = protocol(row.proto).max_f(n);
  // The f < n protocols tolerate up to n-1 corruptions, but measuring at
  // f = n-1 leaves a single honest node and trivializes the honest-bits
  // metric; measure with a Theta(n) honest population instead. (The
  // dishonest-MAJORITY capability itself is exercised in the test suite.)
  if (p.f >= n - 1) p.f = n / 2;
  p.seed = 42;
  p.adversary = adv;
  // Enough slots for the additive one-time terms to amortize; heavier
  // baselines get fewer slots (their per-slot cost does not amortize
  // anyway — that is the point).
  const std::string pr = row.proto;
  if (pr == "linear" || pr == "quadratic") {
    p.slots = 3 * n;  // let the one-time O(kappa n^3) terms amortize
  } else {
    p.slots = 8;  // the baselines have no cross-slot state: flat per-slot
  }
  return p;
}

void run_table() {
  // n = 64 keeps the eps = 0.1 expander in the constant-degree regime
  // (degree ~40 < n-1), so Algorithm 4's row shows its linear behavior.
  const std::uint32_t n = 64;
  const double kappa = 256;
  print_header(
      "T1 / Table 1: amortized communication of multi-shot BB (n=64, "
      "kappa=256)",
      "Alg.4 amortizes to O(kn); Alg.5.2 to O(kn^2); every baseline is at "
      "least quadratic per slot");

  std::vector<Job> jobs;
  std::vector<CommonParams> grid;
  for (const Row& row : kRows) {
    for (const std::string& adv : {std::string("none"),
                                  std::string(row.worst_adv)}) {
      CommonParams p = params_for(row, n, adv);
      jobs.push_back(registry_job(row.proto, p));
      grid.push_back(std::move(p));
    }
  }
  const std::vector<RunResult> results = run_jobs(jobs);

  TextTable t({"protocol", "f", "adversary", "slots", "amortized bits/slot",
               "steady-state tail", "paper O(.) @n", "tail/paper"});
  std::size_t i = 0;
  for (const Row& row : kRows) {
    for (const std::string& adv : {std::string("none"),
                                  std::string(row.worst_adv)}) {
      const CommonParams& p = grid[i];
      const RunResult& r = results[i];
      ++i;
      const double tail = r.amortized_tail(p.slots / 2);
      const double pred = row.predicted(n, kappa);
      t.add_row({row.paper_row, std::to_string(p.f), adv,
                 std::to_string(p.slots), TextTable::bits_human(r.amortized()),
                 TextTable::bits_human(tail), TextTable::bits_human(pred),
                 TextTable::num(tail / pred, 2)});
    }
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "Reading: 'tail/paper' is the measured steady-state constant in front "
      "of the paper's asymptotic term;\nwhat matters is the ORDERING of the "
      "rows and that each constant is O(1) (absorbing expander degree,\n"
      "message-type counts and round constants). phase-king is the textbook "
      "variant (DESIGN.md).\n");
}

void BM_Table1Row(::benchmark::State& state) {
  const Row& row = kRows[static_cast<std::size_t>(state.range(0))];
  CommonParams p = params_for(row, 16, "none");
  p.slots = 8;
  for (auto _ : state) {
    RunResult r = protocol(row.proto).run(p);
    ::benchmark::DoNotOptimize(r.honest_bits);
    state.counters["bits_per_slot"] =
        static_cast<double>(r.honest_bits) / p.slots;
  }
}
BENCHMARK(BM_Table1Row)->DenseRange(0, 5)->Unit(::benchmark::kMillisecond);

}  // namespace
}  // namespace ambb::bench

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ambb::bench::run_table();
  return ambb::bench::finish_bench("table1");
}
