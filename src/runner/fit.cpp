#include "runner/fit.hpp"

#include <cmath>

#include "common/check.hpp"

namespace ambb {

double ols_slope(const std::vector<double>& x, const std::vector<double>& y) {
  AMBB_CHECK(x.size() == y.size() && x.size() >= 2);
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  AMBB_CHECK_MSG(denom != 0, "degenerate x values in ols_slope");
  return (n * sxy - sx * sy) / denom;
}

double loglog_slope(const std::vector<double>& x,
                    const std::vector<double>& y) {
  AMBB_CHECK(x.size() == y.size());
  std::vector<double> lx(x.size()), ly(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    AMBB_CHECK_MSG(x[i] > 0 && y[i] > 0, "loglog_slope needs positive data");
    lx[i] = std::log(x[i]);
    ly[i] = std::log(y[i]);
  }
  return ols_slope(lx, ly);
}

}  // namespace ambb
