file(REMOVE_RECURSE
  "CMakeFiles/test_atomic_broadcast.dir/test_atomic_broadcast.cpp.o"
  "CMakeFiles/test_atomic_broadcast.dir/test_atomic_broadcast.cpp.o.d"
  "test_atomic_broadcast"
  "test_atomic_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_atomic_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
