
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/hmac.cpp" "src/CMakeFiles/ambb_crypto.dir/crypto/hmac.cpp.o" "gcc" "src/CMakeFiles/ambb_crypto.dir/crypto/hmac.cpp.o.d"
  "/root/repo/src/crypto/multisig.cpp" "src/CMakeFiles/ambb_crypto.dir/crypto/multisig.cpp.o" "gcc" "src/CMakeFiles/ambb_crypto.dir/crypto/multisig.cpp.o.d"
  "/root/repo/src/crypto/serialize.cpp" "src/CMakeFiles/ambb_crypto.dir/crypto/serialize.cpp.o" "gcc" "src/CMakeFiles/ambb_crypto.dir/crypto/serialize.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/CMakeFiles/ambb_crypto.dir/crypto/sha256.cpp.o" "gcc" "src/CMakeFiles/ambb_crypto.dir/crypto/sha256.cpp.o.d"
  "/root/repo/src/crypto/signer.cpp" "src/CMakeFiles/ambb_crypto.dir/crypto/signer.cpp.o" "gcc" "src/CMakeFiles/ambb_crypto.dir/crypto/signer.cpp.o.d"
  "/root/repo/src/crypto/threshold.cpp" "src/CMakeFiles/ambb_crypto.dir/crypto/threshold.cpp.o" "gcc" "src/CMakeFiles/ambb_crypto.dir/crypto/threshold.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ambb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
