# Empty compiler generated dependencies file for ambb_common.
# This may be replaced when dependencies are built.
