#include "bb/codec.hpp"

#include "common/check.hpp"
#include "crypto/serialize.hpp"

namespace ambb {
namespace {

template <typename KindT>
KindT decode_kind(Decoder& d, KindT count) {
  const std::uint8_t raw = d.get_u8();
  AMBB_CHECK_MSG(raw < static_cast<std::uint8_t>(count),
                 "invalid message kind " << int{raw});
  return static_cast<KindT>(raw);
}

}  // namespace
}  // namespace ambb

// ---------------------------------------------------------------------------
// linear (Algorithm 4)
// ---------------------------------------------------------------------------
namespace ambb::linear {

void encode(const Msg& m, Encoder& e) {
  e.put_u8(static_cast<std::uint8_t>(m.kind));
  e.put_u32(m.slot);
  e.put_u16_checked(m.epoch);
  e.put_u64(m.value);
  e.put_u8(m.has_cert ? 1 : 0);
  if (m.has_cert) {
    e.put_u16_checked(m.cert_epoch);
    encode_thsig(m.cert, e);
  }
  switch (m.kind) {
    case Kind::kCommitProof:
      e.put_u16_checked(m.proof_epoch);
      encode_thsig(m.proof, e);
      break;
    case Kind::kCorruptProof:
      e.put_u32(m.accused);
      encode_thsig(m.proof, e);
      break;
    case Kind::kVote:
    case Kind::kCertVote:
      encode_share(m.share, e);
      break;
    case Kind::kAccuse:
    case Kind::kAccuseForward:
      e.put_u32(m.accused);
      encode_share(m.share, e);
      break;
    case Kind::kPropose:
    case Kind::kPropForward:
      encode_signature(m.sig, e);
      break;
    case Kind::kCert:
    case Kind::kCertForward:
      encode_thsig(m.cert, e);
      break;
    case Kind::kCollect:
    case Kind::kQuery1:
    case Kind::kQuery2:
      break;
    case Kind::kKindCount:
      AMBB_CHECK(false);
  }
}

Msg decode(Decoder& d) {
  Msg m;
  m.kind = decode_kind(d, Kind::kKindCount);
  m.slot = d.get_u32();
  m.epoch = d.get_u16();
  m.value = d.get_u64();
  m.has_cert = d.get_u8() != 0;
  if (m.has_cert) {
    m.cert_epoch = d.get_u16();
    m.cert = decode_thsig(d);
  }
  switch (m.kind) {
    case Kind::kCommitProof:
      m.proof_epoch = d.get_u16();
      m.proof = decode_thsig(d);
      break;
    case Kind::kCorruptProof:
      m.accused = d.get_u32();
      m.proof = decode_thsig(d);
      break;
    case Kind::kVote:
    case Kind::kCertVote:
      m.share = decode_share(d);
      break;
    case Kind::kAccuse:
    case Kind::kAccuseForward:
      m.accused = d.get_u32();
      m.share = decode_share(d);
      break;
    case Kind::kPropose:
    case Kind::kPropForward:
      m.sig = decode_signature(d);
      break;
    case Kind::kCert:
    case Kind::kCertForward:
      m.cert = decode_thsig(d);
      break;
    case Kind::kCollect:
    case Kind::kQuery1:
    case Kind::kQuery2:
      break;
    case Kind::kKindCount:
      AMBB_CHECK(false);
  }
  return m;
}

bool operator==(const Msg& a, const Msg& b) {
  if (a.kind != b.kind || a.slot != b.slot || a.epoch != b.epoch ||
      a.value != b.value || a.has_cert != b.has_cert) {
    return false;
  }
  if (a.has_cert && (a.cert_epoch != b.cert_epoch || !(a.cert == b.cert))) {
    return false;
  }
  switch (a.kind) {
    case Kind::kCommitProof:
      return a.proof_epoch == b.proof_epoch && a.proof == b.proof;
    case Kind::kCorruptProof:
      return a.accused == b.accused && a.proof == b.proof;
    case Kind::kVote:
    case Kind::kCertVote:
      return a.share == b.share;
    case Kind::kAccuse:
    case Kind::kAccuseForward:
      return a.accused == b.accused && a.share == b.share;
    case Kind::kPropose:
    case Kind::kPropForward:
      return a.sig == b.sig;
    case Kind::kCert:
    case Kind::kCertForward:
      return a.cert == b.cert;
    default:
      return true;
  }
}

}  // namespace ambb::linear

// ---------------------------------------------------------------------------
// quad (TrustCast / Algorithm 5.2)
// ---------------------------------------------------------------------------
namespace ambb::quad {

void encode(const Msg& m, Encoder& e) {
  e.put_u8(static_cast<std::uint8_t>(m.kind));
  e.put_u32(m.slot);
  e.put_u64(m.value);
  e.put_u32(m.accused);
  encode_signature(m.sig, e);
}

Msg decode(Decoder& d) {
  Msg m;
  m.kind = decode_kind(d, Kind::kKindCount);
  m.slot = d.get_u32();
  m.value = d.get_u64();
  m.accused = d.get_u32();
  m.sig = decode_signature(d);
  return m;
}

bool operator==(const Msg& a, const Msg& b) {
  return a.kind == b.kind && a.slot == b.slot && a.value == b.value &&
         a.accused == b.accused && a.sig == b.sig;
}

}  // namespace ambb::quad

// ---------------------------------------------------------------------------
// ds (Dolev-Strong)
// ---------------------------------------------------------------------------
namespace ambb::ds {

void encode(const Msg& m, Encoder& e) {
  e.put_u8(static_cast<std::uint8_t>(m.kind));
  e.put_u32(m.slot);
  e.put_u64(m.value);
  e.put_u16_checked(m.chain.size());
  for (const auto& s : m.chain) encode_signature(s, e);
  encode_multisig(m.agg, e);
}

Msg decode(Decoder& d) {
  Msg m;
  m.kind = decode_kind(d, Kind::kKindCount);
  m.slot = d.get_u32();
  m.value = d.get_u64();
  const std::uint16_t count = d.get_u16();
  m.chain.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    m.chain.push_back(decode_signature(d));
  }
  m.agg = decode_multisig(d);
  return m;
}

bool operator==(const Msg& a, const Msg& b) {
  return a.kind == b.kind && a.slot == b.slot && a.value == b.value &&
         a.chain == b.chain && a.agg.signers == b.agg.signers &&
         a.agg.agg == b.agg.agg;
}

}  // namespace ambb::ds

// ---------------------------------------------------------------------------
// pk (phase king)
// ---------------------------------------------------------------------------
namespace ambb::pk {

void encode(const Msg& m, Encoder& e) {
  e.put_u8(static_cast<std::uint8_t>(m.kind));
  e.put_u32(m.slot);
  e.put_u32(m.phase);
  e.put_u8(m.has_value ? 1 : 0);
  if (m.has_value) e.put_u64(m.value);
}

Msg decode(Decoder& d) {
  Msg m;
  m.kind = decode_kind(d, Kind::kKindCount);
  m.slot = d.get_u32();
  m.phase = d.get_u32();
  m.has_value = d.get_u8() != 0;
  if (m.has_value) m.value = d.get_u64();
  return m;
}

bool operator==(const Msg& a, const Msg& b) {
  return a.kind == b.kind && a.slot == b.slot && a.phase == b.phase &&
         a.has_value == b.has_value &&
         (!a.has_value || a.value == b.value);
}

}  // namespace ambb::pk

// ---------------------------------------------------------------------------
// hs (HotStuff demo)
// ---------------------------------------------------------------------------
namespace ambb::hs {

void encode(const Msg& m, Encoder& e) {
  e.put_u8(static_cast<std::uint8_t>(m.kind));
  e.put_u32(m.slot);
  e.put_u64(m.value);
  switch (m.kind) {
    case Kind::kPropose:
      encode_signature(m.sig, e);
      break;
    case Kind::kVote1:
    case Kind::kVote2:
      encode_share(m.share, e);
      break;
    case Kind::kCert:
    case Kind::kProof:
      encode_thsig(m.thsig, e);
      break;
    case Kind::kKindCount:
      AMBB_CHECK(false);
  }
}

Msg decode(Decoder& d) {
  Msg m;
  m.kind = decode_kind(d, Kind::kKindCount);
  m.slot = d.get_u32();
  m.value = d.get_u64();
  switch (m.kind) {
    case Kind::kPropose:
      m.sig = decode_signature(d);
      break;
    case Kind::kVote1:
    case Kind::kVote2:
      m.share = decode_share(d);
      break;
    case Kind::kCert:
    case Kind::kProof:
      m.thsig = decode_thsig(d);
      break;
    case Kind::kKindCount:
      AMBB_CHECK(false);
  }
  return m;
}

bool operator==(const Msg& a, const Msg& b) {
  if (a.kind != b.kind || a.slot != b.slot || a.value != b.value) {
    return false;
  }
  switch (a.kind) {
    case Kind::kPropose:
      return a.sig == b.sig;
    case Kind::kVote1:
    case Kind::kVote2:
      return a.share == b.share;
    case Kind::kCert:
    case Kind::kProof:
      return a.thsig == b.thsig;
    default:
      return true;
  }
}

}  // namespace ambb::hs
