// Digest and verification-result interning (DESIGN.md §14).
//
// Protocol runs recompute the same pure functions relentlessly: every
// recipient of a vote re-derives the same canonical encoding and hashes
// it, and every verifier of a signature recomputes the same HMAC. Both
// functions are pure, so their results are interned in flat direct-mapped
// caches:
//
//   DigestCache  (domain tag, canonical bytes)        -> SHA-256 digest
//   VerifyCache  (key owner, domain tag, digest)      -> HMAC value
//
// Direct-mapped with overwrite-on-collision: a collision costs one
// recomputation, never correctness — the cache is a pure observer of a
// pure function. Lookups compare the FULL key (tag and bytes), so two
// tag-distinct encodings can never alias an entry; domain separation is
// preserved bit-for-bit.
//
// Threading: DigestCache::local() is thread-local (one cache per
// worker thread), and KeyRegistry's MAC memo lives in a thread-local
// VerifyCache keyed on the registry uid (cleared when a thread switches
// registries) — node-sharded rounds share one registry across worker
// threads, so the cache cannot live inside the registry itself. No
// locks, no sharing, race-free under any --jobs / --node-jobs setting.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "crypto/sha256.hpp"

namespace ambb {

class DigestCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;  ///< overwrites of a live entry
  };

  static constexpr std::uint32_t kDefaultLog2Entries = 14;
  /// Keys at most this long are stored inline in the table; longer keys
  /// (extension-protocol payloads, Merkle leaf chunks) spill to a heap
  /// side allocation owned by the entry.
  static constexpr std::size_t kInlineKeyBytes = 96;

  explicit DigestCache(std::uint32_t log2_entries = kDefaultLog2Entries);

  /// Memoized Sha256::hash(canonical). `domain` names the encoding family
  /// ("vote", "mrk-node", ...) and is part of the cache key — it never
  /// feeds the hash itself, so the returned digest is bit-identical to an
  /// uncached Sha256::hash(canonical).
  Digest hash(std::string_view domain, std::span<const std::uint8_t> canonical);

  /// The calling thread's cache. One per engine worker; results are pure,
  /// so sharing a cache across runs is unobservable.
  static DigestCache& local();

  const Stats& stats() const { return stats_; }
  std::size_t capacity() const { return table_.size(); }

 private:
  struct Entry {
    std::uint64_t key_hash = 0;
    std::uint32_t key_len = 0;    ///< domain_len + canonical length
    std::uint16_t domain_len = 0;
    bool used = false;
    std::array<std::uint8_t, kInlineKeyBytes> inline_key{};
    std::unique_ptr<std::uint8_t[]> long_key;  ///< when key_len > inline
    Digest value{};
  };

  std::vector<Entry> table_;
  std::uint64_t mask_;
  Stats stats_;
};

/// Flat MAC memo for KeyRegistry: every sign/verify/mac_as/master_mac is a
/// pure function of (key owner, domain tag, digest). Replaces the former
/// unordered_map node-per-insert cache with a fixed direct-mapped table so
/// steady-state inserts never touch the heap.
class VerifyCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  static constexpr std::uint32_t kDefaultLog2Entries = 15;

  explicit VerifyCache(std::uint32_t log2_entries = kDefaultLog2Entries);

  /// The memoized MAC for (owner, domain, d), or nullptr. The pointer is
  /// valid until the next store().
  const Digest* find(std::uint32_t owner, std::uint64_t domain,
                     const Digest& d) const;

  void store(std::uint32_t owner, std::uint64_t domain, const Digest& d,
             const Digest& mac);

  /// Drop every entry (stats are kept). Used by the thread-local MAC
  /// caches in KeyRegistry when the calling thread switches registries:
  /// entries memoize MACs under one registry's keys and must never be
  /// served for another.
  void clear();

  const Stats& stats() const { return stats_; }
  std::size_t capacity() const { return table_.size(); }

 private:
  struct Entry {
    std::uint64_t domain = 0;
    std::uint32_t owner = 0;
    bool used = false;
    Digest digest{};
    Digest mac{};
  };

  std::size_t index_of(std::uint32_t owner, std::uint64_t domain,
                       const Digest& d) const {
    // The digest is SHA-256 output; its first bytes are already uniform.
    std::uint64_t h = 0;
    for (int i = 0; i < 8; ++i) h = h << 8 | d[i];
    h ^= domain ^ (std::uint64_t{owner} << 32);
    return static_cast<std::size_t>(h & mask_);
  }

  std::vector<Entry> table_;
  std::uint64_t mask_;
  mutable Stats stats_;
};

}  // namespace ambb
