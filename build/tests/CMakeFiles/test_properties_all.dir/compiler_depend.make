# Empty compiler generated dependencies file for test_properties_all.
# This may be replaced when dependencies are built.
