// Wire-size model.
//
// The paper's metric is bits sent by honest nodes, with kappa the width of
// any signature object and constant-size values. Every protocol message
// computes its exact bit size through this model so measured costs are
// directly comparable with the asymptotic rows of Table 1.
#pragma once

#include <cstdint>

#include "common/check.hpp"
#include "common/types.hpp"

namespace ambb {

struct WireModel {
  std::uint32_t n = 0;                        ///< number of nodes
  std::uint32_t kappa_bits = kDefaultKappaBits;  ///< |signature| = |hash|
  std::uint32_t value_bits = kDefaultValueBits;  ///< |broadcast value|

  /// Bits to name one node. ceil(log2(n)), min 1.
  std::uint32_t id_bits() const {
    AMBB_CHECK(n >= 1);
    std::uint32_t b = 1;
    while ((std::uint64_t{1} << b) < n) ++b;
    return b;
  }

  /// Fixed per-message header: message kind (8) + slot (32) + epoch (16).
  std::uint32_t header_bits() const { return 8 + 32 + 16; }

  /// One plain signature or one threshold-signature share: the kappa-bit
  /// MAC plus the signer id.
  std::uint32_t sig_bits() const { return kappa_bits + id_bits(); }

  /// A combined (t,n)-threshold signature: same length as a single share's
  /// MAC (the paper's assumption); no signer id needed.
  std::uint32_t thsig_bits() const { return kappa_bits; }

  /// A multi-signature: one kappa-bit aggregate plus an n-bit signer bitmap.
  std::uint32_t multisig_bits() const { return kappa_bits + n; }
};

}  // namespace ambb
