file(REMOVE_RECURSE
  "CMakeFiles/test_sequentiality.dir/test_sequentiality.cpp.o"
  "CMakeFiles/test_sequentiality.dir/test_sequentiality.cpp.o.d"
  "test_sequentiality"
  "test_sequentiality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sequentiality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
