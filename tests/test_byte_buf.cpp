#include "common/byte_buf.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace ambb {
namespace {

TEST(Encoder, WidthsAreExact) {
  Encoder e;
  e.put_u8(1);
  EXPECT_EQ(e.size(), 1u);
  e.put_u16(1);
  EXPECT_EQ(e.size(), 3u);
  e.put_u32(1);
  EXPECT_EQ(e.size(), 7u);
  e.put_u64(1);
  EXPECT_EQ(e.size(), 15u);
}

TEST(EncoderDecoder, RoundTrip) {
  Encoder e;
  e.put_u8(0xAB);
  e.put_u16(0x1234);
  e.put_u32(0xDEADBEEF);
  e.put_u64(0x0123456789ABCDEFull);
  Decoder d(e.bytes());
  EXPECT_EQ(d.get_u8(), 0xAB);
  EXPECT_EQ(d.get_u16(), 0x1234);
  EXPECT_EQ(d.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(d.get_u64(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(d.exhausted());
}

TEST(EncoderDecoder, BigEndianOrder) {
  Encoder e;
  e.put_u32(0x01020304);
  ASSERT_EQ(e.size(), 4u);
  EXPECT_EQ(e.bytes()[0], 0x01);
  EXPECT_EQ(e.bytes()[3], 0x04);
}

TEST(Encoder, TagsAreLengthPrefixed) {
  // "ab" + "c" must differ from "a" + "bc".
  Encoder e1, e2;
  e1.put_tag("ab");
  e1.put_tag("c");
  e2.put_tag("a");
  e2.put_tag("bc");
  EXPECT_NE(e1.bytes(), e2.bytes());
}

TEST(Encoder, BytesAppended) {
  Encoder e;
  const std::uint8_t data[3] = {9, 8, 7};
  e.put_bytes(std::span<const std::uint8_t>(data, 3));
  Decoder d(e.bytes());
  auto out = d.get_bytes(3);
  EXPECT_EQ(out, std::vector<std::uint8_t>({9, 8, 7}));
}

TEST(Decoder, UnderrunThrows) {
  Encoder e;
  e.put_u8(1);
  Decoder d(e.bytes());
  d.get_u8();
  EXPECT_THROW(d.get_u8(), CheckError);
}

TEST(Decoder, RemainingTracksPosition) {
  Encoder e;
  e.put_u32(5);
  Decoder d(e.bytes());
  EXPECT_EQ(d.remaining(), 4u);
  d.get_u16();
  EXPECT_EQ(d.remaining(), 2u);
}

TEST(Decoder, HostileLengthNearSizeMaxThrows) {
  // The old bound check computed pos_ + len, which wraps for len near
  // SIZE_MAX and "passes" — get_bytes would then read far out of bounds.
  Encoder e;
  e.put_u32(0xAABBCCDD);
  Decoder d(e.bytes());
  d.get_u16();  // pos_ = 2, so pos_ + SIZE_MAX wraps to 1 < size()
  EXPECT_THROW(d.get_bytes(SIZE_MAX), CheckError);
  EXPECT_THROW(d.get_bytes(SIZE_MAX - 1), CheckError);
  EXPECT_THROW(d.get_bytes(3), CheckError);  // honest but too long
  EXPECT_EQ(d.get_bytes(2).size(), 2u);      // exact remainder still fine
}

TEST(Encoder, PutU16CheckedRejectsWideValues) {
  Encoder e;
  e.put_u16_checked(0xFFFF);  // max fits
  EXPECT_EQ(e.size(), 2u);
  EXPECT_THROW(e.put_u16_checked(0x10000), CheckError);
  EXPECT_THROW(e.put_u16_checked(std::uint64_t{1} << 40), CheckError);
}

TEST(Encoder, ScratchReacquireMidEncodeThrows) {
  Encoder& e = Encoder::scratch();
  e.put_u8(1);
  // Nested acquisition used to silently clear the outer encoding; the
  // busy flag turns that corruption into a diagnostic.
  EXPECT_THROW(Encoder::scratch(), CheckError);
  // The outer encoding is untouched and still consumable.
  EXPECT_EQ(e.view().size(), 1u);
  // view() released the guard: re-acquisition is legal again and clears.
  Encoder& e2 = Encoder::scratch();
  EXPECT_EQ(e2.size(), 0u);
  e2.clear();  // release for later tests on this thread
}

TEST(Encoder, ScratchClearReleasesGuard) {
  Encoder& e = Encoder::scratch();
  e.put_u16(7);
  e.clear();  // abandoned encoding
  Encoder& e2 = Encoder::scratch();
  e2.put_u16(8);
  EXPECT_EQ(e2.bytes().size(), 2u);  // bytes() also releases
  EXPECT_NO_THROW(Encoder::scratch());
  e2.clear();  // same thread_local instance; release for later tests
}

}  // namespace
}  // namespace ambb
