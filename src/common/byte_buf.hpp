// Canonical byte encoding used to derive signing digests and wire sizes.
//
// Every signed object in the protocols is encoded through an Encoder before
// being hashed; this guarantees that two semantically different messages
// never produce the same digest (all fields are length/width-explicit,
// big-endian).
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <string_view>
#include <vector>

namespace ambb {

class Encoder {
 public:
  void put_u8(std::uint8_t v) { buf_.push_back(v); }
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_bytes(std::span<const std::uint8_t> bytes);
  /// Tag strings disambiguate message kinds inside digests ("vote", ...).
  void put_tag(std::string_view tag);

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Matching decoder; used by codec round-trip tests and by components that
/// genuinely re-parse (e.g. signature-chain validation in Dolev-Strong).
class Decoder {
 public:
  explicit Decoder(std::span<const std::uint8_t> bytes) : buf_(bytes) {}

  std::uint8_t get_u8();
  std::uint16_t get_u16();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  std::vector<std::uint8_t> get_bytes(std::size_t len);

  bool exhausted() const { return pos_ == buf_.size(); }
  std::size_t remaining() const { return buf_.size() - pos_; }

 private:
  std::span<const std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

}  // namespace ambb
