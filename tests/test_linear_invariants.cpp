// Lemma-level invariants of Algorithm 4, checked by inspecting the live
// actors through the driver's test hooks.
//
//   - Lemma 3 corollary: no corrupt-proof ever forms on an honest node
//     (otherwise honest-leader epochs could be skipped and termination
//     would break) under every implemented adversary.
//   - Accusation bookkeeping: honest nodes never accuse honest nodes under
//     the implemented adversaries; accusations are monotone and within
//     budget.
//   - Expensive-epoch bound: total query2 emissions by one honest node
//     are bounded by f (each consumes a fresh accusation).
#include "bb/linear_bb.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace ambb::linear {
namespace {

class LinearInvariants : public ::testing::TestWithParam<std::string> {};

TEST_P(LinearInvariants, NoCorruptProofOnHonestNodes) {
  LinearConfig cfg;
  cfg.n = 16;
  cfg.f = 5;
  cfg.slots = 10;
  cfg.seed = 11;
  cfg.adversary = GetParam();
  cfg.inspect = [&](Sim& sim) {
    for (NodeId u = 0; u < cfg.n; ++u) {
      if (sim.is_corrupt(u)) continue;
      auto* node = dynamic_cast<LinearNode*>(sim.actor(u));
      ASSERT_NE(node, nullptr);
      for (NodeId v = 0; v < cfg.n; ++v) {
        if (sim.is_corrupt(v)) continue;
        EXPECT_FALSE(node->has_corrupt_proof(v))
            << "honest node " << u << " holds a corrupt-proof on honest "
            << v << " under adversary " << cfg.adversary;
      }
    }
  };
  auto r = run_linear(cfg);
  EXPECT_TRUE(check_all(r).empty());
}

TEST_P(LinearInvariants, HonestNodesNeverAccuseHonestNodes) {
  LinearConfig cfg;
  cfg.n = 16;
  cfg.f = 5;
  cfg.slots = 10;
  cfg.seed = 29;
  cfg.adversary = GetParam();
  cfg.inspect = [&](Sim& sim) {
    for (NodeId u = 0; u < cfg.n; ++u) {
      if (sim.is_corrupt(u)) continue;
      auto* node = dynamic_cast<LinearNode*>(sim.actor(u));
      ASSERT_NE(node, nullptr);
      for (NodeId v = 0; v < cfg.n; ++v) {
        if (sim.is_corrupt(v) || v == u) continue;
        EXPECT_FALSE(node->accused(v))
            << "honest " << u << " accused honest " << v << " under "
            << cfg.adversary;
      }
    }
  };
  auto r = run_linear(cfg);
  EXPECT_TRUE(check_all(r).empty());
}

TEST_P(LinearInvariants, Query2BoundedByFreshAccusations) {
  LinearConfig cfg;
  cfg.n = 16;
  cfg.f = 5;
  cfg.slots = 12;
  cfg.seed = 31;
  cfg.adversary = GetParam();
  cfg.inspect = [&](Sim& sim) {
    for (NodeId u = 0; u < cfg.n; ++u) {
      if (sim.is_corrupt(u)) continue;
      auto* node = dynamic_cast<LinearNode*>(sim.actor(u));
      ASSERT_NE(node, nullptr);
      // Each query2 consumes a fresh accusation by u, of which there can
      // be at most f against corrupt nodes (honest are never accused).
      EXPECT_LE(node->expensive_epochs(), cfg.f)
          << "node " << u << " under " << cfg.adversary;
      EXPECT_LE(node->accused_by_me().count(), cfg.f + 1)
          << "node " << u << " under " << cfg.adversary;
    }
  };
  auto r = run_linear(cfg);
  EXPECT_TRUE(check_all(r).empty());
}

INSTANTIATE_TEST_SUITE_P(Adversaries, LinearInvariants,
                         ::testing::Values("none", "silent", "equivocate",
                                           "selective", "flood", "mixed",
                                           "adaptive-erase"),
                         [](const auto& info) {
                           std::string s = info.param;
                           std::replace(s.begin(), s.end(), '-', '_');
                           return s;
                         });

TEST(LinearInvariants, AccusationKnowledgeMonotone) {
  // Accusation sets only grow across rounds (monotonicity underpins the
  // amortization argument).
  LinearConfig cfg;
  cfg.n = 12;
  cfg.f = 4;
  cfg.slots = 6;
  cfg.seed = 17;
  cfg.adversary = "mixed";
  std::vector<std::size_t> last_counts(cfg.n, 0);
  cfg.on_round_end = [&](Round, Sim& sim) {
    for (NodeId u = 0; u < cfg.n; ++u) {
      if (sim.is_corrupt(u)) continue;
      auto* node = dynamic_cast<LinearNode*>(sim.actor(u));
      if (node == nullptr) continue;
      std::size_t total = 0;
      for (NodeId w = 0; w < cfg.n; ++w) {
        for (NodeId v = 0; v < cfg.n; ++v) {
          if (node->seen_accuse(w, v)) ++total;
        }
      }
      ASSERT_GE(total, last_counts[u]);
      last_counts[u] = total;
    }
  };
  auto r = run_linear(cfg);
  EXPECT_TRUE(check_all(r).empty());
}

TEST(LinearInvariants, SilentLeadersGetConvictedExactlyOnce) {
  // Under the all-silent adversary every corrupt node ends up with a
  // corrupt-proof at every honest node, and stays convicted.
  LinearConfig cfg;
  cfg.n = 16;
  cfg.f = 5;
  cfg.slots = 12;
  cfg.seed = 3;
  cfg.adversary = "silent";
  cfg.inspect = [&](Sim& sim) {
    for (NodeId u = 0; u < cfg.n; ++u) {
      if (sim.is_corrupt(u)) continue;
      auto* node = dynamic_cast<LinearNode*>(sim.actor(u));
      ASSERT_NE(node, nullptr);
      for (NodeId v = 0; v < cfg.f; ++v) {
        EXPECT_TRUE(node->has_corrupt_proof(v))
            << "silent corrupt node " << v << " not convicted at " << u;
      }
    }
  };
  auto r = run_linear(cfg);
  EXPECT_TRUE(check_all(r).empty());
}

}  // namespace
}  // namespace ambb::linear
