// Quantitative checks of the paper's communication-complexity claims
// (Sections 4.2 and 5.4) on measured executions:
//   - Algorithm 4: steady-state amortized cost is O(kappa * n) — linear in
//     n — under every implemented adversary; one-time costs amortize away
//     as L grows.
//   - Algorithm 5.2: steady-state amortized cost is O(kappa * n^2); the
//     Dolev-Strong phase fires at most f times overall.
//   - Baselines: Dolev-Strong (plain) scales ~n^3 per slot; the MR-style
//     baseline ~n^2 per slot; Algorithm 4 scales ~n.
#include <gtest/gtest.h>

#include "bb/dolev_strong.hpp"
#include "bb/linear_bb.hpp"
#include "bb/quadratic_bb.hpp"
#include "runner/fit.hpp"

namespace ambb {
namespace {

double linear_tail(std::uint32_t n, const std::string& adv, Slot slots,
                   Slot warmup, linear::Options opts = {},
                   double eps = 0.1) {
  linear::LinearConfig cfg;
  cfg.n = n;
  cfg.f = static_cast<std::uint32_t>((0.5 - eps) * n);
  cfg.slots = slots;
  cfg.seed = 5;
  cfg.eps = eps;
  cfg.adversary = adv;
  cfg.opts = opts;
  auto r = linear::run_linear(cfg);
  EXPECT_TRUE(check_all(r).empty()) << adv;
  return r.amortized_tail(warmup);
}

TEST(CostBounds, LinearSteadyStateIsLinearInN) {
  // Steady-state (post-warmup) amortized bits should grow ~n, not ~n^2.
  // Constant expander degree requires eps = 0.2 (degree 20) so the
  // sweep stays out of the small-n complete-graph regime, and the warmup
  // must scale with n so the O(kappa n^3) one-time costs fall out.
  std::vector<double> ns, costs;
  for (std::uint32_t n : {24u, 32u, 48u, 64u}) {
    ns.push_back(n);
    costs.push_back(linear_tail(n, "mixed", static_cast<Slot>(3 * n),
                                static_cast<Slot>(2 * n), {}, 0.2));
  }
  const double slope = loglog_slope(ns, costs);
  EXPECT_LT(slope, 1.6) << "Algorithm 4 steady state should be ~linear";
  EXPECT_GT(slope, 0.4);
}

TEST(CostBounds, LinearOneTimeCostsAmortizeAway) {
  linear::LinearConfig cfg;
  cfg.n = 16;
  cfg.f = 6;
  cfg.slots = 48;
  cfg.seed = 5;
  cfg.adversary = "mixed";
  auto r = linear::run_linear(cfg);
  ASSERT_TRUE(check_all(r).empty());
  // C(L)/L must decrease as L grows (kappa*n^3 term fading).
  EXPECT_LT(r.amortized(48), r.amortized(8));
  EXPECT_LT(r.amortized_tail(24), r.amortized(8));
}

TEST(CostBounds, LinearBeatsMrBaselineAtSteadyState) {
  const double alg4 = linear_tail(24, "mixed", 24, 12);
  const double mr =
      linear_tail(24, "mixed", 24, 12, linear::Options::mr_baseline());
  EXPECT_LT(alg4, mr * 0.8)
      << "Algorithm 4 should clearly beat the always-forward baseline";
}

TEST(CostBounds, MrBaselineIsQuadraticInN) {
  std::vector<double> ns, costs;
  for (std::uint32_t n : {12u, 16u, 24u, 32u}) {
    ns.push_back(n);
    costs.push_back(
        linear_tail(n, "none", 8, 2, linear::Options::mr_baseline()));
  }
  const double slope = loglog_slope(ns, costs);
  EXPECT_GT(slope, 1.6);
  EXPECT_LT(slope, 2.5);
}

TEST(CostBounds, QuadraticSteadyStateIsQuadraticInN) {
  std::vector<double> ns, costs;
  for (std::uint32_t n : {8u, 12u, 16u, 24u}) {
    quad::QuadConfig cfg;
    cfg.n = n;
    cfg.f = n / 2;
    cfg.slots = static_cast<Slot>(3 * n);
    cfg.seed = 5;
    cfg.adversary = "silent";
    auto r = quad::run_quadratic(cfg);
    ASSERT_TRUE(check_all(r).empty());
    ns.push_back(n);
    costs.push_back(r.amortized_tail(static_cast<Slot>(2 * n)));
  }
  const double slope = loglog_slope(ns, costs);
  EXPECT_GT(slope, 1.5);
  EXPECT_LT(slope, 2.6);
}

TEST(CostBounds, QuadraticDolevStrongPhaseBounded) {
  // Corrupt-vote traffic is shared across slots: the "corrupt" kind's
  // total bits must not grow once every corrupt sender has been convicted.
  quad::QuadConfig cfg;
  cfg.n = 8;
  cfg.f = 4;
  cfg.seed = 5;
  cfg.adversary = "silent";
  cfg.slots = 16;
  auto r1 = quad::run_quadratic(cfg);
  cfg.slots = 48;
  auto r2 = quad::run_quadratic(cfg);
  ASSERT_TRUE(check_all(r1).empty());
  ASSERT_TRUE(check_all(r2).empty());
  std::uint64_t corrupt1 = 0, corrupt2 = 0;
  for (std::size_t i = 0; i < r1.kind_names.size(); ++i) {
    if (r1.kind_names[i] == "corrupt") {
      corrupt1 = r1.per_kind_bits[i];
      corrupt2 = r2.per_kind_bits[i];
    }
  }
  EXPECT_GT(corrupt1, 0u);
  EXPECT_EQ(corrupt1, corrupt2)
      << "Dolev-Strong phase traffic must stop after f convictions";
}

TEST(CostBounds, DolevStrongBenignIsQuadraticInN) {
  // With an honest sender, chains stay length <= 2 and one relay wave
  // fires: Theta(kappa n^2) per slot.
  std::vector<double> ns, costs;
  for (std::uint32_t n : {8u, 12u, 16u, 24u}) {
    ds::DsConfig cfg;
    cfg.n = n;
    cfg.f = n - 2;
    cfg.slots = 4;
    cfg.seed = 5;
    cfg.adversary = "none";
    auto r = ds::run_dolev_strong(cfg);
    ASSERT_TRUE(check_all(r).empty());
    ns.push_back(n);
    costs.push_back(r.amortized());
  }
  const double slope = loglog_slope(ns, costs);
  EXPECT_GT(slope, 1.6);
  EXPECT_LT(slope, 2.5);
}

TEST(CostBounds, DolevStrongWorstCaseIsCubicInN) {
  // The stagger attack injects a second value with a Theta(n)-signature
  // chain, forcing a relay wave of Theta(n)-sized messages: the kappa n^3
  // row of Table 1.
  std::vector<double> ns, costs;
  for (std::uint32_t n : {8u, 12u, 16u, 24u, 32u}) {
    ds::DsConfig cfg;
    cfg.n = n;
    // f = n/2: chains are Theta(n) long AND Theta(n) honest nodes relay
    // them (with f = n-2 only two honest nodes exist and the wave is
    // quadratic).
    cfg.f = n / 2;
    cfg.slots = 4;  // senders 0..3 corrupt, every slot staggered
    cfg.seed = 5;
    cfg.adversary = "stagger";
    auto r = ds::run_dolev_strong(cfg);
    ASSERT_TRUE(check_all(r).empty());
    ns.push_back(n);
    costs.push_back(r.amortized());
  }
  const double slope = loglog_slope(ns, costs);
  EXPECT_GT(slope, 2.3);
  EXPECT_LT(slope, 3.4);
}

TEST(CostBounds, LinearTotalWithinPaperEnvelope) {
  // C(L) <= c1 * kappa * n * L + c2 * kappa * n^3 for generous constants:
  // checks the additive structure, not just the limit.
  for (const char* adv : {"silent", "mixed", "selective"}) {
    linear::LinearConfig cfg;
    cfg.n = 20;
    cfg.f = 8;
    cfg.slots = 30;
    cfg.seed = 9;
    cfg.adversary = adv;
    auto r = linear::run_linear(cfg);
    ASSERT_TRUE(check_all(r).empty()) << adv;
    const double kappa = 256, n = 20, L = 30;
    // The linear term's constant absorbs the expander degree (~40) and
    // the handful of per-epoch message types.
    const double envelope = 100 * kappa * n * L + 2 * kappa * n * n * n;
    EXPECT_LT(static_cast<double>(r.honest_bits), envelope) << adv;
  }
}

TEST(CostBounds, FloodAttackDamageIsBounded) {
  // A query2-flooder elicits Respond-2 traffic, but only while it has
  // fresh nodes to accuse: doubling L must not double the damage.
  linear::LinearConfig cfg;
  cfg.n = 16;
  cfg.f = 6;
  cfg.seed = 5;
  cfg.adversary = "flood";
  cfg.slots = 16;
  auto r1 = linear::run_linear(cfg);
  cfg.slots = 48;
  auto r2 = linear::run_linear(cfg);
  ASSERT_TRUE(check_all(r1).empty());
  ASSERT_TRUE(check_all(r2).empty());
  // Steady-state tail must be much cheaper than the flooding period.
  EXPECT_LT(r2.amortized_tail(24), r2.amortized(16) * 0.9);
}

}  // namespace
}  // namespace ambb
