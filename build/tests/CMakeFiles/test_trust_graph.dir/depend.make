# Empty dependencies file for test_trust_graph.
# This may be replaced when dependencies are built.
