file(REMOVE_RECURSE
  "CMakeFiles/test_trust_graph.dir/test_trust_graph.cpp.o"
  "CMakeFiles/test_trust_graph.dir/test_trust_graph.cpp.o.d"
  "test_trust_graph"
  "test_trust_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trust_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
