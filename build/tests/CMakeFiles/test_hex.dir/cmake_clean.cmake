file(REMOVE_RECURSE
  "CMakeFiles/test_hex.dir/test_hex.cpp.o"
  "CMakeFiles/test_hex.dir/test_hex.cpp.o.d"
  "test_hex"
  "test_hex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
