#include "crypto/hmac.hpp"

#include <array>
#include <cstring>

namespace ambb {

Digest hmac_sha256(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> message) {
  std::array<std::uint8_t, 64> block{};
  if (key.size() > 64) {
    const Digest kd = Sha256::hash(key);
    std::memcpy(block.data(), kd.data(), kd.size());
  } else {
    std::memcpy(block.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, 64> ipad, opad;
  for (int i = 0; i < 64; ++i) {
    ipad[i] = block[i] ^ 0x36;
    opad[i] = block[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(std::span<const std::uint8_t>(ipad.data(), ipad.size()));
  inner.update(message);
  const Digest inner_d = inner.finalize();

  Sha256 outer;
  outer.update(std::span<const std::uint8_t>(opad.data(), opad.size()));
  outer.update(std::span<const std::uint8_t>(inner_d.data(), inner_d.size()));
  return outer.finalize();
}

Digest hmac_sha256(const Digest& key, const Digest& message) {
  return hmac_sha256(std::span<const std::uint8_t>(key.data(), key.size()),
                     std::span<const std::uint8_t>(message.data(), message.size()));
}

HmacKey::HmacKey(const Digest& key) {
  // A 32-byte key never exceeds the block size, so it is zero-padded
  // directly (no pre-hash), matching hmac_sha256 above.
  std::array<std::uint8_t, 64> ipad{}, opad{};
  for (std::size_t i = 0; i < key.size(); ++i) {
    ipad[i] = key[i] ^ 0x36;
    opad[i] = key[i] ^ 0x5c;
  }
  for (std::size_t i = key.size(); i < 64; ++i) {
    ipad[i] = 0x36;
    opad[i] = 0x5c;
  }
  Sha256 in;
  in.update(std::span<const std::uint8_t>(ipad.data(), ipad.size()));
  inner_ = in.midstate();
  Sha256 out;
  out.update(std::span<const std::uint8_t>(opad.data(), opad.size()));
  outer_ = out.midstate();
}

Digest HmacKey::mac(const Digest& message) const {
  Sha256 in(inner_);
  in.update(std::span<const std::uint8_t>(message.data(), message.size()));
  const Digest inner_d = in.finalize();
  Sha256 out(outer_);
  out.update(std::span<const std::uint8_t>(inner_d.data(), inner_d.size()));
  return out.finalize();
}

PrfKey::PrfKey(const Digest& key) {
  // Key block: two copies of the 32-byte key, compressed once up front.
  std::array<std::uint8_t, 64> block;
  std::memcpy(block.data(), key.data(), key.size());
  std::memcpy(block.data() + key.size(), key.data(), key.size());
  Sha256 h;
  h.update(std::span<const std::uint8_t>(block.data(), block.size()));
  keyed_ = h.midstate();
}

Digest PrfKey::mac(std::uint64_t domain, const Digest& d) const {
  // 8 + 32 = 40 bytes; with padding this finalizes in ONE compression,
  // assembled directly into the final block (no streaming machinery).
  std::array<std::uint8_t, 40> buf;
  for (int i = 0; i < 8; ++i) {
    buf[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(domain >> (8 * (7 - i)));
  }
  std::memcpy(buf.data() + 8, d.data(), d.size());
  return Sha256::finalize_block(keyed_,
                                std::span<const std::uint8_t>(buf.data(),
                                                              buf.size()));
}

}  // namespace ambb
