file(REMOVE_RECURSE
  "CMakeFiles/ambb_graph.dir/graph/expander.cpp.o"
  "CMakeFiles/ambb_graph.dir/graph/expander.cpp.o.d"
  "CMakeFiles/ambb_graph.dir/graph/trust_graph.cpp.o"
  "CMakeFiles/ambb_graph.dir/graph/trust_graph.cpp.o.d"
  "libambb_graph.a"
  "libambb_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ambb_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
