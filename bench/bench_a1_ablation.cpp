// Experiment A1 — ablation of Algorithm 4's two design choices:
//   (1) persistent cross-slot accusation memory (the amortization), and
//   (2) the Query/Respond dissemination path.
// Removing (1) re-pays the super-linear costs every slot; removing (2)
// either degrades to always-forward (the MR-style baseline) or, without a
// substitute, loses liveness against selective leaders.
#include "bench_common.hpp"

namespace ambb::bench {
namespace {

CommonParams variant_params(const char* adv, Slot slots) {
  CommonParams p;
  p.n = 24;
  p.f = 9;
  p.slots = slots;
  p.seed = 21;
  p.adversary = adv;
  return p;
}

void run_table() {
  print_header(
      "A1 / ablation: Algorithm 4 vs itself minus each design choice "
      "(n=24, f=9)",
      "cross-slot memory is what amortizes; the query path is load-bearing "
      "for liveness, not just cost");

  struct Variant {
    const char* name;
    const char* proto;  ///< registry protocol implementing the variant
  } variants[] = {
      {"paper (Alg.4)", "linear"},
      {"no cross-slot memory", "linear-nomem"},
      {"no query path", "linear-noquery"},
      {"always-forward (MR-style)", "mr-baseline"},
  };

  // Liveness is the quantity under test (the no-query variants are
  // expected to stall), so termination is reported in the table instead
  // of failing the bench; consistency/validity still count.
  std::vector<Job> jobs;
  for (const auto& v : variants) {
    for (const char* adv : {"silent", "selective", "mixed"}) {
      const std::string label = std::string(v.name) + "/" + adv;
      for (Slot slots : {Slot{24}, Slot{96}}) {
        jobs.push_back(registry_job(v.proto, variant_params(adv, slots),
                                    label + "/L" + std::to_string(slots),
                                    /*allow_stall=*/true));
      }
    }
  }
  const std::vector<RunResult> results = run_jobs(jobs);

  TextTable t({"variant", "adversary", "amortized(L=24)", "amortized(L=96)",
               "tail(48..96)", "liveness"});
  std::size_t i = 0;
  for (const auto& v : variants) {
    for (const char* adv : {"silent", "selective", "mixed"}) {
      const RunResult& r24 = results[i++];
      const RunResult& r96 = results[i++];
      const bool live = check_termination(r96).empty();
      t.add_row({v.name, adv, TextTable::bits_human(r24.amortized()),
                 TextTable::bits_human(r96.amortized()),
                 TextTable::bits_human(r96.amortized_tail(48)),
                 live ? "ok" : "STALLS"});
    }
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "Reading: only the paper variant both (a) decreases from L=24 to "
      "L=96 toward a linear tail and (b) stays live\nagainst selective "
      "leaders. no-memory re-pays accusations every slot; no-query stalls "
      "(Section 1's dissemination\nproblem); always-forward is live but "
      "pinned at the quadratic baseline.\n");
}

void BM_Variant(::benchmark::State& state) {
  static const char* kProtos[] = {"linear", "linear-nomem", "mr-baseline"};
  for (auto _ : state) {
    auto r = registry_run(kProtos[state.range(0)],
                          variant_params("mixed", 24));
    ::benchmark::DoNotOptimize(r.honest_bits);
    state.counters["amortized_bits"] = r.amortized();
  }
}
BENCHMARK(BM_Variant)->DenseRange(0, 2)->Unit(::benchmark::kMillisecond);

}  // namespace
}  // namespace ambb::bench

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ambb::bench::run_table();
  return ambb::bench::finish_bench("a1_ablation");
}
