file(REMOVE_RECURSE
  "CMakeFiles/test_byte_buf.dir/test_byte_buf.cpp.o"
  "CMakeFiles/test_byte_buf.dir/test_byte_buf.cpp.o.d"
  "test_byte_buf"
  "test_byte_buf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_byte_buf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
