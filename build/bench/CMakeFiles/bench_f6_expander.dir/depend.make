# Empty dependencies file for bench_f6_expander.
# This may be replaced when dependencies are built.
