// Shared helpers for the benchmark harnesses. Each bench binary
// regenerates one artifact of the paper (Table 1 or a quantitative claim
// from Sections 4.2/5.1/5.4/Appendix A — DESIGN.md's experiment index),
// printing the measured rows next to the paper's asymptotic prediction.
//
// Wall-clock timing of full multi-shot executions is registered through
// google-benchmark; the communication measurements (the paper's actual
// metric) are printed as tables after the timing runs.
//
// Every measured execution goes through timed_checked()/checked_run(),
// which (a) verifies the BB properties so printed numbers always come from
// correct executions, (b) counts violations so the binary exits non-zero
// if any slipped through, and (c) records the run (cost, round stats,
// wall clock) into BENCH_<name>.json for a machine-readable perf
// trajectory. Setting AMBB_BENCH_INJECT_VIOLATION=1 injects a synthetic
// violation into every check, to prove the non-zero-exit plumbing works.
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "runner/fit.hpp"
#include "runner/registry.hpp"
#include "runner/result.hpp"
#include "runner/table.hpp"

namespace ambb::bench {

inline void print_header(const char* experiment, const char* claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Paper claim: %s\n", claim);
  std::printf("================================================================\n");
}

/// One checked execution, as written to BENCH_<name>.json.
struct RunRecord {
  std::string label;
  std::uint32_t n = 0;
  std::uint32_t f = 0;
  Slot slots = 0;
  Round rounds = 0;
  std::uint64_t honest_bits = 0;
  std::uint64_t adversary_bits = 0;
  double amortized = 0.0;
  double wall_ms = 0.0;
  RoundStatsSummary stats;
  std::size_t violations = 0;
};

struct BenchState {
  std::size_t violations = 0;
  std::vector<RunRecord> runs;
};

inline BenchState& state() {
  static BenchState s;
  return s;
}

/// Check an already-executed run, record it, and bump the violation count.
/// `allow_stall` skips the termination check (registry-known liveness
/// failures under specific adversaries).
inline RunResult checked(const std::string& label, RunResult r,
                         double wall_ms, bool allow_stall = false) {
  auto errs = check_consistency(r);
  auto v = check_validity(r);
  errs.insert(errs.end(), v.begin(), v.end());
  if (!allow_stall) {
    auto t = check_termination(r);
    errs.insert(errs.end(), t.begin(), t.end());
  }
  if (std::getenv("AMBB_BENCH_INJECT_VIOLATION") != nullptr) {
    errs.push_back("synthetic violation (AMBB_BENCH_INJECT_VIOLATION)");
  }
  if (!errs.empty()) {
    std::printf("!! %s produced %zu property violations (first: %s)\n",
                label.c_str(), errs.size(), errs[0].c_str());
    state().violations += errs.size();
  }

  RunRecord rec;
  rec.label = label;
  rec.n = r.n;
  rec.f = r.f;
  rec.slots = r.slots;
  rec.rounds = r.rounds;
  rec.honest_bits = r.honest_bits;
  rec.adversary_bits = r.adversary_bits;
  rec.amortized = r.amortized();
  rec.wall_ms = wall_ms;
  rec.stats = r.stats_summary();
  rec.violations = errs.size();
  state().runs.push_back(std::move(rec));
  return r;
}

/// Time a driver call, then check + record it. The label should identify
/// the configuration (protocol/adversary/n).
template <class Fn>
RunResult timed_checked(const std::string& label, Fn&& run,
                        bool allow_stall = false) {
  const auto t0 = std::chrono::steady_clock::now();
  RunResult r = std::forward<Fn>(run)();
  const auto t1 = std::chrono::steady_clock::now();
  const double ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  return checked(label, std::move(r), ms, allow_stall);
}

/// Run a protocol from the registry and sanity-check the run (so the
/// numbers we print always come from correct executions).
inline RunResult checked_run(const std::string& proto,
                             const CommonParams& p) {
  const ProtocolInfo& info = protocol(proto);
  bool stall_ok = false;
  for (const auto& a : info.known_liveness_failures) {
    if (a == p.adversary) stall_ok = true;
  }
  return timed_checked(proto + "/" + p.adversary + "/n" +
                           std::to_string(p.n),
                       [&] { return info.run(p); }, stall_ok);
}

inline void json_escape_into(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
}

/// Print the per-run round-stats summary table, write BENCH_<name>.json,
/// and return the process exit code (non-zero iff any checked run violated
/// a property). Every bench main() ends with `return finish_bench(...)`.
inline int finish_bench(const char* bench_name) {
  BenchState& st = state();

  if (!st.runs.empty()) {
    std::printf("\nPer-run simulator statistics (%zu checked runs):\n",
                st.runs.size());
    TextTable t({"run", "wall ms", "rounds", "records", "deliveries",
                 "erase", "corrupt", "acct ms", "deliver ms"});
    for (const RunRecord& r : st.runs) {
      t.add_row({r.label, TextTable::num(r.wall_ms, 1),
                 std::to_string(r.rounds), std::to_string(r.stats.records),
                 std::to_string(r.stats.deliveries),
                 std::to_string(r.stats.erasures),
                 std::to_string(r.stats.corruptions),
                 TextTable::num(r.stats.ns_accounting / 1e6, 2),
                 TextTable::num(r.stats.ns_delivery / 1e6, 2)});
    }
    std::printf("%s", t.render().c_str());
  }

  std::string json;
  json += "{\n  \"bench\": \"";
  json_escape_into(json, bench_name);
  json += "\",\n  \"violations\": " + std::to_string(st.violations);
  json += ",\n  \"runs\": [";
  for (std::size_t i = 0; i < st.runs.size(); ++i) {
    const RunRecord& r = st.runs[i];
    json += i == 0 ? "\n" : ",\n";
    json += "    {\"label\": \"";
    json_escape_into(json, r.label);
    json += "\", \"n\": " + std::to_string(r.n);
    json += ", \"f\": " + std::to_string(r.f);
    json += ", \"slots\": " + std::to_string(r.slots);
    json += ", \"rounds\": " + std::to_string(r.rounds);
    json += ", \"honest_bits\": " + std::to_string(r.honest_bits);
    json += ", \"adversary_bits\": " + std::to_string(r.adversary_bits);
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.3f", r.amortized);
    json += ", \"amortized_bits_per_slot\": " + std::string(buf);
    std::snprintf(buf, sizeof buf, "%.3f", r.wall_ms);
    json += ", \"wall_ms\": " + std::string(buf);
    json += ", \"records\": " + std::to_string(r.stats.records);
    json += ", \"deliveries\": " + std::to_string(r.stats.deliveries);
    json += ", \"erasures\": " + std::to_string(r.stats.erasures);
    json += ", \"corruptions\": " + std::to_string(r.stats.corruptions);
    json += ", \"ns_honest\": " + std::to_string(r.stats.ns_honest);
    json += ", \"ns_byzantine\": " + std::to_string(r.stats.ns_byzantine);
    json += ", \"ns_adversary\": " + std::to_string(r.stats.ns_adversary);
    json += ", \"ns_accounting\": " + std::to_string(r.stats.ns_accounting);
    json += ", \"ns_delivery\": " + std::to_string(r.stats.ns_delivery);
    json += ", \"violations\": " + std::to_string(r.violations);
    json += "}";
  }
  json += "\n  ]\n}\n";

  const std::string path = std::string("BENCH_") + bench_name + ".json";
  if (std::FILE* fp = std::fopen(path.c_str(), "w")) {
    std::fwrite(json.data(), 1, json.size(), fp);
    std::fclose(fp);
    std::printf("\nwrote %s (%zu runs)\n", path.c_str(), st.runs.size());
  } else {
    std::printf("\n!! could not write %s\n", path.c_str());
  }

  if (st.violations != 0) {
    std::printf("!! %zu property violations across checked runs — "
                "failing the bench\n",
                st.violations);
    return 1;
  }
  return 0;
}

}  // namespace ambb::bench
