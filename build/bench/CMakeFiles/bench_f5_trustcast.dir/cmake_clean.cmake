file(REMOVE_RECURSE
  "CMakeFiles/bench_f5_trustcast.dir/bench_f5_trustcast.cpp.o"
  "CMakeFiles/bench_f5_trustcast.dir/bench_f5_trustcast.cpp.o.d"
  "bench_f5_trustcast"
  "bench_f5_trustcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f5_trustcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
