// Experiment F3 — Section 4.2's per-adversary case analysis of
// Algorithm 4: where the bits go under each attack, and that every
// super-linear mechanism (accusations, corrupt-proofs, query2 bursts,
// Respond-2 replies) is a bounded one-time cost.
#include "bench_common.hpp"

namespace ambb::bench {
namespace {

void run_breakdown() {
  const std::uint32_t n = 24;
  const std::uint32_t f = 9;
  const Slot slots = 72;
  print_header(
      "F3 / Section 4.2: Algorithm 4 cost by adversary and message kind "
      "(n=24, f=9, L=72)",
      "Query-1 linear/epoch; Respond-1 one reply; query2/Respond-2 and "
      "corrupt-proofs bounded one-time; common path linear");

  const std::vector<const char*> advs = {"none",  "silent", "equivocate",
                                         "selective", "flood", "mixed",
                                         "adaptive-erase"};
  std::vector<Job> jobs;
  for (const char* adv : advs) {
    CommonParams p;
    p.n = n;
    p.f = f;
    p.slots = slots;
    p.seed = 11;
    p.adversary = adv;
    jobs.push_back(
        registry_job("linear", p, std::string("linear/") + adv + "/L72"));
  }
  const std::vector<RunResult> results = run_jobs(jobs);

  TextTable t({"adversary", "amortized", "tail(last half)", "top kind #1",
               "top kind #2", "corrupt-proof bits", "query2 bits"});
  for (std::size_t ri = 0; ri < advs.size(); ++ri) {
    const char* adv = advs[ri];
    const RunResult& r = results[ri];

    // Rank message kinds by honest bits.
    std::vector<std::size_t> order(r.kind_names.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return r.per_kind_bits[a] > r.per_kind_bits[b];
    });
    auto kind_cell = [&](std::size_t rank) {
      const std::size_t i = order[rank];
      return r.kind_names[i] + " " +
             TextTable::bits_human(static_cast<double>(r.per_kind_bits[i]));
    };
    std::uint64_t cp = 0, q2 = 0;
    for (std::size_t i = 0; i < r.kind_names.size(); ++i) {
      if (r.kind_names[i] == "corrupt-proof") cp = r.per_kind_bits[i];
      if (r.kind_names[i] == "query2") q2 = r.per_kind_bits[i];
    }
    t.add_row({adv, TextTable::bits_human(r.amortized()),
               TextTable::bits_human(r.amortized_tail(slots / 2)),
               kind_cell(0), kind_cell(1),
               TextTable::bits_human(static_cast<double>(cp)),
               TextTable::bits_human(static_cast<double>(q2))});
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "Reading: the dominant kinds are always the linear common path "
      "(prop-forward / cert-forward across the expander);\nattack-specific "
      "kinds (corrupt-proof, query2) hold constant totals as L grows — "
      "they are the amortized O(kn^3) term.\n");
}

void BM_Adversary(::benchmark::State& state) {
  static const char* kAdvs[] = {"none", "silent", "selective", "mixed"};
  CommonParams p;
  p.n = 24;
  p.f = 9;
  p.slots = 24;
  p.seed = 11;
  p.adversary = kAdvs[state.range(0)];
  for (auto _ : state) {
    auto r = registry_run("linear", p);
    ::benchmark::DoNotOptimize(r.honest_bits);
    state.counters["amortized_bits"] = r.amortized();
  }
  state.SetLabel(p.adversary);
}
BENCHMARK(BM_Adversary)->DenseRange(0, 3)->Unit(::benchmark::kMillisecond);

}  // namespace
}  // namespace ambb::bench

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ambb::bench::run_breakdown();
  return ambb::bench::finish_bench("f3_adversaries");
}
