file(REMOVE_RECURSE
  "CMakeFiles/ambb_runner.dir/runner/fit.cpp.o"
  "CMakeFiles/ambb_runner.dir/runner/fit.cpp.o.d"
  "CMakeFiles/ambb_runner.dir/runner/registry.cpp.o"
  "CMakeFiles/ambb_runner.dir/runner/registry.cpp.o.d"
  "CMakeFiles/ambb_runner.dir/runner/result.cpp.o"
  "CMakeFiles/ambb_runner.dir/runner/result.cpp.o.d"
  "CMakeFiles/ambb_runner.dir/runner/table.cpp.o"
  "CMakeFiles/ambb_runner.dir/runner/table.cpp.o.d"
  "libambb_runner.a"
  "libambb_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ambb_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
