#include "crypto/merkle.hpp"

#include <algorithm>

#include "common/byte_buf.hpp"
#include "common/check.hpp"
#include "crypto/intern.hpp"

namespace ambb::merkle {

// Verification recomputes the same leaf/node hashes for every recipient of
// a chunk, so both helpers go through the interning cache. The canonical
// bytes (0x00|index|chunk, 0x01|left|right) are exactly what was hashed
// before; the "mrk-*" tags only key the cache.

Digest leaf_hash(std::uint32_t index, std::span<const std::uint8_t> chunk) {
  Encoder& e = Encoder::scratch();
  e.reserve(5 + chunk.size());
  e.put_u8(0x00);
  e.put_u32(index);
  e.put_bytes(chunk);
  return DigestCache::local().hash("mrk-leaf", e.view());
}

Digest node_hash(const Digest& left, const Digest& right) {
  std::uint8_t buf[65];
  buf[0] = 0x01;
  std::copy(left.begin(), left.end(), buf + 1);
  std::copy(right.begin(), right.end(), buf + 33);
  return DigestCache::local().hash("mrk-node",
                                   std::span<const std::uint8_t>(buf, 65));
}

Tree Tree::build(const std::vector<Digest>& leaves) {
  AMBB_CHECK_MSG(!leaves.empty(), "merkle::Tree over zero leaves");
  Tree t;
  t.n_leaves_ = static_cast<std::uint32_t>(leaves.size());
  std::size_t width = 1;
  while (width < leaves.size()) width *= 2;
  std::vector<Digest> level(width, Digest{});  // zero-digest padding
  for (std::size_t i = 0; i < leaves.size(); ++i) level[i] = leaves[i];
  t.levels_.push_back(std::move(level));
  while (t.levels_.back().size() > 1) {
    const std::vector<Digest>& below = t.levels_.back();
    std::vector<Digest> above(below.size() / 2);
    for (std::size_t i = 0; i < above.size(); ++i) {
      above[i] = node_hash(below[2 * i], below[2 * i + 1]);
    }
    t.levels_.push_back(std::move(above));
  }
  return t;
}

Path Tree::prove(std::uint32_t index) const {
  AMBB_CHECK_MSG(index < n_leaves_, "merkle::prove index out of range");
  Path path;
  std::size_t i = index;
  for (std::size_t lvl = 0; lvl + 1 < levels_.size(); ++lvl) {
    path.push_back(levels_[lvl][i ^ 1]);
    i /= 2;
  }
  return path;
}

bool verify(const Digest& root, std::uint32_t n_leaves, std::uint32_t index,
            const Digest& leaf, const Path& path) {
  if (n_leaves == 0 || index >= n_leaves) return false;
  std::size_t width = 1;
  std::size_t depth = 0;
  while (width < n_leaves) {
    width *= 2;
    ++depth;
  }
  if (path.size() != depth) return false;
  Digest acc = leaf;
  std::size_t i = index;
  for (const Digest& sibling : path) {
    acc = (i & 1) ? node_hash(sibling, acc) : node_hash(acc, sibling);
    i /= 2;
  }
  return acc == root;
}

}  // namespace ambb::merkle
