// Multi-shot Dolev-Strong [13]: the classic f < n authenticated Byzantine
// broadcast, run independently per slot (no amortization) — Table 1's
// dishonest-majority baseline.
//
// Slot structure (f+2 rounds):
//   round 0        sender multicasts <v> with its signature
//   rounds 1..f+1  a node that receives a value with a chain of >= t
//                  distinct signatures (sender's included) at round t
//                  extracts it (at most two distinct values), appends its
//                  own signature and multicasts
//   end of f+1     commit the unique extracted value, else bot
//
// Two wire modes reproduce both Table 1 rows:
//   plain signatures: a chain of c signatures costs c * (kappa + log n)
//                     -> O(kappa n^3) per slot
//   multi-signature:  a chain is one kappa-bit aggregate + n-bit bitmap
//                     -> O((kappa + n) n^2) = O(kappa n^2 + n^3) per slot
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/bitvec.hpp"
#include "common/types.hpp"
#include "common/wire.hpp"
#include "crypto/multisig.hpp"
#include "crypto/signer.hpp"
#include "runner/result.hpp"
#include "sim/commit_log.hpp"
#include "sim/net.hpp"

namespace ambb::ds {

enum class Kind : MsgKind { kRelay = 0, kKindCount };

std::vector<std::string> kind_names();

/// A relayed value with its signature chain. Both representations are
/// carried; `use_multisig` in the config decides which one is *charged*
/// on the wire (and which one honest nodes verify).
struct Msg {
  Kind kind = Kind::kRelay;
  Slot slot = 0;
  Value value = 0;
  std::vector<Signature> chain;  ///< plain mode: individual signatures
  MultiSig agg;                  ///< multisig mode: aggregate + bitmap
};

Digest relay_digest(Slot k, Value v);

struct Schedule {
  std::uint32_t f = 0;
  std::uint64_t rounds_per_slot() const { return f + 2ull; }
  Slot slot_of(Round r) const {
    return static_cast<Slot>(r / rounds_per_slot()) + 1;
  }
  std::uint32_t offset_of(Round r) const {
    return static_cast<std::uint32_t>(r % rounds_per_slot());
  }
};

struct Context {
  std::uint32_t n = 0;
  std::uint32_t f = 0;
  bool use_multisig = false;
  WireModel wire;
  Schedule sched;
  const KeyRegistry* registry = nullptr;
  const MultiSigScheme* msig = nullptr;
  CommitLog* commits = nullptr;
  std::function<Value(Slot)> input_for_slot;
  std::function<NodeId(Slot)> sender_of;
  trace::TraceSink* trace = nullptr;  ///< optional event sink, not owned
};

std::uint64_t size_bits(const Msg& m, const Context& ctx);

/// Accounting policy, evaluated once per traffic record. A DS chain's
/// size depends only on the wire mode and chain length, so the policy
/// carries the mode flag instead of the whole Context.
struct CostPolicy {
  WireModel wire;
  Schedule sched;
  bool use_multisig = false;

  std::uint64_t size_bits(const Msg& m) const {
    std::uint64_t bits = wire.header_bits() + wire.value_bits;
    if (use_multisig) {
      bits += wire.multisig_bits();
    } else {
      bits += static_cast<std::uint64_t>(m.chain.size()) * wire.sig_bits();
    }
    return bits;
  }
  MsgKind kind(const Msg&) const { return MsgKind{0}; }
  Slot slot(const Msg& m, Round sent_round) const {
    return m.slot != 0 ? m.slot : sched.slot_of(sent_round);
  }
};

using Sim = Simulation<Msg, CostPolicy>;

class Deviation {
 public:
  virtual ~Deviation() = default;
  virtual bool silent(Round) const { return false; }
  /// Take over the sender's round-0 send.
  virtual bool override_send(Slot k, NodeId self, const Context& ctx,
                             RoundApi<Msg>& api) {
    (void)k;
    (void)self;
    (void)ctx;
    (void)api;
    return false;
  }
  virtual void extra(Slot k, std::uint32_t offset, NodeId self,
                     const Context& ctx, RoundApi<Msg>& api) {
    (void)k;
    (void)offset;
    (void)self;
    (void)ctx;
    (void)api;
  }
};

class DsNode final : public Actor<Msg> {
 public:
  DsNode(NodeId id, const Context* ctx,
         std::unique_ptr<Deviation> deviation = nullptr);

  void on_round(Round r, std::span<const Delivery<Msg>> inbox,
                const TrafficView<Msg>& rushed,
                RoundApi<Msg>& api) override;

 private:
  /// Number of distinct valid signers in the message's chain, kNoNode
  /// semantics: returns 0 if anything is malformed or the sender's
  /// signature is missing.
  std::uint32_t chain_strength(const Msg& m, NodeId sender) const;
  Msg extend(const Msg& m) const;

  NodeId id_;
  const Context* ctx_;
  std::unique_ptr<Deviation> dev_;
  Slot cur_slot_ = 0;
  std::vector<Value> extracted_;
};

struct DsConfig {
  std::uint32_t n = 8;
  std::uint32_t f = 5;
  Slot slots = 4;
  std::uint64_t seed = 1;
  bool use_multisig = false;
  std::uint32_t kappa_bits = kDefaultKappaBits;
  std::uint32_t value_bits = kDefaultValueBits;
  std::string adversary = "none";  // none | silent | equivocate | stagger
  /// Optional event sink, not owned (see src/trace/).
  /// Honest-phase shard threads per round (0 = auto, 1 = serial;
  /// byte-identical results for every value — DESIGN.md §15).
  std::uint32_t node_jobs = 1;
  /// Network delay policy (DESIGN.md §16): "lockstep" (default) |
  /// "bounded:<delta>" | "async[:<cap>]".
  std::string net = "lockstep";
  trace::TraceSink* trace = nullptr;
  std::function<Value(Slot)> input_for_slot;
  std::function<NodeId(Slot)> sender_of;
};

RunResult run_dolev_strong(const DsConfig& cfg);

}  // namespace ambb::ds
