// Algorithm 5.2: multi-shot Byzantine broadcast with amortized
// O(kappa*n^2) communication under a dishonest majority f < n (Section 5).
//
// Each slot k takes n + f + 3 rounds:
//   round 0            sender S_k multicasts <prop, m, k>_{S_k}
//   rounds 1..n        TrustCast: forwarding, distance-based accusations,
//                      trust-graph maintenance (see trustcast.hpp)
//   rounds n+1..n+f+2  Dolev-Strong phase on the *sender's corruption*
//                      (tau = t - (n+1)):
//                        tau = 0:        if S_k not in G_u, vote
//                                        <corrupt, S_k>_u (once, ever)
//                        1<=tau<=f+1:    if >= tau distinct corrupt votes
//                                        seen and S_k not in G_u, forward
//                                        the unseen votes + own vote
//   end of round n+f+2: commit m if this node never voted corrupt S_k,
//                       else commit bot.
//
// Amortization: the trust graph, every <accuse> pair, and every
// <corrupt, v>_w vote are shared across all slots and multicast at most
// once per node, so graph maintenance costs O(kappa n^4) total and the
// Dolev-Strong phase runs with nonzero traffic in at most f slots —
// once a sender is proven corrupt all its later slots commit bot silently.
#pragma once

#include <memory>
#include <string>

#include "bb/trustcast.hpp"
#include "runner/result.hpp"

namespace ambb::quad {

class QuadNode;

/// Byzantine deviation hooks (mirrors linear::Deviation).
class Deviation {
 public:
  virtual ~Deviation() = default;
  virtual bool silent(Round) const { return false; }
  /// Take over the sender's round-0 proposal. Return true if handled.
  virtual bool override_send(QuadNode& self, RoundApi<Msg>& api) {
    (void)self;
    (void)api;
    return false;
  }
  /// Suppress the honest forwarding the TrustCast engine would perform
  /// (colluders who sit on information).
  virtual bool suppress_engine_sends(Round r, std::uint32_t offset) {
    (void)r;
    (void)offset;
    return false;
  }
  virtual bool drop_send(Round r, std::uint32_t offset, Kind kind,
                         NodeId to) {
    (void)r;
    (void)offset;
    (void)kind;
    (void)to;
    return false;
  }
  virtual void extra(QuadNode& self, Round r, std::uint32_t offset,
                     RoundApi<Msg>& api) {
    (void)self;
    (void)r;
    (void)offset;
    (void)api;
  }
};

class QuadNode final : public Actor<Msg> {
 public:
  QuadNode(NodeId id, const Context* ctx,
           std::unique_ptr<Deviation> deviation = nullptr);

  void on_round(Round r, std::span<const Delivery<Msg>> inbox,
                const TrafficView<Msg>& rushed,
                RoundApi<Msg>& api) override;

  NodeId id() const { return id_; }
  const Context& ctx() const { return *ctx_; }
  const TrustCastEngine& engine() const { return engine_; }
  bool voted_corrupt(NodeId target) const { return voted_.get(target); }
  /// Number of distinct corrupt votes seen for `target` (across slots).
  std::uint32_t corrupt_votes_seen(NodeId target) const {
    return static_cast<std::uint32_t>(vote_seen_[target].count());
  }

  // Helpers for Deviation implementations.
  Msg build_prop(Value v) const;

 private:
  void vote_corrupt(NodeId target, RoundApi<Msg>& api, Round r);
  void out_multicast(RoundApi<Msg>& api, const Msg& m, Round r,
                     std::uint32_t offset);

  NodeId id_;
  const Context* ctx_;
  std::unique_ptr<Deviation> dev_;
  TrustCastEngine engine_;

  // persistent: Dolev-Strong votes are shared across slots.
  BitVec voted_;                       ///< own <corrupt, v>_id sent
  std::vector<BitVec> vote_seen_;      ///< [target] -> voters seen
  std::vector<BitVec> vote_forwarded_; ///< [target] -> voters forwarded
  std::vector<std::vector<Signature>> vote_sigs_;  ///< [target] kept sigs

  Slot cur_slot_ = 0;
};

struct QuadConfig {
  std::uint32_t n = 8;
  std::uint32_t f = 5;  ///< any f < n
  Slot slots = 8;
  std::uint64_t seed = 1;
  std::uint32_t kappa_bits = kDefaultKappaBits;
  std::uint32_t value_bits = kDefaultValueBits;
  std::string adversary = "none";
  /// Optional event sink, not owned (see src/trace/).
  /// Honest-phase shard threads per round (0 = auto, 1 = serial;
  /// byte-identical results for every value — DESIGN.md §15).
  std::uint32_t node_jobs = 1;
  /// Network delay policy (DESIGN.md §16): "lockstep" (default) |
  /// "bounded:<delta>" | "async[:<cap>]".
  std::string net = "lockstep";
  trace::TraceSink* trace = nullptr;
  std::function<Value(Slot)> input_for_slot;
  std::function<NodeId(Slot)> sender_of;
  /// Test hooks (see linear::LinearConfig).
  std::function<void(Round, Sim&)> on_round_end;
  std::function<void(Sim&)> inspect;
};

RunResult run_quadratic(const QuadConfig& cfg);

/// Adversary specs: "none", "silent", "equivocate", "conspiracy"
/// (sender serves only its corrupt colluders, who forward at the last
/// moment), "lateprop" (sender stays silent for a few rounds, then
/// multicasts), "floodaccuse" (corrupt nodes accuse everyone, stressing
/// the O(kappa n^4) graph-maintenance bound), plus the generic
/// "sched:..." / "fuzz[:k]" fault schedules of src/adversary/.
/// `horizon` is the total round count of the run (fuzz event placement).
std::unique_ptr<Adversary<Msg>> make_quad_adversary(const std::string& spec,
                                                    const Context* ctx,
                                                    std::uint64_t seed,
                                                    Round horizon,
                                                    NetPolicy net = {});

}  // namespace ambb::quad
