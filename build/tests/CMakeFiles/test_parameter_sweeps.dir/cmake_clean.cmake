file(REMOVE_RECURSE
  "CMakeFiles/test_parameter_sweeps.dir/test_parameter_sweeps.cpp.o"
  "CMakeFiles/test_parameter_sweeps.dir/test_parameter_sweeps.cpp.o.d"
  "test_parameter_sweeps"
  "test_parameter_sweeps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parameter_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
