// Registry-driven sweep: every protocol x every supported adversary x
// several seeds must satisfy Definition 2 (consistency, termination,
// validity) — except the documented HotStuff/selective liveness failure,
// which must fail termination and nothing else.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "runner/registry.hpp"

namespace ambb {
namespace {

using Param = std::tuple<std::string /*protocol*/, std::string /*adv*/,
                         std::uint64_t /*seed*/>;

std::vector<Param> all_params() {
  std::vector<Param> out;
  for (const auto& p : protocols()) {
    for (const auto& adv : p.policy.named) {
      for (std::uint64_t seed : {1ull, 42ull}) {
        out.emplace_back(p.name, adv, seed);
      }
    }
  }
  return out;
}

class AllProtocols : public ::testing::TestWithParam<Param> {};

TEST_P(AllProtocols, Definition2Properties) {
  const auto& [name, adv, seed] = GetParam();
  const ProtocolInfo& info = protocol(name);

  CommonParams p;
  p.n = 12;
  p.f = std::min<std::uint32_t>(3, info.max_f(p.n));
  p.slots = 6;
  p.seed = seed;
  p.adversary = adv;
  auto r = info.run(p);

  EXPECT_EQ(check_consistency(r), std::vector<std::string>{});
  EXPECT_EQ(check_validity(r), std::vector<std::string>{});

  if (!info.policy.may_stall(adv)) {
    EXPECT_EQ(check_termination(r), std::vector<std::string>{});
  }
  // The guaranteed stalls (hotstuff/selective with corrupt leaders;
  // linear-noquery/selective) are asserted in their dedicated test files.
}

TEST_P(AllProtocols, MaxFaultToleranceHolds) {
  const auto& [name, adv, seed] = GetParam();
  const ProtocolInfo& info = protocol(name);

  CommonParams p;
  p.n = 10;
  p.f = info.max_f(p.n);
  p.slots = 4;
  p.seed = seed + 100;
  p.adversary = adv;
  auto r = info.run(p);

  EXPECT_EQ(check_consistency(r), std::vector<std::string>{})
      << name << "/" << adv << " at f=" << p.f;
  EXPECT_EQ(check_validity(r), std::vector<std::string>{});
  if (!info.policy.may_stall(adv)) {
    EXPECT_EQ(check_termination(r), std::vector<std::string>{})
        << name << "/" << adv << " at f=" << p.f;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllProtocols, ::testing::ValuesIn(all_params()),
    [](const auto& info) {
      std::string s = std::get<0>(info.param) + "_" +
                      std::get<1>(info.param) + "_s" +
                      std::to_string(std::get<2>(info.param));
      std::replace(s.begin(), s.end(), '-', '_');
      std::replace(s.begin(), s.end(), ':', '_');  // "ext:linear" rows
      return s;
    });

TEST(AllProtocolsMeta, EveryProtocolHasNoneAdversary) {
  for (const auto& p : protocols()) {
    EXPECT_TRUE(p.policy.accepts("none")) << p.name;
  }
}

TEST(AllProtocolsMeta, SlotCountsRespected) {
  CommonParams p;
  p.n = 8;
  p.f = 2;
  p.slots = 3;
  p.seed = 1;
  for (const auto& info : protocols()) {
    auto r = info.run(p);
    EXPECT_EQ(r.slots, 3u) << info.name;
    EXPECT_EQ(r.n, 8u) << info.name;
  }
}

}  // namespace
}  // namespace ambb
