// String form of fault schedules, usable anywhere an adversary name is
// accepted (driver configs, sweep spec files, the registry).
//
//   sched:<op>[;<op>]*        explicit schedule
//   fuzz                      seeded random schedule (seed = run seed)
//   fuzz:<profile>            ditto, with <profile> mixed into the seed so
//                             one sweep row can run many distinct schedules
//
// Ops (all arguments are unsigned integers; `*` means "end of run"):
//   corrupt(r,v[,v...])       corrupt nodes v... from round r on (r=0:
//                             initially corrupt; r>0: corrupted at the end
//                             of round r-1, after-the-fact)
//   erase(r,v[,d[,m,rem]])    erase sender-v deliveries of round r with
//                             density d permille (default 1000) over
//                             recipients with to % m == rem (default all)
//   silence(v,from,to)        v emits nothing in rounds [from, to]
//   selective(v,from,to,k...) v's sends reach only recipients k...
//   shuffle(v,from,to)        permute v's per-recipient payloads
//   stagger(v,from,to,d)      v's round-r output is released in round r+d
//   delay(v,from,to,d)        timing: v's deliveries in [from, to] arrive
//                             d extra rounds late (net-policy clamped;
//                             needs a bounded/async net, any sender)
//   reorder(v,from,to)        timing: v's deliveries in the window get
//                             seeded per-delivery extra delays, so their
//                             arrival order is scrambled
//
// Example — the strongly adaptive proposal-erasure attack: corrupt the
// slot-1 sender right after it multicasts (round 1) and remove the copies
// addressed to odd nodes:
//
//   sched:corrupt(2,0);erase(1,0,1000,2,1)
//
// Specs contain no whitespace, so they tokenize as one word in sweep spec
// files. parse_schedule_spec throws CheckError with a position-annotated
// message on malformed input; the result still needs validate() against
// (n, f) before use (make_scheduled_adversary does both).
#pragma once

#include <string>

#include "adversary/fault.hpp"

namespace ambb::adversary {

/// True for any spec this framework handles: "sched:..." / "fuzz[:k]".
bool is_schedule_spec(const std::string& spec);

/// True for the randomized form ("fuzz" or "fuzz:<profile>").
bool is_fuzz_spec(const std::string& spec);

/// Profile number of a fuzz spec (0 for plain "fuzz").
std::uint64_t fuzz_profile(const std::string& spec);

/// Parse a "sched:..." string. Throws CheckError on malformed input.
FaultSchedule parse_schedule_spec(const std::string& spec);

}  // namespace ambb::adversary
