#include "bb/phase_king.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace ambb::pk {
namespace {

PkConfig base_cfg(std::uint32_t n, std::uint32_t f, Slot slots,
                  std::uint64_t seed, const std::string& adv) {
  PkConfig cfg;
  cfg.n = n;
  cfg.f = f;
  cfg.slots = slots;
  cfg.seed = seed;
  cfg.adversary = adv;
  return cfg;
}

using Param =
    std::tuple<std::uint32_t, std::uint32_t, std::string, std::uint64_t>;

class PkProperties : public ::testing::TestWithParam<Param> {};

TEST_P(PkProperties, ConsistencyTerminationValidity) {
  const auto& [n, f, adv, seed] = GetParam();
  auto r = run_phase_king(base_cfg(n, f, n, seed, adv));
  EXPECT_EQ(check_all(r), std::vector<std::string>{});
}

INSTANTIATE_TEST_SUITE_P(
    AdversarySweep, PkProperties,
    ::testing::Combine(
        ::testing::Values(7u, 10u, 13u), ::testing::Values(2u),
        ::testing::Values("none", "silent", "equivocate", "confuse"),
        ::testing::Values(1u, 9u)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_" +
             std::get<2>(info.param) + "_s" +
             std::to_string(std::get<3>(info.param));
    });

INSTANTIATE_TEST_SUITE_P(
    MaxFault, PkProperties,
    ::testing::Combine(::testing::Values(10u), ::testing::Values(3u),
                       ::testing::Values("silent", "confuse", "equivocate"),
                       ::testing::Values(2u, 4u, 8u)),
    [](const auto& info) {
      return std::get<2>(info.param) + "_s" +
             std::to_string(std::get<3>(info.param));
    });

TEST(PhaseKing, FBoundEnforced) {
  EXPECT_THROW(run_phase_king(base_cfg(9, 3, 1, 1, "none")), CheckError);
  EXPECT_NO_THROW(run_phase_king(base_cfg(10, 3, 1, 1, "none")));
}

TEST(PhaseKing, SilentSenderYieldsUnanimousBot) {
  auto r = run_phase_king(base_cfg(10, 3, 4, 3, "silent"));
  ASSERT_TRUE(check_all(r).empty());
  for (Slot k = 1; k <= 4; ++k) {
    if (!r.corrupt[r.senders[k]]) continue;
    for (NodeId u = 3; u < 10; ++u) {
      EXPECT_EQ(r.commits.get(u, k).value, kBotValue);
    }
  }
}

TEST(PhaseKing, HonestSenderDeliversDespiteConfusers) {
  PkConfig cfg = base_cfg(10, 3, 6, 3, "confuse");
  cfg.input_for_slot = [](Slot k) { return Value{111 * k}; };
  auto r = run_phase_king(cfg);
  ASSERT_TRUE(check_all(r).empty());
  for (Slot k = 1; k <= 6; ++k) {
    if (r.corrupt[r.senders[k]]) continue;
    for (NodeId u = 3; u < 10; ++u) {
      EXPECT_EQ(r.commits.get(u, k).value, Value{111 * k});
    }
  }
}

TEST(PhaseKing, NoCryptoBitsOnWire) {
  // Phase-king messages carry no signatures: size is header + flag +
  // value only, independent of kappa.
  WireModel w{10, 256, 64};
  Msg m;
  m.kind = Kind::kR1;
  m.has_value = true;
  EXPECT_EQ(size_bits(m, w), w.header_bits() + 1 + 64);
  m.has_value = false;
  EXPECT_EQ(size_bits(m, w), w.header_bits() + 1);
}

TEST(PhaseKing, FlatCostAcrossSlots) {
  auto r = run_phase_king(base_cfg(10, 3, 12, 5, "none"));
  ASSERT_TRUE(check_all(r).empty());
  EXPECT_EQ(r.per_slot_bits[3], r.per_slot_bits[11]);
}

}  // namespace
}  // namespace ambb::pk
