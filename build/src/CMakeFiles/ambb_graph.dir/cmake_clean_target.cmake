file(REMOVE_RECURSE
  "libambb_graph.a"
)
