# Empty dependencies file for keygen_ceremony.
# This may be replaced when dependencies are built.
