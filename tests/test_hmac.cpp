#include "crypto/hmac.hpp"

#include <gtest/gtest.h>

#include "common/hex.hpp"

namespace ambb {
namespace {

Digest run_hmac(const std::vector<std::uint8_t>& key,
                const std::vector<std::uint8_t>& msg) {
  return hmac_sha256(std::span<const std::uint8_t>(key),
                     std::span<const std::uint8_t>(msg));
}

std::string hexd(const Digest& d) {
  return to_hex(std::span<const std::uint8_t>(d.data(), d.size()));
}

// RFC 4231 test cases.
TEST(Hmac, Rfc4231Case1) {
  std::vector<std::uint8_t> key(20, 0x0b);
  std::vector<std::uint8_t> msg{'H', 'i', ' ', 'T', 'h', 'e', 'r', 'e'};
  EXPECT_EQ(hexd(run_hmac(key, msg)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  std::vector<std::uint8_t> key{'J', 'e', 'f', 'e'};
  std::string m = "what do ya want for nothing?";
  std::vector<std::uint8_t> msg(m.begin(), m.end());
  EXPECT_EQ(hexd(run_hmac(key, msg)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  std::vector<std::uint8_t> key(20, 0xaa);
  std::vector<std::uint8_t> msg(50, 0xdd);
  EXPECT_EQ(hexd(run_hmac(key, msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  // Key longer than the block size: must be hashed first.
  std::vector<std::uint8_t> key(131, 0xaa);
  std::string m = "Test Using Larger Than Block-Size Key - Hash Key First";
  std::vector<std::uint8_t> msg(m.begin(), m.end());
  EXPECT_EQ(hexd(run_hmac(key, msg)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, KeySensitivity) {
  Digest k1 = Sha256::hash(std::string("k1"));
  Digest k2 = Sha256::hash(std::string("k2"));
  Digest m = Sha256::hash(std::string("m"));
  EXPECT_NE(hmac_sha256(k1, m), hmac_sha256(k2, m));
}

TEST(Hmac, MessageSensitivity) {
  Digest k = Sha256::hash(std::string("k"));
  Digest m1 = Sha256::hash(std::string("m1"));
  Digest m2 = Sha256::hash(std::string("m2"));
  EXPECT_NE(hmac_sha256(k, m1), hmac_sha256(k, m2));
}

TEST(Hmac, PrecomputedKeyMatchesReference) {
  // HmacKey's midstate fast path must be indistinguishable from the
  // reference implementation for every (key, message) pair.
  for (int i = 0; i < 32; ++i) {
    const Digest key = Sha256::hash(std::string("key") + std::to_string(i));
    const HmacKey fast(key);
    for (int j = 0; j < 8; ++j) {
      const Digest msg =
          Sha256::hash(std::string("msg") + std::to_string(j));
      EXPECT_EQ(fast.mac(msg), hmac_sha256(key, msg))
          << "key " << i << " msg " << j;
    }
  }
}

TEST(Hmac, MidstateResumeMatchesOneShot) {
  // Resuming SHA-256 from a block-boundary midstate is equivalent to
  // hashing the concatenation in one pass.
  std::vector<std::uint8_t> prefix(64, 0x42);
  std::vector<std::uint8_t> tail(37, 0x17);

  Sha256 a;
  a.update(std::span<const std::uint8_t>(prefix));
  const Sha256Midstate mid = a.midstate();

  Sha256 resumed(mid);
  resumed.update(std::span<const std::uint8_t>(tail));

  std::vector<std::uint8_t> all = prefix;
  all.insert(all.end(), tail.begin(), tail.end());
  EXPECT_EQ(resumed.finalize(),
            Sha256::hash(std::span<const std::uint8_t>(all)));
}

}  // namespace
}  // namespace ambb
