#include "trace/trace.hpp"

namespace ambb::trace {

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kSlotStart: return "slot-start";
    case EventKind::kSlotCommit: return "slot-commit";
    case EventKind::kEpochPhase: return "epoch-phase";
    case EventKind::kAccusation: return "accusation";
    case EventKind::kTrustEdgeRemoved: return "trust-edge-removed";
    case EventKind::kCorruptVote: return "corrupt-vote";
    case EventKind::kCertFormed: return "cert-formed";
    case EventKind::kAdversaryAction: return "adversary-action";
    case EventKind::kRoundEnd: return "round-end";
    case EventKind::kChunkDisperse: return "chunk-disperse";
    case EventKind::kChunkEcho: return "chunk-echo";
    case EventKind::kReconstruct: return "reconstruct";
    case EventKind::kDeliveryDelayed: return "delivery-delayed";
  }
  return "?";
}

namespace {

void field(std::ostream& os, const char* key, std::uint64_t v,
           bool* first) {
  os << (*first ? "" : ",") << '"' << key << "\":" << v;
  *first = false;
}

void field_str(std::ostream& os, const char* key, const char* v,
               bool* first) {
  os << (*first ? "" : ",") << '"' << key << "\":\"" << v << '"';
  *first = false;
}

}  // namespace

void to_jsonl(std::ostream& os, const Event& e) {
  bool first = true;
  os << '{';
  field_str(os, "e", event_kind_name(e.kind), &first);
  field(os, "r", e.round, &first);
  switch (e.kind) {
    case EventKind::kSlotStart:
      field(os, "k", e.slot, &first);
      field(os, "node", e.node, &first);
      break;
    case EventKind::kSlotCommit:
      field(os, "k", e.slot, &first);
      field(os, "ep", e.epoch, &first);
      field(os, "node", e.node, &first);
      field(os, "value", e.value, &first);
      break;
    case EventKind::kEpochPhase:
      field(os, "k", e.slot, &first);
      field(os, "ep", e.epoch, &first);
      if (e.node != kNoNode) field(os, "node", e.node, &first);
      field_str(os, "detail", e.detail, &first);
      break;
    case EventKind::kAccusation:
      field(os, "k", e.slot, &first);
      field(os, "node", e.node, &first);
      field(os, "subject", e.subject, &first);
      break;
    case EventKind::kTrustEdgeRemoved:
      field(os, "k", e.slot, &first);
      field(os, "node", e.node, &first);
      field(os, "subject", e.subject, &first);
      if (e.peer != kNoNode) field(os, "peer", e.peer, &first);
      field_str(os, "detail", e.detail, &first);
      break;
    case EventKind::kCorruptVote:
      field(os, "k", e.slot, &first);
      field(os, "node", e.node, &first);
      field(os, "subject", e.subject, &first);
      break;
    case EventKind::kCertFormed:
      field(os, "k", e.slot, &first);
      field(os, "ep", e.epoch, &first);
      field(os, "node", e.node, &first);
      if (e.subject != kNoNode) field(os, "subject", e.subject, &first);
      field(os, "value", e.value, &first);
      field_str(os, "detail", e.detail, &first);
      break;
    case EventKind::kAdversaryAction:
      field(os, "node", e.node, &first);
      field_str(os, "detail", e.detail, &first);
      field(os, "count", e.count, &first);
      break;
    case EventKind::kRoundEnd:
      // Deterministic counters only — ns_* wall-clock timers are
      // intentionally absent so goldens stay byte-identical. "delayed"
      // appears only when nonzero: it is always zero under the lockstep
      // policy, so pre-scheduler goldens stay byte-identical too.
      field(os, "records", e.stats.records, &first);
      field(os, "deliveries", e.stats.deliveries, &first);
      field(os, "honest_bits", e.stats.honest_bits, &first);
      field(os, "adversary_bits", e.stats.adversary_bits, &first);
      field(os, "erasures", e.stats.erasures, &first);
      field(os, "corruptions", e.stats.corruptions, &first);
      if (e.stats.delayed != 0) field(os, "delayed", e.stats.delayed, &first);
      break;
    case EventKind::kChunkDisperse:
      // value = 64-bit fingerprint of the committed Merkle root,
      // count = chunk size in bytes.
      field(os, "k", e.slot, &first);
      field(os, "node", e.node, &first);
      field(os, "value", e.value, &first);
      field(os, "count", e.count, &first);
      break;
    case EventKind::kChunkEcho:
      field(os, "k", e.slot, &first);
      field(os, "node", e.node, &first);
      field(os, "value", e.value, &first);
      break;
    case EventKind::kReconstruct:
      // count = distinct verified columns held, detail = outcome
      // ("commit" / "bot").
      field(os, "k", e.slot, &first);
      field(os, "node", e.node, &first);
      field(os, "value", e.value, &first);
      field(os, "count", e.count, &first);
      field_str(os, "detail", e.detail, &first);
      break;
    case EventKind::kDeliveryDelayed:
      // node = sender, subject = recipient, count = delivery index in
      // the emission round, value = the round the message lands in.
      field(os, "node", e.node, &first);
      field(os, "subject", e.subject, &first);
      field(os, "count", e.count, &first);
      field(os, "value", e.value, &first);
      break;
  }
  os << '}';
}

}  // namespace ambb::trace
