// TrustCast (Algorithm 5.1, simplified from Wan et al. TCC'20).
//
// A designated sender multicasts a message; every node either receives it
// or obtains provable evidence of the sender's misbehavior, expressed as
// the sender's removal from a locally maintained trust graph. Properties
// (for honest u, v, starting from a complete graph and T >= n):
//   Transferability: G_u at round t+1 is a subgraph of G_v at round t.
//   Termination:     by round n, u received the message or removed S.
//   Integrity:       the edge (u, v) between honest nodes is never removed.
//
// The trust graph and all accusation bookkeeping persist across slots —
// that is the amortization: each (accuser, accused) pair multicasts at
// most one accusation over the entire execution, bounding maintenance at
// O(kappa n^4) total (Section 5.1).
//
// This header provides the reusable per-node engine; Algorithm 5.2
// (quadratic_bb.hpp) composes it with a Dolev-Strong vote on sender
// corruption.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/bitvec.hpp"
#include "common/types.hpp"
#include "common/wire.hpp"
#include "crypto/signer.hpp"
#include "graph/trust_graph.hpp"
#include "sim/commit_log.hpp"
#include "sim/net.hpp"

namespace ambb::quad {

enum class Kind : MsgKind {
  kProp = 0,      ///< sender's signed proposal (and its forwards)
  kAccuse,        ///< <accuse, v>_w: removes trust edge (v, w)
  kCorrupt,       ///< Dolev-Strong phase vote <corrupt, S_k>_u
  kKindCount
};

const char* kind_name(Kind k);
std::vector<std::string> kind_names();

struct Msg {
  Kind kind = Kind::kProp;
  Slot slot = 0;
  Value value = 0;
  NodeId accused = kNoNode;  ///< kAccuse / kCorrupt target
  Signature sig{};           ///< sender / accuser / voter signature
};

std::uint64_t size_bits(const Msg& m, const WireModel& wire);

Digest prop_digest(Slot k, Value v);
Digest accuse_digest(NodeId accused);
Digest corrupt_digest(NodeId target);

/// Schedule of Algorithm 5.2: each slot takes n + f + 3 rounds
/// (round 0 send, rounds 1..n TrustCast, rounds n+1..n+f+2 Dolev-Strong).
struct Schedule {
  std::uint32_t n = 0;
  std::uint32_t f = 0;
  std::uint64_t rounds_per_slot() const {
    return static_cast<std::uint64_t>(n) + f + 3;
  }
  Slot slot_of(Round r) const {
    return static_cast<Slot>(r / rounds_per_slot()) + 1;
  }
  std::uint32_t offset_of(Round r) const {
    return static_cast<std::uint32_t>(r % rounds_per_slot());
  }
};

struct Context {
  std::uint32_t n = 0;
  std::uint32_t f = 0;
  WireModel wire;
  Schedule sched;
  const KeyRegistry* registry = nullptr;
  CommitLog* commits = nullptr;
  std::function<Value(Slot)> input_for_slot;
  std::function<NodeId(Slot)> sender_of;
  trace::TraceSink* trace = nullptr;  ///< optional event sink, not owned
};

/// Accounting policy, evaluated once per traffic record.
struct CostPolicy {
  WireModel wire;
  Schedule sched;

  std::uint64_t size_bits(const Msg& m) const;
  MsgKind kind(const Msg& m) const { return static_cast<MsgKind>(m.kind); }
  Slot slot(const Msg& m, Round sent_round) const {
    return m.slot != 0 ? m.slot : sched.slot_of(sent_round);
  }
};

using Sim = Simulation<Msg, CostPolicy>;

/// Per-node TrustCast state machine. Owns the node's persistent trust
/// graph and accusation dedup state; the caller (QuadNode or the
/// standalone test harness) drives handle() for every inbound message and
/// tc_round_action() during TrustCast rounds.
class TrustCastEngine {
 public:
  TrustCastEngine(NodeId id, const Context* ctx);

  void begin_slot(Slot k);

  /// Current simulator round, for event timestamps only (never feeds
  /// back into protocol decisions). Callers set it once per round.
  void set_round(Round r) { round_ = r; }

  /// Process one inbound message: prop forwarding + equivocation, edge
  /// removals + accusation forwarding, pruning. Safe to call in every
  /// round of the slot (removals must keep flowing during the DS phase
  /// for transferability). Corrupt-vote messages are ignored here.
  /// `allow_send = false` updates local state but suppresses the
  /// forwarding an honest node would do (Byzantine colluders use this).
  void handle(const Msg& m, RoundApi<Msg>& api, bool allow_send = true);

  /// The sender's own round-0 action (honest sender only).
  void send_proposal(RoundApi<Msg>& api);

  /// Distance-based accusation rule for TrustCast round 1 <= t <= n.
  void tc_round_action(std::uint32_t t, RoundApi<Msg>& api);

  // ---- state queries ----
  const TrustGraph& graph() const { return graph_; }
  bool sender_present() const { return graph_.has_vertex(sender_); }
  /// The unique value received from the sender this slot (nullopt if none
  /// or if the sender equivocated — in which case it is also removed).
  std::optional<Value> received_value() const;
  bool has_accused(NodeId accuser, NodeId accused) const {
    return accuse_sent_seen_[accuser].get(accused);
  }
  NodeId slot_sender() const { return sender_; }
  Slot slot() const { return slot_; }

 private:
  void remove_edge_and_prune(NodeId a, NodeId b);
  void issue_accuse(NodeId v, RoundApi<Msg>& api);

  NodeId id_;
  const Context* ctx_;
  TrustGraph graph_;

  // persistent: one multicast per (accuser, accused) pair, ever.
  std::vector<BitVec> accuse_sent_seen_;  ///< [accuser] -> accused set

  // per slot
  Slot slot_ = 0;
  NodeId sender_ = kNoNode;
  std::vector<Value> prop_values_;  ///< distinct sender values seen (<= 2)
  std::uint32_t props_forwarded_ = 0;
  Round round_ = 0;  ///< event timestamps only
};

}  // namespace ambb::quad
