#include "crypto/threshold.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace ambb {

ThresholdScheme::ThresholdScheme(const KeyRegistry& registry, std::uint32_t t)
    : registry_(&registry), t_(t) {
  AMBB_CHECK(t >= 1 && t <= registry.n());
}

SigShare ThresholdScheme::share(NodeId signer, const Digest& d) const {
  return SigShare{signer, registry_->mac_as(signer, "thshare", d)};
}

bool ThresholdScheme::verify_share(const SigShare& s, const Digest& d) const {
  if (s.signer >= registry_->n()) return false;
  return s.mac == registry_->mac_as(s.signer, "thshare", d);
}

ThresholdSig ThresholdScheme::combine(std::span<const SigShare> shares,
                                      const Digest& d) const {
  std::vector<NodeId> signers;
  signers.reserve(shares.size());
  for (const auto& s : shares) {
    AMBB_CHECK_MSG(verify_share(s, d), "invalid share passed to combine");
    signers.push_back(s.signer);
  }
  std::sort(signers.begin(), signers.end());
  signers.erase(std::unique(signers.begin(), signers.end()), signers.end());
  AMBB_CHECK_MSG(signers.size() >= t_,
                 "combine needs >= t distinct valid shares, got "
                     << signers.size() << " < " << t_);
  return ThresholdSig{registry_->master_mac("th", d)};
}

bool ThresholdScheme::verify(const ThresholdSig& sig, const Digest& d) const {
  return sig.mac == registry_->master_mac("th", d);
}

}  // namespace ambb
