file(REMOVE_RECURSE
  "CMakeFiles/test_properties_all.dir/test_properties_all.cpp.o"
  "CMakeFiles/test_properties_all.dir/test_properties_all.cpp.o.d"
  "test_properties_all"
  "test_properties_all.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
