#include "crypto/multisig.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace ambb {
namespace {

Digest d(const std::string& s) { return Sha256::hash(s); }

class MultiSigTest : public ::testing::Test {
 protected:
  KeyRegistry reg{6, 5};
  MultiSigScheme ms{reg};
};

TEST_F(MultiSigTest, EmptyAggregateVerifies) {
  EXPECT_TRUE(ms.verify(ms.empty(), d("m")));
  EXPECT_EQ(ms.empty().signer_count(), 0u);
}

TEST_F(MultiSigTest, SingleSignerVerifies) {
  MultiSig sig = ms.extend(ms.empty(), 2, d("m"));
  EXPECT_EQ(sig.signer_count(), 1u);
  EXPECT_TRUE(ms.verify(sig, d("m")));
  EXPECT_FALSE(ms.verify(sig, d("other")));
}

TEST_F(MultiSigTest, AggregationIsOrderIndependent) {
  MultiSig a = ms.extend(ms.extend(ms.empty(), 0, d("m")), 3, d("m"));
  MultiSig b = ms.extend(ms.extend(ms.empty(), 3, d("m")), 0, d("m"));
  EXPECT_EQ(a.agg, b.agg);
  EXPECT_EQ(a.signers, b.signers);
}

TEST_F(MultiSigTest, DoubleExtendThrows) {
  MultiSig sig = ms.extend(ms.empty(), 1, d("m"));
  EXPECT_THROW(ms.extend(sig, 1, d("m")), CheckError);
}

TEST_F(MultiSigTest, BitmapSpoofFails) {
  MultiSig sig = ms.extend(ms.empty(), 1, d("m"));
  sig.signers.set(2);  // claim node 2 also signed
  EXPECT_FALSE(ms.verify(sig, d("m")));
}

TEST_F(MultiSigTest, TamperedAggregateFails) {
  MultiSig sig = ms.extend(ms.empty(), 1, d("m"));
  sig.agg[5] ^= 0x10;
  EXPECT_FALSE(ms.verify(sig, d("m")));
}

TEST_F(MultiSigTest, FullQuorumVerifies) {
  MultiSig sig = ms.empty();
  for (NodeId i = 0; i < 6; ++i) sig = ms.extend(sig, i, d("m"));
  EXPECT_EQ(sig.signer_count(), 6u);
  EXPECT_TRUE(ms.verify(sig, d("m")));
}

TEST_F(MultiSigTest, WrongBitmapSizeRejected) {
  MultiSig sig;
  sig.signers = BitVec(5);  // wrong n
  EXPECT_FALSE(ms.verify(sig, d("m")));
}

}  // namespace
}  // namespace ambb
