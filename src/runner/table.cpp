#include "runner/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/check.hpp"

namespace ambb {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  AMBB_CHECK(!headers_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  AMBB_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::render(int indent) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  auto emit = [&](const std::vector<std::string>& cells) {
    os << pad;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c] << std::string(width[c] - cells[c].size() + 2, ' ');
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << pad << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TextTable::bits_human(double bits) {
  char buf[64];
  if (bits >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.2f Gbit", bits / 1e9);
  } else if (bits >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2f Mbit", bits / 1e6);
  } else if (bits >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.2f kbit", bits / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f bit", bits);
  }
  return buf;
}

}  // namespace ambb
