#include "runner/result.hpp"

#include <limits>
#include <sstream>

#include "common/check.hpp"

namespace ambb {

double RunResult::amortized(Slot upto) const {
  if (upto == 0) upto = slots;
  // A zero-slot run (possible for dynamically sized sweep/fuzz configs)
  // has no amortized cost; NaN here, rendered as JSON null downstream.
  if (upto == 0) return std::numeric_limits<double>::quiet_NaN();
  AMBB_CHECK(upto <= slots);
  std::uint64_t total = 0;
  for (Slot k = 1; k <= upto && k < per_slot_bits.size(); ++k) {
    total += per_slot_bits[k];
  }
  return static_cast<double>(total) / upto;
}

double RunResult::amortized_tail(Slot from) const {
  AMBB_CHECK(from < slots);
  std::uint64_t total = 0;
  for (Slot k = from + 1; k <= slots && k < per_slot_bits.size(); ++k) {
    total += per_slot_bits[k];
  }
  return static_cast<double>(total) / (slots - from);
}

std::vector<std::string> check_consistency(const RunResult& r) {
  std::vector<std::string> out;
  for (Slot k = 1; k <= r.slots; ++k) {
    Value first = kBotValue;
    NodeId first_node = kNoNode;
    bool have = false;
    for (NodeId v = 0; v < r.n; ++v) {
      if (!r.is_honest(v) || !r.commits.has(v, k)) continue;
      const Value val = r.commits.get(v, k).value;
      if (!have) {
        have = true;
        first = val;
        first_node = v;
      } else if (val != first) {
        std::ostringstream os;
        os << "slot " << k << ": node " << first_node << " committed "
           << first << " but node " << v << " committed " << val;
        out.push_back(os.str());
      }
    }
  }
  return out;
}

std::vector<std::string> check_termination(const RunResult& r) {
  std::vector<std::string> out;
  for (Slot k = 1; k <= r.slots; ++k) {
    for (NodeId v = 0; v < r.n; ++v) {
      if (!r.is_honest(v)) continue;
      if (!r.commits.has(v, k)) {
        std::ostringstream os;
        os << "slot " << k << ": honest node " << v << " never committed";
        out.push_back(os.str());
      }
    }
  }
  return out;
}

std::vector<std::string> check_validity(const RunResult& r) {
  std::vector<std::string> out;
  for (Slot k = 1; k <= r.slots; ++k) {
    const NodeId sender = r.senders[k];
    if (!r.is_honest(sender)) continue;
    const Value input = r.sender_inputs[k];
    for (NodeId v = 0; v < r.n; ++v) {
      if (!r.is_honest(v) || !r.commits.has(v, k)) continue;
      const Value val = r.commits.get(v, k).value;
      if (val != input) {
        std::ostringstream os;
        os << "slot " << k << ": honest sender " << sender << " input "
           << input << " but honest node " << v << " committed " << val;
        out.push_back(os.str());
      }
    }
  }
  return out;
}

std::vector<std::string> check_all(const RunResult& r) {
  std::vector<std::string> out = check_consistency(r);
  auto t = check_termination(r);
  out.insert(out.end(), t.begin(), t.end());
  auto v = check_validity(r);
  out.insert(out.end(), v.begin(), v.end());
  return out;
}

}  // namespace ambb
