// HotStuff-without-fallback (Appendix A): a synchronous leader-hub
// protocol with threshold-signature vote aggregation and NO dissemination
// fallback. Demonstrates the permanent liveness failure the paper's
// Algorithm 4 exists to fix: a selective-send leader can produce a valid
// commit-proof while withholding it from up to f honest nodes, who then
// never commit that slot — and nothing in the protocol ever helps them.
//
// Slot structure (6 rounds): propose, vote-1 -> leader, cert multicast,
// vote-2 -> leader, commit-proof multicast, commit-on-receipt.
//
// This is deliberately a simplification of HotStuff (no views/pacemaker,
// no pipelining, synchronous rounds) — exactly the "failure-free
// synchronous multi-shot BB" reading Appendix A gives it.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "common/wire.hpp"
#include "crypto/threshold.hpp"
#include "runner/result.hpp"
#include "sim/commit_log.hpp"
#include "sim/net.hpp"

namespace ambb::hs {

enum class Kind : MsgKind {
  kPropose = 0,
  kVote1,
  kCert,
  kVote2,
  kProof,
  kKindCount
};

std::vector<std::string> kind_names();

struct Msg {
  Kind kind = Kind::kPropose;
  Slot slot = 0;
  Value value = 0;
  SigShare share{};
  ThresholdSig thsig{};
  Signature sig{};  ///< leader signature on the proposal
};

Digest prop_digest(Slot k, Value v);
Digest round1_digest(Slot k, Value v);
Digest round2_digest(Slot k, Value v);

struct Schedule {
  std::uint64_t rounds_per_slot() const { return 6; }
  Slot slot_of(Round r) const {
    return static_cast<Slot>(r / rounds_per_slot()) + 1;
  }
  std::uint32_t offset_of(Round r) const {
    return static_cast<std::uint32_t>(r % rounds_per_slot());
  }
};

struct Context {
  std::uint32_t n = 0;
  std::uint32_t f = 0;
  WireModel wire;
  Schedule sched;
  const KeyRegistry* registry = nullptr;
  const ThresholdScheme* th = nullptr;  ///< t = n - f
  CommitLog* commits = nullptr;
  std::function<Value(Slot)> input_for_slot;
  std::function<NodeId(Slot)> sender_of;
  trace::TraceSink* trace = nullptr;  ///< optional event sink, not owned
};

std::uint64_t size_bits(const Msg& m, const WireModel& wire);

/// Accounting policy, evaluated once per traffic record.
struct CostPolicy {
  WireModel wire;
  Schedule sched;

  std::uint64_t size_bits(const Msg& m) const {
    return hs::size_bits(m, wire);
  }
  MsgKind kind(const Msg& m) const { return static_cast<MsgKind>(m.kind); }
  Slot slot(const Msg& m, Round sent_round) const {
    return m.slot != 0 ? m.slot : sched.slot_of(sent_round);
  }
};

using Sim = Simulation<Msg, CostPolicy>;

struct HsConfig {
  std::uint32_t n = 8;
  std::uint32_t f = 2;
  Slot slots = 4;
  std::uint64_t seed = 1;
  std::uint32_t kappa_bits = kDefaultKappaBits;
  std::uint32_t value_bits = kDefaultValueBits;
  std::string adversary = "none";  // none | selective
  /// Optional event sink, not owned (see src/trace/).
  /// Honest-phase shard threads per round (0 = auto, 1 = serial;
  /// byte-identical results for every value — DESIGN.md §15).
  std::uint32_t node_jobs = 1;
  /// Network delay policy (DESIGN.md §16): "lockstep" (default) |
  /// "bounded:<delta>" | "async[:<cap>]".
  std::string net = "lockstep";
  trace::TraceSink* trace = nullptr;
  std::function<Value(Slot)> input_for_slot;
  std::function<NodeId(Slot)> sender_of;
};

/// NOTE: under the "selective" adversary this intentionally FAILS the
/// termination property — that is the point of Appendix A. Callers must
/// not assert check_termination on such runs.
RunResult run_hotstuff_demo(const HsConfig& cfg);

}  // namespace ambb::hs
