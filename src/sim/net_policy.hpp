// Pluggable message-delay policies for the deterministic event-queue
// scheduler (DESIGN.md §16).
//
// The simulator's delivery phase asks the policy, per delivery, how many
// EXTRA rounds past the lock-step latency (emitted in round r, delivered
// at the beginning of round r+1) the message is deferred:
//
//   lockstep      extra = 0 always. The paper's synchronous model; the
//                 event queue degenerates to the classic double-buffer
//                 swap and every existing golden is byte-identical.
//   bounded:D     partial synchrony with bound Δ = D: the network itself
//                 draws extra ∈ [0, Δ] per delivery, as a pure hash of
//                 (seed, emission round, delivery index) — no sequential
//                 RNG state, so the draw is identical for any --jobs /
//                 --node-jobs split. Adversary-requested delays are
//                 clamped so no delivery ever exceeds Δ.
//   async[:C]     adversary-scheduled delivery: the network adds no
//                 delay of its own (extra = 0 unless the adversary says
//                 otherwise), and the adversary may defer any delivery by
//                 up to C extra rounds (default 8). C is the
//                 eventual-delivery guarantee: messages cannot be
//                 withheld forever, only reordered within a C-round
//                 window.
//
// A policy is a value: parse once from its spec string, salt it with the
// run seed, hand it to Simulation::configure. Everything it computes is a
// pure function of (spec, seed, round, delivery index).
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace ambb {

enum class NetKind : std::uint8_t { kLockstep, kBounded, kAsync };

const char* net_kind_name(NetKind k);

struct NetPolicy {
  NetKind kind = NetKind::kLockstep;
  /// bounded: the partial-synchrony bound Δ — the network draws extra
  /// delays in [0, delta] and adversary delays are clamped to delta.
  std::uint32_t delta = 0;
  /// async: eventual-delivery cap — adversary delays are clamped to cap
  /// extra rounds, so every message lands within cap+1 rounds of emission.
  std::uint32_t cap = 8;
  /// Run-seed salt for the bounded base draw. Drivers fold their run seed
  /// in via make_net_policy(); the default 0 keeps unit tests simple.
  std::uint64_t seed = 0;

  bool lockstep() const { return kind == NetKind::kLockstep; }

  /// Hard ceiling on the extra delay of any delivery under this policy
  /// (0 under lockstep: timing faults are rejected there).
  std::uint32_t max_extra() const;

  /// The network's own extra delay for one delivery, as a pure hash of
  /// (seed, emission round, delivery index). Zero except under bounded.
  std::uint32_t base_extra(Round r, std::uint64_t delivery_index) const;

  /// Clamp a combined (base + adversary) extra delay to the policy bound.
  std::uint32_t clamp_extra(std::uint64_t extra) const;

  /// Canonical spec string ("lockstep", "bounded:3", "async:8").
  std::string spec() const;
};

/// Parse a policy spec: "lockstep" | "bounded:<delta>" | "async[:<cap>]".
/// Throws CheckError on anything else (bad kind, missing/garbage number,
/// async cap of zero).
NetPolicy parse_net_policy(const std::string& spec);

/// parse_net_policy + fold the run seed into the policy salt. The salt
/// constant keeps the network's delay stream independent from the
/// protocol and adversary streams derived from the same run seed.
NetPolicy make_net_policy(const std::string& spec, std::uint64_t run_seed);

}  // namespace ambb
