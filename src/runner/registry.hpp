// Uniform catalog of every multi-shot BB protocol in the library, so that
// tests and benchmarks can sweep protocols x adversaries x (n, f, L, seed)
// without knowing each driver's config type.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "runner/result.hpp"

namespace ambb {

namespace trace {
class TraceSink;
}

struct CommonParams {
  std::uint32_t n = 16;
  std::uint32_t f = 4;
  Slot slots = 8;
  std::uint64_t seed = 1;
  std::string adversary = "none";
  std::uint32_t kappa_bits = kDefaultKappaBits;
  std::uint32_t value_bits = kDefaultValueBits;
  /// Expander parameter of the linear-family protocols (f <= (1/2-eps)n);
  /// ignored by the other families. The default matches the pre-engine
  /// registry behaviour bit-for-bit.
  double eps = 0.1;
  /// Payload size axis for long-message runs (DESIGN.md §13). 0 keeps the
  /// historical kappa-sized-value behaviour. The ext:* rows erasure-code
  /// a payload of this many bytes per slot; for every other row the sweep
  /// layer translates a nonzero payload into value_bits = 8 * payload
  /// (the value travels inline), so the same axis prices both designs.
  std::uint64_t payload_bytes = 0;
  /// Threads for the honest-node phase of each simulated round (DESIGN.md
  /// §15). 1 = serial; 0 = one per hardware thread; results are
  /// byte-identical for every value. Composes with the engine's run-level
  /// --jobs as a multiplier on total threads (engine::resolve_node_jobs).
  std::uint32_t node_jobs = 1;
  /// Network delay policy (DESIGN.md §16): "lockstep" (classic synchronous
  /// delivery, the default — byte-identical to the pre-scheduler engine),
  /// "bounded:<delta>" (partial synchrony, seeded extra delays up to delta
  /// rounds) or "async[:<cap>]" (adversary-scheduled delivery, eventual
  /// delivery within cap rounds). Parsed per run with the run seed mixed
  /// in (make_net_policy), so the whole execution stays a pure function of
  /// (params, seed).
  std::string net = "lockstep";
};

/// One run, fully specified: the parameters plus an optional trace sink.
/// Implicitly constructible from CommonParams so every pre-trace call
/// site (`info.run(params)`) keeps working and runs untraced.
struct RunRequest {
  CommonParams params;
  /// Optional event sink, not owned; nullptr = no tracing. Attaching a
  /// sink never changes the run's results (sinks are pure observers).
  trace::TraceSink* trace = nullptr;

  RunRequest() = default;
  RunRequest(const CommonParams& p) : params(p) {}  // NOLINT: implicit
  RunRequest(const CommonParams& p, trace::TraceSink* sink)
      : params(p), trace(sink) {}
};

/// Which adversary specs a protocol runs against, and which of them are
/// allowed to break termination. Every protocol additionally accepts the
/// generic fault-schedule grammar ("sched:..." / "fuzz[:k]").
struct AdversaryPolicy {
  /// Named strategy specs this protocol's driver implements.
  std::vector<std::string> named;
  /// Named specs under which the protocol MAY violate termination (the
  /// Appendix A HotStuff demo, and the no-query-path ablation of
  /// Algorithm 4). Consistency and validity must still hold.
  std::vector<std::string> liveness_failures;
  /// True if the protocol may miss commits under ARBITRARY "sched:..." /
  /// "fuzz" fault schedules (no fallback path: a silenced or selective
  /// node it depends on permanently starves progress). Consistency and
  /// validity must still hold under any budget-respecting schedule.
  bool sched_may_stall = false;

  /// True if `spec` is runnable: a named spec or any schedule spec.
  bool accepts(const std::string& spec) const;
  /// True if a run under `spec` is allowed to stall.
  bool may_stall(const std::string& spec) const;
};

struct ProtocolInfo {
  std::string name;
  std::string table1_row;  ///< which Table 1 row this reproduces
  AdversaryPolicy policy;  ///< accepted adversary specs + stall policy
  /// Largest f this protocol supports for a given n.
  std::function<std::uint32_t(std::uint32_t n)> max_f;
  std::function<RunResult(const RunRequest&)> run;
  /// True if the protocol's CONSISTENCY argument itself leans on the
  /// synchronous round structure — the Dolev-Strong relay step ("accepted
  /// at round r <= f ⇒ everyone accepts by r+1"), TrustCast's trust-graph
  /// delivery deadline, the extension rows' chunk-dispersal window. Under
  /// a non-lockstep delay policy (DESIGN.md §16) such a row may legally
  /// split: one honest node commits v while another times out to ⊥.
  /// Campaigns report the split instead of failing it. Rows whose
  /// consistency rests on quorum intersection (the linear family,
  /// phase-king, hotstuff) leave this false, and consistency stays a hard
  /// oracle for them under every network model.
  bool consistency_needs_sync = false;
};

const std::vector<ProtocolInfo>& protocols();

/// Lookup that throws (CheckError) on an unknown name. Prefer
/// find_protocol in user-facing code so the caller can print the
/// available list and a nearest-name suggestion instead of aborting.
const ProtocolInfo& protocol(const std::string& name);

/// Lookup that reports failure: nullptr when `name` is not registered.
const ProtocolInfo* find_protocol(const std::string& name);

/// Closest registered protocol name by edit distance, for
/// "unknown protocol 'X', did you mean 'Y'?" diagnostics. Empty string
/// when nothing is plausibly close (distance > half the query length).
std::string suggest_protocol(const std::string& name);

/// Convenience forwarders to info.policy.
bool accepts_adversary(const ProtocolInfo& info, const std::string& spec);
bool may_stall(const ProtocolInfo& info, const std::string& spec);

}  // namespace ambb
