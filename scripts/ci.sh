#!/usr/bin/env bash
# Tier-1 gate plus the ThreadSanitizer pass over the experiment engine.
#
#   scripts/ci.sh          # full: tier-1 build+tests, then TSan engine suite
#   scripts/ci.sh tier1    # only the tier-1 build + full test suite
#   scripts/ci.sh tsan     # only the TSan build + `ctest -L engine`
#
# The TSan stage rebuilds into build-tsan/ (see CMakePresets.json) and runs
# exactly the engine-labelled tests: they exercise the worker pool with
# real protocol drivers, so a data race anywhere on the job path —
# engine, sweep expansion, registry, simulator — trips it.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 2)"
stage="${1:-all}"

tier1() {
  echo "== tier-1: configure + build =="
  cmake --preset default
  cmake --build --preset default -j "$jobs"
  echo "== tier-1: ctest =="
  ctest --preset default -j "$jobs"
}

tsan() {
  echo "== tsan: configure + build =="
  cmake --preset tsan
  cmake --build --preset tsan -j "$jobs"
  echo "== tsan: ctest -L engine =="
  # halt_on_error promotes any race report to a test failure.
  TSAN_OPTIONS="halt_on_error=1" ctest --preset tsan -j "$jobs"
}

case "$stage" in
  tier1) tier1 ;;
  tsan) tsan ;;
  all)
    tier1
    tsan
    ;;
  *)
    echo "usage: $0 [tier1|tsan|all]" >&2
    exit 2
    ;;
esac

echo "ci: OK ($stage)"
