file(REMOVE_RECURSE
  "CMakeFiles/blockchain_ledger.dir/blockchain_ledger.cpp.o"
  "CMakeFiles/blockchain_ledger.dir/blockchain_ledger.cpp.o.d"
  "blockchain_ledger"
  "blockchain_ledger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blockchain_ledger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
