file(REMOVE_RECURSE
  "CMakeFiles/bench_f1_convergence.dir/bench_f1_convergence.cpp.o"
  "CMakeFiles/bench_f1_convergence.dir/bench_f1_convergence.cpp.o.d"
  "bench_f1_convergence"
  "bench_f1_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f1_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
