// Experiment F4 — Appendix A: HotStuff without a fallback path loses
// liveness under a selective-send leader, permanently; Algorithm 4
// commits everywhere in the identical scenario at linear steady-state
// cost. Prints the per-slot honest commit fraction for both protocols.
#include "bench_common.hpp"

namespace ambb::bench {
namespace {

void run_comparison() {
  const std::uint32_t n = 16;
  const std::uint32_t f = 5;
  const Slot slots = 16;
  print_header(
      "F4 / Appendix A: selective-send leaders vs liveness (n=16, f=5)",
      "HotStuff w/o fallback: <= f honest nodes stall forever; Algorithm 4 "
      "recovers via Query/Respond");

  CommonParams p;
  p.n = n;
  p.f = f;
  p.slots = slots;
  p.seed = 3;
  p.adversary = "selective";

  // HotStuff-without-fallback stalling under selective leaders is the
  // claim under test, so its termination check stays out of the tally
  // (the registry's stall policy already says so).
  const std::vector<RunResult> results =
      run_jobs({registry_job("hotstuff", p, "hotstuff/selective"),
                registry_job("linear", p, "linear/selective")});
  const RunResult& hr = results[0];
  const RunResult& lr = results[1];

  auto commit_fraction = [n](const RunResult& r, Slot k) {
    std::uint32_t committed = 0, honest = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (r.corrupt[v]) continue;
      ++honest;
      if (r.commits.has(v, k)) ++committed;
    }
    return static_cast<double>(committed) / honest;
  };

  TextTable t({"slot", "leader", "corrupt?", "hotstuff commit frac",
               "alg4 commit frac"});
  for (Slot k = 1; k <= slots; ++k) {
    t.add_row({std::to_string(k), std::to_string(hr.senders[k]),
               hr.corrupt[hr.senders[k]] ? "yes" : "no",
               TextTable::num(commit_fraction(hr, k), 2),
               TextTable::num(commit_fraction(lr, k), 2)});
  }
  std::printf("%s", t.render().c_str());

  const auto stalls = check_termination(hr);
  std::printf(
      "HotStuff stalled node-slots: %zu (expected %u per corrupt-leader "
      "slot); Algorithm 4 stalled: %zu\n",
      stalls.size(), f, check_termination(lr).size());
  std::printf("Honest bits — hotstuff: %s total, alg4: %s total\n",
              TextTable::bits_human(
                  static_cast<double>(hr.honest_bits)).c_str(),
              TextTable::bits_human(
                  static_cast<double>(lr.honest_bits)).c_str());
}

void BM_HotstuffSlot(::benchmark::State& state) {
  CommonParams p;
  p.n = 16;
  p.f = 5;
  p.slots = 16;
  p.seed = 3;
  p.adversary = state.range(0) == 0 ? "none" : "selective";
  for (auto _ : state) {
    auto r = registry_run("hotstuff", p);
    ::benchmark::DoNotOptimize(r.honest_bits);
  }
  state.SetLabel(p.adversary);
}
BENCHMARK(BM_HotstuffSlot)->Arg(0)->Arg(1)->Unit(::benchmark::kMillisecond);

}  // namespace
}  // namespace ambb::bench

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ambb::bench::run_comparison();
  return ambb::bench::finish_bench("f4_hotstuff");
}
