// Byzantine atomic broadcast on top of multi-shot BB.
//
// Section 2: "With synchrony, multi-shot Byzantine broadcast can directly
// solve Byzantine atomic broadcast [10, 30] that commits values at
// increasing slots (not vice versa...). Our protocol also solves
// Byzantine atomic broadcast with linear communication complexity."
//
// This adapter turns the slot-indexed commits of a multi-shot BB run into
// the atomic-broadcast delivery abstraction: a totally ordered, gap-free
// log per replica with the standard properties —
//   Total order:  honest replicas deliver identical logs.
//   Agreement:    if an honest replica delivers an entry, all do.
//   Validity:     an honest proposer's payload is delivered at its slot.
// Delivery is strictly in slot order even when the underlying commits
// are observed out of order (a late commit-proof can land after later
// slots' proofs); the Delivery queue buffers and releases in order.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "bb/linear_bb.hpp"
#include "runner/result.hpp"

namespace ambb::abc {

struct LogEntry {
  Slot slot = 0;
  NodeId proposer = kNoNode;
  Value payload = kBotValue;
  Round decided_round = 0;
};

/// Per-replica in-order delivery queue: accepts slot commits in any order
/// and releases a gap-free prefix.
class DeliveryQueue {
 public:
  /// Buffer a decided slot. Duplicate slots are rejected (CheckError) —
  /// the BB layer guarantees at most one commit per slot.
  void decide(Slot slot, NodeId proposer, Value payload, Round round);

  /// Entries delivered so far (gap-free, slots 1..delivered_upto()).
  const std::vector<LogEntry>& log() const { return log_; }
  Slot delivered_upto() const { return static_cast<Slot>(log_.size()); }

  /// Slots decided but still blocked behind a gap.
  std::size_t pending() const;

 private:
  void drain();

  std::vector<LogEntry> log_;
  std::vector<std::optional<LogEntry>> pending_;  // index: slot
};

struct AbcConfig {
  std::uint32_t n = 16;
  std::uint32_t f = 6;
  Slot slots = 8;
  std::uint64_t seed = 1;
  double eps = 0.1;
  std::string adversary = "none";
  /// Payload the proposer of a slot injects; defaults to a seeded hash.
  std::function<Value(Slot)> payload_for_slot;
};

struct AbcResult {
  RunResult bb;                          ///< the underlying BB execution
  std::vector<DeliveryQueue> replicas;   ///< one log per node (index = id)

  bool is_honest(NodeId v) const { return bb.is_honest(v); }
};

/// Run atomic broadcast over Algorithm 4 (amortized O(kappa n) per
/// delivered entry) and materialize every replica's delivered log.
AbcResult run_atomic_broadcast(const AbcConfig& cfg);

/// Property checkers (empty result = holds).
std::vector<std::string> check_total_order(const AbcResult& r);
std::vector<std::string> check_agreement(const AbcResult& r);
std::vector<std::string> check_abc_validity(const AbcResult& r);

}  // namespace ambb::abc
