// Lock-step synchronous network simulator (the paper's model, Section 3).
//
// Time advances in rounds. In round r every node emits messages; all
// surviving messages are delivered at the beginning of round r+1. The
// adversary is rushing (Byzantine actors step after honest actors and can
// observe the honest round-r traffic before sending their own) and
// strongly adaptive (after all traffic of round r is fixed, it may corrupt
// additional nodes and erase messages those nodes sent in round r, i.e.
// after-the-fact message removal [Abraham et al.]).
//
// The simulator is templated on the protocol's message type: each protocol
// family defines one message struct plus a SizeModel mapping messages to
// exact wire bits and accounting kinds.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "sim/cost.hpp"

namespace ambb {

template <typename Msg>
struct Envelope {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  Msg msg{};
  bool free_of_charge = false;  ///< self-delivery of a multicast
  bool erased = false;          ///< removed after-the-fact by the adversary
};

/// Sending interface handed to an actor for one round.
template <typename Msg>
class RoundApi {
 public:
  RoundApi(NodeId self, std::uint32_t n, std::vector<Envelope<Msg>>* out)
      : self_(self), n_(n), out_(out) {}

  NodeId self() const { return self_; }
  std::uint32_t n() const { return n_; }

  void send(NodeId to, Msg m) {
    AMBB_CHECK(to < n_);
    out_->push_back(Envelope<Msg>{self_, to, std::move(m), false, false});
  }

  /// Send to all n nodes. The self-copy is delivered but not charged:
  /// the paper's multicast costs n-1 transmissions.
  void multicast(const Msg& m) {
    for (NodeId v = 0; v < n_; ++v) {
      out_->push_back(Envelope<Msg>{self_, v, m, v == self_, false});
    }
  }

 private:
  NodeId self_;
  std::uint32_t n_;
  std::vector<Envelope<Msg>>* out_;
};

/// A node's protocol logic. One Actor instance persists across the entire
/// multi-shot execution (protocols carry cross-slot state).
template <typename Msg>
class Actor {
 public:
  virtual ~Actor() = default;

  /// Called once per round with the messages delivered at the beginning of
  /// this round. For Byzantine actors, `rushed_traffic` additionally holds
  /// the traffic already emitted by honest nodes in this same round
  /// (rushing adversary); it is empty for honest actors.
  virtual void on_round(Round r, std::span<const Envelope<Msg>> inbox,
                        std::span<const Envelope<Msg>> rushed_traffic,
                        RoundApi<Msg>& api) = 0;
};

/// Control surface for the strongly adaptive corruption step.
template <typename Msg>
class CorruptionCtl {
 public:
  virtual ~CorruptionCtl() = default;

  /// Corrupt `node` now (end of the current round). Fails if the
  /// corruption budget f is exhausted.
  virtual void corrupt(NodeId node) = 0;

  /// Erase a message sent in the current round. Only messages whose
  /// sender is (now) corrupt may be erased — after-the-fact removal.
  virtual void erase(std::size_t traffic_index) = 0;

  virtual bool is_corrupt(NodeId node) const = 0;
  virtual std::uint32_t corruption_budget_left() const = 0;
};

/// The adversary: chooses corruptions, supplies Byzantine actors, and may
/// exercise the strongly adaptive hook each round.
template <typename Msg>
class Adversary {
 public:
  virtual ~Adversary() = default;

  virtual std::vector<NodeId> initial_corruptions() = 0;

  /// Byzantine replacement logic for a corrupted node.
  virtual std::unique_ptr<Actor<Msg>> actor_for(NodeId node) = 0;

  /// Strongly adaptive step: observe all round-r traffic, optionally
  /// corrupt more nodes and erase their round-r messages.
  virtual void observe_round(Round r,
                             std::span<const Envelope<Msg>> traffic,
                             CorruptionCtl<Msg>& ctl) {
    (void)r;
    (void)traffic;
    (void)ctl;
  }
};

/// Per-protocol hooks the simulation needs: exact wire size, accounting
/// kind, and the slot an envelope's cost belongs to.
template <typename Msg>
struct Accounting {
  std::function<std::uint64_t(const Msg&)> size_bits;
  std::function<MsgKind(const Msg&)> kind;
  std::function<Slot(const Msg&, Round sent_round)> slot;
};

template <typename Msg>
class Simulation final : CorruptionCtl<Msg> {
 public:
  Simulation(std::uint32_t n, std::uint32_t f, CostLedger* ledger,
             Accounting<Msg> accounting)
      : n_(n),
        f_(f),
        ledger_(ledger),
        accounting_(std::move(accounting)),
        corrupt_(n, 0),
        actors_(n),
        inboxes_(n) {
    AMBB_CHECK(n >= 1 && f < n);
    AMBB_CHECK(ledger != nullptr);
  }

  /// Install the honest actor for every node, then bind the adversary
  /// (which replaces actors of initially corrupted nodes).
  void set_actor(NodeId node, std::unique_ptr<Actor<Msg>> actor) {
    AMBB_CHECK(node < n_);
    actors_[node] = std::move(actor);
  }

  void bind_adversary(Adversary<Msg>* adversary) {
    adversary_ = adversary;
    if (adversary_ == nullptr) return;
    for (NodeId v : adversary_->initial_corruptions()) do_corrupt(v);
  }

  Round now() const { return round_; }

  /// Introspection for tests: the actor currently installed for `node`
  /// (the honest protocol node, or the adversary's replacement).
  Actor<Msg>* actor(NodeId node) const {
    AMBB_CHECK(node < n_);
    return actors_[node].get();
  }

  std::uint32_t n() const { return n_; }
  std::uint32_t f() const { return f_; }
  std::uint32_t corrupt_count() const { return corrupt_count_; }
  bool is_corrupt(NodeId node) const override {
    AMBB_CHECK(node < n_);
    return corrupt_[node] != 0;
  }
  std::uint32_t corruption_budget_left() const override {
    return f_ - corrupt_count_;
  }

  /// Execute one lock-step round.
  void step() {
    traffic_.clear();

    // 1. Honest actors act on their inboxes.
    for (NodeId v = 0; v < n_; ++v) {
      if (corrupt_[v]) continue;
      RoundApi<Msg> api(v, n_, &traffic_);
      actors_[v]->on_round(round_, inboxes_[v], {}, api);
    }
    const std::size_t honest_traffic_end = traffic_.size();

    // 2. Byzantine actors act, rushing: they see the honest traffic.
    for (NodeId v = 0; v < n_; ++v) {
      if (!corrupt_[v]) continue;
      RoundApi<Msg> api(v, n_, &traffic_);
      actors_[v]->on_round(
          round_, inboxes_[v],
          std::span<const Envelope<Msg>>(traffic_.data(), honest_traffic_end),
          api);
    }

    // 3. Strongly adaptive step: adversary inspects all round traffic,
    //    may corrupt senders and erase their messages.
    if (adversary_ != nullptr) {
      adversary_->observe_round(round_, traffic_, *this);
    }

    // 4. Charge costs. A sender corrupted during step 3 is corrupt for
    //    accounting purposes: its bits are not honest bits.
    for (const auto& env : traffic_) {
      if (env.erased || env.free_of_charge) continue;
      ledger_->charge(accounting_.slot(env.msg, round_),
                      accounting_.kind(env.msg),
                      accounting_.size_bits(env.msg), !corrupt_[env.from]);
    }

    // 5. Deliver surviving messages for the next round.
    for (auto& ib : inboxes_) ib.clear();
    for (auto& env : traffic_) {
      if (env.erased) continue;
      inboxes_[env.to].push_back(std::move(env));
    }
    ++round_;
  }

  void run_rounds(std::uint64_t rounds) {
    for (std::uint64_t i = 0; i < rounds; ++i) step();
  }

 private:
  void corrupt(NodeId node) override { do_corrupt(node); }

  void erase(std::size_t traffic_index) override {
    AMBB_CHECK(traffic_index < traffic_.size());
    Envelope<Msg>& env = traffic_[traffic_index];
    AMBB_CHECK_MSG(corrupt_[env.from],
                   "after-the-fact removal requires a corrupt sender");
    env.erased = true;
  }

  void do_corrupt(NodeId node) {
    AMBB_CHECK(node < n_);
    if (corrupt_[node]) return;
    AMBB_CHECK_MSG(corrupt_count_ < f_, "corruption budget f exhausted");
    corrupt_[node] = 1;
    ++corrupt_count_;
    AMBB_CHECK(adversary_ != nullptr);
    actors_[node] = adversary_->actor_for(node);
  }

  std::uint32_t n_;
  std::uint32_t f_;
  CostLedger* ledger_;
  Accounting<Msg> accounting_;
  Adversary<Msg>* adversary_ = nullptr;
  Round round_ = 0;
  std::vector<std::uint8_t> corrupt_;
  std::uint32_t corrupt_count_ = 0;
  std::vector<std::unique_ptr<Actor<Msg>>> actors_;
  std::vector<std::vector<Envelope<Msg>>> inboxes_;
  std::vector<Envelope<Msg>> traffic_;
};

}  // namespace ambb
