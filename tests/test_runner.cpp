#include "runner/result.hpp"

#include <gtest/gtest.h>

#include "runner/registry.hpp"
#include "runner/table.hpp"

namespace ambb {
namespace {

RunResult fabricate(std::uint32_t n, Slot slots) {
  RunResult r;
  r.n = n;
  r.f = 1;
  r.slots = slots;
  r.corrupt.assign(n, 0);
  r.corrupt[0] = 1;  // node 0 corrupt
  r.commits = CommitLog(n);
  r.senders.assign(slots + 1, 1);
  r.sender_inputs.assign(slots + 1, 42);
  r.per_slot_bits.assign(slots + 1, 0);
  return r;
}

TEST(Checkers, CleanRunPasses) {
  RunResult r = fabricate(3, 2);
  for (Slot k = 1; k <= 2; ++k) {
    for (NodeId v = 1; v < 3; ++v) r.commits.record(v, k, 42, k);
  }
  EXPECT_TRUE(check_all(r).empty());
}

TEST(Checkers, ConsistencyViolationDetected) {
  RunResult r = fabricate(3, 1);
  r.commits.record(1, 1, 42, 1);
  r.commits.record(2, 1, 43, 1);
  EXPECT_FALSE(check_consistency(r).empty());
}

TEST(Checkers, CorruptNodesIgnored) {
  RunResult r = fabricate(3, 1);
  r.commits.record(0, 1, 999, 1);  // corrupt node disagrees: fine
  r.commits.record(1, 1, 42, 1);
  r.commits.record(2, 1, 42, 1);
  EXPECT_TRUE(check_consistency(r).empty());
  EXPECT_TRUE(check_validity(r).empty());
}

TEST(Checkers, TerminationViolationDetected) {
  RunResult r = fabricate(3, 1);
  r.commits.record(1, 1, 42, 1);
  // node 2 never commits
  auto errs = check_termination(r);
  ASSERT_EQ(errs.size(), 1u);
  EXPECT_NE(errs[0].find("node 2"), std::string::npos);
}

TEST(Checkers, ValidityViolationDetected) {
  RunResult r = fabricate(3, 1);
  r.commits.record(1, 1, 41, 1);  // sender 1 is honest with input 42
  r.commits.record(2, 1, 41, 1);
  EXPECT_FALSE(check_validity(r).empty());
  EXPECT_TRUE(check_consistency(r).empty());
}

TEST(Checkers, ValiditySkipsCorruptSender) {
  RunResult r = fabricate(3, 1);
  r.senders[1] = 0;  // corrupt sender
  r.commits.record(1, 1, 7, 1);
  r.commits.record(2, 1, 7, 1);
  EXPECT_TRUE(check_validity(r).empty());
}

TEST(RunResult, AmortizedMath) {
  RunResult r = fabricate(3, 4);
  r.per_slot_bits = {0, 1000, 100, 100, 100};  // index 0 unused
  EXPECT_DOUBLE_EQ(r.amortized(), 325.0);
  EXPECT_DOUBLE_EQ(r.amortized(1), 1000.0);
  EXPECT_DOUBLE_EQ(r.amortized_tail(1), 100.0);
}

TEST(Registry, AllProtocolsPresent) {
  const auto& ps = protocols();
  EXPECT_GE(ps.size(), 9u);
  EXPECT_NO_THROW(protocol("linear"));
  EXPECT_NO_THROW(protocol("quadratic"));
  EXPECT_NO_THROW(protocol("dolev-strong"));
  EXPECT_NO_THROW(protocol("phase-king"));
  EXPECT_NO_THROW(protocol("hotstuff"));
  EXPECT_THROW(protocol("nope"), CheckError);
}

TEST(Registry, MaxFRespectsModelBounds) {
  EXPECT_LE(protocol("phase-king").max_f(16), 5u);
  EXPECT_EQ(protocol("quadratic").max_f(16), 15u);
  EXPECT_LE(protocol("linear").max_f(20), 8u);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "2"});
  std::string s = t.render();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TextTable, Formatters) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::bits_human(500), "500 bit");
  EXPECT_EQ(TextTable::bits_human(2.5e6), "2.50 Mbit");
}

}  // namespace
}  // namespace ambb
