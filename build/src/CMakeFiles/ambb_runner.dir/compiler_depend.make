# Empty compiler generated dependencies file for ambb_runner.
# This may be replaced when dependencies are built.
