// Simulated digital signatures with a PKI.
//
// The environment provides no crypto library, and the paper treats the
// signature scheme as an ideal primitive, so we simulate it: node i's
// secret key is derived from a master seed, a signature on digest d is
// HMAC(sk_i, d), and verification recomputes the MAC through the registry
// (which models the PKI). Inside the simulation the only way to produce a
// valid signature is to call sign() as that node, which the adversary can
// do only for corrupted nodes — exactly the power the paper grants it.
//
// DESIGN.md documents this substitution; the properties the reproduction
// relies on (who can create which object, and its kappa-bit wire size) are
// preserved exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "crypto/sha256.hpp"

namespace ambb {

struct Signature {
  NodeId signer = kNoNode;
  Digest mac{};

  bool operator==(const Signature&) const = default;
};

class KeyRegistry {
 public:
  KeyRegistry(std::uint32_t n, std::uint64_t master_seed);

  std::uint32_t n() const { return n_; }

  /// Sign digest `d` as node `signer`.
  Signature sign(NodeId signer, const Digest& d) const;

  /// Verify that `sig` is node sig.signer's signature on `d`.
  bool verify(const Signature& sig, const Digest& d) const;

  /// Raw MAC under node i's key with a domain-separation tag; building
  /// block for the threshold / multi-signature schemes.
  Digest mac_as(NodeId i, const char* domain, const Digest& d) const;

  /// Raw MAC under the master (dealer) key; only the threshold combiner
  /// uses this, through combine() below.
  Digest master_mac(const char* domain, const Digest& d) const;

 private:
  std::uint32_t n_;
  Digest master_key_;
  std::vector<Digest> node_keys_;
};

}  // namespace ambb
