file(REMOVE_RECURSE
  "CMakeFiles/ambb_common.dir/common/bitvec.cpp.o"
  "CMakeFiles/ambb_common.dir/common/bitvec.cpp.o.d"
  "CMakeFiles/ambb_common.dir/common/byte_buf.cpp.o"
  "CMakeFiles/ambb_common.dir/common/byte_buf.cpp.o.d"
  "CMakeFiles/ambb_common.dir/common/hex.cpp.o"
  "CMakeFiles/ambb_common.dir/common/hex.cpp.o.d"
  "CMakeFiles/ambb_common.dir/common/rng.cpp.o"
  "CMakeFiles/ambb_common.dir/common/rng.cpp.o.d"
  "libambb_common.a"
  "libambb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ambb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
