#include "common/rng.hpp"

namespace ambb {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  AMBB_CHECK(bound > 0);
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = bound * ((~std::uint64_t{0}) / bound);
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return x % bound;
}

std::uint64_t Rng::uniform_range(std::uint64_t lo, std::uint64_t hi) {
  AMBB_CHECK(lo <= hi);
  return lo + uniform(hi - lo + 1);
}

double Rng::uniform01() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) { return uniform01() < p; }

std::vector<std::uint64_t> Rng::sample_distinct(std::uint64_t bound,
                                                std::size_t k) {
  AMBB_CHECK(k <= bound);
  // Floyd's algorithm: O(k) expected draws, then shuffle for random order.
  std::vector<std::uint64_t> out;
  out.reserve(k);
  for (std::uint64_t j = bound - k; j < bound; ++j) {
    std::uint64_t t = uniform(j + 1);
    bool dup = false;
    for (auto v : out) {
      if (v == t) {
        dup = true;
        break;
      }
    }
    out.push_back(dup ? j : t);
  }
  shuffle(out);
  return out;
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace ambb
