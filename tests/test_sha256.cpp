#include "crypto/sha256.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/check.hpp"

namespace ambb {
namespace {

// FIPS 180-4 / NIST CAVP test vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(digest_hex(Sha256::hash(std::string(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(digest_hex(Sha256::hash(std::string("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(
      digest_hex(Sha256::hash(std::string(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, ExactBlockBoundary) {
  // 64 'a' characters: exercises the padding-into-new-block path.
  EXPECT_EQ(digest_hex(Sha256::hash(std::string(64, 'a'))),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(digest_hex(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  std::string msg = "the quick brown fox jumps over the lazy dog";
  Sha256 h;
  for (char c : msg) h.update(std::string(1, c));
  EXPECT_EQ(h.finalize(), Sha256::hash(msg));
}

TEST(Sha256, ReuseAfterFinalizeThrows) {
  Sha256 h;
  h.update(std::string("x"));
  h.finalize();
  EXPECT_THROW(h.update(std::string("y")), CheckError);
  Sha256 h2;
  h2.finalize();
  EXPECT_THROW(h2.finalize(), CheckError);
}

TEST(Sha256, CombineIsOrderSensitive) {
  Digest a = Sha256::hash(std::string("a"));
  Digest b = Sha256::hash(std::string("b"));
  EXPECT_NE(digest_combine(a, b), digest_combine(b, a));
  EXPECT_EQ(digest_combine(a, b), digest_combine(a, b));
}

}  // namespace
}  // namespace ambb
