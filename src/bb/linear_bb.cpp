#include "bb/linear_bb.hpp"

#include <algorithm>

#include "bb/linear_adversary.hpp"
#include "common/byte_buf.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "crypto/intern.hpp"

namespace ambb::linear {

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kCollect: return "collect";
    case Kind::kPropose: return "propose";
    case Kind::kPropForward: return "prop-forward";
    case Kind::kVote: return "vote";
    case Kind::kCert: return "cert";
    case Kind::kCertForward: return "cert-forward";
    case Kind::kCertVote: return "cert-vote";
    case Kind::kCommitProof: return "commit-proof";
    case Kind::kAccuse: return "accuse";
    case Kind::kAccuseForward: return "accuse-forward";
    case Kind::kCorruptProof: return "corrupt-proof";
    case Kind::kQuery1: return "query1";
    case Kind::kQuery2: return "query2";
    case Kind::kKindCount: break;
  }
  return "?";
}

std::vector<std::string> kind_names() {
  std::vector<std::string> out;
  for (MsgKind k = 0; k < static_cast<MsgKind>(Kind::kKindCount); ++k) {
    out.push_back(kind_name(static_cast<Kind>(k)));
  }
  return out;
}

std::uint64_t size_bits(const Msg& m, const WireModel& wire) {
  std::uint64_t bits = wire.header_bits();
  switch (m.kind) {
    case Kind::kCollect:
      bits += 1;  // bot flag
      if (m.has_cert) bits += 16 + wire.value_bits + wire.thsig_bits();
      break;
    case Kind::kPropose:
    case Kind::kPropForward:
      bits += wire.value_bits + 1;
      if (m.has_cert) bits += 16 + wire.thsig_bits();
      bits += wire.sig_bits();  // leader signature
      break;
    case Kind::kVote:
    case Kind::kCertVote:
      bits += wire.value_bits + wire.sig_bits();  // share
      break;
    case Kind::kCert:
    case Kind::kCertForward:
      bits += wire.value_bits + wire.thsig_bits();
      break;
    case Kind::kCommitProof:
      bits += 16 + wire.value_bits + wire.thsig_bits();
      break;
    case Kind::kAccuse:
    case Kind::kAccuseForward:
      bits += wire.id_bits() + wire.sig_bits();  // accused id + share
      break;
    case Kind::kCorruptProof:
      bits += wire.id_bits() + wire.thsig_bits();
      break;
    case Kind::kQuery1:
    case Kind::kQuery2:
      break;  // header only
    case Kind::kKindCount:
      AMBB_CHECK(false);
  }
  return bits;
}

std::uint64_t CostPolicy::size_bits(const Msg& m) const {
  return linear::size_bits(m, wire);
}

// The digest helpers below run on the per-delivery hot path (every
// recipient re-derives the digest it verifies). Each one encodes into the
// thread-local scratch encoder — no per-call buffer — and resolves through
// the interning cache, which memoizes Sha256::hash keyed on the full
// (tag, canonical bytes) pair. Digest values are bit-identical to hashing
// the canonical bytes directly (the tag only keys the cache).
//
// On top of the shared cache, the two hottest helpers keep a one-entry
// last-arguments memo: all n recipients of a multicast re-derive the same
// digest back to back, so consecutive calls repeat arguments almost
// always, and the memo answers them with three integer compares instead
// of an encode + cache probe. Purely an observer of a pure function.

Digest vote_digest(Slot k, Epoch i, Value m) {
  struct Memo { Slot k; Epoch i; Value m; Digest d; bool set; };
  thread_local Memo memo{0, 0, 0, {}, false};
  if (memo.set && memo.k == k && memo.i == i && memo.m == m) return memo.d;
  Encoder& e = Encoder::scratch();
  e.reserve(32);
  e.put_tag("vote");
  e.put_u32(k);
  e.put_u16_checked(i);
  e.put_u64(m);
  memo = Memo{k, i, m, DigestCache::local().hash("vote", e.view()), true};
  return memo.d;
}

Digest commit_digest(Slot k, Epoch i, Value m) {
  struct Memo { Slot k; Epoch i; Value m; Digest d; bool set; };
  thread_local Memo memo{0, 0, 0, {}, false};
  if (memo.set && memo.k == k && memo.i == i && memo.m == m) return memo.d;
  Encoder& e = Encoder::scratch();
  e.reserve(32);
  e.put_tag("commit");
  e.put_u32(k);
  e.put_u16_checked(i);
  e.put_u64(m);
  memo = Memo{k, i, m, DigestCache::local().hash("commit", e.view()), true};
  return memo.d;
}

Digest accuse_digest(NodeId accused) {
  Encoder& e = Encoder::scratch();
  e.reserve(16);
  e.put_tag("accuse");
  e.put_u32(accused);
  return DigestCache::local().hash("accuse", e.view());
}

Digest prop_digest(const Msg& prop) {
  // Last-args memo over every encoded field (the signature is NOT part of
  // the digest, so it is rightly absent from the key): all n recipients
  // validate the same multicast proposal back to back.
  struct Memo {
    Slot k;
    Epoch i;
    Value m;
    bool has_cert;
    Epoch cert_epoch;
    Digest cert_mac;
    Digest d;
    bool set;
  };
  thread_local Memo memo{0, 0, 0, false, 0, {}, {}, false};
  if (memo.set && memo.k == prop.slot && memo.i == prop.epoch &&
      memo.m == prop.value && memo.has_cert == prop.has_cert &&
      (!prop.has_cert || (memo.cert_epoch == prop.cert_epoch &&
                          memo.cert_mac == prop.cert.mac))) {
    return memo.d;
  }
  Encoder& e = Encoder::scratch();
  e.reserve(64);
  e.put_tag("prop");
  e.put_u32(prop.slot);
  e.put_u16_checked(prop.epoch);
  e.put_u64(prop.value);
  e.put_u8(prop.has_cert ? 1 : 0);
  if (prop.has_cert) {
    e.put_u16_checked(prop.cert_epoch);
    e.put_bytes(std::span<const std::uint8_t>(prop.cert.mac.data(),
                                              prop.cert.mac.size()));
  }
  memo = Memo{prop.slot,       prop.epoch,
              prop.value,      prop.has_cert,
              prop.cert_epoch, prop.cert.mac,
              DigestCache::local().hash("prop", e.view()),
              true};
  return memo.d;
}

// ---------------------------------------------------------------------------
// LinearNode
// ---------------------------------------------------------------------------

LinearNode::LinearNode(NodeId id, const Context* ctx,
                       std::unique_ptr<Deviation> deviation)
    : id_(id),
      ctx_(ctx),
      dev_(std::move(deviation)),
      accused_by_me_(ctx->n),
      accuse_seen_(ctx->n, BitVec(ctx->n)),
      accuse_shares_(ctx->n),
      corrupt_proof_have_(ctx->n, 0),
      corrupt_proof_sent_(ctx->n, 0),
      corrupt_proof_sig_(ctx->n),
      star4_forwarded_(ctx->sched.epochs_per_slot()),
      lead_vote_from_(ctx->n),
      lead_cert_vote_from_(ctx->n),
      fresh_accuse_from_(ctx->n, 0),
      answered_scratch_(ctx->n) {
  // Leadership rotates across slots, so every node eventually collects
  // votes. Reserving up front keeps steady-state rounds allocation-free
  // even for a node's FIRST stint as leader (tests/test_alloc_hotpath).
  lead_votes_.reserve(ctx->n);
  lead_cert_votes_.reserve(ctx->n);
  prop_values_seen_.reserve(4);
}

void LinearNode::out(RoundApi<Msg>& api, NodeId to, const Msg& m) {
  if (dev_ != nullptr && dev_->drop_send(round_, offset_, m.kind, to)) return;
  api.send(to, m);
}

void LinearNode::out_multicast(RoundApi<Msg>& api, const Msg& m) {
  if (dev_ == nullptr) {
    api.multicast(m);
    return;
  }
  for (NodeId v = 0; v < ctx_->n; ++v) {
    if (!dev_->drop_send(round_, offset_, m.kind, v)) api.send(v, m);
  }
}

void LinearNode::reset_slot(Slot k) {
  cur_slot_ = k;
  committed_ = ctx_->commits->has(id_, k);
  committed_value_ = kBotValue;
  have_freshest_ = false;
  freshest_epoch_ = 0;
  freshest_value_ = 0;
  have_commit_proof_ = false;
  star4_forwarded_.clear_all();
  forwarded_commit_proof_ = false;
  if (!ctx_->opts.persistent_accusations) {
    accused_by_me_.clear_all();
    for (auto& row : accuse_seen_) row.clear_all();
    for (auto& s : accuse_shares_) s.clear();
    std::fill(corrupt_proof_have_.begin(), corrupt_proof_have_.end(), 0);
    std::fill(corrupt_proof_sent_.begin(), corrupt_proof_sent_.end(), 0);
  }
}

void LinearNode::reset_epoch(Epoch i) {
  cur_epoch_ = i;
  cur_leader_ = ctx_->leader(cur_slot_, i);
  sent_collect_ = false;
  collect_had_cert_ = false;
  collect_epoch_ = 0;
  prop_values_seen_.clear();
  equivocation_ = false;
  propagated_ = false;
  propagated_value_ = 0;
  epoch_got_cert_ = false;
  query_target_.reset();
  epoch_had_traffic_ = false;
  lead_proposed_ = false;
  lead_value_ = 0;
  lead_votes_.clear();
  lead_vote_from_.clear_all();
  lead_cert_votes_.clear();
  lead_cert_vote_from_.clear_all();
  lead_cert_made_ = false;
  lead_proof_made_ = false;
}

void LinearNode::note_cert(Slot k, Epoch j, Value v,
                           const ThresholdSig& cert) {
  if (k != cur_slot_) return;
  if (!have_freshest_ || j > freshest_epoch_) {
    have_freshest_ = true;
    freshest_epoch_ = j;
    freshest_value_ = v;
    freshest_cert_ = cert;
  }
}

void LinearNode::maybe_commit(Slot k, Epoch j, Value v,
                              const ThresholdSig& proof, Round r,
                              RoundApi<Msg>& api) {
  if (!ctx_->th->verify(proof, commit_digest(k, j, v))) return;
  if (k == cur_slot_) {
    // Hold the proof for responding to queries and (*4) forwarding even
    // if this node committed earlier in the slot.
    if (!have_commit_proof_ || j > commit_proof_epoch_) {
      have_commit_proof_ = true;
      commit_proof_epoch_ = j;
      commit_proof_value_ = v;
      commit_proof_ = proof;
    }
    // (*4): if the epoch leader has a corrupt-proof, everyone relays the
    // commit-proof once so totality holds in the expensive epoch.
    const NodeId lj = ctx_->leader(k, j);
    if (corrupt_proof_have_[lj] && j < star4_forwarded_.size() &&
        !star4_forwarded_.get(j)) {
      star4_forwarded_.set(j);
      Msg fwd;
      fwd.kind = Kind::kCommitProof;
      fwd.slot = k;
      fwd.epoch = j;
      fwd.proof_epoch = j;
      fwd.value = v;
      fwd.proof = proof;
      out_multicast(api, fwd);
    }
    if (ctx_->opts.always_forward_commit_proof && !forwarded_commit_proof_) {
      forwarded_commit_proof_ = true;
      Msg fwd;
      fwd.kind = Kind::kCommitProof;
      fwd.slot = k;
      fwd.epoch = j;
      fwd.proof_epoch = j;
      fwd.value = v;
      fwd.proof = proof;
      out_multicast(api, fwd);
    }
    if (!committed_) {
      committed_ = true;
      committed_value_ = v;
      ctx_->commits->record(id_, k, v, r);
      trace_commit(k, j, v, r);
    }
  } else if (k < cur_slot_ && !ctx_->commits->has(id_, k)) {
    // A proof for a past slot arriving on the slot boundary.
    ctx_->commits->record(id_, k, v, r);
    trace_commit(k, j, v, r);
  }
}

void LinearNode::trace_commit(Slot k, Epoch j, Value v, Round r) {
  trace::Event ev;
  ev.kind = trace::EventKind::kSlotCommit;
  ev.round = r;
  ev.slot = k;
  ev.epoch = j;
  ev.node = id_;
  ev.value = v;
  trace::emit(ctx_->trace, ev);
}

void LinearNode::handle_accuse(const Msg& m, bool forwarded,
                               RoundApi<Msg>& api) {
  const NodeId accuser = m.share.signer;
  const NodeId target = m.accused;
  if (accuser >= ctx_->n || target >= ctx_->n || accuser == target) return;
  if (!ctx_->th->verify_share(m.share, accuse_digest(target))) return;
  if (accuse_seen_[accuser].get(target)) return;  // duplicate
  accuse_seen_[accuser].set(target);
  fresh_accuse_from_[accuser] = 1;
  fresh_pairs_.emplace_back(accuser, target);
  fresh_dirty_ = true;

  // (*2): forward each accusation to the accused once, so selectively
  // delivered accusations still reach their target. The dedup above
  // bounds this to one forward per (accuser, target) pair per node.
  (void)forwarded;
  if (target != id_) {
    Msg fwd = m;
    fwd.kind = Kind::kAccuseForward;
    fwd.slot = cur_slot_;
    out(api, target, fwd);
  }

  // (*3): aggregate n-f accusations into a corrupt-proof.
  if (!corrupt_proof_have_[target]) {
    accuse_shares_[target].push_back(m.share);
    if (accuse_shares_[target].size() >= ctx_->n - ctx_->f) {
      corrupt_proof_sig_[target] = ctx_->th->combine(
          std::span<const SigShare>(accuse_shares_[target]),
          accuse_digest(target));
      corrupt_proof_have_[target] = 1;
      accuse_shares_[target].clear();
      accuse_shares_[target].shrink_to_fit();
      {
        trace::Event ev;
        ev.kind = trace::EventKind::kCertFormed;
        ev.round = round_;
        ev.slot = cur_slot_;
        ev.epoch = cur_epoch_;
        ev.node = id_;
        ev.subject = target;
        ev.detail = "corrupt-proof";
        trace::emit(ctx_->trace, ev);
      }
      if (!corrupt_proof_sent_[target]) {
        corrupt_proof_sent_[target] = 1;
        Msg cp;
        cp.kind = Kind::kCorruptProof;
        cp.slot = cur_slot_;
        cp.accused = target;
        cp.proof = corrupt_proof_sig_[target];
        out_multicast(api, cp);
      }
      // (*4) may now fire for a commit-proof we already hold.
      if (have_commit_proof_ &&
          ctx_->leader(cur_slot_, commit_proof_epoch_) == target &&
          commit_proof_epoch_ < star4_forwarded_.size() &&
          !star4_forwarded_.get(commit_proof_epoch_)) {
        star4_forwarded_.set(commit_proof_epoch_);
        Msg fwd;
        fwd.kind = Kind::kCommitProof;
        fwd.slot = cur_slot_;
        fwd.epoch = commit_proof_epoch_;
        fwd.proof_epoch = commit_proof_epoch_;
        fwd.value = commit_proof_value_;
        fwd.proof = commit_proof_;
        out_multicast(api, fwd);
      }
    }
  }
}

bool LinearNode::validate_proposal(const Msg& m, NodeId leader) const {
  if (m.slot != cur_slot_ || m.epoch != cur_epoch_) return false;
  if (m.sig.signer != leader) return false;
  if (!ctx_->registry->verify(m.sig, prop_digest(m))) return false;
  if (m.has_cert) {
    if (m.cert_epoch >= m.epoch) return false;
    if (!ctx_->th->verify(m.cert,
                          vote_digest(m.slot, m.cert_epoch, m.value))) {
      return false;
    }
  }
  return true;
}

void LinearNode::process_inbox(Round r, std::span<const Delivery<Msg>> inbox,
                               RoundApi<Msg>& api) {
  if (fresh_dirty_) {
    std::fill(fresh_accuse_from_.begin(), fresh_accuse_from_.end(), 0);
    fresh_pairs_.clear();
    fresh_dirty_ = false;
  }
  for (const auto& env : inbox) {
    const Msg& m = env.msg();
    switch (m.kind) {
      case Kind::kAccuse:
        handle_accuse(m, false, api);
        break;
      case Kind::kAccuseForward:
        handle_accuse(m, true, api);
        break;
      case Kind::kCorruptProof: {
        if (m.accused >= ctx_->n) break;
        if (corrupt_proof_have_[m.accused]) break;
        if (!ctx_->th->verify(m.proof, accuse_digest(m.accused))) break;
        corrupt_proof_have_[m.accused] = 1;
        corrupt_proof_sent_[m.accused] = 1;  // aggregate already public
        corrupt_proof_sig_[m.accused] = m.proof;
        if (have_commit_proof_ &&
            ctx_->leader(cur_slot_, commit_proof_epoch_) == m.accused &&
            commit_proof_epoch_ < star4_forwarded_.size() &&
            !star4_forwarded_.get(commit_proof_epoch_)) {
          star4_forwarded_.set(commit_proof_epoch_);
          Msg fwd;
          fwd.kind = Kind::kCommitProof;
          fwd.slot = cur_slot_;
          fwd.epoch = commit_proof_epoch_;
          fwd.proof_epoch = commit_proof_epoch_;
          fwd.value = commit_proof_value_;
          fwd.proof = commit_proof_;
          out_multicast(api, fwd);
        }
        break;
      }
      case Kind::kCommitProof:
        maybe_commit(m.slot, m.proof_epoch, m.value, m.proof, r, api);
        break;
      case Kind::kCollect:
        if (m.has_cert && m.slot == cur_slot_ &&
            ctx_->th->verify(m.cert,
                             vote_digest(m.slot, m.cert_epoch, m.value))) {
          note_cert(m.slot, m.cert_epoch, m.value, m.cert);
        }
        break;
      case Kind::kPropForward: {
        const NodeId leader = cur_leader();
        if (validate_proposal(m, leader)) {
          if (std::find(prop_values_seen_.begin(), prop_values_seen_.end(),
                        m.value) == prop_values_seen_.end()) {
            prop_values_seen_.push_back(m.value);
          }
          if (prop_values_seen_.size() >= 2) equivocation_ = true;
          if (m.has_cert) note_cert(m.slot, m.cert_epoch, m.value, m.cert);
        }
        break;
      }
      case Kind::kCert:
      case Kind::kCertForward:
        if (m.slot == cur_slot_ &&
            ctx_->th->verify(m.cert, vote_digest(m.slot, m.epoch, m.value))) {
          note_cert(m.slot, m.epoch, m.value, m.cert);
        }
        break;
      case Kind::kVote:
        // Leader-side collection; validated in do_certificate's path here.
        if (cur_leader() == id_ && m.slot == cur_slot_ &&
            m.epoch == cur_epoch_ && lead_proposed_ &&
            m.value == lead_value_ && m.share.signer < ctx_->n &&
            !lead_vote_from_.get(m.share.signer) &&
            ctx_->th->verify_share(
                m.share, vote_digest(cur_slot_, cur_epoch_, lead_value_))) {
          lead_vote_from_.set(m.share.signer);
          lead_votes_.push_back(m.share);
        }
        break;
      case Kind::kCertVote:
        if (cur_leader() == id_ && m.slot == cur_slot_ &&
            m.epoch == cur_epoch_ && lead_proposed_ &&
            m.value == lead_value_ && m.share.signer < ctx_->n &&
            !lead_cert_vote_from_.get(m.share.signer) &&
            ctx_->th->verify_share(
                m.share, commit_digest(cur_slot_, cur_epoch_, lead_value_))) {
          lead_cert_vote_from_.set(m.share.signer);
          lead_cert_votes_.push_back(m.share);
        }
        break;
      case Kind::kPropose:
      case Kind::kQuery1:
      case Kind::kQuery2:
        // Handled by the offset-specific steps below.
        break;
      case Kind::kKindCount:
        break;
    }
  }
}

void LinearNode::do_collect(RoundApi<Msg>& api) {
  sent_collect_ = true;
  collect_had_cert_ = have_freshest_;
  collect_epoch_ = freshest_epoch_;
  const NodeId leader = cur_leader();
  if (leader == id_) return;  // the leader knows its own freshest cert
  Msg m;
  m.kind = Kind::kCollect;
  m.slot = cur_slot_;
  m.epoch = cur_epoch_;
  m.has_cert = have_freshest_;
  if (have_freshest_) {
    m.cert_epoch = freshest_epoch_;
    m.value = freshest_value_;
    m.cert = freshest_cert_;
  }
  out(api, leader, m);
}

Msg LinearNode::build_fresh_proposal(Value v) const {
  Msg m;
  m.kind = Kind::kPropose;
  m.slot = cur_slot_;
  m.epoch = cur_epoch_;
  m.value = v;
  m.has_cert = false;
  m.sig = ctx_->registry->sign(id_, prop_digest(m));
  return m;
}

void LinearNode::do_propose(RoundApi<Msg>& api) {
  if (cur_leader() != id_ || lead_proposed_) return;
  lead_proposed_ = true;
  if (dev_ != nullptr && dev_->override_propose(*this, api)) {
    lead_value_ = kBotValue;  // a deviating leader forfeits vote collection
    return;
  }
  Msg m;
  m.kind = Kind::kPropose;
  m.slot = cur_slot_;
  m.epoch = cur_epoch_;
  if (have_freshest_) {
    m.value = freshest_value_;
    m.has_cert = true;
    m.cert_epoch = freshest_epoch_;
    m.cert = freshest_cert_;
  } else {
    m.value = cur_epoch_ == 0 ? ctx_->input_for_slot(cur_slot_) : Value{0};
    m.has_cert = false;
  }
  m.sig = ctx_->registry->sign(id_, prop_digest(m));
  lead_value_ = m.value;
  out_multicast(api, m);
}

void LinearNode::do_propagate1(std::span<const Delivery<Msg>> inbox,
                               RoundApi<Msg>& api) {
  const NodeId leader = cur_leader();
  for (const auto& env : inbox) {
    const Msg& m = env.msg();
    if (m.kind != Kind::kPropose) continue;
    if (!validate_proposal(m, leader)) continue;
    if (std::find(prop_values_seen_.begin(), prop_values_seen_.end(),
                  m.value) == prop_values_seen_.end()) {
      prop_values_seen_.push_back(m.value);
    }
    if (m.has_cert) note_cert(m.slot, m.cert_epoch, m.value, m.cert);
    // Freshness: the certificate must be at least as fresh as what this
    // node sent in Collect (bot if it sent bot).
    const bool fresh_enough =
        !collect_had_cert_ || (m.has_cert && m.cert_epoch >= collect_epoch_);
    if (fresh_enough && !propagated_) {
      propagated_ = true;
      propagated_value_ = m.value;
      propagated_prop_ = m;
      propagated_prop_.kind = Kind::kPropForward;
      for (NodeId nb : ctx_->expander->neighbors(id_)) {
        out(api, nb, propagated_prop_);
      }
    }
  }
  if (prop_values_seen_.size() >= 2) equivocation_ = true;
}

void LinearNode::issue_accuse(NodeId v, RoundApi<Msg>& api) {
  if (accused_by_me_.get(v)) return;
  accused_by_me_.set(v);
  {
    trace::Event ev;
    ev.kind = trace::EventKind::kAccusation;
    ev.round = round_;
    ev.slot = cur_slot_;
    ev.node = id_;
    ev.subject = v;
    trace::emit(ctx_->trace, ev);
  }
  Msg m;
  m.kind = Kind::kAccuse;
  m.slot = cur_slot_;
  m.accused = v;
  m.share = ctx_->th->share(id_, accuse_digest(v));
  // Record our own accusation immediately: helper selection in the same
  // round must already exclude nodes we just accused.
  if (!accuse_seen_[id_].get(v)) {
    accuse_seen_[id_].set(v);
    if (!corrupt_proof_have_[v]) accuse_shares_[v].push_back(m.share);
  }
  out_multicast(api, m);
}

void LinearNode::do_vote(RoundApi<Msg>& api) {
  if (equivocation_) {
    issue_accuse(cur_leader(), api);
    return;
  }
  if (!propagated_) return;
  if (cur_leader() == id_) {
    // The leader votes for its own proposal by injecting its share.
    Msg m;
    m.kind = Kind::kVote;
    m.slot = cur_slot_;
    m.epoch = cur_epoch_;
    m.value = propagated_value_;
    m.share = ctx_->th->share(
        id_, vote_digest(cur_slot_, cur_epoch_, propagated_value_));
    if (!lead_vote_from_.get(id_)) {
      lead_vote_from_.set(id_);
      lead_votes_.push_back(m.share);
    }
    return;
  }
  Msg m;
  m.kind = Kind::kVote;
  m.slot = cur_slot_;
  m.epoch = cur_epoch_;
  m.value = propagated_value_;
  m.share = ctx_->th->share(
      id_, vote_digest(cur_slot_, cur_epoch_, propagated_value_));
  out(api, cur_leader(), m);
}

void LinearNode::do_certificate(RoundApi<Msg>& api) {
  if (cur_leader() != id_ || !lead_proposed_ || lead_cert_made_) return;
  if (lead_votes_.size() < ctx_->n - ctx_->f) return;
  lead_cert_made_ = true;
  Msg m;
  m.kind = Kind::kCert;
  m.slot = cur_slot_;
  m.epoch = cur_epoch_;
  m.value = lead_value_;
  m.cert = ctx_->th->combine(std::span<const SigShare>(lead_votes_),
                             vote_digest(cur_slot_, cur_epoch_, lead_value_));
  note_cert(cur_slot_, cur_epoch_, lead_value_, m.cert);
  {
    trace::Event ev;
    ev.kind = trace::EventKind::kCertFormed;
    ev.round = round_;
    ev.slot = cur_slot_;
    ev.epoch = cur_epoch_;
    ev.node = id_;
    ev.value = lead_value_;
    ev.detail = "cert";
    trace::emit(ctx_->trace, ev);
  }
  out_multicast(api, m);
}

void LinearNode::do_propagate2(std::span<const Delivery<Msg>> inbox,
                               RoundApi<Msg>& api) {
  if (epoch_got_cert_) return;
  for (const auto& env : inbox) {
    const Msg& m = env.msg();
    if (m.kind != Kind::kCert || m.slot != cur_slot_ ||
        m.epoch != cur_epoch_) {
      continue;
    }
    if (!ctx_->th->verify(m.cert, vote_digest(m.slot, m.epoch, m.value))) {
      continue;
    }
    epoch_got_cert_ = true;
    Msg fwd = m;
    fwd.kind = Kind::kCertForward;
    for (NodeId nb : ctx_->expander->neighbors(id_)) out(api, nb, fwd);
    Msg cv;
    cv.kind = Kind::kCertVote;
    cv.slot = cur_slot_;
    cv.epoch = cur_epoch_;
    cv.value = m.value;
    cv.share = ctx_->th->share(
        id_, commit_digest(cur_slot_, cur_epoch_, m.value));
    if (cur_leader() == id_) {
      if (!lead_cert_vote_from_.get(id_)) {
        lead_cert_vote_from_.set(id_);
        lead_cert_votes_.push_back(cv.share);
      }
    } else {
      out(api, cur_leader(), cv);
    }
    break;
  }
}

void LinearNode::do_commit(RoundApi<Msg>& api) {
  if (cur_leader() != id_ || !lead_proposed_ || lead_proof_made_) return;
  if (lead_cert_votes_.size() < ctx_->n - ctx_->f) return;
  lead_proof_made_ = true;
  Msg m;
  m.kind = Kind::kCommitProof;
  m.slot = cur_slot_;
  m.epoch = cur_epoch_;
  m.proof_epoch = cur_epoch_;
  m.value = lead_value_;
  m.proof = ctx_->th->combine(
      std::span<const SigShare>(lead_cert_votes_),
      commit_digest(cur_slot_, cur_epoch_, lead_value_));
  {
    trace::Event ev;
    ev.kind = trace::EventKind::kCertFormed;
    ev.round = round_;
    ev.slot = cur_slot_;
    ev.epoch = cur_epoch_;
    ev.node = id_;
    ev.value = lead_value_;
    ev.detail = "commit-proof";
    trace::emit(ctx_->trace, ev);
  }
  out_multicast(api, m);
}

std::optional<NodeId> LinearNode::pick_helper(NodeId leader) const {
  for (NodeId v = 0; v < ctx_->n; ++v) {
    if (v == id_) continue;
    if (accused_by_me_.get(v)) continue;
    if (accuse_seen_[v].get(leader)) continue;
    return v;
  }
  return std::nullopt;
}

std::optional<NodeId> LinearNode::expected_responder(NodeId querier,
                                                     NodeId leader) const {
  for (NodeId w = 0; w < ctx_->n; ++w) {
    if (w == querier) continue;
    if (accuse_seen_[querier].get(w)) continue;
    if (accuse_seen_[w].get(leader)) continue;
    return w;
  }
  return std::nullopt;
}

void LinearNode::do_query1(RoundApi<Msg>& api) {
  if (committed_) return;
  issue_accuse(cur_leader(), api);
  if (!ctx_->opts.use_query_path) return;
  auto helper = pick_helper(cur_leader());
  if (!helper.has_value()) return;
  query_target_ = helper;
  Msg m;
  m.kind = Kind::kQuery1;
  m.slot = cur_slot_;
  m.epoch = cur_epoch_;
  out(api, *helper, m);
}

void LinearNode::respond_to_querier(NodeId v, RoundApi<Msg>& api) {
  if (!accuse_seen_[v].get(cur_leader())) return;  // v must accuse L_i
  auto exp = expected_responder(v, cur_leader());
  if (!exp.has_value() || *exp != id_) return;
  Msg resp;
  resp.kind = Kind::kCommitProof;
  resp.slot = cur_slot_;
  resp.epoch = commit_proof_epoch_;
  resp.proof_epoch = commit_proof_epoch_;
  resp.value = commit_proof_value_;
  resp.proof = commit_proof_;
  out(api, v, resp);
}

void LinearNode::do_respond1(std::span<const Delivery<Msg>> inbox,
                             RoundApi<Msg>& api) {
  if (!have_commit_proof_ || !ctx_->opts.use_query_path) return;
  if (inbox.empty() && fresh_pairs_.empty()) return;  // nothing to answer
  BitVec& answered = answered_scratch_;  // reused; avoids per-round alloc
  answered.clear_all();
  for (const auto& env : inbox) {
    const Msg& m = env.msg();
    if (m.kind != Kind::kQuery1 || m.slot != cur_slot_ ||
        m.epoch != cur_epoch_) {
      continue;
    }
    if (answered.get(env.from)) continue;
    answered.set(env.from);
    respond_to_querier(env.from, api);
  }
  // Implicit queries: a FRESH accusation of this epoch's leader announces
  // "I am starved" to everyone at once. Answering it directly closes the
  // race in which the starved node's round-Query-1 helper choice (made
  // before the simultaneous accusations landed) targeted another equally
  // starved node. Cost is the same as an explicit query1: at most one
  // response, from the unique expected responder.
  for (const auto& [accuser, target] : fresh_pairs_) {
    if (target != cur_leader() || answered.get(accuser)) continue;
    answered.set(accuser);
    respond_to_querier(accuser, api);
  }
}

void LinearNode::do_query2(RoundApi<Msg>& api) {
  if (committed_ || !ctx_->opts.use_query_path) return;
  if (!query_target_.has_value()) return;
  // Re-select the helper with current knowledge: the simultaneous
  // Query-1 accusations of L_i have arrived by now, so every equally
  // starved honest node is excluded, and the selection agrees with the
  // predicate each responder evaluated last round.
  auto v = pick_helper(cur_leader());
  if (!v.has_value()) return;
  if (*v == *query_target_) {
    // The node we actually queried passes the predicate and stayed
    // silent: provably withholding. Accuse it and query everyone.
    ++expensive_epochs_;
    issue_accuse(*v, api);
    Msg m = build_query2();
    out_multicast(api, m);
  } else {
    // The helper choice shifted under the fresh accusations: the new
    // candidate never received a query, so it gets a (late) query1 now,
    // answered in the Respond-2 round; no accusation is justified yet.
    query_target_ = v;
    Msg m;
    m.kind = Kind::kQuery1;
    m.slot = cur_slot_;
    m.epoch = cur_epoch_;
    out(api, *v, m);
  }
}

Msg LinearNode::build_query2() const {
  Msg m;
  m.kind = Kind::kQuery2;
  m.slot = cur_slot_;
  m.epoch = cur_epoch_;
  return m;
}

void LinearNode::do_respond2(std::span<const Delivery<Msg>> inbox,
                             RoundApi<Msg>& api) {
  if (!have_commit_proof_ || !ctx_->opts.use_query_path) return;
  if (inbox.empty()) return;  // responses are driven by queries alone
  BitVec& answered = answered_scratch_;  // reused; avoids per-round alloc
  answered.clear_all();
  for (const auto& env : inbox) {
    const Msg& m = env.msg();
    if (m.slot != cur_slot_ || m.epoch != cur_epoch_) continue;
    if (m.kind == Kind::kQuery2) {
      const NodeId v = env.from;
      // Respond only when v's query is backed by a fresh accusation this
      // round — this is what bounds Respond-2 to n responses per node.
      if (!fresh_accuse_from_[v] || answered.get(v)) continue;
      answered.set(v);
      Msg resp;
      resp.kind = Kind::kCommitProof;
      resp.slot = cur_slot_;
      resp.epoch = commit_proof_epoch_;
      resp.proof_epoch = commit_proof_epoch_;
      resp.value = commit_proof_value_;
      resp.proof = commit_proof_;
      out(api, v, resp);
    } else if (m.kind == Kind::kQuery1) {
      // A late query1 from the Query-2 round (helper re-selection);
      // answered under the exact Respond-1 predicate.
      if (answered.get(env.from)) continue;
      answered.set(env.from);
      respond_to_querier(env.from, api);
    }
  }
}

void LinearNode::on_round(Round r, std::span<const Delivery<Msg>> inbox,
                          const TrafficView<Msg>& rushed,
                          RoundApi<Msg>& api) {
  (void)rushed;
  round_ = r;
  const Schedule& sched = ctx_->sched;
  // Schedule position. Rounds arrive consecutively, so the common case is
  // an incremental step of the cached (slot, epoch, offset) triple; the
  // full divisions only run on a cache miss (first round, or a test
  // driving rounds out of order).
  Slot k;
  Epoch i;
  if (r == sched_next_r_) {
    k = sched_k_;
    i = sched_i_;
    offset_ = sched_off_;
  } else {
    k = sched.slot_of(r);
    i = sched.epoch_of(r);
    offset_ = sched.offset_of(r);
  }
  sched_next_r_ = r + 1;
  sched_k_ = k;
  sched_i_ = i;
  sched_off_ = offset_ + 1;
  if (sched_off_ == Schedule::kRoundsPerEpoch) {
    sched_off_ = 0;
    if (++sched_i_ == sched.epochs_per_slot()) {
      sched_i_ = 0;
      ++sched_k_;
    }
  }

  if (k != cur_slot_) {
    reset_slot(k);
    reset_epoch(i);
  } else if (i != cur_epoch_) {
    reset_epoch(i);
  }

  if (dev_ != nullptr && dev_->silent(r)) return;

  // "At any point" rules first. An empty inbox with clean fresh-accusation
  // buffers has nothing to do — the common case for gated nodes.
  if (!inbox.empty() || fresh_dirty_) process_inbox(r, inbox, api);

  // Progress steps are gated: skip if committed in this slot or the epoch
  // leader has a corrupt-proof. Respond-1/2 stay live (see header).
  const bool gated = committed_ || corrupt_proof_have_[cur_leader()];

  switch (offset_) {
    case 0:
      if (!gated) do_collect(api);
      break;
    case 1:
      if (!gated) do_propose(api);
      break;
    case 2:
      if (!gated) do_propagate1(inbox, api);
      break;
    case 3:
      if (!gated) do_vote(api);
      break;
    case 4:
      if (!gated) do_certificate(api);
      break;
    case 5:
      if (!gated) do_propagate2(inbox, api);
      break;
    case 6:
      if (!gated) do_commit(api);
      break;
    case 7:
      if (!gated) do_query1(api);
      break;
    case 8:
      do_respond1(inbox, api);
      break;
    case 9:
      if (!gated) do_query2(api);
      break;
    case 10:
      do_respond2(inbox, api);
      break;
    default:
      AMBB_CHECK(false);
  }

  if (dev_ != nullptr) dev_->extra(*this, r, offset_, api);
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

RunResult run_linear(const LinearConfig& cfg) {
  AMBB_CHECK_MSG(cfg.n >= 4, "need at least 4 nodes");
  AMBB_CHECK_MSG(
      static_cast<double>(cfg.f) <= (0.5 - cfg.eps) * cfg.n,
      "Algorithm 4 requires f <= (1/2 - eps) n; got f=" << cfg.f << " n="
                                                        << cfg.n);

  KeyRegistry registry(cfg.n, cfg.seed);
  ThresholdScheme th(registry, cfg.n - cfg.f);
  Graph expander = build_expander(cfg.n, cfg.eps, cfg.seed ^ 0xE0A11DE5ULL);

  CommitLog commits(cfg.n);
  // presize, not reserve: sharded rounds record() from worker threads into
  // disjoint cells, which must never trigger the lazy regrow.
  commits.presize(cfg.slots);
  CostLedger ledger(kind_names());
  ledger.reserve_slots(cfg.slots + 1);

  Context ctx;
  ctx.n = cfg.n;
  ctx.f = cfg.f;
  ctx.wire = WireModel{cfg.n, cfg.kappa_bits, cfg.value_bits};
  ctx.sched = Schedule{cfg.f};
  ctx.registry = &registry;
  ctx.th = &th;
  ctx.expander = &expander;
  ctx.commits = &commits;
  ctx.opts = cfg.opts;
  const std::uint64_t input_seed = cfg.seed ^ 0x17057EEDULL;
  if (cfg.input_with_log) {
    ctx.input_for_slot = [fn = cfg.input_with_log, &commits](Slot s) {
      return fn(s, commits);
    };
  } else if (cfg.input_for_slot) {
    ctx.input_for_slot = cfg.input_for_slot;
  } else {
    ctx.input_for_slot = [input_seed](Slot s) {
      std::uint64_t x = input_seed + s;
      return splitmix64(x);
    };
  }
  ctx.sender_of = cfg.sender_of ? cfg.sender_of : [n = cfg.n](Slot s) {
    return static_cast<NodeId>((s - 1) % n);
  };
  Sim sim(cfg.n, cfg.f, &ledger, CostPolicy{ctx.wire, ctx.sched});
  // Actors emit through the sim's router so sharded rounds can buffer
  // worker-thread events and replay them in deterministic order.
  ctx.trace = sim.actor_sink(cfg.trace);
  for (NodeId v = 0; v < cfg.n; ++v) {
    sim.set_actor(v, std::make_unique<LinearNode>(v, &ctx));
  }
  const std::uint64_t total_rounds =
      static_cast<std::uint64_t>(cfg.slots) * ctx.sched.rounds_per_slot();
  sim.reserve_rounds(total_rounds);
  const NetPolicy net = make_net_policy(cfg.net, cfg.seed);
  auto adversary = make_adversary(cfg.adversary, &ctx,
                                  cfg.seed ^ 0xAD7E25A1ULL, total_rounds, net);
  SimConfig<Msg> sc;
  sc.trace = cfg.trace;
  sc.node_jobs = cfg.node_jobs;
  sc.net = net;
  sc.adversary = adversary.get();
  sim.configure(sc);

  for (std::uint64_t i = 0; i < total_rounds; ++i) {
    if (i % ctx.sched.rounds_per_slot() == 0) {
      const Slot k = ctx.sched.slot_of(i);
      trace::Event ev;
      ev.kind = trace::EventKind::kSlotStart;
      ev.round = i;
      ev.slot = k;
      ev.node = ctx.sender_of(k);
      trace::emit(cfg.trace, ev);
    }
    if (i % Schedule::kRoundsPerEpoch == 0) {
      const Slot k = ctx.sched.slot_of(i);
      const Epoch ep = ctx.sched.epoch_of(i);
      trace::Event ev;
      ev.kind = trace::EventKind::kEpochPhase;
      ev.round = i;
      ev.slot = k;
      ev.epoch = ep;
      ev.node = ctx.leader(k, ep);
      ev.detail = "epoch";
      trace::emit(cfg.trace, ev);
    }
    sim.step();
    if (cfg.on_round_end) cfg.on_round_end(sim.now() - 1, sim);
  }
  if (cfg.inspect) cfg.inspect(sim);

  RunResult res;
  res.n = cfg.n;
  res.f = cfg.f;
  res.slots = cfg.slots;
  res.rounds = sim.now();
  res.honest_bits = ledger.honest_bits_total();
  res.adversary_bits = ledger.adversary_bits_total();
  res.honest_msgs = ledger.honest_msgs_total();
  res.per_slot_bits = ledger.per_slot();
  res.kind_names = ledger.kind_names();
  res.per_kind_bits = ledger.per_kind();
  res.commits = commits;
  res.round_stats = sim.round_stats();
  res.corrupt.resize(cfg.n);
  for (NodeId v = 0; v < cfg.n; ++v) res.corrupt[v] = sim.is_corrupt(v);
  res.senders.resize(cfg.slots + 1, kNoNode);
  res.sender_inputs.resize(cfg.slots + 1, kBotValue);
  for (Slot s = 1; s <= cfg.slots; ++s) {
    res.senders[s] = ctx.sender_of(s);
    res.sender_inputs[s] = ctx.input_for_slot(s);
  }
  return res;
}

}  // namespace ambb::linear
