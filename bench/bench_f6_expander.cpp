// Experiment F6 — Section 3 / Lemma 1's precondition: constant-degree
// (n, 2eps, 1-2eps)-expanders exist and our construction finds them.
// Reports degree, spectral gap estimate, and sampled-expansion quality
// across n and eps, plus construction wall-clock via google-benchmark.
#include "bench_common.hpp"

#include "common/rng.hpp"
#include "graph/expander.hpp"

namespace ambb::bench {
namespace {

void run_table() {
  print_header(
      "F6 / Section 3: (n, 2eps, 1-2eps)-expander construction",
      "constant degree suffices for any fixed eps; degree is independent "
      "of n");

  // Each (eps, n) cell is an independent construction with its own RNGs;
  // run the grid through the engine's generic map (results come back in
  // grid order regardless of AMBB_BENCH_JOBS).
  struct Cell {
    double eps;
    std::uint32_t n;
    std::uint32_t max_degree;
    double lambda;
    bool ok;
  };
  std::vector<Cell> grid;
  for (double eps : {0.05, 0.1, 0.2}) {
    for (std::uint32_t n : {32u, 64u, 128u, 256u}) {
      grid.push_back(Cell{eps, n, 0, 0.0, false});
    }
  }
  const std::vector<Cell> cells = engine::parallel_map(
      grid.size(), bench_jobs(), [&grid](std::size_t i) {
        Cell c = grid[i];
        Graph g = build_expander(c.n, c.eps, 99);
        Rng rng(1234);
        c.lambda = second_eigenvalue_estimate(g, rng);
        Rng check(777);
        c.ok = sampled_expansion_check(g, 2 * c.eps, 1 - 2 * c.eps, 500,
                                       check);
        c.max_degree = g.max_degree();
        return c;
      });

  TextTable t({"n", "eps", "alpha=2eps", "beta=1-2eps", "max degree",
               "lambda2 estimate", "sampled check (500)"});
  for (const Cell& c : cells) {
    // A failed expansion check invalidates every downstream cost claim;
    // count it so the binary exits non-zero.
    if (!c.ok) ++state().violations;
    t.add_row({std::to_string(c.n), TextTable::num(c.eps, 2),
               TextTable::num(2 * c.eps, 2), TextTable::num(1 - 2 * c.eps, 2),
               std::to_string(c.max_degree), TextTable::num(c.lambda, 1),
               c.ok ? "pass" : "FAIL"});
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "Reading: for fixed eps the degree column is constant once n exceeds "
      "the base degree (small n fall back to\nthe complete graph); lambda2 "
      "well below the degree certifies spectral expansion.\n");
}

void BM_BuildExpander(::benchmark::State& state) {
  const std::uint32_t n = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Graph g = build_expander(n, 0.1, seed++);
    ::benchmark::DoNotOptimize(g.edge_count());
  }
}
BENCHMARK(BM_BuildExpander)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(::benchmark::kMillisecond);

void BM_NeighborhoodQuery(::benchmark::State& state) {
  Graph g = build_expander(128, 0.1, 5);
  Rng rng(3);
  std::vector<std::uint32_t> set;
  for (auto v : rng.sample_distinct(128, 26)) {
    set.push_back(static_cast<std::uint32_t>(v));
  }
  for (auto _ : state) {
    ::benchmark::DoNotOptimize(g.neighborhood_size(set));
  }
}
BENCHMARK(BM_NeighborhoodQuery);

}  // namespace
}  // namespace ambb::bench

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ambb::bench::run_table();
  return ambb::bench::finish_bench("f6_expander");
}
