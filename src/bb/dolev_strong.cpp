#include "bb/dolev_strong.hpp"

#include <algorithm>

#include "adversary/scheduled.hpp"
#include "common/byte_buf.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "crypto/intern.hpp"

namespace ambb::ds {

std::vector<std::string> kind_names() { return {"relay"}; }

Digest relay_digest(Slot k, Value v) {
  Encoder& e = Encoder::scratch();
  e.reserve(32);
  e.put_tag("ds-relay");
  e.put_u32(k);
  e.put_u64(v);
  return DigestCache::local().hash("ds-relay", e.view());
}

std::uint64_t size_bits(const Msg& m, const Context& ctx) {
  std::uint64_t bits = ctx.wire.header_bits() + ctx.wire.value_bits;
  if (ctx.use_multisig) {
    bits += ctx.wire.multisig_bits();
  } else {
    bits += static_cast<std::uint64_t>(m.chain.size()) * ctx.wire.sig_bits();
  }
  return bits;
}

DsNode::DsNode(NodeId id, const Context* ctx,
               std::unique_ptr<Deviation> deviation)
    : id_(id), ctx_(ctx), dev_(std::move(deviation)) {}

std::uint32_t DsNode::chain_strength(const Msg& m, NodeId sender) const {
  const Digest d = relay_digest(m.slot, m.value);
  if (ctx_->use_multisig) {
    if (!ctx_->msig->verify(m.agg, d)) return 0;
    if (!m.agg.signers.get(sender)) return 0;
    return static_cast<std::uint32_t>(m.agg.signer_count());
  }
  BitVec seen(ctx_->n);
  bool has_sender = false;
  for (const auto& sig : m.chain) {
    if (sig.signer >= ctx_->n || seen.get(sig.signer)) return 0;
    if (!ctx_->registry->verify(sig, d)) return 0;
    seen.set(sig.signer);
    if (sig.signer == sender) has_sender = true;
  }
  if (!has_sender) return 0;
  return static_cast<std::uint32_t>(seen.count());
}

Msg DsNode::extend(const Msg& m) const {
  Msg out = m;
  const Digest d = relay_digest(m.slot, m.value);
  if (ctx_->use_multisig) {
    if (!out.agg.signers.get(id_)) {
      out.agg = ctx_->msig->extend(out.agg, id_, d);
    }
  } else {
    out.chain.push_back(ctx_->registry->sign(id_, d));
  }
  return out;
}

void DsNode::on_round(Round r, std::span<const Delivery<Msg>> inbox,
                      const TrafficView<Msg>& rushed,
                      RoundApi<Msg>& api) {
  (void)rushed;
  const Schedule& sched = ctx_->sched;
  const Slot k = sched.slot_of(r);
  const std::uint32_t t = sched.offset_of(r);
  if (k != cur_slot_) {
    cur_slot_ = k;
    extracted_.clear();
  }
  if (dev_ != nullptr && dev_->silent(r)) return;

  const NodeId sender = ctx_->sender_of(k);

  if (t == 0) {
    if (id_ == sender) {
      if (dev_ != nullptr && dev_->override_send(k, id_, *ctx_, api)) {
        // handled
      } else {
        Msg m;
        m.kind = Kind::kRelay;
        m.slot = k;
        m.value = ctx_->input_for_slot(k);
        const Digest d = relay_digest(k, m.value);
        m.chain.push_back(ctx_->registry->sign(id_, d));
        m.agg = ctx_->msig->extend(ctx_->msig->empty(), id_, d);
        extracted_.push_back(m.value);
        api.multicast(m);
      }
    }
  } else {
    for (const auto& env : inbox) {
      const Msg& m = env.msg();
      if (m.kind != Kind::kRelay || m.slot != k) continue;
      if (extracted_.size() >= 2) break;
      if (std::find(extracted_.begin(), extracted_.end(), m.value) !=
          extracted_.end()) {
        continue;
      }
      if (chain_strength(m, sender) < t) continue;
      extracted_.push_back(m.value);
      if (t <= ctx_->f) api.multicast(extend(m));
    }
    if (t == ctx_->f + 1 && !ctx_->commits->has(id_, k)) {
      const Value v = extracted_.size() == 1 ? extracted_[0] : kBotValue;
      ctx_->commits->record(id_, k, v, r);
      trace::Event ev;
      ev.kind = trace::EventKind::kSlotCommit;
      ev.round = r;
      ev.slot = k;
      ev.node = id_;
      ev.value = v;
      trace::emit(ctx_->trace, ev);
    }
  }
  if (dev_ != nullptr) dev_->extra(k, t, id_, *ctx_, api);
}

// ---------------------------------------------------------------------------
// Adversaries
// ---------------------------------------------------------------------------

namespace {

class SilentDev final : public Deviation {
 public:
  bool silent(Round) const override { return true; }
};

class EquivocateDev final : public Deviation {
 public:
  bool override_send(Slot k, NodeId self, const Context& ctx,
                     RoundApi<Msg>& api) override {
    for (int which = 0; which < 2; ++which) {
      Msg m;
      m.kind = Kind::kRelay;
      m.slot = k;
      m.value = which == 0 ? 0xAAAA : 0xBBBB;
      const Digest d = relay_digest(k, m.value);
      m.chain.push_back(ctx.registry->sign(self, d));
      m.agg = ctx.msig->extend(ctx.msig->empty(), self, d);
      for (NodeId v = 0; v < ctx.n; ++v) {
        if (static_cast<int>(v % 2) == which) api.send(v, m);
      }
    }
    return true;
  }
};

/// The classic last-minute attack: the corrupt sender broadcasts value A
/// normally, while the coalition secretly assembles an f-signature chain
/// on value B and injects it at round f-1 to every honest node at once.
/// All of them extract at round f and relay the Theta(n)-signature chain
/// to everyone — the Theta(kappa n^3) worst case of Table 1. Everyone
/// ends at two values and commits bot — consistently, which is exactly
/// what the f+1 rounds guarantee.
class StaggerDev final : public Deviation {
 public:
  bool override_send(Slot k, NodeId self, const Context& ctx,
                     RoundApi<Msg>& api) override {
    Msg m;
    m.kind = Kind::kRelay;
    m.slot = k;
    m.value = ctx.input_for_slot(k);
    const Digest d = relay_digest(k, m.value);
    m.chain.push_back(ctx.registry->sign(self, d));
    m.agg = ctx.msig->extend(ctx.msig->empty(), self, d);
    api.multicast(m);
    return true;
  }

  void extra(Slot k, std::uint32_t offset, NodeId self, const Context& ctx,
             RoundApi<Msg>& api) override {
    if (ctx.f < 2 || self != 0 || offset != ctx.f - 1) return;
    const NodeId sender = ctx.sender_of(k);
    if (sender >= ctx.f) return;  // only attack corrupt-sender slots
    Msg m;
    m.kind = Kind::kRelay;
    m.slot = k;
    m.value = 0xD15C0;
    const Digest d = relay_digest(k, m.value);
    m.agg = ctx.msig->empty();
    for (NodeId c = 0; c < ctx.f; ++c) {
      m.chain.push_back(ctx.registry->sign(c, d));
      m.agg = ctx.msig->extend(m.agg, c, d);
    }
    for (NodeId v = ctx.f; v < ctx.n; ++v) api.send(v, m);
  }
};

class DsAdversary final : public Adversary<Msg> {
 public:
  DsAdversary(const Context* ctx, std::string role)
      : ctx_(ctx), role_(std::move(role)) {}

  std::vector<NodeId> initial_corruptions() override {
    std::vector<NodeId> out;
    for (NodeId v = 0; v < ctx_->f; ++v) out.push_back(v);
    return out;
  }

  std::unique_ptr<Actor<Msg>> actor_for(NodeId node) override {
    std::unique_ptr<Deviation> dev;
    if (role_ == "silent") dev = std::make_unique<SilentDev>();
    else if (role_ == "equivocate") dev = std::make_unique<EquivocateDev>();
    else if (role_ == "stagger") dev = std::make_unique<StaggerDev>();
    else AMBB_CHECK_MSG(false, "unknown ds role " << role_);
    return std::make_unique<DsNode>(node, ctx_, std::move(dev));
  }

 private:
  const Context* ctx_;
  std::string role_;
};

}  // namespace

RunResult run_dolev_strong(const DsConfig& cfg) {
  AMBB_CHECK_MSG(cfg.n >= 3 && cfg.f < cfg.n, "Dolev-Strong needs f < n");

  KeyRegistry registry(cfg.n, cfg.seed);
  MultiSigScheme msig(registry);
  CommitLog commits(cfg.n);
  commits.presize(cfg.slots);  // sharded-round safety: no lazy regrow
  CostLedger ledger(kind_names());

  Context ctx;
  ctx.n = cfg.n;
  ctx.f = cfg.f;
  ctx.use_multisig = cfg.use_multisig;
  ctx.wire = WireModel{cfg.n, cfg.kappa_bits, cfg.value_bits};
  ctx.sched = Schedule{cfg.f};
  ctx.registry = &registry;
  ctx.msig = &msig;
  ctx.commits = &commits;
  const std::uint64_t input_seed = cfg.seed ^ 0x5EEDF00DULL;
  ctx.input_for_slot = cfg.input_for_slot
                           ? cfg.input_for_slot
                           : [input_seed](Slot s) {
                               std::uint64_t x = input_seed + s;
                               return splitmix64(x);
                             };
  ctx.sender_of = cfg.sender_of ? cfg.sender_of : [n = cfg.n](Slot s) {
    return static_cast<NodeId>((s - 1) % n);
  };
  Sim sim(cfg.n, cfg.f, &ledger,
          CostPolicy{ctx.wire, ctx.sched, ctx.use_multisig});
  // Actors emit through the sim's router so sharded rounds can buffer
  // worker-thread events and replay them in deterministic order.
  ctx.trace = sim.actor_sink(cfg.trace);
  for (NodeId v = 0; v < cfg.n; ++v) {
    sim.set_actor(v, std::make_unique<DsNode>(v, &ctx));
  }
  const std::uint64_t total_rounds =
      static_cast<std::uint64_t>(cfg.slots) * ctx.sched.rounds_per_slot();
  const NetPolicy net = make_net_policy(cfg.net, cfg.seed);
  std::unique_ptr<Adversary<Msg>> adversary;
  if (adversary::is_schedule_spec(cfg.adversary)) {
    adversary::ScheduleEnv<Msg> env;
    env.n = cfg.n;
    env.f = cfg.f;
    env.seed = cfg.seed ^ 0xAD7E25A1ULL;
    env.horizon = total_rounds;
    env.trace = cfg.trace;
    env.net = net;
    env.honest_factory = [ctxp = &ctx](NodeId v) {
      return std::make_unique<DsNode>(v, ctxp);
    };
    adversary = adversary::make_scheduled_adversary<Msg>(cfg.adversary, env);
  } else if (cfg.adversary != "none") {
    adversary = std::make_unique<DsAdversary>(&ctx, cfg.adversary);
  }
  SimConfig<Msg> sc;
  sc.trace = cfg.trace;
  sc.node_jobs = cfg.node_jobs;
  sc.net = net;
  sc.adversary = adversary.get();
  sim.configure(sc);

  for (std::uint64_t i = 0; i < total_rounds; ++i) {
    if (ctx.sched.offset_of(i) == 0) {
      const Slot k = ctx.sched.slot_of(i);
      trace::Event ev;
      ev.kind = trace::EventKind::kSlotStart;
      ev.round = i;
      ev.slot = k;
      ev.node = ctx.sender_of(k);
      trace::emit(cfg.trace, ev);
    }
    sim.step();
  }

  RunResult res;
  res.n = cfg.n;
  res.f = cfg.f;
  res.slots = cfg.slots;
  res.rounds = sim.now();
  res.honest_bits = ledger.honest_bits_total();
  res.adversary_bits = ledger.adversary_bits_total();
  res.honest_msgs = ledger.honest_msgs_total();
  res.per_slot_bits = ledger.per_slot();
  res.kind_names = ledger.kind_names();
  res.per_kind_bits = ledger.per_kind();
  res.commits = commits;
  res.round_stats = sim.round_stats();
  res.corrupt.resize(cfg.n);
  for (NodeId v = 0; v < cfg.n; ++v) res.corrupt[v] = sim.is_corrupt(v);
  res.senders.resize(cfg.slots + 1, kNoNode);
  res.sender_inputs.resize(cfg.slots + 1, kBotValue);
  for (Slot s = 1; s <= cfg.slots; ++s) {
    res.senders[s] = ctx.sender_of(s);
    res.sender_inputs[s] = ctx.input_for_slot(s);
  }
  return res;
}

}  // namespace ambb::ds
