#include "bb/trustcast.hpp"

#include <algorithm>

#include "common/byte_buf.hpp"
#include "common/check.hpp"
#include "crypto/intern.hpp"

namespace ambb::quad {

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kProp: return "prop";
    case Kind::kAccuse: return "accuse";
    case Kind::kCorrupt: return "corrupt";
    case Kind::kKindCount: break;
  }
  return "?";
}

std::vector<std::string> kind_names() {
  std::vector<std::string> out;
  for (MsgKind k = 0; k < static_cast<MsgKind>(Kind::kKindCount); ++k) {
    out.push_back(kind_name(static_cast<Kind>(k)));
  }
  return out;
}

std::uint64_t size_bits(const Msg& m, const WireModel& wire) {
  std::uint64_t bits = wire.header_bits();
  switch (m.kind) {
    case Kind::kProp:
      bits += wire.value_bits + wire.sig_bits();
      break;
    case Kind::kAccuse:
    case Kind::kCorrupt:
      bits += wire.id_bits() + wire.sig_bits();
      break;
    case Kind::kKindCount:
      AMBB_CHECK(false);
  }
  return bits;
}

std::uint64_t CostPolicy::size_bits(const Msg& m) const {
  return quad::size_bits(m, wire);
}

// Hot-path digests: thread-local scratch encoder + interning cache (the
// tag keys the cache only; digest bytes are unchanged).

Digest prop_digest(Slot k, Value v) {
  Encoder& e = Encoder::scratch();
  e.reserve(32);
  e.put_tag("tc-prop");
  e.put_u32(k);
  e.put_u64(v);
  return DigestCache::local().hash("tc-prop", e.view());
}

Digest accuse_digest(NodeId accused) {
  Encoder& e = Encoder::scratch();
  e.reserve(16);
  e.put_tag("tc-accuse");
  e.put_u32(accused);
  return DigestCache::local().hash("tc-accuse", e.view());
}

Digest corrupt_digest(NodeId target) {
  Encoder& e = Encoder::scratch();
  e.reserve(16);
  e.put_tag("tc-corrupt");
  e.put_u32(target);
  return DigestCache::local().hash("tc-corrupt", e.view());
}

TrustCastEngine::TrustCastEngine(NodeId id, const Context* ctx)
    : id_(id),
      ctx_(ctx),
      graph_(ctx->n),
      accuse_sent_seen_(ctx->n, BitVec(ctx->n)) {}

void TrustCastEngine::begin_slot(Slot k) {
  slot_ = k;
  sender_ = ctx_->sender_of(k);
  prop_values_.clear();
  props_forwarded_ = 0;
}

std::optional<Value> TrustCastEngine::received_value() const {
  if (prop_values_.size() == 1) return prop_values_[0];
  return std::nullopt;
}

void TrustCastEngine::remove_edge_and_prune(NodeId a, NodeId b) {
  graph_.remove_edge(a, b);
  graph_.prune_unconnected(id_);
  trace::Event ev;
  ev.kind = trace::EventKind::kTrustEdgeRemoved;
  ev.round = round_;
  ev.slot = slot_;
  ev.node = id_;
  ev.subject = a;
  ev.peer = b;
  ev.detail = "accusation";
  trace::emit(ctx_->trace, ev);
}

void TrustCastEngine::issue_accuse(NodeId v, RoundApi<Msg>& api) {
  if (accuse_sent_seen_[id_].get(v)) return;
  accuse_sent_seen_[id_].set(v);
  {
    trace::Event ev;
    ev.kind = trace::EventKind::kAccusation;
    ev.round = round_;
    ev.slot = slot_;
    ev.node = id_;
    ev.subject = v;
    trace::emit(ctx_->trace, ev);
  }
  remove_edge_and_prune(id_, v);
  Msg m;
  m.kind = Kind::kAccuse;
  m.slot = slot_;
  m.accused = v;
  m.sig = ctx_->registry->sign(id_, accuse_digest(v));
  api.multicast(m);
}

void TrustCastEngine::send_proposal(RoundApi<Msg>& api) {
  AMBB_CHECK(id_ == sender_);
  Msg m;
  m.kind = Kind::kProp;
  m.slot = slot_;
  m.value = ctx_->input_for_slot(slot_);
  m.sig = ctx_->registry->sign(id_, prop_digest(slot_, m.value));
  prop_values_.push_back(m.value);
  ++props_forwarded_;
  api.multicast(m);
}

void TrustCastEngine::handle(const Msg& m, RoundApi<Msg>& api,
                             bool allow_send) {
  switch (m.kind) {
    case Kind::kProp: {
      if (m.slot != slot_) return;
      if (m.sig.signer != sender_) return;
      if (!ctx_->registry->verify(m.sig, prop_digest(m.slot, m.value)))
        return;
      if (std::find(prop_values_.begin(), prop_values_.end(), m.value) !=
          prop_values_.end()) {
        return;  // already known
      }
      prop_values_.push_back(m.value);
      // Forward each of the (at most two) distinct sender messages once.
      if (props_forwarded_ < 2 && allow_send) {
        ++props_forwarded_;
        api.multicast(m);
      }
      if (prop_values_.size() >= 2 && graph_.has_vertex(sender_) &&
          sender_ != id_) {
        // Equivocation: remove the sender outright.
        graph_.remove_vertex(sender_);
        graph_.prune_unconnected(id_);
        trace::Event ev;
        ev.kind = trace::EventKind::kTrustEdgeRemoved;
        ev.round = round_;
        ev.slot = slot_;
        ev.node = id_;
        ev.subject = sender_;
        ev.detail = "equivocation";
        trace::emit(ctx_->trace, ev);
      }
      break;
    }
    case Kind::kAccuse: {
      const NodeId accuser = m.sig.signer;
      const NodeId accused = m.accused;
      if (accuser >= ctx_->n || accused >= ctx_->n || accuser == accused)
        return;
      if (accuse_sent_seen_[accuser].get(accused)) return;  // duplicate
      if (!ctx_->registry->verify(m.sig, accuse_digest(accused))) return;
      accuse_sent_seen_[accuser].set(accused);
      remove_edge_and_prune(accuser, accused);
      // Forward once per (accuser, accused) pair, ever.
      if (allow_send) {
        Msg fwd = m;
        fwd.slot = slot_;
        api.multicast(fwd);
      }
      break;
    }
    case Kind::kCorrupt:
      break;  // Dolev-Strong phase messages handled by the caller
    case Kind::kKindCount:
      AMBB_CHECK(false);
  }
}

void TrustCastEngine::tc_round_action(std::uint32_t t, RoundApi<Msg>& api) {
  AMBB_CHECK(t >= 1);
  if (!prop_values_.empty()) return;  // received something from the sender
  if (!graph_.has_vertex(sender_)) return;
  const auto dist = graph_.distances_from(sender_);
  for (NodeId v = 0; v < ctx_->n; ++v) {
    if (v == id_ || !graph_.has_vertex(v)) continue;
    if (dist[v] < t) issue_accuse(v, api);
  }
  graph_.prune_unconnected(id_);
}

}  // namespace ambb::quad
