#include "crypto/serialize.hpp"

#include "common/check.hpp"

namespace ambb {

void encode_digest(const Digest& d, Encoder& e) {
  e.put_bytes(std::span<const std::uint8_t>(d.data(), d.size()));
}

Digest decode_digest(Decoder& d) {
  auto bytes = d.get_bytes(32);
  Digest out;
  std::copy(bytes.begin(), bytes.end(), out.begin());
  return out;
}

void encode_signature(const Signature& s, Encoder& e) {
  e.put_u32(s.signer);
  encode_digest(s.mac, e);
}

Signature decode_signature(Decoder& d) {
  Signature s;
  s.signer = d.get_u32();
  s.mac = decode_digest(d);
  return s;
}

void encode_share(const SigShare& s, Encoder& e) {
  e.put_u32(s.signer);
  encode_digest(s.mac, e);
}

SigShare decode_share(Decoder& d) {
  SigShare s;
  s.signer = d.get_u32();
  s.mac = decode_digest(d);
  return s;
}

void encode_thsig(const ThresholdSig& s, Encoder& e) {
  encode_digest(s.mac, e);
}

ThresholdSig decode_thsig(Decoder& d) { return ThresholdSig{decode_digest(d)}; }

void encode_bitvec(const BitVec& b, Encoder& e) {
  e.put_u32(static_cast<std::uint32_t>(b.size()));
  for (auto w : b.words()) e.put_u64(w);
}

BitVec decode_bitvec(Decoder& d) {
  const std::uint32_t n = d.get_u32();
  AMBB_CHECK_MSG(n <= 1u << 20, "implausible bitvec size");
  BitVec out(n);
  const std::size_t words = (n + 63) / 64;
  for (std::size_t i = 0; i < words; ++i) {
    const std::uint64_t w = d.get_u64();
    for (int b = 0; b < 64; ++b) {
      const std::size_t idx = i * 64 + static_cast<std::size_t>(b);
      if (idx < n && ((w >> b) & 1)) out.set(idx);
    }
  }
  return out;
}

void encode_multisig(const MultiSig& m, Encoder& e) {
  encode_bitvec(m.signers, e);
  encode_digest(m.agg, e);
}

MultiSig decode_multisig(Decoder& d) {
  MultiSig m;
  m.signers = decode_bitvec(d);
  m.agg = decode_digest(d);
  return m;
}

}  // namespace ambb
