// Long-message extension protocol (DESIGN.md §13): erasure-coded chunk
// dispersal wrapped around any registered base BB family, after
// Nayak-Ren-Shi-Vaidya-Xiang (arXiv 2002.11321).
//
// An L-byte payload is RS-coded (src/crypto/rs_code.*) into n chunks,
// any k = n-2f of which reconstruct, and committed by a Merkle root
// (src/crypto/merkle.*). The run has two lock-step phases:
//
//   dispersal phase (2 rounds per slot, this file's Simulation):
//     round 0  the slot sender unicasts <chunk_j, path_j, root> to each j
//     round 1  each node that verified its OWN column echoes it to all
//
//   base-BB phase (any registry family, adversary-free, kappa-bit values):
//     per ext slot, 1+n base slots: the digest slot broadcasts fp(root)
//     from the slot sender, then one receipt slot per node j broadcasts
//     j's vote — fp(root) if j echoed its column under that root in the
//     dispersal phase, bot otherwise.
//
// Decision (local, no further communication): with d = own digest-slot
// commit and V = {j : own receipt-slot-j commit == d != bot}, commit the
// reconstruction of the stored columns bound to d iff |V| >= n-f and the
// re-encoded Merkle root matches; else commit bot.
//
// Consistency holds for any f <= (n-1)/2 under the strongly adaptive
// fault schedules of src/adversary/: base-BB consistency makes V common
// to all honest nodes, every final-honest member of V echoed its column
// as an un-erasable multicast (erasing it requires corrupting the
// echoer, removing it from the consistency quantifier), so every honest
// node holds >= |V|-f >= n-2f = k columns bound to d, and Merkle binding
// plus the re-encode check make the reconstructed value unique given d.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "common/wire.hpp"
#include "crypto/merkle.hpp"
#include "runner/result.hpp"
#include "sim/net.hpp"

namespace ambb::ext {

enum class Kind : MsgKind { kDisperse = 0, kEcho, kKindCount };

std::vector<std::string> kind_names();

/// First 8 bytes of a digest as a Value: the uint64 in-memory carrier for
/// a kappa-bit quantity (see common/types.hpp on wire vs carrier width).
Value digest_fp64(const Digest& d);

/// One dispersal-phase message: a column with its authentication path.
struct Msg {
  Kind kind = Kind::kDisperse;
  Slot slot = 0;
  std::uint32_t col = 0;  ///< column index, equals the owning node's id
  Digest root{};          ///< claimed Merkle root
  std::vector<std::uint8_t> chunk;
  merkle::Path path;
};

struct Schedule {
  std::uint64_t rounds_per_slot() const { return 2; }
  Slot slot_of(Round r) const {
    return static_cast<Slot>(r / rounds_per_slot()) + 1;
  }
  std::uint32_t offset_of(Round r) const {
    return static_cast<std::uint32_t>(r % rounds_per_slot());
  }
};

/// Exact wire size of a dispersal message: header, column id, the chunk
/// bytes, one kappa-bit digest per path level, and the kappa-bit root.
struct CostPolicy {
  WireModel wire;

  std::uint64_t size_bits(const Msg& m) const {
    return wire.header_bits() + wire.id_bits() +
           8ull * static_cast<std::uint64_t>(m.chunk.size()) +
           static_cast<std::uint64_t>(m.path.size()) * wire.kappa_bits +
           wire.kappa_bits;
  }
  MsgKind kind(const Msg& m) const { return static_cast<MsgKind>(m.kind); }
  Slot slot(const Msg& m, Round) const { return m.slot; }
};

using Sim = Simulation<Msg, CostPolicy>;

/// Precomputed coding of one slot's payload (driver-owned, read-only).
struct SlotEncoding {
  std::vector<std::uint8_t> payload;
  std::vector<std::vector<std::uint8_t>> chunks;  ///< n columns
  Digest root{};
  std::vector<merkle::Path> paths;  ///< [col]
};

/// One verified column in a node's store.
struct StoredChunk {
  std::uint32_t col = 0;
  Digest root{};
  std::vector<std::uint8_t> chunk;
  merkle::Path path;
};

/// Per-node dispersal outcome. Lives in the driver, not the actor, so it
/// survives the adversary swapping a corrupted node's actor instance.
struct NodeState {
  /// [slot]: fp64 of the root this node echoed its own column under in
  /// that slot's echo round; kBotValue if it never echoed. This is the
  /// node's receipt-vote input to the base phase.
  std::vector<Value> echoed_fp;
  /// [slot]: accepted columns (identity-bound: own column via disperse,
  /// column j only from node j's echo), deduped by (col, root).
  std::vector<std::vector<StoredChunk>> store;
};

struct Context {
  std::uint32_t n = 0;
  std::uint32_t f = 0;
  std::uint32_t k = 0;  ///< reconstruction threshold n - 2f
  Slot slots = 0;
  std::size_t payload_len = 0;
  std::size_t chunk_len = 0;
  WireModel wire;
  Schedule sched;
  std::function<NodeId(Slot)> sender_of;
  const std::vector<SlotEncoding>* enc = nullptr;  ///< [slot], [0] unused
  std::vector<NodeState>* states = nullptr;        ///< [node]
  trace::TraceSink* trace = nullptr;
};

class ExtNode final : public Actor<Msg> {
 public:
  ExtNode(NodeId id, const Context* ctx) : id_(id), ctx_(ctx) {}

  void on_round(Round r, std::span<const Delivery<Msg>> inbox,
                const TrafficView<Msg>& rushed,
                RoundApi<Msg>& api) override;

 private:
  void absorb(std::span<const Delivery<Msg>> inbox);

  NodeId id_;
  const Context* ctx_;
};

struct ExtConfig {
  std::uint32_t n = 16;
  std::uint32_t f = 4;
  Slot slots = 8;
  std::uint64_t seed = 1;
  /// Payload bytes per slot (the paper's l); 0 = one kappa-bit value.
  std::uint64_t payload_bytes = 0;
  std::uint32_t kappa_bits = kDefaultKappaBits;
  double eps = 0.1;  ///< forwarded to linear-family bases
  /// Registry name of the base BB family running the digest+receipt
  /// phase: linear | quadratic | dolev-strong | dolev-strong-msig.
  std::string base = "linear";
  /// Dispersal-phase adversary: "none" or any schedule spec
  /// ("sched:..." / "fuzz[:k]"). The base phase always runs
  /// adversary-free; the final corrupt set is the dispersal phase's.
  std::string adversary = "none";
  /// Honest-phase shard threads per round (0 = auto, 1 = serial;
  /// byte-identical results for every value — DESIGN.md §15).
  std::uint32_t node_jobs = 1;
  /// Network delay policy (DESIGN.md §16): "lockstep" (default) |
  /// "bounded:<delta>" | "async[:<cap>]". Applies to the dispersal sim
  /// AND is forwarded to the nested base-family run.
  std::string net = "lockstep";
  trace::TraceSink* trace = nullptr;
};

RunResult run_extension(const ExtConfig& cfg);

}  // namespace ambb::ext
