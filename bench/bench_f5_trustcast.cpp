// Experiment F5 — Sections 5.1/5.4: TrustCast + Algorithm 5.2 cost
// structure. Trust-graph maintenance (accuse) is bounded by one multicast
// per (accuser, accused) pair over the whole execution (O(kappa n^4)
// total); the Dolev-Strong phase fires in at most f slots; per-slot
// steady state is O(kappa n^2) from the at-most-two prop forwards.
#include "bench_common.hpp"

namespace ambb::bench {
namespace {

Job quad_job(std::uint32_t n, std::uint32_t f, Slot slots,
             const char* adv) {
  CommonParams p;
  p.n = n;
  p.f = f;
  p.slots = slots;
  p.seed = 13;
  p.adversary = adv;
  return registry_job("quadratic", p,
                      std::string("quadratic/") + adv + "/L" +
                          std::to_string(slots));
}

std::uint64_t kind_bits(const RunResult& r, const char* kind) {
  for (std::size_t i = 0; i < r.kind_names.size(); ++i) {
    if (r.kind_names[i] == kind) return r.per_kind_bits[i];
  }
  return 0;
}

void run_tables() {
  const std::uint32_t n = 16;
  const std::uint32_t f = 8;
  print_header(
      "F5 / Sections 5.1, 5.4: amortization structure of Algorithm 5.2 "
      "(n=16, f=8)",
      "accuse/corrupt traffic is one-time (trust graph and DS votes are "
      "shared across slots); prop traffic is the O(kn^2)/slot term");

  const std::vector<const char*> advs = {"none", "silent", "equivocate",
                                         "conspiracy", "floodaccuse"};
  std::vector<Job> jobs;
  for (const char* adv : advs) {
    for (Slot slots : {Slot{16}, Slot{64}}) {
      jobs.push_back(quad_job(n, f, slots, adv));
    }
  }
  const std::vector<RunResult> results = run_jobs(jobs);

  TextTable t({"adversary", "L", "amortized", "tail", "prop bits",
               "accuse bits", "corrupt bits"});
  std::size_t i = 0;
  for (const char* adv : advs) {
    for (Slot slots : {Slot{16}, Slot{64}}) {
      const RunResult& r = results[i++];
      t.add_row({adv, std::to_string(slots),
                 TextTable::bits_human(r.amortized()),
                 TextTable::bits_human(r.amortized_tail(slots / 2)),
                 TextTable::bits_human(
                     static_cast<double>(kind_bits(r, "prop"))),
                 TextTable::bits_human(
                     static_cast<double>(kind_bits(r, "accuse"))),
                 TextTable::bits_human(
                     static_cast<double>(kind_bits(r, "corrupt")))});
    }
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "Reading: for each adversary, 'accuse' and 'corrupt' totals are the "
      "SAME at L=16 and L=64 (one-time),\nwhile 'prop' grows linearly with "
      "L — so amortized cost falls toward the per-slot prop term.\n");
}

void BM_QuadRun(::benchmark::State& state) {
  CommonParams p;
  p.n = 16;
  p.f = 8;
  p.slots = static_cast<ambb::Slot>(state.range(0));
  p.seed = 13;
  p.adversary = "silent";
  for (auto _ : state) {
    auto r = registry_run("quadratic", p);
    ::benchmark::DoNotOptimize(r.honest_bits);
    state.counters["amortized_bits"] = r.amortized();
  }
}
BENCHMARK(BM_QuadRun)->Arg(16)->Arg(64)->Unit(::benchmark::kMillisecond);

}  // namespace
}  // namespace ambb::bench

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ambb::bench::run_tables();
  return ambb::bench::finish_bench("f5_trustcast");
}
