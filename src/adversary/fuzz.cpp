#include "adversary/fuzz.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace ambb::adversary {

FaultSchedule generate_schedule(std::uint32_t n, std::uint32_t f,
                                Round horizon, std::uint64_t seed,
                                std::uint32_t timing_bound) {
  AMBB_CHECK(n >= 1 && f < n);
  FaultSchedule s;
  if (horizon == 0) return s;
  if (f == 0 && timing_bound == 0) return s;

  Rng rng(seed ^ 0xF0A57C4EDC11ULL);

  // How many nodes to corrupt: at least one (an empty adversary tells us
  // nothing), at most the full budget f.
  const std::uint32_t count =
      f == 0 ? 0 : 1 + static_cast<std::uint32_t>(rng.uniform(f));
  std::vector<std::uint64_t> picks = rng.sample_distinct(n, count);

  for (std::uint64_t pick : picks) {
    const NodeId v = static_cast<NodeId>(pick);
    // 60%: corrupt from the start; 40%: strongly adaptive mid-run
    // corruption at a random round.
    Round from = 0;
    if (rng.chance(0.4)) from = 1 + rng.uniform(horizon);
    s.corruptions.push_back(CorruptEvent{from, v});

    // A node corrupted at round r > 0 exercises after-the-fact removal:
    // usually erase a chunk of the traffic it sent in round r-1 (the
    // round the adversary observed before striking).
    if (from > 0 && rng.chance(0.75)) {
      EraseEvent e;
      e.round = from - 1;
      e.sender = v;
      e.density_permille = static_cast<std::uint32_t>(
          rng.uniform_range(250, kDensityAll));
      if (rng.chance(0.5)) {  // recipient stride: every 2nd or 3rd node
        e.to_mod = static_cast<std::uint32_t>(rng.uniform_range(2, 3));
        e.to_rem = static_cast<std::uint32_t>(rng.uniform(e.to_mod));
      }
      e.salt = rng.next_u64();
      s.erasures.push_back(e);
    }

    // 0..2 actor faults over windows inside [from, horizon].
    const std::uint32_t nfaults = static_cast<std::uint32_t>(rng.uniform(3));
    for (std::uint32_t j = 0; j < nfaults; ++j) {
      ActorFault a;
      a.node = v;
      a.from = from + rng.uniform(std::max<Round>(1, horizon - from));
      // Windows are long-tailed: half end with the run.
      a.to = rng.chance(0.5)
                 ? kRoundMax
                 : a.from + rng.uniform_range(1, horizon);
      switch (rng.uniform(4)) {
        case 0:
          a.kind = FaultKind::kSilence;
          break;
        case 1: {
          a.kind = FaultKind::kSelective;
          // Keep a random subset of roughly half the nodes; may be empty
          // (= silence) or everyone (= no-op) at the extremes.
          for (NodeId u = 0; u < n; ++u) {
            if (rng.chance(0.5)) a.keep.push_back(u);
          }
          break;
        }
        case 2:
          a.kind = FaultKind::kShuffle;
          break;
        default:
          a.kind = FaultKind::kStagger;
          a.delay = static_cast<std::uint32_t>(rng.uniform_range(1, 3));
          break;
      }
      s.actor_faults.push_back(a);
    }

    // Long-corrupt nodes may also erase later rounds they sent in (the
    // sender is corrupt then, so still after-the-fact-legal).
    if (rng.chance(0.3)) {
      EraseEvent e;
      e.round = from + rng.uniform(std::max<Round>(1, horizon - from));
      e.sender = v;
      e.density_permille =
          static_cast<std::uint32_t>(rng.uniform_range(100, kDensityAll));
      e.salt = rng.next_u64();
      s.erasures.push_back(e);
    }
  }

  // Timing faults (bounded/async runs only): drawn AFTER every content
  // fault so the timing_bound == 0 path consumes exactly the RNG stream
  // the pre-scheduler generator did. Senders are arbitrary — delaying
  // honest traffic is precisely the power partial synchrony grants.
  if (timing_bound > 0) {
    const std::uint32_t tcount =
        1 + static_cast<std::uint32_t>(rng.uniform(3));
    for (std::uint32_t j = 0; j < tcount; ++j) {
      NetFault t;
      t.sender = static_cast<NodeId>(rng.uniform(n));
      t.from = rng.uniform(horizon);
      t.to = rng.chance(0.5) ? kRoundMax
                             : t.from + rng.uniform_range(1, horizon);
      if (rng.chance(0.5)) {
        t.kind = NetFaultKind::kDelay;
        t.extra = 1 + static_cast<std::uint32_t>(rng.uniform(timing_bound));
      } else {
        t.kind = NetFaultKind::kReorder;
        t.salt = rng.next_u64();
      }
      s.net_faults.push_back(t);
    }
  }

  validate(s, n, f);
  return s;
}

}  // namespace ambb::adversary
