#include "crypto/threshold.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace ambb {
namespace {

Digest d(const std::string& s) { return Sha256::hash(s); }

class ThresholdTest : public ::testing::Test {
 protected:
  KeyRegistry reg{7, 11};
  ThresholdScheme th{reg, 4};  // (4, 7) threshold
};

TEST_F(ThresholdTest, ShareVerifies) {
  SigShare s = th.share(3, d("m"));
  EXPECT_TRUE(th.verify_share(s, d("m")));
  EXPECT_FALSE(th.verify_share(s, d("other")));
}

TEST_F(ThresholdTest, ShareSpoofFails) {
  SigShare s = th.share(3, d("m"));
  s.signer = 4;
  EXPECT_FALSE(th.verify_share(s, d("m")));
}

TEST_F(ThresholdTest, CombineWithQuorumVerifies) {
  std::vector<SigShare> shares;
  for (NodeId i = 0; i < 4; ++i) shares.push_back(th.share(i, d("m")));
  ThresholdSig sig = th.combine(shares, d("m"));
  EXPECT_TRUE(th.verify(sig, d("m")));
  EXPECT_FALSE(th.verify(sig, d("other")));
}

TEST_F(ThresholdTest, CombineBelowThresholdThrows) {
  std::vector<SigShare> shares;
  for (NodeId i = 0; i < 3; ++i) shares.push_back(th.share(i, d("m")));
  EXPECT_THROW(th.combine(shares, d("m")), CheckError);
}

TEST_F(ThresholdTest, DuplicateSharesDoNotCount) {
  std::vector<SigShare> shares;
  for (int i = 0; i < 5; ++i) shares.push_back(th.share(0, d("m")));
  EXPECT_THROW(th.combine(shares, d("m")), CheckError);
}

TEST_F(ThresholdTest, InvalidShareInCombineThrows) {
  std::vector<SigShare> shares;
  for (NodeId i = 0; i < 4; ++i) shares.push_back(th.share(i, d("m")));
  shares[2].mac[0] ^= 1;
  EXPECT_THROW(th.combine(shares, d("m")), CheckError);
}

TEST_F(ThresholdTest, CombinedSigIndependentOfShareSet) {
  std::vector<SigShare> a, b;
  for (NodeId i = 0; i < 4; ++i) a.push_back(th.share(i, d("m")));
  for (NodeId i = 3; i < 7; ++i) b.push_back(th.share(i, d("m")));
  EXPECT_EQ(th.combine(a, d("m")), th.combine(b, d("m")));
}

TEST_F(ThresholdTest, MoreThanThresholdAlsoCombines) {
  std::vector<SigShare> shares;
  for (NodeId i = 0; i < 7; ++i) shares.push_back(th.share(i, d("m")));
  EXPECT_TRUE(th.verify(th.combine(shares, d("m")), d("m")));
}

TEST(Threshold, ThresholdBoundsChecked) {
  KeyRegistry reg(5, 1);
  EXPECT_THROW(ThresholdScheme(reg, 0), CheckError);
  EXPECT_THROW(ThresholdScheme(reg, 6), CheckError);
  EXPECT_NO_THROW(ThresholdScheme(reg, 5));
}

TEST(Threshold, SchemesWithDifferentRegistriesDisagree) {
  KeyRegistry r1(4, 1), r2(4, 2);
  ThresholdScheme t1(r1, 2), t2(r2, 2);
  std::vector<SigShare> shares{t1.share(0, d("m")), t1.share(1, d("m"))};
  ThresholdSig sig = t1.combine(shares, d("m"));
  EXPECT_FALSE(t2.verify(sig, d("m")));
}

}  // namespace
}  // namespace ambb
