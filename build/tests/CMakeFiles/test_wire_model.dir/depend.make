# Empty dependencies file for test_wire_model.
# This may be replaced when dependencies are built.
