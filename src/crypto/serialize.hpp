// Byte-level serialization of the cryptographic objects.
//
// The simulator hands message structs across directly (no marshalling on
// the hot path), while the paper's cost metric uses the bit-exact
// WireModel. These codecs exist so the library is deployable over a real
// byte transport: every protocol message has a canonical byte encoding
// (see bb/codec.hpp) built on the primitives here, with round-trip
// equality guaranteed by tests.
#pragma once

#include "common/bitvec.hpp"
#include "common/byte_buf.hpp"
#include "crypto/multisig.hpp"
#include "crypto/signer.hpp"
#include "crypto/threshold.hpp"

namespace ambb {

void encode_digest(const Digest& d, Encoder& e);
Digest decode_digest(Decoder& d);

void encode_signature(const Signature& s, Encoder& e);
Signature decode_signature(Decoder& d);

void encode_share(const SigShare& s, Encoder& e);
SigShare decode_share(Decoder& d);

void encode_thsig(const ThresholdSig& s, Encoder& e);
ThresholdSig decode_thsig(Decoder& d);

void encode_bitvec(const BitVec& b, Encoder& e);
BitVec decode_bitvec(Decoder& d);

void encode_multisig(const MultiSig& m, Encoder& e);
MultiSig decode_multisig(Decoder& d);

}  // namespace ambb
