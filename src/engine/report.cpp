#include "engine/report.hpp"

#include <cmath>
#include <cstdio>

namespace ambb::engine {

namespace {

void json_escape_into(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
}

std::string fixed3(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

/// JSON has no NaN/inf literal; "%.3f" would print "nan" and corrupt the
/// document. Non-finite metrics (e.g. the amortized cost of a zero-slot
/// run) become a structured null instead.
std::string json_number(double v) {
  return std::isfinite(v) ? fixed3(v) : "null";
}

}  // namespace

RunRecord to_record(const JobOutcome& outcome) {
  RunRecord rec;
  rec.label = outcome.label;
  rec.wall_ms = outcome.wall_ms;
  rec.violations = outcome.violations.size();
  rec.error = outcome.error;
  if (!outcome.completed) {
    // A job that threw has no trustworthy result; count it as one
    // violation so producers exit non-zero.
    rec.violations += 1;
    return rec;
  }
  const RunResult& r = outcome.result;
  rec.n = r.n;
  rec.f = r.f;
  rec.slots = r.slots;
  rec.rounds = r.rounds;
  rec.honest_bits = r.honest_bits;
  rec.adversary_bits = r.adversary_bits;
  rec.amortized = r.amortized();
  rec.stats = r.stats_summary();
  return rec;
}

std::string render_bench_json(const std::string& bench_name,
                              const std::vector<RunRecord>& records,
                              std::size_t total_violations, unsigned threads,
                              double wall_ms_total) {
  std::string json;
  json += "{\n  \"bench\": \"";
  json_escape_into(json, bench_name);
  json += "\",\n  \"schema_version\": " + std::to_string(kBenchSchemaVersion);
  json += ",\n  \"threads\": " + std::to_string(threads);
  json += ",\n  \"wall_ms_total\": " + fixed3(wall_ms_total);
  json += ",\n  \"violations\": " + std::to_string(total_violations);
  json += ",\n  \"runs\": [";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const RunRecord& r = records[i];
    json += i == 0 ? "\n" : ",\n";
    json += "    {\"label\": \"";
    json_escape_into(json, r.label);
    json += "\", \"n\": " + std::to_string(r.n);
    json += ", \"f\": " + std::to_string(r.f);
    json += ", \"slots\": " + std::to_string(r.slots);
    json += ", \"rounds\": " + std::to_string(r.rounds);
    json += ", \"honest_bits\": " + std::to_string(r.honest_bits);
    json += ", \"adversary_bits\": " + std::to_string(r.adversary_bits);
    json += ", \"amortized_bits_per_slot\": " + json_number(r.amortized);
    json += ", \"wall_ms\": " + fixed3(r.wall_ms);
    json += ", \"records\": " + std::to_string(r.stats.records);
    json += ", \"deliveries\": " + std::to_string(r.stats.deliveries);
    json += ", \"erasures\": " + std::to_string(r.stats.erasures);
    json += ", \"corruptions\": " + std::to_string(r.stats.corruptions);
    json += ", \"ns_honest\": " + std::to_string(r.stats.ns_honest);
    json += ", \"ns_byzantine\": " + std::to_string(r.stats.ns_byzantine);
    json += ", \"ns_adversary\": " + std::to_string(r.stats.ns_adversary);
    json += ", \"ns_accounting\": " + std::to_string(r.stats.ns_accounting);
    json += ", \"ns_delivery\": " + std::to_string(r.stats.ns_delivery);
    json += ", \"violations\": " + std::to_string(r.violations);
    if (!r.error.empty()) {
      json += ", \"error\": \"";
      json_escape_into(json, r.error);
      json += "\"";
    }
    json += "}";
  }
  json += "\n  ]\n}\n";
  return json;
}

bool write_bench_json(const std::string& path, const std::string& bench_name,
                      const std::vector<RunRecord>& records,
                      std::size_t total_violations, unsigned threads,
                      double wall_ms_total) {
  const std::string json = render_bench_json(
      bench_name, records, total_violations, threads, wall_ms_total);
  std::FILE* fp = std::fopen(path.c_str(), "w");
  if (fp == nullptr) return false;
  std::fwrite(json.data(), 1, json.size(), fp);
  std::fclose(fp);
  return true;
}

}  // namespace ambb::engine
