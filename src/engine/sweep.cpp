#include "engine/sweep.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/check.hpp"
#include "sim/net_policy.hpp"
#include "trace/trace.hpp"

namespace ambb::engine {

namespace {

std::vector<std::uint32_t> fs_for(const SweepSpec& spec,
                                  const ProtocolInfo& info,
                                  std::uint32_t n) {
  if (spec.f_max) return {info.max_f(n)};
  if (spec.f_frac_den != 0) {
    // Exact integer arithmetic: floor(num * n / den). num and den are
    // parser-capped (den <= 1e9), so num * n fits in 64 bits for any
    // 32-bit n.
    return {static_cast<std::uint32_t>(spec.f_frac_num * n /
                                       spec.f_frac_den)};
  }
  if (spec.f_frac >= 0.0) {
    // Double fallback: snap the fraction to the nearest 1e-9, then apply
    // the same exact floor. static_cast<uint32_t>(f_frac * n) truncated
    // float noise (0.3 * 10 = 2.999... -> 2); this yields 3.
    const auto num = static_cast<std::uint64_t>(
        std::llround(spec.f_frac * 1e9));
    return {static_cast<std::uint32_t>(num * n / 1000000000ULL)};
  }
  if (!spec.fs.empty()) return spec.fs;
  // No fault-load key at all: a third of the nodes, the conventional
  // "some faults, every family tolerates it" default.
  return {n / 3};
}

std::vector<Slot> slots_for(const SweepSpec& spec, std::uint32_t n) {
  if (spec.slots_per_n != 0) return {spec.slots_per_n * n};
  if (!spec.slots_list.empty()) return spec.slots_list;
  return {Slot{8}};
}

}  // namespace

std::vector<SweepJob> expand(const SweepSpec& spec) {
  const ProtocolInfo& info = protocol(spec.protocol);  // validates the name
  AMBB_CHECK_MSG(!spec.ns.empty(), "sweep '" << spec.name << "': empty n list");
  AMBB_CHECK_MSG(!spec.adversaries.empty(),
                 "sweep '" << spec.name << "': empty adversary list");
  AMBB_CHECK_MSG(spec.seed_begin <= spec.seed_end,
                 "sweep '" << spec.name << "': seed range is backwards");
  AMBB_CHECK_MSG(spec.repetitions >= 1,
                 "sweep '" << spec.name << "': reps must be >= 1");
  for (const auto& adv : spec.adversaries) {
    AMBB_CHECK_MSG(accepts_adversary(info, adv),
                   "sweep '" << spec.name << "': protocol '" << spec.protocol
                             << "' does not accept adversary '" << adv << "'");
  }
  // An empty net list is the off-axis sentinel {"lockstep"}; every entry
  // must parse so a typo fails at expansion, not mid-sweep.
  const std::vector<std::string> nets =
      spec.nets.empty() ? std::vector<std::string>{"lockstep"} : spec.nets;
  for (const auto& net : nets) parse_net_policy(net);

  const std::string prefix = spec.name.empty() ? spec.protocol : spec.name;
  const bool many_seeds = spec.seed_begin != spec.seed_end;

  std::vector<SweepJob> out;
  for (std::uint32_t n : spec.ns) {
    const auto fs = fs_for(spec, info, n);
    const auto slots = slots_for(spec, n);
    for (std::uint32_t f : fs) {
      AMBB_CHECK_MSG(f < n, "sweep '" << spec.name << "': f=" << f
                                      << " >= n=" << n);
      for (Slot L : slots) {
        // An empty payload list is the off-axis sentinel {0}.
        const std::vector<std::uint64_t> payloads =
            spec.payloads.empty() ? std::vector<std::uint64_t>{0}
                                  : spec.payloads;
        for (std::uint64_t payload : payloads) {
          const bool is_ext = spec.protocol.rfind("ext:", 0) == 0;
          if (payload != 0 && !is_ext) {
            AMBB_CHECK_MSG(payload <= 0x1FFFFFFFULL,
                           "sweep '" << spec.name << "': payload " << payload
                                     << " bytes overflows value-bits for a "
                                        "non-ext protocol");
          }
          for (const auto& net : nets) {
            const bool lockstep_net = net == "lockstep";
            for (const auto& adv : spec.adversaries) {
              // Non-lockstep cells relax the synchrony-conditional
              // oracles: a delayed delivery can push the last commits
              // past the fixed round horizon (termination), and a
              // delayed honest sender is indistinguishable from a
              // silent one (validity). Consistency stays a hard
              // failure — except for rows whose agreement argument is
              // itself a round deadline (consistency_needs_sync in the
              // registry: the Dolev-Strong relay step, TrustCast,
              // chunk dispersal), which may legally split under delays.
              const bool stall_ok = may_stall(info, adv) || !lockstep_net;
              for (std::uint64_t seed = spec.seed_begin;
                   seed <= spec.seed_end; ++seed) {
                for (std::uint32_t rep = 0; rep < spec.repetitions; ++rep) {
                  SweepJob sj;
                  sj.protocol = spec.protocol;
                  sj.allow_stall = stall_ok;
                  sj.allow_invalid = !lockstep_net;
                  sj.allow_split =
                      !lockstep_net && info.consistency_needs_sync;
                  sj.params.n = n;
                  sj.params.f = f;
                  sj.params.slots = L;
                  sj.params.seed = seed;
                  sj.params.adversary = adv;
                  sj.params.eps = spec.eps;
                  sj.params.kappa_bits = spec.kappa_bits;
                  sj.params.value_bits = spec.value_bits;
                  sj.params.payload_bytes = payload;
                  sj.params.net = net;
                  // A raw (non-ext) row carries the payload inline: the
                  // value width IS the payload width (registry.hpp).
                  if (payload != 0 && !is_ext) {
                    sj.params.value_bits =
                        static_cast<std::uint32_t>(8 * payload);
                  }

                  std::ostringstream label;
                  label << prefix << "/" << adv << "/n" << n;
                  // Keep labels short: only dimensions the spec actually
                  // sweeps (or sets off-default) appear after n.
                  if (fs.size() > 1) label << "/f" << f;
                  if (slots.size() > 1) label << "/L" << L;
                  if (payloads.size() > 1) label << "/p" << payload;
                  if (nets.size() > 1 || !lockstep_net) label << "/" << net;
                  if (many_seeds) label << "/s" << seed;
                  if (spec.repetitions > 1) label << "/r" << (rep + 1);
                  sj.label = label.str();
                  out.push_back(std::move(sj));
                }
              }
            }
          }
        }
      }
    }
  }
  return out;
}

std::vector<SweepJob> expand_all(const std::vector<SweepSpec>& specs) {
  std::vector<SweepJob> out;
  for (const auto& s : specs) {
    auto jobs = expand(s);
    out.insert(out.end(), std::make_move_iterator(jobs.begin()),
               std::make_move_iterator(jobs.end()));
  }
  return out;
}

std::vector<SweepJob> filter_jobs(std::vector<SweepJob> jobs,
                                  const std::string& needle) {
  if (needle.empty()) return jobs;
  std::vector<SweepJob> out;
  for (auto& j : jobs) {
    if (j.label.find(needle) != std::string::npos) out.push_back(std::move(j));
  }
  return out;
}

Job to_engine_job(const SweepJob& sj) {
  const ProtocolInfo& info = protocol(sj.protocol);
  // The closure copies the params and takes the registry entry by
  // reference (the registry is an immutable magic static); each
  // invocation builds a fresh Simulation/ledger/RNG inside the driver.
  CommonParams params = sj.params;
  return Job{sj.label, [&info, params] { return info.run(params); },
             sj.allow_stall, sj.allow_invalid, sj.allow_split};
}

std::vector<Job> to_engine_jobs(const std::vector<SweepJob>& sjs) {
  std::vector<Job> out;
  out.reserve(sjs.size());
  for (const auto& sj : sjs) out.push_back(to_engine_job(sj));
  return out;
}

std::string trace_path(const std::string& dir, std::size_t index,
                       const std::string& label) {
  std::string name = label;
  for (char& c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) c = '-';
  }
  std::ostringstream os;
  os << dir << '/' << std::setw(4) << std::setfill('0') << index << '_'
     << name << ".jsonl";
  return os.str();
}

std::vector<Job> to_engine_jobs(const std::vector<SweepJob>& sjs,
                                const std::string& trace_dir) {
  if (trace_dir.empty()) return to_engine_jobs(sjs);
  std::vector<Job> out;
  out.reserve(sjs.size());
  for (std::size_t i = 0; i < sjs.size(); ++i) {
    const SweepJob& sj = sjs[i];
    const ProtocolInfo& info = protocol(sj.protocol);
    CommonParams params = sj.params;
    std::string path = trace_path(trace_dir, i, sj.label);
    out.push_back(Job{sj.label,
                      [&info, params, path = std::move(path)] {
                        std::ofstream os(path,
                                         std::ios::binary | std::ios::trunc);
                        AMBB_CHECK_MSG(os, "cannot open trace file " << path);
                        trace::JsonlSink sink(os);
                        return info.run(RunRequest{params, &sink});
                      },
                      sj.allow_stall, sj.allow_invalid, sj.allow_split});
  }
  return out;
}

namespace {

std::vector<std::string> tokens_of(const std::string& line) {
  std::vector<std::string> toks;
  std::istringstream is(line);
  std::string t;
  while (is >> t) {
    if (t[0] == '#') break;  // trailing comment
    toks.push_back(t);
  }
  return toks;
}

template <class T>
T parse_num(const std::string& tok, int lineno) {
  std::istringstream is(tok);
  T v{};
  is >> v;
  AMBB_CHECK_MSG(!is.fail() && is.eof(),
                 "spec line " << lineno << ": bad number '" << tok << "'");
  return v;
}

/// "f-frac" accepts a rational "p/q" or a decimal literal ("0.3" = 3/10),
/// both parsed into an exact numerator/denominator. At most 9 fractional
/// digits so num * n cannot overflow 64 bits.
void parse_f_frac(const std::string& tok, int lineno, SweepSpec* cur) {
  cur->f_frac = -1.0;
  const auto slash = tok.find('/');
  if (slash != std::string::npos) {
    cur->f_frac_num =
        parse_num<std::uint64_t>(tok.substr(0, slash), lineno);
    cur->f_frac_den = parse_num<std::uint64_t>(tok.substr(slash + 1), lineno);
    AMBB_CHECK_MSG(cur->f_frac_den != 0,
                   "spec line " << lineno << ": zero denominator in '" << tok
                                << "'");
    AMBB_CHECK_MSG(cur->f_frac_den <= 1000000000ULL &&
                       cur->f_frac_num <= cur->f_frac_den,
                   "spec line " << lineno << ": f-frac '" << tok
                                << "' must be a fraction <= 1 with "
                                   "denominator <= 1e9");
    return;
  }
  std::uint64_t num = 0;
  std::uint64_t den = 1;
  bool seen_dot = false;
  bool seen_digit = false;
  for (char c : tok) {
    if (c == '.') {
      AMBB_CHECK_MSG(!seen_dot, "spec line " << lineno << ": bad f-frac '"
                                             << tok << "'");
      seen_dot = true;
      continue;
    }
    AMBB_CHECK_MSG(c >= '0' && c <= '9',
                   "spec line " << lineno << ": bad f-frac '" << tok << "'");
    seen_digit = true;
    num = num * 10 + static_cast<std::uint64_t>(c - '0');
    if (seen_dot) den *= 10;
    AMBB_CHECK_MSG(den <= 1000000000ULL,
                   "spec line " << lineno << ": f-frac '" << tok
                                << "' has more than 9 fractional digits");
  }
  AMBB_CHECK_MSG(seen_digit && num <= den,
                 "spec line " << lineno << ": f-frac '" << tok
                              << "' must be a fraction in [0, 1]");
  cur->f_frac_num = num;
  cur->f_frac_den = den;
}

}  // namespace

std::vector<SweepSpec> parse_spec(const std::string& text) {
  std::vector<SweepSpec> specs;
  std::vector<int> spec_lines;  // line of each block's 'sweep' key
  SweepSpec* cur = nullptr;

  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto toks = tokens_of(line);
    if (toks.empty()) continue;
    const std::string& key = toks[0];
    const std::size_t nargs = toks.size() - 1;

    if (key == "sweep") {
      AMBB_CHECK_MSG(nargs == 1, "spec line " << lineno
                                              << ": 'sweep' needs one name");
      specs.emplace_back();
      spec_lines.push_back(lineno);
      cur = &specs.back();
      cur->name = toks[1];
      continue;
    }
    AMBB_CHECK_MSG(cur != nullptr, "spec line "
                                       << lineno
                                       << ": key before any 'sweep' block");
    AMBB_CHECK_MSG(nargs >= 1, "spec line " << lineno << ": '" << key
                                            << "' needs a value");

    if (key == "protocol") {
      cur->protocol = toks[1];
    } else if (key == "n") {
      cur->ns.clear();
      for (std::size_t i = 1; i < toks.size(); ++i) {
        cur->ns.push_back(parse_num<std::uint32_t>(toks[i], lineno));
      }
    } else if (key == "f") {
      if (toks[1] == "max") {
        cur->f_max = true;
      } else {
        cur->fs.clear();
        for (std::size_t i = 1; i < toks.size(); ++i) {
          cur->fs.push_back(parse_num<std::uint32_t>(toks[i], lineno));
        }
      }
    } else if (key == "f-frac") {
      parse_f_frac(toks[1], lineno, cur);
    } else if (key == "slots") {
      cur->slots_list.clear();
      for (std::size_t i = 1; i < toks.size(); ++i) {
        cur->slots_list.push_back(parse_num<Slot>(toks[i], lineno));
      }
    } else if (key == "slots-per-n") {
      cur->slots_per_n = parse_num<std::uint32_t>(toks[1], lineno);
    } else if (key == "adversary") {
      cur->adversaries.assign(toks.begin() + 1, toks.end());
    } else if (key == "seeds") {
      AMBB_CHECK_MSG(nargs == 2,
                     "spec line " << lineno << ": 'seeds' needs begin end");
      cur->seed_begin = parse_num<std::uint64_t>(toks[1], lineno);
      cur->seed_end = parse_num<std::uint64_t>(toks[2], lineno);
    } else if (key == "reps") {
      cur->repetitions = parse_num<std::uint32_t>(toks[1], lineno);
    } else if (key == "eps") {
      cur->eps = parse_num<double>(toks[1], lineno);
    } else if (key == "kappa") {
      cur->kappa_bits = parse_num<std::uint32_t>(toks[1], lineno);
    } else if (key == "value-bits") {
      cur->value_bits = parse_num<std::uint32_t>(toks[1], lineno);
    } else if (key == "payload") {
      cur->payloads.clear();
      for (std::size_t i = 1; i < toks.size(); ++i) {
        const auto p = parse_num<std::uint64_t>(toks[i], lineno);
        AMBB_CHECK_MSG(p >= 1, "spec line " << lineno
                                            << ": payload must be >= 1 byte");
        cur->payloads.push_back(p);
      }
    } else if (key == "net") {
      cur->nets.assign(toks.begin() + 1, toks.end());
      for (std::size_t i = 1; i < toks.size(); ++i) {
        parse_net_policy(toks[i]);  // fail on the offending line, not later
      }
    } else {
      AMBB_CHECK_MSG(false,
                     "spec line " << lineno << ": unknown key '" << key << "'");
    }
  }
  for (std::size_t i = 0; i < specs.size(); ++i) {
    AMBB_CHECK_MSG(!specs[i].protocol.empty(),
                   "spec line " << spec_lines[i] << ": sweep '"
                                << specs[i].name
                                << "' has no 'protocol' key");
  }
  return specs;
}

}  // namespace ambb::engine
