#include "runner/registry.hpp"

#include <algorithm>
#include <cstdlib>

#include "adversary/spec.hpp"
#include "bb/dolev_strong.hpp"
#include "bb/hotstuff_demo.hpp"
#include "bb/linear_bb.hpp"
#include "bb/phase_king.hpp"
#include "bb/quadratic_bb.hpp"
#include "common/check.hpp"

namespace ambb {

namespace {

RunResult run_linear_with(const CommonParams& p, linear::Options opts) {
  linear::LinearConfig cfg;
  cfg.n = p.n;
  cfg.f = p.f;
  cfg.slots = p.slots;
  cfg.seed = p.seed;
  cfg.eps = p.eps;
  cfg.kappa_bits = p.kappa_bits;
  cfg.value_bits = p.value_bits;
  cfg.opts = opts;
  cfg.adversary = p.adversary;
  return run_linear(cfg);
}

std::vector<ProtocolInfo> build() {
  std::vector<ProtocolInfo> out;

  const std::vector<std::string> lin_advs = {
      "none",  "silent", "equivocate",    "selective", "flood",
      "mixed", "drop",   "chaos",         "adaptive-erase"};
  auto lin_max_f = [](std::uint32_t n) {
    // f <= (1/2 - eps) n with eps = 0.1, i.e. floor(2n/5) — exact integer
    // arithmetic; 0.4 is not representable in binary floating point, so
    // static_cast<uint32_t>(0.4 * n) leaves the bound at the mercy of
    // rounding.
    return (2 * n) / 5;
  };

  out.push_back(ProtocolInfo{
      "linear",
      "This work, f <= (1/2-eps)n, amortized O(kn)",
      lin_advs,
      lin_max_f,
      [](const CommonParams& p) {
        return run_linear_with(p, linear::Options::paper());
      },
      {}});

  out.push_back(ProtocolInfo{
      "mr-baseline",
      "Momose-Ren style, f <= (1/2-eps)n, O(kn^2) per slot",
      lin_advs,
      lin_max_f,
      [](const CommonParams& p) {
        return run_linear_with(p, linear::Options::mr_baseline());
      },
      {}});

  out.push_back(ProtocolInfo{
      "linear-nomem",
      "Ablation: Algorithm 4 without cross-slot accusation memory",
      lin_advs,
      lin_max_f,
      [](const CommonParams& p) {
        return run_linear_with(p, linear::Options::no_memory());
      },
      {}});

  out.push_back(ProtocolInfo{
      "linear-noquery",
      "Ablation: Algorithm 4 without the Query/Respond path",
      lin_advs,
      lin_max_f,
      [](const CommonParams& p) {
        return run_linear_with(p, linear::Options::no_query());
      },
      // Without the dissemination path, a selective (or randomly lossy)
      // leader's partial commit permanently starves the rest (no quorum
      // remains in later epochs).
      {"selective", "mixed", "drop", "chaos"}});
  out.back().sched_may_stall = true;  // same starvation under schedules

  out.push_back(ProtocolInfo{
      "quadratic",
      "This work, f < n, amortized O(kn^2)",
      {"none", "silent", "equivocate", "conspiracy", "lateprop",
       "floodaccuse", "framer"},
      [](std::uint32_t n) { return n - 1; },
      [](const CommonParams& p) {
        quad::QuadConfig cfg;
        cfg.n = p.n;
        cfg.f = p.f;
        cfg.slots = p.slots;
        cfg.seed = p.seed;
        cfg.kappa_bits = p.kappa_bits;
        cfg.value_bits = p.value_bits;
        cfg.adversary = p.adversary;
        return run_quadratic(cfg);
      },
      {}});

  out.push_back(ProtocolInfo{
      "dolev-strong",
      "Dolev-Strong, f < n, plain signatures, O(kn^3) per slot",
      {"none", "silent", "equivocate", "stagger"},
      [](std::uint32_t n) { return n - 1; },
      [](const CommonParams& p) {
        ds::DsConfig cfg;
        cfg.n = p.n;
        cfg.f = p.f;
        cfg.slots = p.slots;
        cfg.seed = p.seed;
        cfg.use_multisig = false;
        cfg.kappa_bits = p.kappa_bits;
        cfg.value_bits = p.value_bits;
        cfg.adversary = p.adversary;
        return run_dolev_strong(cfg);
      },
      {}});

  out.push_back(ProtocolInfo{
      "dolev-strong-msig",
      "Dolev-Strong, f < n, multi-signatures, O(kn^2 + n^3) per slot",
      {"none", "silent", "equivocate", "stagger"},
      [](std::uint32_t n) { return n - 1; },
      [](const CommonParams& p) {
        ds::DsConfig cfg;
        cfg.n = p.n;
        cfg.f = p.f;
        cfg.slots = p.slots;
        cfg.seed = p.seed;
        cfg.use_multisig = true;
        cfg.kappa_bits = p.kappa_bits;
        cfg.value_bits = p.value_bits;
        cfg.adversary = p.adversary;
        return run_dolev_strong(cfg);
      },
      {}});

  out.push_back(ProtocolInfo{
      "phase-king",
      "Berman et al. family, f < n/3, no crypto (see DESIGN.md note)",
      {"none", "silent", "equivocate", "confuse"},
      [](std::uint32_t n) { return (n - 1) / 3; },
      [](const CommonParams& p) {
        pk::PkConfig cfg;
        cfg.n = p.n;
        cfg.f = p.f;
        cfg.slots = p.slots;
        cfg.seed = p.seed;
        cfg.kappa_bits = p.kappa_bits;
        cfg.value_bits = p.value_bits;
        cfg.adversary = p.adversary;
        return run_phase_king(cfg);
      },
      {}});

  out.push_back(ProtocolInfo{
      "hotstuff",
      "Appendix A: HotStuff without a fallback path",
      {"none", "selective"},
      [](std::uint32_t n) { return (n - 1) / 3; },
      [](const CommonParams& p) {
        hs::HsConfig cfg;
        cfg.n = p.n;
        cfg.f = p.f;
        cfg.slots = p.slots;
        cfg.seed = p.seed;
        cfg.kappa_bits = p.kappa_bits;
        cfg.value_bits = p.value_bits;
        cfg.adversary = p.adversary;
        return run_hotstuff_demo(cfg);
      },
      {"selective"}});
  out.back().sched_may_stall = true;  // no fallback: silenced leader stalls

  return out;
}

}  // namespace

const std::vector<ProtocolInfo>& protocols() {
  static const std::vector<ProtocolInfo> kProtocols = build();
  return kProtocols;
}

const ProtocolInfo& protocol(const std::string& name) {
  for (const auto& p : protocols()) {
    if (p.name == name) return p;
  }
  AMBB_CHECK_MSG(false, "unknown protocol '" << name << "'");
  // AMBB_CHECK_MSG always throws, but it expands to a do/while the
  // compiler cannot see through; without this the function falls off the
  // end of a non-void return path (-Wreturn-type / UB if the macro ever
  // changed).
  std::abort();
}

bool accepts_adversary(const ProtocolInfo& info, const std::string& spec) {
  if (adversary::is_schedule_spec(spec)) return true;
  return std::find(info.adversaries.begin(), info.adversaries.end(), spec) !=
         info.adversaries.end();
}

bool may_stall(const ProtocolInfo& info, const std::string& spec) {
  if (adversary::is_schedule_spec(spec)) return info.sched_may_stall;
  return std::find(info.known_liveness_failures.begin(),
                   info.known_liveness_failures.end(),
                   spec) != info.known_liveness_failures.end();
}

}  // namespace ambb
