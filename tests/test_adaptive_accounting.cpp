// Regression tests for the strongly adaptive accounting contract
// (DESIGN.md "Simulator internals & accounting contract"):
//
//   - a delivery erased in observe_round is charged to NOBODY (the paper's
//     adversary removes it before it ever traverses the wire);
//   - a message that survives from a node corrupted in the same
//     observe_round is charged as ADVERSARY bits (the sender was corrupt
//     when the round's bill was drawn up);
//   - a multicast's self-delivery is delivered but never charged, and
//     erasing the self-copy does not create a double deduction.
//
// These pin the delivery-index contract: with multicasts stored as one
// shared record, erase(i) must still address the individual
// (sender, recipient) delivery i in the same order the old eager fan-out
// enumerated them (recipients 0..n-1, self included).
#include "sim/net.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

namespace ambb {
namespace {

struct ToyMsg {
  int tag = 0;
};

Accounting<ToyMsg> toy_accounting() {
  Accounting<ToyMsg> acc;
  acc.size_bits = [](const ToyMsg&) { return std::uint64_t{100}; };
  acc.kind = [](const ToyMsg&) { return MsgKind{0}; };
  acc.slot = [](const ToyMsg&, Round) { return Slot{1}; };
  return acc;
}

class ScriptActor final : public Actor<ToyMsg> {
 public:
  using Fn = std::function<void(Round, std::span<const Delivery<ToyMsg>>,
                                RoundApi<ToyMsg>&)>;
  explicit ScriptActor(Fn fn) : fn_(std::move(fn)) {}
  void on_round(Round r, std::span<const Delivery<ToyMsg>> inbox,
                const TrafficView<ToyMsg>&, RoundApi<ToyMsg>& api) override {
    if (fn_) fn_(r, inbox, api);
  }

 private:
  Fn fn_;
};

std::unique_ptr<ScriptActor> idle() {
  return std::make_unique<ScriptActor>(nullptr);
}

/// Adversary that runs a lambda as observe_round and keeps every corrupted
/// node silent.
class ScriptAdversary final : public Adversary<ToyMsg> {
 public:
  using Fn = std::function<void(Round, const TrafficView<ToyMsg>&,
                                CorruptionCtl<ToyMsg>&)>;
  explicit ScriptAdversary(Fn fn) : fn_(std::move(fn)) {}
  std::vector<NodeId> initial_corruptions() override { return {}; }
  std::unique_ptr<Actor<ToyMsg>> actor_for(NodeId) override {
    return idle();
  }
  void observe_round(Round r, const TrafficView<ToyMsg>& traffic,
                     CorruptionCtl<ToyMsg>& ctl) override {
    if (fn_) fn_(r, traffic, ctl);
  }

 private:
  Fn fn_;
};

TEST(AdaptiveAccounting, ErasedDeliveryChargedToNobody) {
  CostLedger ledger({"toy"});
  Simulation<ToyMsg> sim(3, 1, &ledger, toy_accounting());
  sim.set_actor(0, std::make_unique<ScriptActor>(
                       [](Round r, auto, RoundApi<ToyMsg>& api) {
                         if (r == 0) api.send(1, ToyMsg{1});
                       }));
  sim.set_actor(1, idle());
  sim.set_actor(2, idle());
  ScriptAdversary adv([](Round r, const TrafficView<ToyMsg>& traffic,
                         CorruptionCtl<ToyMsg>& ctl) {
    if (r != 0) return;
    ASSERT_EQ(traffic.size(), 1u);
    ctl.corrupt(0);
    ctl.erase(0);
  });
  SimConfig<ToyMsg> sc;
  sc.adversary = &adv;
  sim.configure(sc);
  sim.run_rounds(2);
  // Removed before it traversed the wire: neither ledger side pays.
  EXPECT_EQ(ledger.honest_bits_total(), 0u);
  EXPECT_EQ(ledger.adversary_bits_total(), 0u);
}

TEST(AdaptiveAccounting, SurvivingTrafficOfFreshlyCorruptedNodeIsAdversaryBits) {
  CostLedger ledger({"toy"});
  Simulation<ToyMsg> sim(3, 1, &ledger, toy_accounting());
  int node1_got = 0;
  sim.set_actor(0, std::make_unique<ScriptActor>(
                       [](Round r, auto, RoundApi<ToyMsg>& api) {
                         if (r == 0) api.send(1, ToyMsg{1});
                       }));
  sim.set_actor(1, std::make_unique<ScriptActor>(
                       [&](Round, auto inbox, auto&) {
                         node1_got += static_cast<int>(inbox.size());
                       }));
  sim.set_actor(2, idle());
  // Corrupt the sender after it sent, but do NOT erase: the message still
  // flows, and its cost moves to the adversary's side of the ledger.
  ScriptAdversary adv([](Round r, const TrafficView<ToyMsg>&,
                         CorruptionCtl<ToyMsg>& ctl) {
    if (r == 0) ctl.corrupt(0);
  });
  SimConfig<ToyMsg> sc;
  sc.adversary = &adv;
  sim.configure(sc);
  sim.run_rounds(2);
  EXPECT_EQ(node1_got, 1);
  EXPECT_EQ(ledger.honest_bits_total(), 0u);
  EXPECT_EQ(ledger.adversary_bits_total(), 100u);
}

TEST(AdaptiveAccounting, MulticastSelfDeliveryIsFree) {
  CostLedger ledger({"toy"});
  Simulation<ToyMsg> sim(4, 1, &ledger, toy_accounting());
  std::vector<int> got(4, 0);
  for (NodeId v = 0; v < 4; ++v) {
    sim.set_actor(v, std::make_unique<ScriptActor>(
                         [&, v](Round r, auto inbox, RoundApi<ToyMsg>& api) {
                           if (r == 0 && v == 0) api.multicast(ToyMsg{1});
                           got[v] += static_cast<int>(inbox.size());
                         }));
  }
  sim.run_rounds(2);
  for (NodeId v = 0; v < 4; ++v) EXPECT_EQ(got[v], 1) << "node " << v;
  // Four deliveries, three charged: the self-copy is free.
  EXPECT_EQ(ledger.honest_bits_total(), 300u);
  EXPECT_EQ(ledger.honest_msgs_total(), 3u);
}

TEST(AdaptiveAccounting, ErasingSelfCopyDoesNotDoubleDeduct) {
  CostLedger ledger({"toy"});
  Simulation<ToyMsg> sim(4, 1, &ledger, toy_accounting());
  for (NodeId v = 0; v < 4; ++v) {
    sim.set_actor(v, std::make_unique<ScriptActor>(
                         [v](Round r, auto, RoundApi<ToyMsg>& api) {
                           if (r == 0 && v == 0) api.multicast(ToyMsg{1});
                         }));
  }
  // Deliveries of the multicast appear in recipient order 0..3, so
  // delivery 0 is the sender's self-copy.
  ScriptAdversary adv([](Round r, const TrafficView<ToyMsg>& traffic,
                         CorruptionCtl<ToyMsg>& ctl) {
    if (r != 0) return;
    ASSERT_EQ(traffic.size(), 4u);
    EXPECT_EQ(traffic[0].from, 0u);
    EXPECT_EQ(traffic[0].to, 0u);
    ctl.corrupt(0);
    ctl.erase(0);
  });
  SimConfig<ToyMsg> sc;
  sc.adversary = &adv;
  sim.configure(sc);
  sim.run_rounds(2);
  // The free self-copy was erased; the three real copies are still billed
  // (to the adversary, since the sender is now corrupt) — the "free self"
  // deduction must not apply on top of the erasure.
  EXPECT_EQ(ledger.honest_bits_total(), 0u);
  EXPECT_EQ(ledger.adversary_bits_total(), 300u);
}

TEST(AdaptiveAccounting, EraseAddressesOneDeliveryOfASharedMulticast) {
  CostLedger ledger({"toy"});
  Simulation<ToyMsg> sim(4, 1, &ledger, toy_accounting());
  std::vector<int> got(4, 0);
  for (NodeId v = 0; v < 4; ++v) {
    sim.set_actor(v, std::make_unique<ScriptActor>(
                         [&, v](Round r, auto inbox, RoundApi<ToyMsg>& api) {
                           if (r == 0 && v == 0) api.multicast(ToyMsg{1});
                           got[v] += static_cast<int>(inbox.size());
                         }));
  }
  // Erase only the delivery to node 2 (delivery index == recipient here).
  ScriptAdversary adv([](Round r, const TrafficView<ToyMsg>& traffic,
                         CorruptionCtl<ToyMsg>& ctl) {
    if (r != 0) return;
    ASSERT_EQ(traffic.size(), 4u);
    EXPECT_EQ(traffic[2].to, 2u);
    ctl.corrupt(0);
    ctl.erase(2);
  });
  SimConfig<ToyMsg> sc;
  sc.adversary = &adv;
  sim.configure(sc);
  sim.run_rounds(2);
  // got[0] is not asserted: corrupting node 0 replaced its recording
  // actor with the adversary's.
  EXPECT_EQ(got[1], 1);
  EXPECT_EQ(got[2], 0);  // only the erased recipient misses it
  EXPECT_EQ(got[3], 1);
  // fanout 4, minus the free self-copy, minus one erasure = 2 charged,
  // on the adversary side (sender corrupted in the same round).
  EXPECT_EQ(ledger.adversary_bits_total(), 200u);
  EXPECT_EQ(ledger.honest_bits_total(), 0u);
}

}  // namespace
}  // namespace ambb
