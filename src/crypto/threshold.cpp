#include "crypto/threshold.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace ambb {

ThresholdScheme::ThresholdScheme(const KeyRegistry& registry, std::uint32_t t)
    : registry_(&registry), t_(t) {
  AMBB_CHECK(t >= 1 && t <= registry.n());
}

SigShare ThresholdScheme::share(NodeId signer, const Digest& d) const {
  return SigShare{signer, registry_->mac_as(signer, "thshare", d)};
}

bool ThresholdScheme::verify_share(const SigShare& s, const Digest& d) const {
  if (s.signer >= registry_->n()) return false;
  return s.mac == registry_->mac_as(s.signer, "thshare", d);
}

ThresholdSig ThresholdScheme::combine(std::span<const SigShare> shares,
                                      const Digest& d) const {
  // Reused scratch: combine() runs once per certificate on the hot path;
  // a thread_local keeps steady-state rounds heap-allocation-free.
  thread_local std::vector<NodeId> signers;
  signers.clear();
  signers.reserve(shares.size());
  for (const auto& s : shares) {
    AMBB_CHECK_MSG(verify_share(s, d), "invalid share passed to combine");
    signers.push_back(s.signer);
  }
  std::sort(signers.begin(), signers.end());
  signers.erase(std::unique(signers.begin(), signers.end()), signers.end());
  AMBB_CHECK_MSG(signers.size() >= t_,
                 "combine needs >= t distinct valid shares, got "
                     << signers.size() << " < " << t_);
  return ThresholdSig{registry_->master_mac("th", d)};
}

bool ThresholdScheme::verify(const ThresholdSig& sig, const Digest& d) const {
  // Last-args memo: in a broadcast round every recipient verifies the same
  // certificate back-to-back, so remembering the expected MAC for the most
  // recent digest short-circuits the registry's cache probe entirely.
  thread_local struct {
    std::uint64_t reg = 0;  ///< registry uid (see KeyRegistry::uid)
    Digest d{};
    Digest mac{};
  } memo;
  if (memo.reg != registry_->uid() || memo.d != d) {
    memo.reg = registry_->uid();
    memo.d = d;
    memo.mac = registry_->master_mac("th", d);
  }
  return sig.mac == memo.mac;
}

}  // namespace ambb
