#include "adversary/fault.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"

namespace ambb::adversary {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kSilence: return "silence";
    case FaultKind::kSelective: return "selective";
    case FaultKind::kShuffle: return "shuffle";
    case FaultKind::kStagger: return "stagger";
  }
  return "?";
}

const char* net_fault_kind_name(NetFaultKind k) {
  switch (k) {
    case NetFaultKind::kDelay: return "delay";
    case NetFaultKind::kReorder: return "reorder";
  }
  return "?";
}

void validate(const FaultSchedule& s, std::uint32_t n, std::uint32_t f) {
  std::vector<Round> corrupt_from(n, kRoundMax);  // kRoundMax = never
  std::uint32_t distinct = 0;
  for (const auto& c : s.corruptions) {
    AMBB_CHECK_MSG(c.node < n, "corrupt(" << c.from << ", " << c.node
                                          << "): node out of range, n=" << n);
    AMBB_CHECK_MSG(corrupt_from[c.node] == kRoundMax,
                   "node " << c.node << " corrupted twice");
    corrupt_from[c.node] = c.from;
    ++distinct;
  }
  AMBB_CHECK_MSG(distinct <= f, "schedule corrupts " << distinct
                                                     << " nodes, budget f="
                                                     << f);
  for (const auto& e : s.erasures) {
    AMBB_CHECK_MSG(e.sender < n, "erase@" << e.round << ": sender " << e.sender
                                          << " out of range, n=" << n);
    AMBB_CHECK_MSG(e.density_permille <= kDensityAll,
                   "erase@" << e.round << ": density " << e.density_permille
                            << " > 1000 permille");
    AMBB_CHECK_MSG(e.to_mod >= 1, "erase@" << e.round << ": to_mod 0");
    AMBB_CHECK_MSG(e.to_rem < e.to_mod,
                   "erase@" << e.round << ": to_rem >= to_mod");
    // After-the-fact removal needs the sender corrupt by the end of the
    // erase round, i.e. a corrupt event with from <= round + 1.
    AMBB_CHECK_MSG(corrupt_from[e.sender] != kRoundMax &&
                       corrupt_from[e.sender] <= e.round + 1,
                   "erase@" << e.round << ": sender " << e.sender
                            << " is not corrupt by the end of that round");
  }
  for (const auto& a : s.actor_faults) {
    AMBB_CHECK_MSG(a.node < n, fault_kind_name(a.kind)
                                   << ": node " << a.node
                                   << " out of range, n=" << n);
    AMBB_CHECK_MSG(corrupt_from[a.node] != kRoundMax,
                   fault_kind_name(a.kind) << "(" << a.node
                                           << "): node is never corrupted");
    AMBB_CHECK_MSG(a.from >= corrupt_from[a.node],
                   fault_kind_name(a.kind)
                       << "(" << a.node << "): window starts at round "
                       << a.from << " but the node turns Byzantine at round "
                       << corrupt_from[a.node]);
    AMBB_CHECK_MSG(a.to >= a.from, fault_kind_name(a.kind)
                                       << "(" << a.node
                                       << "): inverted window");
    if (a.kind == FaultKind::kStagger) {
      AMBB_CHECK_MSG(a.delay >= 1, "stagger(" << a.node << "): delay 0");
    }
    if (a.kind == FaultKind::kSelective) {
      for (NodeId v : a.keep) {
        AMBB_CHECK_MSG(v < n, "selective(" << a.node << "): keep node " << v
                                           << " out of range");
      }
    }
  }
  for (const auto& t : s.net_faults) {
    AMBB_CHECK_MSG(t.sender < n, net_fault_kind_name(t.kind)
                                     << ": sender " << t.sender
                                     << " out of range, n=" << n);
    AMBB_CHECK_MSG(t.to >= t.from, net_fault_kind_name(t.kind)
                                       << "(" << t.sender
                                       << "): inverted window");
    if (t.kind == NetFaultKind::kDelay) {
      AMBB_CHECK_MSG(t.extra >= 1, "delay(" << t.sender << "): extra 0");
    }
  }
}

std::string describe(const FaultSchedule& s) {
  std::ostringstream os;
  os << "sched:";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ";";
    first = false;
  };
  for (const auto& c : s.corruptions) {
    sep();
    os << "corrupt(" << c.from << "," << c.node << ")";
  }
  for (const auto& e : s.erasures) {
    sep();
    os << "erase(" << e.round << "," << e.sender << ","
       << e.density_permille;
    if (e.to_mod != 1) os << "," << e.to_mod << "," << e.to_rem;
    os << ")";
  }
  for (const auto& a : s.actor_faults) {
    sep();
    os << fault_kind_name(a.kind) << "(" << a.node << "," << a.from << ",";
    if (a.to == kRoundMax) {
      os << "*";
    } else {
      os << a.to;
    }
    if (a.kind == FaultKind::kStagger) os << "," << a.delay;
    if (a.kind == FaultKind::kSelective) {
      for (NodeId v : a.keep) os << "," << v;
    }
    os << ")";
  }
  for (const auto& t : s.net_faults) {
    sep();
    os << net_fault_kind_name(t.kind) << "(" << t.sender << "," << t.from
       << ",";
    if (t.to == kRoundMax) {
      os << "*";
    } else {
      os << t.to;
    }
    if (t.kind == NetFaultKind::kDelay) os << "," << t.extra;
    os << ")";
  }
  if (first) os << "(empty)";
  return os.str();
}

}  // namespace ambb::adversary
