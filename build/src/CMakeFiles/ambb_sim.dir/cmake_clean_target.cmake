file(REMOVE_RECURSE
  "libambb_sim.a"
)
