#include "runner/registry.hpp"

#include <algorithm>
#include <cstdlib>

#include "adversary/spec.hpp"
#include "bb/dolev_strong.hpp"
#include "bb/hotstuff_demo.hpp"
#include "bb/linear_bb.hpp"
#include "bb/phase_king.hpp"
#include "bb/quadratic_bb.hpp"
#include "common/check.hpp"
#include "ext/extension.hpp"

namespace ambb {

namespace {

RunResult run_linear_with(const RunRequest& rq, linear::Options opts) {
  const CommonParams& p = rq.params;
  linear::LinearConfig cfg;
  cfg.n = p.n;
  cfg.f = p.f;
  cfg.slots = p.slots;
  cfg.seed = p.seed;
  cfg.eps = p.eps;
  cfg.kappa_bits = p.kappa_bits;
  cfg.value_bits = p.value_bits;
  cfg.opts = opts;
  cfg.adversary = p.adversary;
  cfg.node_jobs = p.node_jobs;
  cfg.trace = rq.trace;
  return run_linear(cfg);
}

std::vector<ProtocolInfo> build() {
  std::vector<ProtocolInfo> out;

  const AdversaryPolicy lin_policy{
      {"none", "silent", "equivocate", "selective", "flood", "mixed", "drop",
       "chaos", "adaptive-erase"},
      /*liveness_failures=*/{},
      /*sched_may_stall=*/false};
  auto lin_max_f = [](std::uint32_t n) {
    // f <= (1/2 - eps) n with eps = 0.1, i.e. floor(2n/5) — exact integer
    // arithmetic; 0.4 is not representable in binary floating point, so
    // static_cast<uint32_t>(0.4 * n) leaves the bound at the mercy of
    // rounding.
    return (2 * n) / 5;
  };

  out.push_back(ProtocolInfo{
      "linear",
      "This work, f <= (1/2-eps)n, amortized O(kn)",
      lin_policy,
      lin_max_f,
      [](const RunRequest& rq) {
        return run_linear_with(rq, linear::Options::paper());
      }});

  out.push_back(ProtocolInfo{
      "mr-baseline",
      "Momose-Ren style, f <= (1/2-eps)n, O(kn^2) per slot",
      lin_policy,
      lin_max_f,
      [](const RunRequest& rq) {
        return run_linear_with(rq, linear::Options::mr_baseline());
      }});

  out.push_back(ProtocolInfo{
      "linear-nomem",
      "Ablation: Algorithm 4 without cross-slot accusation memory",
      lin_policy,
      lin_max_f,
      [](const RunRequest& rq) {
        return run_linear_with(rq, linear::Options::no_memory());
      }});

  {
    AdversaryPolicy policy = lin_policy;
    // Without the dissemination path, a selective (or randomly lossy)
    // leader's partial commit permanently starves the rest (no quorum
    // remains in later epochs); same starvation under schedules.
    policy.liveness_failures = {"selective", "mixed", "drop", "chaos"};
    policy.sched_may_stall = true;
    out.push_back(ProtocolInfo{
        "linear-noquery",
        "Ablation: Algorithm 4 without the Query/Respond path",
        std::move(policy),
        lin_max_f,
        [](const RunRequest& rq) {
          return run_linear_with(rq, linear::Options::no_query());
        }});
  }

  out.push_back(ProtocolInfo{
      "quadratic",
      "This work, f < n, amortized O(kn^2)",
      AdversaryPolicy{{"none", "silent", "equivocate", "conspiracy",
                       "lateprop", "floodaccuse", "framer"},
                      {},
                      false},
      [](std::uint32_t n) { return n - 1; },
      [](const RunRequest& rq) {
        const CommonParams& p = rq.params;
        quad::QuadConfig cfg;
        cfg.n = p.n;
        cfg.f = p.f;
        cfg.slots = p.slots;
        cfg.seed = p.seed;
        cfg.kappa_bits = p.kappa_bits;
        cfg.value_bits = p.value_bits;
        cfg.adversary = p.adversary;
        cfg.node_jobs = p.node_jobs;
        cfg.trace = rq.trace;
        return run_quadratic(cfg);
      }});

  const AdversaryPolicy ds_policy{
      {"none", "silent", "equivocate", "stagger"}, {}, false};
  auto run_ds = [](const RunRequest& rq, bool use_multisig) {
    const CommonParams& p = rq.params;
    ds::DsConfig cfg;
    cfg.n = p.n;
    cfg.f = p.f;
    cfg.slots = p.slots;
    cfg.seed = p.seed;
    cfg.use_multisig = use_multisig;
    cfg.kappa_bits = p.kappa_bits;
    cfg.value_bits = p.value_bits;
    cfg.adversary = p.adversary;
    cfg.node_jobs = p.node_jobs;
    cfg.trace = rq.trace;
    return run_dolev_strong(cfg);
  };

  out.push_back(ProtocolInfo{
      "dolev-strong",
      "Dolev-Strong, f < n, plain signatures, O(kn^3) per slot",
      ds_policy,
      [](std::uint32_t n) { return n - 1; },
      [run_ds](const RunRequest& rq) { return run_ds(rq, false); }});

  out.push_back(ProtocolInfo{
      "dolev-strong-msig",
      "Dolev-Strong, f < n, multi-signatures, O(kn^2 + n^3) per slot",
      ds_policy,
      [](std::uint32_t n) { return n - 1; },
      [run_ds](const RunRequest& rq) { return run_ds(rq, true); }});

  out.push_back(ProtocolInfo{
      "phase-king",
      "Berman et al. family, f < n/3, no crypto (see DESIGN.md note)",
      AdversaryPolicy{{"none", "silent", "equivocate", "confuse"}, {}, false},
      [](std::uint32_t n) { return (n - 1) / 3; },
      [](const RunRequest& rq) {
        const CommonParams& p = rq.params;
        pk::PkConfig cfg;
        cfg.n = p.n;
        cfg.f = p.f;
        cfg.slots = p.slots;
        cfg.seed = p.seed;
        cfg.kappa_bits = p.kappa_bits;
        cfg.value_bits = p.value_bits;
        cfg.adversary = p.adversary;
        cfg.node_jobs = p.node_jobs;
        cfg.trace = rq.trace;
        return run_phase_king(cfg);
      }});

  // Long-message extension rows (DESIGN.md §13): erasure-coded dispersal
  // with the named family as the digest+receipt base phase. Dispersal
  // needs k = n-2f >= 1 chunks to survive f withheld receipts and f
  // selectively-planted columns, so f is capped at (n-1)/2 on top of the
  // base family's own bound. The dispersal phase takes the fault
  // schedule; named deviations of the base families do not apply.
  {
    const AdversaryPolicy ext_policy{{"none"}, {}, /*sched_may_stall=*/false};
    struct ExtRow {
      const char* name;
      const char* base;
      const char* row;
      std::function<std::uint32_t(std::uint32_t)> base_max_f;
    };
    const std::vector<ExtRow> ext_rows = {
        {"ext:linear", "linear",
         "NRSX extension over Algorithm 4, O(l n) dispersal", lin_max_f},
        {"ext:quadratic", "quadratic",
         "NRSX extension over the quadratic family",
         [](std::uint32_t n) { return n - 1; }},
        {"ext:dolev-strong", "dolev-strong",
         "NRSX extension over Dolev-Strong (plain signatures)",
         [](std::uint32_t n) { return n - 1; }},
        {"ext:dolev-strong-msig", "dolev-strong-msig",
         "NRSX extension over Dolev-Strong (multi-signatures)",
         [](std::uint32_t n) { return n - 1; }},
    };
    for (const ExtRow& row : ext_rows) {
      out.push_back(ProtocolInfo{
          row.name,
          row.row,
          ext_policy,
          [base_max_f = row.base_max_f](std::uint32_t n) {
            return std::min(base_max_f(n), (n - 1) / 2);
          },
          [base = std::string(row.base)](const RunRequest& rq) {
            const CommonParams& p = rq.params;
            ext::ExtConfig cfg;
            cfg.n = p.n;
            cfg.f = p.f;
            cfg.slots = p.slots;
            cfg.seed = p.seed;
            cfg.payload_bytes = p.payload_bytes;
            cfg.kappa_bits = p.kappa_bits;
            cfg.eps = p.eps;
            cfg.base = base;
            cfg.adversary = p.adversary;
            cfg.node_jobs = p.node_jobs;
            cfg.trace = rq.trace;
            return ext::run_extension(cfg);
          }});
    }
  }

  out.push_back(ProtocolInfo{
      "hotstuff",
      "Appendix A: HotStuff without a fallback path",
      // No fallback: a selective (or schedule-silenced) leader stalls up
      // to f honest nodes permanently.
      AdversaryPolicy{{"none", "selective"},
                      {"selective"},
                      /*sched_may_stall=*/true},
      [](std::uint32_t n) { return (n - 1) / 3; },
      [](const RunRequest& rq) {
        const CommonParams& p = rq.params;
        hs::HsConfig cfg;
        cfg.n = p.n;
        cfg.f = p.f;
        cfg.slots = p.slots;
        cfg.seed = p.seed;
        cfg.kappa_bits = p.kappa_bits;
        cfg.value_bits = p.value_bits;
        cfg.adversary = p.adversary;
        cfg.node_jobs = p.node_jobs;
        cfg.trace = rq.trace;
        return run_hotstuff_demo(cfg);
      }});

  return out;
}

}  // namespace

bool AdversaryPolicy::accepts(const std::string& spec) const {
  if (adversary::is_schedule_spec(spec)) return true;
  return std::find(named.begin(), named.end(), spec) != named.end();
}

bool AdversaryPolicy::may_stall(const std::string& spec) const {
  if (adversary::is_schedule_spec(spec)) return sched_may_stall;
  return std::find(liveness_failures.begin(), liveness_failures.end(),
                   spec) != liveness_failures.end();
}

const std::vector<ProtocolInfo>& protocols() {
  static const std::vector<ProtocolInfo> kProtocols = build();
  return kProtocols;
}

const ProtocolInfo& protocol(const std::string& name) {
  for (const auto& p : protocols()) {
    if (p.name == name) return p;
  }
  AMBB_CHECK_MSG(false, "unknown protocol '" << name << "'");
  // AMBB_CHECK_MSG always throws, but it expands to a do/while the
  // compiler cannot see through; without this the function falls off the
  // end of a non-void return path (-Wreturn-type / UB if the macro ever
  // changed).
  std::abort();
}

bool accepts_adversary(const ProtocolInfo& info, const std::string& spec) {
  return info.policy.accepts(spec);
}

bool may_stall(const ProtocolInfo& info, const std::string& spec) {
  return info.policy.may_stall(spec);
}

}  // namespace ambb
