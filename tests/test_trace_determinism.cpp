// Engine-level trace determinism: ambb_sweep --trace-dir writes one
// JSONL file per job, named by SUBMISSION order — so running the same
// sweep serially (--jobs 1) and on a worker pool (--jobs N) must produce
// identical directory listings with byte-identical file contents. Each
// job closure owns its own stream + sink, so this also exercises the
// "parallel workers never share a sink" contract under TSan (this test
// carries the `engine` label; scripts/ci.sh runs that suite thread-
// sanitized).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "engine/sweep.hpp"

namespace ambb::engine {
namespace {

namespace fs = std::filesystem;

std::vector<SweepJob> small_grid() {
  SweepSpec spec;
  spec.name = "det";
  spec.protocol = "linear";
  spec.ns = {8};
  spec.fs = {2};
  spec.slots_list = {4};
  spec.adversaries = {"none", "mixed"};
  spec.seed_begin = 1;
  spec.seed_end = 2;
  return expand(spec);
}

std::map<std::string, std::string> run_into(const std::string& dir,
                                            unsigned jobs) {
  fs::remove_all(dir);
  fs::create_directories(dir);
  Engine eng(jobs);
  const auto outcomes = eng.run(to_engine_jobs(small_grid(), dir));
  for (const auto& out : outcomes) EXPECT_TRUE(out.completed) << out.label;

  std::map<std::string, std::string> files;  // name -> contents
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    files[entry.path().filename().string()] = text.str();
  }
  return files;
}

TEST(TraceDeterminism, SerialAndParallelTracesAreByteIdentical) {
  const std::string base =
      (fs::temp_directory_path() / "ambb_trace_determinism").string();
  const auto serial = run_into(base + "_serial", 1);
  const auto parallel = run_into(base + "_parallel", 4);

  ASSERT_EQ(serial.size(), small_grid().size());
  ASSERT_EQ(parallel.size(), serial.size());
  for (const auto& [name, contents] : serial) {
    const auto it = parallel.find(name);
    ASSERT_NE(it, parallel.end()) << "missing trace file " << name;
    EXPECT_EQ(it->second, contents) << "trace drifted with --jobs: " << name;
    EXPECT_FALSE(contents.empty()) << name;
  }

  fs::remove_all(base + "_serial");
  fs::remove_all(base + "_parallel");
}

TEST(TraceDeterminism, TracePathNamesBySubmissionOrder) {
  EXPECT_EQ(trace_path("out", 0, "linear/none/n8"),
            "out/0000_linear-none-n8.jsonl");
  EXPECT_EQ(trace_path("out", 37, "a b:c"), "out/0037_a-b-c.jsonl");
}

TEST(TraceDeterminism, EmptyTraceDirDegeneratesToPlainJobs) {
  Engine eng(2);
  const auto grid = small_grid();
  const auto traced = eng.run(to_engine_jobs(grid, ""));
  const auto plain = eng.run(to_engine_jobs(grid));
  ASSERT_EQ(traced.size(), plain.size());
  for (std::size_t i = 0; i < traced.size(); ++i) {
    EXPECT_EQ(traced[i].result.honest_bits, plain[i].result.honest_bits);
  }
}

}  // namespace
}  // namespace ambb::engine
