// Structured protocol event tracing (DESIGN.md §12).
//
// A TraceSink receives typed events at the paper-meaningful decision
// points of every protocol family: slot/epoch boundaries, commits,
// accusations, trust-graph edge removals, cross-slot corrupt votes,
// certificate formation, adversary fault activations, and one RoundEnd
// per simulator round carrying that round's RoundStats.
//
// Sinks are pure observers: emitting an event must never feed back into
// the execution, so a run with a sink attached is bit-identical to the
// same run without one. Events carry no wall-clock (the ns_* phase
// timers of RoundStats are deliberately omitted from JsonlSink output)
// so trace files are deterministic goldens: same params + seed => same
// bytes, regardless of machine, thread count, or submission order.
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "common/types.hpp"
#include "sim/stats.hpp"

namespace ambb::trace {

enum class EventKind : std::uint8_t {
  kSlotStart,         ///< driver: a new slot's first round begins
  kSlotCommit,        ///< node: CommitLog record for (node, slot)
  kEpochPhase,        ///< driver: named phase boundary within a slot
  kAccusation,        ///< node accuses subject (Alg. 4 / TrustCast)
  kTrustEdgeRemoved,  ///< node removes edge (subject, peer) (Alg. 5.1)
  kCorruptVote,       ///< node casts <corrupt, subject> (Alg. 5.2 DS phase)
  kCertFormed,        ///< node combines a threshold cert / proof (Alg. 4)
  kAdversaryAction,   ///< fault primitive fired (corrupt/erase/silence/...)
  kRoundEnd,          ///< simulator: round finished, stats attached
  kChunkDisperse,     ///< ext: slot sender unicasts coded chunks (§13)
  kChunkEcho,         ///< ext: node multicasts its own verified column
  kReconstruct,       ///< ext: node's end-of-run decode decision
  kDeliveryDelayed,   ///< scheduler: delivery deferred past lock-step (§16)
};

/// Stable lowercase name used in JSONL output and timelines.
const char* event_kind_name(EventKind k);

/// One trace event. Fields are kind-dependent; unused fields keep their
/// defaults and are omitted from JSONL output. `detail` must point at a
/// string literal (or other storage outliving the run) — CollectorSink
/// stores Events by value without copying the string.
struct Event {
  EventKind kind = EventKind::kRoundEnd;
  Round round = 0;
  Slot slot = 0;
  Epoch epoch = 0;
  NodeId node = kNoNode;     ///< acting node (emitter)
  NodeId subject = kNoNode;  ///< accused / removed / voted-against node
  NodeId peer = kNoNode;     ///< second endpoint of a removed edge
  Value value = 0;           ///< committed / certified value
  std::uint64_t count = 0;   ///< kind-specific magnitude (e.g. erase index)
  const char* detail = "";   ///< kind-specific tag (phase / fault name)
  RoundStats stats{};        ///< kRoundEnd only
};

/// Sink interface. Implementations must tolerate events arriving in
/// program order from a single thread (one run = one sink; the engine
/// gives every parallel job its own sink instance).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const Event& e) = 0;
};

/// Null-check helper: every emission site calls through this so the
/// no-sink path costs one pointer test.
inline void emit(TraceSink* sink, const Event& e) {
  if (sink != nullptr) sink->on_event(e);
}

/// Default sink: discards everything (kept for call sites that want a
/// non-null sink object; passing nullptr is equally valid).
class NullSink final : public TraceSink {
 public:
  void on_event(const Event&) override {}
};

/// Test sink: stores events for assertions.
class CollectorSink final : public TraceSink {
 public:
  void on_event(const Event& e) override { events_.push_back(e); }

  const std::vector<Event>& events() const { return events_; }

  std::vector<Event> of_kind(EventKind k) const {
    std::vector<Event> out;
    for (const Event& e : events_) {
      if (e.kind == k) out.push_back(e);
    }
    return out;
  }

  std::size_t count(EventKind k) const {
    std::size_t c = 0;
    for (const Event& e : events_) c += (e.kind == k) ? 1 : 0;
    return c;
  }

 private:
  std::vector<Event> events_;
};

/// Render one event as a single JSON line (no trailing newline). Field
/// order is fixed per kind; all values are decimal integers or literal
/// strings, so output is locale- and platform-independent. kRoundEnd
/// carries the deterministic RoundStats counters but NOT the ns_*
/// wall-clock timers.
void to_jsonl(std::ostream& os, const Event& e);

/// Deterministic JSONL sink: one line per event to the given stream.
/// The stream reference must outlive the sink.
class JsonlSink final : public TraceSink {
 public:
  explicit JsonlSink(std::ostream& os) : os_(os) {}

  void on_event(const Event& e) override {
    to_jsonl(os_, e);
    os_ << '\n';
  }

 private:
  std::ostream& os_;
};

}  // namespace ambb::trace
