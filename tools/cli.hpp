// Shared command-line plumbing for the ambb_* tools.
//
// Every tool walks argv with a Parser (consistent "<tool>: <flag> needs
// a value" / "unknown argument" error text), opts into the uniform flag
// set via CommonFlags (--jobs, --node-jobs, --out, --filter, --net) and
// resolves registry protocols through resolve_protocol, which prints an
// "unknown protocol 'X', did you mean 'Y'?" suggestion plus the
// available list instead of aborting. Tool-specific flags stay in the
// tool; only the shared behaviour lives here.
#pragma once

#include <cstdint>
#include <string>

#include "runner/registry.hpp"

namespace ambb::cli {

/// One pass over argv. Usage:
///
///   cli::Parser p("ambb_sweep", argc, argv);
///   while (p.next()) {
///     if (cli::handle_common_flag(p, &cf, &ok)) { if (!ok) return false; }
///     else if (p.arg() == "--spec") { if (!p.to_str(&spec)) return false; }
///     else { p.unknown(); return false; }
///   }
class Parser {
 public:
  Parser(const char* tool, int argc, char** argv)
      : tool_(tool), argc_(argc), argv_(argv) {}

  /// Advance to the next argument. False once argv is exhausted.
  bool next();

  /// The current argument (a flag, for well-formed input).
  const std::string& arg() const { return arg_; }

  /// Consume the current flag's value token. Prints "<tool>: <flag>
  /// needs a value" and returns nullptr when argv ends first.
  const char* value();

  /// value() + strict numeric parse (digits only, overflow-checked).
  /// False + "<tool>: <flag> expects a number, got '...'" on failure.
  bool to_u32(std::uint32_t* out);
  bool to_u64(std::uint64_t* out);
  bool to_unsigned(unsigned* out);
  /// value() + strtod; false + error on trailing garbage.
  bool to_double(double* out);
  /// value() into a string; false when the value is missing.
  bool to_str(std::string* out);

  /// "<tool>: unknown argument '<arg>'" on stderr.
  void unknown() const;

  const char* tool() const { return tool_; }

 private:
  const char* tool_;
  int argc_;
  char** argv_;
  int i_ = 0;
  std::string arg_;
};

/// Which of the uniform flags a tool accepts.
enum : unsigned {
  kJobs = 1u << 0,
  kNodeJobs = 1u << 1,
  kOut = 1u << 2,
  kFilter = 1u << 3,
  kNet = 1u << 4,
};

/// The uniform flag set. A tool sets `accept` (and its own `out`
/// default), then calls handle_common_flag for every argument.
struct CommonFlags {
  unsigned accept = kJobs | kNodeJobs | kOut | kFilter | kNet;
  unsigned jobs = 0;           ///< --jobs: 0 = one per hardware thread
  unsigned node_jobs = 1;      ///< --node-jobs: per-run shard threads
  std::string out;             ///< --out: BENCH_<out>.json basename
  std::string filter;          ///< --filter: label substring
  std::string net = "lockstep";  ///< --net: delay policy (DESIGN.md §16)
};

/// True when p.arg() is an accepted uniform flag (value consumed).
/// *ok is false when the flag's value was missing or malformed —
/// including a --net spec that fails parse_net_policy.
bool handle_common_flag(Parser& p, CommonFlags* cf, bool* ok);

/// find_protocol + diagnostics: on an unknown name prints
///   <tool>: unknown protocol 'X', did you mean 'Y'?
///   <tool>: available protocols: ...
/// and returns nullptr.
const ProtocolInfo* resolve_protocol(const char* tool,
                                     const std::string& name);

}  // namespace ambb::cli
