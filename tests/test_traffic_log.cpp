// Boundary cases of the shared-record traffic representation
// (sim/net.hpp): TrafficLog::record_of at record bases and fanout edges,
// TrafficView cursor behaviour under non-sequential access, and erase
// indices at fanout boundaries (the delivery-index ranges the strongly
// adaptive adversary addresses).
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "sim/cost.hpp"
#include "sim/net.hpp"

namespace ambb {
namespace {

using Log = TrafficLog<int>;
using View = TrafficView<int>;

TEST(TrafficLog, EmptyLogHasNoDeliveriesAndRecordOfThrows) {
  Log log;
  log.reset(4);
  EXPECT_EQ(log.deliveries(), 0u);
  EXPECT_TRUE(log.records().empty());
  // No delivery index is valid in an empty log.
  EXPECT_THROW(log.record_of(0), CheckError);
}

TEST(TrafficLog, RecordOfAtExactBaseOfEachRecord) {
  Log log;
  log.reset(3);  // n = 3
  log.add_unicast(0, 1, 10);  // record 0: deliveries [0, 1)
  log.add_multicast(1, 20);   // record 1: deliveries [1, 4)
  log.add_unicast(2, 0, 30);  // record 2: deliveries [4, 5)

  ASSERT_EQ(log.deliveries(), 5u);
  EXPECT_EQ(log.records()[0].base, 0u);
  EXPECT_EQ(log.records()[1].base, 1u);
  EXPECT_EQ(log.records()[2].base, 4u);

  // Exactly at each record's base.
  EXPECT_EQ(log.record_of(0), 0u);
  EXPECT_EQ(log.record_of(1), 1u);
  EXPECT_EQ(log.record_of(4), 2u);
}

TEST(TrafficLog, LastDeliveryOfAMulticastBelongsToIt) {
  Log log;
  log.reset(4);
  log.add_multicast(2, 7);    // record 0: deliveries [0, 4)
  log.add_unicast(0, 3, 8);   // record 1: deliveries [4, 5)

  // The last delivery of the multicast (index base + n - 1 = 3) must
  // resolve to the multicast, not the following unicast.
  EXPECT_EQ(log.record_of(3), 0u);
  EXPECT_EQ(log.record_of(4), 1u);
  // One past the last delivery is out of range entirely.
  EXPECT_THROW(log.record_of(5), CheckError);

  // Recipients across the multicast's whole range, in recipient order.
  const auto& mc = log.records()[0];
  for (std::size_t d = 0; d < 4; ++d) {
    EXPECT_EQ(log.recipient_of(mc, d), static_cast<NodeId>(d));
  }
  EXPECT_EQ(log.recipient_of(log.records()[1], 4), NodeId{3});
}

TEST(TrafficLog, FanoutOfUnicastAndMulticast) {
  Log log;
  log.reset(5);
  log.add_unicast(0, 2, 1);
  log.add_multicast(1, 2);
  EXPECT_EQ(log.fanout(log.records()[0]), 1u);
  EXPECT_EQ(log.fanout(log.records()[1]), 5u);
}

TEST(TrafficView, SequentialAndRandomAccessAgreeAcrossBoundaries) {
  Log log;
  log.reset(3);
  log.add_unicast(0, 2, 100);  // [0, 1)
  log.add_multicast(1, 200);   // [1, 4)
  log.add_multicast(2, 300);   // [4, 7)
  log.add_unicast(1, 0, 400);  // [7, 8)

  const View view(&log, log.deliveries());
  ASSERT_EQ(view.size(), 8u);

  // Forward scan (cursor fast path).
  std::vector<int> forward;
  for (std::size_t d = 0; d < view.size(); ++d) {
    forward.push_back(view[d].msg);
  }
  EXPECT_EQ(forward, (std::vector<int>{100, 200, 200, 200, 300, 300, 300,
                                       400}));

  // Backward scan and boundary hops (cursor re-seek path) must agree.
  for (std::size_t d = view.size(); d-- > 0;) {
    EXPECT_EQ(view[d].msg, forward[d]) << "delivery " << d;
  }
  // Jump directly between fanout boundaries.
  EXPECT_EQ(view[7].msg, 400);
  EXPECT_EQ(view[1].msg, 200);
  EXPECT_EQ(view[6].msg, 300);
  EXPECT_EQ(view[0].msg, 100);
  EXPECT_EQ(view[3].msg, 200);  // last delivery of first multicast
  EXPECT_EQ(view[4].msg, 300);  // first delivery of second multicast

  // Senders and recipients at the same boundaries.
  EXPECT_EQ(view[3].from, NodeId{1});
  EXPECT_EQ(view[3].to, NodeId{2});
  EXPECT_EQ(view[4].from, NodeId{2});
  EXPECT_EQ(view[4].to, NodeId{0});
}

TEST(TrafficView, PrefixLimitExcludesLaterRecords) {
  Log log;
  log.reset(3);
  log.add_multicast(0, 1);  // honest traffic: [0, 3)
  const View rushed(&log, log.deliveries());
  // Byzantine actor appends to the same log; the view's limit is fixed.
  log.add_unicast(2, 0, 99);
  ASSERT_EQ(log.deliveries(), 4u);
  EXPECT_EQ(rushed.size(), 3u);
  EXPECT_THROW(rushed[3], CheckError);
  EXPECT_EQ(rushed[2].msg, 1);  // still readable after the append
}

/// Erase indices at fanout boundaries: erasing the first / last delivery
/// of a multicast removes exactly that (sender, recipient) copy, and the
/// accounting charge drops by exactly one unit per erased delivery.
TEST(Simulation, EraseAtFanoutBoundariesRemovesExactlyOneDelivery) {
  struct Silent : Actor<int> {
    void on_round(Round, std::span<const Delivery<int>>,
                  const TrafficView<int>&, RoundApi<int>&) override {}
  };
  struct Multicaster : Actor<int> {
    void on_round(Round r, std::span<const Delivery<int>>,
                  const TrafficView<int>&, RoundApi<int>& api) override {
      if (r == 0) api.multicast(7);
    }
  };
  // Erase the multicast's FIRST (base) and LAST (base + n - 1) delivery.
  struct EdgeEraser : Adversary<int> {
    std::vector<NodeId> initial_corruptions() override { return {0}; }
    std::unique_ptr<Actor<int>> actor_for(NodeId) override {
      return std::make_unique<Multicaster>();
    }
    void observe_round(Round r, const TrafficView<int>& traffic,
                       CorruptionCtl<int>& ctl) override {
      if (r != 0) return;
      ASSERT_EQ(traffic.size(), 4u);  // one multicast, n = 4
      ctl.erase(0);
      ctl.erase(3);
    }
  };

  const std::uint32_t n = 4;
  CostLedger ledger({"toy"});
  Accounting<int> acct;
  acct.size_bits = [](const int&) { return std::uint64_t{8}; };
  acct.kind = [](const int&) { return MsgKind{0}; };
  acct.slot = [](const int&, Round) { return Slot{1}; };
  Simulation<int> sim(n, /*f=*/1, &ledger, acct);
  for (NodeId v = 0; v < n; ++v) sim.set_actor(v, std::make_unique<Silent>());
  EdgeEraser adv;
  SimConfig<int> sc;
  sc.adversary = &adv;
  sim.configure(sc);

  sim.step();

  // Fanout 4; erased {0, 3}; the free self-copy IS delivery 0 (already
  // erased, so no separate deduction). Charged copies: 4 - 2 = 2.
  EXPECT_EQ(ledger.adversary_bits_total(), 2u * 8u);
  EXPECT_EQ(sim.round_stats()[0].erasures, 2u);

  sim.step();  // deliver: recipients 1 and 2 got it, 0 and 3 did not
  // (Inbox contents are protocol-internal; the stats row already pinned
  // the delivery count: 4 fanned out, 2 erased.)
  EXPECT_EQ(sim.round_stats()[0].deliveries, 4u);
}

}  // namespace
}  // namespace ambb
