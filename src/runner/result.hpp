// Common result type produced by every protocol driver, plus checkers for
// the multi-shot BB properties of Definition 2.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sim/commit_log.hpp"
#include "sim/stats.hpp"

namespace ambb {

struct RunResult {
  std::uint32_t n = 0;
  std::uint32_t f = 0;
  Slot slots = 0;           ///< number of slots L that were run
  Round rounds = 0;         ///< lock-step rounds executed

  std::uint64_t honest_bits = 0;     ///< C(L, n, f): the paper's metric
  std::uint64_t adversary_bits = 0;  ///< bits sent by corrupt nodes (context)
  std::uint64_t honest_msgs = 0;

  std::vector<std::uint64_t> per_slot_bits;  ///< index by slot, [0] unused
  std::vector<std::string> kind_names;
  std::vector<std::uint64_t> per_kind_bits;

  CommitLog commits{1};
  std::vector<std::uint8_t> corrupt;   ///< final corruption flags, size n
  std::vector<NodeId> senders;         ///< sender of each slot, [0] unused
  std::vector<Value> sender_inputs;    ///< honest sender's input per slot

  /// One entry per executed round (see sim/stats.hpp).
  std::vector<RoundStats> round_stats;

  /// Aggregate of round_stats (all zeros if the driver did not fill it).
  RoundStatsSummary stats_summary() const { return summarize(round_stats); }

  /// Average honest bits per slot over the first `upto` slots (all if 0).
  /// Quiet NaN for a zero-slot run (see CostLedger::amortized).
  double amortized(Slot upto = 0) const;

  /// Honest bits per slot over slots (from, to] — used to measure the
  /// steady-state amortized cost after one-time costs have been paid.
  double amortized_tail(Slot from) const;

  bool is_honest(NodeId v) const { return corrupt[v] == 0; }
};

/// Each checker returns human-readable violations; empty means the
/// property holds for this execution.
std::vector<std::string> check_consistency(const RunResult& r);
std::vector<std::string> check_termination(const RunResult& r);
std::vector<std::string> check_validity(const RunResult& r);

/// All three of the above.
std::vector<std::string> check_all(const RunResult& r);

}  // namespace ambb
