#include "common/byte_buf.hpp"

#include "common/check.hpp"

namespace ambb {

void Encoder::put_u16(std::uint16_t v) {
  put_u8(static_cast<std::uint8_t>(v >> 8));
  put_u8(static_cast<std::uint8_t>(v));
}

void Encoder::put_u32(std::uint32_t v) {
  put_u16(static_cast<std::uint16_t>(v >> 16));
  put_u16(static_cast<std::uint16_t>(v));
}

void Encoder::put_u64(std::uint64_t v) {
  put_u32(static_cast<std::uint32_t>(v >> 32));
  put_u32(static_cast<std::uint32_t>(v));
}

void Encoder::put_bytes(std::span<const std::uint8_t> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void Encoder::put_tag(std::string_view tag) {
  // Length-prefixed so distinct tag sequences cannot collide.
  put_u16(static_cast<std::uint16_t>(tag.size()));
  for (char c : tag) put_u8(static_cast<std::uint8_t>(c));
}

std::uint8_t Decoder::get_u8() {
  AMBB_CHECK_MSG(pos_ < buf_.size(), "decoder underrun");
  return buf_[pos_++];
}

std::uint16_t Decoder::get_u16() {
  std::uint16_t hi = get_u8();
  return static_cast<std::uint16_t>(hi << 8 | get_u8());
}

std::uint32_t Decoder::get_u32() {
  std::uint32_t hi = get_u16();
  return hi << 16 | get_u16();
}

std::uint64_t Decoder::get_u64() {
  std::uint64_t hi = get_u32();
  return hi << 32 | get_u32();
}

std::vector<std::uint8_t> Decoder::get_bytes(std::size_t len) {
  AMBB_CHECK_MSG(pos_ + len <= buf_.size(), "decoder underrun");
  std::vector<std::uint8_t> out(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
  pos_ += len;
  return out;
}

}  // namespace ambb
