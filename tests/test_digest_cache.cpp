// Interning caches (DESIGN.md §14) are pure observers: every answer they
// return must be bit-identical to the uncached computation, under hits,
// misses, forced index collisions, and the long-key spill path. Also pins
// the SHA-256 span/string_view overload agreement and the single-block
// finalize_block fast path the PRF keys rely on.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/intern.hpp"
#include "crypto/sha256.hpp"

namespace ambb {
namespace {

std::vector<std::uint8_t> bytes_of(std::size_t len, std::uint8_t seed) {
  std::vector<std::uint8_t> v(len);
  for (std::size_t i = 0; i < len; ++i) {
    v[i] = static_cast<std::uint8_t>(seed + 37 * i);
  }
  return v;
}

std::span<const std::uint8_t> as_span(const std::vector<std::uint8_t>& v) {
  return {v.data(), v.size()};
}

TEST(DigestCache, HashMatchesDirectSha256AcrossKeyLengths) {
  DigestCache dc(/*log2_entries=*/6);
  // Straddle the inline-key threshold (96 bytes of domain + canonical):
  // empty, short, exactly-at-boundary, and long spill keys.
  for (std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{31},
                          std::size_t{90}, std::size_t{96}, std::size_t{97},
                          std::size_t{1000}}) {
    const auto data = bytes_of(len, static_cast<std::uint8_t>(len));
    const Digest direct = Sha256::hash(as_span(data));
    EXPECT_EQ(dc.hash("vote", as_span(data)), direct) << "len " << len;
    // Second lookup is a hit and must return the same digest.
    EXPECT_EQ(dc.hash("vote", as_span(data)), direct) << "len " << len;
  }
  EXPECT_GT(dc.stats().hits, 0u);
  EXPECT_GT(dc.stats().misses, 0u);
}

TEST(DigestCache, DomainTagNeverFeedsTheHash) {
  DigestCache dc(/*log2_entries=*/6);
  const auto data = bytes_of(40, 7);
  const Digest direct = Sha256::hash(as_span(data));
  // Different domain tags, same bytes: distinct cache keys, identical
  // digests (the tag names the encoding family, it is not hashed).
  EXPECT_EQ(dc.hash("vote", as_span(data)), direct);
  EXPECT_EQ(dc.hash("commit", as_span(data)), direct);
  EXPECT_EQ(dc.hash("prop", as_span(data)), direct);
}

TEST(DigestCache, CollisionsInATinyCacheNeverAliasAcrossDomains) {
  // The smallest cache (two entries) with eight distinct domain tags:
  // by pigeonhole, keys collide on every round. Full-key comparison must
  // detect each mismatch and recompute — an entry written under one
  // domain tag may never answer for another.
  DigestCache dc(/*log2_entries=*/1);
  ASSERT_EQ(dc.capacity(), 2u);

  const auto data = bytes_of(32, 3);
  const Digest direct = Sha256::hash(as_span(data));
  for (int round = 0; round < 3; ++round) {
    for (const char* dom : {"vote", "commit", "accuse", "mrk-node", "prop",
                            "th", "thshare", "sig"}) {
      EXPECT_EQ(dc.hash(dom, as_span(data)), direct) << dom;
    }
  }
  // Eight keys cycling through two slots: overwrites of live entries are
  // unavoidable and must be counted as evictions, never served as hits.
  EXPECT_GT(dc.stats().evictions, 0u);

  // Same domain, different canonical bytes of equal length must also be
  // told apart by the byte compare.
  const auto other = bytes_of(32, 91);
  EXPECT_EQ(dc.hash("vote", as_span(other)), Sha256::hash(as_span(other)));
}

TEST(DigestCache, HitsAndMissesAreCounted) {
  DigestCache dc(/*log2_entries=*/8);
  const auto a = bytes_of(16, 1);
  dc.hash("x", as_span(a));
  EXPECT_EQ(dc.stats().misses, 1u);
  EXPECT_EQ(dc.stats().hits, 0u);
  dc.hash("x", as_span(a));
  EXPECT_EQ(dc.stats().misses, 1u);
  EXPECT_EQ(dc.stats().hits, 1u);
}

TEST(VerifyCache, FindStoreRoundTripAndCollisionEviction) {
  VerifyCache vc(/*log2_entries=*/1);  // two entries
  ASSERT_EQ(vc.capacity(), 2u);

  // Mirror of VerifyCache::index_of at mask = 1, to construct a digest
  // that deterministically collides with d1's slot.
  auto slot = [](std::uint32_t owner, std::uint64_t domain, const Digest& d) {
    std::uint64_t h = 0;
    for (int i = 0; i < 8; ++i) h = h << 8 | d[i];
    h ^= domain ^ (std::uint64_t{owner} << 32);
    return h & 1;
  };

  const Digest d1 = Sha256::hash("message-1");
  Digest d2{};
  for (int k = 2;; ++k) {
    d2 = Sha256::hash("message-" + std::to_string(k));
    if (slot(4, 11, d2) == slot(4, 11, d1)) break;
  }
  const Digest m1 = Sha256::hash("mac-1");
  const Digest m2 = Sha256::hash("mac-2");

  EXPECT_EQ(vc.find(/*owner=*/4, /*domain=*/11, d1), nullptr);
  vc.store(4, 11, d1, m1);
  const Digest* hit = vc.find(4, 11, d1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, m1);

  // Same digest, different owner / domain: full-key compare must miss
  // (whether or not the probe lands on d1's slot).
  EXPECT_EQ(vc.find(5, 11, d1), nullptr);
  EXPECT_EQ(vc.find(4, 12, d1), nullptr);

  // Colliding store overwrites (direct-mapped) and counts an eviction.
  vc.store(4, 11, d2, m2);
  EXPECT_EQ(vc.find(4, 11, d1), nullptr);
  const Digest* hit2 = vc.find(4, 11, d2);
  ASSERT_NE(hit2, nullptr);
  EXPECT_EQ(*hit2, m2);
  EXPECT_GT(vc.stats().evictions, 0u);
}

TEST(Sha256, StringViewOverloadIsTheSpanOverload) {
  const std::string s = "domain-separation probe \x01\x02\xff";
  const Digest via_sv = Sha256::hash(std::string_view(s));
  const Digest via_span = Sha256::hash(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  EXPECT_EQ(via_sv, via_span);

  Sha256 h1, h2;
  h1.update(std::string_view(s));
  h2.update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  EXPECT_EQ(h1.finalize(), h2.finalize());
}

TEST(Sha256, FinalizeBlockMatchesStreamingPath) {
  // finalize_block(mid, tail) must equal resume-update-finalize for every
  // tail length it accepts (0..55 bytes after a block-aligned prefix).
  Sha256 prefix;
  const auto block = bytes_of(64, 17);
  prefix.update(as_span(block));
  const Sha256Midstate mid = prefix.midstate();

  for (std::size_t tail_len = 0; tail_len <= 55; ++tail_len) {
    const auto tail = bytes_of(tail_len, static_cast<std::uint8_t>(tail_len));
    Sha256 stream(mid);
    stream.update(as_span(tail));
    EXPECT_EQ(Sha256::finalize_block(mid, as_span(tail)), stream.finalize())
        << "tail " << tail_len;
  }
}

}  // namespace
}  // namespace ambb
