// Direct tests of the Sequentiality property (Definition 2): slot k's
// sender may invoke bc_k only after bc_j committed everywhere for j < k,
// and causal inputs derived from previous decisions flow through intact.
#include <gtest/gtest.h>

#include "bb/atomic_broadcast.hpp"
#include "bb/linear_bb.hpp"
#include "bb/quadratic_bb.hpp"

namespace ambb {
namespace {

TEST(Sequentiality, CommitRoundsPrecedeNextSlotInvocation) {
  // Every honest node commits slot k strictly before slot k+1's proposal
  // round, under every adversary — the structural guarantee that makes
  // causal inputs sound.
  for (const char* adv : {"none", "silent", "selective", "mixed", "chaos"}) {
    linear::LinearConfig cfg;
    cfg.n = 14;
    cfg.f = 5;
    cfg.slots = 8;
    cfg.seed = 23;
    cfg.adversary = adv;
    auto r = linear::run_linear(cfg);
    ASSERT_TRUE(check_all(r).empty()) << adv;
    const linear::Schedule sched{cfg.f};
    for (Slot k = 1; k < cfg.slots; ++k) {
      const Round next_slot_start = k * sched.rounds_per_slot();
      for (NodeId v = 0; v < cfg.n; ++v) {
        if (r.corrupt[v]) continue;
        EXPECT_LT(r.commits.get(v, k).round, next_slot_start)
            << "node " << v << " slot " << k << " adv " << adv;
      }
    }
  }
}

TEST(Sequentiality, QuadCommitRoundsAreSlotOrdered) {
  quad::QuadConfig cfg;
  cfg.n = 9;
  cfg.f = 5;
  cfg.slots = 9;
  cfg.seed = 23;
  cfg.adversary = "conspiracy";
  auto r = quad::run_quadratic(cfg);
  ASSERT_TRUE(check_all(r).empty());
  const quad::Schedule sched{cfg.n, cfg.f};
  for (Slot k = 1; k < cfg.slots; ++k) {
    for (NodeId v = cfg.f; v < cfg.n; ++v) {
      EXPECT_LT(r.commits.get(v, k).round, k * sched.rounds_per_slot());
    }
  }
}

TEST(Sequentiality, CausalInputsChainThroughCommits) {
  // input_with_log: slot k's payload = f(committed value at slot k-1).
  // Verify the committed chain respects the recurrence at every honest
  // node even with Byzantine senders interleaved.
  linear::LinearConfig cfg;
  cfg.n = 12;
  cfg.f = 4;
  cfg.slots = 10;
  cfg.seed = 29;
  cfg.adversary = "silent";
  cfg.input_with_log = [&cfg](Slot k, const CommitLog& log) -> Value {
    Value parent = 1;
    if (k > 1) {
      const NodeId sender = (k - 1) % cfg.n;
      if (log.has(sender, k - 1)) parent = log.get(sender, k - 1).value;
    }
    return parent * 31 + k;
  };
  auto r = linear::run_linear(cfg);
  ASSERT_TRUE(check_all(r).empty());

  // Recompute the expected chain from the committed values themselves.
  for (Slot k = 2; k <= cfg.slots; ++k) {
    const NodeId sender = r.senders[k];
    if (r.corrupt[sender]) continue;  // corrupt senders: validity N/A
    Value parent = 1;
    const NodeId prev_sender = (k - 1) % cfg.n;
    if (r.commits.has(prev_sender, k - 1)) {
      parent = r.commits.get(prev_sender, k - 1).value;
    }
    const Value expected = parent * 31 + k;
    for (NodeId v = 0; v < cfg.n; ++v) {
      if (r.corrupt[v]) continue;
      EXPECT_EQ(r.commits.get(v, k).value, expected)
          << "slot " << k << " node " << v;
    }
  }
}

TEST(Sequentiality, CausalInputsSeeIdenticalPrefixEverywhere) {
  // Consistency makes "the value committed at slot k-1" well-defined: any
  // honest node's view of the prefix gives the same causal inputs.
  abc::AbcConfig cfg;
  cfg.n = 12;
  cfg.f = 4;
  cfg.slots = 8;
  cfg.seed = 31;
  cfg.adversary = "mixed";
  auto r = abc::run_atomic_broadcast(cfg);
  ASSERT_TRUE(abc::check_total_order(r).empty());
  // Fold each honest replica's log prefix; all folds must agree.
  std::uint64_t first_fold = 0;
  bool have = false;
  for (NodeId v = 0; v < cfg.n; ++v) {
    if (!r.is_honest(v)) continue;
    std::uint64_t fold = 0x12345;
    for (const auto& e : r.replicas[v].log()) {
      fold = fold * 1099511628211ULL ^ e.payload;
    }
    if (!have) {
      first_fold = fold;
      have = true;
    }
    EXPECT_EQ(fold, first_fold) << "replica " << v;
  }
}

}  // namespace
}  // namespace ambb
