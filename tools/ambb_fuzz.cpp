// ambb_fuzz — randomized fault-schedule campaigns over the protocol
// registry, with the Definition 2 properties as oracles.
//
//   ambb_fuzz [--schedules K] [--protocol NAME] [--n N] [--slots L]
//             [--seed S] [--jobs N] [--out NAME] [--list]
//
//   --schedules K    schedules per protocol (default 30)
//   --protocol NAME  fuzz only this registry protocol (default: all)
//   --n N            node count (default 12)
//   --slots L        slots per run (default 2)
//   --seed S         base seed; schedule i of a protocol runs with seed
//                    S + i (default 1)
//   --jobs N         worker threads; 0 = one per hardware thread. The
//                    engine's determinism contract makes the table and
//                    the json byte-identical for any value.
//   --out NAME       write BENCH_<NAME>.json (default: fuzz)
//   --list           print the job labels and exit
//
// Every job runs the protocol under a "fuzz" adversary: a seeded random
// budget-respecting fault schedule (src/adversary/fuzz.hpp) of
// corruptions, after-the-fact erasures and actor-level faults. Because
// generated schedules stay inside the threat model (at most f distinct
// corruptions, erasures only of corrupt-by-then senders), any
// consistency/validity/termination violation is a finding about the
// protocol or the simulator — never noise. Protocols whose registry
// entry sets sched_may_stall (no fallback path) skip only the
// termination oracle.
//
// The corruption budget f cycles over 1..max_f(n) across a protocol's
// schedules, so one campaign exercises light and maximal fault loads.
//
// AMBB_BENCH_INJECT_VIOLATION=1 injects a synthetic violation into every
// run (proves the non-zero-exit plumbing, same contract as the bench
// harnesses).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "engine/engine.hpp"
#include "engine/report.hpp"
#include "runner/registry.hpp"
#include "runner/table.hpp"

namespace {

struct Cli {
  std::uint32_t schedules = 30;
  std::string protocol;  // empty = all
  std::uint32_t n = 12;
  ambb::Slot slots = 2;
  std::uint64_t seed = 1;
  unsigned jobs = 0;
  std::string out = "fuzz";
  bool list = false;
};

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: ambb_fuzz [--schedules K] [--protocol NAME] [--n N] "
               "[--slots L] [--seed S] [--jobs N] [--out NAME] [--list]\n");
}

bool parse_cli(int argc, char** argv, Cli& cli) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "ambb_fuzz: %s needs a value\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (arg == "--schedules") {
      if ((v = value()) == nullptr) return false;
      cli.schedules = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--protocol") {
      if ((v = value()) == nullptr) return false;
      cli.protocol = v;
    } else if (arg == "--n") {
      if ((v = value()) == nullptr) return false;
      cli.n = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--slots") {
      if ((v = value()) == nullptr) return false;
      cli.slots = static_cast<ambb::Slot>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--seed") {
      if ((v = value()) == nullptr) return false;
      cli.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--jobs") {
      if ((v = value()) == nullptr) return false;
      cli.jobs = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--out") {
      if ((v = value()) == nullptr) return false;
      cli.out = v;
    } else if (arg == "--list") {
      cli.list = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(stdout);
      std::exit(0);
    } else {
      std::fprintf(stderr, "ambb_fuzz: unknown argument '%s'\n", arg.c_str());
      return false;
    }
  }
  if (cli.schedules == 0 || cli.n < 4 || cli.slots == 0) {
    std::fprintf(stderr,
                 "ambb_fuzz: need --schedules >= 1, --n >= 4, --slots >= 1\n");
    return false;
  }
  return true;
}

struct FuzzJob {
  std::string label;
  const ambb::ProtocolInfo* info;
  ambb::CommonParams params;
};

std::vector<FuzzJob> expand(const Cli& cli) {
  using namespace ambb;
  std::vector<FuzzJob> out;
  for (const auto& info : protocols()) {
    if (!cli.protocol.empty() && info.name != cli.protocol) continue;
    const std::uint32_t fmax =
        std::max<std::uint32_t>(1, std::min(info.max_f(cli.n), cli.n - 1));
    for (std::uint32_t i = 0; i < cli.schedules; ++i) {
      FuzzJob fj;
      fj.info = &info;
      fj.params.n = cli.n;
      fj.params.f = 1 + i % fmax;  // cycle light..maximal budgets
      fj.params.slots = cli.slots;
      fj.params.seed = cli.seed + i;
      fj.params.adversary = "fuzz";
      fj.label = "fuzz/" + info.name + "/f" +
                 std::to_string(fj.params.f) + "/s" +
                 std::to_string(fj.params.seed);
      out.push_back(std::move(fj));
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ambb;

  Cli cli;
  if (!parse_cli(argc, argv, cli)) {
    usage(stderr);
    return 2;
  }

  std::vector<FuzzJob> fuzz_jobs;
  try {
    fuzz_jobs = expand(cli);
  } catch (const CheckError& e) {
    std::fprintf(stderr, "ambb_fuzz: %s\n", e.what());
    return 2;
  }
  if (fuzz_jobs.empty()) {
    std::fprintf(stderr, "ambb_fuzz: no jobs (unknown protocol '%s'?)\n",
                 cli.protocol.c_str());
    return 2;
  }

  if (cli.list) {
    for (const auto& fj : fuzz_jobs) std::printf("%s\n", fj.label.c_str());
    std::printf("%zu jobs\n", fuzz_jobs.size());
    return 0;
  }

  std::vector<engine::Job> jobs;
  jobs.reserve(fuzz_jobs.size());
  for (const auto& fj : fuzz_jobs) {
    jobs.push_back(engine::Job{
        fj.label, [info = fj.info, p = fj.params] { return info->run(p); },
        may_stall(*fj.info, fj.params.adversary)});
  }

  const engine::Engine eng(cli.jobs);
  std::printf("ambb_fuzz: %zu schedules on %u worker thread%s\n", jobs.size(),
              eng.jobs(), eng.jobs() == 1 ? "" : "s");

  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<engine::JobOutcome> outcomes = eng.run(jobs);
  const double wall_ms_total = std::chrono::duration<double, std::milli>(
                                   std::chrono::steady_clock::now() - t0)
                                   .count();

  const bool inject =
      std::getenv("AMBB_BENCH_INJECT_VIOLATION") != nullptr;
  std::vector<engine::RunRecord> records;
  records.reserve(outcomes.size());
  std::size_t violations = 0;
  std::size_t failed_jobs = 0;
  TextTable t({"run", "rounds", "honest bits", "adv bits", "erasures",
               "corrupt", "status"});
  for (const auto& out : outcomes) {
    engine::RunRecord rec = engine::to_record(out);
    if (inject) rec.violations += 1;  // prove the exit plumbing
    std::string status = "ok";
    if (!out.completed) {
      status = "FAILED";
      ++failed_jobs;
    } else if (rec.violations != 0) {
      status = "VIOLATION";
    }
    t.add_row({rec.label, std::to_string(rec.rounds),
               TextTable::bits_human(static_cast<double>(rec.honest_bits)),
               TextTable::bits_human(static_cast<double>(rec.adversary_bits)),
               std::to_string(rec.stats.erasures),
               std::to_string(rec.stats.corruptions), status});
    violations += rec.violations;
    records.push_back(std::move(rec));
  }
  std::printf("%s", t.render().c_str());

  for (const auto& out : outcomes) {
    if (!out.completed) {
      std::printf("!! %s did not complete: %s\n", out.label.c_str(),
                  out.error.c_str());
    } else if (!out.violations.empty()) {
      std::printf("!! %s: %zu property violations (first: %s)\n",
                  out.label.c_str(), out.violations.size(),
                  out.violations[0].c_str());
    }
  }

  const std::string path = "BENCH_" + cli.out + ".json";
  if (engine::write_bench_json(path, cli.out, records, violations, eng.jobs(),
                               wall_ms_total)) {
    std::printf("wrote %s (%zu runs, %u threads, %.1f ms total)\n",
                path.c_str(), records.size(), eng.jobs(), wall_ms_total);
  } else {
    std::fprintf(stderr, "ambb_fuzz: could not write %s\n", path.c_str());
    return 2;
  }

  if (violations != 0 || failed_jobs != 0) {
    std::printf("!! %zu violations, %zu failed jobs — failing the fuzz run\n",
                violations, failed_jobs);
    return 1;
  }
  std::printf("no property violations across %zu randomized schedules\n",
              records.size());
  return 0;
}
