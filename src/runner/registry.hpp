// Uniform catalog of every multi-shot BB protocol in the library, so that
// tests and benchmarks can sweep protocols x adversaries x (n, f, L, seed)
// without knowing each driver's config type.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "runner/result.hpp"

namespace ambb {

struct CommonParams {
  std::uint32_t n = 16;
  std::uint32_t f = 4;
  Slot slots = 8;
  std::uint64_t seed = 1;
  std::string adversary = "none";
  std::uint32_t kappa_bits = kDefaultKappaBits;
  std::uint32_t value_bits = kDefaultValueBits;
  /// Expander parameter of the linear-family protocols (f <= (1/2-eps)n);
  /// ignored by the other families. The default matches the pre-engine
  /// registry behaviour bit-for-bit.
  double eps = 0.1;
};

struct ProtocolInfo {
  std::string name;
  std::string table1_row;  ///< which Table 1 row this reproduces
  std::vector<std::string> adversaries;  ///< accepted adversary specs
  /// Largest f this protocol supports for a given n.
  std::function<std::uint32_t(std::uint32_t n)> max_f;
  std::function<RunResult(const CommonParams&)> run;
  /// Adversary specs under which the protocol MAY violate termination
  /// (the Appendix A HotStuff demo, and the no-query-path ablation of
  /// Algorithm 4). Consistency and validity must still hold.
  std::vector<std::string> known_liveness_failures;
  /// True if the protocol may miss commits under ARBITRARY "sched:..." /
  /// "fuzz" fault schedules (no fallback path: a silenced or selective
  /// node it depends on permanently starves progress). Consistency and
  /// validity must still hold under any budget-respecting schedule.
  bool sched_may_stall = false;
};

const std::vector<ProtocolInfo>& protocols();
const ProtocolInfo& protocol(const std::string& name);

/// True if `spec` is runnable against this protocol: either one of the
/// protocol's named adversaries, or a generic fault-schedule spec
/// ("sched:..." / "fuzz[:k]"), which every registry protocol accepts.
bool accepts_adversary(const ProtocolInfo& info, const std::string& spec);

/// True if a run of this protocol under `spec` is allowed to stall
/// (known_liveness_failures for named specs, sched_may_stall for
/// schedule specs).
bool may_stall(const ProtocolInfo& info, const std::string& spec);

}  // namespace ambb
