// Adversary strategies for Algorithm 5.2 / TrustCast.
#include <algorithm>

#include "adversary/scheduled.hpp"
#include "bb/quadratic_bb.hpp"
#include "common/check.hpp"

namespace ambb::quad {

namespace {

class SilentDev final : public Deviation {
 public:
  bool silent(Round) const override { return true; }
};

/// Sender sends value A to even nodes and value B to odd nodes. Honest
/// forwarding spreads both, everyone removes the sender, all commit bot.
class EquivocateDev final : public Deviation {
 public:
  bool override_send(QuadNode& self, RoundApi<Msg>& api) override {
    const Msg a = self.build_prop(0xAAAA);
    const Msg b = self.build_prop(0xBBBB);
    for (NodeId v = 0; v < self.ctx().n; ++v) {
      api.send(v, v % 2 == 0 ? a : b);
    }
    return true;
  }
};

/// Conspiracy: the corrupt sender serves only its corrupt colluders
/// (nodes 0..f-1); the colluders sit on the message and multicast it at
/// TrustCast round n-1, after every honest node has already cut its way
/// to the sender. Honest nodes end up holding the value AND a removed
/// sender — they must still all commit bot (consistency stress).
class ConspiracySenderDev final : public Deviation {
 public:
  bool override_send(QuadNode& self, RoundApi<Msg>& api) override {
    const Slot k = self.engine().slot();
    const Msg m = self.build_prop(self.ctx().input_for_slot(k));
    for (NodeId c = 0; c < self.ctx().f; ++c) api.send(c, m);
    return true;
  }
};

class ConspiracyColluderDev final : public Deviation {
 public:
  bool suppress_engine_sends(Round, std::uint32_t) override { return true; }

  void extra(QuadNode& self, Round r, std::uint32_t offset,
             RoundApi<Msg>& api) override {
    (void)r;
    const Context& ctx = self.ctx();
    if (offset != ctx.n - 1) return;
    const Slot k = self.engine().slot();
    const NodeId sender = ctx.sender_of(k);
    if (sender >= ctx.f) return;  // only collude for corrupt senders
    // The adversary controls the sender's key: re-sign and release late.
    Msg m;
    m.kind = Kind::kProp;
    m.slot = k;
    m.value = ctx.input_for_slot(k);
    m.sig = ctx.registry->sign(sender, prop_digest(k, m.value));
    api.multicast(m);
  }
  bool silent(Round) const override { return false; }
};

/// Sender is silent in round 0 and multicasts its proposal from round 1
/// instead — too late: honest nodes have already started accusing.
class LatePropDev final : public Deviation {
 public:
  bool override_send(QuadNode&, RoundApi<Msg>&) override { return true; }
  void extra(QuadNode& self, Round, std::uint32_t offset,
             RoundApi<Msg>& api) override {
    const Slot k = self.engine().slot();
    if (self.ctx().sender_of(k) != self.id() || offset != 1) return;
    Msg m = self.build_prop(self.ctx().input_for_slot(k));
    api.multicast(m);
  }
};

/// Corrupt nodes accuse every other node in slot 1, maximizing trust-graph
/// maintenance traffic (the O(kappa n^4) bound) and severing themselves.
class FloodAccuseDev final : public Deviation {
 public:
  void extra(QuadNode& self, Round r, std::uint32_t offset,
             RoundApi<Msg>& api) override {
    if (done_ || offset != 1) return;
    done_ = true;
    (void)r;
    const Context& ctx = self.ctx();
    for (NodeId v = 0; v < ctx.n; ++v) {
      if (v == self.id()) continue;
      Msg m;
      m.kind = Kind::kAccuse;
      m.slot = self.engine().slot();
      m.accused = v;
      m.sig = ctx.registry->sign(self.id(), accuse_digest(v));
      api.multicast(m);
    }
  }

 private:
  bool done_ = false;
};

/// Framing: corrupt nodes cast <corrupt, S_k> votes against every HONEST
/// sender. The Dolev-Strong phase must shrug this off — honest nodes only
/// adopt/forward corruption votes for senders already removed from their
/// own trust graph, and f forged votes never reach the f+1 bar on their
/// own — so validity must survive a full corrupt coalition of framers.
class FramerDev final : public Deviation {
 public:
  void extra(QuadNode& self, Round, std::uint32_t offset,
             RoundApi<Msg>& api) override {
    const Context& ctx = self.ctx();
    if (offset != ctx.n + 1) return;  // DS phase, tau = 0
    const Slot k = self.engine().slot();
    const NodeId sender = ctx.sender_of(k);
    if (sender < ctx.f) return;  // only frame honest senders
    if (framed_.empty()) framed_.assign(ctx.n, 0);
    if (framed_[sender]) return;  // corrupt votes are once-ever per pair
    framed_[sender] = 1;
    Msg m;
    m.kind = Kind::kCorrupt;
    m.slot = k;
    m.accused = sender;
    m.sig = ctx.registry->sign(self.id(), corrupt_digest(sender));
    api.multicast(m);
  }

 private:
  std::vector<std::uint8_t> framed_;
};

std::unique_ptr<Deviation> make_quad_deviation(const std::string& role) {
  if (role == "silent") return std::make_unique<SilentDev>();
  if (role == "equivocate") return std::make_unique<EquivocateDev>();
  if (role == "lateprop") return std::make_unique<LatePropDev>();
  if (role == "floodaccuse") return std::make_unique<FloodAccuseDev>();
  if (role == "framer") return std::make_unique<FramerDev>();
  if (role == "conspiracy") {
    // Every corrupt node acts as a colluder; when it happens to be the
    // slot sender, the sender deviation applies.
    struct Both final : Deviation {
      ConspiracySenderDev sender;
      ConspiracyColluderDev colluder;
      bool override_send(QuadNode& self, RoundApi<Msg>& api) override {
        return sender.override_send(self, api);
      }
      bool suppress_engine_sends(Round r, std::uint32_t offset) override {
        return colluder.suppress_engine_sends(r, offset);
      }
      void extra(QuadNode& self, Round r, std::uint32_t offset,
                 RoundApi<Msg>& api) override {
        colluder.extra(self, r, offset, api);
      }
    };
    return std::make_unique<Both>();
  }
  AMBB_CHECK_MSG(false, "unknown quad role " << role);
}

}  // namespace

std::unique_ptr<Adversary<Msg>> make_quad_adversary(const std::string& spec,
                                                    const Context* ctx,
                                                    std::uint64_t seed,
                                                    Round horizon,
                                                    NetPolicy net) {
  if (spec == "none") return nullptr;
  if (adversary::is_schedule_spec(spec)) {
    adversary::ScheduleEnv<Msg> env;
    env.n = ctx->n;
    env.f = ctx->f;
    env.seed = seed;
    env.horizon = horizon;
    env.trace = ctx->trace;
    env.net = net;
    // The corrupted-seat replica runs honest logic but carries a no-op
    // Deviation marker: honest-only invariant CHECKs (TrustCast's
    // vote-or-value guarantee) must not fire for a Byzantine node
    // replaying honest logic from mid-run fresh state.
    env.honest_factory = [ctx](NodeId node) {
      return std::make_unique<QuadNode>(node, ctx,
                                        std::make_unique<Deviation>());
    };
    return adversary::make_scheduled_adversary<Msg>(spec, env);
  }
  if (spec == "silent" || spec == "equivocate" || spec == "conspiracy" ||
      spec == "lateprop" || spec == "floodaccuse" || spec == "framer") {
    // Static strategy = corrupt-first-f schedule + Deviation actors via
    // the byzantine-factory override.
    adversary::FaultSchedule s;
    for (NodeId v = 0; v < ctx->f; ++v) {
      s.corruptions.push_back(adversary::CorruptEvent{0, v});
    }
    return std::make_unique<adversary::ScheduledAdversary<Msg>>(
        std::move(s), ctx->n, seed, nullptr, [ctx, spec](NodeId node) {
          return std::make_unique<QuadNode>(node, ctx,
                                            make_quad_deviation(spec));
        });
  }
  AMBB_CHECK_MSG(false, "unknown quad adversary spec '" << spec << "'");
}

}  // namespace ambb::quad
