// ambb_sweep — run declarative experiment sweeps on the parallel engine.
//
//   ambb_sweep --spec FILE [--jobs N] [--node-jobs N] [--filter SUBSTR]
//              [--out NAME] [--net POLICY] [--trace-dir DIR] [--list]
//
//   --spec FILE      sweep specification (format: src/engine/sweep.hpp)
//   --jobs N         worker threads; 0 or omitted = one per hardware
//                    thread; 1 = serial (byte-identical results either
//                    way — that is the engine's determinism contract)
//   --node-jobs N    threads for the honest-node phase inside each run;
//                    1 (default) = serial rounds, 0 = auto (hardware
//                    threads / run-level jobs, so the two axes compose
//                    without oversubscribing). Results are byte-identical
//                    for every value.
//   --filter SUBSTR  keep only jobs whose label contains SUBSTR
//   --out NAME       write BENCH_<NAME>.json (default: sweep)
//   --net POLICY     delay policy for blocks without their own 'net' key
//                    (DESIGN.md §16): lockstep (default) |
//                    bounded:<delta> | async[:<cap>]
//   --trace-dir DIR  write one JSONL event trace per run into DIR
//                    (created if missing); files are named by submission
//                    order, so --jobs does not change names or contents
//   --list           print the expanded job labels and exit
//
// Per-job failure isolation: a job that throws (AMBB_CHECK) or violates
// a BB property is reported as a structured failure row — and an "error"
// field in the json — instead of killing the sweep; the exit code is
// non-zero iff any job failed.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli.hpp"
#include "common/check.hpp"
#include "engine/engine.hpp"
#include "engine/report.hpp"
#include "engine/sweep.hpp"
#include "runner/table.hpp"

namespace {

struct Cli {
  std::string spec_path;
  std::string trace_dir;
  ambb::cli::CommonFlags common;
  bool list = false;
};

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: ambb_sweep --spec FILE [--jobs N] [--node-jobs N] "
               "[--filter SUBSTR] [--out NAME] [--net POLICY] "
               "[--trace-dir DIR] [--list]\n");
}

bool parse_cli(int argc, char** argv, Cli& cli) {
  cli.common.out = "sweep";
  ambb::cli::Parser p("ambb_sweep", argc, argv);
  while (p.next()) {
    bool ok = true;
    if (ambb::cli::handle_common_flag(p, &cli.common, &ok)) {
      if (!ok) return false;
    } else if (p.arg() == "--spec") {
      if (!p.to_str(&cli.spec_path)) return false;
    } else if (p.arg() == "--trace-dir") {
      if (!p.to_str(&cli.trace_dir)) return false;
    } else if (p.arg() == "--list") {
      cli.list = true;
    } else if (p.arg() == "--help" || p.arg() == "-h") {
      usage(stdout);
      std::exit(0);
    } else {
      p.unknown();
      return false;
    }
  }
  if (cli.spec_path.empty()) {
    std::fprintf(stderr, "ambb_sweep: --spec is required\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ambb;

  Cli cli;
  if (!parse_cli(argc, argv, cli)) {
    usage(stderr);
    return 2;
  }

  std::ifstream in(cli.spec_path);
  if (!in) {
    std::fprintf(stderr, "ambb_sweep: cannot read spec file '%s'\n",
                 cli.spec_path.c_str());
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();

  std::vector<engine::SweepJob> sweep_jobs;
  try {
    std::vector<engine::SweepSpec> specs = engine::parse_spec(text.str());
    // --net is the default delay policy: blocks with their own 'net' key
    // keep it, everything else inherits the flag.
    if (cli.common.net != "lockstep") {
      for (auto& s : specs) {
        if (s.nets.empty()) s.nets = {cli.common.net};
      }
    }
    sweep_jobs =
        engine::filter_jobs(engine::expand_all(specs), cli.common.filter);
  } catch (const CheckError& e) {
    std::fprintf(stderr, "ambb_sweep: invalid spec: %s\n", e.what());
    return 2;
  }

  if (cli.list) {
    for (const auto& sj : sweep_jobs) std::printf("%s\n", sj.label.c_str());
    std::printf("%zu jobs\n", sweep_jobs.size());
    return 0;
  }
  if (sweep_jobs.empty()) {
    std::fprintf(stderr, "ambb_sweep: nothing to run (filter '%s')\n",
                 cli.common.filter.c_str());
    return 2;
  }

  if (!cli.trace_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(cli.trace_dir, ec);
    if (ec) {
      std::fprintf(stderr, "ambb_sweep: cannot create trace dir '%s': %s\n",
                   cli.trace_dir.c_str(), ec.message().c_str());
      return 2;
    }
  }

  const engine::Engine eng(cli.common.jobs);
  const unsigned node_jobs = engine::resolve_node_jobs(cli.common.node_jobs,
                                                       eng.jobs());
  for (auto& sj : sweep_jobs) sj.params.node_jobs = node_jobs;
  std::printf("ambb_sweep: %zu jobs on %u worker thread%s, %u node shard%s\n",
              sweep_jobs.size(), eng.jobs(), eng.jobs() == 1 ? "" : "s",
              node_jobs, node_jobs == 1 ? "" : "s");

  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<engine::JobOutcome> outcomes =
      eng.run(engine::to_engine_jobs(sweep_jobs, cli.trace_dir));
  const double wall_ms_total = std::chrono::duration<double, std::milli>(
                                   std::chrono::steady_clock::now() - t0)
                                   .count();

  std::vector<engine::RunRecord> records;
  records.reserve(outcomes.size());
  std::size_t violations = 0;
  std::size_t failed_jobs = 0;
  TextTable t({"run", "rounds", "honest bits", "adv bits", "amortized",
               "wall ms", "status"});
  for (const auto& out : outcomes) {
    engine::RunRecord rec = engine::to_record(out);
    std::string status = "ok";
    if (!out.completed) {
      status = "FAILED";
      ++failed_jobs;
    } else if (!out.violations.empty()) {
      status = "VIOLATION";
    }
    t.add_row({rec.label, std::to_string(rec.rounds),
               TextTable::bits_human(static_cast<double>(rec.honest_bits)),
               TextTable::bits_human(static_cast<double>(rec.adversary_bits)),
               TextTable::bits_human(rec.amortized),
               TextTable::num(rec.wall_ms, 1), status});
    violations += rec.violations;
    records.push_back(std::move(rec));
  }
  std::printf("%s", t.render().c_str());

  // Structured failure rows: what went wrong, per job, after the table.
  for (const auto& out : outcomes) {
    if (!out.completed) {
      std::printf("!! %s did not complete: %s\n", out.label.c_str(),
                  out.error.c_str());
    } else if (!out.violations.empty()) {
      std::printf("!! %s: %zu property violations (first: %s)\n",
                  out.label.c_str(), out.violations.size(),
                  out.violations[0].c_str());
    }
  }

  const std::string path = "BENCH_" + cli.common.out + ".json";
  if (engine::write_bench_json(path, cli.common.out, records, violations,
                               eng.jobs(), wall_ms_total)) {
    std::printf("wrote %s (%zu runs, %u threads, %.1f ms total)\n",
                path.c_str(), records.size(), eng.jobs(), wall_ms_total);
    if (!cli.trace_dir.empty()) {
      std::printf("wrote %zu event traces to %s/\n", sweep_jobs.size(),
                  cli.trace_dir.c_str());
    }
  } else {
    std::fprintf(stderr, "ambb_sweep: could not write %s\n", path.c_str());
    return 2;
  }

  if (violations != 0 || failed_jobs != 0) {
    std::printf("!! %zu violations, %zu failed jobs — failing the sweep\n",
                violations, failed_jobs);
    return 1;
  }
  return 0;
}
