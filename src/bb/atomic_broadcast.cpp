#include "bb/atomic_broadcast.hpp"

#include <sstream>

#include "common/check.hpp"

namespace ambb::abc {

void DeliveryQueue::decide(Slot slot, NodeId proposer, Value payload,
                           Round round) {
  AMBB_CHECK(slot >= 1);
  if (slot >= pending_.size()) pending_.resize(slot + 1);
  AMBB_CHECK_MSG(slot > delivered_upto() && !pending_[slot].has_value(),
                 "slot " << slot << " decided twice");
  pending_[slot] = LogEntry{slot, proposer, payload, round};
  drain();
}

std::size_t DeliveryQueue::pending() const {
  std::size_t count = 0;
  for (const auto& p : pending_) {
    if (p.has_value()) ++count;
  }
  return count;
}

void DeliveryQueue::drain() {
  while (true) {
    const Slot next = delivered_upto() + 1;
    if (next >= pending_.size() || !pending_[next].has_value()) return;
    log_.push_back(*pending_[next]);
    pending_[next].reset();
  }
}

AbcResult run_atomic_broadcast(const AbcConfig& cfg) {
  linear::LinearConfig lin;
  lin.n = cfg.n;
  lin.f = cfg.f;
  lin.slots = cfg.slots;
  lin.seed = cfg.seed;
  lin.eps = cfg.eps;
  lin.adversary = cfg.adversary;
  if (cfg.payload_for_slot) lin.input_for_slot = cfg.payload_for_slot;

  AbcResult out;
  out.bb = linear::run_linear(lin);
  out.replicas.resize(cfg.n);
  for (NodeId v = 0; v < cfg.n; ++v) {
    for (Slot k = 1; k <= cfg.slots; ++k) {
      if (!out.bb.commits.has(v, k)) continue;
      const CommitRecord& c = out.bb.commits.get(v, k);
      out.replicas[v].decide(k, out.bb.senders[k], c.value, c.round);
    }
  }
  return out;
}

std::vector<std::string> check_total_order(const AbcResult& r) {
  std::vector<std::string> errs;
  const DeliveryQueue* reference = nullptr;
  NodeId ref_id = kNoNode;
  for (NodeId v = 0; v < r.bb.n; ++v) {
    if (!r.is_honest(v)) continue;
    if (reference == nullptr) {
      reference = &r.replicas[v];
      ref_id = v;
      continue;
    }
    const auto& a = reference->log();
    const auto& b = r.replicas[v].log();
    const std::size_t common = std::min(a.size(), b.size());
    for (std::size_t i = 0; i < common; ++i) {
      if (a[i].slot != b[i].slot || a[i].payload != b[i].payload) {
        std::ostringstream os;
        os << "log position " << i << ": replica " << ref_id << " has ("
           << a[i].slot << "," << a[i].payload << ") but replica " << v
           << " has (" << b[i].slot << "," << b[i].payload << ")";
        errs.push_back(os.str());
      }
    }
  }
  return errs;
}

std::vector<std::string> check_agreement(const AbcResult& r) {
  std::vector<std::string> errs;
  Slot max_delivered = 0;
  for (NodeId v = 0; v < r.bb.n; ++v) {
    if (r.is_honest(v)) {
      max_delivered = std::max(max_delivered,
                               r.replicas[v].delivered_upto());
    }
  }
  for (NodeId v = 0; v < r.bb.n; ++v) {
    if (!r.is_honest(v)) continue;
    if (r.replicas[v].delivered_upto() != max_delivered) {
      std::ostringstream os;
      os << "replica " << v << " delivered up to "
         << r.replicas[v].delivered_upto() << " but others reached "
         << max_delivered;
      errs.push_back(os.str());
    }
  }
  return errs;
}

std::vector<std::string> check_abc_validity(const AbcResult& r) {
  std::vector<std::string> errs;
  for (NodeId v = 0; v < r.bb.n; ++v) {
    if (!r.is_honest(v)) continue;
    for (const LogEntry& e : r.replicas[v].log()) {
      if (!r.is_honest(e.proposer)) continue;
      if (e.payload != r.bb.sender_inputs[e.slot]) {
        std::ostringstream os;
        os << "slot " << e.slot << ": honest proposer " << e.proposer
           << " payload " << r.bb.sender_inputs[e.slot]
           << " delivered as " << e.payload << " at replica " << v;
        errs.push_back(os.str());
      }
    }
  }
  return errs;
}

}  // namespace ambb::abc
