// Experiment F1 — Section 4.2's total-cost structure
// C(L) = O(kappa n L + kappa n^3): the amortized cost C(L)/L of
// Algorithm 4 converges to the linear term as L grows, i.e. the
// kappa*n^3 one-time costs (corrupt-proofs, query2 bursts, accusation
// multicasts) fade out.
//
// One long execution is run per adversary; the printed series are the
// prefix averages C(L')/L' from the per-slot ledger.
#include "bench_common.hpp"

namespace ambb::bench {
namespace {

void run_series() {
  const std::uint32_t n = 32;
  const std::uint32_t f = 12;
  const Slot kMaxSlots = 192;
  print_header(
      "F1 / Section 4.2: C(L)/L of Algorithm 4 converges as L grows (n=32, "
      "f=12)",
      "total cost O(kn L + kn^3): amortized cost decreases in L toward the "
      "linear term");

  const std::vector<const char*> advs = {"none",      "silent", "equivocate",
                                         "selective", "flood",  "mixed"};
  std::vector<Job> jobs;
  for (const char* adv : advs) {
    CommonParams p;
    p.n = n;
    p.f = f;
    p.slots = kMaxSlots;
    p.seed = 7;
    p.eps = 0.1;
    p.adversary = adv;
    jobs.push_back(
        registry_job("linear", p, std::string("linear/") + adv + "/L192"));
  }
  const std::vector<RunResult> results = run_jobs(jobs);

  TextTable t({"adversary", "L=4", "L=16", "L=48", "L=96", "L=192",
               "tail(96..192)", "kappa*n ref"});
  for (std::size_t i = 0; i < advs.size(); ++i) {
    const char* adv = advs[i];
    const RunResult& r = results[i];
    t.add_row({adv, TextTable::bits_human(r.amortized(4)),
               TextTable::bits_human(r.amortized(16)),
               TextTable::bits_human(r.amortized(48)),
               TextTable::bits_human(r.amortized(96)),
               TextTable::bits_human(r.amortized(192)),
               TextTable::bits_human(r.amortized_tail(96)),
               TextTable::bits_human(256.0 * n)});
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "Reading: every adversarial row decreases toward its steady state; "
      "the remaining constant over kappa*n\nis the expander degree + "
      "per-epoch message count (failure-free row gives the baseline "
      "constant).\n");
}

void BM_LinearRun(::benchmark::State& state) {
  CommonParams p;
  p.n = 32;
  p.f = 12;
  p.slots = static_cast<ambb::Slot>(state.range(0));
  p.seed = 7;
  p.adversary = "mixed";
  for (auto _ : state) {
    auto r = registry_run("linear", p);
    ::benchmark::DoNotOptimize(r.honest_bits);
    state.counters["amortized_bits"] = r.amortized();
  }
}
BENCHMARK(BM_LinearRun)->Arg(8)->Arg(32)->Arg(128)
    ->Unit(::benchmark::kMillisecond);

}  // namespace
}  // namespace ambb::bench

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ambb::bench::run_series();
  return ambb::bench::finish_bench("f1_convergence");
}
