#include "sim/stats.hpp"

#include <algorithm>

namespace ambb {

void accumulate(RoundStatsSummary& s, const RoundStats& r) {
  ++s.rounds;
  s.records += r.records;
  s.deliveries += r.deliveries;
  s.honest_bits += r.honest_bits;
  s.adversary_bits += r.adversary_bits;
  s.erasures += r.erasures;
  s.corruptions += r.corruptions;
  s.delayed += r.delayed;
  s.ns_honest += r.ns_honest;
  s.ns_byzantine += r.ns_byzantine;
  s.ns_adversary += r.ns_adversary;
  s.ns_accounting += r.ns_accounting;
  s.ns_delivery += r.ns_delivery;
  s.max_round_deliveries = std::max(s.max_round_deliveries, r.deliveries);
}

RoundStatsSummary summarize(const std::vector<RoundStats>& stats) {
  RoundStatsSummary s;
  for (const RoundStats& r : stats) accumulate(s, r);
  return s;
}

}  // namespace ambb
