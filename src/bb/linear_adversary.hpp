// Byzantine adversary strategies for Algorithm 4, covering the worst cases
// analysed in Section 4.2 plus a strongly-adaptive after-the-fact removal
// demonstration.
//
// Specs accepted by make_adversary():
//   "none"          no corruptions (failure-free baseline)
//   "silent"        corrupt nodes never send: forces accusations and
//                   corrupt-proofs; exercises the expensive-slot path
//   "equivocate"    corrupt leaders propose two conflicting values
//   "selective"     corrupt leaders run the epoch honestly but withhold
//                   the commit-proof from a rotating subset and never
//                   answer queries: exercises Query/Respond-1/2
//   "flood"         corrupt nodes spam fresh accusations + query2 every
//                   epoch until they run out of nodes to accuse
//                   (the bounded Respond-2 attack of Section 4.2)
//   "mixed"         round-robin mix of the strategies above — used as the
//                   worst-case-style adversary for Table 1
//   "adaptive-erase" starts with zero corruptions; corrupts the slot-1
//                   sender after seeing its proposal and erases the copies
//                   sent to odd-numbered nodes (after-the-fact removal)
//   "sched:..."     explicit fault schedule (src/adversary/spec.hpp)
//   "fuzz[:k]"      seeded random fault schedule (src/adversary/fuzz.hpp)
//
// All named strategies are expressed on the src/adversary/ primitives: a
// ScheduledAdversary carries the corruption/erase schedule, and the
// Deviation-based Byzantine actors plug in via its byzantine-factory
// override. "sched:"/"fuzz" specs use the generic FaultedActor wrapping
// around honest LinearNodes instead.
#pragma once

#include <memory>
#include <string>

#include "bb/linear_bb.hpp"

namespace ambb::linear {

/// Returns nullptr for "none". Throws CheckError on an unknown spec.
/// `horizon` is the total number of rounds the driver will run (used by
/// the "fuzz" schedule generator to place events). `net` is the run's
/// delay policy: it gates delay/reorder timing faults (rejected under
/// lockstep) and scales fuzz-generated delays.
std::unique_ptr<Adversary<Msg>> make_adversary(const std::string& spec,
                                               const Context* ctx,
                                               std::uint64_t seed,
                                               Round horizon,
                                               NetPolicy net = {});

}  // namespace ambb::linear
