// ambb_trace — replay a single registry run with an event collector and
// print a human-readable per-slot timeline plus a trust-graph /
// accusation delta summary. The intended use is post-mortem: a sweep or
// fuzz run flags a label, and this tool re-runs that one cell (same
// params + seed = same execution) and explains *why* it behaved the way
// it did — which faults fired, who accused whom, which trust edges died,
// and where commits stopped.
//
//   ambb_trace --protocol NAME [--adversary SPEC] [--n N] [--f F]
//              [--slots L] [--seed S] [--eps E] [--payload BYTES]
//              [--net POLICY] [--node-jobs N] [--slot K] [--jsonl FILE]
//
//   --protocol NAME  registry protocol (required; see protocol_explorer)
//   --adversary SPEC named strategy or "sched:..." / "fuzz[:k]" schedule
//   --payload BYTES  per-slot payload size (DESIGN.md §13): ext:* rows
//                    erasure-code it, other rows carry it inline
//                    (value-bits = 8 * BYTES)
//   --net POLICY     delay policy (DESIGN.md §16): lockstep (default) |
//                    bounded:<delta> | async[:<cap>] — replay a sweep or
//                    fuzz cell under the same network it ran with
//   --node-jobs N    honest-phase shard threads (byte-identical output)
//   --slot K         only print the timeline of slot K (summary stays)
//   --jsonl FILE     also dump the raw deterministic JSONL event stream
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "cli.hpp"
#include "common/check.hpp"
#include "runner/registry.hpp"
#include "trace/trace.hpp"

using namespace ambb;

namespace {

struct Cli {
  std::string protocol;
  std::string jsonl;
  CommonParams params;
  Slot only_slot = 0;  ///< 0 = all slots
};

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: ambb_trace --protocol NAME [--adversary SPEC] "
               "[--n N] [--f F] [--slots L] [--seed S] [--eps E] "
               "[--payload BYTES] [--net POLICY] [--node-jobs N] "
               "[--slot K] [--jsonl FILE]\n");
}

bool parse_cli(int argc, char** argv, Cli& cli) {
  ambb::cli::CommonFlags common;
  common.accept = ambb::cli::kNodeJobs | ambb::cli::kNet;
  ambb::cli::Parser p("ambb_trace", argc, argv);
  while (p.next()) {
    bool ok = true;
    if (ambb::cli::handle_common_flag(p, &common, &ok)) {
      if (!ok) return false;
    } else if (p.arg() == "--help" || p.arg() == "-h") {
      usage(stdout);
      std::exit(0);
    } else if (p.arg() == "--protocol") {
      if (!p.to_str(&cli.protocol)) return false;
    } else if (p.arg() == "--adversary") {
      if (!p.to_str(&cli.params.adversary)) return false;
    } else if (p.arg() == "--n") {
      if (!p.to_u32(&cli.params.n)) return false;
    } else if (p.arg() == "--f") {
      if (!p.to_u32(&cli.params.f)) return false;
    } else if (p.arg() == "--slots") {
      if (!p.to_u32(&cli.params.slots)) return false;
    } else if (p.arg() == "--seed") {
      if (!p.to_u64(&cli.params.seed)) return false;
    } else if (p.arg() == "--eps") {
      if (!p.to_double(&cli.params.eps)) return false;
    } else if (p.arg() == "--payload") {
      if (!p.to_u64(&cli.params.payload_bytes)) return false;
    } else if (p.arg() == "--slot") {
      if (!p.to_u32(&cli.only_slot)) return false;
    } else if (p.arg() == "--jsonl") {
      if (!p.to_str(&cli.jsonl)) return false;
    } else {
      p.unknown();
      return false;
    }
  }
  cli.params.node_jobs = common.node_jobs;
  cli.params.net = common.net;
  // Non-ext rows carry a nonzero payload inline, same mapping as the
  // sweep layer (engine/sweep.cpp). Applied after the loop so the flag
  // order does not matter.
  if (cli.params.payload_bytes != 0 && cli.protocol.rfind("ext:", 0) != 0) {
    cli.params.value_bits =
        static_cast<std::uint32_t>(8 * cli.params.payload_bytes);
  }
  if (cli.protocol.empty()) {
    std::fprintf(stderr, "ambb_trace: --protocol is required\n");
    return false;
  }
  return true;
}

const char* node_mark(const RunResult& r, NodeId v) {
  return v < r.corrupt.size() && r.corrupt[v] ? "*" : "";
}

/// Per-slot tallies of the protocol-detection events, for the delta
/// summary at the bottom of the report.
struct SlotDelta {
  std::size_t accusations = 0;
  std::size_t edges_removed = 0;
  std::size_t corrupt_votes = 0;
  std::size_t adversary_actions = 0;
  std::size_t commits = 0;
};

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  if (!parse_cli(argc, argv, cli)) {
    usage(stderr);
    return 2;
  }

  const ProtocolInfo* found =
      ambb::cli::resolve_protocol("ambb_trace", cli.protocol);
  if (found == nullptr) return 2;
  const ProtocolInfo& info = *found;
  if (!info.policy.accepts(cli.params.adversary)) {
    std::fprintf(stderr, "ambb_trace: protocol '%s' does not accept "
                 "adversary '%s'\n",
                 cli.protocol.c_str(), cli.params.adversary.c_str());
    return 2;
  }

  trace::CollectorSink sink;
  RunResult r;
  try {
    r = info.run(RunRequest{cli.params, &sink});
  } catch (const CheckError& e) {
    std::fprintf(stderr, "ambb_trace: run failed: %s\n", e.what());
    return 1;
  }

  if (!cli.jsonl.empty()) {
    std::ofstream os(cli.jsonl, std::ios::binary | std::ios::trunc);
    if (!os) {
      std::fprintf(stderr, "ambb_trace: cannot write '%s'\n",
                   cli.jsonl.c_str());
      return 2;
    }
    for (const trace::Event& e : sink.events()) {
      trace::to_jsonl(os, e);
      os << '\n';
    }
  }

  std::printf("%s / %s  n=%u f=%u L=%u seed=%llu  (%zu events, "
              "* = corrupt)\n\n",
              cli.protocol.c_str(), cli.params.adversary.c_str(), r.n, r.f,
              r.slots, static_cast<unsigned long long>(cli.params.seed),
              sink.events().size());

  // ---- per-slot timeline -------------------------------------------------
  // Events arrive in program order; kSlotStart opens a slot section.
  // Same-round commits on the same value collapse into one line.
  std::map<Slot, SlotDelta> deltas;
  Slot cur = 0;
  bool printing = false;
  const auto& events = sink.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const trace::Event& e = events[i];
    if (e.kind == trace::EventKind::kRoundEnd) continue;
    if (e.kind == trace::EventKind::kSlotStart) {
      cur = e.slot;
      printing = cli.only_slot == 0 || cli.only_slot == cur;
      if (printing) {
        std::printf("slot %u  (round %llu, sender %u%s)\n", e.slot,
                    static_cast<unsigned long long>(e.round), e.node,
                    node_mark(r, e.node));
      }
      continue;
    }

    SlotDelta& d = deltas[e.kind == trace::EventKind::kAdversaryAction
                              ? cur
                              : e.slot];
    switch (e.kind) {
      case trace::EventKind::kAccusation: ++d.accusations; break;
      case trace::EventKind::kTrustEdgeRemoved: ++d.edges_removed; break;
      case trace::EventKind::kCorruptVote: ++d.corrupt_votes; break;
      case trace::EventKind::kAdversaryAction: ++d.adversary_actions; break;
      case trace::EventKind::kSlotCommit: ++d.commits; break;
      default: break;
    }
    if (!printing) continue;

    switch (e.kind) {
      case trace::EventKind::kEpochPhase: {
        char who[32] = "";
        if (e.node != kNoNode) {
          std::snprintf(who, sizeof who, ", node %u", e.node);
        }
        std::printf("  r%-5llu phase %s (ep %u%s)\n",
                    static_cast<unsigned long long>(e.round), e.detail,
                    e.epoch, who);
        break;
      }
      case trace::EventKind::kAccusation:
        std::printf("  r%-5llu node %u%s accuses %u%s\n",
                    static_cast<unsigned long long>(e.round), e.node,
                    node_mark(r, e.node), e.subject,
                    node_mark(r, e.subject));
        break;
      case trace::EventKind::kTrustEdgeRemoved:
        if (e.peer != kNoNode) {
          std::printf("  r%-5llu node %u%s drops trust edge (%u%s, %u%s) "
                      "[%s]\n",
                      static_cast<unsigned long long>(e.round), e.node,
                      node_mark(r, e.node), e.subject,
                      node_mark(r, e.subject), e.peer, node_mark(r, e.peer),
                      e.detail);
        } else {
          std::printf("  r%-5llu node %u%s removes vertex %u%s [%s]\n",
                      static_cast<unsigned long long>(e.round), e.node,
                      node_mark(r, e.node), e.subject,
                      node_mark(r, e.subject), e.detail);
        }
        break;
      case trace::EventKind::kCorruptVote:
        std::printf("  r%-5llu node %u%s votes <corrupt, %u%s>\n",
                    static_cast<unsigned long long>(e.round), e.node,
                    node_mark(r, e.node), e.subject,
                    node_mark(r, e.subject));
        break;
      case trace::EventKind::kCertFormed:
        std::printf("  r%-5llu node %u%s forms %s (ep %u, value 0x%llx)\n",
                    static_cast<unsigned long long>(e.round), e.node,
                    node_mark(r, e.node), e.detail, e.epoch,
                    static_cast<unsigned long long>(e.value));
        break;
      case trace::EventKind::kAdversaryAction: {
        char cbuf[32];
        if (e.count == std::numeric_limits<std::uint64_t>::max()) {
          std::snprintf(cbuf, sizeof cbuf, "all");  // unbounded sentinel
        } else {
          std::snprintf(cbuf, sizeof cbuf, "%llu",
                        static_cast<unsigned long long>(e.count));
        }
        std::printf("  r%-5llu ADVERSARY %s node %u (count %s)\n",
                    static_cast<unsigned long long>(e.round), e.detail,
                    e.node, cbuf);
        break;
      }
      case trace::EventKind::kSlotCommit: {
        // Collapse the burst: count commits sharing (round, value).
        std::size_t burst = 1;
        while (i + 1 < events.size() &&
               events[i + 1].kind == trace::EventKind::kSlotCommit &&
               events[i + 1].round == e.round &&
               events[i + 1].slot == e.slot &&
               events[i + 1].value == e.value) {
          ++i;
          ++burst;
          ++deltas[e.slot].commits;
        }
        char vbuf[32];
        if (e.value == kBotValue) {
          std::snprintf(vbuf, sizeof vbuf, "bot");
        } else {
          std::snprintf(vbuf, sizeof vbuf, "0x%llx",
                        static_cast<unsigned long long>(e.value));
        }
        std::printf("  r%-5llu %zu node%s commit %s\n",
                    static_cast<unsigned long long>(e.round), burst,
                    burst == 1 ? "" : "s", vbuf);
        break;
      }
      default: break;
    }
  }

  // ---- trust-graph / accusation delta summary ----------------------------
  std::size_t acc = 0, edges = 0, votes = 0, adv = 0;
  for (const auto& [k, d] : deltas) {
    acc += d.accusations;
    edges += d.edges_removed;
    votes += d.corrupt_votes;
    adv += d.adversary_actions;
  }
  std::size_t honest = 0;
  for (NodeId v = 0; v < r.n; ++v) honest += r.corrupt[v] ? 0 : 1;
  bool any_stall = false;
  for (Slot k = 1; k <= r.slots; ++k) {
    std::size_t honest_commits = 0;
    for (NodeId v = 0; v < r.n; ++v) {
      if (!r.corrupt[v] && r.commits.has(v, k)) ++honest_commits;
    }
    any_stall |= honest_commits < honest;
  }
  // A clean run (no schedule, no named adversary) has nothing to delta:
  // printing a table of zero rows just buries the commit timeline, so
  // the whole section — header included — is suppressed unless some slot
  // accumulated a delta or stalled.
  if (acc + edges + votes + adv > 0 || any_stall) {
    std::printf("\nper-slot deltas (accusations / edge removals / corrupt "
                "votes / adversary actions / commits):\n");
    for (Slot k = 1; k <= r.slots; ++k) {
      const SlotDelta d = deltas.count(k) ? deltas[k] : SlotDelta{};
      std::size_t honest_commits = 0;
      for (NodeId v = 0; v < r.n; ++v) {
        if (!r.corrupt[v] && r.commits.has(v, k)) ++honest_commits;
      }
      const bool stalled = honest_commits < honest;
      std::printf("  slot %-3u +%zu acc  +%zu edges  +%zu votes  +%zu adv  "
                  "%zu commits%s\n",
                  k, d.accusations, d.edges_removed, d.corrupt_votes,
                  d.adversary_actions, d.commits,
                  stalled ? "  <- STALLED" : "");
      if (stalled) {
        std::printf("           (%zu/%zu honest nodes committed; missing:",
                    honest_commits, honest);
        for (NodeId v = 0; v < r.n; ++v) {
          if (!r.corrupt[v] && !r.commits.has(v, k)) std::printf(" %u", v);
        }
        std::printf(")\n");
      }
    }
  }
  std::printf("\ntotals: %zu accusations, %zu trust-edge removals, "
              "%zu corrupt votes, %zu adversary actions over %llu rounds\n",
              acc, edges, votes, adv,
              static_cast<unsigned long long>(r.rounds));
  if (any_stall) std::printf("liveness: at least one slot stalled\n");
  return 0;
}
