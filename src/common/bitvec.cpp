#include "common/bitvec.hpp"

#include <bit>

namespace ambb {

BitVec::BitVec(std::size_t n, bool value)
    : n_(n), words_((n + 63) / 64, value ? ~std::uint64_t{0} : 0) {
  trim_tail();
}

void BitVec::trim_tail() {
  if (n_ % 64 != 0 && !words_.empty()) {
    words_.back() &= (std::uint64_t{1} << (n_ % 64)) - 1;
  }
}

std::size_t BitVec::count() const {
  std::size_t c = 0;
  for (auto w : words_) c += static_cast<std::size_t>(std::popcount(w));
  return c;
}

bool BitVec::contains(const BitVec& other) const {
  AMBB_CHECK(n_ == other.n_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((other.words_[i] & ~words_[i]) != 0) return false;
  }
  return true;
}

std::vector<std::size_t> BitVec::ones() const {
  std::vector<std::size_t> out;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t word = words_[w];
    while (word != 0) {
      int b = std::countr_zero(word);
      out.push_back(w * 64 + static_cast<std::size_t>(b));
      word &= word - 1;
    }
  }
  return out;
}

void BitVec::clear_all() {
  for (auto& w : words_) w = 0;
}

void BitVec::set_all() {
  for (auto& w : words_) w = ~std::uint64_t{0};
  trim_tail();
}

BitVec& BitVec::operator|=(const BitVec& other) {
  AMBB_CHECK(n_ == other.n_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

BitVec& BitVec::operator&=(const BitVec& other) {
  AMBB_CHECK(n_ == other.n_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

}  // namespace ambb
