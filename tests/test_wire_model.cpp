#include "common/wire.hpp"

#include <gtest/gtest.h>

namespace ambb {
namespace {

TEST(WireModel, IdBitsIsCeilLog2) {
  EXPECT_EQ((WireModel{1, 256, 256}).id_bits(), 1u);
  EXPECT_EQ((WireModel{2, 256, 256}).id_bits(), 1u);
  EXPECT_EQ((WireModel{3, 256, 256}).id_bits(), 2u);
  EXPECT_EQ((WireModel{4, 256, 256}).id_bits(), 2u);
  EXPECT_EQ((WireModel{5, 256, 256}).id_bits(), 3u);
  EXPECT_EQ((WireModel{64, 256, 256}).id_bits(), 6u);
  EXPECT_EQ((WireModel{65, 256, 256}).id_bits(), 7u);
  EXPECT_EQ((WireModel{1024, 256, 256}).id_bits(), 10u);
}

TEST(WireModel, IdBitsRequiresNodes) {
  WireModel w{0, 256, 256};
  EXPECT_THROW(w.id_bits(), CheckError);
}

TEST(WireModel, SignatureSizesFollowKappa) {
  WireModel w{16, 256, 128};
  EXPECT_EQ(w.sig_bits(), 256u + 4u);
  EXPECT_EQ(w.thsig_bits(), 256u);  // combined == single share's MAC
  EXPECT_EQ(w.multisig_bits(), 256u + 16u);  // kappa + n-bit bitmap
  WireModel w2{16, 128, 128};
  EXPECT_EQ(w2.sig_bits(), 128u + 4u);
}

TEST(WireModel, HeaderIsKindSlotEpoch) {
  WireModel w{16, 256, 256};
  EXPECT_EQ(w.header_bits(), 8u + 32u + 16u);
}

TEST(WireModel, ThresholdSigSizeIndependentOfShareCount) {
  // The paper's assumption: thsig(m) has the length of a single share's
  // MAC, no matter how many shares were combined.
  WireModel small{8, 256, 256}, large{512, 256, 256};
  EXPECT_EQ(small.thsig_bits(), large.thsig_bits());
}

}  // namespace
}  // namespace ambb
