// TrustCast (Algorithm 5.1) properties, verified on live executions of
// Algorithm 5.2 through the driver's test hooks:
//   Integrity:        honest-honest trust edges are never removed.
//   Termination:      by TrustCast round n each honest node has the
//                     sender's value or removed the sender.
//   Transferability:  G_u(t+1) is a subgraph of G_v(t) for honest u, v.
#include "bb/quadratic_bb.hpp"

#include <gtest/gtest.h>

#include <map>

namespace ambb::quad {
namespace {

class TrustCastProperties : public ::testing::TestWithParam<std::string> {};

TEST_P(TrustCastProperties, IntegrityHonestEdgesSurvive) {
  QuadConfig cfg;
  cfg.n = 10;
  cfg.f = 5;
  cfg.slots = 12;
  cfg.seed = 5;
  cfg.adversary = GetParam();
  cfg.inspect = [&](Sim& sim) {
    for (NodeId u = 0; u < cfg.n; ++u) {
      if (sim.is_corrupt(u)) continue;
      auto* node = dynamic_cast<QuadNode*>(sim.actor(u));
      ASSERT_NE(node, nullptr);
      const TrustGraph& g = node->engine().graph();
      for (NodeId a = 0; a < cfg.n; ++a) {
        if (sim.is_corrupt(a)) continue;
        EXPECT_TRUE(g.has_vertex(a))
            << "honest vertex " << a << " missing at " << u;
        for (NodeId b = 0; b < cfg.n; ++b) {
          if (sim.is_corrupt(b) || a == b) continue;
          EXPECT_TRUE(g.has_edge(a, b))
              << "honest edge (" << a << "," << b << ") removed at node "
              << u << " under " << cfg.adversary;
        }
      }
    }
  };
  auto r = run_quadratic(cfg);
  EXPECT_TRUE(check_all(r).empty());
}

TEST_P(TrustCastProperties, TransferabilityAcrossRounds) {
  QuadConfig cfg;
  cfg.n = 8;
  cfg.f = 4;
  cfg.slots = 4;
  cfg.seed = 13;
  cfg.adversary = GetParam();

  // Snapshot every honest node's graph each round; check
  // G_u(t+1) subgraph-of G_v(t) for all honest pairs.
  std::map<NodeId, TrustGraph> prev;
  cfg.on_round_end = [&](Round r, Sim& sim) {
    std::map<NodeId, TrustGraph> cur;
    for (NodeId u = 0; u < cfg.n; ++u) {
      if (sim.is_corrupt(u)) continue;
      auto* node = dynamic_cast<QuadNode*>(sim.actor(u));
      if (node == nullptr) continue;
      cur.emplace(u, node->engine().graph());
    }
    if (!prev.empty()) {
      for (const auto& [u, gu] : cur) {
        for (const auto& [v, gv] : prev) {
          EXPECT_TRUE(gu.is_subgraph_of(gv))
              << "round " << r << ": G_" << u << "(t+1) not within G_" << v
              << "(t) under " << cfg.adversary;
        }
      }
    }
    prev = std::move(cur);
  };
  auto r = run_quadratic(cfg);
  EXPECT_TRUE(check_all(r).empty());
}

TEST_P(TrustCastProperties, TerminationValueOrRemoval) {
  QuadConfig cfg;
  cfg.n = 9;
  cfg.f = 5;
  cfg.slots = 9;
  cfg.seed = 23;
  cfg.adversary = GetParam();
  const std::uint64_t rps = Schedule{cfg.n, cfg.f}.rounds_per_slot();
  cfg.on_round_end = [&](Round r, Sim& sim) {
    // At the end of TrustCast round n of each slot.
    if (r % rps != cfg.n) return;
    for (NodeId u = 0; u < cfg.n; ++u) {
      if (sim.is_corrupt(u)) continue;
      auto* node = dynamic_cast<QuadNode*>(sim.actor(u));
      ASSERT_NE(node, nullptr);
      const bool has_value = node->engine().received_value().has_value();
      const bool sender_gone = !node->engine().sender_present();
      EXPECT_TRUE(has_value || sender_gone)
          << "round " << r << " node " << u << " under " << cfg.adversary;
    }
  };
  auto r = run_quadratic(cfg);
  EXPECT_TRUE(check_all(r).empty());
}

INSTANTIATE_TEST_SUITE_P(Adversaries, TrustCastProperties,
                         ::testing::Values("none", "silent", "equivocate",
                                           "conspiracy", "lateprop",
                                           "floodaccuse"),
                         [](const auto& info) { return info.param; });

TEST(TrustCastEngine, HonestSenderKeepsCompleteGraphWithoutFaults) {
  QuadConfig cfg;
  cfg.n = 8;
  cfg.f = 3;
  cfg.slots = 4;
  cfg.seed = 1;
  cfg.adversary = "none";
  cfg.inspect = [&](Sim& sim) {
    for (NodeId u = 0; u < cfg.n; ++u) {
      auto* node = dynamic_cast<QuadNode*>(sim.actor(u));
      ASSERT_NE(node, nullptr);
      EXPECT_EQ(node->engine().graph().edge_count(),
                static_cast<std::uint64_t>(cfg.n) * (cfg.n - 1) / 2);
    }
  };
  auto r = run_quadratic(cfg);
  EXPECT_TRUE(check_all(r).empty());
}

TEST(TrustCastEngine, SilentSenderRemovedEverywhere) {
  QuadConfig cfg;
  cfg.n = 8;
  cfg.f = 3;
  cfg.slots = 1;  // slot 1 sender = node 0 = corrupt silent
  cfg.seed = 1;
  cfg.adversary = "silent";
  cfg.inspect = [&](Sim& sim) {
    for (NodeId u = 0; u < cfg.n; ++u) {
      if (sim.is_corrupt(u)) continue;
      auto* node = dynamic_cast<QuadNode*>(sim.actor(u));
      ASSERT_NE(node, nullptr);
      EXPECT_FALSE(node->engine().graph().has_vertex(0));
      EXPECT_TRUE(node->voted_corrupt(0));
    }
  };
  auto r = run_quadratic(cfg);
  ASSERT_TRUE(check_all(r).empty());
  // Everyone commits bot for the silent sender's slot.
  for (NodeId u = cfg.f; u < cfg.n; ++u) {
    EXPECT_EQ(r.commits.get(u, 1).value, kBotValue);
  }
}

}  // namespace
}  // namespace ambb::quad
