# Empty dependencies file for test_parameter_sweeps.
# This may be replaced when dependencies are built.
