#include "crypto/sha256.hpp"

#include <cstring>

#include "common/check.hpp"
#include "common/hex.hpp"

#if defined(__x86_64__) && defined(__GNUC__)
#define AMBB_SHA_NI_DISPATCH 1
#include <immintrin.h>
#endif

namespace ambb {

namespace {

constexpr std::array<std::uint32_t, 64> kK = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline std::uint32_t rotr(std::uint32_t x, int k) {
  return (x >> k) | (x << (32 - k));
}

#ifdef AMBB_SHA_NI_DISPATCH
// SHA-NI compression (Intel SHA extensions). Computes exactly the same
// FIPS 180-4 function as the scalar path below — digests are bit-identical
// either way; only throughput differs (~10x per block). Selected at
// runtime via cpuid so the binary still runs on CPUs without the
// extension.
__attribute__((target("sha,sse4.1")))
void process_block_shani(std::array<std::uint32_t, 8>& state,
                         const std::uint8_t* block) {
  const __m128i kShuf =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  // Load state as the (ABEF, CDGH) pairs the sha256rnds2 instruction wants.
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i state1 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);
  state1 = _mm_shuffle_epi32(state1, 0x1B);
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);

  const __m128i abef_save = state0;
  const __m128i cdgh_save = state1;
  __m128i msg, msg0, msg1, msg2, msg3;

  // Rounds 0-3
  msg0 = _mm_shuffle_epi8(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 0)), kShuf);
  msg = _mm_add_epi32(
      msg0, _mm_set_epi64x(0xE9B5DBA5B5C0FBCFULL, 0x71374491428A2F98ULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

  // Rounds 4-7
  msg1 = _mm_shuffle_epi8(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 16)), kShuf);
  msg = _mm_add_epi32(
      msg1, _mm_set_epi64x(0xAB1C5ED5923F82A4ULL, 0x59F111F13956C25BULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg0 = _mm_sha256msg1_epu32(msg0, msg1);

  // Rounds 8-11
  msg2 = _mm_shuffle_epi8(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 32)), kShuf);
  msg = _mm_add_epi32(
      msg2, _mm_set_epi64x(0x550C7DC3243185BEULL, 0x12835B01D807AA98ULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg1 = _mm_sha256msg1_epu32(msg1, msg2);

  // Rounds 12-15
  msg3 = _mm_shuffle_epi8(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 48)), kShuf);
  msg = _mm_add_epi32(
      msg3, _mm_set_epi64x(0xC19BF1749BDC06A7ULL, 0x80DEB1FE72BE5D74ULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg3, msg2, 4);
  msg0 = _mm_add_epi32(msg0, tmp);
  msg0 = _mm_sha256msg2_epu32(msg0, msg3);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg2 = _mm_sha256msg1_epu32(msg2, msg3);

  // Rounds 16-19
  msg = _mm_add_epi32(
      msg0, _mm_set_epi64x(0x240CA1CC0FC19DC6ULL, 0xEFBE4786E49B69C1ULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg0, msg3, 4);
  msg1 = _mm_add_epi32(msg1, tmp);
  msg1 = _mm_sha256msg2_epu32(msg1, msg0);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg3 = _mm_sha256msg1_epu32(msg3, msg0);

  // Rounds 20-23
  msg = _mm_add_epi32(
      msg1, _mm_set_epi64x(0x76F988DA5CB0A9DCULL, 0x4A7484AA2DE92C6FULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg1, msg0, 4);
  msg2 = _mm_add_epi32(msg2, tmp);
  msg2 = _mm_sha256msg2_epu32(msg2, msg1);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg0 = _mm_sha256msg1_epu32(msg0, msg1);

  // Rounds 24-27
  msg = _mm_add_epi32(
      msg2, _mm_set_epi64x(0xBF597FC7B00327C8ULL, 0xA831C66D983E5152ULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg2, msg1, 4);
  msg3 = _mm_add_epi32(msg3, tmp);
  msg3 = _mm_sha256msg2_epu32(msg3, msg2);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg1 = _mm_sha256msg1_epu32(msg1, msg2);

  // Rounds 28-31
  msg = _mm_add_epi32(
      msg3, _mm_set_epi64x(0x1429296706CA6351ULL, 0xD5A79147C6E00BF3ULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg3, msg2, 4);
  msg0 = _mm_add_epi32(msg0, tmp);
  msg0 = _mm_sha256msg2_epu32(msg0, msg3);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg2 = _mm_sha256msg1_epu32(msg2, msg3);

  // Rounds 32-35
  msg = _mm_add_epi32(
      msg0, _mm_set_epi64x(0x53380D134D2C6DFCULL, 0x2E1B213827B70A85ULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg0, msg3, 4);
  msg1 = _mm_add_epi32(msg1, tmp);
  msg1 = _mm_sha256msg2_epu32(msg1, msg0);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg3 = _mm_sha256msg1_epu32(msg3, msg0);

  // Rounds 36-39
  msg = _mm_add_epi32(
      msg1, _mm_set_epi64x(0x92722C8581C2C92EULL, 0x766A0ABB650A7354ULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg1, msg0, 4);
  msg2 = _mm_add_epi32(msg2, tmp);
  msg2 = _mm_sha256msg2_epu32(msg2, msg1);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg0 = _mm_sha256msg1_epu32(msg0, msg1);

  // Rounds 40-43
  msg = _mm_add_epi32(
      msg2, _mm_set_epi64x(0xC76C51A3C24B8B70ULL, 0xA81A664BA2BFE8A1ULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg2, msg1, 4);
  msg3 = _mm_add_epi32(msg3, tmp);
  msg3 = _mm_sha256msg2_epu32(msg3, msg2);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg1 = _mm_sha256msg1_epu32(msg1, msg2);

  // Rounds 44-47
  msg = _mm_add_epi32(
      msg3, _mm_set_epi64x(0x106AA070F40E3585ULL, 0xD6990624D192E819ULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg3, msg2, 4);
  msg0 = _mm_add_epi32(msg0, tmp);
  msg0 = _mm_sha256msg2_epu32(msg0, msg3);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg2 = _mm_sha256msg1_epu32(msg2, msg3);

  // Rounds 48-51
  msg = _mm_add_epi32(
      msg0, _mm_set_epi64x(0x34B0BCB52748774CULL, 0x1E376C0819A4C116ULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg0, msg3, 4);
  msg1 = _mm_add_epi32(msg1, tmp);
  msg1 = _mm_sha256msg2_epu32(msg1, msg0);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg3 = _mm_sha256msg1_epu32(msg3, msg0);

  // Rounds 52-55
  msg = _mm_add_epi32(
      msg1, _mm_set_epi64x(0x682E6FF35B9CCA4FULL, 0x4ED8AA4A391C0CB3ULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg1, msg0, 4);
  msg2 = _mm_add_epi32(msg2, tmp);
  msg2 = _mm_sha256msg2_epu32(msg2, msg1);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

  // Rounds 56-59
  msg = _mm_add_epi32(
      msg2, _mm_set_epi64x(0x8CC7020884C87814ULL, 0x78A5636F748F82EEULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg2, msg1, 4);
  msg3 = _mm_add_epi32(msg3, tmp);
  msg3 = _mm_sha256msg2_epu32(msg3, msg2);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

  // Rounds 60-63
  msg = _mm_add_epi32(
      msg3, _mm_set_epi64x(0xC67178F2BEF9A3F7ULL, 0xA4506CEB90BEFFFAULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

  state0 = _mm_add_epi32(state0, abef_save);
  state1 = _mm_add_epi32(state1, cdgh_save);

  // Back to the linear a..h layout.
  tmp = _mm_shuffle_epi32(state0, 0x1B);
  state1 = _mm_shuffle_epi32(state1, 0xB1);
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);
  state1 = _mm_alignr_epi8(state1, tmp, 8);

  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}

const bool kHaveShaNi =
    __builtin_cpu_supports("sha") && __builtin_cpu_supports("sse4.1");
#endif  // AMBB_SHA_NI_DISPATCH

}  // namespace

Sha256::Sha256()
    : state_{0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
             0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19} {}

Sha256::Sha256(const Sha256Midstate& mid)
    : state_(mid.state), total_len_(mid.processed_bytes) {
  AMBB_CHECK(mid.processed_bytes % 64 == 0);
}

Sha256Midstate Sha256::midstate() const {
  AMBB_CHECK(!finalized_ && buffer_len_ == 0);
  return Sha256Midstate{state_, total_len_};
}

namespace {
void compress_scalar(std::array<std::uint32_t, 8>& state,
                     const std::uint8_t* block);

/// Single compression-function application, hardware path if available.
inline void compress(std::array<std::uint32_t, 8>& state,
                     const std::uint8_t* block) {
#ifdef AMBB_SHA_NI_DISPATCH
  if (kHaveShaNi) {
    process_block_shani(state, block);
    return;
  }
#endif
  compress_scalar(state, block);
}
}  // namespace

void Sha256::process_block(const std::uint8_t* block) {
  compress(state_, block);
}

namespace {
void compress_scalar(std::array<std::uint32_t, 8>& state,
                     const std::uint8_t* block) {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = static_cast<std::uint32_t>(block[4 * i]) << 24 |
           static_cast<std::uint32_t>(block[4 * i + 1]) << 16 |
           static_cast<std::uint32_t>(block[4 * i + 2]) << 8 |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 =
        rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 =
        rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
  std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];

  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 = h + s1 + ch + kK[i] + w[i];
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }

  state[0] += a;
  state[1] += b;
  state[2] += c;
  state[3] += d;
  state[4] += e;
  state[5] += f;
  state[6] += g;
  state[7] += h;
}
}  // namespace

Digest Sha256::finalize_block(const Sha256Midstate& mid,
                              std::span<const std::uint8_t> tail) {
  AMBB_CHECK(mid.processed_bytes % 64 == 0 && tail.size() <= 55);
  std::uint8_t block[64];
  // Guard the empty tail: memcpy from a null span data() is UB.
  if (!tail.empty()) std::memcpy(block, tail.data(), tail.size());
  block[tail.size()] = 0x80;
  std::memset(block + tail.size() + 1, 0, 55 - tail.size());
  const std::uint64_t bit_len = (mid.processed_bytes + tail.size()) * 8;
  for (int i = 0; i < 8; ++i) {
    block[56 + i] = static_cast<std::uint8_t>(bit_len >> (8 * (7 - i)));
  }
  std::array<std::uint32_t, 8> st = mid.state;
  compress(st, block);
  Digest out;
  for (int i = 0; i < 8; ++i) {
    out[4 * i] = static_cast<std::uint8_t>(st[i] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(st[i] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(st[i] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(st[i]);
  }
  return out;
}

void Sha256::update(std::span<const std::uint8_t> data) {
  AMBB_CHECK(!finalized_);
  total_len_ += data.size();
  std::size_t off = 0;
  if (buffer_len_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    off = take;
    if (buffer_len_ == 64) {
      process_block(buffer_.data());
      buffer_len_ = 0;
    }
  }
  while (off + 64 <= data.size()) {
    process_block(data.data() + off);
    off += 64;
  }
  if (off < data.size()) {
    std::memcpy(buffer_.data(), data.data() + off, data.size() - off);
    buffer_len_ = data.size() - off;
  }
}

Digest Sha256::finalize() {
  AMBB_CHECK(!finalized_);
  finalized_ = true;

  const std::uint64_t bit_len = total_len_ * 8;
  std::uint8_t pad[72];
  // 0x80 then zeros up to 56 mod 64 (closed form, not a byte loop).
  const std::size_t rem = static_cast<std::size_t>(total_len_ % 64);
  const std::size_t pad_len = (rem < 56) ? 56 - rem : 120 - rem;
  pad[0] = 0x80;
  std::memset(pad + 1, 0, pad_len - 1);

  // Manually feed padding through the block machinery.
  std::size_t off = 0;
  while (off < pad_len) {
    const std::size_t take = std::min(pad_len - off, 64 - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, pad + off, take);
    buffer_len_ += take;
    off += take;
    if (buffer_len_ == 64) {
      process_block(buffer_.data());
      buffer_len_ = 0;
    }
  }
  for (int i = 7; i >= 0; --i) {
    buffer_[buffer_len_++] = static_cast<std::uint8_t>(bit_len >> (8 * i));
  }
  AMBB_CHECK(buffer_len_ == 64);
  process_block(buffer_.data());

  Digest out;
  for (int i = 0; i < 8; ++i) {
    out[4 * i] = static_cast<std::uint8_t>(state_[i] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return out;
}

Digest Sha256::hash(std::span<const std::uint8_t> data) {
  Sha256 h;
  h.update(data);
  return h.finalize();
}

Digest digest_combine(const Digest& a, const Digest& b) {
  Sha256 h;
  const std::uint8_t sep[1] = {0x01};
  h.update(std::span<const std::uint8_t>(a.data(), a.size()));
  h.update(std::span<const std::uint8_t>(sep, 1));
  h.update(std::span<const std::uint8_t>(b.data(), b.size()));
  return h.finalize();
}

std::string digest_hex(const Digest& d) {
  return to_hex(std::span<const std::uint8_t>(d.data(), d.size()));
}

}  // namespace ambb
