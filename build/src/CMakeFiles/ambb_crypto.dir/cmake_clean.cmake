file(REMOVE_RECURSE
  "CMakeFiles/ambb_crypto.dir/crypto/hmac.cpp.o"
  "CMakeFiles/ambb_crypto.dir/crypto/hmac.cpp.o.d"
  "CMakeFiles/ambb_crypto.dir/crypto/multisig.cpp.o"
  "CMakeFiles/ambb_crypto.dir/crypto/multisig.cpp.o.d"
  "CMakeFiles/ambb_crypto.dir/crypto/serialize.cpp.o"
  "CMakeFiles/ambb_crypto.dir/crypto/serialize.cpp.o.d"
  "CMakeFiles/ambb_crypto.dir/crypto/sha256.cpp.o"
  "CMakeFiles/ambb_crypto.dir/crypto/sha256.cpp.o.d"
  "CMakeFiles/ambb_crypto.dir/crypto/signer.cpp.o"
  "CMakeFiles/ambb_crypto.dir/crypto/signer.cpp.o.d"
  "CMakeFiles/ambb_crypto.dir/crypto/threshold.cpp.o"
  "CMakeFiles/ambb_crypto.dir/crypto/threshold.cpp.o.d"
  "libambb_crypto.a"
  "libambb_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ambb_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
