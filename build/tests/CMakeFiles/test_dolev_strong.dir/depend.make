# Empty dependencies file for test_dolev_strong.
# This may be replaced when dependencies are built.
