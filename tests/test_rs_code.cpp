// Systematic erasure coder over GF(2^8) (src/crypto/rs_code.hpp): the
// chunk geometry, the any-k-of-n reconstruction guarantee at the edge
// parameter points the extension protocol actually hits (k=1
// replication, f=0 so k=n, maximal erasures), malformed-input
// rejection, and corrupted-chunk detection when the code is paired with
// the Merkle commitment as in DESIGN.md §13.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "crypto/merkle.hpp"
#include "crypto/rs_code.hpp"

namespace ambb {
namespace {

std::vector<std::uint8_t> pattern_bytes(std::size_t len) {
  std::vector<std::uint8_t> v(len);
  for (std::size_t i = 0; i < len; ++i) {
    v[i] = static_cast<std::uint8_t>(i * 37 + 11);
  }
  return v;
}

TEST(RsCode, ChunkBytesIsCeilAndNeverZero) {
  EXPECT_EQ(rs::chunk_bytes(12, 4), 3u);
  EXPECT_EQ(rs::chunk_bytes(13, 4), 4u);
  EXPECT_EQ(rs::chunk_bytes(1, 4), 1u);
  EXPECT_EQ(rs::chunk_bytes(0, 4), 1u);  // empty payload still gets a byte
  EXPECT_EQ(rs::chunk_bytes(100, 1), 100u);
}

TEST(RsCode, SystematicPrefixCarriesThePayloadVerbatim) {
  const auto data = pattern_bytes(20);
  const auto chunks = rs::encode(data, /*n=*/7, /*k=*/5);
  ASSERT_EQ(chunks.size(), 7u);
  const std::size_t cb = rs::chunk_bytes(data.size(), 5);
  ASSERT_EQ(cb, 4u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    ASSERT_EQ(chunks[i].size(), cb);
    for (std::size_t t = 0; t < cb; ++t) {
      const std::size_t pos = i * cb + t;
      const std::uint8_t want = pos < data.size() ? data[pos] : 0;
      EXPECT_EQ(chunks[i][t], want) << "chunk " << i << " byte " << t;
    }
  }
}

TEST(RsCode, KEqualsOneIsReplication) {
  // f = (n-1)/2 at n odd makes k = n - 2f = 1: every chunk IS the
  // payload, any single survivor reconstructs.
  const auto data = pattern_bytes(9);
  const auto chunks = rs::encode(data, /*n=*/5, /*k=*/1);
  ASSERT_EQ(chunks.size(), 5u);
  for (const auto& c : chunks) EXPECT_EQ(c, data);
  for (std::uint32_t i = 0; i < 5; ++i) {
    const auto back = rs::reconstruct({{i, chunks[i]}}, 5, 1, data.size());
    EXPECT_EQ(back, data) << "from column " << i;
  }
}

TEST(RsCode, FZeroMeansKEqualsNAndNeedsEveryChunk) {
  const auto data = pattern_bytes(17);
  const std::uint32_t n = 6;
  const auto chunks = rs::encode(data, n, /*k=*/n);
  std::vector<rs::Chunk> all;
  for (std::uint32_t i = 0; i < n; ++i) all.push_back({i, chunks[i]});
  EXPECT_EQ(rs::reconstruct(all, n, n, data.size()), data);

  // Dropping any one column leaves k-1 distinct indices: not enough.
  std::vector<rs::Chunk> missing(all.begin() + 1, all.end());
  EXPECT_THROW(rs::reconstruct(missing, n, n, data.size()), CheckError);
}

TEST(RsCode, MaximalErasuresAnyKSubsetReconstructs) {
  // n=9, f=3, k=3: every 3-subset of the 9 columns — including the
  // all-parity ones — must reconstruct after the other 6 are erased.
  const auto data = pattern_bytes(31);
  const std::uint32_t n = 9, k = 3;
  const auto chunks = rs::encode(data, n, k);
  for (std::uint32_t a = 0; a < n; ++a) {
    for (std::uint32_t b = a + 1; b < n; ++b) {
      for (std::uint32_t c = b + 1; c < n; ++c) {
        const std::vector<rs::Chunk> got = {
            {a, chunks[a]}, {b, chunks[b]}, {c, chunks[c]}};
        EXPECT_EQ(rs::reconstruct(got, n, k, data.size()), data)
            << "columns {" << a << "," << b << "," << c << "}";
      }
    }
  }
}

TEST(RsCode, DuplicateIndicesDoNotCountTowardK) {
  const auto data = pattern_bytes(8);
  const auto chunks = rs::encode(data, 4, 2);
  // Two copies of column 0 are one distinct index.
  EXPECT_THROW(rs::reconstruct({{0, chunks[0]}, {0, chunks[0]}}, 4, 2,
                               data.size()),
               CheckError);
  // ...but extra entries past the first k distinct ones are ignored.
  EXPECT_EQ(rs::reconstruct({{3, chunks[3]}, {3, chunks[3]}, {1, chunks[1]}},
                            4, 2, data.size()),
            data);
}

TEST(RsCode, MalformedChunksAreRejected) {
  const auto data = pattern_bytes(8);
  const auto chunks = rs::encode(data, 4, 2);
  auto short_chunk = chunks[1];
  short_chunk.pop_back();
  EXPECT_THROW(rs::reconstruct({{0, chunks[0]}, {1, short_chunk}}, 4, 2,
                               data.size()),
               CheckError);
  EXPECT_THROW(rs::reconstruct({{0, chunks[0]}, {7, chunks[1]}}, 4, 2,
                               data.size()),
               CheckError);  // index >= n
  EXPECT_THROW(rs::encode(data, /*n=*/4, /*k=*/5), CheckError);  // k > n
  EXPECT_THROW(rs::encode(data, /*n=*/300, /*k=*/2), CheckError);  // n > 256
}

TEST(RsCode, CorruptedChunkIsCaughtByTheMerkleCommitment) {
  // The coder itself cannot detect a flipped byte in a parity column —
  // the wrapper's defence is the Merkle leaf bound to (index, chunk).
  // A tampered chunk either fails verify() against the honest root, or
  // (if the receiver skipped verification) yields a payload whose
  // re-encoded tree has a different root.
  const auto data = pattern_bytes(24);
  const std::uint32_t n = 6, k = 2;
  const auto chunks = rs::encode(data, n, k);
  std::vector<Digest> leaves;
  for (std::uint32_t i = 0; i < n; ++i) {
    leaves.push_back(merkle::leaf_hash(i, chunks[i]));
  }
  const auto tree = merkle::Tree::build(leaves);

  auto evil = chunks[4];
  evil[0] ^= 0x80;
  EXPECT_FALSE(merkle::verify(tree.root(), n, 4, merkle::leaf_hash(4, evil),
                              tree.prove(4)));
  EXPECT_TRUE(merkle::verify(tree.root(), n, 4, merkle::leaf_hash(4, chunks[4]),
                             tree.prove(4)));

  const auto bad =
      rs::reconstruct({{4, evil}, {5, chunks[5]}}, n, k, data.size());
  EXPECT_NE(bad, data);
  const auto re = rs::encode(bad, n, k);
  std::vector<Digest> re_leaves;
  for (std::uint32_t i = 0; i < n; ++i) {
    re_leaves.push_back(merkle::leaf_hash(i, re[i]));
  }
  EXPECT_NE(merkle::Tree::build(re_leaves).root(), tree.root());
}

TEST(RsCode, RandomizedRoundTripProperty) {
  // Seeded property sweep: random (n, k, len, payload, erasure pattern)
  // always round-trips from k random distinct surviving columns.
  Rng rng(0xC0DEC0DEULL);
  for (int iter = 0; iter < 200; ++iter) {
    const auto n = static_cast<std::uint32_t>(rng.uniform_range(1, 24));
    const auto k = static_cast<std::uint32_t>(rng.uniform_range(1, n));
    const auto len = static_cast<std::size_t>(rng.uniform(257));
    std::vector<std::uint8_t> data(len);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());

    const auto chunks = rs::encode(data, n, k);
    ASSERT_EQ(chunks.size(), n);
    const auto cols = rng.sample_distinct(n, k);
    std::vector<rs::Chunk> got;
    for (std::uint64_t c : cols) {
      got.push_back({static_cast<std::uint32_t>(c),
                     chunks[static_cast<std::size_t>(c)]});
    }
    EXPECT_EQ(rs::reconstruct(got, n, k, len), data)
        << "iter " << iter << " n=" << n << " k=" << k << " len=" << len;
  }
}

}  // namespace
}  // namespace ambb
