file(REMOVE_RECURSE
  "libambb_runner.a"
)
