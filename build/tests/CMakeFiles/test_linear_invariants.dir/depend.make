# Empty dependencies file for test_linear_invariants.
# This may be replaced when dependencies are built.
