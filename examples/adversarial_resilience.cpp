// Adversarial resilience tour: runs Algorithm 4 against every implemented
// attack — including a strongly adaptive adversary performing
// after-the-fact message removal — verifies the multi-shot BB properties,
// and shows the amortization kicking in (early vs steady-state cost).
#include <cstdio>
#include <string>

#include "bb/linear_bb.hpp"
#include "runner/result.hpp"
#include "runner/table.hpp"

int main() {
  using namespace ambb;

  const std::uint32_t n = 20, f = 8;
  const Slot slots = 60;

  std::printf(
      "Algorithm 4 under every implemented adversary (n=%u, f=%u, L=%u)\n\n",
      n, f, slots);

  TextTable t({"adversary", "properties", "amortized (first 10)",
               "steady state (last 30)", "amortization factor"});
  for (const char* adv : {"none", "silent", "equivocate", "selective",
                          "flood", "mixed", "adaptive-erase"}) {
    linear::LinearConfig cfg;
    cfg.n = n;
    cfg.f = f;
    cfg.slots = slots;
    cfg.seed = 5;
    cfg.adversary = adv;
    RunResult r = linear::run_linear(cfg);
    auto errs = check_all(r);
    const double head = r.amortized(10);
    const double tail = r.amortized_tail(30);
    t.add_row({adv, errs.empty() ? "all hold" : "VIOLATED",
               TextTable::bits_human(head), TextTable::bits_human(tail),
               TextTable::num(head / tail, 2) + "x"});
    for (const auto& e : errs) std::printf("  !! %s\n", e.c_str());
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "The 'amortization factor' is how much cheaper a steady-state slot is "
      "than the first slots, i.e. the one-time\nO(kappa n^3) term "
      "(accusations, corrupt-proofs, query bursts) being paid off — the "
      "paper's central claim.\n");
  return 0;
}
