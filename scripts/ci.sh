#!/usr/bin/env bash
# Tier-1 gate plus the sanitizer passes.
#
#   scripts/ci.sh          # full: tier-1, trace lane, TSan engine, ASan+UBSan
#   scripts/ci.sh tier1    # only the tier-1 build + full test suite
#   scripts/ci.sh trace    # only the trace suite (`ctest -L trace`) + a
#                          # sweep --trace-dir smoke run
#   scripts/ci.sh tsan     # only the TSan build + `ctest -L "engine|ext"`
#   scripts/ci.sh asan     # only the ASan+UBSan build + `ctest -L "adversary|engine|ext"`
#
# The TSan stage rebuilds into build-tsan/ (see CMakePresets.json) and runs
# exactly the engine-labelled tests: they exercise the worker pool with
# real protocol drivers, so a data race anywhere on the job path —
# engine, sweep expansion, registry, simulator — trips it.
#
# The trace stage runs the TraceSink suite (golden JSONL, pure-observer
# and --jobs determinism checks) and then smoke-tests the end-to-end
# surface: ambb_sweep --trace-dir must write one trace per job and exit
# zero. The JsonlSink-under-the-worker-pool case is additionally covered
# by the TSan stage, because test_trace_determinism carries the engine
# label too.
#
# The ASan+UBSan stage rebuilds into build-asan/ and runs the adversary
# and engine suites: the fault-injection paths (after-the-fact erasure,
# mid-run actor replacement, staggered-release buffers) are exactly where
# a stale Delivery pointer or index overflow would hide, and the
# fuzz-schedule tests drive them through hundreds of random compositions.
#
# Both sanitizer stages also take the ext suite (erasure coder, Merkle
# proofs, the long-message extension driver): GF(2^8) table indexing and
# the nested base-family simulation inside each ext cell are prime
# out-of-bounds / shared-state candidates.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 2)"
stage="${1:-all}"

tier1() {
  echo "== tier-1: configure + build =="
  cmake --preset default
  cmake --build --preset default -j "$jobs"
  echo "== tier-1: ctest =="
  ctest --preset default -j "$jobs"
}

trace() {
  echo "== trace: configure + build =="
  cmake --preset default
  cmake --build --preset default -j "$jobs"
  echo "== trace: ctest -L trace =="
  ctest --preset trace -j "$jobs"
  echo "== trace: sweep --trace-dir smoke =="
  local dir
  dir="$(mktemp -d)"
  (cd "$dir" && "$OLDPWD/build/tools/ambb_sweep" \
      --spec "$OLDPWD/tools/specs/f2_scaling.spec" \
      --filter alg4 --trace-dir traces)
  ls "$dir"/traces/*.jsonl >/dev/null
  echo "== trace: payload-scaling sweep smoke =="
  (cd "$dir" && "$OLDPWD/build/tools/ambb_sweep" \
      --spec "$OLDPWD/tools/specs/payload_scaling.spec" \
      --filter ext-lin --out payload_smoke)
  rm -rf "$dir"
}

tsan() {
  echo "== tsan: configure + build =="
  cmake --preset tsan
  cmake --build --preset tsan -j "$jobs"
  echo "== tsan: ctest -L 'engine|ext' =="
  # halt_on_error promotes any race report to a test failure.
  TSAN_OPTIONS="halt_on_error=1" ctest --preset tsan -j "$jobs"
}

asan() {
  echo "== asan: configure + build =="
  cmake --preset asan
  cmake --build --preset asan -j "$jobs"
  echo "== asan: ctest -L 'adversary|engine|ext' =="
  ASAN_OPTIONS="halt_on_error=1:detect_leaks=0" \
    UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    ctest --preset asan -j "$jobs"
}

case "$stage" in
  tier1) tier1 ;;
  trace) trace ;;
  tsan) tsan ;;
  asan) asan ;;
  all)
    tier1
    trace
    tsan
    asan
    ;;
  *)
    echo "usage: $0 [tier1|trace|tsan|asan|all]" >&2
    exit 2
    ;;
esac

echo "ci: OK ($stage)"
