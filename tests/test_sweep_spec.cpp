// SweepSpec expansion and the ambb_sweep spec-file parser
// (src/engine/sweep.hpp): cross-product order, label scheme, fault-load
// selection modes, filtering, registry validation, and the line-oriented
// parse errors.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/check.hpp"
#include "engine/sweep.hpp"
#include "runner/registry.hpp"

namespace ambb::engine {
namespace {

TEST(SweepExpand, DefaultsGiveOneJobWithMinimalLabel) {
  SweepSpec spec;
  spec.protocol = "phase-king";
  const auto jobs = expand(spec);
  ASSERT_EQ(jobs.size(), 1u);
  // No explicit name: the protocol prefixes the label; single-valued
  // dimensions (f, L, seed, rep) are omitted after /n.
  EXPECT_EQ(jobs[0].label, "phase-king/none/n16");
  EXPECT_EQ(jobs[0].protocol, "phase-king");
  EXPECT_EQ(jobs[0].params.n, 16u);
  EXPECT_EQ(jobs[0].params.f, 16u / 3);  // default fault load n/3
  EXPECT_EQ(jobs[0].params.slots, Slot{8});
  EXPECT_EQ(jobs[0].params.seed, 1u);
  EXPECT_FALSE(jobs[0].allow_stall);
}

TEST(SweepExpand, CrossProductOrderIsNThenFThenSlotsThenAdvThenSeedThenRep) {
  SweepSpec spec;
  spec.name = "grid";
  spec.protocol = "dolev-strong";
  spec.ns = {8, 12};
  spec.fs = {1, 2};
  spec.slots_list = {4, 6};
  spec.adversaries = {"none", "silent"};
  spec.seed_begin = 1;
  spec.seed_end = 2;
  spec.repetitions = 2;

  const auto jobs = expand(spec);
  ASSERT_EQ(jobs.size(), 64u);  // 2*2*2*2*2*2

  // Innermost dimension first: repetitions vary fastest, n slowest.
  EXPECT_EQ(jobs[0].label, "grid/none/n8/f1/L4/s1/r1");
  EXPECT_EQ(jobs[1].label, "grid/none/n8/f1/L4/s1/r2");
  EXPECT_EQ(jobs[2].label, "grid/none/n8/f1/L4/s2/r1");
  EXPECT_EQ(jobs[4].label, "grid/silent/n8/f1/L4/s1/r1");
  EXPECT_EQ(jobs[8].label, "grid/none/n8/f1/L6/s1/r1");
  EXPECT_EQ(jobs[16].label, "grid/none/n8/f2/L4/s1/r1");
  EXPECT_EQ(jobs[32].label, "grid/none/n12/f1/L4/s1/r1");
  EXPECT_EQ(jobs[63].label, "grid/silent/n12/f2/L6/s2/r2");

  // Params track the label.
  EXPECT_EQ(jobs[63].params.n, 12u);
  EXPECT_EQ(jobs[63].params.f, 2u);
  EXPECT_EQ(jobs[63].params.slots, Slot{6});
  EXPECT_EQ(jobs[63].params.adversary, "silent");
  EXPECT_EQ(jobs[63].params.seed, 2u);
}

TEST(SweepExpand, FFracFloorsPerNMatchingBenchArithmetic) {
  SweepSpec spec;
  spec.protocol = "linear";
  spec.ns = {24, 32, 48};
  spec.f_frac = 0.3;
  const auto jobs = expand(spec);
  ASSERT_EQ(jobs.size(), 3u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    // Exactly the cast the benches use: static_cast<uint32_t>(0.3 * n).
    EXPECT_EQ(jobs[i].params.f,
              static_cast<std::uint32_t>(0.3 * spec.ns[i]));
  }
}

TEST(SweepExpand, FMaxUsesTheRegistryBound) {
  SweepSpec spec;
  spec.protocol = "phase-king";
  spec.ns = {10, 16};
  spec.f_max = true;
  const auto jobs = expand(spec);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].params.f, (10u - 1) / 3);
  EXPECT_EQ(jobs[1].params.f, (16u - 1) / 3);
}

TEST(SweepExpand, SlotsPerNScalesWithN) {
  SweepSpec spec;
  spec.protocol = "linear";
  spec.ns = {10, 20};
  spec.slots_per_n = 3;
  const auto jobs = expand(spec);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].params.slots, Slot{30});
  EXPECT_EQ(jobs[1].params.slots, Slot{60});
}

TEST(SweepExpand, AllowStallComesFromRegistryLivenessFailures) {
  SweepSpec spec;
  spec.protocol = "hotstuff";
  spec.ns = {7};
  spec.fs = {2};
  spec.adversaries = {"none", "selective"};
  const auto jobs = expand(spec);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_FALSE(jobs[0].allow_stall);  // none
  EXPECT_TRUE(jobs[1].allow_stall);   // selective: known stall
}

TEST(SweepExpand, ValidationErrors) {
  SweepSpec spec;
  spec.protocol = "no-such-protocol";
  EXPECT_THROW(expand(spec), CheckError);

  spec.protocol = "phase-king";
  spec.adversaries = {"mixed"};  // a linear-family spec, not phase-king's
  EXPECT_THROW(expand(spec), CheckError);

  spec.adversaries = {"none"};
  spec.ns = {8};
  spec.fs = {8};  // f >= n
  EXPECT_THROW(expand(spec), CheckError);

  spec.fs = {2};
  spec.seed_begin = 5;
  spec.seed_end = 4;  // backwards range
  EXPECT_THROW(expand(spec), CheckError);

  spec.seed_end = 5;
  spec.repetitions = 0;
  EXPECT_THROW(expand(spec), CheckError);
}

TEST(SweepExpand, ExpandAllConcatenatesInSpecOrder) {
  SweepSpec a;
  a.name = "a";
  a.protocol = "phase-king";
  SweepSpec b;
  b.name = "b";
  b.protocol = "dolev-strong";
  b.ns = {8};
  b.fs = {1};
  const auto jobs = expand_all({a, b});
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].label, "a/none/n16");
  EXPECT_EQ(jobs[1].label, "b/none/n8");
}

TEST(SweepFilter, SubstringOnLabelsEmptyKeepsAll) {
  SweepSpec spec;
  spec.name = "flt";
  spec.protocol = "dolev-strong";
  spec.ns = {8, 12};
  spec.fs = {1};
  spec.adversaries = {"none", "stagger"};
  auto jobs = expand(spec);
  ASSERT_EQ(jobs.size(), 4u);

  const auto stagger = filter_jobs(jobs, "stagger");
  ASSERT_EQ(stagger.size(), 2u);
  EXPECT_EQ(stagger[0].label, "flt/stagger/n8");
  EXPECT_EQ(stagger[1].label, "flt/stagger/n12");

  EXPECT_EQ(filter_jobs(jobs, "n12").size(), 2u);
  EXPECT_EQ(filter_jobs(jobs, "").size(), 4u);
  EXPECT_TRUE(filter_jobs(jobs, "no-match").empty());
}

TEST(SweepToEngineJob, ClosureRunsTheRegistryDriverWithTheCellParams) {
  SweepSpec spec;
  spec.protocol = "phase-king";
  spec.ns = {10};
  spec.fs = {3};
  spec.slots_list = {4};
  spec.seed_begin = spec.seed_end = 41;
  const auto sjs = expand(spec);
  ASSERT_EQ(sjs.size(), 1u);

  const Job job = to_engine_job(sjs[0]);
  EXPECT_EQ(job.label, sjs[0].label);
  const RunResult r = job.run();
  EXPECT_EQ(r.n, 10u);
  EXPECT_EQ(r.f, 3u);
  EXPECT_EQ(r.slots, Slot{4});
  EXPECT_EQ(check_all(r), std::vector<std::string>{});
}

TEST(SpecParser, ParsesBlocksCommentsAndAllKeys) {
  const std::string text = R"(# leading comment
sweep alg4
protocol linear
n 24 32          # trailing comment
f-frac 0.3
slots-per-n 3
adversary mixed none
seeds 7 9
reps 2
eps 0.2
kappa 512
value-bits 128

sweep kings
protocol phase-king
n 10
f max
slots 4 6
)";
  const auto specs = parse_spec(text);
  ASSERT_EQ(specs.size(), 2u);

  const SweepSpec& s0 = specs[0];
  EXPECT_EQ(s0.name, "alg4");
  EXPECT_EQ(s0.protocol, "linear");
  EXPECT_EQ(s0.ns, (std::vector<std::uint32_t>{24, 32}));
  EXPECT_DOUBLE_EQ(s0.f_frac, 0.3);
  EXPECT_EQ(s0.slots_per_n, 3u);
  EXPECT_EQ(s0.adversaries, (std::vector<std::string>{"mixed", "none"}));
  EXPECT_EQ(s0.seed_begin, 7u);
  EXPECT_EQ(s0.seed_end, 9u);
  EXPECT_EQ(s0.repetitions, 2u);
  EXPECT_DOUBLE_EQ(s0.eps, 0.2);
  EXPECT_EQ(s0.kappa_bits, 512u);
  EXPECT_EQ(s0.value_bits, 128u);

  const SweepSpec& s1 = specs[1];
  EXPECT_EQ(s1.name, "kings");
  EXPECT_TRUE(s1.f_max);
  EXPECT_EQ(s1.slots_list, (std::vector<Slot>{4, 6}));
  // Unset keys keep their defaults in the second block.
  EXPECT_EQ(s1.adversaries, std::vector<std::string>{"none"});
  EXPECT_EQ(s1.repetitions, 1u);

  // End-to-end expansion: 2n * 2adv * 3seeds * 2reps + 1n * 2slots.
  EXPECT_EQ(expand_all(specs).size(), 24u + 2u);
}

TEST(SpecParser, ErrorsCarryTheOffendingLine) {
  auto expect_parse_error = [](const std::string& text,
                               const std::string& needle) {
    try {
      parse_spec(text);
      FAIL() << "expected CheckError for:\n" << text;
    } catch (const CheckError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };

  expect_parse_error("protocol linear\n", "key before any 'sweep'");
  expect_parse_error("sweep x\nfrobnicate 3\n", "unknown key 'frobnicate'");
  expect_parse_error("sweep x\nprotocol linear\nn\n", "needs a value");
  expect_parse_error("sweep x\nprotocol linear\nn twelve\n", "line 3");
  expect_parse_error("sweep x\nprotocol linear\nseeds 4\n",
                     "'seeds' needs begin end");
  expect_parse_error("sweep one two\n", "'sweep' needs one name");
  expect_parse_error("sweep x\nn 8\n", "has no 'protocol' key");
}

}  // namespace
}  // namespace ambb::engine
