// Parameter sweeps orthogonal to the main property suites:
//   - Algorithm 4 across the expander parameter eps (the f <= (1/2-eps)n
//     trade-off of Section 4) at the matching maximal f;
//   - cost scaling in the security parameter kappa: crypto-bearing
//     protocols scale ~linearly in kappa (their Table 1 rows carry a
//     kappa factor), the crypto-free phase-king does not;
//   - value-width independence of the signature machinery.
#include <gtest/gtest.h>

#include <map>
#include <tuple>
#include <utility>

#include "bb/linear_bb.hpp"
#include "bb/phase_king.hpp"
#include "bb/quadratic_bb.hpp"
#include "engine/sweep.hpp"

namespace ambb {
namespace {

using EpsParam = std::tuple<double, std::string>;

constexpr double kEpsValues[] = {0.05, 0.1, 0.15, 0.2, 0.25};
constexpr const char* kEpsAdversaries[] = {"none", "silent", "mixed"};

/// The whole eps grid, expanded declaratively (one SweepSpec per eps, so
/// f is coupled to eps via f-frac = 1/2 - eps) and executed ONCE on the
/// engine's worker pool; each TEST_P below then asserts its own cell.
const RunResult& eps_result(double eps, const std::string& adv) {
  static const auto cache = [] {
    std::vector<engine::SweepSpec> specs;
    for (double e : kEpsValues) {
      engine::SweepSpec spec;
      spec.name = "eps" + std::to_string(static_cast<int>(e * 100));
      spec.protocol = "linear";
      spec.ns = {20};
      spec.f_frac = 0.5 - e;  // maximal fault load for this eps
      spec.eps = e;
      spec.slots_list = {6};
      spec.adversaries = {kEpsAdversaries[0], kEpsAdversaries[1],
                          kEpsAdversaries[2]};
      spec.seed_begin = spec.seed_end = 37;
      specs.push_back(std::move(spec));
    }
    const auto sweep_jobs = engine::expand_all(specs);
    const auto outcomes =
        engine::Engine(4).run(engine::to_engine_jobs(sweep_jobs));

    std::map<std::pair<int, std::string>, RunResult> results;
    std::size_t i = 0;
    for (double e : kEpsValues) {
      for (const char* a : kEpsAdversaries) {
        EXPECT_TRUE(outcomes[i].completed)
            << outcomes[i].label << ": " << outcomes[i].error;
        results[{static_cast<int>(e * 100), a}] = outcomes[i].result;
        ++i;
      }
    }
    return results;
  }();
  return cache.at({static_cast<int>(eps * 100), adv});
}

class EpsSweep : public ::testing::TestWithParam<EpsParam> {};

TEST_P(EpsSweep, LinearCorrectAtMaximalFaultLoad) {
  const auto& [eps, adv] = GetParam();
  const RunResult& r = eps_result(eps, adv);
  EXPECT_EQ(r.f, static_cast<std::uint32_t>((0.5 - eps) * 20));
  EXPECT_EQ(check_all(r), std::vector<std::string>{})
      << "eps=" << eps << " f=" << r.f << " adv=" << adv;
}

INSTANTIATE_TEST_SUITE_P(
    Eps, EpsSweep,
    ::testing::Combine(::testing::Values(0.05, 0.1, 0.15, 0.2, 0.25),
                       ::testing::Values("none", "silent", "mixed")),
    [](const auto& info) {
      return "eps" +
             std::to_string(
                 static_cast<int>(std::get<0>(info.param) * 100)) +
             "_" + std::get<1>(info.param);
    });

TEST(KappaScaling, LinearCostScalesWithKappa) {
  auto run_with_kappa = [](std::uint32_t kappa) {
    linear::LinearConfig cfg;
    cfg.n = 16;
    cfg.f = 6;
    cfg.slots = 8;
    cfg.seed = 41;
    cfg.kappa_bits = kappa;
    cfg.value_bits = 64;  // keep the value term small relative to kappa
    auto r = linear::run_linear(cfg);
    EXPECT_TRUE(check_all(r).empty());
    return static_cast<double>(r.honest_bits);
  };
  const double c256 = run_with_kappa(256);
  const double c512 = run_with_kappa(512);
  // Same execution, double-width signatures: cost grows by a factor in
  // (1, 2] — strictly more than fixed headers, at most the full kappa
  // share.
  EXPECT_GT(c512 / c256, 1.3);
  EXPECT_LE(c512 / c256, 2.0);
}

TEST(KappaScaling, QuadraticCostScalesWithKappa) {
  auto run_with_kappa = [](std::uint32_t kappa) {
    quad::QuadConfig cfg;
    cfg.n = 10;
    cfg.f = 5;
    cfg.slots = 10;
    cfg.seed = 41;
    cfg.kappa_bits = kappa;
    cfg.value_bits = 64;
    cfg.adversary = "silent";
    auto r = quad::run_quadratic(cfg);
    EXPECT_TRUE(check_all(r).empty());
    return static_cast<double>(r.honest_bits);
  };
  const double ratio = run_with_kappa(512) / run_with_kappa(256);
  EXPECT_GT(ratio, 1.3);
  EXPECT_LE(ratio, 2.0);
}

TEST(KappaScaling, PhaseKingIsKappaFree) {
  auto run_with_kappa = [](std::uint32_t kappa) {
    pk::PkConfig cfg;
    cfg.n = 10;
    cfg.f = 3;
    cfg.slots = 4;
    cfg.seed = 41;
    cfg.kappa_bits = kappa;
    auto r = pk::run_phase_king(cfg);
    EXPECT_TRUE(check_all(r).empty());
    return r.honest_bits;
  };
  // No signatures anywhere: bit-for-bit identical runs.
  EXPECT_EQ(run_with_kappa(128), run_with_kappa(1024));
}

TEST(ValueWidth, CostsGrowWithValueBitsButExecutionIsIdentical) {
  auto run_with_value_bits = [](std::uint32_t vb) {
    linear::LinearConfig cfg;
    cfg.n = 14;
    cfg.f = 5;
    cfg.slots = 5;
    cfg.seed = 43;
    cfg.value_bits = vb;
    auto r = linear::run_linear(cfg);
    EXPECT_TRUE(check_all(r).empty());
    return r;
  };
  auto narrow = run_with_value_bits(64);
  auto wide = run_with_value_bits(1024);
  EXPECT_LT(narrow.honest_bits, wide.honest_bits);
  // The executions themselves (commits, message counts) are identical —
  // only the charged widths differ.
  EXPECT_EQ(narrow.honest_msgs, wide.honest_msgs);
  for (Slot k = 1; k <= 5; ++k) {
    EXPECT_EQ(narrow.commits.get(7, k).value, wide.commits.get(7, k).value);
  }
}

TEST(SenderSchedules, FixedAndReversedSchedulesWork) {
  for (int mode = 0; mode < 2; ++mode) {
    linear::LinearConfig cfg;
    cfg.n = 12;
    cfg.f = 4;
    cfg.slots = 6;
    cfg.seed = 47;
    cfg.adversary = "silent";
    cfg.sender_of = mode == 0
                        ? std::function<NodeId(Slot)>(
                              [](Slot) { return NodeId{11}; })
                        : std::function<NodeId(Slot)>([](Slot k) {
                            return static_cast<NodeId>(11 - (k - 1) % 12);
                          });
    auto r = linear::run_linear(cfg);
    EXPECT_EQ(check_all(r), std::vector<std::string>{}) << "mode " << mode;
  }
}

}  // namespace
}  // namespace ambb
