#include "bb/linear_adversary.hpp"

#include <algorithm>

#include "adversary/scheduled.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"

namespace ambb::linear {

namespace {

// ---------------------------------------------------------------------------
// Deviations
// ---------------------------------------------------------------------------

class SilentDev final : public Deviation {
 public:
  bool silent(Round) const override { return true; }
};

/// Corrupt leader proposes value A to the lower half of the nodes and
/// value B to the upper half. Honest nodes detect the equivocation via
/// the expander forwarding and accuse.
class EquivocateDev final : public Deviation {
 public:
  bool override_propose(LinearNode& self, RoundApi<Msg>& api) override {
    const std::uint32_t n = self.ctx().n;
    const Msg a = self.build_fresh_proposal(0xAAAA);
    const Msg b = self.build_fresh_proposal(0xBBBB);
    for (NodeId v = 0; v < n; ++v) api.send(v, v < n / 2 ? a : b);
    return true;
  }
};

/// Corrupt leader runs the epoch honestly (so certificates and a
/// commit-proof do form) but withholds the commit-proof from a rotating
/// subset of nodes, and never answers Query-1/2. This is the message
/// dissemination attack of Section 1 / Appendix A.
class SelectiveDev final : public Deviation {
 public:
  SelectiveDev(const Context* ctx, std::uint64_t seed)
      : ctx_(ctx), seed_(seed) {}

  bool drop_send(Round r, std::uint32_t offset, Kind kind,
                 NodeId to) override {
    if (kind != Kind::kCommitProof) return false;
    if (offset == 8 || offset == 10) return true;  // never help queriers
    if (offset != 6) return false;
    // Starve a rotating quarter of the nodes each slot.
    const Slot k = ctx_->sched.slot_of(r);
    const std::uint32_t n = ctx_->n;
    const std::uint32_t span = std::max<std::uint32_t>(1, n / 4);
    std::uint64_t h = seed_ + k;
    const std::uint32_t base =
        static_cast<std::uint32_t>(splitmix64(h) % n);
    const std::uint32_t dist = (to + n - base) % n;
    return dist < span;
  }

 private:
  const Context* ctx_;
  std::uint64_t seed_;
};

/// Corrupt node spams a fresh accusation + query2 every epoch to elicit
/// Respond-2 replies from every honest node that holds a commit-proof.
/// Section 4.2 bounds the damage: once it runs out of fresh nodes to
/// accuse, honest nodes stop responding.
class FloodDev final : public Deviation {
 public:
  void extra(LinearNode& self, Round r, std::uint32_t offset,
             RoundApi<Msg>& api) override {
    (void)r;
    if (offset != 9) return;
    const std::uint32_t n = self.ctx().n;
    for (NodeId w = 0; w < n; ++w) {
      if (w == self.id() || self.accused(w)) continue;
      self.issue_accuse(w, api);
      api.multicast(self.build_query2());
      return;
    }
  }
};

/// Runs the honest logic but drops every outgoing message independently
/// with probability p — a lossy/flaky Byzantine node. As a leader this
/// produces partially formed epochs (missing votes, missing proofs) in
/// patterns none of the targeted strategies cover.
class RandomDropDev final : public Deviation {
 public:
  RandomDropDev(std::uint64_t seed, double p) : rng_(seed), p_(p) {}

  bool drop_send(Round, std::uint32_t, Kind, NodeId) override {
    return rng_.chance(p_);
  }

 private:
  Rng rng_;
  double p_;
};

std::unique_ptr<Deviation> make_deviation_for_role(const std::string& role,
                                                   const Context* ctx,
                                                   std::uint64_t seed) {
  if (role == "silent") return std::make_unique<SilentDev>();
  if (role == "equivocate") return std::make_unique<EquivocateDev>();
  if (role == "selective") return std::make_unique<SelectiveDev>(ctx, seed);
  if (role == "flood") return std::make_unique<FloodDev>();
  if (role == "drop") return std::make_unique<RandomDropDev>(seed, 0.35);
  AMBB_CHECK_MSG(false, "unknown deviation role " << role);
}

// ---------------------------------------------------------------------------
// Adversaries, expressed as fault schedules (src/adversary/)
// ---------------------------------------------------------------------------

using SchedAdv = adversary::ScheduledAdversary<Msg>;

/// Schedule fragment shared by all static strategies: the first f nodes
/// are corrupt from round 0.
adversary::FaultSchedule corrupt_first_f(std::uint32_t f) {
  adversary::FaultSchedule s;
  for (NodeId v = 0; v < f; ++v) {
    s.corruptions.push_back(adversary::CorruptEvent{0, v});
  }
  return s;
}

/// Static strategy = corrupt-first-f schedule + Deviation-carrying
/// LinearNodes plugged in through the byzantine-factory override.
std::unique_ptr<Adversary<Msg>> make_static(
    const Context* ctx, std::uint64_t seed,
    std::function<std::string(std::uint32_t idx)> role_of) {
  return std::make_unique<SchedAdv>(
      corrupt_first_f(ctx->f), ctx->n, seed, nullptr,
      [ctx, seed, role_of = std::move(role_of)](NodeId node) {
        return std::make_unique<LinearNode>(
            node, ctx,
            make_deviation_for_role(role_of(node), ctx, seed + node));
      });
}

/// Strongly adaptive demonstration: no initial corruption; corrupts the
/// slot-1 sender right after it multicasts its proposal (slot 1, epoch 0,
/// offset 1 = absolute round 1) and erases the proposal copies addressed
/// to odd nodes (after-the-fact message removal). The corrupted sender is
/// silent afterwards.
std::unique_ptr<Adversary<Msg>> make_adaptive_erase(const Context* ctx,
                                                    std::uint64_t seed) {
  const NodeId sender = ctx->sender_of(1);
  adversary::FaultSchedule s;
  s.corruptions.push_back(adversary::CorruptEvent{2, sender});
  auto adv = std::make_unique<SchedAdv>(
      std::move(s), ctx->n, seed, nullptr, [ctx](NodeId node) {
        return std::make_unique<LinearNode>(node, ctx,
                                            std::make_unique<SilentDev>());
      });
  adv->add_erase(
      adversary::EraseEvent{/*round=*/1, sender, adversary::kDensityAll,
                            /*to_mod=*/2, /*to_rem=*/1, /*salt=*/0},
      [](NodeId, const Msg& m) { return m.kind == Kind::kPropose; });
  return adv;
}

}  // namespace

std::unique_ptr<Adversary<Msg>> make_adversary(const std::string& spec,
                                               const Context* ctx,
                                               std::uint64_t seed,
                                               Round horizon,
                                               NetPolicy net) {
  if (spec == "none") return nullptr;
  if (adversary::is_schedule_spec(spec)) {
    adversary::ScheduleEnv<Msg> env;
    env.n = ctx->n;
    env.f = ctx->f;
    env.seed = seed;
    env.horizon = horizon;
    env.trace = ctx->trace;
    env.net = net;
    // No-op Deviation marker: the corrupted-seat replica is behaviourally
    // honest, but any honest-only invariant in LinearNode must treat it
    // as Byzantine (it may start from fresh state mid-run).
    env.honest_factory = [ctx](NodeId node) {
      return std::make_unique<LinearNode>(node, ctx,
                                          std::make_unique<Deviation>());
    };
    return adversary::make_scheduled_adversary<Msg>(spec, env);
  }
  if (spec == "silent" || spec == "equivocate" || spec == "selective" ||
      spec == "flood" || spec == "drop") {
    return make_static(ctx, seed, [spec](std::uint32_t) { return spec; });
  }
  if (spec == "chaos") {
    // Seeded random role per corrupt node: covers strategy combinations
    // the hand-picked mixes do not.
    return make_static(ctx, seed, [seed](std::uint32_t idx) -> std::string {
      static const char* kRoles[] = {"silent", "equivocate", "selective",
                                     "flood", "drop"};
      std::uint64_t h = seed ^ (0x9e3779b97f4a7c15ULL * (idx + 1));
      return kRoles[splitmix64(h) % 5];
    });
  }
  if (spec == "mixed") {
    return make_static(ctx, seed, [](std::uint32_t idx) -> std::string {
      switch (idx % 4) {
        case 0: return "selective";
        case 1: return "silent";
        case 2: return "flood";
        default: return "equivocate";
      }
    });
  }
  if (spec == "adaptive-erase") {
    return make_adaptive_erase(ctx, seed);
  }
  AMBB_CHECK_MSG(false, "unknown adversary spec '" << spec << "'");
}

}  // namespace ambb::linear
