// Trust graph for TrustCast (Algorithm 5.1, simplified from Wan et al.).
//
// Each node maintains an undirected graph over the n nodes whose edges
// represent pairwise trust. Edges disappear when accusations are observed;
// vertices disappear when they become unconnected from the owner. The
// protocol invariants (transferability / termination / integrity) are
// properties of how the owning node updates this structure.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitvec.hpp"
#include "common/types.hpp"

namespace ambb {

class TrustGraph {
 public:
  /// Complete graph over n vertices.
  explicit TrustGraph(std::uint32_t n);

  std::uint32_t n() const { return n_; }

  bool has_vertex(NodeId v) const;
  bool has_edge(NodeId u, NodeId v) const;

  /// Remove the edge (u, v); no-op if absent or if a vertex is gone.
  void remove_edge(NodeId u, NodeId v);

  /// Remove vertex v and all incident edges.
  void remove_vertex(NodeId v);

  std::uint32_t vertex_count() const;
  std::uint64_t edge_count() const;

  /// BFS hop distances from src over present vertices; kUnreachable for
  /// unreachable or absent vertices.
  static constexpr std::uint32_t kUnreachable = 0xffffffff;
  std::vector<std::uint32_t> distances_from(NodeId src) const;

  /// Remove every vertex with no path to `owner` (TrustCast's rule
  /// "remove all vertices unconnected with vertex u").
  void prune_unconnected(NodeId owner);

  /// True iff this graph's vertices and edges are a subset of other's
  /// (the transferability property quantifies over this relation).
  bool is_subgraph_of(const TrustGraph& other) const;

 private:
  std::uint32_t n_;
  BitVec present_;
  std::vector<BitVec> adj_;
};

}  // namespace ambb
