#include "crypto/signer.hpp"

#include "common/byte_buf.hpp"
#include "common/check.hpp"
#include "crypto/hmac.hpp"

namespace ambb {

namespace {
Digest derive_key(const Digest& master, std::uint64_t index) {
  Encoder e;
  e.put_tag("ambb-node-key");
  e.put_u64(index);
  const Digest d = Sha256::hash(std::span<const std::uint8_t>(
      e.bytes().data(), e.bytes().size()));
  return hmac_sha256(master, d);
}

Digest tag_digest(const char* domain, const Digest& d) {
  Encoder e;
  e.put_tag(domain);
  e.put_bytes(std::span<const std::uint8_t>(d.data(), d.size()));
  return Sha256::hash(std::span<const std::uint8_t>(e.bytes().data(),
                                                    e.bytes().size()));
}
}  // namespace

KeyRegistry::KeyRegistry(std::uint32_t n, std::uint64_t master_seed) : n_(n) {
  AMBB_CHECK(n >= 1);
  Encoder e;
  e.put_tag("ambb-master-key");
  e.put_u64(master_seed);
  master_key_ = Sha256::hash(std::span<const std::uint8_t>(
      e.bytes().data(), e.bytes().size()));
  node_keys_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    node_keys_.push_back(derive_key(master_key_, i));
  }
}

Signature KeyRegistry::sign(NodeId signer, const Digest& d) const {
  AMBB_CHECK(signer < n_);
  return Signature{signer, hmac_sha256(node_keys_[signer],
                                       tag_digest("sig", d))};
}

bool KeyRegistry::verify(const Signature& sig, const Digest& d) const {
  if (sig.signer >= n_) return false;
  return sig.mac == hmac_sha256(node_keys_[sig.signer], tag_digest("sig", d));
}

Digest KeyRegistry::mac_as(NodeId i, const char* domain,
                           const Digest& d) const {
  AMBB_CHECK(i < n_);
  return hmac_sha256(node_keys_[i], tag_digest(domain, d));
}

Digest KeyRegistry::master_mac(const char* domain, const Digest& d) const {
  return hmac_sha256(master_key_, tag_digest(domain, d));
}

}  // namespace ambb
