# Empty dependencies file for ambb_sim.
# This may be replaced when dependencies are built.
