#include "sim/cost.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"

namespace ambb {
namespace {

TEST(CostLedger, ChargesHonestPerSlotAndKind) {
  CostLedger l({"a", "b"});
  l.charge(1, 0, 100, true);
  l.charge(1, 1, 50, true);
  l.charge(2, 0, 10, true);
  EXPECT_EQ(l.honest_bits_total(), 160u);
  EXPECT_EQ(l.honest_bits_slot(1), 150u);
  EXPECT_EQ(l.honest_bits_slot(2), 10u);
  EXPECT_EQ(l.honest_bits_slot(99), 0u);
  EXPECT_EQ(l.per_kind()[0], 110u);
  EXPECT_EQ(l.per_kind()[1], 50u);
  EXPECT_EQ(l.honest_msgs_total(), 3u);
}

TEST(CostLedger, AdversaryBitsSeparate) {
  CostLedger l({"a"});
  l.charge(1, 0, 100, false);
  EXPECT_EQ(l.honest_bits_total(), 0u);
  EXPECT_EQ(l.adversary_bits_total(), 100u);
  EXPECT_EQ(l.honest_bits_slot(1), 0u);
}

TEST(CostLedger, AmortizedAveragesOverSlots) {
  CostLedger l({"a"});
  l.charge(1, 0, 300, true);
  l.charge(2, 0, 100, true);
  EXPECT_DOUBLE_EQ(l.amortized(2), 200.0);
  EXPECT_DOUBLE_EQ(l.amortized(1), 300.0);
  EXPECT_DOUBLE_EQ(l.amortized(4), 100.0);  // empty slots count
}

TEST(CostLedger, ZeroSlotAmortizedIsQuietNaNNotACrash) {
  // num_slots == 0 used to divide by zero; the contract is now a quiet
  // NaN (report.cpp renders it as JSON null). Both the empty and the
  // charged ledger take the guard path.
  CostLedger l({"a"});
  EXPECT_TRUE(std::isnan(l.amortized(0)));
  l.charge(1, 0, 300, true);
  EXPECT_TRUE(std::isnan(l.amortized(0)));
  EXPECT_DOUBLE_EQ(l.amortized(1), 300.0);
}

TEST(CostLedger, UnknownKindThrows) {
  CostLedger l({"a"});
  EXPECT_THROW(l.charge(1, 5, 10, true), CheckError);
}

TEST(CostLedger, KindNamesPreserved) {
  CostLedger l({"x", "y", "z"});
  ASSERT_EQ(l.kind_names().size(), 3u);
  EXPECT_EQ(l.kind_names()[2], "z");
}

}  // namespace
}  // namespace ambb
