// Records every commit made by honest nodes so the runner can check the
// multi-shot BB properties (consistency, termination, validity,
// sequentiality) after a run.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace ambb {

struct CommitRecord {
  Value value = kBotValue;
  Round round = 0;
  bool committed = false;
};

class CommitLog {
 public:
  explicit CommitLog(std::uint32_t n) : n_(n) {}

  /// Pre-size for `max_slot` slots so steady-state record() calls never
  /// regrow the flat table.
  void reserve(Slot max_slot) {
    flat_.reserve(static_cast<std::size_t>(max_slot + 1) * n_);
  }

  /// Materialize all cells for slots [0, max_slot] up front. Required
  /// before node-sharded rounds: worker threads record() into disjoint
  /// (slot, node) cells concurrently, which is race-free only if no call
  /// can trigger the lazy resize below (a resize moves every cell).
  void presize(Slot max_slot) {
    const std::size_t need = static_cast<std::size_t>(max_slot + 1) * n_;
    if (need > flat_.size()) flat_.resize(need);
  }

  void record(NodeId node, Slot slot, Value value, Round round) {
    AMBB_CHECK(node < n_ && slot >= 1);
    const std::size_t need = static_cast<std::size_t>(slot + 1) * n_;
    if (need > flat_.size()) flat_.resize(need);
    CommitRecord& r = flat_[static_cast<std::size_t>(slot) * n_ + node];
    AMBB_CHECK_MSG(!r.committed, "node " << node << " double-committed slot "
                                         << slot);
    r = CommitRecord{value, round, true};
  }

  bool has(NodeId node, Slot slot) const {
    return static_cast<std::size_t>(slot + 1) * n_ <= flat_.size() &&
           flat_[static_cast<std::size_t>(slot) * n_ + node].committed;
  }

  const CommitRecord& get(NodeId node, Slot slot) const {
    AMBB_CHECK(has(node, slot));
    return flat_[static_cast<std::size_t>(slot) * n_ + node];
  }

  Slot max_slot() const {
    return flat_.empty() ? 0 : static_cast<Slot>(flat_.size() / n_ - 1);
  }

  std::uint32_t n() const { return n_; }

 private:
  std::uint32_t n_;
  /// Flat [slot][node] table with stride n_ (one contiguous block instead
  /// of a vector per slot).
  std::vector<CommitRecord> flat_;
};

}  // namespace ambb
