// The linear-family registry entries advertise f <= (1/2 - eps) n with
// eps = 0.1, i.e. f_max = floor(2n/5). The bound must be computed in exact
// integer arithmetic: 0.4 has no finite binary representation, so
// static_cast<uint32_t>(0.4 * n) silently depends on how the two rounding
// steps (representing 0.4, then multiplying) happen to fall.
#include "runner/registry.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace ambb {
namespace {

// Exact mathematical bound: the largest integer f with f <= (2/5) n,
// decided purely in integers (f <= 2n/5  <=>  5f <= 2n).
std::uint32_t exact_two_fifths(std::uint32_t n) {
  std::uint32_t f = 0;
  while (5ull * (f + 1) <= 2ull * n) ++f;
  return f;
}

TEST(RegistryBounds, LinearMaxFIsExactIntegerTwoFifths) {
  const auto& info = protocol("linear");
  for (std::uint32_t n = 1; n <= 10000; ++n) {
    ASSERT_EQ(info.max_f(n), (2 * n) / 5) << "n=" << n;
    ASSERT_EQ(info.max_f(n), exact_two_fifths(n)) << "n=" << n;
  }
}

TEST(RegistryBounds, AllLinearFamilyEntriesAgree) {
  for (const char* name :
       {"linear", "mr-baseline", "linear-nomem", "linear-noquery"}) {
    const auto& info = protocol(name);
    for (std::uint32_t n = 4; n <= 10000; n += 7) {
      ASSERT_EQ(info.max_f(n), exact_two_fifths(n))
          << "protocol " << name << " n=" << n;
    }
  }
}

TEST(RegistryBounds, MaxFSatisfiesTheDriverPrecondition) {
  // run_linear rejects f > (1/2 - eps) n with eps = 0.1; the advertised
  // bound must never trip it (this is what an off-by-one in the float
  // cast would break).
  const auto& info = protocol("linear");
  for (std::uint32_t n = 4; n <= 10000; n += 131) {
    const double limit = (0.5 - 0.1) * n;
    ASSERT_LE(static_cast<double>(info.max_f(n)), limit) << "n=" << n;
    // And it is tight: one more would exceed the mathematical bound.
    ASSERT_GT(5ull * (info.max_f(n) + 1), 2ull * n) << "n=" << n;
  }
}

TEST(RegistryBounds, UnknownProtocolThrows) {
  EXPECT_THROW(protocol("no-such-protocol"), CheckError);
}

}  // namespace
}  // namespace ambb
