file(REMOVE_RECURSE
  "CMakeFiles/test_threshold.dir/test_threshold.cpp.o"
  "CMakeFiles/test_threshold.dir/test_threshold.cpp.o.d"
  "test_threshold"
  "test_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
