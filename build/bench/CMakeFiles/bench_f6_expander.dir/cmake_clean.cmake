file(REMOVE_RECURSE
  "CMakeFiles/bench_f6_expander.dir/bench_f6_expander.cpp.o"
  "CMakeFiles/bench_f6_expander.dir/bench_f6_expander.cpp.o.d"
  "bench_f6_expander"
  "bench_f6_expander.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f6_expander.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
