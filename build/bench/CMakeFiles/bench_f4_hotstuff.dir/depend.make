# Empty dependencies file for bench_f4_hotstuff.
# This may be replaced when dependencies are built.
