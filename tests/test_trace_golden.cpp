// JSONL trace golden: the full event stream of one fixed linear run must
// be byte-for-byte what is checked in under tests/golden/. The trace file
// format is a determinism surface (sweep --trace-dir output is diffed
// across machines and job counts), so any drift here is an API break:
// either an execution changed (bad) or the serialization changed (bump
// the golden deliberately, in the same commit as the format change).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "runner/registry.hpp"
#include "trace/trace.hpp"

namespace ambb {
namespace {

CommonParams golden_params() {
  CommonParams p;
  p.n = 8;
  p.f = 2;
  p.slots = 4;
  p.seed = 1;
  p.adversary = "mixed";
  return p;
}

std::string render_trace() {
  std::ostringstream os;
  trace::JsonlSink sink(os);
  protocol("linear").run(RunRequest{golden_params(), &sink});
  return os.str();
}

TEST(TraceGolden, LinearN8F2L4Seed1MatchesCheckedInFile) {
  const std::string path =
      std::string(AMBB_GOLDEN_DIR) + "/trace_linear_n8_f2_L4_seed1.jsonl";
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << path;
  std::ostringstream want;
  want << in.rdbuf();

  const std::string got = render_trace();
  ASSERT_FALSE(got.empty());
  if (got != want.str()) {
    // Locate the first diverging line for a readable failure message.
    std::istringstream ga(got), wa(want.str());
    std::string gl, wl;
    std::size_t line = 1;
    while (std::getline(ga, gl) && std::getline(wa, wl) && gl == wl) ++line;
    FAIL() << "trace drifted from golden at line " << line << "\n  got:  "
           << gl << "\n  want: " << wl;
  }
}

TEST(TraceGolden, RenderingIsDeterministic) {
  EXPECT_EQ(render_trace(), render_trace());
}

}  // namespace
}  // namespace ambb
