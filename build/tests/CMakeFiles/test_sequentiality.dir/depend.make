# Empty dependencies file for test_sequentiality.
# This may be replaced when dependencies are built.
