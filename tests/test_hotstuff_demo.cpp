// Appendix A: HotStuff without a fallback path loses liveness under a
// selective-send leader — and Algorithm 4, in the identical scenario
// (same leader-hub common path), does not.
#include "bb/hotstuff_demo.hpp"

#include <gtest/gtest.h>

#include "bb/linear_bb.hpp"

namespace ambb {
namespace {

hs::HsConfig base_cfg(std::uint32_t n, std::uint32_t f, Slot slots,
                      std::uint64_t seed, const std::string& adv) {
  hs::HsConfig cfg;
  cfg.n = n;
  cfg.f = f;
  cfg.slots = slots;
  cfg.seed = seed;
  cfg.adversary = adv;
  return cfg;
}

TEST(HotStuff, FailureFreeAllCommit) {
  auto r = hs::run_hotstuff_demo(base_cfg(10, 3, 6, 1, "none"));
  EXPECT_TRUE(check_all(r).empty());
}

TEST(HotStuff, SelectiveLeaderStallsExactlyTheStarvedNodes) {
  const std::uint32_t n = 10, f = 3;
  auto r = hs::run_hotstuff_demo(base_cfg(n, f, 6, 1, "selective"));
  // Safety holds...
  EXPECT_TRUE(check_consistency(r).empty());
  EXPECT_TRUE(check_validity(r).empty());
  // ...but liveness fails, permanently, for the starved nodes in every
  // corrupt-leader slot.
  for (Slot k = 1; k <= 6; ++k) {
    const bool corrupt_leader = r.corrupt[r.senders[k]] != 0;
    for (NodeId u = f; u < n; ++u) {
      const bool starved = u >= n - f;
      if (corrupt_leader && starved) {
        EXPECT_FALSE(r.commits.has(u, k))
            << "starved node " << u << " should stall in slot " << k;
      } else {
        EXPECT_TRUE(r.commits.has(u, k))
            << "node " << u << " should commit slot " << k;
      }
    }
  }
}

TEST(HotStuff, StallIsPermanentAcrossSlots) {
  auto r = hs::run_hotstuff_demo(base_cfg(10, 3, 30, 2, "selective"));
  auto term_errors = check_termination(r);
  // 3 corrupt-leader slots per 10-slot cycle, 3 starved nodes each.
  EXPECT_EQ(term_errors.size(), 9u * 3u);
}

TEST(HotStuff, Algorithm4RecoversInTheSameScenario) {
  // Same n, f, rotation, and a selective-send leader strategy: the paper's
  // protocol commits everywhere thanks to the Query/Respond path.
  linear::LinearConfig cfg;
  cfg.n = 10;
  cfg.f = 3;
  cfg.slots = 6;
  cfg.seed = 1;
  cfg.eps = 0.1;
  cfg.adversary = "selective";
  auto r = linear::run_linear(cfg);
  EXPECT_EQ(check_all(r), std::vector<std::string>{});
}

TEST(HotStuff, FBoundEnforced) {
  EXPECT_THROW(hs::run_hotstuff_demo(base_cfg(9, 3, 1, 1, "none")),
               CheckError);
}

TEST(HotStuff, FailureFreeCostIsLinearPerSlot) {
  // The whole point of the leader hub: per-slot cost grows linearly in n.
  auto r16 = hs::run_hotstuff_demo(base_cfg(16, 5, 4, 1, "none"));
  auto r32 = hs::run_hotstuff_demo(base_cfg(32, 10, 4, 1, "none"));
  ASSERT_TRUE(check_all(r16).empty());
  ASSERT_TRUE(check_all(r32).empty());
  const double ratio = static_cast<double>(r32.honest_bits) /
                       static_cast<double>(r16.honest_bits);
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 3.0);  // ~2x for 2x nodes, not ~4x
}

}  // namespace
}  // namespace ambb
