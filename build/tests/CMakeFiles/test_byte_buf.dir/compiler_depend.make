# Empty compiler generated dependencies file for test_byte_buf.
# This may be replaced when dependencies are built.
