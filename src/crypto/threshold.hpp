// Simulated (t, n)-threshold signature scheme (Boldyreva-style interface).
//
// A share on digest d by node i is HMAC(sk_i, "thshare"||d). Combining t
// distinct valid shares yields the combined signature HMAC(master, "th"||d)
// which is a single kappa-bit object — the paper's size assumption. The
// combiner enforces the threshold, modeling the cryptographic guarantee
// that fewer than t shares reveal nothing about the combined signature.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "crypto/signer.hpp"

namespace ambb {

struct SigShare {
  NodeId signer = kNoNode;
  Digest mac{};

  bool operator==(const SigShare&) const = default;
};

struct ThresholdSig {
  Digest mac{};

  bool operator==(const ThresholdSig&) const = default;
};

class ThresholdScheme {
 public:
  /// threshold t out of registry.n() nodes (the paper uses t = n - f).
  ThresholdScheme(const KeyRegistry& registry, std::uint32_t t);

  std::uint32_t threshold() const { return t_; }

  SigShare share(NodeId signer, const Digest& d) const;
  bool verify_share(const SigShare& s, const Digest& d) const;

  /// Combine shares into the full signature. Requires >= t distinct valid
  /// shares on d; throws CheckError otherwise (a caller bug — honest
  /// protocol code only combines after counting a quorum).
  ThresholdSig combine(std::span<const SigShare> shares,
                       const Digest& d) const;

  bool verify(const ThresholdSig& sig, const Digest& d) const;

 private:
  const KeyRegistry* registry_;
  std::uint32_t t_;
};

}  // namespace ambb
