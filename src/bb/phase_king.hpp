// Multi-shot Byzantine broadcast from phase-king consensus
// (Berman-Garay-Perry [5] family): f < n/3, no cryptography — Table 1's
// first row.
//
// Slot structure (2 + 3(f+1) rounds):
//   round 0             sender multicasts its value
//   phases p = 0..f     three rounds each, king = node p:
//     R1  multicast current value V (bot = nothing received)
//     R2  pref := the (unique) value with >= n-f support in R1, else bot;
//         multicast pref; w* := most frequent R2 value, c* := its count
//     R3  the king multicasts its w*
//     (next round) if c* >= n-f keep V := w*, else adopt the king's value
//   final round: apply the last king's message and commit V.
// Bot is a first-class value throughout (a silent sender yields a
// unanimous bot decision).
//
// NOTE (substitution, see DESIGN.md): the genuine Berman et al. result
// achieves O(n^2) total bits per decision via a recursive construction;
// this implementation is the standard textbook phase-king, which costs
// Theta(n^2 * f) bits per slot worst-case. It is therefore a conservative
// (upper-bound) baseline: the qualitative Table 1 ordering — every
// baseline is at least quadratic per slot while Algorithm 4 is linear
// amortized — is unaffected.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "common/wire.hpp"
#include "runner/result.hpp"
#include "sim/commit_log.hpp"
#include "sim/net.hpp"

namespace ambb::pk {

enum class Kind : MsgKind { kSend = 0, kR1, kR2, kKing, kKindCount };

std::vector<std::string> kind_names();

struct Msg {
  Kind kind = Kind::kSend;
  Slot slot = 0;
  std::uint32_t phase = 0;
  bool has_value = true;  ///< false encodes bot (in R2)
  Value value = 0;
};

struct Schedule {
  std::uint32_t f = 0;
  std::uint64_t rounds_per_slot() const { return 2 + 3ull * (f + 1); }
  Slot slot_of(Round r) const {
    return static_cast<Slot>(r / rounds_per_slot()) + 1;
  }
  std::uint32_t offset_of(Round r) const {
    return static_cast<std::uint32_t>(r % rounds_per_slot());
  }
};

struct Context {
  std::uint32_t n = 0;
  std::uint32_t f = 0;
  WireModel wire;
  Schedule sched;
  CommitLog* commits = nullptr;
  std::function<Value(Slot)> input_for_slot;
  std::function<NodeId(Slot)> sender_of;
  trace::TraceSink* trace = nullptr;  ///< optional event sink, not owned
};

std::uint64_t size_bits(const Msg& m, const WireModel& wire);

/// Accounting policy, evaluated once per traffic record.
struct CostPolicy {
  WireModel wire;
  Schedule sched;

  std::uint64_t size_bits(const Msg& m) const {
    return pk::size_bits(m, wire);
  }
  MsgKind kind(const Msg& m) const { return static_cast<MsgKind>(m.kind); }
  Slot slot(const Msg& m, Round sent_round) const {
    return m.slot != 0 ? m.slot : sched.slot_of(sent_round);
  }
};

using Sim = Simulation<Msg, CostPolicy>;

struct PkConfig {
  std::uint32_t n = 10;
  std::uint32_t f = 3;  ///< must satisfy 3f < n
  Slot slots = 4;
  std::uint64_t seed = 1;
  std::uint32_t kappa_bits = kDefaultKappaBits;
  std::uint32_t value_bits = kDefaultValueBits;
  std::string adversary = "none";  // none | silent | equivocate | confuse
  /// Optional event sink, not owned (see src/trace/).
  /// Honest-phase shard threads per round (0 = auto, 1 = serial;
  /// byte-identical results for every value — DESIGN.md §15).
  std::uint32_t node_jobs = 1;
  /// Network delay policy (DESIGN.md §16): "lockstep" (default) |
  /// "bounded:<delta>" | "async[:<cap>]".
  std::string net = "lockstep";
  trace::TraceSink* trace = nullptr;
  std::function<Value(Slot)> input_for_slot;
  std::function<NodeId(Slot)> sender_of;
};

RunResult run_phase_king(const PkConfig& cfg);

}  // namespace ambb::pk
