#include "common/bitvec.hpp"

#include <gtest/gtest.h>

namespace ambb {
namespace {

TEST(BitVec, StartsCleared) {
  BitVec b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_TRUE(b.none());
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(b.get(i));
}

TEST(BitVec, ConstructAllSetTrimsTail) {
  BitVec b(70, true);
  EXPECT_EQ(b.count(), 70u);
  EXPECT_TRUE(b.get(69));
}

TEST(BitVec, SetGetReset) {
  BitVec b(65);
  b.set(0);
  b.set(64);
  EXPECT_TRUE(b.get(0));
  EXPECT_TRUE(b.get(64));
  EXPECT_EQ(b.count(), 2u);
  b.reset(64);
  EXPECT_FALSE(b.get(64));
  EXPECT_EQ(b.count(), 1u);
}

TEST(BitVec, OutOfRangeThrows) {
  BitVec b(10);
  EXPECT_THROW(b.get(10), CheckError);
  EXPECT_THROW(b.set(10), CheckError);
}

TEST(BitVec, OnesListsAscendingIndices) {
  BitVec b(130);
  b.set(3);
  b.set(64);
  b.set(129);
  auto ones = b.ones();
  ASSERT_EQ(ones.size(), 3u);
  EXPECT_EQ(ones[0], 3u);
  EXPECT_EQ(ones[1], 64u);
  EXPECT_EQ(ones[2], 129u);
}

TEST(BitVec, ContainsSubset) {
  BitVec big(50), small(50);
  big.set(1);
  big.set(2);
  big.set(3);
  small.set(2);
  EXPECT_TRUE(big.contains(small));
  EXPECT_FALSE(small.contains(big));
  EXPECT_TRUE(big.contains(big));
}

TEST(BitVec, ContainsSizeMismatchThrows) {
  BitVec a(10), b(11);
  EXPECT_THROW(a.contains(b), CheckError);
}

TEST(BitVec, OrAndOperators) {
  BitVec a(40), b(40);
  a.set(1);
  b.set(2);
  BitVec u = a;
  u |= b;
  EXPECT_TRUE(u.get(1));
  EXPECT_TRUE(u.get(2));
  u &= a;
  EXPECT_TRUE(u.get(1));
  EXPECT_FALSE(u.get(2));
}

TEST(BitVec, SetAllClearAll) {
  BitVec b(77);
  b.set_all();
  EXPECT_EQ(b.count(), 77u);
  b.clear_all();
  EXPECT_EQ(b.count(), 0u);
}

TEST(BitVec, EqualityComparesContent) {
  BitVec a(20), b(20);
  EXPECT_EQ(a, b);
  a.set(5);
  EXPECT_NE(a, b);
  b.set(5);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace ambb
