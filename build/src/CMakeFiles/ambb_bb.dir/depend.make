# Empty dependencies file for ambb_bb.
# This may be replaced when dependencies are built.
