file(REMOVE_RECURSE
  "libambb_bb.a"
)
