# Empty dependencies file for bench_f5_trustcast.
# This may be replaced when dependencies are built.
