// Experiment F2 — scaling exponents behind Table 1: the log-log slope of
// steady-state amortized cost vs n should approach the polynomial degree
// of each protocol's amortized bound:
//   Algorithm 4        ~ n^1      (with a constant-degree expander)
//   Algorithm 5.2      ~ n^2
//   MR-style baseline  ~ n^2
//   phase-king         ~ n^2..n^3 (textbook variant, see DESIGN.md)
//   Dolev-Strong       ~ n^3      (worst case, plain signatures)
#include <cstdint>
#include <initializer_list>

#include "bench_common.hpp"

namespace ambb::bench {
namespace {

struct Series {
  std::string name;
  double expected_low, expected_high;
  std::vector<double> ns, costs;
};

/// CI smoke mode (scripts/ci.sh perf_smoke lane): AMBB_F2_SMOKE=1 trims
/// every series to its smallest n. The labels of the surviving rows are
/// unchanged, so their measurement fields can be diffed bit-for-bit
/// against the committed BENCH_f2_scaling.json.
bool smoke_mode() { return std::getenv("AMBB_F2_SMOKE") != nullptr; }

/// The full sweep, or just its head in smoke mode.
std::vector<std::uint32_t> sweep(std::initializer_list<std::uint32_t> ns) {
  std::vector<std::uint32_t> v(ns);
  if (smoke_mode()) v.resize(1);
  return v;
}

void run_scaling() {
  print_header(
      "F2 / Table 1 scaling exponents: log-log slope of steady-state "
      "amortized bits vs n",
      "slopes ~1 (Alg.4), ~2 (Alg.5.2, MR baseline), ~3 (Dolev-Strong "
      "worst case)");

  // The whole grid is expanded up front and executed as one engine
  // batch; each series then slices its results out in submission order
  // (the engine pins that order, so the numbers below are independent
  // of AMBB_BENCH_JOBS).
  std::vector<Job> jobs;

  // The n=128/256 rows are new with the zero-copy hot path (DESIGN.md
  // §14); n=512 is new with node-sharded rounds (§15) — serial it was a
  // ~minute-scale run, sharded it fills the machine.
  const std::vector<std::uint32_t> alg4_ns =
      sweep({24u, 32u, 48u, 64u, 128u, 256u, 512u});
  Series alg4{"Alg.4 (mixed adv, eps=0.2)", 0.7, 1.6, {}, {}};
  for (std::uint32_t n : alg4_ns) {
    CommonParams p;
    p.n = n;
    p.f = static_cast<std::uint32_t>(0.3 * n);
    p.slots = 3 * n;
    p.seed = 7;
    p.eps = 0.2;  // constant expander degree across this sweep
    p.adversary = "mixed";
    jobs.push_back(
        registry_job("linear", p, "alg4/mixed/n" + std::to_string(n)));
    alg4.ns.push_back(n);
  }

  const std::vector<std::uint32_t> mr_ns = sweep({24u, 32u, 48u, 64u});
  Series mr{"MR-style baseline (mixed adv)", 1.6, 2.5, {}, {}};
  for (std::uint32_t n : mr_ns) {
    CommonParams p;
    p.n = n;
    p.f = static_cast<std::uint32_t>(0.3 * n);
    p.slots = 8;
    p.seed = 7;
    p.eps = 0.2;
    p.adversary = "mixed";
    jobs.push_back(registry_job("mr-baseline", p,
                                "mr-baseline/mixed/n" + std::to_string(n)));
    mr.ns.push_back(n);
  }

  const std::vector<std::uint32_t> quad_ns = sweep({12u, 16u, 24u, 32u});
  Series s_quad{"Alg.5.2 (silent adv, f=n/2)", 1.5, 2.6, {}, {}};
  for (std::uint32_t n : quad_ns) {
    CommonParams p;
    p.n = n;
    p.f = n / 2;
    p.slots = 3 * n;
    p.seed = 7;
    p.adversary = "silent";
    jobs.push_back(
        registry_job("quadratic", p, "alg5.2/silent/n" + std::to_string(n)));
    s_quad.ns.push_back(n);
  }

  const std::vector<std::uint32_t> dsw_ns = sweep({12u, 16u, 24u, 32u});
  Series dsw{"Dolev-Strong plain (stagger, f=n/2)", 2.3, 3.4, {}, {}};
  for (std::uint32_t n : dsw_ns) {
    CommonParams p;
    p.n = n;
    p.f = n / 2;
    p.slots = 4;
    p.seed = 7;
    p.adversary = "stagger";
    jobs.push_back(registry_job(
        "dolev-strong", p, "dolev-strong/stagger/n" + std::to_string(n)));
    dsw.ns.push_back(n);
  }

  const std::vector<std::uint32_t> pk_ns = sweep({10u, 13u, 19u, 25u});
  Series s_pk{"phase-king (confuse, f<n/3)", 1.6, 3.2, {}, {}};
  for (std::uint32_t n : pk_ns) {
    CommonParams p;
    p.n = n;
    p.f = (n - 1) / 3;
    p.slots = 4;
    p.seed = 7;
    p.adversary = "confuse";
    jobs.push_back(registry_job(
        "phase-king", p, "phase-king/confuse/n" + std::to_string(n)));
    s_pk.ns.push_back(n);
  }

  const std::vector<RunResult> results = run_jobs(jobs);
  std::size_t i = 0;
  for (std::uint32_t n : alg4_ns) {
    alg4.costs.push_back(results[i++].amortized_tail(2 * n));
  }
  for (std::size_t k = 0; k < mr_ns.size(); ++k) {
    mr.costs.push_back(results[i++].amortized_tail(4));
  }
  for (std::uint32_t n : quad_ns) {
    s_quad.costs.push_back(results[i++].amortized_tail(2 * n));
  }
  for (std::size_t k = 0; k < dsw_ns.size(); ++k) {
    dsw.costs.push_back(results[i++].amortized());
  }
  for (std::size_t k = 0; k < pk_ns.size(); ++k) {
    s_pk.costs.push_back(results[i++].amortized());
  }

  if (smoke_mode()) {
    std::printf("\nAMBB_F2_SMOKE=1: single-n rows only, slope table "
                "skipped (needs the full sweep).\n");
    return;
  }

  TextTable t({"protocol", "n sweep", "measured slope", "paper-expected"});
  for (const Series* s : {&alg4, &mr, &s_quad, &dsw, &s_pk}) {
    const double slope = loglog_slope(s->ns, s->costs);
    char sweep[64];
    std::snprintf(sweep, sizeof sweep, "%.0f..%.0f", s->ns.front(),
                  s->ns.back());
    char expect[64];
    std::snprintf(expect, sizeof expect, "[%.1f, %.1f]", s->expected_low,
                  s->expected_high);
    t.add_row({s->name, sweep, TextTable::num(slope, 2), expect});
  }
  std::printf("%s", t.render().c_str());
}

void BM_ScalingLinear(::benchmark::State& state) {
  CommonParams p;
  p.n = static_cast<std::uint32_t>(state.range(0));
  p.f = static_cast<std::uint32_t>(0.3 * p.n);
  p.slots = 16;
  p.eps = 0.2;
  p.seed = 7;
  p.adversary = "mixed";
  for (auto _ : state) {
    auto r = registry_run("linear", p);
    ::benchmark::DoNotOptimize(r.honest_bits);
  }
}
BENCHMARK(BM_ScalingLinear)->Arg(24)->Arg(48)->Unit(::benchmark::kMillisecond);

}  // namespace
}  // namespace ambb::bench

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ambb::bench::run_scaling();
  return ambb::bench::finish_bench("f2_scaling");
}
