# Empty dependencies file for bench_f1_convergence.
# This may be replaced when dependencies are built.
