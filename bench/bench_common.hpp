// Shared helpers for the benchmark harnesses. Each bench binary
// regenerates one artifact of the paper (Table 1 or a quantitative claim
// from Sections 4.2/5.1/5.4/Appendix A — DESIGN.md's experiment index),
// printing the measured rows next to the paper's asymptotic prediction.
//
// Wall-clock timing of full multi-shot executions is registered through
// google-benchmark; the communication measurements (the paper's actual
// metric) are printed as tables after the timing runs.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "runner/fit.hpp"
#include "runner/registry.hpp"
#include "runner/result.hpp"
#include "runner/table.hpp"

namespace ambb::bench {

inline void print_header(const char* experiment, const char* claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Paper claim: %s\n", claim);
  std::printf("================================================================\n");
}

/// Run a protocol from the registry and sanity-check the run (so the
/// numbers we print always come from correct executions).
inline RunResult checked_run(const std::string& proto,
                             const CommonParams& p) {
  const ProtocolInfo& info = protocol(proto);
  RunResult r = info.run(p);
  auto errs = check_consistency(r);
  auto v = check_validity(r);
  errs.insert(errs.end(), v.begin(), v.end());
  bool stall_ok = false;
  for (const auto& a : info.known_liveness_failures) {
    if (a == p.adversary) stall_ok = true;
  }
  if (!stall_ok) {
    auto t = check_termination(r);
    errs.insert(errs.end(), t.begin(), t.end());
  }
  if (!errs.empty()) {
    std::printf("!! %s/%s produced %zu property violations (first: %s)\n",
                proto.c_str(), p.adversary.c_str(), errs.size(),
                errs[0].c_str());
  }
  return r;
}

}  // namespace ambb::bench
