# Empty dependencies file for adversarial_resilience.
# This may be replaced when dependencies are built.
