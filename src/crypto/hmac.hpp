// HMAC-SHA256 (RFC 2104). The simulated signature schemes derive their
// authenticity from HMACs under keys held by the in-simulator PKI registry.
#pragma once

#include <cstdint>
#include <span>

#include "crypto/sha256.hpp"

namespace ambb {

Digest hmac_sha256(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> message);

Digest hmac_sha256(const Digest& key, const Digest& message);

/// A fixed HMAC key with the ipad/opad pad blocks pre-compressed: mac()
/// costs two SHA-256 block compressions instead of four. Produces exactly
/// the same MAC as hmac_sha256(key, message).
class HmacKey {
 public:
  explicit HmacKey(const Digest& key);

  Digest mac(const Digest& message) const;

 private:
  Sha256Midstate inner_;
  Sha256Midstate outer_;
};

/// Keyed PRF specialised for the registry's (domain, digest) MACs: the
/// 64-byte key block is pre-compressed once, and each mac() hashes an
/// 8-byte domain tag plus a 32-byte digest — 40 bytes, which together
/// with the SHA-256 padding fits a single block, so one compression per
/// MAC (vs two for HmacKey plus one for a domain pre-hash).
///
/// This is a key-prefix construction, not RFC-2104 HMAC. For the
/// simulated PKI that is exactly as good: inside the simulation the only
/// way to produce a valid MAC is through the registry, which models the
/// unforgeability the paper assumes (DESIGN.md §5, §14).
class PrfKey {
 public:
  explicit PrfKey(const Digest& key);

  Digest mac(std::uint64_t domain, const Digest& d) const;

 private:
  Sha256Midstate keyed_;
};

}  // namespace ambb
