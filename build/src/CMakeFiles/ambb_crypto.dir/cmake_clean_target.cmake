file(REMOVE_RECURSE
  "libambb_crypto.a"
)
