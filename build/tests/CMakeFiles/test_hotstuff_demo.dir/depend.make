# Empty dependencies file for test_hotstuff_demo.
# This may be replaced when dependencies are built.
