file(REMOVE_RECURSE
  "CMakeFiles/test_dolev_strong.dir/test_dolev_strong.cpp.o"
  "CMakeFiles/test_dolev_strong.dir/test_dolev_strong.cpp.o.d"
  "test_dolev_strong"
  "test_dolev_strong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dolev_strong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
