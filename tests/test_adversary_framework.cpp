// The composable fault-injection framework (src/adversary/): the
// "sched:" spec grammar, structural validation against (n, f), the
// seeded fuzz generator's threat-model guarantee, and the Definition 2
// properties as oracles over EVERY registry protocol under at least one
// scheduled and one randomized fault schedule. `ctest -L adversary`
// selects this suite (plus test_erase_accounting).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "adversary/fault.hpp"
#include "adversary/fuzz.hpp"
#include "adversary/spec.hpp"
#include "common/check.hpp"
#include "runner/registry.hpp"

namespace ambb {
namespace {

using adversary::FaultKind;
using adversary::FaultSchedule;
using adversary::kDensityAll;
using adversary::kRoundMax;

// ---------------------------------------------------------------------------
// Spec grammar
// ---------------------------------------------------------------------------

TEST(SchedSpec, ClassifiesScheduleAndFuzzSpecs) {
  EXPECT_TRUE(adversary::is_schedule_spec("sched:corrupt(0,1)"));
  EXPECT_TRUE(adversary::is_schedule_spec("fuzz"));
  EXPECT_TRUE(adversary::is_schedule_spec("fuzz:17"));
  EXPECT_FALSE(adversary::is_schedule_spec("silent"));
  EXPECT_FALSE(adversary::is_schedule_spec("none"));
  EXPECT_FALSE(adversary::is_schedule_spec("schedule"));

  EXPECT_TRUE(adversary::is_fuzz_spec("fuzz"));
  EXPECT_TRUE(adversary::is_fuzz_spec("fuzz:3"));
  EXPECT_FALSE(adversary::is_fuzz_spec("sched:corrupt(0,1)"));
  EXPECT_EQ(adversary::fuzz_profile("fuzz"), 0u);
  EXPECT_EQ(adversary::fuzz_profile("fuzz:17"), 17u);
}

TEST(SchedSpec, ParsesEveryOpIntoTypedEvents) {
  const FaultSchedule s = adversary::parse_schedule_spec(
      "sched:corrupt(0,1,2);corrupt(3,5);erase(2,1,500,2,1);erase(4,5);"
      "silence(1,0,*);selective(2,1,9,0,3);shuffle(5,2,5);stagger(5,6,*,2)");

  ASSERT_EQ(s.corruptions.size(), 3u);
  EXPECT_EQ(s.corruptions[0].from, 0u);
  EXPECT_EQ(s.corruptions[0].node, 1u);
  EXPECT_EQ(s.corruptions[1].node, 2u);
  EXPECT_EQ(s.corruptions[2].from, 3u);
  EXPECT_EQ(s.corruptions[2].node, 5u);

  ASSERT_EQ(s.erasures.size(), 2u);
  EXPECT_EQ(s.erasures[0].round, 2u);
  EXPECT_EQ(s.erasures[0].sender, 1u);
  EXPECT_EQ(s.erasures[0].density_permille, 500u);
  EXPECT_EQ(s.erasures[0].to_mod, 2u);
  EXPECT_EQ(s.erasures[0].to_rem, 1u);
  // Two-arg form defaults: full density, no recipient filter.
  EXPECT_EQ(s.erasures[1].round, 4u);
  EXPECT_EQ(s.erasures[1].sender, 5u);
  EXPECT_EQ(s.erasures[1].density_permille, kDensityAll);
  EXPECT_EQ(s.erasures[1].to_mod, 1u);
  EXPECT_EQ(s.erasures[1].to_rem, 0u);

  ASSERT_EQ(s.actor_faults.size(), 4u);
  EXPECT_EQ(s.actor_faults[0].kind, FaultKind::kSilence);
  EXPECT_EQ(s.actor_faults[0].node, 1u);
  EXPECT_EQ(s.actor_faults[0].from, 0u);
  EXPECT_EQ(s.actor_faults[0].to, kRoundMax);
  EXPECT_EQ(s.actor_faults[1].kind, FaultKind::kSelective);
  EXPECT_EQ(s.actor_faults[1].node, 2u);
  EXPECT_EQ(s.actor_faults[1].from, 1u);
  EXPECT_EQ(s.actor_faults[1].to, 9u);
  EXPECT_EQ(s.actor_faults[1].keep, (std::vector<NodeId>{0, 3}));
  EXPECT_EQ(s.actor_faults[2].kind, FaultKind::kShuffle);
  EXPECT_EQ(s.actor_faults[2].node, 5u);
  EXPECT_EQ(s.actor_faults[3].kind, FaultKind::kStagger);
  EXPECT_EQ(s.actor_faults[3].from, 6u);
  EXPECT_EQ(s.actor_faults[3].to, kRoundMax);
  EXPECT_EQ(s.actor_faults[3].delay, 2u);
}

TEST(SchedSpec, RejectsMalformedSpecs) {
  const char* bad[] = {
      "sched:",                         // no ops
      "sched:corrupt(0)",               // corrupt needs a node
      "sched:erase(1,2,3,4)",           // 4-arg erase is ambiguous
      "sched:frobnicate(1,2)",          // unknown op
      "sched:corrupt(a,1)",             // non-numeric
      "sched:corrupt(*,1)",             // '*' only valid as a window end
      "sched:corrupt(0,1",              // missing ')'
      "sched:corrupt(0,1);",            // trailing ';'
      "sched:corrupt(0,,1)",            // empty argument
      "sched:stagger(1,0,5)",           // stagger needs the delay
      "sched:selective(1,0,5)",         // selective needs a keep-set
      "sched:corrupt(0,1)x",            // junk between ops
  };
  for (const char* spec : bad) {
    EXPECT_THROW(adversary::parse_schedule_spec(spec), CheckError) << spec;
  }
  // Not a sched: spec at all.
  EXPECT_THROW(adversary::parse_schedule_spec("fuzz"), CheckError);
  EXPECT_THROW(adversary::fuzz_profile("fuzz:abc"), CheckError);
}

// ---------------------------------------------------------------------------
// Structural validation
// ---------------------------------------------------------------------------

TEST(Validate, AcceptsBudgetRespectingSchedules) {
  const FaultSchedule s = adversary::parse_schedule_spec(
      "sched:corrupt(0,1,2);corrupt(3,5);erase(2,1,500,2,1);"
      "silence(1,0,*);selective(2,1,9,0,3);stagger(5,6,*,2)");
  EXPECT_NO_THROW(adversary::validate(s, 12, 3));
  // An erase in the round BEFORE the corruption fires is legal: corrupt(r+1)
  // means "corrupted during observe_round(r)", which may erase round r.
  const FaultSchedule adaptive =
      adversary::parse_schedule_spec("sched:corrupt(2,0);erase(1,0)");
  EXPECT_NO_THROW(adversary::validate(adaptive, 8, 1));
}

TEST(Validate, RejectsScheduleBreakingTheThreatModel) {
  auto expect_invalid = [](const std::string& spec, std::uint32_t n,
                           std::uint32_t f) {
    EXPECT_THROW(
        adversary::validate(adversary::parse_schedule_spec(spec), n, f),
        CheckError)
        << spec << " n=" << n << " f=" << f;
  };

  expect_invalid("sched:corrupt(0,12)", 12, 3);          // node out of range
  expect_invalid("sched:corrupt(0,0,1,2)", 12, 2);       // over budget
  expect_invalid("sched:corrupt(0,1);corrupt(2,1)", 12, 3);  // double corrupt
  // Erasing a sender that is not corrupt by the end of the erased round.
  expect_invalid("sched:corrupt(3,1);erase(1,1)", 12, 3);
  expect_invalid("sched:erase(0,1)", 12, 3);             // never corrupt
  expect_invalid("sched:corrupt(0,1);erase(0,1,1001)", 12, 3);  // density
  expect_invalid("sched:corrupt(0,1);erase(0,1,500,2,2)", 12, 3);  // rem>=mod
  expect_invalid("sched:silence(1,0,*)", 12, 3);         // fault, no corrupt
  // Fault window opens before the node turns Byzantine.
  expect_invalid("sched:corrupt(3,1);silence(1,0,*)", 12, 3);
  expect_invalid("sched:corrupt(0,1);stagger(1,0,*,0)", 12, 3);  // delay 0
  expect_invalid("sched:corrupt(0,1);silence(1,5,2)", 12, 3);  // to < from
  expect_invalid("sched:corrupt(0,1);selective(1,0,*,12)", 12, 3);  // keep>=n
}

// ---------------------------------------------------------------------------
// Fuzz generator
// ---------------------------------------------------------------------------

TEST(FuzzGen, IsAPureFunctionOfTheSeed) {
  const FaultSchedule a = adversary::generate_schedule(12, 3, 40, 7);
  const FaultSchedule b = adversary::generate_schedule(12, 3, 40, 7);
  EXPECT_EQ(adversary::describe(a), adversary::describe(b));

  // Different seeds explore different schedules (a handful of seeds must
  // produce more than one distinct schedule).
  std::set<std::string> distinct;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    distinct.insert(
        adversary::describe(adversary::generate_schedule(12, 3, 40, seed)));
  }
  EXPECT_GT(distinct.size(), 1u);
}

TEST(FuzzGen, EveryGeneratedScheduleRespectsTheThreatModel) {
  for (std::uint32_t n : {5u, 8u, 13u}) {
    for (std::uint32_t f = 0; f <= n / 2; ++f) {
      for (std::uint64_t seed = 1; seed <= 40; ++seed) {
        const FaultSchedule s = adversary::generate_schedule(n, f, 30, seed);
        EXPECT_NO_THROW(adversary::validate(s, n, f))
            << "n=" << n << " f=" << f << " seed=" << seed << ": "
            << adversary::describe(s);
        if (f == 0) {
          EXPECT_TRUE(s.empty());
        } else {
          // An empty schedule fuzzes nothing: f > 0 must corrupt someone.
          EXPECT_FALSE(s.corruptions.empty());
        }
      }
    }
  }
}

TEST(FuzzGen, DegenerateParametersYieldEmptySchedules) {
  EXPECT_TRUE(adversary::generate_schedule(12, 0, 40, 1).empty());
  EXPECT_TRUE(adversary::generate_schedule(12, 3, 0, 1).empty());
}

// ---------------------------------------------------------------------------
// Registry plumbing
// ---------------------------------------------------------------------------

TEST(Registry, EveryProtocolAcceptsScheduleSpecs) {
  for (const auto& info : protocols()) {
    EXPECT_TRUE(accepts_adversary(info, "sched:corrupt(0,0)")) << info.name;
    EXPECT_TRUE(accepts_adversary(info, "fuzz")) << info.name;
    EXPECT_TRUE(accepts_adversary(info, "fuzz:3")) << info.name;
    EXPECT_TRUE(accepts_adversary(info, "none")) << info.name;
    EXPECT_FALSE(accepts_adversary(info, "no-such-adversary")) << info.name;
  }
}

TEST(Registry, SchedMayStallGovernsTheTerminationOracle) {
  // Protocols with no fallback path may stall under arbitrary schedules;
  // everything else must terminate under ANY budget-respecting schedule.
  EXPECT_TRUE(may_stall(protocol("hotstuff"), "fuzz"));
  EXPECT_TRUE(may_stall(protocol("linear-noquery"), "sched:corrupt(0,0)"));
  EXPECT_FALSE(may_stall(protocol("linear"), "fuzz"));
  EXPECT_FALSE(may_stall(protocol("dolev-strong"), "sched:corrupt(0,0)"));
  // Named specs still go through known_liveness_failures.
  EXPECT_TRUE(may_stall(protocol("hotstuff"), "selective"));
}

// ---------------------------------------------------------------------------
// Definition 2 oracles: every protocol x {scheduled, fuzz} schedules
// ---------------------------------------------------------------------------

using Param = std::tuple<std::string /*protocol*/, std::string /*adv*/>;

std::vector<Param> coverage_params() {
  // Schedule A: static corruption with a silenced node and a selective
  // node. Schedule B: strongly adaptive — node 0 is corrupted at the end
  // of round 1 and its round-1 traffic is erased after the fact; node 2
  // shuffles its payloads and node 0 staggers its output afterwards.
  const std::vector<std::string> advs = {
      "sched:corrupt(0,0,1);silence(0,0,*);selective(1,0,*,0,1)",
      "sched:corrupt(0,2);corrupt(2,0);erase(1,0);shuffle(2,0,*);"
      "stagger(0,2,*,2)",
      "fuzz",
      "fuzz:3",
  };
  std::vector<Param> out;
  for (const auto& info : protocols()) {
    for (const auto& adv : advs) out.emplace_back(info.name, adv);
  }
  return out;
}

class AllProtocolsScheduled : public ::testing::TestWithParam<Param> {};

TEST_P(AllProtocolsScheduled, Definition2PropertiesHold) {
  const auto& [name, adv] = GetParam();
  const ProtocolInfo& info = protocol(name);

  CommonParams p;
  p.n = 12;
  p.f = std::min<std::uint32_t>(3, info.max_f(p.n));
  p.slots = 3;
  p.seed = 11;
  p.adversary = adv;
  const RunResult r = info.run(p);

  EXPECT_EQ(check_consistency(r), std::vector<std::string>{});
  EXPECT_EQ(check_validity(r), std::vector<std::string>{});
  if (!may_stall(info, adv)) {
    EXPECT_EQ(check_termination(r), std::vector<std::string>{});
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllProtocolsScheduled, ::testing::ValuesIn(coverage_params()),
    [](const auto& info) {
      std::string s = std::get<0>(info.param) + "_" +
                      (adversary::is_fuzz_spec(std::get<1>(info.param))
                           ? std::get<1>(info.param)
                           : "sched" + std::to_string(std::get<1>(
                                           info.param).size()));
      std::replace(s.begin(), s.end(), '-', '_');
      std::replace(s.begin(), s.end(), ':', '_');
      return s;
    });

// ---------------------------------------------------------------------------
// The oracle itself must fire: a deliberately broken schedule
// ---------------------------------------------------------------------------

TEST(AdversaryOracle, PermanentlySilencedLeaderTripsTermination) {
  // HotStuff demo, slot-1 leader (node 0 under the default rotation)
  // silenced for the whole run: no proposal, no quorum, no commit — the
  // documented Appendix A liveness failure, forced by a two-op schedule.
  // This proves the termination oracle fires on a real stall (the same
  // oracle ambb_fuzz counts), not that it vacuously passes.
  CommonParams p;
  p.n = 12;
  p.f = 3;
  p.slots = 3;
  p.seed = 5;
  p.adversary = "sched:corrupt(0,0);silence(0,0,*)";
  const ProtocolInfo& info = protocol("hotstuff");
  const RunResult r = info.run(p);

  EXPECT_NE(check_termination(r), std::vector<std::string>{});
  // Safety is unconditional: a stalled slot must not break agreement.
  EXPECT_EQ(check_consistency(r), std::vector<std::string>{});
  EXPECT_EQ(check_validity(r), std::vector<std::string>{});
  // The harnesses would skip exactly this oracle for this spec.
  EXPECT_TRUE(may_stall(info, p.adversary));
}

// ---------------------------------------------------------------------------
// Determinism and the legacy port
// ---------------------------------------------------------------------------

TEST(AdversaryDeterminism, SameSeedReproducesTheExecutionExactly) {
  for (const char* name : {"linear", "quadratic"}) {
    CommonParams p;
    p.n = 12;
    p.f = 3;
    p.slots = 3;
    p.seed = 9;
    p.adversary = "fuzz";
    const ProtocolInfo& info = protocol(name);
    const RunResult a = info.run(p);
    const RunResult b = info.run(p);

    EXPECT_EQ(a.honest_bits, b.honest_bits) << name;
    EXPECT_EQ(a.adversary_bits, b.adversary_bits) << name;
    EXPECT_EQ(a.honest_msgs, b.honest_msgs) << name;
    EXPECT_EQ(a.rounds, b.rounds) << name;
    EXPECT_EQ(a.per_slot_bits, b.per_slot_bits) << name;
    EXPECT_EQ(a.corrupt, b.corrupt) << name;
    const auto sa = a.stats_summary();
    const auto sb = b.stats_summary();
    EXPECT_EQ(sa.records, sb.records) << name;
    EXPECT_EQ(sa.deliveries, sb.deliveries) << name;
    EXPECT_EQ(sa.erasures, sb.erasures) << name;
    EXPECT_EQ(sa.corruptions, sb.corruptions) << name;
    for (Slot k = 1; k <= a.commits.max_slot(); ++k) {
      for (NodeId v = 0; v < p.n; ++v) {
        ASSERT_EQ(a.commits.has(v, k), b.commits.has(v, k)) << name;
        if (!a.commits.has(v, k)) continue;
        EXPECT_EQ(a.commits.get(v, k).value, b.commits.get(v, k).value);
        EXPECT_EQ(a.commits.get(v, k).round, b.commits.get(v, k).round);
      }
    }
  }
}

TEST(LegacyPort, LinearSilentEqualsItsExplicitScheduleForm) {
  // The legacy "silent" strategy is now corrupt-first-f + SilentDev
  // actors riding on ScheduledAdversary. The pure-primitive spelling
  // (silence windows on honest replicas) produces the identical honest
  // wire footprint: either way the corrupt nodes emit nothing and the
  // honest nodes see the same deliveries.
  CommonParams legacy;
  legacy.n = 8;
  legacy.f = 2;
  legacy.slots = 2;
  legacy.seed = 3;
  legacy.adversary = "silent";
  CommonParams sched = legacy;
  sched.adversary = "sched:corrupt(0,0,1);silence(0,0,*);silence(1,0,*)";

  const ProtocolInfo& info = protocol("linear");
  const RunResult a = info.run(legacy);
  const RunResult b = info.run(sched);
  EXPECT_EQ(a.honest_bits, b.honest_bits);
  EXPECT_EQ(a.honest_msgs, b.honest_msgs);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.adversary_bits, 0u);
  EXPECT_EQ(b.adversary_bits, 0u);
}

}  // namespace
}  // namespace ambb
