file(REMOVE_RECURSE
  "CMakeFiles/test_wire_model.dir/test_wire_model.cpp.o"
  "CMakeFiles/test_wire_model.dir/test_wire_model.cpp.o.d"
  "test_wire_model"
  "test_wire_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wire_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
