
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_linear_invariants.cpp" "tests/CMakeFiles/test_linear_invariants.dir/test_linear_invariants.cpp.o" "gcc" "tests/CMakeFiles/test_linear_invariants.dir/test_linear_invariants.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ambb_runner.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ambb_bb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ambb_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ambb_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ambb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ambb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
