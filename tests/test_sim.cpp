// Tests of the lock-step simulator semantics (delivery timing, rushing
// order, cost charging, strongly adaptive corruption + after-the-fact
// message removal) using a minimal toy message type.
#include "sim/net.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace ambb {
namespace {

struct ToyMsg {
  int tag = 0;
};

Accounting<ToyMsg> toy_accounting() {
  Accounting<ToyMsg> acc;
  acc.size_bits = [](const ToyMsg&) { return std::uint64_t{100}; };
  acc.kind = [](const ToyMsg&) { return MsgKind{0}; };
  acc.slot = [](const ToyMsg&, Round) { return Slot{1}; };
  return acc;
}

/// Scriptable actor: runs a lambda each round, records its inbox.
class ScriptActor final : public Actor<ToyMsg> {
 public:
  using Fn = std::function<void(Round, std::span<const Delivery<ToyMsg>>,
                                const TrafficView<ToyMsg>&,
                                RoundApi<ToyMsg>&)>;
  explicit ScriptActor(Fn fn) : fn_(std::move(fn)) {}
  void on_round(Round r, std::span<const Delivery<ToyMsg>> inbox,
                const TrafficView<ToyMsg>& rushed,
                RoundApi<ToyMsg>& api) override {
    if (fn_) fn_(r, inbox, rushed, api);
  }

 private:
  Fn fn_;
};

std::unique_ptr<ScriptActor> idle() {
  return std::make_unique<ScriptActor>(nullptr);
}

/// Post-API-redesign shorthand: configure() is the only setup entry
/// point; these tests only ever attach an adversary.
void bind(Simulation<ToyMsg>& sim, Adversary<ToyMsg>* adv) {
  SimConfig<ToyMsg> sc;
  sc.adversary = adv;
  sim.configure(sc);
}

TEST(Simulation, MessagesArriveNextRound) {
  CostLedger ledger({"toy"});
  Simulation<ToyMsg> sim(3, 1, &ledger, toy_accounting());
  int got_at_round = -1;
  sim.set_actor(0, std::make_unique<ScriptActor>(
                       [](Round r, auto, auto, RoundApi<ToyMsg>& api) {
                         if (r == 0) api.send(1, ToyMsg{42});
                       }));
  sim.set_actor(1, std::make_unique<ScriptActor>(
                       [&](Round r, auto inbox, auto, auto&) {
                         if (!inbox.empty() && got_at_round < 0) {
                           got_at_round = static_cast<int>(r);
                           EXPECT_EQ(inbox[0].msg().tag, 42);
                           EXPECT_EQ(inbox[0].from, 0u);
                         }
                       }));
  sim.set_actor(2, idle());
  sim.run_rounds(3);
  EXPECT_EQ(got_at_round, 1);
}

TEST(Simulation, MulticastReachesAllAndSelfCopyIsFree) {
  CostLedger ledger({"toy"});
  Simulation<ToyMsg> sim(4, 1, &ledger, toy_accounting());
  int deliveries = 0;
  for (NodeId v = 0; v < 4; ++v) {
    sim.set_actor(v, std::make_unique<ScriptActor>(
                         [&, v](Round r, auto inbox, auto,
                                RoundApi<ToyMsg>& api) {
                           if (r == 0 && v == 0) api.multicast(ToyMsg{1});
                           if (r == 1) deliveries += inbox.size();
                         }));
  }
  sim.run_rounds(2);
  EXPECT_EQ(deliveries, 4);  // all four nodes, including the sender itself
  // but only n-1 = 3 copies are charged
  EXPECT_EQ(ledger.honest_bits_total(), 300u);
}

TEST(Simulation, HonestBitsVsAdversaryBits) {
  CostLedger ledger({"toy"});
  Simulation<ToyMsg> sim(3, 1, &ledger, toy_accounting());

  class Adv final : public Adversary<ToyMsg> {
   public:
    std::vector<NodeId> initial_corruptions() override { return {2}; }
    std::unique_ptr<Actor<ToyMsg>> actor_for(NodeId) override {
      return std::make_unique<ScriptActor>(
          [](Round r, auto, auto, RoundApi<ToyMsg>& api) {
            if (r == 0) api.send(0, ToyMsg{9});
          });
    }
  } adv;

  sim.set_actor(0, std::make_unique<ScriptActor>(
                       [](Round r, auto, auto, RoundApi<ToyMsg>& api) {
                         if (r == 0) api.send(1, ToyMsg{1});
                       }));
  sim.set_actor(1, idle());
  sim.set_actor(2, idle());
  bind(sim, &adv);
  sim.run_rounds(2);
  EXPECT_EQ(ledger.honest_bits_total(), 100u);
  EXPECT_EQ(ledger.adversary_bits_total(), 100u);
}

TEST(Simulation, ByzantineActorsSeeRushedHonestTraffic) {
  CostLedger ledger({"toy"});
  Simulation<ToyMsg> sim(2, 1, &ledger, toy_accounting());
  bool saw_rushed = false;

  class Adv final : public Adversary<ToyMsg> {
   public:
    explicit Adv(bool* saw) : saw_(saw) {}
    std::vector<NodeId> initial_corruptions() override { return {1}; }
    std::unique_ptr<Actor<ToyMsg>> actor_for(NodeId) override {
      return std::make_unique<ScriptActor>(
          [saw = saw_](Round, auto, const TrafficView<ToyMsg>& rushed,
                       auto&) {
            if (!rushed.empty()) *saw = true;
          });
    }
    bool* saw_;
  } adv(&saw_rushed);

  sim.set_actor(0, std::make_unique<ScriptActor>(
                       [](Round, auto, auto, RoundApi<ToyMsg>& api) {
                         api.send(0, ToyMsg{5});
                       }));
  sim.set_actor(1, idle());
  bind(sim, &adv);
  sim.run_rounds(1);
  EXPECT_TRUE(saw_rushed);
}

TEST(Simulation, AfterTheFactRemovalErasesAndRecharges) {
  CostLedger ledger({"toy"});
  Simulation<ToyMsg> sim(3, 1, &ledger, toy_accounting());
  int node1_deliveries = 0;

  // Node 0 sends to 1 in round 0; the adversary then corrupts node 0 and
  // erases the message: node 1 must never receive it and no honest bits
  // are charged.
  class Adv final : public Adversary<ToyMsg> {
   public:
    std::vector<NodeId> initial_corruptions() override { return {}; }
    std::unique_ptr<Actor<ToyMsg>> actor_for(NodeId) override {
      return std::make_unique<ScriptActor>(nullptr);  // silent
    }
    void observe_round(Round r, const TrafficView<ToyMsg>& traffic,
                       CorruptionCtl<ToyMsg>& ctl) override {
      if (r != 0) return;
      for (std::size_t i = 0; i < traffic.size(); ++i) {
        if (traffic[i].from == 0) {
          ctl.corrupt(0);
          ctl.erase(i);
        }
      }
    }
  } adv;

  sim.set_actor(0, std::make_unique<ScriptActor>(
                       [](Round r, auto, auto, RoundApi<ToyMsg>& api) {
                         if (r == 0) api.send(1, ToyMsg{7});
                       }));
  sim.set_actor(1, std::make_unique<ScriptActor>(
                       [&](Round, auto inbox, auto, auto&) {
                         node1_deliveries += inbox.size();
                       }));
  sim.set_actor(2, idle());
  bind(sim, &adv);
  sim.run_rounds(2);
  EXPECT_EQ(node1_deliveries, 0);
  EXPECT_EQ(ledger.honest_bits_total(), 0u);
  EXPECT_TRUE(sim.is_corrupt(0));
}

TEST(Simulation, ErasingHonestTrafficIsRejected) {
  CostLedger ledger({"toy"});
  Simulation<ToyMsg> sim(2, 1, &ledger, toy_accounting());

  class Adv final : public Adversary<ToyMsg> {
   public:
    std::vector<NodeId> initial_corruptions() override { return {}; }
    std::unique_ptr<Actor<ToyMsg>> actor_for(NodeId) override {
      return std::make_unique<ScriptActor>(nullptr);
    }
    void observe_round(Round, const TrafficView<ToyMsg>& traffic,
                       CorruptionCtl<ToyMsg>& ctl) override {
      if (!traffic.empty()) {
        // No corruption first: after-the-fact removal must be refused.
        EXPECT_THROW(ctl.erase(0), CheckError);
      }
    }
  } adv;

  sim.set_actor(0, std::make_unique<ScriptActor>(
                       [](Round, auto, auto, RoundApi<ToyMsg>& api) {
                         api.send(1, ToyMsg{1});
                       }));
  sim.set_actor(1, idle());
  bind(sim, &adv);
  sim.run_rounds(1);
}

TEST(Simulation, CorruptionBudgetEnforced) {
  CostLedger ledger({"toy"});
  Simulation<ToyMsg> sim(3, 1, &ledger, toy_accounting());

  class Adv final : public Adversary<ToyMsg> {
   public:
    std::vector<NodeId> initial_corruptions() override { return {0}; }
    std::unique_ptr<Actor<ToyMsg>> actor_for(NodeId) override {
      return std::make_unique<ScriptActor>(nullptr);
    }
    void observe_round(Round, const TrafficView<ToyMsg>&,
                       CorruptionCtl<ToyMsg>& ctl) override {
      EXPECT_EQ(ctl.corruption_budget_left(), 0u);
      EXPECT_THROW(ctl.corrupt(1), CheckError);
    }
  } adv;

  for (NodeId v = 0; v < 3; ++v) sim.set_actor(v, idle());
  bind(sim, &adv);
  sim.run_rounds(1);
  EXPECT_EQ(sim.corrupt_count(), 1u);
}

TEST(Simulation, InitialCorruptionsOverBudgetThrow) {
  CostLedger ledger({"toy"});
  Simulation<ToyMsg> sim(3, 1, &ledger, toy_accounting());
  class Adv final : public Adversary<ToyMsg> {
   public:
    std::vector<NodeId> initial_corruptions() override { return {0, 1}; }
    std::unique_ptr<Actor<ToyMsg>> actor_for(NodeId) override {
      return std::make_unique<ScriptActor>(nullptr);
    }
  } adv;
  for (NodeId v = 0; v < 3; ++v) sim.set_actor(v, idle());
  EXPECT_THROW(bind(sim, &adv), CheckError);
}

}  // namespace
}  // namespace ambb
