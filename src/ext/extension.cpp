#include "ext/extension.hpp"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <utility>

#include "adversary/scheduled.hpp"
#include "adversary/spec.hpp"
#include "bb/dolev_strong.hpp"
#include "bb/linear_bb.hpp"
#include "bb/quadratic_bb.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "crypto/intern.hpp"
#include "crypto/rs_code.hpp"
#include "sim/cost.hpp"

namespace ambb::ext {

std::vector<std::string> kind_names() { return {"disperse", "echo"}; }

Value digest_fp64(const Digest& d) {
  Value v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | d[static_cast<std::size_t>(i)];
  return v;
}

namespace {

Value payload_fp64(const std::vector<std::uint8_t>& payload) {
  // Interned: the sender and every recipient fingerprint the same payload.
  return digest_fp64(DigestCache::local().hash("ext-payload", payload));
}

/// True if `m` is well-formed for this run and its path verifies against
/// its claimed root.
bool chunk_valid(const Msg& m, const Context& ctx) {
  if (m.col >= ctx.n || m.slot < 1 || m.slot > ctx.slots) return false;
  if (m.chunk.size() != ctx.chunk_len) return false;
  return merkle::verify(m.root, ctx.n, m.col,
                        merkle::leaf_hash(m.col, m.chunk), m.path);
}

void store_chunk(std::vector<StoredChunk>& store, const Msg& m) {
  for (const StoredChunk& s : store) {
    if (s.col == m.col && s.root == m.root) return;
  }
  store.push_back(StoredChunk{m.col, m.root, m.chunk, m.path});
}

}  // namespace

void ExtNode::absorb(std::span<const Delivery<Msg>> inbox) {
  NodeState& st = (*ctx_->states)[id_];
  for (const Delivery<Msg>& d : inbox) {
    const Msg& m = d.msg();
    if (!chunk_valid(m, *ctx_)) continue;
    // Identity-bound acceptance: a dispersed chunk must be MY column; an
    // echoed chunk must come from the node owning that column. Anything
    // else (a shuffle fault misrouting a unicast, a relayed copy) is
    // dropped, which caps the non-uniform columns an adversary can plant
    // at one per corrupt node — the -f slack in the decision rule.
    const bool own_disperse =
        m.kind == Kind::kDisperse && m.col == static_cast<std::uint32_t>(id_);
    const bool owner_echo =
        m.kind == Kind::kEcho && m.col == static_cast<std::uint32_t>(d.from);
    if (!own_disperse && !owner_echo) continue;
    store_chunk(st.store[m.slot], m);
  }
}

void ExtNode::on_round(Round r, std::span<const Delivery<Msg>> inbox,
                       const TrafficView<Msg>&, RoundApi<Msg>& api) {
  const Slot k = ctx_->sched.slot_of(r);
  const std::uint32_t offset = ctx_->sched.offset_of(r);
  absorb(inbox);
  // The drain round after the last slot (echoes sent in the final echo
  // round are delivered at the START of the next round) only absorbs.
  if (k > ctx_->slots) return;
  NodeState& st = (*ctx_->states)[id_];

  if (offset == 0) {
    if (ctx_->sender_of(k) != id_) return;
    const SlotEncoding& enc = (*ctx_->enc)[k];
    for (NodeId j = 0; j < ctx_->n; ++j) {
      Msg m;
      m.kind = Kind::kDisperse;
      m.slot = k;
      m.col = j;
      m.root = enc.root;
      m.chunk = enc.chunks[j];
      m.path = enc.paths[j];
      api.send(j, std::move(m));
    }
    trace::Event ev;
    ev.kind = trace::EventKind::kChunkDisperse;
    ev.round = r;
    ev.slot = k;
    ev.node = id_;
    ev.value = digest_fp64(enc.root);
    ev.count = ctx_->chunk_len;
    trace::emit(ctx_->trace, ev);
    return;
  }

  // Echo round: forward my own column if the disperse round delivered a
  // valid one for THIS slot. A stagger-delayed disperse lands after this
  // round, is stored for reconstruction, but is never echoed and never
  // enters the receipt vote — the vote must certify an echo that the
  // whole network received.
  if (st.echoed_fp[k] != kBotValue) return;
  for (const StoredChunk& s : st.store[k]) {
    if (s.col != static_cast<std::uint32_t>(id_)) continue;
    Msg m;
    m.kind = Kind::kEcho;
    m.slot = k;
    m.col = s.col;
    m.root = s.root;
    m.chunk = s.chunk;
    m.path = s.path;
    api.multicast(m);
    st.echoed_fp[k] = digest_fp64(s.root);
    trace::Event ev;
    ev.kind = trace::EventKind::kChunkEcho;
    ev.round = r;
    ev.slot = k;
    ev.node = id_;
    ev.value = st.echoed_fp[k];
    trace::emit(ctx_->trace, ev);
    break;
  }
}

namespace {

/// The base phase run uniformly over the four supported families.
RunResult run_base(const ExtConfig& cfg, Slot base_slots,
                   const std::function<Value(Slot)>& input_for_slot,
                   const std::function<NodeId(Slot)>& sender_of) {
  if (cfg.base == "linear") {
    linear::LinearConfig b;
    b.n = cfg.n;
    b.f = cfg.f;
    b.slots = base_slots;
    b.seed = cfg.seed ^ 0xBA5EBB01ULL;
    b.eps = cfg.eps;
    b.kappa_bits = cfg.kappa_bits;
    b.value_bits = cfg.kappa_bits;  // digests and digest-fp votes
    b.opts = linear::Options::paper();
    b.adversary = "none";
    b.node_jobs = cfg.node_jobs;
    b.net = cfg.net;
    b.trace = cfg.trace;
    b.input_for_slot = input_for_slot;
    b.sender_of = sender_of;
    return linear::run_linear(b);
  }
  if (cfg.base == "quadratic") {
    quad::QuadConfig b;
    b.n = cfg.n;
    b.f = cfg.f;
    b.slots = base_slots;
    b.seed = cfg.seed ^ 0xBA5EBB01ULL;
    b.kappa_bits = cfg.kappa_bits;
    b.value_bits = cfg.kappa_bits;
    b.adversary = "none";
    b.node_jobs = cfg.node_jobs;
    b.net = cfg.net;
    b.trace = cfg.trace;
    b.input_for_slot = input_for_slot;
    b.sender_of = sender_of;
    return quad::run_quadratic(b);
  }
  if (cfg.base == "dolev-strong" || cfg.base == "dolev-strong-msig") {
    ds::DsConfig b;
    b.n = cfg.n;
    b.f = cfg.f;
    b.slots = base_slots;
    b.seed = cfg.seed ^ 0xBA5EBB01ULL;
    b.use_multisig = cfg.base == "dolev-strong-msig";
    b.kappa_bits = cfg.kappa_bits;
    b.value_bits = cfg.kappa_bits;
    b.adversary = "none";
    b.node_jobs = cfg.node_jobs;
    b.net = cfg.net;
    b.trace = cfg.trace;
    b.input_for_slot = input_for_slot;
    b.sender_of = sender_of;
    return ds::run_dolev_strong(b);
  }
  AMBB_CHECK_MSG(false, "unknown extension base '" << cfg.base << "'");
  std::abort();  // AMBB_CHECK_MSG throws; see registry.cpp note
}

}  // namespace

RunResult run_extension(const ExtConfig& cfg) {
  AMBB_CHECK_MSG(cfg.n >= 2 && 2 * cfg.f < cfg.n,
                 "extension protocol needs f <= (n-1)/2, got n="
                     << cfg.n << " f=" << cfg.f);
  AMBB_CHECK_MSG(cfg.n <= 256, "RS code caps n at 256");
  AMBB_CHECK_MSG(
      cfg.adversary == "none" || adversary::is_schedule_spec(cfg.adversary),
      "extension rows accept only 'none' or schedule specs, got '"
          << cfg.adversary << "'");

  Context ctx;
  ctx.n = cfg.n;
  ctx.f = cfg.f;
  ctx.k = cfg.n - 2 * cfg.f;
  ctx.slots = cfg.slots;
  ctx.payload_len = cfg.payload_bytes != 0
                        ? cfg.payload_bytes
                        : static_cast<std::size_t>(cfg.kappa_bits / 8);
  ctx.chunk_len = rs::chunk_bytes(ctx.payload_len, ctx.k);
  ctx.wire = WireModel{cfg.n, cfg.kappa_bits, cfg.kappa_bits};
  ctx.sender_of = [n = cfg.n](Slot s) {
    return static_cast<NodeId>((s - 1) % n);
  };
  ctx.trace = cfg.trace;

  // Deterministic pseudo-random payloads; the committed Value is the
  // payload's 64-bit fingerprint (the in-memory carrier convention).
  std::vector<SlotEncoding> enc(cfg.slots + 1);
  std::uint64_t pay_seed = cfg.seed ^ 0x10adBEEFULL;
  for (Slot s = 1; s <= cfg.slots; ++s) {
    SlotEncoding& e = enc[s];
    e.payload.resize(ctx.payload_len);
    for (std::size_t i = 0; i < e.payload.size(); i += 8) {
      const std::uint64_t w = splitmix64(pay_seed);
      for (std::size_t b = 0; b < 8 && i + b < e.payload.size(); ++b) {
        e.payload[i + b] = static_cast<std::uint8_t>(w >> (8 * b));
      }
    }
    e.chunks = rs::encode(e.payload, cfg.n, ctx.k);
    std::vector<Digest> leaves(cfg.n);
    for (std::uint32_t j = 0; j < cfg.n; ++j) {
      leaves[j] = merkle::leaf_hash(j, e.chunks[j]);
    }
    const merkle::Tree tree = merkle::Tree::build(leaves);
    e.root = tree.root();
    e.paths.resize(cfg.n);
    for (std::uint32_t j = 0; j < cfg.n; ++j) e.paths[j] = tree.prove(j);
  }
  ctx.enc = &enc;

  std::vector<NodeState> states(cfg.n);
  for (NodeState& st : states) {
    st.echoed_fp.assign(cfg.slots + 1, kBotValue);
    st.store.resize(cfg.slots + 1);
  }
  ctx.states = &states;

  // ---- Phase 1: chunk dispersal (2 lock-step rounds per slot). ----
  CostLedger ledger(kind_names());
  Sim sim(cfg.n, cfg.f, &ledger, CostPolicy{ctx.wire});
  // Actors emit through the sim's router so sharded rounds can buffer
  // worker-thread events and replay them in deterministic order.
  ctx.trace = sim.actor_sink(cfg.trace);
  for (NodeId v = 0; v < cfg.n; ++v) {
    sim.set_actor(v, std::make_unique<ExtNode>(v, &ctx));
  }
  // One extra drain round: the last slot's echoes are sent in round
  // 2*slots - 1 and delivered at the start of round 2*slots.
  const std::uint64_t disp_rounds =
      static_cast<std::uint64_t>(cfg.slots) * ctx.sched.rounds_per_slot() + 1;
  const NetPolicy net = make_net_policy(cfg.net, cfg.seed);
  std::unique_ptr<Adversary<Msg>> adversary;
  if (adversary::is_schedule_spec(cfg.adversary)) {
    adversary::ScheduleEnv<Msg> env;
    env.n = cfg.n;
    env.f = cfg.f;
    env.seed = cfg.seed ^ 0xE87E9510ULL;
    env.horizon = disp_rounds;
    env.trace = cfg.trace;
    env.net = net;
    env.honest_factory = [ctxp = &ctx](NodeId v) {
      return std::make_unique<ExtNode>(v, ctxp);
    };
    adversary = adversary::make_scheduled_adversary<Msg>(cfg.adversary, env);
  }
  SimConfig<Msg> sc;
  sc.trace = cfg.trace;
  sc.node_jobs = cfg.node_jobs;
  sc.net = net;
  sc.adversary = adversary.get();
  sim.configure(sc);
  for (std::uint64_t i = 0; i < disp_rounds; ++i) {
    if (ctx.sched.offset_of(i) == 0 && ctx.sched.slot_of(i) <= cfg.slots) {
      const Slot k = ctx.sched.slot_of(i);
      trace::Event ev;
      ev.kind = trace::EventKind::kSlotStart;
      ev.round = i;
      ev.slot = k;
      ev.node = ctx.sender_of(k);
      trace::emit(cfg.trace, ev);
    }
    sim.step();
  }

  // ---- Phase 2: digest + receipt votes over the base BB family. ----
  // Base slot b of ext slot s: sub = (b-1) % (n+1); sub 0 carries
  // fp(root_s) from the slot sender, sub j >= 1 carries node (j-1)'s
  // receipt vote read off its dispersal-phase state.
  const std::uint32_t per_slot = cfg.n + 1;
  const Slot base_slots = cfg.slots * per_slot;
  auto base_input = [&enc, &states, per_slot](Slot b) {
    const Slot s = (b - 1) / per_slot + 1;
    const std::uint32_t sub = (b - 1) % per_slot;
    if (sub == 0) return digest_fp64(enc[s].root);
    return states[sub - 1].echoed_fp[s];
  };
  auto base_sender = [&ctx, per_slot](Slot b) {
    const Slot s = (b - 1) / per_slot + 1;
    const std::uint32_t sub = (b - 1) % per_slot;
    return sub == 0 ? ctx.sender_of(s) : static_cast<NodeId>(sub - 1);
  };
  RunResult base = run_base(cfg, base_slots, base_input, base_sender);

  // ---- Phase 3: local decisions. ----
  const Round total_rounds = static_cast<Round>(disp_rounds) + base.rounds;
  CommitLog commits(cfg.n);
  for (NodeId v = 0; v < cfg.n; ++v) {
    for (Slot s = 1; s <= cfg.slots; ++s) {
      const Slot b0 = static_cast<Slot>((s - 1) * per_slot + 1);
      Value decided = kBotValue;
      std::uint64_t held = 0;
      const char* outcome = "bot";
      if (base.commits.has(v, b0)) {
        const Value d_fp = base.commits.get(v, b0).value;
        std::uint32_t votes = 0;
        for (std::uint32_t j = 0; j < cfg.n; ++j) {
          const Slot bj = static_cast<Slot>(b0 + 1 + j);
          if (d_fp != kBotValue && base.commits.has(v, bj) &&
              base.commits.get(v, bj).value == d_fp) {
            ++votes;
          }
        }
        if (votes >= cfg.n - cfg.f) {
          // Columns bound to the agreed digest. Ties on the 64-bit
          // fingerprint across distinct full roots are a SHA-256
          // truncation collision — out of model; pick the smallest root
          // deterministically if it ever happened.
          const Digest* root = nullptr;
          for (const StoredChunk& c : states[v].store[s]) {
            if (digest_fp64(c.root) != d_fp) continue;
            if (root == nullptr || c.root < *root) root = &c.root;
          }
          std::vector<rs::Chunk> cols;
          if (root != nullptr) {
            for (const StoredChunk& c : states[v].store[s]) {
              if (c.root == *root) cols.emplace_back(c.col, c.chunk);
            }
          }
          if (cols.size() >= ctx.k) {
            const std::vector<std::uint8_t> payload =
                rs::reconstruct(cols, cfg.n, ctx.k, ctx.payload_len);
            const std::vector<std::vector<std::uint8_t>> re =
                rs::encode(payload, cfg.n, ctx.k);
            std::vector<Digest> leaves(cfg.n);
            for (std::uint32_t j = 0; j < cfg.n; ++j) {
              leaves[j] = merkle::leaf_hash(j, re[j]);
            }
            if (merkle::Tree::build(leaves).root() == *root) {
              decided = payload_fp64(payload);
              outcome = "commit";
            }
          }
          held = cols.size();
        }
      }
      commits.record(v, s, decided, total_rounds);
      trace::Event ev;
      ev.kind = trace::EventKind::kReconstruct;
      ev.round = total_rounds;
      ev.slot = s;
      ev.node = v;
      ev.value = decided;
      ev.count = held;
      ev.detail = outcome;
      trace::emit(cfg.trace, ev);
    }
  }

  // ---- Merge the two phases into one RunResult. ----
  RunResult res;
  res.n = cfg.n;
  res.f = cfg.f;
  res.slots = cfg.slots;
  res.rounds = total_rounds;
  res.honest_bits = ledger.honest_bits_total() + base.honest_bits;
  res.adversary_bits = ledger.adversary_bits_total() + base.adversary_bits;
  res.honest_msgs = ledger.honest_msgs_total() + base.honest_msgs;
  res.per_slot_bits.assign(cfg.slots + 1, 0);
  const std::vector<std::uint64_t>& disp_slot = ledger.per_slot();
  for (Slot s = 1; s <= cfg.slots; ++s) {
    if (s < disp_slot.size()) res.per_slot_bits[s] = disp_slot[s];
    for (std::uint32_t sub = 0; sub < per_slot; ++sub) {
      const Slot b = static_cast<Slot>((s - 1) * per_slot + 1 + sub);
      if (b < base.per_slot_bits.size()) {
        res.per_slot_bits[s] += base.per_slot_bits[b];
      }
    }
  }
  res.kind_names = ledger.kind_names();
  res.per_kind_bits = ledger.per_kind();
  for (std::size_t i = 0; i < base.kind_names.size(); ++i) {
    res.kind_names.push_back("base:" + base.kind_names[i]);
    res.per_kind_bits.push_back(i < base.per_kind_bits.size()
                                    ? base.per_kind_bits[i]
                                    : 0);
  }
  res.commits = commits;
  res.corrupt.resize(cfg.n);
  for (NodeId v = 0; v < cfg.n; ++v) res.corrupt[v] = sim.is_corrupt(v);
  res.senders.resize(cfg.slots + 1, kNoNode);
  res.sender_inputs.resize(cfg.slots + 1, kBotValue);
  for (Slot s = 1; s <= cfg.slots; ++s) {
    res.senders[s] = ctx.sender_of(s);
    res.sender_inputs[s] = payload_fp64(enc[s].payload);
  }
  res.round_stats = sim.round_stats();
  res.round_stats.insert(res.round_stats.end(), base.round_stats.begin(),
                         base.round_stats.end());
  return res;
}

}  // namespace ambb::ext
