#include "runner/registry.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "adversary/spec.hpp"
#include "bb/dolev_strong.hpp"
#include "bb/hotstuff_demo.hpp"
#include "bb/linear_bb.hpp"
#include "bb/phase_king.hpp"
#include "bb/quadratic_bb.hpp"
#include "common/check.hpp"
#include "ext/extension.hpp"

namespace ambb {

namespace {

RunResult run_linear_with(const RunRequest& rq, linear::Options opts) {
  const CommonParams& p = rq.params;
  linear::LinearConfig cfg;
  cfg.n = p.n;
  cfg.f = p.f;
  cfg.slots = p.slots;
  cfg.seed = p.seed;
  cfg.eps = p.eps;
  cfg.kappa_bits = p.kappa_bits;
  cfg.value_bits = p.value_bits;
  cfg.opts = opts;
  cfg.adversary = p.adversary;
  cfg.node_jobs = p.node_jobs;
  cfg.net = p.net;
  cfg.trace = rq.trace;
  return run_linear(cfg);
}

std::vector<ProtocolInfo> build() {
  std::vector<ProtocolInfo> out;

  const AdversaryPolicy lin_policy{
      {"none", "silent", "equivocate", "selective", "flood", "mixed", "drop",
       "chaos", "adaptive-erase"},
      /*liveness_failures=*/{},
      /*sched_may_stall=*/false};
  auto lin_max_f = [](std::uint32_t n) {
    // f <= (1/2 - eps) n with eps = 0.1, i.e. floor(2n/5) — exact integer
    // arithmetic; 0.4 is not representable in binary floating point, so
    // static_cast<uint32_t>(0.4 * n) leaves the bound at the mercy of
    // rounding.
    return (2 * n) / 5;
  };

  out.push_back(ProtocolInfo{
      "linear",
      "This work, f <= (1/2-eps)n, amortized O(kn)",
      lin_policy,
      lin_max_f,
      [](const RunRequest& rq) {
        return run_linear_with(rq, linear::Options::paper());
      }});

  out.push_back(ProtocolInfo{
      "mr-baseline",
      "Momose-Ren style, f <= (1/2-eps)n, O(kn^2) per slot",
      lin_policy,
      lin_max_f,
      [](const RunRequest& rq) {
        return run_linear_with(rq, linear::Options::mr_baseline());
      }});

  out.push_back(ProtocolInfo{
      "linear-nomem",
      "Ablation: Algorithm 4 without cross-slot accusation memory",
      lin_policy,
      lin_max_f,
      [](const RunRequest& rq) {
        return run_linear_with(rq, linear::Options::no_memory());
      }});

  {
    AdversaryPolicy policy = lin_policy;
    // Without the dissemination path, a selective (or randomly lossy)
    // leader's partial commit permanently starves the rest (no quorum
    // remains in later epochs); same starvation under schedules.
    policy.liveness_failures = {"selective", "mixed", "drop", "chaos"};
    policy.sched_may_stall = true;
    out.push_back(ProtocolInfo{
        "linear-noquery",
        "Ablation: Algorithm 4 without the Query/Respond path",
        std::move(policy),
        lin_max_f,
        [](const RunRequest& rq) {
          return run_linear_with(rq, linear::Options::no_query());
        }});
  }

  out.push_back(ProtocolInfo{
      "quadratic",
      "This work, f < n, amortized O(kn^2)",
      AdversaryPolicy{{"none", "silent", "equivocate", "conspiracy",
                       "lateprop", "floodaccuse", "framer"},
                      {},
                      false},
      [](std::uint32_t n) { return n - 1; },
      [](const RunRequest& rq) {
        const CommonParams& p = rq.params;
        quad::QuadConfig cfg;
        cfg.n = p.n;
        cfg.f = p.f;
        cfg.slots = p.slots;
        cfg.seed = p.seed;
        cfg.kappa_bits = p.kappa_bits;
        cfg.value_bits = p.value_bits;
        cfg.adversary = p.adversary;
        cfg.node_jobs = p.node_jobs;
        cfg.net = p.net;
        cfg.trace = rq.trace;
        return run_quadratic(cfg);
      }});
  // TrustCast's agreement argument is a delivery deadline ("an honest
  // sender's message reaches every trusted edge this round"), not a
  // quorum: delayed deliveries can split honest commits (⊥ vs v).
  out.back().consistency_needs_sync = true;

  const AdversaryPolicy ds_policy{
      {"none", "silent", "equivocate", "stagger"}, {}, false};
  auto run_ds = [](const RunRequest& rq, bool use_multisig) {
    const CommonParams& p = rq.params;
    ds::DsConfig cfg;
    cfg.n = p.n;
    cfg.f = p.f;
    cfg.slots = p.slots;
    cfg.seed = p.seed;
    cfg.use_multisig = use_multisig;
    cfg.kappa_bits = p.kappa_bits;
    cfg.value_bits = p.value_bits;
    cfg.adversary = p.adversary;
    cfg.node_jobs = p.node_jobs;
    cfg.net = p.net;
    cfg.trace = rq.trace;
    return run_dolev_strong(cfg);
  };

  out.push_back(ProtocolInfo{
      "dolev-strong",
      "Dolev-Strong, f < n, plain signatures, O(kn^3) per slot",
      ds_policy,
      [](std::uint32_t n) { return n - 1; },
      [run_ds](const RunRequest& rq) { return run_ds(rq, false); }});
  // The classic relay argument ("accepted at round r <= f ⇒ relayed, so
  // everyone accepts by r+1") is exactly a synchrony assumption: a
  // delayed relay lands past round f+1 and is rejected, splitting the
  // extracted set.
  out.back().consistency_needs_sync = true;

  out.push_back(ProtocolInfo{
      "dolev-strong-msig",
      "Dolev-Strong, f < n, multi-signatures, O(kn^2 + n^3) per slot",
      ds_policy,
      [](std::uint32_t n) { return n - 1; },
      [run_ds](const RunRequest& rq) { return run_ds(rq, true); }});
  out.back().consistency_needs_sync = true;

  out.push_back(ProtocolInfo{
      "phase-king",
      "Berman et al. family, f < n/3, no crypto (see DESIGN.md note)",
      AdversaryPolicy{{"none", "silent", "equivocate", "confuse"}, {}, false},
      [](std::uint32_t n) { return (n - 1) / 3; },
      [](const RunRequest& rq) {
        const CommonParams& p = rq.params;
        pk::PkConfig cfg;
        cfg.n = p.n;
        cfg.f = p.f;
        cfg.slots = p.slots;
        cfg.seed = p.seed;
        cfg.kappa_bits = p.kappa_bits;
        cfg.value_bits = p.value_bits;
        cfg.adversary = p.adversary;
        cfg.node_jobs = p.node_jobs;
        cfg.net = p.net;
        cfg.trace = rq.trace;
        return run_phase_king(cfg);
      }});

  // Long-message extension rows (DESIGN.md §13): erasure-coded dispersal
  // with the named family as the digest+receipt base phase. Dispersal
  // needs k = n-2f >= 1 chunks to survive f withheld receipts and f
  // selectively-planted columns, so f is capped at (n-1)/2 on top of the
  // base family's own bound. The dispersal phase takes the fault
  // schedule; named deviations of the base families do not apply.
  {
    const AdversaryPolicy ext_policy{{"none"}, {}, /*sched_may_stall=*/false};
    struct ExtRow {
      const char* name;
      const char* base;
      const char* row;
      std::function<std::uint32_t(std::uint32_t)> base_max_f;
    };
    const std::vector<ExtRow> ext_rows = {
        {"ext:linear", "linear",
         "NRSX extension over Algorithm 4, O(l n) dispersal", lin_max_f},
        {"ext:quadratic", "quadratic",
         "NRSX extension over the quadratic family",
         [](std::uint32_t n) { return n - 1; }},
        {"ext:dolev-strong", "dolev-strong",
         "NRSX extension over Dolev-Strong (plain signatures)",
         [](std::uint32_t n) { return n - 1; }},
        {"ext:dolev-strong-msig", "dolev-strong-msig",
         "NRSX extension over Dolev-Strong (multi-signatures)",
         [](std::uint32_t n) { return n - 1; }},
    };
    for (const ExtRow& row : ext_rows) {
      out.push_back(ProtocolInfo{
          row.name,
          row.row,
          ext_policy,
          [base_max_f = row.base_max_f](std::uint32_t n) {
            return std::min(base_max_f(n), (n - 1) / 2);
          },
          [base = std::string(row.base)](const RunRequest& rq) {
            const CommonParams& p = rq.params;
            ext::ExtConfig cfg;
            cfg.n = p.n;
            cfg.f = p.f;
            cfg.slots = p.slots;
            cfg.seed = p.seed;
            cfg.payload_bytes = p.payload_bytes;
            cfg.kappa_bits = p.kappa_bits;
            cfg.eps = p.eps;
            cfg.base = base;
            cfg.adversary = p.adversary;
            cfg.node_jobs = p.node_jobs;
            cfg.net = p.net;
            cfg.trace = rq.trace;
            return ext::run_extension(cfg);
          }});
      // Chunk dispersal and receipt collection run on fixed round
      // deadlines regardless of the base family: a delayed chunk misses
      // its reconstruction window and the receiver outputs ⊥ while
      // better-connected peers decode the payload.
      out.back().consistency_needs_sync = true;
    }
  }

  out.push_back(ProtocolInfo{
      "hotstuff",
      "Appendix A: HotStuff without a fallback path",
      // No fallback: a selective (or schedule-silenced) leader stalls up
      // to f honest nodes permanently.
      AdversaryPolicy{{"none", "selective"},
                      {"selective"},
                      /*sched_may_stall=*/true},
      [](std::uint32_t n) { return (n - 1) / 3; },
      [](const RunRequest& rq) {
        const CommonParams& p = rq.params;
        hs::HsConfig cfg;
        cfg.n = p.n;
        cfg.f = p.f;
        cfg.slots = p.slots;
        cfg.seed = p.seed;
        cfg.kappa_bits = p.kappa_bits;
        cfg.value_bits = p.value_bits;
        cfg.adversary = p.adversary;
        cfg.node_jobs = p.node_jobs;
        cfg.net = p.net;
        cfg.trace = rq.trace;
        return run_hotstuff_demo(cfg);
      }});

  return out;
}

}  // namespace

bool AdversaryPolicy::accepts(const std::string& spec) const {
  if (adversary::is_schedule_spec(spec)) return true;
  return std::find(named.begin(), named.end(), spec) != named.end();
}

bool AdversaryPolicy::may_stall(const std::string& spec) const {
  if (adversary::is_schedule_spec(spec)) return sched_may_stall;
  return std::find(liveness_failures.begin(), liveness_failures.end(),
                   spec) != liveness_failures.end();
}

const std::vector<ProtocolInfo>& protocols() {
  static const std::vector<ProtocolInfo> kProtocols = build();
  return kProtocols;
}

const ProtocolInfo& protocol(const std::string& name) {
  const ProtocolInfo* p = find_protocol(name);
  AMBB_CHECK_MSG(p != nullptr, "unknown protocol '" << name << "'");
  // AMBB_CHECK_MSG always throws, but it expands to a do/while the
  // compiler cannot see through; without this the function falls off the
  // end of a non-void return path (-Wreturn-type / UB if the macro ever
  // changed).
  if (p == nullptr) std::abort();
  return *p;
}

const ProtocolInfo* find_protocol(const std::string& name) {
  for (const auto& p : protocols()) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

namespace {

std::size_t edit_distance(const std::string& a, const std::string& b) {
  // Plain Levenshtein, rolling single row; both operands are short
  // protocol names, so quadratic time is irrelevant.
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t subst = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      diag = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, subst});
    }
  }
  return row[b.size()];
}

}  // namespace

std::string suggest_protocol(const std::string& name) {
  std::string best;
  std::size_t best_d = std::numeric_limits<std::size_t>::max();
  for (const auto& p : protocols()) {
    const std::size_t d = edit_distance(name, p.name);
    if (d < best_d) {
      best_d = d;
      best = p.name;
    }
  }
  // Only suggest when the typo is plausible: within half the query's
  // length (so "linearr" -> "linear" but "zzz" suggests nothing).
  const std::size_t cutoff = std::max<std::size_t>(1, name.size() / 2);
  return best_d <= cutoff ? best : std::string();
}

bool accepts_adversary(const ProtocolInfo& info, const std::string& spec) {
  return info.policy.accepts(spec);
}

bool may_stall(const ProtocolInfo& info, const std::string& spec) {
  return info.policy.may_stall(spec);
}

}  // namespace ambb
