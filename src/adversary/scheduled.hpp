// Materialization of a FaultSchedule into an Adversary<Msg> for any
// protocol of the simulator.
//
// The framework is protocol-generic because every primitive acts on the
// traffic surface, not on protocol state:
//
//   - corrupt/erase events run in the strongly adaptive observe_round
//     hook, addressing deliveries by index exactly like the hand-written
//     adversaries did;
//   - actor-level faults (silence / selective / shuffle / stagger) wrap
//     the protocol's own HONEST actor in a FaultedActor that captures its
//     output into a scratch TrafficLog and re-emits a filtered / mutated
//     / delayed version. The wrapped node keeps processing its inbox, so
//     it stays a plausible participant; only its emissions deviate.
//
// Protocol drivers plug in two factories:
//   honest_factory     builds the protocol's honest actor for a node —
//                      required for the generic actor-level faults;
//   byzantine_factory  optional override returning a hand-written
//                      Byzantine actor (the ported legacy adversaries use
//                      this to keep their Deviation-based actors, with
//                      corruption scheduling handled here).
//
// Determinism: all randomness (erase density draws, shuffle permutations)
// flows through Rngs derived from the schedule seed, per rule / per node,
// consumed in simulation order inside one job. Together with the
// engine's submission-order reporting this keeps fuzz sweeps
// byte-identical across --jobs settings.
#pragma once

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "adversary/fault.hpp"
#include "adversary/fuzz.hpp"
#include "adversary/spec.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "sim/net.hpp"
#include "trace/trace.hpp"

namespace ambb::adversary {

/// Wraps a protocol's honest actor and applies the node's active
/// actor-level faults to its outgoing traffic. Fault composition order
/// (documented contract, also the determinism contract for fuzz):
///   silence   wins over everything: nothing is emitted, pending
///             staggered output due this round is discarded;
///   stagger   buffers the (selective-filtered) output for release in
///             round r + delay; released traffic is emitted verbatim;
///   selective drops deliveries to recipients outside the keep-set
///             (multicasts become per-recipient unicasts);
///   shuffle   expands the surviving output into per-recipient unicasts
///             and permutes the payload assignment (equivocation by
///             misdirection: valid messages, wrong recipients).
template <typename Msg>
class FaultedActor final : public Actor<Msg> {
 public:
  FaultedActor(NodeId self, std::uint32_t n,
               std::unique_ptr<Actor<Msg>> inner,
               std::vector<ActorFault> faults, std::uint64_t seed,
               trace::TraceSink* trace = nullptr)
      : self_(self),
        n_(n),
        inner_(std::move(inner)),
        faults_(std::move(faults)),
        rng_(seed),
        trace_(trace) {}

  void on_round(Round r, std::span<const Delivery<Msg>> inbox,
                const TrafficView<Msg>& rushed,
                RoundApi<Msg>& api) override {
    // Trace each actor-level fault as it becomes active (its first
    // round); count carries the fault's last active round.
    for (const auto& a : faults_) {
      if (a.from != r) continue;
      trace::Event ev;
      ev.kind = trace::EventKind::kAdversaryAction;
      ev.round = r;
      ev.node = self_;
      ev.detail = fault_kind_name(a.kind);
      ev.count = a.to;
      trace::emit(trace_, ev);
    }

    // The inner actor always runs: a faulty node still reads its inbox
    // and keeps its state machine plausible; faults act on output only.
    scratch_.reset(n_);
    RoundApi<Msg> capture(self_, n_, &scratch_);
    inner_->on_round(r, inbox, rushed, capture);

    const ActorFault* silence = active(FaultKind::kSilence, r);
    const ActorFault* selective = active(FaultKind::kSelective, r);
    const ActorFault* shuffle = active(FaultKind::kShuffle, r);
    const ActorFault* stagger = active(FaultKind::kStagger, r);

    if (silence != nullptr) {
      drop_pending_due(r);
      return;
    }
    release_pending_due(r, api);

    // Current-round output: filter, then route to buffer or wire.
    std::vector<std::pair<NodeId, const Msg*>> kept;  // expanded deliveries
    std::vector<const typename TrafficLog<Msg>::Record*> whole;  // unfiltered
    for (const auto& rec : scratch_.records()) {
      if (selective == nullptr && !rec.is_multicast()) {
        whole.push_back(&rec);
        kept.emplace_back(rec.to, &rec.msg);
        continue;
      }
      if (selective == nullptr) {
        whole.push_back(&rec);
        for (NodeId v = 0; v < n_; ++v) kept.emplace_back(v, &rec.msg);
        continue;
      }
      if (rec.is_multicast()) {
        for (NodeId v = 0; v < n_; ++v) {
          if (keeps(*selective, v)) kept.emplace_back(v, &rec.msg);
        }
      } else if (keeps(*selective, rec.to)) {
        kept.emplace_back(rec.to, &rec.msg);
      }
    }

    if (stagger != nullptr) {
      for (const auto& [to, m] : kept) {
        pending_.push_back(PendingMsg{r + stagger->delay, to, *m});
      }
      return;
    }
    if (shuffle != nullptr) {
      // Permute the payload assignment over the expanded deliveries.
      std::vector<std::size_t> perm(kept.size());
      for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
      rng_.shuffle(perm);
      for (std::size_t i = 0; i < kept.size(); ++i) {
        api.send(kept[i].first, *kept[perm[i]].second);
      }
      return;
    }
    if (selective == nullptr) {
      // Untouched output: preserve the record structure (multicasts stay
      // multicasts — one shared record, free self-copy).
      for (const auto* rec : whole) {
        if (rec->is_multicast()) {
          api.multicast(rec->msg);
        } else {
          api.send(rec->to, rec->msg);
        }
      }
    } else {
      for (const auto& [to, m] : kept) api.send(to, *m);
    }
  }

 private:
  struct PendingMsg {
    Round release;
    NodeId to;
    Msg msg;
  };

  const ActorFault* active(FaultKind kind, Round r) const {
    for (const auto& a : faults_) {
      if (a.kind == kind && a.from <= r && r <= a.to) return &a;
    }
    return nullptr;
  }

  bool keeps(const ActorFault& selective, NodeId to) const {
    return std::find(selective.keep.begin(), selective.keep.end(), to) !=
           selective.keep.end();
  }

  void release_pending_due(Round r, RoundApi<Msg>& api) {
    for (auto& p : pending_) {
      if (p.release <= r) api.send(p.to, p.msg);
    }
    drop_pending_due(r);
  }

  void drop_pending_due(Round r) {
    pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                  [r](const PendingMsg& p) {
                                    return p.release <= r;
                                  }),
                   pending_.end());
  }

  NodeId self_;
  std::uint32_t n_;
  std::unique_ptr<Actor<Msg>> inner_;
  std::vector<ActorFault> faults_;
  Rng rng_;
  TrafficLog<Msg> scratch_;      ///< reused per-round capture buffer
  std::vector<PendingMsg> pending_;  ///< staggered output awaiting release
  trace::TraceSink* trace_ = nullptr;
};

/// Adversary driven entirely by a validated FaultSchedule.
template <typename Msg>
class ScheduledAdversary final : public Adversary<Msg> {
 public:
  using ActorFactory = std::function<std::unique_ptr<Actor<Msg>>(NodeId)>;
  /// Extra typed predicate for an erase rule ("proposals only", ...).
  using MsgFilter = std::function<bool(NodeId to, const Msg& m)>;

  /// `schedule` must be validate()d against (n, f) by the caller
  /// (make_scheduled_adversary does). `honest_factory` may be null only
  /// if `byzantine_factory` is provided.
  ScheduledAdversary(FaultSchedule schedule, std::uint32_t n,
                     std::uint64_t seed, ActorFactory honest_factory,
                     ActorFactory byzantine_factory = nullptr)
      : sched_(std::move(schedule)),
        n_(n),
        seed_(seed),
        honest_(std::move(honest_factory)),
        byzantine_(std::move(byzantine_factory)) {
    for (const auto& e : sched_.erasures) {
      typed_.push_back(TypedErase{e, nullptr});
    }
  }

  /// Add an erase rule with a protocol-typed message filter. The rule
  /// must still target a scheduled-corrupt sender (same contract as
  /// validate()).
  void add_erase(EraseEvent ev, MsgFilter filter) {
    typed_.push_back(TypedErase{ev, std::move(filter)});
  }

  /// Forward fault-activation events of generically-faulted actors to a
  /// sink (may be nullptr). Corruptions and erasures are traced by the
  /// Simulation itself.
  void set_trace(trace::TraceSink* trace) { trace_ = trace; }

  const FaultSchedule& schedule() const { return sched_; }

  std::vector<NodeId> initial_corruptions() override {
    std::vector<NodeId> out;
    for (const auto& c : sched_.corruptions) {
      if (c.from == 0) out.push_back(c.node);
    }
    return out;
  }

  std::unique_ptr<Actor<Msg>> actor_for(NodeId node) override {
    if (byzantine_ != nullptr) return byzantine_(node);
    AMBB_CHECK_MSG(honest_ != nullptr,
                   "ScheduledAdversary needs an honest actor factory for "
                   "generic actor-level faults");
    std::vector<ActorFault> mine;
    for (const auto& a : sched_.actor_faults) {
      if (a.node == node) mine.push_back(a);
    }
    std::uint64_t h = seed_ ^ (0xFA017ED5EEDULL + node);
    return std::make_unique<FaultedActor<Msg>>(
        node, n_, honest_(node), std::move(mine), splitmix64(h), trace_);
  }

  void observe_round(Round r, const TrafficView<Msg>& traffic,
                     CorruptionCtl<Msg>& ctl) override {
    // Corruptions first: corrupt(r+1, v) fires now so v's round-(r)
    // traffic is erasable and v is replaced before round r+1.
    for (const auto& c : sched_.corruptions) {
      if (c.from != r + 1 || ctl.is_corrupt(c.node)) continue;
      if (ctl.corruption_budget_left() == 0) continue;  // driver ran f < plan
      ctl.corrupt(c.node);
    }
    for (const auto& te : typed_) {
      if (te.ev.round != r) continue;
      // Per-(rule, round) RNG: erase decisions depend only on the seed
      // and the traffic, never on evaluation order elsewhere.
      std::uint64_t h = seed_ ^ te.ev.salt ^ (0x9E3779B97F4A7C15ULL * (r + 1));
      Rng rng(splitmix64(h));
      const double p = te.ev.density_permille / 1000.0;
      for (std::size_t idx = 0; idx < traffic.size(); ++idx) {
        const auto d = traffic[idx];
        if (d.from != te.ev.sender) continue;
        if (d.to % te.ev.to_mod != te.ev.to_rem) continue;
        if (te.filter != nullptr && !te.filter(d.to, d.msg)) continue;
        if (te.ev.density_permille < kDensityAll && !rng.chance(p)) continue;
        if (!ctl.is_corrupt(te.ev.sender)) break;  // corruption was skipped
        ctl.erase(idx);
      }
    }
    // Timing faults: the network adversary defers deliveries of ANY
    // sender (no corruption needed) — possible only under a bounded or
    // async policy; validate + make_scheduled_adversary reject timing
    // schedules on lockstep runs before we get here.
    for (const auto& t : sched_.net_faults) {
      if (r < t.from || r > t.to) continue;
      const std::uint32_t bound = ctl.net().max_extra();
      // Per-(rule, round) RNG, same keying idiom as erase rules.
      std::uint64_t h =
          seed_ ^ t.salt ^ (0xD1B54A32D192ED03ULL * (r + 1));
      Rng rng(splitmix64(h));
      for (std::size_t idx = 0; idx < traffic.size(); ++idx) {
        if (traffic[idx].from != t.sender) continue;
        const std::uint32_t extra =
            t.kind == NetFaultKind::kDelay
                ? t.extra
                : static_cast<std::uint32_t>(
                      rng.uniform(static_cast<std::uint64_t>(bound) + 1));
        if (extra == 0) continue;
        ctl.delay(idx, extra);
      }
    }
  }

 private:
  struct TypedErase {
    EraseEvent ev;
    MsgFilter filter;
  };

  FaultSchedule sched_;
  std::uint32_t n_;
  std::uint64_t seed_;
  ActorFactory honest_;
  ActorFactory byzantine_;
  std::vector<TypedErase> typed_;
  trace::TraceSink* trace_ = nullptr;
};

/// Everything a driver supplies to instantiate a framework adversary.
template <typename Msg>
struct ScheduleEnv {
  std::uint32_t n = 0;
  std::uint32_t f = 0;
  std::uint64_t seed = 0;
  Round horizon = 0;  ///< total rounds the driver will execute
  typename ScheduledAdversary<Msg>::ActorFactory honest_factory;
  trace::TraceSink* trace = nullptr;  ///< optional event sink, not owned
  /// The run's delay policy: gates timing faults (delay/reorder are
  /// rejected under lockstep) and scales fuzz-generated timing faults to
  /// the policy bound.
  NetPolicy net{};
};

/// Build the adversary for any framework spec ("sched:..." or
/// "fuzz[:profile]"). Parses / generates, validates against (n, f) and
/// materializes. Throws CheckError on malformed or budget-violating
/// specs, and on timing faults under a lockstep policy.
template <typename Msg>
std::unique_ptr<ScheduledAdversary<Msg>> make_scheduled_adversary(
    const std::string& spec, const ScheduleEnv<Msg>& env) {
  AMBB_CHECK(env.n >= 1 && env.f < env.n);
  FaultSchedule s;
  if (is_fuzz_spec(spec)) {
    std::uint64_t h =
        env.seed + 0x9E3779B97F4A7C15ULL * (fuzz_profile(spec) + 1);
    // Under lockstep max_extra() is 0 and the generator emits no timing
    // faults — and consumes no extra RNG draws, so lockstep fuzz
    // schedules are byte-identical to the pre-scheduler generator.
    s = generate_schedule(env.n, env.f, env.horizon, splitmix64(h),
                          env.net.max_extra());
  } else {
    s = parse_schedule_spec(spec);
  }
  validate(s, env.n, env.f);
  AMBB_CHECK_MSG(s.net_faults.empty() || !env.net.lockstep(),
                 "schedule uses delay/reorder timing faults but the net "
                 "policy is lockstep — run with --net bounded:<delta> or "
                 "async[:cap]");
  auto adv = std::make_unique<ScheduledAdversary<Msg>>(
      std::move(s), env.n, env.seed, env.honest_factory);
  adv->set_trace(env.trace);
  return adv;
}

}  // namespace ambb::adversary
