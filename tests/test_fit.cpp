#include "runner/fit.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"

namespace ambb {
namespace {

TEST(Fit, OlsSlopeExactLine) {
  EXPECT_NEAR(ols_slope({1, 2, 3, 4}, {2, 4, 6, 8}), 2.0, 1e-12);
  EXPECT_NEAR(ols_slope({1, 2, 3}, {5, 5, 5}), 0.0, 1e-12);
}

TEST(Fit, OlsSlopeNegative) {
  EXPECT_NEAR(ols_slope({0, 1, 2}, {10, 8, 6}), -2.0, 1e-12);
}

TEST(Fit, OlsDegenerateThrows) {
  EXPECT_THROW(ols_slope({1}, {1}), CheckError);
  EXPECT_THROW(ols_slope({2, 2, 2}, {1, 2, 3}), CheckError);
}

TEST(Fit, LogLogRecoverScalingExponent) {
  std::vector<double> x, y;
  for (double n : {8.0, 16.0, 32.0, 64.0, 128.0}) {
    x.push_back(n);
    y.push_back(3.5 * std::pow(n, 2.0));
  }
  EXPECT_NEAR(loglog_slope(x, y), 2.0, 1e-9);
}

TEST(Fit, LogLogLinearExponent) {
  std::vector<double> x{10, 20, 40}, y{7 * 10, 7 * 20, 7 * 40};
  EXPECT_NEAR(loglog_slope(x, y), 1.0, 1e-9);
}

TEST(Fit, LogLogRejectsNonPositive) {
  EXPECT_THROW(loglog_slope({1, 2}, {0, 1}), CheckError);
  EXPECT_THROW(loglog_slope({-1, 2}, {1, 1}), CheckError);
}

}  // namespace
}  // namespace ambb
