// TraceSink event-stream assertions, one protocol per family (linear /
// quadratic-TrustCast / Dolev-Strong / phase-king / HotStuff demo).
//
// Two kinds of guarantees are checked here:
//   1. Sinks are pure observers: a run with a CollectorSink attached is
//      bit-identical to the same run without one.
//   2. The stream is faithful: slot starts appear once per slot with the
//      right sender, commit events mirror the CommitLog exactly, and the
//      per-round RoundEnd stats sum to the run's RoundStatsSummary.
#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <utility>

#include "runner/registry.hpp"
#include "trace/trace.hpp"

namespace ambb {
namespace {

using trace::EventKind;

struct Case {
  const char* proto;
  std::uint32_t n, f;
  Slot slots;
  std::uint64_t seed;
  const char* adversary;
};

// One representative per protocol family, each with an adversary that
// exercises the family's detection machinery.
constexpr Case kCases[] = {
    {"linear", 8u, 3u, 4u, 42ull, "mixed"},
    {"quadratic", 8u, 4u, 4u, 42ull, "equivocate"},
    {"dolev-strong", 8u, 4u, 3u, 42ull, "stagger"},
    {"phase-king", 10u, 3u, 3u, 42ull, "confuse"},
    {"hotstuff", 16u, 5u, 8u, 3ull, "selective"},
};

CommonParams params_of(const Case& c) {
  CommonParams p;
  p.n = c.n;
  p.f = c.f;
  p.slots = c.slots;
  p.seed = c.seed;
  p.adversary = c.adversary;
  return p;
}

class TraceEvents : public ::testing::TestWithParam<std::size_t> {
 protected:
  void SetUp() override {
    const Case& c = kCases[GetParam()];
    info_ = &protocol(c.proto);
    params_ = params_of(c);
    result_ = info_->run(RunRequest{params_, &sink_});
  }

  const ProtocolInfo* info_ = nullptr;
  CommonParams params_;
  trace::CollectorSink sink_;
  RunResult result_;
};

TEST_P(TraceEvents, SinkIsAPureObserver) {
  const RunResult bare = info_->run(params_);  // no sink attached
  EXPECT_EQ(result_.honest_bits, bare.honest_bits);
  EXPECT_EQ(result_.adversary_bits, bare.adversary_bits);
  EXPECT_EQ(result_.honest_msgs, bare.honest_msgs);
  EXPECT_EQ(result_.rounds, bare.rounds);
  EXPECT_EQ(result_.per_slot_bits, bare.per_slot_bits);
  EXPECT_EQ(result_.corrupt, bare.corrupt);
  for (Slot k = 1; k <= result_.slots; ++k) {
    for (NodeId v = 0; v < result_.n; ++v) {
      ASSERT_EQ(result_.commits.has(v, k), bare.commits.has(v, k));
      if (!result_.commits.has(v, k)) continue;
      EXPECT_EQ(result_.commits.get(v, k).value, bare.commits.get(v, k).value);
      EXPECT_EQ(result_.commits.get(v, k).round, bare.commits.get(v, k).round);
    }
  }
}

TEST_P(TraceEvents, NullSinkMatchesNoSink) {
  trace::NullSink null;
  const RunResult a = info_->run(RunRequest{params_, &null});
  const RunResult b = info_->run(params_);
  EXPECT_EQ(a.honest_bits, b.honest_bits);
  EXPECT_EQ(a.per_slot_bits, b.per_slot_bits);
}

TEST_P(TraceEvents, EverySlotStartsOnceWithItsSender) {
  const auto starts = sink_.of_kind(EventKind::kSlotStart);
  ASSERT_EQ(starts.size(), static_cast<std::size_t>(result_.slots));
  Slot expected = 1;
  for (const trace::Event& e : starts) {
    EXPECT_EQ(e.slot, expected);
    ASSERT_LT(e.node, result_.n);
    EXPECT_EQ(e.node, result_.senders[e.slot]);
    ++expected;
  }
}

TEST_P(TraceEvents, CommitEventsMirrorTheCommitLog) {
  std::map<std::pair<NodeId, Slot>, trace::Event> by_cell;
  for (const trace::Event& e : sink_.of_kind(EventKind::kSlotCommit)) {
    const auto cell = std::make_pair(e.node, e.slot);
    ASSERT_EQ(by_cell.count(cell), 0u)
        << "duplicate commit event for node " << e.node << " slot " << e.slot;
    by_cell.emplace(cell, e);
  }
  std::size_t records = 0;
  for (Slot k = 1; k <= result_.slots; ++k) {
    for (NodeId v = 0; v < result_.n; ++v) {
      if (!result_.commits.has(v, k)) continue;
      ++records;
      const auto it = by_cell.find({v, k});
      ASSERT_NE(it, by_cell.end())
          << "commit record without event: node " << v << " slot " << k;
      const CommitRecord& c = result_.commits.get(v, k);
      EXPECT_EQ(it->second.value, c.value);
      EXPECT_EQ(it->second.round, c.round);
    }
  }
  EXPECT_EQ(by_cell.size(), records);
}

TEST_P(TraceEvents, RoundEndEventsSumToTheRunSummary) {
  const auto ends = sink_.of_kind(EventKind::kRoundEnd);
  ASSERT_EQ(ends.size(), result_.round_stats.size());
  RoundStatsSummary from_events;
  for (const trace::Event& e : ends) accumulate(from_events, e.stats);
  const RoundStatsSummary want = result_.stats_summary();
  EXPECT_EQ(from_events.rounds, want.rounds);
  EXPECT_EQ(from_events.records, want.records);
  EXPECT_EQ(from_events.deliveries, want.deliveries);
  EXPECT_EQ(from_events.honest_bits, want.honest_bits);
  EXPECT_EQ(from_events.adversary_bits, want.adversary_bits);
  EXPECT_EQ(from_events.erasures, want.erasures);
  EXPECT_EQ(from_events.corruptions, want.corruptions);
  EXPECT_EQ(from_events.max_round_deliveries, want.max_round_deliveries);
}

TEST_P(TraceEvents, RoundsAreMonotone) {
  Round last = 0;
  for (const trace::Event& e : sink_.events()) {
    EXPECT_GE(e.round, last) << event_kind_name(e.kind);
    last = e.round;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, TraceEvents,
    ::testing::Range(std::size_t{0}, std::size_t{std::size(kCases)}),
    [](const auto& info) {
      std::string s = kCases[info.param].proto;
      for (char& c : s) {
        if (c == '-') c = '_';
      }
      return s;
    });

// ---- family-specific stream content ---------------------------------------

TEST(TraceLinear, MixedAdversaryProducesDetectionEvents) {
  trace::CollectorSink sink;
  protocol("linear").run(RunRequest{params_of(kCases[0]), &sink});
  EXPECT_GT(sink.count(EventKind::kAccusation), 0u);
  EXPECT_GT(sink.count(EventKind::kCertFormed), 0u);
  EXPECT_GT(sink.count(EventKind::kEpochPhase), 0u);
  EXPECT_GT(sink.count(EventKind::kAdversaryAction), 0u);
}

TEST(TraceQuadratic, EquivocationKillsTrustEdgesAndDrawsCorruptVotes) {
  trace::CollectorSink sink;
  const RunResult r =
      protocol("quadratic").run(RunRequest{params_of(kCases[1]), &sink});
  EXPECT_GT(sink.count(EventKind::kTrustEdgeRemoved), 0u);
  const auto votes = sink.of_kind(EventKind::kCorruptVote);
  ASSERT_GT(votes.size(), 0u);
  for (const trace::Event& e : votes) {
    // Alg. 5.2 soundness: honest nodes only vote against actually
    // corrupt nodes (here: the equivocating senders).
    EXPECT_TRUE(r.corrupt[e.subject])
        << "node " << e.node << " voted against honest node " << e.subject;
  }
}

TEST(TracePhaseKing, OneKingPhasePerPhasePerSlot) {
  trace::CollectorSink sink;
  const Case& c = kCases[3];
  protocol("phase-king").run(RunRequest{params_of(c), &sink});
  EXPECT_EQ(sink.count(EventKind::kEpochPhase),
            static_cast<std::size_t>(c.slots) * (c.f + 1));
}

TEST(TraceHotstuff, SelectiveLeaderStallIsVisibleInTheStream) {
  trace::CollectorSink sink;
  const RunResult r =
      protocol("hotstuff").run(RunRequest{params_of(kCases[4]), &sink});
  EXPECT_GT(sink.count(EventKind::kCertFormed), 0u);
  // The Appendix A claim: some honest node misses a commit, and the
  // trace shows fewer commit events than a fully live run would have.
  EXPECT_FALSE(check_termination(r).empty());
  EXPECT_LT(sink.count(EventKind::kSlotCommit),
            static_cast<std::size_t>(r.slots) * r.n);
  EXPECT_GT(sink.count(EventKind::kAdversaryAction), 0u);
}

}  // namespace
}  // namespace ambb
