file(REMOVE_RECURSE
  "CMakeFiles/test_hotstuff_demo.dir/test_hotstuff_demo.cpp.o"
  "CMakeFiles/test_hotstuff_demo.dir/test_hotstuff_demo.cpp.o.d"
  "test_hotstuff_demo"
  "test_hotstuff_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hotstuff_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
