// Hex formatting helpers (mainly for test vectors and debug output).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ambb {

std::string to_hex(std::span<const std::uint8_t> bytes);
std::vector<std::uint8_t> from_hex(const std::string& hex);

}  // namespace ambb
