// Simulated multi-signature scheme.
//
// An aggregate of k individual signatures on the same digest is a single
// kappa-bit object plus an n-bit signer bitmap (the usual BLS-multisig
// size model, used by Table 1's Dolev-Strong-with-multisig row). We
// simulate aggregation as the XOR of the individual MACs; verification
// recomputes each named signer's MAC through the registry. Aggregates can
// be extended one signer at a time, which is what Dolev-Strong needs.
#pragma once

#include <cstdint>
#include <span>

#include "common/bitvec.hpp"
#include "common/types.hpp"
#include "crypto/signer.hpp"

namespace ambb {

struct MultiSig {
  BitVec signers;  ///< bitmap over [0, n)
  Digest agg{};    ///< XOR-aggregate of individual MACs

  std::size_t signer_count() const { return signers.count(); }
};

class MultiSigScheme {
 public:
  explicit MultiSigScheme(const KeyRegistry& registry);

  /// Empty aggregate (no signers).
  MultiSig empty() const;

  /// Individual contribution of node i on digest d.
  Digest piece(NodeId i, const Digest& d) const;

  /// Return `ms` extended with node i's signature; i must not already be
  /// in the aggregate.
  MultiSig extend(const MultiSig& ms, NodeId i, const Digest& d) const;

  bool verify(const MultiSig& ms, const Digest& d) const;

 private:
  const KeyRegistry* registry_;
};

}  // namespace ambb
