// Least-squares helpers for turning measured cost series into the scaling
// exponents Table 1 predicts (log-log slope ~= polynomial degree in n).
#pragma once

#include <vector>

namespace ambb {

/// Ordinary least-squares slope of y against x.
double ols_slope(const std::vector<double>& x, const std::vector<double>& y);

/// Slope of log(y) against log(x): the empirical scaling exponent of a
/// series y ~ C * x^a. All inputs must be positive.
double loglog_slope(const std::vector<double>& x,
                    const std::vector<double>& y);

}  // namespace ambb
