file(REMOVE_RECURSE
  "CMakeFiles/ambb_sim.dir/sim/cost.cpp.o"
  "CMakeFiles/ambb_sim.dir/sim/cost.cpp.o.d"
  "libambb_sim.a"
  "libambb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ambb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
