// Simulated digital signatures with a PKI.
//
// The environment provides no crypto library, and the paper treats the
// signature scheme as an ideal primitive, so we simulate it: node i's
// secret key is derived from a master seed, a signature on digest d is
// HMAC(sk_i, d), and verification recomputes the MAC through the registry
// (which models the PKI). Inside the simulation the only way to produce a
// valid signature is to call sign() as that node, which the adversary can
// do only for corrupted nodes — exactly the power the paper grants it.
//
// DESIGN.md documents this substitution; the properties the reproduction
// relies on (who can create which object, and its kappa-bit wire size) are
// preserved exactly.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"

namespace ambb {

struct Signature {
  NodeId signer = kNoNode;
  Digest mac{};

  bool operator==(const Signature&) const = default;
};

class KeyRegistry {
 public:
  KeyRegistry(std::uint32_t n, std::uint64_t master_seed);

  std::uint32_t n() const { return n_; }

  /// Sign digest `d` as node `signer`.
  Signature sign(NodeId signer, const Digest& d) const;

  /// Verify that `sig` is node sig.signer's signature on `d`.
  bool verify(const Signature& sig, const Digest& d) const;

  /// Raw MAC under node i's key with a domain-separation tag; building
  /// block for the threshold / multi-signature schemes.
  Digest mac_as(NodeId i, const char* domain, const Digest& d) const;

  /// Raw MAC under the master (dealer) key; only the threshold combiner
  /// uses this, through combine() below.
  Digest master_mac(const char* domain, const Digest& d) const;

 private:
  /// (key owner, domain tag, digest) — the full input of one MAC. All four
  /// public operations are pure functions of this triple, so results are
  /// memoized: in a broadcast run every recipient re-verifies the same
  /// signature, and only the first verification pays for the HMAC.
  struct MacInput {
    std::uint32_t owner;  ///< node index, or kMasterOwner
    std::uint64_t domain; ///< FNV-1a of the domain-separation tag
    Digest digest;

    bool operator==(const MacInput&) const = default;
  };
  struct MacInputHash {
    std::size_t operator()(const MacInput& k) const {
      // The digest is SHA-256 output; its first bytes are already uniform.
      std::uint64_t h = 0;
      for (int i = 0; i < 8; ++i) h = h << 8 | k.digest[i];
      return static_cast<std::size_t>(h ^ k.domain ^
                                      (std::uint64_t{k.owner} << 32));
    }
  };

  static constexpr std::uint32_t kMasterOwner = 0xFFFFFFFFu;

  Digest cached_mac(std::uint32_t owner, const HmacKey& key,
                    const char* domain, const Digest& d) const;

  std::uint32_t n_;
  Digest master_key_;
  std::vector<Digest> node_keys_;
  std::vector<HmacKey> node_hmac_;
  std::vector<HmacKey> master_hmac_;  ///< single element; vector avoids a
                                      ///< default-constructible requirement
  mutable std::unordered_map<MacInput, Digest, MacInputHash> mac_cache_;
};

}  // namespace ambb
