// Core scalar types and protocol-wide constants shared by every module.
#pragma once

#include <cstdint>
#include <limits>

namespace ambb {

/// Index of a node in [0, n). The paper numbers nodes 1..n; we use 0..n-1.
using NodeId = std::uint32_t;

/// Broadcast slot number, k >= 1 in the paper. Slot 0 is never used.
using Slot = std::uint32_t;

/// Epoch within a slot, 0 <= i <= f+1 (Algorithm 4).
using Epoch = std::uint32_t;

/// Global lock-step round counter.
using Round = std::uint64_t;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// Security parameter: width in bits of a hash / signature / signature
/// share / combined threshold signature. The paper calls this kappa.
inline constexpr std::uint32_t kDefaultKappaBits = 256;

/// Width in bits of a broadcast value ("constant-sized inputs" in Table 1).
inline constexpr std::uint32_t kDefaultValueBits = 256;

/// Broadcast value. Constant-size payload; the wire size charged for a
/// value is params.value_bits, independent of this in-memory carrier.
using Value = std::uint64_t;

/// Sentinel broadcast value representing bottom (no value / commit-bot).
inline constexpr Value kBotValue = std::numeric_limits<Value>::max();

}  // namespace ambb
