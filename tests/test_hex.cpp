#include "common/hex.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace ambb {
namespace {

TEST(Hex, RoundTrip) {
  std::vector<std::uint8_t> data{0x00, 0xFF, 0x12, 0xAB};
  EXPECT_EQ(to_hex(data), "00ff12ab");
  EXPECT_EQ(from_hex("00ff12ab"), data);
}

TEST(Hex, AcceptsUppercase) {
  EXPECT_EQ(from_hex("AB"), std::vector<std::uint8_t>{0xAB});
}

TEST(Hex, RejectsOddLengthAndBadDigits) {
  EXPECT_THROW(from_hex("abc"), CheckError);
  EXPECT_THROW(from_hex("zz"), CheckError);
}

}  // namespace
}  // namespace ambb
