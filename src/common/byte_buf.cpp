#include "common/byte_buf.hpp"

#include "common/check.hpp"

namespace ambb {

Encoder& Encoder::scratch() {
  thread_local Encoder e;
  // Reentrancy guard: the previous acquisition must have been consumed
  // (view()/bytes()) or abandoned (clear()). Without this, a nested
  // scratch() user would clear a buffer that is still mid-encode and the
  // outer caller would hash/sign truncated bytes with no diagnostic.
  AMBB_CHECK_MSG(!e.busy_, "Encoder::scratch() re-acquired mid-encode");
  e.clear();
  e.busy_ = true;
  return e;
}

std::uint8_t Decoder::get_u8() {
  AMBB_CHECK_MSG(pos_ < buf_.size(), "decoder underrun");
  return buf_[pos_++];
}

std::uint16_t Decoder::get_u16() {
  std::uint16_t hi = get_u8();
  return static_cast<std::uint16_t>(hi << 8 | get_u8());
}

std::uint32_t Decoder::get_u32() {
  std::uint32_t hi = get_u16();
  return hi << 16 | get_u16();
}

std::uint64_t Decoder::get_u64() {
  std::uint64_t hi = get_u32();
  return hi << 32 | get_u32();
}

std::vector<std::uint8_t> Decoder::get_bytes(std::size_t len) {
  // NOT `pos_ + len <= size()`: a hostile length near SIZE_MAX would wrap
  // the sum and pass the check. pos_ <= size() is a class invariant, so
  // the subtraction below cannot underflow.
  AMBB_CHECK_MSG(len <= buf_.size() - pos_, "decoder underrun");
  std::vector<std::uint8_t> out(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
  pos_ += len;
  return out;
}

}  // namespace ambb
