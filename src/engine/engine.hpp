// Deterministic parallel experiment engine.
//
// The benches and parameter-sweep tests expand (protocol x n x f x L x
// adversary x seed) grids whose cells are INDEPENDENT executions: every
// driver builds its own Simulation, CostLedger, KeyRegistry and
// seed-derived RNG, so nothing is shared between cells (see the
// thread-safety note on TrafficView in sim/net.hpp for what must NOT be
// shared). The engine exploits exactly that independence and nothing
// more: a fixed pool of std::thread workers drains a pre-expanded job
// vector by atomic index — no work stealing, no inter-job communication
// — and every result lands in the slot of its submission index.
//
// Determinism contract: the aggregated output is a pure function of the
// job vector. Execution order across workers is arbitrary, but each job
// is a deterministic closed computation and results are reported in
// submission order, so running with --jobs 1 and --jobs N produces
// byte-identical aggregates (bit totals, per-slot costs, commit logs).
// Wall-clock fields are measurement metadata and are exempt.
//
// Failure isolation: a job that throws (AMBB_CHECK/CheckError or any
// std::exception) or whose BB property check fails is captured as a
// structured failure in its JobOutcome; the remaining jobs run to
// completion. Callers decide whether failures are fatal (the benches and
// ambb_sweep exit non-zero; tests assert).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "runner/result.hpp"

namespace ambb::engine {

/// Worker-pool size for a requested --jobs value: 0 means "one per
/// hardware thread" (at least 1 if the runtime cannot tell).
unsigned resolve_jobs(unsigned requested);

/// Per-run node-shard count for a requested --node-jobs value, given the
/// engine's run-level worker count. An explicit request is honored as-is
/// (the caller asked for that many threads per run); 0 means "auto": fill
/// the machine without oversubscribing, i.e. hardware threads divided by
/// the run-level pool size, at least 1. Total thread budget is therefore
/// ~run_jobs * node_jobs in either case, by explicit request or by
/// construction.
unsigned resolve_node_jobs(unsigned requested, unsigned run_jobs);

/// Run fn(i) for i in [0, count) on `jobs` workers and return the results
/// in index order. fn must be safe to call concurrently for DISTINCT
/// indices; the engine never calls the same index twice. Exceptions are
/// NOT isolated here (this is the raw primitive): the first throwing
/// index, in index order, is rethrown after all workers drain.
template <class Fn>
auto parallel_map(std::size_t count, unsigned jobs, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  using R = decltype(fn(std::size_t{0}));
  std::vector<R> results(count);
  if (count == 0) return results;
  std::vector<std::exception_ptr> errors(count);

  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(resolve_jobs(jobs), count));
  std::atomic<std::size_t> next{0};
  auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        results[i] = fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };

  if (workers <= 1) {
    drain();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) pool.emplace_back(drain);
    for (auto& t : pool) t.join();
  }

  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  return results;
}

/// One independent experiment: a self-contained driver closure. The
/// closure must own (or construct) everything it touches — the engine
/// guarantees it is invoked exactly once, possibly on another thread.
struct Job {
  std::string label;
  std::function<RunResult()> run;
  /// Skip the termination check (registry-known liveness failures under
  /// specific adversaries; stalling is the measured claim there).
  bool allow_stall = false;
  /// Skip the validity check. Set by non-lockstep campaign cells: a
  /// synchronous protocol cannot distinguish an honest sender whose
  /// dissemination was delayed from a silent one, so validity — like
  /// termination — is conditional on the synchrony assumption.
  bool allow_invalid = false;
  /// Skip the consistency check. Set by non-lockstep campaign cells ONLY
  /// for registry rows that declare consistency_needs_sync: a protocol
  /// whose agreement argument is itself a round deadline (the
  /// Dolev-Strong relay step, TrustCast delivery, chunk-dispersal
  /// windows) may legally split under delays — one honest node commits v
  /// while another times out to ⊥. Quorum-intersection rows never set
  /// this; for them consistency is the hard oracle under every network
  /// model.
  bool allow_split = false;
};

/// What became of one job. Exactly one of {completed, error} is
/// meaningful: a job that threw has completed == false, error non-empty
/// and a default-constructed result.
struct JobOutcome {
  std::string label;
  bool completed = false;
  std::string error;
  RunResult result;
  double wall_ms = 0.0;
  /// BB property violations (consistency + validity + termination unless
  /// allow_stall) found in a completed result.
  std::vector<std::string> violations;

  bool failed() const { return !completed || !violations.empty(); }
};

/// Fixed-pool executor over Jobs, adding per-job timing, property checks
/// and failure isolation on top of parallel_map.
class Engine {
 public:
  /// `jobs` as in resolve_jobs(); the pool is created per run() call, so
  /// an Engine is cheap to construct and stateless between runs.
  explicit Engine(unsigned jobs = 0) : jobs_(resolve_jobs(jobs)) {}

  unsigned jobs() const { return jobs_; }

  /// Execute all jobs; outcomes are in submission order regardless of
  /// completion order.
  std::vector<JobOutcome> run(const std::vector<Job>& jobs) const;

 private:
  unsigned jobs_;
};

}  // namespace ambb::engine
