#!/usr/bin/env python3
"""Compare the measurement fields of two BENCH_*.json files by run label.

Used by the perf-smoke lane in scripts/ci.sh: a freshly generated bench
JSON (typically an AMBB_F2_SMOKE=1 subset) is diffed against the committed
golden. Runs are matched by label; labels present in only one file are
skipped (the smoke subset is a strict subset of the golden sweep), but at
least one label must match. Every MEASUREMENT field must be bit-identical
— these are deterministic outputs of the simulation and may never drift
under a pure performance change. Wall-clock and ns_* timing fields are
environment noise and are excluded.

Exit status: 0 if all shared labels agree, 1 otherwise.

Usage: check_bench_fields.py GOLDEN.json CANDIDATE.json
"""

import json
import sys

# Deterministic simulation outputs: any drift is a correctness regression.
MEASUREMENT_FIELDS = [
    "n",
    "f",
    "slots",
    "rounds",
    "honest_bits",
    "adversary_bits",
    "amortized_bits_per_slot",
    "records",
    "deliveries",
    "erasures",
    "corruptions",
    "violations",
]


def runs_by_label(path):
    with open(path) as fh:
        doc = json.load(fh)
    runs = {}
    for run in doc.get("runs", []):
        label = run.get("label")
        if label is None:
            print(f"{path}: run without a label", file=sys.stderr)
            sys.exit(1)
        if label in runs:
            print(f"{path}: duplicate label {label!r}", file=sys.stderr)
            sys.exit(1)
        runs[label] = run
    return runs


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    golden_path, candidate_path = argv[1], argv[2]
    golden = runs_by_label(golden_path)
    candidate = runs_by_label(candidate_path)

    shared = [label for label in candidate if label in golden]
    if not shared:
        print(
            f"no shared labels between {golden_path} and {candidate_path}",
            file=sys.stderr,
        )
        return 1

    failures = 0
    for label in shared:
        for field in MEASUREMENT_FIELDS:
            want = golden[label].get(field)
            got = candidate[label].get(field)
            if want != got:
                print(
                    f"MEASUREMENT DRIFT: {label}.{field}: "
                    f"golden={want!r} candidate={got!r}",
                    file=sys.stderr,
                )
                failures += 1

    skipped = [label for label in candidate if label not in golden]
    print(
        f"checked {len(shared)} run(s) x {len(MEASUREMENT_FIELDS)} fields "
        f"against {golden_path}"
        + (f" (skipped new labels: {', '.join(skipped)})" if skipped else "")
    )
    if failures:
        print(f"{failures} field mismatch(es)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
